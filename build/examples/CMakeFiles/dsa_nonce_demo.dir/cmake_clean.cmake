file(REMOVE_RECURSE
  "CMakeFiles/dsa_nonce_demo.dir/dsa_nonce_demo.cpp.o"
  "CMakeFiles/dsa_nonce_demo.dir/dsa_nonce_demo.cpp.o.d"
  "dsa_nonce_demo"
  "dsa_nonce_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsa_nonce_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

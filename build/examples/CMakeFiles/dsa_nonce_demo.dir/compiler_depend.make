# Empty compiler generated dependencies file for dsa_nonce_demo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/factor_keyring.dir/factor_keyring.cpp.o"
  "CMakeFiles/factor_keyring.dir/factor_keyring.cpp.o.d"
  "factor_keyring"
  "factor_keyring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factor_keyring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for factor_keyring.
# This may be replaced when dependencies are built.

# Empty dependencies file for weak_key_attack.
# This may be replaced when dependencies are built.

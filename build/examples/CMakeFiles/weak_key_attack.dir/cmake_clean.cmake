file(REMOVE_RECURSE
  "CMakeFiles/weak_key_attack.dir/weak_key_attack.cpp.o"
  "CMakeFiles/weak_key_attack.dir/weak_key_attack.cpp.o.d"
  "weak_key_attack"
  "weak_key_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weak_key_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

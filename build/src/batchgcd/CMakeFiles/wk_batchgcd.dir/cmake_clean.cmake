file(REMOVE_RECURSE
  "CMakeFiles/wk_batchgcd.dir/batch_gcd.cpp.o"
  "CMakeFiles/wk_batchgcd.dir/batch_gcd.cpp.o.d"
  "CMakeFiles/wk_batchgcd.dir/distributed.cpp.o"
  "CMakeFiles/wk_batchgcd.dir/distributed.cpp.o.d"
  "CMakeFiles/wk_batchgcd.dir/incremental.cpp.o"
  "CMakeFiles/wk_batchgcd.dir/incremental.cpp.o.d"
  "CMakeFiles/wk_batchgcd.dir/product_tree.cpp.o"
  "CMakeFiles/wk_batchgcd.dir/product_tree.cpp.o.d"
  "CMakeFiles/wk_batchgcd.dir/remainder_tree.cpp.o"
  "CMakeFiles/wk_batchgcd.dir/remainder_tree.cpp.o.d"
  "libwk_batchgcd.a"
  "libwk_batchgcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wk_batchgcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for wk_batchgcd.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libwk_batchgcd.a"
)

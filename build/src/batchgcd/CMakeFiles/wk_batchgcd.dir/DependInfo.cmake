
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/batchgcd/batch_gcd.cpp" "src/batchgcd/CMakeFiles/wk_batchgcd.dir/batch_gcd.cpp.o" "gcc" "src/batchgcd/CMakeFiles/wk_batchgcd.dir/batch_gcd.cpp.o.d"
  "/root/repo/src/batchgcd/distributed.cpp" "src/batchgcd/CMakeFiles/wk_batchgcd.dir/distributed.cpp.o" "gcc" "src/batchgcd/CMakeFiles/wk_batchgcd.dir/distributed.cpp.o.d"
  "/root/repo/src/batchgcd/incremental.cpp" "src/batchgcd/CMakeFiles/wk_batchgcd.dir/incremental.cpp.o" "gcc" "src/batchgcd/CMakeFiles/wk_batchgcd.dir/incremental.cpp.o.d"
  "/root/repo/src/batchgcd/product_tree.cpp" "src/batchgcd/CMakeFiles/wk_batchgcd.dir/product_tree.cpp.o" "gcc" "src/batchgcd/CMakeFiles/wk_batchgcd.dir/product_tree.cpp.o.d"
  "/root/repo/src/batchgcd/remainder_tree.cpp" "src/batchgcd/CMakeFiles/wk_batchgcd.dir/remainder_tree.cpp.o" "gcc" "src/batchgcd/CMakeFiles/wk_batchgcd.dir/remainder_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bn/CMakeFiles/wk_bn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

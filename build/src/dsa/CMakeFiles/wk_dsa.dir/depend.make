# Empty dependencies file for wk_dsa.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libwk_dsa.a"
)

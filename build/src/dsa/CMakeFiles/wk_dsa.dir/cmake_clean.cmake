file(REMOVE_RECURSE
  "CMakeFiles/wk_dsa.dir/dsa.cpp.o"
  "CMakeFiles/wk_dsa.dir/dsa.cpp.o.d"
  "CMakeFiles/wk_dsa.dir/nonce_attack.cpp.o"
  "CMakeFiles/wk_dsa.dir/nonce_attack.cpp.o.d"
  "libwk_dsa.a"
  "libwk_dsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wk_dsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsa/dsa.cpp" "src/dsa/CMakeFiles/wk_dsa.dir/dsa.cpp.o" "gcc" "src/dsa/CMakeFiles/wk_dsa.dir/dsa.cpp.o.d"
  "/root/repo/src/dsa/nonce_attack.cpp" "src/dsa/CMakeFiles/wk_dsa.dir/nonce_attack.cpp.o" "gcc" "src/dsa/CMakeFiles/wk_dsa.dir/nonce_attack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bn/CMakeFiles/wk_bn.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/wk_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/wk_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libwk_netsim.a"
)

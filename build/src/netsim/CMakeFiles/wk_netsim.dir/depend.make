# Empty dependencies file for wk_netsim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wk_netsim.dir/catalog.cpp.o"
  "CMakeFiles/wk_netsim.dir/catalog.cpp.o.d"
  "CMakeFiles/wk_netsim.dir/dataset.cpp.o"
  "CMakeFiles/wk_netsim.dir/dataset.cpp.o.d"
  "CMakeFiles/wk_netsim.dir/device.cpp.o"
  "CMakeFiles/wk_netsim.dir/device.cpp.o.d"
  "CMakeFiles/wk_netsim.dir/internet.cpp.o"
  "CMakeFiles/wk_netsim.dir/internet.cpp.o.d"
  "CMakeFiles/wk_netsim.dir/ip_allocator.cpp.o"
  "CMakeFiles/wk_netsim.dir/ip_allocator.cpp.o.d"
  "libwk_netsim.a"
  "libwk_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wk_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

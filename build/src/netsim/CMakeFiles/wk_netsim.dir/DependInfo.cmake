
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/catalog.cpp" "src/netsim/CMakeFiles/wk_netsim.dir/catalog.cpp.o" "gcc" "src/netsim/CMakeFiles/wk_netsim.dir/catalog.cpp.o.d"
  "/root/repo/src/netsim/dataset.cpp" "src/netsim/CMakeFiles/wk_netsim.dir/dataset.cpp.o" "gcc" "src/netsim/CMakeFiles/wk_netsim.dir/dataset.cpp.o.d"
  "/root/repo/src/netsim/device.cpp" "src/netsim/CMakeFiles/wk_netsim.dir/device.cpp.o" "gcc" "src/netsim/CMakeFiles/wk_netsim.dir/device.cpp.o.d"
  "/root/repo/src/netsim/internet.cpp" "src/netsim/CMakeFiles/wk_netsim.dir/internet.cpp.o" "gcc" "src/netsim/CMakeFiles/wk_netsim.dir/internet.cpp.o.d"
  "/root/repo/src/netsim/ip_allocator.cpp" "src/netsim/CMakeFiles/wk_netsim.dir/ip_allocator.cpp.o" "gcc" "src/netsim/CMakeFiles/wk_netsim.dir/ip_allocator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cert/CMakeFiles/wk_cert.dir/DependInfo.cmake"
  "/root/repo/build/src/rsa/CMakeFiles/wk_rsa.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/wk_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wk_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bn/CMakeFiles/wk_bn.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/wk_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fingerprint/divisor_class.cpp" "src/fingerprint/CMakeFiles/wk_fingerprint.dir/divisor_class.cpp.o" "gcc" "src/fingerprint/CMakeFiles/wk_fingerprint.dir/divisor_class.cpp.o.d"
  "/root/repo/src/fingerprint/ibm_clique.cpp" "src/fingerprint/CMakeFiles/wk_fingerprint.dir/ibm_clique.cpp.o" "gcc" "src/fingerprint/CMakeFiles/wk_fingerprint.dir/ibm_clique.cpp.o.d"
  "/root/repo/src/fingerprint/mitm_detector.cpp" "src/fingerprint/CMakeFiles/wk_fingerprint.dir/mitm_detector.cpp.o" "gcc" "src/fingerprint/CMakeFiles/wk_fingerprint.dir/mitm_detector.cpp.o.d"
  "/root/repo/src/fingerprint/openssl_fingerprint.cpp" "src/fingerprint/CMakeFiles/wk_fingerprint.dir/openssl_fingerprint.cpp.o" "gcc" "src/fingerprint/CMakeFiles/wk_fingerprint.dir/openssl_fingerprint.cpp.o.d"
  "/root/repo/src/fingerprint/prime_pools.cpp" "src/fingerprint/CMakeFiles/wk_fingerprint.dir/prime_pools.cpp.o" "gcc" "src/fingerprint/CMakeFiles/wk_fingerprint.dir/prime_pools.cpp.o.d"
  "/root/repo/src/fingerprint/subject_rules.cpp" "src/fingerprint/CMakeFiles/wk_fingerprint.dir/subject_rules.cpp.o" "gcc" "src/fingerprint/CMakeFiles/wk_fingerprint.dir/subject_rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cert/CMakeFiles/wk_cert.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/wk_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/bn/CMakeFiles/wk_bn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wk_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rsa/CMakeFiles/wk_rsa.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/wk_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/wk_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libwk_fingerprint.a"
)

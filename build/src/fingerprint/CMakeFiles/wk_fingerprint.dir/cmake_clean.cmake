file(REMOVE_RECURSE
  "CMakeFiles/wk_fingerprint.dir/divisor_class.cpp.o"
  "CMakeFiles/wk_fingerprint.dir/divisor_class.cpp.o.d"
  "CMakeFiles/wk_fingerprint.dir/ibm_clique.cpp.o"
  "CMakeFiles/wk_fingerprint.dir/ibm_clique.cpp.o.d"
  "CMakeFiles/wk_fingerprint.dir/mitm_detector.cpp.o"
  "CMakeFiles/wk_fingerprint.dir/mitm_detector.cpp.o.d"
  "CMakeFiles/wk_fingerprint.dir/openssl_fingerprint.cpp.o"
  "CMakeFiles/wk_fingerprint.dir/openssl_fingerprint.cpp.o.d"
  "CMakeFiles/wk_fingerprint.dir/prime_pools.cpp.o"
  "CMakeFiles/wk_fingerprint.dir/prime_pools.cpp.o.d"
  "CMakeFiles/wk_fingerprint.dir/subject_rules.cpp.o"
  "CMakeFiles/wk_fingerprint.dir/subject_rules.cpp.o.d"
  "libwk_fingerprint.a"
  "libwk_fingerprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wk_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for wk_fingerprint.
# This may be replaced when dependencies are built.

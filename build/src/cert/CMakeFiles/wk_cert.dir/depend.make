# Empty dependencies file for wk_cert.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wk_cert.dir/certificate.cpp.o"
  "CMakeFiles/wk_cert.dir/certificate.cpp.o.d"
  "CMakeFiles/wk_cert.dir/distinguished_name.cpp.o"
  "CMakeFiles/wk_cert.dir/distinguished_name.cpp.o.d"
  "CMakeFiles/wk_cert.dir/tlv.cpp.o"
  "CMakeFiles/wk_cert.dir/tlv.cpp.o.d"
  "libwk_cert.a"
  "libwk_cert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wk_cert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libwk_cert.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/wk_util.dir/date.cpp.o"
  "CMakeFiles/wk_util.dir/date.cpp.o.d"
  "CMakeFiles/wk_util.dir/hex.cpp.o"
  "CMakeFiles/wk_util.dir/hex.cpp.o.d"
  "CMakeFiles/wk_util.dir/thread_pool.cpp.o"
  "CMakeFiles/wk_util.dir/thread_pool.cpp.o.d"
  "libwk_util.a"
  "libwk_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wk_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

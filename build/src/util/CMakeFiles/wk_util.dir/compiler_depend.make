# Empty compiler generated dependencies file for wk_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libwk_util.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/wk_rng.dir/entropy_pool.cpp.o"
  "CMakeFiles/wk_rng.dir/entropy_pool.cpp.o.d"
  "CMakeFiles/wk_rng.dir/getrandom.cpp.o"
  "CMakeFiles/wk_rng.dir/getrandom.cpp.o.d"
  "CMakeFiles/wk_rng.dir/urandom.cpp.o"
  "CMakeFiles/wk_rng.dir/urandom.cpp.o.d"
  "libwk_rng.a"
  "libwk_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wk_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

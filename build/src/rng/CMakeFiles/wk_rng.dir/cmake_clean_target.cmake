file(REMOVE_RECURSE
  "libwk_rng.a"
)

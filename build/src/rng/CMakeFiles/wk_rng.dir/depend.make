# Empty dependencies file for wk_rng.
# This may be replaced when dependencies are built.

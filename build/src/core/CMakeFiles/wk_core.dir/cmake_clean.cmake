file(REMOVE_RECURSE
  "CMakeFiles/wk_core.dir/scan_store.cpp.o"
  "CMakeFiles/wk_core.dir/scan_store.cpp.o.d"
  "CMakeFiles/wk_core.dir/study.cpp.o"
  "CMakeFiles/wk_core.dir/study.cpp.o.d"
  "libwk_core.a"
  "libwk_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wk_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for wk_core.
# This may be replaced when dependencies are built.

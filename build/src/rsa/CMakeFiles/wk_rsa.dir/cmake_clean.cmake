file(REMOVE_RECURSE
  "CMakeFiles/wk_rsa.dir/ibm_nine_primes.cpp.o"
  "CMakeFiles/wk_rsa.dir/ibm_nine_primes.cpp.o.d"
  "CMakeFiles/wk_rsa.dir/key.cpp.o"
  "CMakeFiles/wk_rsa.dir/key.cpp.o.d"
  "CMakeFiles/wk_rsa.dir/keygen.cpp.o"
  "CMakeFiles/wk_rsa.dir/keygen.cpp.o.d"
  "CMakeFiles/wk_rsa.dir/pkcs1.cpp.o"
  "CMakeFiles/wk_rsa.dir/pkcs1.cpp.o.d"
  "libwk_rsa.a"
  "libwk_rsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wk_rsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

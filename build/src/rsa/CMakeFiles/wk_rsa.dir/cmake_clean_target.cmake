file(REMOVE_RECURSE
  "libwk_rsa.a"
)

# Empty compiler generated dependencies file for wk_rsa.
# This may be replaced when dependencies are built.

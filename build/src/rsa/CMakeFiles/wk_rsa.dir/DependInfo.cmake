
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rsa/ibm_nine_primes.cpp" "src/rsa/CMakeFiles/wk_rsa.dir/ibm_nine_primes.cpp.o" "gcc" "src/rsa/CMakeFiles/wk_rsa.dir/ibm_nine_primes.cpp.o.d"
  "/root/repo/src/rsa/key.cpp" "src/rsa/CMakeFiles/wk_rsa.dir/key.cpp.o" "gcc" "src/rsa/CMakeFiles/wk_rsa.dir/key.cpp.o.d"
  "/root/repo/src/rsa/keygen.cpp" "src/rsa/CMakeFiles/wk_rsa.dir/keygen.cpp.o" "gcc" "src/rsa/CMakeFiles/wk_rsa.dir/keygen.cpp.o.d"
  "/root/repo/src/rsa/pkcs1.cpp" "src/rsa/CMakeFiles/wk_rsa.dir/pkcs1.cpp.o" "gcc" "src/rsa/CMakeFiles/wk_rsa.dir/pkcs1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bn/CMakeFiles/wk_bn.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/wk_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wk_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/wk_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/wk_bn.dir/bigint.cpp.o"
  "CMakeFiles/wk_bn.dir/bigint.cpp.o.d"
  "CMakeFiles/wk_bn.dir/div.cpp.o"
  "CMakeFiles/wk_bn.dir/div.cpp.o.d"
  "CMakeFiles/wk_bn.dir/gcd.cpp.o"
  "CMakeFiles/wk_bn.dir/gcd.cpp.o.d"
  "CMakeFiles/wk_bn.dir/io.cpp.o"
  "CMakeFiles/wk_bn.dir/io.cpp.o.d"
  "CMakeFiles/wk_bn.dir/modular.cpp.o"
  "CMakeFiles/wk_bn.dir/modular.cpp.o.d"
  "CMakeFiles/wk_bn.dir/mul.cpp.o"
  "CMakeFiles/wk_bn.dir/mul.cpp.o.d"
  "CMakeFiles/wk_bn.dir/prime.cpp.o"
  "CMakeFiles/wk_bn.dir/prime.cpp.o.d"
  "libwk_bn.a"
  "libwk_bn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wk_bn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

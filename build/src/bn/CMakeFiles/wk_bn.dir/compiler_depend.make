# Empty compiler generated dependencies file for wk_bn.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libwk_bn.a"
)

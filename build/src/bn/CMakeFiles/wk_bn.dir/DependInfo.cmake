
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bn/bigint.cpp" "src/bn/CMakeFiles/wk_bn.dir/bigint.cpp.o" "gcc" "src/bn/CMakeFiles/wk_bn.dir/bigint.cpp.o.d"
  "/root/repo/src/bn/div.cpp" "src/bn/CMakeFiles/wk_bn.dir/div.cpp.o" "gcc" "src/bn/CMakeFiles/wk_bn.dir/div.cpp.o.d"
  "/root/repo/src/bn/gcd.cpp" "src/bn/CMakeFiles/wk_bn.dir/gcd.cpp.o" "gcc" "src/bn/CMakeFiles/wk_bn.dir/gcd.cpp.o.d"
  "/root/repo/src/bn/io.cpp" "src/bn/CMakeFiles/wk_bn.dir/io.cpp.o" "gcc" "src/bn/CMakeFiles/wk_bn.dir/io.cpp.o.d"
  "/root/repo/src/bn/modular.cpp" "src/bn/CMakeFiles/wk_bn.dir/modular.cpp.o" "gcc" "src/bn/CMakeFiles/wk_bn.dir/modular.cpp.o.d"
  "/root/repo/src/bn/mul.cpp" "src/bn/CMakeFiles/wk_bn.dir/mul.cpp.o" "gcc" "src/bn/CMakeFiles/wk_bn.dir/mul.cpp.o.d"
  "/root/repo/src/bn/prime.cpp" "src/bn/CMakeFiles/wk_bn.dir/prime.cpp.o" "gcc" "src/bn/CMakeFiles/wk_bn.dir/prime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libwk_crypto.a"
)

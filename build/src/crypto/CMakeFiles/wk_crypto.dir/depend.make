# Empty dependencies file for wk_crypto.
# This may be replaced when dependencies are built.

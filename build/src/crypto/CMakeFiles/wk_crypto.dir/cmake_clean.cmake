file(REMOVE_RECURSE
  "CMakeFiles/wk_crypto.dir/sha256.cpp.o"
  "CMakeFiles/wk_crypto.dir/sha256.cpp.o.d"
  "libwk_crypto.a"
  "libwk_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wk_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

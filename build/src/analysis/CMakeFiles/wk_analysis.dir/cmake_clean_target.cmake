file(REMOVE_RECURSE
  "libwk_analysis.a"
)

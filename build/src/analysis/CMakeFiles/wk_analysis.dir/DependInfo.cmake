
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/chains.cpp" "src/analysis/CMakeFiles/wk_analysis.dir/chains.cpp.o" "gcc" "src/analysis/CMakeFiles/wk_analysis.dir/chains.cpp.o.d"
  "/root/repo/src/analysis/csv.cpp" "src/analysis/CMakeFiles/wk_analysis.dir/csv.cpp.o" "gcc" "src/analysis/CMakeFiles/wk_analysis.dir/csv.cpp.o.d"
  "/root/repo/src/analysis/events.cpp" "src/analysis/CMakeFiles/wk_analysis.dir/events.cpp.o" "gcc" "src/analysis/CMakeFiles/wk_analysis.dir/events.cpp.o.d"
  "/root/repo/src/analysis/lifetimes.cpp" "src/analysis/CMakeFiles/wk_analysis.dir/lifetimes.cpp.o" "gcc" "src/analysis/CMakeFiles/wk_analysis.dir/lifetimes.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/wk_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/wk_analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/scorecard.cpp" "src/analysis/CMakeFiles/wk_analysis.dir/scorecard.cpp.o" "gcc" "src/analysis/CMakeFiles/wk_analysis.dir/scorecard.cpp.o.d"
  "/root/repo/src/analysis/timeseries.cpp" "src/analysis/CMakeFiles/wk_analysis.dir/timeseries.cpp.o" "gcc" "src/analysis/CMakeFiles/wk_analysis.dir/timeseries.cpp.o.d"
  "/root/repo/src/analysis/transitions.cpp" "src/analysis/CMakeFiles/wk_analysis.dir/transitions.cpp.o" "gcc" "src/analysis/CMakeFiles/wk_analysis.dir/transitions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/wk_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/fingerprint/CMakeFiles/wk_fingerprint.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wk_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cert/CMakeFiles/wk_cert.dir/DependInfo.cmake"
  "/root/repo/build/src/rsa/CMakeFiles/wk_rsa.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/wk_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/wk_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/bn/CMakeFiles/wk_bn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for wk_analysis.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wk_analysis.dir/chains.cpp.o"
  "CMakeFiles/wk_analysis.dir/chains.cpp.o.d"
  "CMakeFiles/wk_analysis.dir/csv.cpp.o"
  "CMakeFiles/wk_analysis.dir/csv.cpp.o.d"
  "CMakeFiles/wk_analysis.dir/events.cpp.o"
  "CMakeFiles/wk_analysis.dir/events.cpp.o.d"
  "CMakeFiles/wk_analysis.dir/lifetimes.cpp.o"
  "CMakeFiles/wk_analysis.dir/lifetimes.cpp.o.d"
  "CMakeFiles/wk_analysis.dir/report.cpp.o"
  "CMakeFiles/wk_analysis.dir/report.cpp.o.d"
  "CMakeFiles/wk_analysis.dir/scorecard.cpp.o"
  "CMakeFiles/wk_analysis.dir/scorecard.cpp.o.d"
  "CMakeFiles/wk_analysis.dir/timeseries.cpp.o"
  "CMakeFiles/wk_analysis.dir/timeseries.cpp.o.d"
  "CMakeFiles/wk_analysis.dir/transitions.cpp.o"
  "CMakeFiles/wk_analysis.dir/transitions.cpp.o.d"
  "libwk_analysis.a"
  "libwk_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wk_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

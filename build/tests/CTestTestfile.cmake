# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/bn_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/rsa_test[1]_include.cmake")
include("/root/repo/build/tests/dsa_test[1]_include.cmake")
include("/root/repo/build/tests/cert_test[1]_include.cmake")
include("/root/repo/build/tests/netsim_test[1]_include.cmake")
include("/root/repo/build/tests/batchgcd_test[1]_include.cmake")
include("/root/repo/build/tests/fingerprint_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/study_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/scorecard_test[1]_include.cmake")
include("/root/repo/build/tests/bn_gmp_test[1]_include.cmake")

# Empty dependencies file for scorecard_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/scorecard_test.dir/scorecard_test.cpp.o"
  "CMakeFiles/scorecard_test.dir/scorecard_test.cpp.o.d"
  "scorecard_test"
  "scorecard_test.pdb"
  "scorecard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scorecard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bn_gmp_test.
# This may be replaced when dependencies are built.

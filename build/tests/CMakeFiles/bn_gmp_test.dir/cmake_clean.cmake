file(REMOVE_RECURSE
  "CMakeFiles/bn_gmp_test.dir/bn_gmp_test.cpp.o"
  "CMakeFiles/bn_gmp_test.dir/bn_gmp_test.cpp.o.d"
  "bn_gmp_test"
  "bn_gmp_test.pdb"
  "bn_gmp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bn_gmp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/netsim_test.cpp" "tests/CMakeFiles/netsim_test.dir/netsim_test.cpp.o" "gcc" "tests/CMakeFiles/netsim_test.dir/netsim_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/wk_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/fingerprint/CMakeFiles/wk_fingerprint.dir/DependInfo.cmake"
  "/root/repo/build/src/batchgcd/CMakeFiles/wk_batchgcd.dir/DependInfo.cmake"
  "/root/repo/build/src/dsa/CMakeFiles/wk_dsa.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/wk_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/cert/CMakeFiles/wk_cert.dir/DependInfo.cmake"
  "/root/repo/build/src/rsa/CMakeFiles/wk_rsa.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/wk_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/bn/CMakeFiles/wk_bn.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/wk_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "../bench/fig4_innominate"
  "../bench/fig4_innominate.pdb"
  "CMakeFiles/fig4_innominate.dir/fig4_innominate.cpp.o"
  "CMakeFiles/fig4_innominate.dir/fig4_innominate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_innominate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig4_innominate.
# This may be replaced when dependencies are built.

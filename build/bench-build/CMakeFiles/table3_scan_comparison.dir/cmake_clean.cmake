file(REMOVE_RECURSE
  "../bench/table3_scan_comparison"
  "../bench/table3_scan_comparison.pdb"
  "CMakeFiles/table3_scan_comparison.dir/table3_scan_comparison.cpp.o"
  "CMakeFiles/table3_scan_comparison.dir/table3_scan_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_scan_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig10_newly_vulnerable.
# This may be replaced when dependencies are built.

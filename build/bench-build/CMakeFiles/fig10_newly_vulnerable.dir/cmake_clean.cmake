file(REMOVE_RECURSE
  "../bench/fig10_newly_vulnerable"
  "../bench/fig10_newly_vulnerable.pdb"
  "CMakeFiles/fig10_newly_vulnerable.dir/fig10_newly_vulnerable.cpp.o"
  "CMakeFiles/fig10_newly_vulnerable.dir/fig10_newly_vulnerable.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_newly_vulnerable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig5_ibm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig5_ibm"
  "../bench/fig5_ibm.pdb"
  "CMakeFiles/fig5_ibm.dir/fig5_ibm.cpp.o"
  "CMakeFiles/fig5_ibm.dir/fig5_ibm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ibm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table1_dataset_summary.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig6_cisco"
  "../bench/fig6_cisco.pdb"
  "CMakeFiles/fig6_cisco.dir/fig6_cisco.cpp.o"
  "CMakeFiles/fig6_cisco.dir/fig6_cisco.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cisco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig6_cisco.
# This may be replaced when dependencies are built.

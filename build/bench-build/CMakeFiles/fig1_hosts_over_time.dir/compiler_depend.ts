# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig1_hosts_over_time.

file(REMOVE_RECURSE
  "../bench/fig1_hosts_over_time"
  "../bench/fig1_hosts_over_time.pdb"
  "CMakeFiles/fig1_hosts_over_time.dir/fig1_hosts_over_time.cpp.o"
  "CMakeFiles/fig1_hosts_over_time.dir/fig1_hosts_over_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_hosts_over_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

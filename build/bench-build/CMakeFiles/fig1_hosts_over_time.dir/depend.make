# Empty dependencies file for fig1_hosts_over_time.
# This may be replaced when dependencies are built.

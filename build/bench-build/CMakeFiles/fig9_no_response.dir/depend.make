# Empty dependencies file for fig9_no_response.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig9_no_response"
  "../bench/fig9_no_response.pdb"
  "CMakeFiles/fig9_no_response.dir/fig9_no_response.cpp.o"
  "CMakeFiles/fig9_no_response.dir/fig9_no_response.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_no_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/fig3_juniper"
  "../bench/fig3_juniper.pdb"
  "CMakeFiles/fig3_juniper.dir/fig3_juniper.cpp.o"
  "CMakeFiles/fig3_juniper.dir/fig3_juniper.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_juniper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

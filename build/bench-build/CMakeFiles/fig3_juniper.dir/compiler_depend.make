# Empty compiler generated dependencies file for fig3_juniper.
# This may be replaced when dependencies are built.

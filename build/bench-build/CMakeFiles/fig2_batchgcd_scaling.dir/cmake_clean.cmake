file(REMOVE_RECURSE
  "../bench/fig2_batchgcd_scaling"
  "../bench/fig2_batchgcd_scaling.pdb"
  "CMakeFiles/fig2_batchgcd_scaling.dir/fig2_batchgcd_scaling.cpp.o"
  "CMakeFiles/fig2_batchgcd_scaling.dir/fig2_batchgcd_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_batchgcd_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig2_batchgcd_scaling.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for table2_vendor_responses.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/table2_vendor_responses"
  "../bench/table2_vendor_responses.pdb"
  "CMakeFiles/table2_vendor_responses.dir/table2_vendor_responses.cpp.o"
  "CMakeFiles/table2_vendor_responses.dir/table2_vendor_responses.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_vendor_responses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

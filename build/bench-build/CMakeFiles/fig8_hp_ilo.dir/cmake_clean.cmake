file(REMOVE_RECURSE
  "../bench/fig8_hp_ilo"
  "../bench/fig8_hp_ilo.pdb"
  "CMakeFiles/fig8_hp_ilo.dir/fig8_hp_ilo.cpp.o"
  "CMakeFiles/fig8_hp_ilo.dir/fig8_hp_ilo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_hp_ilo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

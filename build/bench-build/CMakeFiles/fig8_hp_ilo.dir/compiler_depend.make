# Empty compiler generated dependencies file for fig8_hp_ilo.
# This may be replaced when dependencies are built.

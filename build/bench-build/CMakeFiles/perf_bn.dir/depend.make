# Empty dependencies file for perf_bn.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/perf_bn"
  "../bench/perf_bn.pdb"
  "CMakeFiles/perf_bn.dir/perf_bn.cpp.o"
  "CMakeFiles/perf_bn.dir/perf_bn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_bn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table5_openssl_fingerprint.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/table5_openssl_fingerprint"
  "../bench/table5_openssl_fingerprint.pdb"
  "CMakeFiles/table5_openssl_fingerprint.dir/table5_openssl_fingerprint.cpp.o"
  "CMakeFiles/table5_openssl_fingerprint.dir/table5_openssl_fingerprint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_openssl_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

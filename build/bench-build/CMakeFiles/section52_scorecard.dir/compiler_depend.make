# Empty compiler generated dependencies file for section52_scorecard.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/section52_scorecard"
  "../bench/section52_scorecard.pdb"
  "CMakeFiles/section52_scorecard.dir/section52_scorecard.cpp.o"
  "CMakeFiles/section52_scorecard.dir/section52_scorecard.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/section52_scorecard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

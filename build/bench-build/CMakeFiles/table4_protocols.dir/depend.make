# Empty dependencies file for table4_protocols.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/table4_protocols"
  "../bench/table4_protocols.pdb"
  "CMakeFiles/table4_protocols.dir/table4_protocols.cpp.o"
  "CMakeFiles/table4_protocols.dir/table4_protocols.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for perf_batchgcd.
# This may be replaced when dependencies are built.

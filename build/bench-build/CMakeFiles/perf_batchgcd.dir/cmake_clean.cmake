file(REMOVE_RECURSE
  "../bench/perf_batchgcd"
  "../bench/perf_batchgcd.pdb"
  "CMakeFiles/perf_batchgcd.dir/perf_batchgcd.cpp.o"
  "CMakeFiles/perf_batchgcd.dir/perf_batchgcd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_batchgcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

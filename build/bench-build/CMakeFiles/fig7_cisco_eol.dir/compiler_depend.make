# Empty compiler generated dependencies file for fig7_cisco_eol.
# This may be replaced when dependencies are built.

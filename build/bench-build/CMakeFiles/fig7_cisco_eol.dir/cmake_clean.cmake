file(REMOVE_RECURSE
  "../bench/fig7_cisco_eol"
  "../bench/fig7_cisco_eol.pdb"
  "CMakeFiles/fig7_cisco_eol.dir/fig7_cisco_eol.cpp.o"
  "CMakeFiles/fig7_cisco_eol.dir/fig7_cisco_eol.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_cisco_eol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

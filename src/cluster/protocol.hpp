// Wire protocol for the multi-process batch-GCD cluster.
//
// The coordinator and each worker speak length-prefixed, CRC-framed binary
// messages over a TCP socket (127.0.0.1 — this models the paper's cluster
// interconnect, it is not an internet-facing service):
//
//   frame: u32 payload-length | u32 crc32(payload) | payload
//   payload: u8 message-type | message body (core::BufferWriter encoding)
//
// The CRC is not decorative: the fault injector's frame tier garbles
// payload bytes *after* the checksum is computed, so a corrupted frame
// reaches the receiver and must be rejected there. FrameConn::recv()
// discards CRC-mismatched frames (reporting them as kCorrupt so the caller
// can count and react) and keeps the connection alive — recovery happens at
// the task layer via timeouts and reassignment, exactly as a real lossy
// transport would force.
//
// Message flow (protocol v3):
//
//   worker -> coordinator   Hello             (identify: worker id, pid, ver)
//   coordinator -> worker   HelloAck          (fingerprint, heartbeat, session)
//   coordinator -> worker   StreamBegin       (open a subset/product transfer)
//   coordinator -> worker   StreamChunk       (offset-addressed payload slice)
//   worker -> coordinator   StreamAck         (contiguous-prefix receipt)
//   coordinator -> worker   TaskAssign        (task + v3: trace context)
//   worker -> coordinator   TaskResult        (divisor claims, session seq)
//   coordinator -> worker   Ping              (liveness + result/telemetry ack)
//   worker -> coordinator   Pong              (echo + stats + v3: worker clock)
//   worker -> coordinator   TelemetrySnapshot (v3: metrics/spans/proc stats)
//   worker -> coordinator   ReconnectHello    (resume session after link loss)
//   coordinator -> worker   ReconnectAck      (accept/reject + replay point)
//   coordinator -> worker   Shutdown          (drain, flush telemetry, exit 0)
//
// Version negotiation: Hello/ReconnectHello carry the worker's protocol
// version and the coordinator accepts anything in [kMinProtocolVersion,
// kProtocolVersion], then speaks the *worker's* dialect on that link. The
// v3 extensions are strictly additive tail fields (TaskAssign trace
// context, Ping telemetry ack, Pong worker-clock sample) plus one new
// frame type (TelemetrySnapshot), so a v2 worker keeps working: it never
// receives the extended encodings (per-slot version-aware encode) and the
// coordinator simply gets no telemetry from it. Decoders read the tail
// fields only when present, because decode_guard rejects trailing bytes —
// an old decoder cannot skip fields it does not know about.
//
// Subset moduli and product roots are streamed once per *session* in
// chunked, offset-addressed frames (StreamBegin/Chunk/Ack — go-back-N with
// a bounded send window for backpressure) and cached worker-side, so the
// k^2 TaskAssign frames stay tiny — the same data-placement shape as the
// paper's cluster, where each node holds its subset locally and products
// move between nodes. A session survives TCP disconnection: the worker
// dials back and offers ReconnectHello{session_id, last_committed_seq};
// the coordinator resumes in-flight transfers from the acked prefix and
// the worker replays unacknowledged TaskResults, which the coordinator
// deduplicates by session-scoped result sequence and by task state — so
// every task commits to the WKCP journal exactly once no matter how often
// the link flaps.
//
// The connection tier of the fault injector perturbs the link itself
// (abrupt disconnect, timed bidirectional partition, half-open, slow-drip
// throttle); FrameConn implements those as link-state windows that mute or
// throttle *all* frames — control included — which is what distinguishes a
// partition from per-frame loss.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "batchgcd/task_journal.hpp"
#include "bn/bigint.hpp"
#include "util/fault_injector.hpp"

namespace weakkeys::cluster {

/// Bumped on any incompatible frame/message change; Hello carries it and
/// the coordinator refuses workers outside [kMinProtocolVersion, this].
/// v2 added sessions (reconnect handshake, result sequencing) and chunked
/// subset/product streaming; v3 added the telemetry plane (TaskAssign trace
/// context, TelemetrySnapshot export, Pong clock samples) as additive tail
/// fields, so v2 remains speakable on a per-link basis.
inline constexpr std::uint32_t kProtocolVersion = 3;

/// Oldest dialect the coordinator still speaks (see version negotiation
/// notes above).
inline constexpr std::uint32_t kMinProtocolVersion = 2;

/// Upper bound on a frame payload; a length prefix beyond this means the
/// stream is garbage (or hostile) and the connection is dropped rather
/// than letting read_full() wait on gigabytes that will never arrive.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 28;  // 256 MiB

enum class MsgType : std::uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kSubsetData = 3,   ///< retained as the *payload encoding* of a stream
  kProductData = 4,  ///< retained as the *payload encoding* of a stream
  kTaskAssign = 5,
  kTaskResult = 6,
  kPing = 7,
  kPong = 8,
  kShutdown = 9,
  kReconnectHello = 10,
  kReconnectAck = 11,
  kStreamBegin = 12,
  kStreamChunk = 13,
  kStreamAck = 14,
  kTelemetrySnapshot = 15,  ///< v3: worker metrics/spans/proc-stats export
};

struct Frame {
  MsgType type = MsgType::kHello;
  std::vector<std::uint8_t> body;  ///< payload minus the type byte
};

// -- messages ---------------------------------------------------------------
// Each message encodes its body with core::BufferWriter (fixed-width
// little-endian) and decodes with decode(), returning nullopt on any
// malformed body (short reads throw inside and are caught — a frame that
// passed the CRC can still be nonsense if the sender is broken).

struct HelloMsg {
  std::uint32_t worker_id = 0;
  std::uint64_t pid = 0;
  std::uint32_t version = kProtocolVersion;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static std::optional<HelloMsg> decode(const std::vector<std::uint8_t>& body);
};

struct HelloAckMsg {
  std::uint64_t fingerprint = 0;  ///< corpus identity (sanity check)
  std::uint32_t heartbeat_interval_ms = 0;
  std::uint64_t session_id = 0;  ///< minted per handshake; reconnect key

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static std::optional<HelloAckMsg> decode(
      const std::vector<std::uint8_t>& body);
};

/// Offered by a worker dialing back after link loss: resume `session_id`
/// instead of starting over. `last_committed_seq` is the highest result
/// sequence the coordinator has acknowledged (via Ping) — everything the
/// worker sent after it is replayed once the ReconnectAck names the
/// coordinator's own high-water mark.
struct ReconnectHelloMsg {
  std::uint32_t worker_id = 0;
  std::uint64_t pid = 0;
  std::uint64_t session_id = 0;
  std::uint64_t last_committed_seq = 0;
  std::uint32_t version = kProtocolVersion;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static std::optional<ReconnectHelloMsg> decode(
      const std::vector<std::uint8_t>& body);
};

/// accepted == 0 means the session expired (grace window passed, or the
/// coordinator restarted); the worker must exit and let the supervisor
/// spawn a fresh incarnation. On acceptance the worker prunes its outbox
/// through `ack_result_seq` and replays the rest.
struct ReconnectAckMsg {
  std::uint8_t accepted = 0;
  std::uint64_t ack_result_seq = 0;
  std::uint32_t heartbeat_interval_ms = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static std::optional<ReconnectAckMsg> decode(
      const std::vector<std::uint8_t>& body);
};

struct SubsetDataMsg {
  std::uint32_t subset = 0;  ///< leaf subset index a
  std::vector<bn::BigInt> moduli;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static std::optional<SubsetDataMsg> decode(
      const std::vector<std::uint8_t>& body);
};

struct ProductDataMsg {
  std::uint32_t subset = 0;  ///< product subset index b
  bn::BigInt product;        ///< root of subset b's product tree

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static std::optional<ProductDataMsg> decode(
      const std::vector<std::uint8_t>& body);
};

struct TaskAssignMsg {
  std::uint32_t task = 0;            ///< task id = b * k + a
  std::uint32_t product_subset = 0;  ///< b
  std::uint32_t leaf_subset = 0;     ///< a
  std::uint32_t attempt = 0;         ///< 0-based, for logging/tracing
  // v3 trace context: the worker's task spans become children of the
  // coordinator's assign span so one task is one causally-linked tree
  // across both processes. Zero trace_id = tracing off (worker opens none).
  std::uint64_t trace_id = 0;        ///< run-unique trace identity
  std::uint64_t parent_span = 0;     ///< coordinator-side assign span id
  std::int64_t assign_ts_ns = 0;     ///< coordinator steady clock at send

  /// v2 peers get the legacy 4-field body (decode_guard rejects trailing
  /// bytes, so the tail must not be sent to them); v3 gets the full form.
  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::uint32_t version = kProtocolVersion) const;
  static std::optional<TaskAssignMsg> decode(
      const std::vector<std::uint8_t>& body);
};

struct TaskResultMsg {
  std::uint32_t task = 0;
  std::uint32_t worker_id = 0;
  /// Session-scoped monotonic sequence (1-based) assigned by the worker;
  /// the coordinator's dedup key for replays after reconnect.
  std::uint64_t result_seq = 0;
  std::vector<batchgcd::TaskClaim> claims;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static std::optional<TaskResultMsg> decode(
      const std::vector<std::uint8_t>& body);
};

struct PingMsg {
  std::uint64_t seq = 0;
  std::int64_t t_send_ns = 0;  ///< coordinator steady-clock, echoed back
  /// Highest result_seq the coordinator has received this session; the
  /// worker prunes its replay outbox through it.
  std::uint64_t ack_result_seq = 0;
  /// v3: highest TelemetrySnapshot seq the coordinator has ingested this
  /// session; the worker prunes its telemetry outbox through it (same
  /// loss-tolerance shape as results — unacked snapshots replay after a
  /// reconnect).
  std::uint64_t ack_telemetry_seq = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::uint32_t version = kProtocolVersion) const;
  static std::optional<PingMsg> decode(const std::vector<std::uint8_t>& body);
};

struct PongMsg {
  std::uint64_t seq = 0;
  std::int64_t t_send_ns = 0;      ///< echoed from the Ping
  std::uint32_t tasks_done = 0;    ///< tasks this incarnation completed
  std::uint64_t frames_sent = 0;   ///< worker-side transport stats,
  std::uint64_t frames_dropped = 0;  ///< surfaced in cluster.* metrics
  /// v3: the worker's steady clock when this Pong was built. Combined with
  /// the coordinator's send/receive timestamps for the same ping seq, this
  /// is one clock-offset observation (midpoint method, error <= RTT/2) —
  /// how the FleetAggregator rebases worker span timestamps.
  std::int64_t worker_now_ns = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::uint32_t version = kProtocolVersion) const;
  static std::optional<PongMsg> decode(const std::vector<std::uint8_t>& body);
};

// -- telemetry export (v3) --------------------------------------------------

/// One completed worker-side span, timestamped on the worker's steady
/// clock: `ts_us` is microseconds since the *epoch* named by the owning
/// snapshot's `trace_epoch_ns`, so the coordinator can rebase it with the
/// estimated clock offset. `depth` nests spans sharing a thread lane, and
/// `args` carries small integer annotations (task id, attempt, claims).
struct TelemetrySpan {
  std::string name;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t depth = 0;
  std::vector<std::pair<std::string, std::int64_t>> args;
};

/// Periodic worker → coordinator telemetry export (v3 only). Snapshots are
/// sequenced per session and kept in a worker-side outbox until the Ping
/// path acks them, so a link flap loses nothing: the worker replays unacked
/// snapshots after reconnect, and the coordinator dedups by (seq) plus by
/// each span's global index (`first_span_index` + offset). Counter/gauge
/// values are absolute (last-write-wins on the coordinator), which makes
/// replays and droppage harmless.
struct TelemetrySnapshotMsg {
  std::uint32_t worker_id = 0;
  std::uint64_t seq = 0;               ///< session-scoped, 1-based
  std::uint64_t first_span_index = 0;  ///< global index of spans[0]
  /// Worker steady-clock ns at this incarnation's span epoch (ts_us == 0).
  std::int64_t trace_epoch_ns = 0;
  // Process stats (sample_proc_self at snapshot time; -1 = unavailable).
  std::int64_t rss_kb = -1;
  std::int64_t peak_rss_kb = -1;
  std::int64_t cpu_user_us = -1;
  std::int64_t cpu_sys_us = -1;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<TelemetrySpan> spans;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static std::optional<TelemetrySnapshotMsg> decode(
      const std::vector<std::uint8_t>& body);
};

// -- chunked streaming ------------------------------------------------------
// Large payloads (subset moduli, product roots) travel as a stream: one
// StreamBegin announcing identity/size/checksum, then offset-addressed
// StreamChunks. The receiver accepts only the chunk extending its
// contiguous prefix (go-back-N) and acks the prefix length; the sender
// keeps at most a window of unacked bytes in flight (backpressure) and
// rewinds to the acked prefix on retransmit timeout or reconnect — which
// is what makes a transfer resumable mid-stream.

/// What a completed stream decodes into.
enum class StreamKind : std::uint8_t {
  kSubset = 0,   ///< payload is a SubsetDataMsg body
  kProduct = 1,  ///< payload is a ProductDataMsg body
};

struct StreamBeginMsg {
  std::uint32_t stream_id = 0;  ///< coordinator-unique transfer id
  std::uint8_t kind = 0;        ///< StreamKind
  std::uint32_t subset = 0;     ///< which subset/product this carries
  std::uint64_t total_bytes = 0;
  std::uint32_t payload_crc = 0;  ///< crc32 of the whole reassembled payload

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static std::optional<StreamBeginMsg> decode(
      const std::vector<std::uint8_t>& body);
};

struct StreamChunkMsg {
  std::uint32_t stream_id = 0;
  std::uint64_t offset = 0;  ///< byte offset of `data` within the payload
  std::vector<std::uint8_t> data;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static std::optional<StreamChunkMsg> decode(
      const std::vector<std::uint8_t>& body);
};

struct StreamAckMsg {
  std::uint32_t stream_id = 0;
  std::uint64_t received = 0;  ///< contiguous prefix bytes now held

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static std::optional<StreamAckMsg> decode(
      const std::vector<std::uint8_t>& body);
};

// Shutdown has an empty body.

// -- framed connection ------------------------------------------------------

/// What recv() observed. kCorrupt keeps the connection usable — the frame
/// was consumed and discarded; kClosed/kError end it.
enum class RecvStatus : std::uint8_t {
  kOk = 0,
  kTimeout,  ///< nothing arrived within the deadline
  kCorrupt,  ///< a whole frame arrived but its CRC did not match
  kClosed,   ///< EOF, oversized length prefix, or a hard socket error
};

/// Cumulative transport counters for one connection. Reads are racy-but-
/// monotonic (plain loads mirrored into metrics); exactness is not needed.
struct FrameStats {
  std::uint64_t sent = 0;     ///< frames actually written
  std::uint64_t dropped = 0;  ///< frames the injector swallowed
  std::uint64_t garbled = 0;  ///< frames the injector corrupted on send
  std::uint64_t delayed = 0;  ///< frames the injector delayed
  std::uint64_t corrupt = 0;  ///< received frames rejected by CRC
  // Connection-tier events and their fallout:
  std::uint64_t conn_disconnects = 0;  ///< link severed by the injector
  std::uint64_t conn_partitions = 0;   ///< bidirectional mute windows opened
  std::uint64_t conn_half_opens = 0;   ///< TX-only mute windows opened
  std::uint64_t conn_drips = 0;        ///< slow-drip windows opened
  std::uint64_t tx_suppressed = 0;     ///< frames swallowed while TX-muted
  std::uint64_t rx_discarded = 0;      ///< frames discarded while RX-muted
  std::uint64_t dripped = 0;           ///< frames throttled by slow-drip
};

/// One framed, fault-injectable connection endpoint. send() is thread-safe
/// (the worker's RX thread answers pings while its compute thread sends
/// results); recv() must only be called from one thread at a time. Does not
/// own the fd.
class FrameConn {
 public:
  /// `stream` seeds the injector's frame tier: each direction of each
  /// worker connection is its own stream, so fault schedules are stable
  /// per-direction regardless of traffic on other connections.
  /// `tx_seq_start`/`conn_seq_start` restore the injector counters of a
  /// previous connection on the same stream: a reconnected link continues
  /// the deterministic fault schedule where the old one left off instead
  /// of replaying it from zero (which would re-sever a fresh link with the
  /// exact fault that killed its predecessor, forever).
  FrameConn(int fd, std::uint64_t stream,
            const util::FaultInjector* injector = nullptr,
            std::uint64_t tx_seq_start = 0, std::uint64_t conn_seq_start = 0);

  /// Frames and writes one message. When `injectable`, the injector is
  /// consulted first: a drop decision skips the write entirely (the
  /// receiver sees nothing), a garble flips a payload byte *after* the CRC
  /// is computed, a delay sleeps before writing. Returns false only on a
  /// hard socket error — an injected drop "succeeds" from the sender's
  /// point of view, exactly like a lost packet.
  ///
  /// Callers mark only data-plane frames (TaskAssign, TaskResult)
  /// injectable. Control frames (handshake, cache fills, heartbeats,
  /// shutdown) are sent clean: a dropped data frame is recovered by the
  /// task timeout + reassignment machinery, but a dropped Hello would only
  /// replay deterministically into an identical drop on every respawn and
  /// wedge the handshake — there is no retry layer above it to exercise.
  bool send(MsgType type, const std::vector<std::uint8_t>& body,
            bool injectable = false);

  /// Reads the next frame. Blocks up to `timeout` for the *first* byte
  /// (negative = forever); once a length prefix arrives the rest of the
  /// frame is read to completion. Frames arriving inside an RX-mute window
  /// (injected partition) are consumed and discarded as if the network had
  /// eaten them; the wait continues against the original deadline.
  RecvStatus recv(Frame* out, std::chrono::milliseconds timeout);

  [[nodiscard]] const FrameStats& stats() const { return stats_; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Injector-counter snapshots for carrying across a reconnect. Atomic so
  /// a supervisor can snapshot them while a stray late send is in flight.
  [[nodiscard]] std::uint64_t tx_seq() const {
    return tx_seq_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t conn_seq() const {
    return conn_seq_.load(std::memory_order_relaxed);
  }

 private:
  int fd_;
  std::uint64_t stream_;
  std::atomic<std::uint64_t> tx_seq_;
  std::atomic<std::uint64_t> conn_seq_;
  const util::FaultInjector* injector_;
  std::mutex tx_mu_;
  FrameStats stats_;
  // Connection-tier link state. Deadlines are steady-clock nanoseconds;
  // atomics because a send on any thread opens windows that the (single)
  // recv thread must observe.
  std::atomic<std::int64_t> tx_mute_until_ns_{0};
  std::atomic<std::int64_t> rx_mute_until_ns_{0};
  std::atomic<std::int64_t> drip_until_ns_{0};
  std::atomic<std::uint32_t> drip_delay_ms_{0};
  std::atomic<bool> severed_{false};
};

}  // namespace weakkeys::cluster

// Wire protocol for the multi-process batch-GCD cluster.
//
// The coordinator and each worker speak length-prefixed, CRC-framed binary
// messages over a TCP socket (127.0.0.1 — this models the paper's cluster
// interconnect, it is not an internet-facing service):
//
//   frame: u32 payload-length | u32 crc32(payload) | payload
//   payload: u8 message-type | message body (core::BufferWriter encoding)
//
// The CRC is not decorative: the fault injector's frame tier garbles
// payload bytes *after* the checksum is computed, so a corrupted frame
// reaches the receiver and must be rejected there. FrameConn::recv()
// discards CRC-mismatched frames (reporting them as kCorrupt so the caller
// can count and react) and keeps the connection alive — recovery happens at
// the task layer via timeouts and reassignment, exactly as a real lossy
// transport would force.
//
// Message flow:
//
//   worker -> coordinator   Hello        (identify: worker id, pid)
//   coordinator -> worker   HelloAck     (corpus fingerprint, heartbeat rate)
//   coordinator -> worker   SubsetData   (leaf subset a: the moduli)
//   coordinator -> worker   ProductData  (subset b's product-tree root)
//   coordinator -> worker   TaskAssign   (run task: product b x subset a)
//   worker -> coordinator   TaskResult   (verified upstream: divisor claims)
//   coordinator -> worker   Ping         (liveness probe, RTT timestamped)
//   worker -> coordinator   Pong         (echo + worker-side frame stats)
//   coordinator -> worker   Shutdown     (drain and exit 0)
//
// Subset moduli and product roots are sent once per (worker incarnation,
// subset) and cached worker-side, so the k^2 TaskAssign frames stay tiny —
// the same data-placement shape as the paper's cluster, where each node
// holds its subset locally and products move between nodes.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "batchgcd/task_journal.hpp"
#include "bn/bigint.hpp"
#include "util/fault_injector.hpp"

namespace weakkeys::cluster {

/// Bumped on any incompatible frame/message change; Hello carries it and
/// the coordinator refuses mismatched workers.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Upper bound on a frame payload; a length prefix beyond this means the
/// stream is garbage (or hostile) and the connection is dropped rather
/// than letting read_full() wait on gigabytes that will never arrive.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 28;  // 256 MiB

enum class MsgType : std::uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kSubsetData = 3,
  kProductData = 4,
  kTaskAssign = 5,
  kTaskResult = 6,
  kPing = 7,
  kPong = 8,
  kShutdown = 9,
};

struct Frame {
  MsgType type = MsgType::kHello;
  std::vector<std::uint8_t> body;  ///< payload minus the type byte
};

// -- messages ---------------------------------------------------------------
// Each message encodes its body with core::BufferWriter (fixed-width
// little-endian) and decodes with decode(), returning nullopt on any
// malformed body (short reads throw inside and are caught — a frame that
// passed the CRC can still be nonsense if the sender is broken).

struct HelloMsg {
  std::uint32_t worker_id = 0;
  std::uint64_t pid = 0;
  std::uint32_t version = kProtocolVersion;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static std::optional<HelloMsg> decode(const std::vector<std::uint8_t>& body);
};

struct HelloAckMsg {
  std::uint64_t fingerprint = 0;  ///< corpus identity (sanity check)
  std::uint32_t heartbeat_interval_ms = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static std::optional<HelloAckMsg> decode(
      const std::vector<std::uint8_t>& body);
};

struct SubsetDataMsg {
  std::uint32_t subset = 0;  ///< leaf subset index a
  std::vector<bn::BigInt> moduli;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static std::optional<SubsetDataMsg> decode(
      const std::vector<std::uint8_t>& body);
};

struct ProductDataMsg {
  std::uint32_t subset = 0;  ///< product subset index b
  bn::BigInt product;        ///< root of subset b's product tree

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static std::optional<ProductDataMsg> decode(
      const std::vector<std::uint8_t>& body);
};

struct TaskAssignMsg {
  std::uint32_t task = 0;            ///< task id = b * k + a
  std::uint32_t product_subset = 0;  ///< b
  std::uint32_t leaf_subset = 0;     ///< a
  std::uint32_t attempt = 0;         ///< 0-based, for logging/tracing

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static std::optional<TaskAssignMsg> decode(
      const std::vector<std::uint8_t>& body);
};

struct TaskResultMsg {
  std::uint32_t task = 0;
  std::uint32_t worker_id = 0;
  std::vector<batchgcd::TaskClaim> claims;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static std::optional<TaskResultMsg> decode(
      const std::vector<std::uint8_t>& body);
};

struct PingMsg {
  std::uint64_t seq = 0;
  std::int64_t t_send_ns = 0;  ///< coordinator steady-clock, echoed back

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static std::optional<PingMsg> decode(const std::vector<std::uint8_t>& body);
};

struct PongMsg {
  std::uint64_t seq = 0;
  std::int64_t t_send_ns = 0;      ///< echoed from the Ping
  std::uint32_t tasks_done = 0;    ///< tasks this incarnation completed
  std::uint64_t frames_sent = 0;   ///< worker-side transport stats,
  std::uint64_t frames_dropped = 0;  ///< surfaced in cluster.* metrics

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static std::optional<PongMsg> decode(const std::vector<std::uint8_t>& body);
};

// Shutdown has an empty body.

// -- framed connection ------------------------------------------------------

/// What recv() observed. kCorrupt keeps the connection usable — the frame
/// was consumed and discarded; kClosed/kError end it.
enum class RecvStatus : std::uint8_t {
  kOk = 0,
  kTimeout,  ///< nothing arrived within the deadline
  kCorrupt,  ///< a whole frame arrived but its CRC did not match
  kClosed,   ///< EOF, oversized length prefix, or a hard socket error
};

/// Cumulative transport counters for one connection. Reads are racy-but-
/// monotonic (plain loads mirrored into metrics); exactness is not needed.
struct FrameStats {
  std::uint64_t sent = 0;     ///< frames actually written
  std::uint64_t dropped = 0;  ///< frames the injector swallowed
  std::uint64_t garbled = 0;  ///< frames the injector corrupted on send
  std::uint64_t delayed = 0;  ///< frames the injector delayed
  std::uint64_t corrupt = 0;  ///< received frames rejected by CRC
};

/// One framed, fault-injectable connection endpoint. send() is thread-safe
/// (the worker's RX thread answers pings while its compute thread sends
/// results); recv() must only be called from one thread at a time. Does not
/// own the fd.
class FrameConn {
 public:
  /// `stream` seeds the injector's frame tier: each direction of each
  /// worker connection is its own stream, so fault schedules are stable
  /// per-direction regardless of traffic on other connections.
  FrameConn(int fd, std::uint64_t stream,
            const util::FaultInjector* injector = nullptr);

  /// Frames and writes one message. When `injectable`, the injector is
  /// consulted first: a drop decision skips the write entirely (the
  /// receiver sees nothing), a garble flips a payload byte *after* the CRC
  /// is computed, a delay sleeps before writing. Returns false only on a
  /// hard socket error — an injected drop "succeeds" from the sender's
  /// point of view, exactly like a lost packet.
  ///
  /// Callers mark only data-plane frames (TaskAssign, TaskResult)
  /// injectable. Control frames (handshake, cache fills, heartbeats,
  /// shutdown) are sent clean: a dropped data frame is recovered by the
  /// task timeout + reassignment machinery, but a dropped Hello would only
  /// replay deterministically into an identical drop on every respawn and
  /// wedge the handshake — there is no retry layer above it to exercise.
  bool send(MsgType type, const std::vector<std::uint8_t>& body,
            bool injectable = false);

  /// Reads the next frame. Blocks up to `timeout` for the *first* byte
  /// (negative = forever); once a length prefix arrives the rest of the
  /// frame is read to completion.
  RecvStatus recv(Frame* out, std::chrono::milliseconds timeout);

  [[nodiscard]] const FrameStats& stats() const { return stats_; }
  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_;
  std::uint64_t stream_;
  std::uint64_t tx_seq_ = 0;
  const util::FaultInjector* injector_;
  std::mutex tx_mu_;
  FrameStats stats_;
};

}  // namespace weakkeys::cluster

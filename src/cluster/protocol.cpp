#include "cluster/protocol.hpp"

#include <thread>

#include "core/binary_io.hpp"
#include "util/net.hpp"

namespace weakkeys::cluster {

namespace {

/// Wraps decode bodies: any short read inside `fn` (BufferReader throws)
/// yields nullopt instead of an exception escaping the RX loop.
template <typename T, typename Fn>
std::optional<T> decode_guard(const std::vector<std::uint8_t>& body, Fn fn) {
  try {
    core::BufferReader r(body);
    T msg = fn(r);
    if (!r.exhausted()) return std::nullopt;  // trailing garbage
    return msg;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

// -- message codecs ---------------------------------------------------------

std::vector<std::uint8_t> HelloMsg::encode() const {
  core::BufferWriter w;
  w.u32(worker_id);
  w.u64(pid);
  w.u32(version);
  return w.data();
}

std::optional<HelloMsg> HelloMsg::decode(
    const std::vector<std::uint8_t>& body) {
  return decode_guard<HelloMsg>(body, [](core::BufferReader& r) {
    HelloMsg m;
    m.worker_id = r.u32();
    m.pid = r.u64();
    m.version = r.u32();
    return m;
  });
}

std::vector<std::uint8_t> HelloAckMsg::encode() const {
  core::BufferWriter w;
  w.u64(fingerprint);
  w.u32(heartbeat_interval_ms);
  w.u64(session_id);
  return w.data();
}

std::optional<HelloAckMsg> HelloAckMsg::decode(
    const std::vector<std::uint8_t>& body) {
  return decode_guard<HelloAckMsg>(body, [](core::BufferReader& r) {
    HelloAckMsg m;
    m.fingerprint = r.u64();
    m.heartbeat_interval_ms = r.u32();
    m.session_id = r.u64();
    return m;
  });
}

std::vector<std::uint8_t> ReconnectHelloMsg::encode() const {
  core::BufferWriter w;
  w.u32(worker_id);
  w.u64(pid);
  w.u64(session_id);
  w.u64(last_committed_seq);
  w.u32(version);
  return w.data();
}

std::optional<ReconnectHelloMsg> ReconnectHelloMsg::decode(
    const std::vector<std::uint8_t>& body) {
  return decode_guard<ReconnectHelloMsg>(body, [](core::BufferReader& r) {
    ReconnectHelloMsg m;
    m.worker_id = r.u32();
    m.pid = r.u64();
    m.session_id = r.u64();
    m.last_committed_seq = r.u64();
    m.version = r.u32();
    return m;
  });
}

std::vector<std::uint8_t> ReconnectAckMsg::encode() const {
  core::BufferWriter w;
  w.u32(accepted);
  w.u64(ack_result_seq);
  w.u32(heartbeat_interval_ms);
  return w.data();
}

std::optional<ReconnectAckMsg> ReconnectAckMsg::decode(
    const std::vector<std::uint8_t>& body) {
  return decode_guard<ReconnectAckMsg>(body, [](core::BufferReader& r) {
    ReconnectAckMsg m;
    m.accepted = static_cast<std::uint8_t>(r.u32());
    m.ack_result_seq = r.u64();
    m.heartbeat_interval_ms = r.u32();
    return m;
  });
}

std::vector<std::uint8_t> SubsetDataMsg::encode() const {
  core::BufferWriter w;
  w.u32(subset);
  w.u32(static_cast<std::uint32_t>(moduli.size()));
  for (const auto& n : moduli) w.bytes(n.to_bytes());
  return w.data();
}

std::optional<SubsetDataMsg> SubsetDataMsg::decode(
    const std::vector<std::uint8_t>& body) {
  return decode_guard<SubsetDataMsg>(body, [](core::BufferReader& r) {
    SubsetDataMsg m;
    m.subset = r.u32();
    const std::uint32_t count = r.u32();
    m.moduli.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      m.moduli.push_back(bn::BigInt::from_bytes(r.bytes()));
    }
    return m;
  });
}

std::vector<std::uint8_t> ProductDataMsg::encode() const {
  core::BufferWriter w;
  w.u32(subset);
  w.bytes(product.to_bytes());
  return w.data();
}

std::optional<ProductDataMsg> ProductDataMsg::decode(
    const std::vector<std::uint8_t>& body) {
  return decode_guard<ProductDataMsg>(body, [](core::BufferReader& r) {
    ProductDataMsg m;
    m.subset = r.u32();
    m.product = bn::BigInt::from_bytes(r.bytes());
    return m;
  });
}

std::vector<std::uint8_t> TaskAssignMsg::encode(std::uint32_t version) const {
  core::BufferWriter w;
  w.u32(task);
  w.u32(product_subset);
  w.u32(leaf_subset);
  w.u32(attempt);
  if (version >= 3) {
    w.u64(trace_id);
    w.u64(parent_span);
    w.i64(assign_ts_ns);
  }
  return w.data();
}

std::optional<TaskAssignMsg> TaskAssignMsg::decode(
    const std::vector<std::uint8_t>& body) {
  return decode_guard<TaskAssignMsg>(body, [](core::BufferReader& r) {
    TaskAssignMsg m;
    m.task = r.u32();
    m.product_subset = r.u32();
    m.leaf_subset = r.u32();
    m.attempt = r.u32();
    if (!r.exhausted()) {  // v3 trace-context tail
      m.trace_id = r.u64();
      m.parent_span = r.u64();
      m.assign_ts_ns = r.i64();
    }
    return m;
  });
}

std::vector<std::uint8_t> TaskResultMsg::encode() const {
  core::BufferWriter w;
  w.u32(task);
  w.u32(worker_id);
  w.u64(result_seq);
  w.u32(static_cast<std::uint32_t>(claims.size()));
  for (const auto& claim : claims) {
    w.u32(claim.leaf);
    w.bytes(claim.divisor.to_bytes());
  }
  return w.data();
}

std::optional<TaskResultMsg> TaskResultMsg::decode(
    const std::vector<std::uint8_t>& body) {
  return decode_guard<TaskResultMsg>(body, [](core::BufferReader& r) {
    TaskResultMsg m;
    m.task = r.u32();
    m.worker_id = r.u32();
    m.result_seq = r.u64();
    const std::uint32_t count = r.u32();
    m.claims.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      batchgcd::TaskClaim claim;
      claim.leaf = r.u32();
      claim.divisor = bn::BigInt::from_bytes(r.bytes());
      m.claims.push_back(std::move(claim));
    }
    return m;
  });
}

std::vector<std::uint8_t> PingMsg::encode(std::uint32_t version) const {
  core::BufferWriter w;
  w.u64(seq);
  w.i64(t_send_ns);
  w.u64(ack_result_seq);
  if (version >= 3) w.u64(ack_telemetry_seq);
  return w.data();
}

std::optional<PingMsg> PingMsg::decode(const std::vector<std::uint8_t>& body) {
  return decode_guard<PingMsg>(body, [](core::BufferReader& r) {
    PingMsg m;
    m.seq = r.u64();
    m.t_send_ns = r.i64();
    m.ack_result_seq = r.u64();
    if (!r.exhausted()) m.ack_telemetry_seq = r.u64();  // v3 tail
    return m;
  });
}

std::vector<std::uint8_t> PongMsg::encode(std::uint32_t version) const {
  core::BufferWriter w;
  w.u64(seq);
  w.i64(t_send_ns);
  w.u32(tasks_done);
  w.u64(frames_sent);
  w.u64(frames_dropped);
  if (version >= 3) w.i64(worker_now_ns);
  return w.data();
}

std::optional<PongMsg> PongMsg::decode(const std::vector<std::uint8_t>& body) {
  return decode_guard<PongMsg>(body, [](core::BufferReader& r) {
    PongMsg m;
    m.seq = r.u64();
    m.t_send_ns = r.i64();
    m.tasks_done = r.u32();
    m.frames_sent = r.u64();
    m.frames_dropped = r.u64();
    if (!r.exhausted()) m.worker_now_ns = r.i64();  // v3 tail
    return m;
  });
}

std::vector<std::uint8_t> TelemetrySnapshotMsg::encode() const {
  core::BufferWriter w;
  w.u32(worker_id);
  w.u64(seq);
  w.u64(first_span_index);
  w.i64(trace_epoch_ns);
  w.i64(rss_kb);
  w.i64(peak_rss_kb);
  w.i64(cpu_user_us);
  w.i64(cpu_sys_us);
  w.u32(static_cast<std::uint32_t>(counters.size()));
  for (const auto& [name, value] : counters) {
    w.str(name);
    w.u64(value);
  }
  w.u32(static_cast<std::uint32_t>(gauges.size()));
  for (const auto& [name, value] : gauges) {
    w.str(name);
    w.i64(value);
  }
  w.u32(static_cast<std::uint32_t>(spans.size()));
  for (const auto& span : spans) {
    w.str(span.name);
    w.u64(span.ts_us);
    w.u64(span.dur_us);
    w.u32(span.depth);
    w.u32(static_cast<std::uint32_t>(span.args.size()));
    for (const auto& [key, value] : span.args) {
      w.str(key);
      w.i64(value);
    }
  }
  return w.data();
}

std::optional<TelemetrySnapshotMsg> TelemetrySnapshotMsg::decode(
    const std::vector<std::uint8_t>& body) {
  return decode_guard<TelemetrySnapshotMsg>(body, [](core::BufferReader& r) {
    TelemetrySnapshotMsg m;
    m.worker_id = r.u32();
    m.seq = r.u64();
    m.first_span_index = r.u64();
    m.trace_epoch_ns = r.i64();
    m.rss_kb = r.i64();
    m.peak_rss_kb = r.i64();
    m.cpu_user_us = r.i64();
    m.cpu_sys_us = r.i64();
    const std::uint32_t n_counters = r.u32();
    m.counters.reserve(n_counters);
    for (std::uint32_t i = 0; i < n_counters; ++i) {
      std::string name = r.str();
      const std::uint64_t value = r.u64();
      m.counters.emplace_back(std::move(name), value);
    }
    const std::uint32_t n_gauges = r.u32();
    m.gauges.reserve(n_gauges);
    for (std::uint32_t i = 0; i < n_gauges; ++i) {
      std::string name = r.str();
      const std::int64_t value = r.i64();
      m.gauges.emplace_back(std::move(name), value);
    }
    const std::uint32_t n_spans = r.u32();
    m.spans.reserve(n_spans);
    for (std::uint32_t i = 0; i < n_spans; ++i) {
      TelemetrySpan span;
      span.name = r.str();
      span.ts_us = r.u64();
      span.dur_us = r.u64();
      span.depth = r.u32();
      const std::uint32_t n_args = r.u32();
      span.args.reserve(n_args);
      for (std::uint32_t j = 0; j < n_args; ++j) {
        std::string key = r.str();
        const std::int64_t value = r.i64();
        span.args.emplace_back(std::move(key), value);
      }
      m.spans.push_back(std::move(span));
    }
    return m;
  });
}

std::vector<std::uint8_t> StreamBeginMsg::encode() const {
  core::BufferWriter w;
  w.u32(stream_id);
  w.u32(kind);
  w.u32(subset);
  w.u64(total_bytes);
  w.u32(payload_crc);
  return w.data();
}

std::optional<StreamBeginMsg> StreamBeginMsg::decode(
    const std::vector<std::uint8_t>& body) {
  return decode_guard<StreamBeginMsg>(body, [](core::BufferReader& r) {
    StreamBeginMsg m;
    m.stream_id = r.u32();
    m.kind = static_cast<std::uint8_t>(r.u32());
    m.subset = r.u32();
    m.total_bytes = r.u64();
    m.payload_crc = r.u32();
    return m;
  });
}

std::vector<std::uint8_t> StreamChunkMsg::encode() const {
  core::BufferWriter w;
  w.u32(stream_id);
  w.u64(offset);
  w.bytes(data);
  return w.data();
}

std::optional<StreamChunkMsg> StreamChunkMsg::decode(
    const std::vector<std::uint8_t>& body) {
  return decode_guard<StreamChunkMsg>(body, [](core::BufferReader& r) {
    StreamChunkMsg m;
    m.stream_id = r.u32();
    m.offset = r.u64();
    m.data = r.bytes();
    return m;
  });
}

std::vector<std::uint8_t> StreamAckMsg::encode() const {
  core::BufferWriter w;
  w.u32(stream_id);
  w.u64(received);
  return w.data();
}

std::optional<StreamAckMsg> StreamAckMsg::decode(
    const std::vector<std::uint8_t>& body) {
  return decode_guard<StreamAckMsg>(body, [](core::BufferReader& r) {
    StreamAckMsg m;
    m.stream_id = r.u32();
    m.received = r.u64();
    return m;
  });
}

// -- framed connection ------------------------------------------------------

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

FrameConn::FrameConn(int fd, std::uint64_t stream,
                     const util::FaultInjector* injector,
                     std::uint64_t tx_seq_start, std::uint64_t conn_seq_start)
    : fd_(fd),
      stream_(stream),
      tx_seq_(tx_seq_start),
      conn_seq_(conn_seq_start),
      injector_(injector) {}

bool FrameConn::send(MsgType type, const std::vector<std::uint8_t>& body,
                     bool injectable) {
  std::vector<std::uint8_t> payload;
  payload.reserve(1 + body.size());
  payload.push_back(static_cast<std::uint8_t>(type));
  payload.insert(payload.end(), body.begin(), body.end());
  const std::uint32_t crc = core::crc32(payload);

  std::lock_guard guard(tx_mu_);
  // Connection tier first: a data frame may change the *link's* state.
  // Like the frame tier, the decision sequence advances only on injectable
  // frames so heartbeat traffic never shifts the schedule — but the state a
  // decision opens (mute/drip windows, severance) applies to every frame,
  // control included, until it closes. That is what makes it a connection
  // event rather than frame loss.
  if (injectable && injector_ && injector_->config().any_conn_faults()) {
    const util::ConnFault conn = injector_->decide_conn(
        stream_, conn_seq_.fetch_add(1, std::memory_order_relaxed));
    const std::int64_t until =
        steady_now_ns() + static_cast<std::int64_t>(conn.duration_ms) * 1000000;
    switch (conn.kind) {
      case util::ConnFaultKind::kNone:
        break;
      case util::ConnFaultKind::kDisconnect:
        ++stats_.conn_disconnects;
        severed_.store(true, std::memory_order_relaxed);
        // Both directions die: the peer sees EOF, our own reader sees EOF.
        ::shutdown(fd_, SHUT_RDWR);
        return false;
      case util::ConnFaultKind::kPartition:
        ++stats_.conn_partitions;
        tx_mute_until_ns_.store(until, std::memory_order_relaxed);
        rx_mute_until_ns_.store(until, std::memory_order_relaxed);
        break;
      case util::ConnFaultKind::kHalfOpen:
        ++stats_.conn_half_opens;
        tx_mute_until_ns_.store(until, std::memory_order_relaxed);
        break;
      case util::ConnFaultKind::kSlowDrip:
        ++stats_.conn_drips;
        drip_until_ns_.store(until, std::memory_order_relaxed);
        drip_delay_ms_.store(conn.drip_delay_ms, std::memory_order_relaxed);
        break;
    }
  }
  if (severed_.load(std::memory_order_relaxed)) return false;
  if (steady_now_ns() < tx_mute_until_ns_.load(std::memory_order_relaxed)) {
    ++stats_.tx_suppressed;
    return true;  // swallowed by the partition; the sender cannot tell
  }
  if (steady_now_ns() < drip_until_ns_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(
        drip_delay_ms_.load(std::memory_order_relaxed)));
    ++stats_.dripped;
  }

  // The injector sequence advances only on injectable frames, so the fault
  // schedule for the n-th data frame does not shift with heartbeat traffic.
  const util::FrameFault fault =
      (injectable && injector_)
          ? injector_->decide_frame(
                stream_, tx_seq_.fetch_add(1, std::memory_order_relaxed))
          : util::FrameFault{};
  if (fault.drop) {
    ++stats_.dropped;
    return true;  // a dropped frame is invisible to the sender too
  }
  if (fault.garble) {
    // Flip one payload byte after the CRC: the receiver must reject it.
    payload[payload.size() / 2] ^= 0xa5;
    ++stats_.garbled;
  }
  if (fault.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
    ++stats_.delayed;
  }

  core::BufferWriter header;
  header.u32(static_cast<std::uint32_t>(payload.size()));
  header.u32(crc);
  if (!util::net::write_full(fd_, header.data().data(), header.data().size()))
    return false;
  if (!util::net::write_full(fd_, payload.data(), payload.size()))
    return false;
  ++stats_.sent;
  return true;
}

RecvStatus FrameConn::recv(Frame* out, std::chrono::milliseconds timeout) {
  const bool bounded = timeout.count() >= 0;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    auto wait = timeout;
    if (bounded) {
      wait = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (wait.count() < 0) wait = std::chrono::milliseconds(0);
    }
    if (!util::net::wait_readable(fd_, wait)) return RecvStatus::kTimeout;

    std::uint8_t header[8];
    if (!util::net::read_full(fd_, header, sizeof header))
      return RecvStatus::kClosed;
    std::uint32_t length = 0;
    std::uint32_t crc = 0;
    std::memcpy(&length, header, 4);
    std::memcpy(&crc, header + 4, 4);
    if (length == 0 || length > kMaxFrameBytes) return RecvStatus::kClosed;

    std::vector<std::uint8_t> payload(length);
    if (!util::net::read_full(fd_, payload.data(), payload.size()))
      return RecvStatus::kClosed;
    if (core::crc32(payload) != crc) {
      ++stats_.corrupt;
      return RecvStatus::kCorrupt;
    }
    if (steady_now_ns() < rx_mute_until_ns_.load(std::memory_order_relaxed)) {
      // Inside an injected partition: the frame arrived at the socket but
      // "the network" ate it. Consume, discard, keep waiting.
      ++stats_.rx_discarded;
      continue;
    }
    out->type = static_cast<MsgType>(payload[0]);
    out->body.assign(payload.begin() + 1, payload.end());
    return RecvStatus::kOk;
  }
}

}  // namespace weakkeys::cluster

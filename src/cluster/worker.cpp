#include "cluster/worker.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "batchgcd/product_tree.hpp"
#include "batchgcd/remainder_tree.hpp"
#include "cluster/protocol.hpp"
#include "core/binary_io.hpp"
#include "obs/mem.hpp"
#include "obs/proc_stats.hpp"
#include "obs/prof_stack.hpp"
#include "obs/profiler.hpp"
#include "util/atomic_file.hpp"
#include "util/net.hpp"

namespace weakkeys::cluster {

#if defined(WEAKKEYS_HAVE_NET)

namespace {

using bn::BigInt;
using Clock = std::chrono::steady_clock;

/// Stream id for the worker -> coordinator direction of worker `w`'s
/// connection (the coordinator uses 2*w for its own direction).
std::uint64_t tx_stream(std::uint32_t worker_id) {
  return 2ull * worker_id + 1;
}

/// rx_loop() outcome that is not a process exit code: the transport died
/// but the session may still be resumable.
constexpr int kLinkLost = -1;

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// One TCP connection: fd + framed endpoint. Sessions outlive links — the
/// worker swaps in a fresh Link per reconnect while the compute thread may
/// still hold a shared_ptr to the dead one (its sends fail harmlessly; the
/// outbox replay owns delivery).
struct Link {
  util::net::UniqueFd fd;
  FrameConn conn;
  Link(int raw_fd, std::uint64_t stream, const util::FaultInjector* injector,
       std::uint64_t tx_seq_start, std::uint64_t conn_seq_start)
      : fd(raw_fd),
        conn(raw_fd, stream, injector, tx_seq_start, conn_seq_start) {}
};

class Worker {
 public:
  explicit Worker(const WorkerConfig& config)
      : config_(config),
        injector_(config.faults),
        version_(config.protocol_version != 0 ? config.protocol_version
                                              : kProtocolVersion),
        telemetry_enabled_(version_ >= 3 &&
                           config.telemetry_interval.count() > 0),
        trace_epoch_ns_(steady_now_ns()) {}

  int run() {
    util::net::ignore_sigpipe();
    int code = kWorkerExitProtocol;
    std::thread compute;
    bool compute_started = false;
    auto backoff = config_.reconnect_backoff;
    auto give_up_at = Clock::now() + config_.reconnect_window;

    for (;;) {
      const bool resuming = session_id_ != 0;
      std::shared_ptr<Link> link = dial();
      if (!link) {
        if (!resuming) {
          log("worker " + std::to_string(config_.worker_id) +
              ": cannot connect to coordinator");
          code = kWorkerExitConnect;
          break;
        }
        if (Clock::now() >= give_up_at) {
          log("worker " + std::to_string(config_.worker_id) +
              ": reconnect window exhausted");
          code = kWorkerExitConnect;
          break;
        }
        std::this_thread::sleep_for(backoff);
        backoff = std::min(backoff * 2, std::chrono::milliseconds(1000));
        continue;
      }

      const Handshake hs = resuming ? reconnect_handshake(link.get())
                                    : hello_handshake(link.get());
      if (hs == Handshake::kFatal) {
        code = kWorkerExitProtocol;
        break;
      }
      if (hs == Handshake::kRetry) {
        if (!resuming || Clock::now() >= give_up_at) {
          code = resuming ? kWorkerExitConnect : kWorkerExitProtocol;
          break;
        }
        std::this_thread::sleep_for(backoff);
        backoff = std::min(backoff * 2, std::chrono::milliseconds(1000));
        continue;
      }

      install_link(link);
      if (resuming) replay_outbox(link.get());
      if (!compute_started) {
        compute = std::thread([this] { compute_loop(); });
        compute_started = true;
      }

      code = rx_loop(link.get());
      drop_link(link.get());
      if (code != kLinkLost) break;
      if (!config_.session_reconnect || session_id_ == 0) {
        code = kWorkerExitProtocol;
        break;
      }
      log("worker " + std::to_string(config_.worker_id) +
          ": connection lost; attempting session resume");
      give_up_at = Clock::now() + config_.reconnect_window;
      backoff = config_.reconnect_backoff;
    }

    if (compute_started) {
      {
        std::lock_guard guard(mu_);
        stop_ = true;
      }
      cv_.notify_all();
      compute.join();
    }
    return code == kLinkLost ? kWorkerExitProtocol : code;
  }

 private:
  enum class Handshake : std::uint8_t { kOk, kRetry, kFatal };

  void log(const std::string& message) const {
    if (config_.log) config_.log(message);
  }

  std::shared_ptr<Link> dial() {
    const int raw = util::net::connect_tcp(
        config_.coordinator_address, config_.port, config_.connect_timeout);
    if (raw < 0) return nullptr;
    if (config_.tcp_keepalive) util::net::enable_keepalive(raw);
    const util::FaultInjector* injector =
        (config_.faults.any_frame_faults() || config_.faults.any_conn_faults())
            ? &injector_
            : nullptr;
    return std::make_shared<Link>(raw, tx_stream(config_.worker_id), injector,
                                  tx_seq_base_, conn_seq_base_);
  }

  void install_link(const std::shared_ptr<Link>& link) {
    std::lock_guard guard(mu_);
    link_ = link;
  }

  /// Retires a dead link: detaches it from the compute thread and banks the
  /// injector counters so the next connection continues the fault schedule
  /// instead of replaying it.
  void drop_link(Link* link) {
    std::lock_guard guard(mu_);
    tx_seq_base_ = link->conn.tx_seq();
    conn_seq_base_ = link->conn.conn_seq();
    if (link_.get() == link) link_.reset();
  }

  Handshake hello_handshake(Link* link) {
    HelloMsg hello;
    hello.worker_id = config_.worker_id;
    hello.pid = static_cast<std::uint64_t>(::getpid());
    hello.version = version_;
    if (!link->conn.send(MsgType::kHello, hello.encode()))
      return Handshake::kFatal;
    const auto deadline = Clock::now() + config_.connect_timeout;
    for (;;) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) return Handshake::kFatal;
      Frame frame;
      switch (link->conn.recv(&frame, left)) {
        case RecvStatus::kOk: {
          if (frame.type != MsgType::kHelloAck) return Handshake::kFatal;
          const auto ack = HelloAckMsg::decode(frame.body);
          if (!ack) return Handshake::kFatal;
          session_id_ = ack->session_id;
          hb_interval_ms_ = ack->heartbeat_interval_ms;
          return Handshake::kOk;
        }
        case RecvStatus::kCorrupt:
          continue;  // control frames are sent clean; be tolerant anyway
        case RecvStatus::kTimeout:
        case RecvStatus::kClosed:
          return Handshake::kFatal;
      }
    }
  }

  Handshake reconnect_handshake(Link* link) {
    ReconnectHelloMsg hello;
    hello.worker_id = config_.worker_id;
    hello.pid = static_cast<std::uint64_t>(::getpid());
    hello.session_id = session_id_;
    hello.version = version_;
    {
      std::lock_guard guard(mu_);
      hello.last_committed_seq = acked_result_seq_;
    }
    if (!link->conn.send(MsgType::kReconnectHello, hello.encode()))
      return Handshake::kRetry;
    const auto deadline = Clock::now() + config_.connect_timeout;
    for (;;) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) return Handshake::kRetry;
      Frame frame;
      switch (link->conn.recv(&frame, left)) {
        case RecvStatus::kOk: {
          if (frame.type != MsgType::kReconnectAck) return Handshake::kRetry;
          const auto ack = ReconnectAckMsg::decode(frame.body);
          if (!ack) return Handshake::kRetry;
          if (ack->accepted == 0) {
            // Session expired coordinator-side: a fresh incarnation has
            // been (or will be) spawned in our place. Nothing to resume.
            log("worker " + std::to_string(config_.worker_id) +
                ": session rejected by coordinator");
            return Handshake::kFatal;
          }
          hb_interval_ms_ = ack->heartbeat_interval_ms;
          prune_outbox(ack->ack_result_seq);
          return Handshake::kOk;
        }
        case RecvStatus::kCorrupt:
          continue;
        case RecvStatus::kTimeout:
        case RecvStatus::kClosed:
          return Handshake::kRetry;
      }
    }
  }

  void prune_outbox(std::uint64_t ack_seq) {
    std::lock_guard guard(mu_);
    acked_result_seq_ = std::max(acked_result_seq_, ack_seq);
    while (!outbox_.empty() && outbox_.front().result_seq <= acked_result_seq_)
      outbox_.pop_front();
  }

  void prune_telemetry(std::uint64_t ack_seq) {
    std::lock_guard guard(mu_);
    acked_telemetry_seq_ = std::max(acked_telemetry_seq_, ack_seq);
    while (!telemetry_outbox_.empty() &&
           telemetry_outbox_.front().seq <= acked_telemetry_seq_) {
      telemetry_outbox_.pop_front();
    }
  }

  /// Resends every result the coordinator has not acknowledged. Replays are
  /// injectable like first sends: a replayed frame can be dropped again,
  /// and either a later Ping ack or the next reconnect settles it.
  /// Unacked telemetry snapshots replay too (clean, like all telemetry
  /// sends) — that is what makes export loss-tolerant across link flaps.
  void replay_outbox(Link* link) {
    std::vector<TaskResultMsg> replay;
    std::vector<TelemetrySnapshotMsg> telemetry_replay;
    {
      std::lock_guard guard(mu_);
      replay.assign(outbox_.begin(), outbox_.end());
      telemetry_replay.assign(telemetry_outbox_.begin(),
                              telemetry_outbox_.end());
    }
    for (const auto& result : replay) {
      if (!link->conn.send(MsgType::kTaskResult, result.encode(),
                           /*injectable=*/true)) {
        return;  // link already dead again; rx_loop will notice
      }
    }
    for (const auto& snap : telemetry_replay) {
      if (!link->conn.send(MsgType::kTelemetrySnapshot, snap.encode())) return;
    }
  }

  // -- telemetry export (RX thread only) ----------------------------------

  /// Packages pending spans + current counters + proc stats into a
  /// sequenced TelemetrySnapshot, outboxes it, and sends it on `link`.
  /// Throttled to telemetry_interval unless `force` (the Shutdown flush).
  /// Returns false only on a hard send failure (link dead).
  bool maybe_send_telemetry(Link* link, bool force) {
    if (!telemetry_enabled_) return true;
    const std::int64_t now = steady_now_ns();
    if (!force && last_telemetry_ns_ != 0 &&
        now - last_telemetry_ns_ <
            config_.telemetry_interval.count() * 1000000) {
      return true;
    }
    last_telemetry_ns_ = now;
    TelemetrySnapshotMsg snap;
    snap.worker_id = config_.worker_id;
    snap.trace_epoch_ns = trace_epoch_ns_;
    {
      std::lock_guard guard(mu_);
      snap.seq = ++next_telemetry_seq_;
      snap.first_span_index = span_base_;
      snap.spans = std::move(pending_spans_);
      pending_spans_.clear();
      span_base_ += snap.spans.size();
      snap.gauges.emplace_back(
          "queue_depth", static_cast<std::int64_t>(queue_.size()));
    }
    snap.counters = {
        {"tasks_executed", tasks_done_.load(std::memory_order_relaxed)},
        {"claims_found", claims_found_.load(std::memory_order_relaxed)},
        {"compute_us", compute_us_.load(std::memory_order_relaxed)},
    };
    // Resource-attribution plane (generic fields: the coordinator's fleet
    // aggregator republishes them as fleet.worker.<id>.<name> untouched).
    if (obs::mem::enabled()) {
      const obs::mem::Totals mem = obs::mem::totals();
      snap.gauges.emplace_back("mem_live_kb", mem.live_bytes / 1024);
      snap.gauges.emplace_back(
          "mem_peak_kb", static_cast<std::int64_t>(mem.peak_bytes / 1024));
      if (obs::mem::consume_budget_alarm()) {
        log("worker " + std::to_string(config_.worker_id) +
            ": memory budget exceeded (soft alarm; run continues)");
        budget_alarms_.fetch_add(1, std::memory_order_relaxed);
      }
      const std::uint64_t alarms =
          budget_alarms_.load(std::memory_order_relaxed);
      if (alarms > 0) snap.counters.emplace_back("mem_budget_alarms", alarms);
    }
    const obs::ProcSelfStats proc = obs::sample_proc_self();
    if (proc.rss_available) {
      snap.rss_kb = proc.rss_kb;
      snap.peak_rss_kb = proc.peak_rss_kb;
    }
    if (proc.cpu_available) {
      snap.cpu_user_us = static_cast<std::int64_t>(proc.cpu_user_us);
      snap.cpu_sys_us = static_cast<std::int64_t>(proc.cpu_sys_us);
    }
    {
      static const int outbox_label =
          obs::mem::register_label("cluster.outbox");
      obs::MemScope mem_scope(outbox_label);
      std::lock_guard guard(mu_);
      telemetry_outbox_.push_back(snap);
    }
    // Clean (non-injectable) like other control-plane frames: in-window
    // loss recovery would need its own retransmit layer, so loss tolerance
    // lives at the reconnect/replay level instead.
    return link->conn.send(MsgType::kTelemetrySnapshot, snap.encode());
  }

  /// Appends one completed task span (timestamps relative to
  /// trace_epoch_ns_) to the pending buffer the next snapshot drains.
  void record_span(const char* name, std::int64_t start_ns,
                   std::int64_t end_ns, const TaskAssignMsg& assign) {
    TelemetrySpan span;
    span.name = name;
    span.ts_us = static_cast<std::uint64_t>(
        std::max<std::int64_t>(0, (start_ns - trace_epoch_ns_) / 1000));
    span.dur_us = static_cast<std::uint64_t>(
        std::max<std::int64_t>(0, (end_ns - start_ns) / 1000));
    span.args = {
        {"task", assign.task},
        {"attempt", assign.attempt},
        {"trace_id", static_cast<std::int64_t>(assign.trace_id)},
        {"parent_span", static_cast<std::int64_t>(assign.parent_span)},
    };
    std::lock_guard guard(mu_);
    pending_spans_.push_back(std::move(span));
  }

  /// The RX loop: answers pings inline (so liveness reflects the process,
  /// not the compute queue), reassembles data streams, queues task
  /// assignments. Returns kWorkerExitOk on Shutdown, kLinkLost when the
  /// transport died (EOF, send failure, or ping-deadline expiry).
  int rx_loop(Link* link) {
    auto last_rx = Clock::now();
    for (;;) {
      // Half-open detection: a link that has gone silent past the ping
      // deadline is dead even though the socket never errored — the classic
      // half-open TCP state after a partition or peer freeze.
      const auto deadline = ping_deadline();
      if (deadline.count() > 0 && Clock::now() - last_rx > deadline) {
        log("worker " + std::to_string(config_.worker_id) +
            ": ping deadline passed; link presumed half-open");
        return kLinkLost;
      }
      Frame frame;
      switch (link->conn.recv(&frame, std::chrono::milliseconds(200))) {
        case RecvStatus::kTimeout:
          continue;
        case RecvStatus::kCorrupt:
          // Corrupt = an injected garble consumed whole; the task layer
          // (coordinator-side timeout) owns recovery. Bytes arriving still
          // prove the link is alive.
          last_rx = Clock::now();
          continue;
        case RecvStatus::kClosed:
          return kLinkLost;
        case RecvStatus::kOk:
          last_rx = Clock::now();
          break;
      }
      switch (frame.type) {
        case MsgType::kPing: {
          if (const auto ping = PingMsg::decode(frame.body)) {
            prune_outbox(ping->ack_result_seq);
            prune_telemetry(ping->ack_telemetry_seq);
            PongMsg pong;
            pong.seq = ping->seq;
            pong.t_send_ns = ping->t_send_ns;
            pong.tasks_done = tasks_done_.load(std::memory_order_relaxed);
            pong.frames_sent = link->conn.stats().sent;
            pong.frames_dropped = link->conn.stats().dropped;
            // The clock sample must be taken as close to the send as
            // possible: it is one endpoint of the coordinator's midpoint
            // offset estimate.
            pong.worker_now_ns = steady_now_ns();
            if (!link->conn.send(MsgType::kPong, pong.encode(version_)))
              return kLinkLost;
            // Telemetry rides the Pong path: the coordinator's heartbeat
            // cadence is the export clock, throttled to telemetry_interval.
            if (!maybe_send_telemetry(link, /*force=*/false))
              return kLinkLost;
          }
          break;
        }
        case MsgType::kStreamBegin: {
          if (const auto msg = StreamBeginMsg::decode(frame.body)) {
            if (!on_stream_begin(link, *msg)) return kLinkLost;
          }
          break;
        }
        case MsgType::kStreamChunk: {
          if (auto msg = StreamChunkMsg::decode(frame.body)) {
            if (!on_stream_chunk(link, *msg)) return kLinkLost;
          }
          break;
        }
        case MsgType::kSubsetData: {
          // Legacy single-frame fill; the coordinator streams these now but
          // the handler stays for protocol-level tests and compatibility.
          if (auto msg = SubsetDataMsg::decode(frame.body)) {
            std::lock_guard guard(mu_);
            subsets_[msg->subset] = std::move(msg->moduli);
            trees_.erase(msg->subset);
          }
          break;
        }
        case MsgType::kProductData: {
          if (auto msg = ProductDataMsg::decode(frame.body)) {
            std::lock_guard guard(mu_);
            products_[msg->subset] = std::move(msg->product);
          }
          break;
        }
        case MsgType::kTaskAssign: {
          if (const auto msg = TaskAssignMsg::decode(frame.body)) {
            {
              std::lock_guard guard(mu_);
              queue_.push_back(PendingTask{*msg, steady_now_ns()});
            }
            cv_.notify_one();
          }
          break;
        }
        case MsgType::kShutdown:
          // Final telemetry flush before the link closes: the coordinator
          // drains its RX side until EOF, so the last tasks' spans and the
          // final counter values make it into the fleet view. Best-effort —
          // a dead link at this point just loses the tail.
          maybe_send_telemetry(link, /*force=*/true);
          return kWorkerExitOk;
        default:
          break;  // unknown/unexpected types are ignored, not fatal
      }
    }
  }

  [[nodiscard]] std::chrono::milliseconds ping_deadline() const {
    if (config_.ping_deadline.count() > 0) return config_.ping_deadline;
    if (!config_.session_reconnect || hb_interval_ms_ == 0)
      return std::chrono::milliseconds(0);  // disarmed (PR 6 behavior)
    return std::chrono::milliseconds(10ull * hb_interval_ms_);
  }

  // -- stream reassembly (RX thread only) ---------------------------------

  struct RxStream {
    std::uint8_t kind = 0;
    std::uint32_t subset = 0;
    std::uint64_t total = 0;
    std::uint32_t crc = 0;
    std::vector<std::uint8_t> buf;
    std::uint64_t prefix = 0;  ///< contiguous bytes held
  };

  bool send_stream_ack(Link* link, std::uint32_t stream_id,
                       std::uint64_t received) {
    StreamAckMsg ack;
    ack.stream_id = stream_id;
    ack.received = received;
    return link->conn.send(MsgType::kStreamAck, ack.encode());
  }

  bool on_stream_begin(Link* link, const StreamBeginMsg& msg) {
    if (msg.total_bytes == 0 || msg.total_bytes > kMaxFrameBytes) return true;
    auto it = rx_streams_.find(msg.stream_id);
    if (it == rx_streams_.end() || it->second.total != msg.total_bytes ||
        it->second.crc != msg.payload_crc) {
      // Fresh transfer (or the sender restarted it with different content).
      RxStream stream;
      stream.kind = msg.kind;
      stream.subset = msg.subset;
      stream.total = msg.total_bytes;
      stream.crc = msg.payload_crc;
      stream.buf.resize(msg.total_bytes);
      rx_streams_[msg.stream_id] = std::move(stream);
      it = rx_streams_.find(msg.stream_id);
    }
    // A duplicate Begin after reconnect keeps the existing prefix — acking
    // it tells the sender where to resume mid-stream.
    return send_stream_ack(link, msg.stream_id, it->second.prefix);
  }

  bool on_stream_chunk(Link* link, const StreamChunkMsg& msg) {
    const auto it = rx_streams_.find(msg.stream_id);
    if (it == rx_streams_.end()) return true;  // stale/unknown transfer
    RxStream& stream = it->second;
    // Go-back-N: only the chunk extending the contiguous prefix advances
    // it; duplicates and holes are discarded and the ack re-states the
    // prefix so the sender rewinds.
    if (msg.offset == stream.prefix && !msg.data.empty() &&
        msg.offset + msg.data.size() <= stream.total) {
      std::memcpy(stream.buf.data() + msg.offset, msg.data.data(),
                  msg.data.size());
      stream.prefix += msg.data.size();
    }
    const std::uint32_t id = msg.stream_id;
    const std::uint64_t prefix = stream.prefix;
    if (prefix == stream.total) {
      if (core::crc32(stream.buf) == stream.crc) deliver_stream(stream);
      rx_streams_.erase(it);
    }
    return send_stream_ack(link, id, prefix);
  }

  void deliver_stream(const RxStream& stream) {
    if (stream.kind == static_cast<std::uint8_t>(StreamKind::kSubset)) {
      if (auto msg = SubsetDataMsg::decode(stream.buf)) {
        std::lock_guard guard(mu_);
        subsets_[msg->subset] = std::move(msg->moduli);
        trees_.erase(msg->subset);
      }
    } else if (stream.kind ==
               static_cast<std::uint8_t>(StreamKind::kProduct)) {
      if (auto msg = ProductDataMsg::decode(stream.buf)) {
        std::lock_guard guard(mu_);
        products_[msg->subset] = std::move(msg->product);
      }
    }
  }

  // -- compute ------------------------------------------------------------

  /// A queued assignment plus its RX-thread arrival time: the gap between
  /// the two ends of the pair is the task.recv (queue-wait) span.
  struct PendingTask {
    TaskAssignMsg assign;
    std::int64_t recv_ns = 0;
  };

  void compute_loop() {
    for (;;) {
      PendingTask task;
      {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        task = queue_.front();
        queue_.pop_front();
      }
      execute(task.assign, task.recv_ns);
    }
  }

  void execute(const TaskAssignMsg& assign, std::int64_t recv_ns) {
    // Root frame for the compute thread: everything below (tree build,
    // remainder walk, bn kernels) nests under it in this worker's profile.
    obs::prof::Frame prof_frame("cluster.task");
    // Clock reads only when telemetry is on; spans additionally only when
    // the coordinator asked for them (trace_id 0 = fleet trace off).
    const bool traced = telemetry_enabled_ && assign.trace_id != 0;
    const std::int64_t t_dequeue = telemetry_enabled_ ? steady_now_ns() : 0;
    if (traced) record_span("task.recv", recv_ns, t_dequeue, assign);
    std::vector<BigInt> moduli;
    BigInt product;
    std::shared_ptr<batchgcd::ProductTree> tree;
    {
      std::lock_guard guard(mu_);
      const auto subset_it = subsets_.find(assign.leaf_subset);
      const auto product_it = products_.find(assign.product_subset);
      if (subset_it == subsets_.end() || product_it == products_.end()) {
        // A dropped/garbled cache fill upstream of this assignment; nothing
        // to compute. The coordinator's task timeout requeues it (and the
        // refreshed cache fill comes with the next assignment).
        log("worker " + std::to_string(config_.worker_id) + ": task " +
            std::to_string(assign.task) + " references missing subset data");
        return;
      }
      moduli = subset_it->second;
      product = product_it->second;
      const auto tree_it = trees_.find(assign.leaf_subset);
      if (tree_it != trees_.end()) tree = tree_it->second;
    }
    if (!tree) {
      if (!config_.spill_dir.empty()) {
        // Out-of-core build: the spill policy bounds this worker's tree
        // memory; the per-worker file base keeps a shared spill dir safe.
        batchgcd::TreeStorage storage;
        storage.spill_dir = config_.spill_dir;
        storage.spill_threshold_bytes =
            static_cast<std::uint64_t>(config_.spill_threshold_mb) * 1024 *
            1024;
        storage.base = "worker" + std::to_string(config_.worker_id) + ".s" +
                       std::to_string(assign.leaf_subset);
        storage.fault_stream = assign.leaf_subset;
        tree = std::make_shared<batchgcd::ProductTree>(moduli, storage);
      } else {
        tree = std::make_shared<batchgcd::ProductTree>(moduli);
      }
      std::lock_guard guard(mu_);
      trees_[assign.leaf_subset] = tree;
    }

    const util::FaultDecision decision =
        config_.faults.any_faults()
            ? injector_.decide(assign.task, assign.attempt)
            : util::FaultDecision{};
    if (decision.kind == util::FaultKind::kCrash) {
      // A real mid-task crash: the coordinator sees socket EOF, requeues
      // the task, and respawns this slot.
      ::_exit(42);
    }
    if (decision.kind == util::FaultKind::kStraggle) {
      // Sleep past the coordinator's task deadline, then send the (by now
      // reassigned) result anyway — late results must be safe to receive.
      std::this_thread::sleep_for(config_.straggle_sleep);
    }

    const std::vector<BigInt> rem =
        batchgcd::remainder_tree_squares(*tree, product);
    const std::int64_t t_computed = telemetry_enabled_ ? steady_now_ns() : 0;
    if (traced) record_span("task.compute", t_dequeue, t_computed, assign);
    const bool diagonal = assign.product_subset == assign.leaf_subset;
    const BigInt one(1);
    TaskResultMsg result;
    result.task = assign.task;
    result.worker_id = config_.worker_id;
    for (std::size_t i = 0; i < moduli.size(); ++i) {
      const BigInt& n = moduli[i];
      BigInt g = diagonal ? bn::gcd(n, rem[i] / n) : bn::gcd(n, rem[i] % n);
      if (g > one) {
        result.claims.push_back({static_cast<std::uint32_t>(i), std::move(g)});
      }
    }
    const std::int64_t t_verified = telemetry_enabled_ ? steady_now_ns() : 0;
    if (traced) record_span("task.verify", t_computed, t_verified, assign);
    if (telemetry_enabled_ && t_verified >= t_dequeue) {
      compute_us_.fetch_add(
          static_cast<std::uint64_t>((t_verified - t_dequeue) / 1000),
          std::memory_order_relaxed);
    }
    claims_found_.fetch_add(result.claims.size(), std::memory_order_relaxed);
    if (decision.kind == util::FaultKind::kCorruptResult && !moduli.empty()) {
      // Same guaranteed-rejectable corruption as the in-process simulation:
      // n-1 never divides n for n > 2, so verification must catch it.
      const std::size_t slot = decision.corrupt_slot % moduli.size();
      const BigInt& n = moduli[slot];
      if (n > BigInt(2)) {
        const BigInt bogus = n - one;
        const auto it = std::find_if(
            result.claims.begin(), result.claims.end(),
            [slot](const batchgcd::TaskClaim& c) { return c.leaf == slot; });
        if (it != result.claims.end()) {
          it->divisor = bogus;
        } else {
          result.claims.push_back({static_cast<std::uint32_t>(slot), bogus});
        }
      }
    }
    tasks_done_.fetch_add(1, std::memory_order_relaxed);
    const std::int64_t t_send = traced ? steady_now_ns() : 0;
    post_result(std::move(result));
    if (traced) record_span("task.send", t_send, steady_now_ns(), assign);
  }

  /// Sequences a finished result into the outbox, then attempts delivery on
  /// whatever link is current. A failed or muted send is not an error: the
  /// result stays outboxed until a Ping ack prunes it, and every reconnect
  /// replays the unacked tail. Injectable: a dropped or garbled result is
  /// exactly the loss the coordinator's timeout/retry machinery absorbs.
  void post_result(TaskResultMsg result) {
    std::shared_ptr<Link> link;
    {
      static const int outbox_label =
          obs::mem::register_label("cluster.outbox");
      obs::MemScope mem_scope(outbox_label);
      std::lock_guard guard(mu_);
      result.result_seq = ++next_result_seq_;
      outbox_.push_back(result);
      link = link_;
    }
    if (link) {
      link->conn.send(MsgType::kTaskResult, result.encode(),
                      /*injectable=*/true);
    }
  }

  WorkerConfig config_;
  util::FaultInjector injector_;
  const std::uint32_t version_;       ///< negotiated dialect (Hello)
  const bool telemetry_enabled_;      ///< v3 and interval > 0
  const std::int64_t trace_epoch_ns_; ///< span-timestamp epoch, this clock

  std::mutex mu_;  ///< guards queue_, caches, stop_, link_, outboxes, spans
  std::condition_variable cv_;
  std::deque<PendingTask> queue_;
  bool stop_ = false;
  std::shared_ptr<Link> link_;
  std::map<std::uint32_t, std::vector<BigInt>> subsets_;
  std::map<std::uint32_t, BigInt> products_;
  std::map<std::uint32_t, std::shared_ptr<batchgcd::ProductTree>> trees_;
  std::atomic<std::uint32_t> tasks_done_{0};
  std::atomic<std::uint64_t> claims_found_{0};
  std::atomic<std::uint64_t> compute_us_{0};
  std::atomic<std::uint64_t> budget_alarms_{0};

  // Session state (main/RX thread unless noted).
  std::uint64_t session_id_ = 0;
  std::uint32_t hb_interval_ms_ = 0;
  std::uint64_t tx_seq_base_ = 0;    ///< injector counters carried across
  std::uint64_t conn_seq_base_ = 0;  ///< reconnects (see FrameConn ctor)
  std::deque<TaskResultMsg> outbox_;     ///< unacked results (mu_)
  std::uint64_t next_result_seq_ = 0;    ///< last assigned seq (mu_)
  std::uint64_t acked_result_seq_ = 0;   ///< coordinator high-water (mu_)
  std::map<std::uint32_t, RxStream> rx_streams_;  ///< RX thread only

  // Telemetry export state. Spans accumulate under mu_ (compute thread
  // writes, RX thread drains); the outbox/seq bookkeeping is RX-thread
  // owned but kept under mu_ for uniformity.
  std::vector<TelemetrySpan> pending_spans_;        ///< not yet snapshotted
  std::uint64_t span_base_ = 0;  ///< global index of pending_spans_[0]
  std::deque<TelemetrySnapshotMsg> telemetry_outbox_;  ///< unacked exports
  std::uint64_t next_telemetry_seq_ = 0;
  std::uint64_t acked_telemetry_seq_ = 0;
  std::int64_t last_telemetry_ns_ = 0;  ///< RX thread only (throttle)
};

}  // namespace

int run_worker(const WorkerConfig& config) {
  // Resource-attribution plane for this worker process: memory accounting
  // feeds the mem gauges in every TelemetrySnapshot (and arms the soft
  // budget), the profiler writes this worker's collapsed stacks at exit.
  // Both default off and cost one relaxed load per alloc/span when off.
  if (config.profile_hz > 0 || config.mem_budget_mb > 0) {
    obs::mem::enable();
    if (config.mem_budget_mb > 0) {
      obs::mem::set_budget_bytes(
          static_cast<std::uint64_t>(config.mem_budget_mb) * 1024 * 1024);
    }
  }
  std::unique_ptr<obs::Profiler> profiler;
  if (config.profile_hz > 0) {
    obs::ProfilerConfig pc;
    pc.hz = config.profile_hz;
    pc.out_path = config.profile_out;
    pc.writer = [](const std::string& path, const std::string& content) {
      try {
        util::atomic_write_file(path, content);
        return true;
      } catch (const std::exception&) {
        return false;
      }
    };
    profiler = std::make_unique<obs::Profiler>(std::move(pc));
    profiler->start();
  }
  const int code = Worker(config).run();
  if (profiler) profiler->stop();
  return code;
}

#else  // !WEAKKEYS_HAVE_NET

int run_worker(const WorkerConfig&) { return kWorkerExitConnect; }

#endif

}  // namespace weakkeys::cluster

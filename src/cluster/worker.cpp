#include "cluster/worker.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "batchgcd/product_tree.hpp"
#include "batchgcd/remainder_tree.hpp"
#include "cluster/protocol.hpp"
#include "util/net.hpp"

namespace weakkeys::cluster {

#if defined(WEAKKEYS_HAVE_NET)

namespace {

using bn::BigInt;

/// Stream id for the worker -> coordinator direction of worker `w`'s
/// connection (the coordinator uses 2*w for its own direction).
std::uint64_t tx_stream(std::uint32_t worker_id) {
  return 2ull * worker_id + 1;
}

class Worker {
 public:
  explicit Worker(const WorkerConfig& config)
      : config_(config), injector_(config.faults) {}

  int run() {
    util::net::UniqueFd fd(util::net::connect_tcp(
        config_.coordinator_address, config_.port, config_.connect_timeout));
    if (!fd.valid()) {
      log("worker " + std::to_string(config_.worker_id) +
          ": cannot connect to coordinator");
      return kWorkerExitConnect;
    }
    conn_ = std::make_unique<FrameConn>(
        fd.get(), tx_stream(config_.worker_id),
        config_.faults.any_frame_faults() ? &injector_ : nullptr);

    HelloMsg hello;
    hello.worker_id = config_.worker_id;
    hello.pid = static_cast<std::uint64_t>(::getpid());
    if (!conn_->send(MsgType::kHello, hello.encode()))
      return kWorkerExitProtocol;
    if (!await_hello_ack()) return kWorkerExitProtocol;

    std::thread compute([this] { compute_loop(); });
    const int code = rx_loop();
    {
      std::lock_guard guard(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    compute.join();
    return code;
  }

 private:
  void log(const std::string& message) const {
    if (config_.log) config_.log(message);
  }

  bool await_hello_ack() {
    const auto deadline =
        std::chrono::steady_clock::now() + config_.connect_timeout;
    for (;;) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return false;
      Frame frame;
      switch (conn_->recv(&frame, left)) {
        case RecvStatus::kOk:
          if (frame.type != MsgType::kHelloAck) return false;
          return HelloAckMsg::decode(frame.body).has_value();
        case RecvStatus::kCorrupt:
          continue;  // control frames are sent clean; be tolerant anyway
        case RecvStatus::kTimeout:
        case RecvStatus::kClosed:
          return false;
      }
    }
  }

  /// The RX loop: answers pings inline (so liveness reflects the process,
  /// not the compute queue), caches subset data, queues task assignments.
  int rx_loop() {
    for (;;) {
      Frame frame;
      switch (conn_->recv(&frame, std::chrono::milliseconds(500))) {
        case RecvStatus::kTimeout:
        case RecvStatus::kCorrupt:
          // Corrupt = an injected garble consumed whole; the task layer
          // (coordinator-side timeout) owns recovery. Keep serving.
          continue;
        case RecvStatus::kClosed:
          log("worker " + std::to_string(config_.worker_id) +
              ": coordinator connection lost");
          return kWorkerExitProtocol;
        case RecvStatus::kOk:
          break;
      }
      switch (frame.type) {
        case MsgType::kPing: {
          if (const auto ping = PingMsg::decode(frame.body)) {
            PongMsg pong;
            pong.seq = ping->seq;
            pong.t_send_ns = ping->t_send_ns;
            pong.tasks_done = tasks_done_.load(std::memory_order_relaxed);
            pong.frames_sent = conn_->stats().sent;
            pong.frames_dropped = conn_->stats().dropped;
            if (!conn_->send(MsgType::kPong, pong.encode()))
              return kWorkerExitProtocol;
          }
          break;
        }
        case MsgType::kSubsetData: {
          if (auto msg = SubsetDataMsg::decode(frame.body)) {
            std::lock_guard guard(mu_);
            subsets_[msg->subset] = std::move(msg->moduli);
            trees_.erase(msg->subset);
          }
          break;
        }
        case MsgType::kProductData: {
          if (auto msg = ProductDataMsg::decode(frame.body)) {
            std::lock_guard guard(mu_);
            products_[msg->subset] = std::move(msg->product);
          }
          break;
        }
        case MsgType::kTaskAssign: {
          if (const auto msg = TaskAssignMsg::decode(frame.body)) {
            {
              std::lock_guard guard(mu_);
              queue_.push_back(*msg);
            }
            cv_.notify_one();
          }
          break;
        }
        case MsgType::kShutdown:
          return kWorkerExitOk;
        default:
          break;  // unknown/unexpected types are ignored, not fatal
      }
    }
  }

  void compute_loop() {
    for (;;) {
      TaskAssignMsg assign;
      {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        assign = queue_.front();
        queue_.pop_front();
      }
      execute(assign);
    }
  }

  void execute(const TaskAssignMsg& assign) {
    std::vector<BigInt> moduli;
    BigInt product;
    std::shared_ptr<batchgcd::ProductTree> tree;
    {
      std::lock_guard guard(mu_);
      const auto subset_it = subsets_.find(assign.leaf_subset);
      const auto product_it = products_.find(assign.product_subset);
      if (subset_it == subsets_.end() || product_it == products_.end()) {
        // A dropped/garbled cache fill upstream of this assignment; nothing
        // to compute. The coordinator's task timeout requeues it (and the
        // refreshed cache fill comes with the next assignment).
        log("worker " + std::to_string(config_.worker_id) + ": task " +
            std::to_string(assign.task) + " references missing subset data");
        return;
      }
      moduli = subset_it->second;
      product = product_it->second;
      const auto tree_it = trees_.find(assign.leaf_subset);
      if (tree_it != trees_.end()) tree = tree_it->second;
    }
    if (!tree) {
      tree = std::make_shared<batchgcd::ProductTree>(moduli);
      std::lock_guard guard(mu_);
      trees_[assign.leaf_subset] = tree;
    }

    const util::FaultDecision decision =
        config_.faults.any_faults()
            ? injector_.decide(assign.task, assign.attempt)
            : util::FaultDecision{};
    if (decision.kind == util::FaultKind::kCrash) {
      // A real mid-task crash: the coordinator sees socket EOF, requeues
      // the task, and respawns this slot.
      ::_exit(42);
    }
    if (decision.kind == util::FaultKind::kStraggle) {
      // Sleep past the coordinator's task deadline, then send the (by now
      // reassigned) result anyway — late results must be safe to receive.
      std::this_thread::sleep_for(config_.straggle_sleep);
    }

    const std::vector<BigInt> rem =
        batchgcd::remainder_tree_squares(*tree, product);
    const bool diagonal = assign.product_subset == assign.leaf_subset;
    const BigInt one(1);
    TaskResultMsg result;
    result.task = assign.task;
    result.worker_id = config_.worker_id;
    for (std::size_t i = 0; i < moduli.size(); ++i) {
      const BigInt& n = moduli[i];
      BigInt g = diagonal ? bn::gcd(n, rem[i] / n) : bn::gcd(n, rem[i] % n);
      if (g > one) {
        result.claims.push_back({static_cast<std::uint32_t>(i), std::move(g)});
      }
    }
    if (decision.kind == util::FaultKind::kCorruptResult && !moduli.empty()) {
      // Same guaranteed-rejectable corruption as the in-process simulation:
      // n-1 never divides n for n > 2, so verification must catch it.
      const std::size_t slot = decision.corrupt_slot % moduli.size();
      const BigInt& n = moduli[slot];
      if (n > BigInt(2)) {
        const BigInt bogus = n - one;
        const auto it = std::find_if(
            result.claims.begin(), result.claims.end(),
            [slot](const batchgcd::TaskClaim& c) { return c.leaf == slot; });
        if (it != result.claims.end()) {
          it->divisor = bogus;
        } else {
          result.claims.push_back({static_cast<std::uint32_t>(slot), bogus});
        }
      }
    }
    tasks_done_.fetch_add(1, std::memory_order_relaxed);
    // Injectable: a dropped or garbled result is exactly the loss the
    // coordinator's timeout/retry machinery must absorb.
    conn_->send(MsgType::kTaskResult, result.encode(), /*injectable=*/true);
  }

  WorkerConfig config_;
  util::FaultInjector injector_;
  std::unique_ptr<FrameConn> conn_;

  std::mutex mu_;  ///< guards queue_, caches, stop_
  std::condition_variable cv_;
  std::deque<TaskAssignMsg> queue_;
  bool stop_ = false;
  std::map<std::uint32_t, std::vector<BigInt>> subsets_;
  std::map<std::uint32_t, BigInt> products_;
  std::map<std::uint32_t, std::shared_ptr<batchgcd::ProductTree>> trees_;
  std::atomic<std::uint32_t> tasks_done_{0};
};

}  // namespace

int run_worker(const WorkerConfig& config) { return Worker(config).run(); }

#else  // !WEAKKEYS_HAVE_NET

int run_worker(const WorkerConfig&) { return kWorkerExitConnect; }

#endif

}  // namespace weakkeys::cluster

#include "cluster/process_coordinator.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "batchgcd/coordinator.hpp"
#include "batchgcd/product_tree.hpp"
#include "batchgcd/task_journal.hpp"
#include "cluster/protocol.hpp"
#include "util/net.hpp"
#include "util/thread_pool.hpp"

namespace weakkeys::cluster {

#if defined(WEAKKEYS_HAVE_NET)

namespace {

using batchgcd::TaskClaim;
using bn::BigInt;
using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kNoWorker = static_cast<std::uint32_t>(-1);

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

enum class SlotState : std::uint8_t {
  kSpawning,  ///< process forked, waiting for Hello
  kLive,      ///< handshake done, serving tasks
  kLost,      ///< death observed, awaiting supervisor handling
  kRetired,   ///< given up (restart budget exhausted or shutting down)
};

enum class TaskState : std::uint8_t { kQueued, kAssigned, kDone };

struct Pending {
  std::size_t task = 0;
  std::size_t attempt = 0;  ///< 0-based attempt about to run
  Clock::time_point ready_at;
  std::uint32_t banned_worker = kNoWorker;
};

struct Slot {
  std::uint32_t id = 0;
  SlotState state = SlotState::kRetired;
  pid_t pid = -1;
  std::uint64_t incarnation = 0;  ///< bumped per (re)spawn; RX exit signal
  util::net::UniqueFd fd;
  std::unique_ptr<FrameConn> conn;
  std::thread rx;
  Clock::time_point spawn_at;
  Clock::time_point last_pong;
  Clock::time_point last_ping;
  std::uint64_t ping_seq = 0;
  bool busy = false;
  Pending current;  ///< valid when busy
  Clock::time_point assigned_at;
  std::size_t strikes = 0;  ///< verification failures this incarnation
  std::vector<bool> sent_subsets;
  std::vector<bool> sent_products;
  std::uint64_t worker_frames_sent = 0;  ///< worker-reported, via Pong
  std::uint64_t worker_frames_dropped = 0;
};

class ProcessCoordinator {
 public:
  ProcessCoordinator(std::span<const BigInt> moduli,
                     const ClusterConfig& config)
      : config_(config), moduli_(moduli) {
    if (config_.telemetry) {
      auto& m = config_.telemetry->metrics();
      m_workers_alive_ = &m.gauge("cluster.workers_alive");
      m_respawns_ = &m.counter("cluster.respawns");
      m_workers_lost_ = &m.counter("cluster.workers_lost");
      m_tasks_executed_ = &m.counter("cluster.tasks_executed");
      m_tasks_resumed_ = &m.counter("cluster.tasks_resumed");
      m_tasks_reassigned_ = &m.counter("cluster.tasks_reassigned");
      m_task_timeouts_ = &m.counter("cluster.task_timeouts");
      m_quarantined_ = &m.counter("cluster.results_quarantined");
      m_attempts_ = &m.counter("cluster.attempts");
      m_retries_ = &m.counter("cluster.retries");
      m_frames_sent_ = &m.counter("cluster.frames_sent");
      m_frames_dropped_ = &m.counter("cluster.frames_dropped");
      m_frames_corrupt_ = &m.counter("cluster.frames_corrupt");
      m_rtt_us_ = &m.histogram("cluster.heartbeat_rtt_us");
    }
    k_ = std::clamp<std::size_t>(config.subsets, 1,
                                 std::max<std::size_t>(moduli.size(), 1));
    total_ = k_ * k_;
    workers_n_ = std::max<std::size_t>(config.workers, 1);

    subsets_.resize(k_);
    const std::size_t base = moduli.size() / k_;
    const std::size_t extra = moduli.size() % k_;
    std::size_t offset = 0;
    for (std::size_t a = 0; a < k_; ++a) {
      const std::size_t len = base + (a < extra ? 1 : 0);
      subsets_[a].offset = offset;
      subsets_[a].moduli = moduli.subspan(offset, len);
      offset += len;
    }
    partial_.resize(k_);
    for (std::size_t a = 0; a < k_; ++a) {
      partial_[a].assign(subsets_[a].moduli.size(), BigInt(1));
    }
  }

  ~ProcessCoordinator() { cleanup(); }

  batchgcd::BatchGcdResult run(ClusterStats* stats) {
    batchgcd::BatchGcdResult result;
    result.divisors.assign(moduli_.size(), BigInt(1));
    if (moduli_.empty()) {
      if (stats) *stats = stats_;
      return result;
    }
    stats_.subsets = k_;
    stats_.tasks = total_;
    stats_.workers = workers_n_;
    if (config_.telemetry) {
      auto& m = config_.telemetry->metrics();
      m.counter("cluster.tasks").set(total_);
      m.counter("cluster.subsets").set(k_);
      m.counter("cluster.workers").set(workers_n_);
    }

    tstate_.assign(total_, TaskState::kQueued);
    fingerprint_ = batchgcd::corpus_fingerprint(moduli_, k_);
    if (!config_.checkpoint_path.empty()) open_journal();

    for (std::size_t t = 0; t < total_; ++t) {
      if (tstate_[t] != TaskState::kDone) {
        pending_.push_back({t, 0, Clock::now(), kNoWorker});
      }
    }
    if (committed_ > 0) {
      log("checkpoint: resumed " + std::to_string(committed_) + "/" +
          std::to_string(total_) + " tasks from " + config_.checkpoint_path);
    }

    if (config_.cancel && config_.cancel->cancelled()) cancelled_ = true;
    if (!pending_.empty() && !cancelled_) {
      compute_products();
      if (!cancelled_) supervise();
    }

    cleanup();
    if (stats) *stats = stats_;
    if (fatal_) std::rethrow_exception(fatal_);
    if (cancelled_) {
      journal_.close();
      throw util::Cancelled(config_.cancel ? config_.cancel->reason()
                                           : "cluster");
    }
    if (halted_) {
      journal_.close();
      throw batchgcd::CoordinatorInterrupted(
          "cluster halted after " + std::to_string(stats_.tasks_executed) +
          " tasks (checkpoint retained)");
    }

    for (std::size_t a = 0; a < k_; ++a) {
      for (std::size_t i = 0; i < subsets_[a].moduli.size(); ++i) {
        result.divisors[subsets_[a].offset + i] =
            bn::gcd(subsets_[a].moduli[i], partial_[a][i]);
      }
    }
    journal_.close();
    if (!config_.checkpoint_path.empty() &&
        config_.remove_checkpoint_on_success) {
      std::remove(config_.checkpoint_path.c_str());
    }
    if (stats) *stats = stats_;
    return result;
  }

 private:
  struct Subset {
    std::size_t offset = 0;
    std::span<const BigInt> moduli;
  };

  void log(const std::string& message) const {
    if (config_.log) config_.log(message);
  }

  // -- setup ---------------------------------------------------------------

  void open_journal() {
    journal_.open(
        config_.checkpoint_path, fingerprint_,
        static_cast<std::uint32_t>(total_),
        [this](std::uint32_t task, std::vector<TaskClaim>&& claims) {
          if (task >= total_ || tstate_[task] == TaskState::kDone)
            return false;
          const std::size_t a = task % k_;
          if (!verify(a, claims)) return false;
          for (const auto& claim : claims) {
            partial_[a][claim.leaf] = partial_[a][claim.leaf] * claim.divisor;
          }
          tstate_[task] = TaskState::kDone;
          ++committed_;
          ++stats_.tasks_resumed;
          if (m_tasks_resumed_) m_tasks_resumed_->inc();
          return true;
        });
  }

  /// Builds each subset's product tree just for its root — workers grow
  /// their own leaf trees, the coordinator only ships products around.
  void compute_products() {
    products_.assign(k_, BigInt(1));
    try {
      const std::size_t nthreads =
          std::min<std::size_t>(std::max<std::size_t>(workers_n_, 2), k_);
      if (nthreads <= 1) {
        for (std::size_t b = 0; b < k_; ++b) {
          if (config_.cancel) config_.cancel->throw_if_cancelled();
          products_[b] = batchgcd::ProductTree(subsets_[b].moduli).root();
        }
      } else {
        util::ThreadPool pool(nthreads, config_.telemetry);
        pool.parallel_for(
            k_,
            [this](std::size_t b) {
              products_[b] = batchgcd::ProductTree(subsets_[b].moduli).root();
            },
            config_.cancel);
      }
    } catch (const util::Cancelled&) {
      cancelled_ = true;
    }
  }

  // -- process management --------------------------------------------------

  void start_listener() {
    int bound = 0;
    listen_fd_.reset(util::net::listen_tcp(
        config_.bind_address, config_.port,
        static_cast<int>(std::max<std::size_t>(workers_n_, 4)), &bound));
    if (!listen_fd_.valid()) {
      throw ClusterError("cluster: cannot listen on " + config_.bind_address +
                         ":" + std::to_string(config_.port) + ": " +
                         std::strerror(errno));
    }
    bound_port_ = static_cast<std::uint16_t>(bound);
  }

  /// fork/execs one worker into `slot`. Caller holds mu_.
  void spawn(Slot& slot) {
    std::vector<std::string> args;
    args.push_back(config_.worker_binary);
    args.push_back("--port");
    args.push_back(std::to_string(bound_port_));
    args.push_back("--worker-id");
    args.push_back(std::to_string(slot.id));
    if (config_.injector) {
      const util::FaultConfig& f = config_.injector->config();
      args.push_back("--seed");
      args.push_back(std::to_string(f.seed));
      if (config_.worker_frame_faults && f.any_frame_faults()) {
        args.push_back("--frame-drop");
        args.push_back(std::to_string(f.frame_drop_probability));
        args.push_back("--frame-garble");
        args.push_back(std::to_string(f.frame_garble_probability));
        args.push_back("--frame-delay");
        args.push_back(std::to_string(f.frame_delay_probability));
        args.push_back("--frame-delay-ms");
        args.push_back(std::to_string(f.frame_delay_ms));
      }
      // Thread-tier faults run worker-side in the cluster: a kCrash is a
      // real _exit mid-task, a kCorruptResult a real bad divisor on the
      // wire, a kStraggle a real deadline miss (slept past task_timeout).
      if (f.crash_probability > 0) {
        args.push_back("--fault-crash");
        args.push_back(std::to_string(f.crash_probability));
      }
      if (f.straggle_probability > 0) {
        args.push_back("--fault-straggle");
        args.push_back(std::to_string(f.straggle_probability));
        args.push_back("--straggle-ms");
        args.push_back(std::to_string(config_.task_timeout.count() * 3 / 2));
      }
      if (f.corrupt_probability > 0) {
        args.push_back("--fault-corrupt");
        args.push_back(std::to_string(f.corrupt_probability));
      }
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
      throw ClusterError(std::string("cluster: fork failed: ") +
                         std::strerror(errno));
    }
    if (pid == 0) {
      ::execv(argv[0], argv.data());
      // exec failed: exit without running any parent-process atexit state.
      std::fprintf(stderr, "gcd_worker exec failed: %s: %s\n", argv[0],
                   std::strerror(errno));
      ::_exit(127);
    }
    slot.pid = pid;
    slot.state = SlotState::kSpawning;
    ++slot.incarnation;
    slot.spawn_at = Clock::now();
    slot.last_pong = slot.spawn_at;
    slot.last_ping = slot.spawn_at;
    slot.busy = false;
    slot.strikes = 0;
    slot.sent_subsets.assign(k_, false);
    slot.sent_products.assign(k_, false);
    slot.worker_frames_sent = 0;
    slot.worker_frames_dropped = 0;
    ++stats_.workers_spawned;
  }

  /// Accepts any queued connections and completes their handshake. Runs
  /// without mu_ (locks only to attach); a worker that connects but stalls
  /// before Hello costs a bounded wait and is cleaned up by spawn_timeout.
  void accept_pending() {
    while (util::net::wait_readable(listen_fd_.get(),
                                    std::chrono::milliseconds(0))) {
      util::net::UniqueFd fd(util::net::accept_cloexec(listen_fd_.get()));
      if (!fd.valid()) return;
      const timeval send_timeout{5, 0};
      ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                   sizeof(send_timeout));
      handshake(std::move(fd));
    }
  }

  void handshake(util::net::UniqueFd fd) {
    FrameConn probe(fd.get(), 0, nullptr);
    Frame frame;
    const auto deadline = Clock::now() + std::chrono::milliseconds(250);
    for (;;) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) return;
      const RecvStatus status = probe.recv(&frame, left);
      if (status == RecvStatus::kCorrupt) continue;
      if (status != RecvStatus::kOk) return;
      break;
    }
    if (frame.type != MsgType::kHello) return;
    const auto hello = HelloMsg::decode(frame.body);
    if (!hello || hello->version != kProtocolVersion) return;

    std::lock_guard guard(mu_);
    if (hello->worker_id >= slots_.size()) return;
    Slot& slot = slots_[hello->worker_id];
    if (slot.state != SlotState::kSpawning ||
        slot.pid != static_cast<pid_t>(hello->pid)) {
      return;  // stale or impostor connection; UniqueFd closes it
    }
    slot.fd = std::move(fd);
    slot.conn = std::make_unique<FrameConn>(
        slot.fd.get(), 2ull * slot.id,
        config_.injector && config_.injector->config().any_frame_faults()
            ? config_.injector
            : nullptr);
    HelloAckMsg ack;
    ack.fingerprint = fingerprint_;
    ack.heartbeat_interval_ms =
        static_cast<std::uint32_t>(config_.heartbeat_interval.count());
    if (!slot.conn->send(MsgType::kHelloAck, ack.encode())) {
      slot.conn.reset();
      slot.fd.reset();
      return;
    }
    slot.state = SlotState::kLive;
    slot.last_pong = Clock::now();
    refresh_alive_gauge();
    const std::uint64_t inc = slot.incarnation;
    slot.rx = std::thread([this, id = slot.id, inc] { rx_loop(id, inc); });
    log("cluster: worker " + std::to_string(slot.id) + " up (pid " +
        std::to_string(slot.pid) + ")");
  }

  // -- RX path (one thread per live connection) ----------------------------

  void rx_loop(std::uint32_t id, std::uint64_t inc) {
    FrameConn* conn = nullptr;
    {
      std::lock_guard guard(mu_);
      Slot& slot = slots_[id];
      if (slot.incarnation != inc || !slot.conn) return;
      conn = slot.conn.get();
    }
    for (;;) {
      {
        std::lock_guard guard(mu_);
        Slot& slot = slots_[id];
        if (stop_ || slot.incarnation != inc ||
            slot.state != SlotState::kLive) {
          return;
        }
      }
      Frame frame;
      switch (conn->recv(&frame, std::chrono::milliseconds(100))) {
        case RecvStatus::kTimeout:
          continue;
        case RecvStatus::kCorrupt: {
          std::lock_guard guard(mu_);
          ++stats_.frames_corrupt;
          if (m_frames_corrupt_) m_frames_corrupt_->inc();
          continue;
        }
        case RecvStatus::kClosed: {
          std::lock_guard guard(mu_);
          Slot& slot = slots_[id];
          if (slot.incarnation == inc && slot.state == SlotState::kLive) {
            slot.state = SlotState::kLost;
            cv_.notify_all();
          }
          return;
        }
        case RecvStatus::kOk:
          break;
      }
      std::lock_guard guard(mu_);
      Slot& slot = slots_[id];
      if (slot.incarnation != inc || slot.state != SlotState::kLive) return;
      switch (frame.type) {
        case MsgType::kPong:
          if (const auto pong = PongMsg::decode(frame.body)) {
            on_pong(slot, *pong);
          }
          break;
        case MsgType::kTaskResult:
          if (auto result = TaskResultMsg::decode(frame.body)) {
            on_result(slot, std::move(*result));
          }
          break;
        default:
          break;
      }
    }
  }

  void on_pong(Slot& slot, const PongMsg& pong) {
    slot.last_pong = Clock::now();
    slot.worker_frames_sent = pong.frames_sent;
    slot.worker_frames_dropped = pong.frames_dropped;
    const std::int64_t rtt_ns = now_ns() - pong.t_send_ns;
    if (rtt_ns >= 0) {
      const auto rtt_us = static_cast<std::uint64_t>(rtt_ns / 1000);
      stats_.max_heartbeat_rtt_us =
          std::max(stats_.max_heartbeat_rtt_us, rtt_us);
      if (m_rtt_us_) m_rtt_us_->record(rtt_us);
    }
  }

  /// Handles one TaskResult under mu_: re-verify, then commit or
  /// quarantine. Late results for reassigned/finished tasks are welcome
  /// when valid and fresh (folding is commutative) and ignored when stale.
  void on_result(Slot& slot, TaskResultMsg&& result) {
    const std::size_t task = result.task;
    const bool was_current = slot.busy && slot.current.task == task;
    std::size_t attempt = 0;
    if (was_current) {
      attempt = slot.current.attempt;
      slot.busy = false;  // the slot is schedulable again either way
    }
    if (task >= total_) return;
    if (tstate_[task] == TaskState::kDone) {
      cv_.notify_all();
      return;  // duplicate of an already committed task
    }

    const std::size_t a = task % k_;
    if (verify(a, result.claims)) {
      // Commit even when this slot was already timed out for the task —
      // the result is verified, and any later duplicate lands in the
      // kDone branch above.
      drop_from_pending(task);
      commit(task, result.claims);
    } else {
      // Quarantine: the claims never touch the accumulators or the
      // journal. The sender earns a strike; at the limit it is demoted.
      ++stats_.results_quarantined;
      if (m_quarantined_) m_quarantined_->inc();
      ++slot.strikes;
      log("cluster: worker " + std::to_string(slot.id) +
          " returned a corrupt result for task " + std::to_string(task) +
          " (strike " + std::to_string(slot.strikes) + ")");
      if (slot.strikes >= config_.quarantine_strikes &&
          slot.state == SlotState::kLive) {
        ++stats_.workers_demoted;
        slot.state = SlotState::kLost;  // supervisor kills + respawns
      }
      if (was_current) {
        requeue(task, attempt + 1, slot.id);
      }
    }
    cv_.notify_all();
  }

  // -- task bookkeeping (mu_ held) -----------------------------------------

  [[nodiscard]] bool verify(std::size_t a,
                            const std::vector<TaskClaim>& claims) const {
    const BigInt one(1);
    for (const auto& claim : claims) {
      if (claim.leaf >= subsets_[a].moduli.size()) return false;
      const BigInt& n = subsets_[a].moduli[claim.leaf];
      if (!(claim.divisor > one) || claim.divisor > n) return false;
      if (!(n % claim.divisor == BigInt(0))) return false;
    }
    return true;
  }

  void commit(std::size_t task, const std::vector<TaskClaim>& claims) {
    const std::size_t a = task % k_;
    for (const auto& claim : claims) {
      partial_[a][claim.leaf] = partial_[a][claim.leaf] * claim.divisor;
    }
    journal_.append(static_cast<std::uint32_t>(task), claims);
    tstate_[task] = TaskState::kDone;
    ++committed_;
    ++stats_.tasks_executed;
    if (m_tasks_executed_) m_tasks_executed_->inc();
    if (config_.halt_after_tasks != 0 &&
        stats_.tasks_executed >= config_.halt_after_tasks &&
        committed_ < total_) {
      halted_ = true;
    }
  }

  void drop_from_pending(std::size_t task) {
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->task == task) {
        pending_.erase(it);
        return;
      }
    }
  }

  [[nodiscard]] bool is_queued_or_assigned(std::size_t task) const {
    if (tstate_[task] == TaskState::kAssigned) {
      for (const Slot& slot : slots_) {
        if (slot.busy && slot.current.task == task) return true;
      }
    }
    for (const Pending& p : pending_) {
      if (p.task == task) return true;
    }
    return false;
  }

  /// Requeues `task` for its next attempt, or records the fatal retry
  /// exhaustion. No-op when the task is done or already queued/assigned
  /// elsewhere.
  void requeue(std::size_t task, std::size_t next_attempt,
               std::uint32_t banned_worker) {
    if (tstate_[task] == TaskState::kDone) return;
    tstate_[task] = TaskState::kQueued;
    if (is_queued_or_assigned(task)) return;
    if (config_.retry.exhausted(next_attempt)) {
      if (!fatal_) {
        fatal_ = std::make_exception_ptr(ClusterError(
            "cluster: task " + std::to_string(task) + " failed after " +
            std::to_string(next_attempt) + " attempts"));
      }
      cv_.notify_all();
      return;
    }
    pending_.push_back(
        {task, next_attempt,
         Clock::now() +
             config_.retry.jittered_delay(task, next_attempt - 1),
         slots_.size() > 1 ? banned_worker : kNoWorker});
  }

  // -- supervisor ----------------------------------------------------------

  void supervise() {
    start_listener();
    {
      std::lock_guard guard(mu_);
      slots_.resize(workers_n_);
      for (std::size_t w = 0; w < workers_n_; ++w) {
        slots_[w].id = static_cast<std::uint32_t>(w);
        spawn(slots_[w]);
      }
    }

    for (;;) {
      accept_pending();
      std::unique_lock lock(mu_);
      if (config_.cancel && config_.cancel->cancelled()) cancelled_ = true;
      if (fatal_ || cancelled_ || halted_) return;
      if (committed_ == total_) return;

      tick_liveness();
      tick_lost(lock);  // may drop the lock to join an RX thread
      if (fatal_) return;
      tick_timeouts();
      tick_assign();
      tick_frame_metrics();

      if (!any_active_slots() && committed_ < total_) {
        fatal_ = std::make_exception_ptr(
            ClusterError("cluster: all workers lost (restart budget " +
                         std::to_string(config_.restart_budget) +
                         " exhausted) with " +
                         std::to_string(total_ - committed_) +
                         " tasks pending"));
        return;
      }
      cv_.wait_for(lock, std::chrono::milliseconds(5));
    }
  }

  [[nodiscard]] bool any_active_slots() const {
    for (const Slot& slot : slots_) {
      if (slot.state != SlotState::kRetired) return true;
    }
    return false;
  }

  /// Heartbeats: ping live workers on the configured cadence and declare
  /// dead any that have not ponged within the miss budget. SIGSTOPped
  /// workers are caught exactly here — their socket is open but silent.
  void tick_liveness() {
    const auto now = Clock::now();
    const auto dead_after = config_.heartbeat_interval *
                            static_cast<int>(config_.heartbeat_misses);
    for (Slot& slot : slots_) {
      if (slot.state == SlotState::kSpawning &&
          now - slot.spawn_at > config_.spawn_timeout) {
        log("cluster: worker " + std::to_string(slot.id) +
            " failed to connect within spawn timeout");
        slot.state = SlotState::kLost;
        continue;
      }
      if (slot.state != SlotState::kLive) continue;
      if (now - slot.last_pong > dead_after) {
        log("cluster: worker " + std::to_string(slot.id) +
            " missed heartbeats; declaring dead");
        ++stats_.heartbeat_deaths;
        slot.state = SlotState::kLost;
        continue;
      }
      if (now - slot.last_ping >= config_.heartbeat_interval) {
        slot.last_ping = now;
        PingMsg ping;
        ping.seq = slot.ping_seq++;
        ping.t_send_ns = now_ns();
        if (!slot.conn->send(MsgType::kPing, ping.encode())) {
          slot.state = SlotState::kLost;
        }
      }
    }
  }

  /// Buries lost workers: requeue their in-flight task, reap the process,
  /// and respawn within the restart budget (else retire the slot). Joining
  /// the RX thread requires dropping mu_ briefly.
  void tick_lost(std::unique_lock<std::mutex>& lock) {
    for (std::size_t w = 0; w < slots_.size(); ++w) {
      Slot& slot = slots_[w];
      if (slot.state != SlotState::kLost) continue;
      ++stats_.workers_lost;
      if (m_workers_lost_) m_workers_lost_->inc();
      refresh_alive_gauge();

      // Invalidate the incarnation so the RX thread exits, then wake it.
      ++slot.incarnation;
      if (slot.fd.valid()) ::shutdown(slot.fd.get(), SHUT_RDWR);
      std::thread rx = std::move(slot.rx);
      const pid_t pid = slot.pid;

      if (slot.busy) {
        slot.busy = false;
        ++stats_.tasks_reassigned;
        if (m_tasks_reassigned_) m_tasks_reassigned_->inc();
        requeue(slot.current.task, slot.current.attempt + 1, slot.id);
      }

      lock.unlock();
      if (rx.joinable()) rx.join();
      if (pid > 0) {
        ::kill(pid, SIGKILL);  // no-op if already gone; un-sticks SIGSTOP
        int status = 0;
        ::waitpid(pid, &status, 0);
      }
      lock.lock();

      fold_conn_stats(slot);
      slot.conn.reset();
      slot.fd.reset();
      slot.pid = -1;

      if (respawns_used_ < config_.restart_budget) {
        ++respawns_used_;
        ++stats_.respawns;
        if (m_respawns_) m_respawns_->inc();
        log("cluster: respawning worker " + std::to_string(slot.id) + " (" +
            std::to_string(respawns_used_) + "/" +
            std::to_string(config_.restart_budget) + " restarts used)");
        try {
          spawn(slot);
        } catch (const ClusterError&) {
          slot.state = SlotState::kRetired;
          ++stats_.workers_retired;
        }
      } else {
        log("cluster: restart budget exhausted; retiring worker " +
            std::to_string(slot.id) + " (degrading to fewer workers)");
        slot.state = SlotState::kRetired;
        ++stats_.workers_retired;
      }
    }
  }

  /// Per-assignment deadline: a task not answered in time is requeued on
  /// another worker. The slow worker stays alive — if it is actually dead
  /// the heartbeat says so.
  void tick_timeouts() {
    const auto now = Clock::now();
    for (Slot& slot : slots_) {
      if (slot.state != SlotState::kLive || !slot.busy) continue;
      if (now - slot.assigned_at <= config_.task_timeout) continue;
      ++stats_.task_timeouts;
      if (m_task_timeouts_) m_task_timeouts_->inc();
      ++stats_.tasks_reassigned;
      if (m_tasks_reassigned_) m_tasks_reassigned_->inc();
      log("cluster: task " + std::to_string(slot.current.task) +
          " timed out on worker " + std::to_string(slot.id) + "; requeueing");
      const Pending timed_out = slot.current;
      slot.busy = false;
      requeue(timed_out.task, timed_out.attempt + 1, slot.id);
    }
  }

  void tick_assign() {
    const auto now = Clock::now();
    for (Slot& slot : slots_) {
      if (slot.state != SlotState::kLive || slot.busy) continue;
      std::size_t pick = pending_.size();
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        const Pending& p = pending_[i];
        if (p.banned_worker == slot.id && live_slots() > 1) continue;
        if (p.ready_at <= now) {
          pick = i;
          break;
        }
      }
      if (pick == pending_.size()) continue;
      Pending p = pending_[pick];
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(pick));
      assign(slot, p);
    }
  }

  [[nodiscard]] std::size_t live_slots() const {
    std::size_t n = 0;
    for (const Slot& slot : slots_) {
      if (slot.state == SlotState::kLive) ++n;
    }
    return n;
  }

  /// Ships one assignment: lazily fills the worker's subset/product caches
  /// (clean frames), sends the TaskAssign (injectable), then applies any
  /// process-tier fault decided for this (task, attempt).
  void assign(Slot& slot, const Pending& p) {
    const std::size_t b = p.task / k_;
    const std::size_t a = p.task % k_;

    if (!slot.sent_subsets[a]) {
      SubsetDataMsg msg;
      msg.subset = static_cast<std::uint32_t>(a);
      msg.moduli.assign(subsets_[a].moduli.begin(), subsets_[a].moduli.end());
      if (!slot.conn->send(MsgType::kSubsetData, msg.encode())) {
        slot.state = SlotState::kLost;
        pending_.push_back(p);
        return;
      }
      slot.sent_subsets[a] = true;
    }
    if (!slot.sent_products[b]) {
      ProductDataMsg msg;
      msg.subset = static_cast<std::uint32_t>(b);
      msg.product = products_[b];
      if (!slot.conn->send(MsgType::kProductData, msg.encode())) {
        slot.state = SlotState::kLost;
        pending_.push_back(p);
        return;
      }
      slot.sent_products[b] = true;
    }

    TaskAssignMsg msg;
    msg.task = static_cast<std::uint32_t>(p.task);
    msg.product_subset = static_cast<std::uint32_t>(b);
    msg.leaf_subset = static_cast<std::uint32_t>(a);
    msg.attempt = static_cast<std::uint32_t>(p.attempt);
    if (!slot.conn->send(MsgType::kTaskAssign, msg.encode(),
                         /*injectable=*/true)) {
      slot.state = SlotState::kLost;
      pending_.push_back(p);
      return;
    }
    slot.busy = true;
    slot.current = p;
    slot.assigned_at = Clock::now();
    tstate_[p.task] = TaskState::kAssigned;
    ++stats_.attempts;
    if (m_attempts_) m_attempts_->inc();
    if (p.attempt > 0) {
      ++stats_.retries;
      if (m_retries_) m_retries_->inc();
    }

    // Process-tier fault injection: the decision is keyed on (task,
    // attempt) like every other tier, so the schedule is independent of
    // which worker drew the assignment.
    if (config_.injector) {
      switch (config_.injector->decide_process(p.task, p.attempt)) {
        case util::ProcessFaultKind::kSigkill:
          ++stats_.sigkills_injected;
          ::kill(slot.pid, SIGKILL);
          break;
        case util::ProcessFaultKind::kSigstop:
          ++stats_.sigstops_injected;
          ::kill(slot.pid, SIGSTOP);
          break;
        case util::ProcessFaultKind::kNone:
          break;
      }
    }
  }

  // -- metrics -------------------------------------------------------------

  void refresh_alive_gauge() {
    if (m_workers_alive_) {
      m_workers_alive_->set(static_cast<std::int64_t>(live_slots()));
    }
  }

  /// Folds a dead incarnation's transport counters into the run totals
  /// (live connections are summed on top in tick_frame_metrics()).
  void fold_conn_stats(Slot& slot) {
    if (slot.conn) {
      const FrameStats& s = slot.conn->stats();
      retired_frames_sent_ += s.sent;
      retired_frames_dropped_ += s.dropped + slot.worker_frames_dropped;
      retired_frames_corrupt_ += s.corrupt;
    }
    if (config_.telemetry) {
      auto& m = config_.telemetry->metrics();
      const std::string prefix = "cluster.worker." + std::to_string(slot.id);
      m.counter(prefix + ".deaths").inc();
    }
  }

  void tick_frame_metrics() {
    std::uint64_t sent = retired_frames_sent_;
    std::uint64_t dropped = retired_frames_dropped_;
    std::uint64_t corrupt = retired_frames_corrupt_;
    for (const Slot& slot : slots_) {
      if (!slot.conn) continue;
      const FrameStats& s = slot.conn->stats();
      sent += s.sent;
      dropped += s.dropped + slot.worker_frames_dropped;
      corrupt += s.corrupt;
    }
    stats_.frames_sent = sent;
    stats_.frames_dropped = dropped;
    stats_.frames_corrupt = corrupt;
    if (m_frames_sent_) m_frames_sent_->set(sent);
    if (m_frames_dropped_) m_frames_dropped_->set(dropped);
    // frames_corrupt is inc()'d live by the RX threads.
  }

  // -- teardown ------------------------------------------------------------

  /// Stops everything, in an order that cannot deadlock or leak: shutdown
  /// frames (best effort), RX threads, sockets, then child processes (a
  /// grace period for clean exits, SIGKILL for the rest — a SIGSTOPped
  /// worker cannot process Shutdown). Idempotent.
  void cleanup() {
    std::vector<std::thread> rx_threads;
    std::vector<pid_t> pids;
    {
      std::lock_guard guard(mu_);
      if (cleaned_up_) return;
      cleaned_up_ = true;
      stop_ = true;
      for (Slot& slot : slots_) {
        if (slot.state == SlotState::kLive && slot.conn) {
          slot.conn->send(MsgType::kShutdown, {});
        }
        ++slot.incarnation;
        if (slot.fd.valid()) ::shutdown(slot.fd.get(), SHUT_RDWR);
        if (slot.rx.joinable()) rx_threads.push_back(std::move(slot.rx));
        if (slot.pid > 0) pids.push_back(slot.pid);
      }
    }
    for (auto& t : rx_threads) t.join();
    {
      std::lock_guard guard(mu_);
      for (Slot& slot : slots_) {
        fold_conn_stats(slot);
        slot.conn.reset();
        slot.fd.reset();
        slot.pid = -1;
        if (slot.state != SlotState::kRetired) slot.state = SlotState::kRetired;
      }
      tick_frame_metrics();
      if (m_workers_alive_) m_workers_alive_->set(0);
    }
    listen_fd_.reset();

    // Grace period for clean exits, then SIGKILL stragglers and reap.
    const auto deadline = Clock::now() + std::chrono::milliseconds(500);
    std::vector<pid_t>& remaining = pids;
    while (!remaining.empty() && Clock::now() < deadline) {
      std::erase_if(remaining, [](pid_t pid) {
        int status = 0;
        return ::waitpid(pid, &status, WNOHANG) != 0;
      });
      if (!remaining.empty()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    for (const pid_t pid : remaining) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
  }

  // -- state ---------------------------------------------------------------

  ClusterConfig config_;
  std::span<const BigInt> moduli_;
  std::size_t k_ = 1;
  std::size_t total_ = 0;
  std::size_t workers_n_ = 1;
  std::uint64_t fingerprint_ = 0;
  std::vector<Subset> subsets_;
  std::vector<BigInt> products_;  ///< per-subset product-tree roots

  util::net::UniqueFd listen_fd_;
  std::uint16_t bound_port_ = 0;

  std::mutex mu_;  ///< guards everything below
  std::condition_variable cv_;
  std::vector<Slot> slots_;
  std::deque<Pending> pending_;
  std::vector<TaskState> tstate_;
  std::size_t committed_ = 0;  ///< resumed + executed
  std::size_t respawns_used_ = 0;
  bool halted_ = false;
  bool cancelled_ = false;
  bool stop_ = false;
  bool cleaned_up_ = false;
  std::exception_ptr fatal_;
  std::vector<std::vector<BigInt>> partial_;  ///< per subset, per leaf
  batchgcd::TaskJournal journal_;
  ClusterStats stats_;
  std::uint64_t retired_frames_sent_ = 0;
  std::uint64_t retired_frames_dropped_ = 0;
  std::uint64_t retired_frames_corrupt_ = 0;

  obs::Gauge* m_workers_alive_ = nullptr;
  obs::Counter* m_respawns_ = nullptr;
  obs::Counter* m_workers_lost_ = nullptr;
  obs::Counter* m_tasks_executed_ = nullptr;
  obs::Counter* m_tasks_resumed_ = nullptr;
  obs::Counter* m_tasks_reassigned_ = nullptr;
  obs::Counter* m_task_timeouts_ = nullptr;
  obs::Counter* m_quarantined_ = nullptr;
  obs::Counter* m_attempts_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_frames_sent_ = nullptr;
  obs::Counter* m_frames_dropped_ = nullptr;
  obs::Counter* m_frames_corrupt_ = nullptr;
  obs::Histogram* m_rtt_us_ = nullptr;
};

}  // namespace

batchgcd::BatchGcdResult batch_gcd_cluster(std::span<const BigInt> moduli,
                                           const ClusterConfig& config,
                                           ClusterStats* stats) {
  if (config.worker_binary.empty()) {
    throw ClusterError("cluster: worker_binary not configured");
  }
  if (::access(config.worker_binary.c_str(), X_OK) != 0) {
    throw ClusterError("cluster: worker binary not executable: " +
                       config.worker_binary);
  }
  ProcessCoordinator coordinator(moduli, config);
  return coordinator.run(stats);
}

#else  // !WEAKKEYS_HAVE_NET

batchgcd::BatchGcdResult batch_gcd_cluster(std::span<const bn::BigInt>,
                                           const ClusterConfig&,
                                           ClusterStats*) {
  throw ClusterError("cluster: not supported on this platform");
}

#endif

}  // namespace weakkeys::cluster

#include "cluster/process_coordinator.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "batchgcd/coordinator.hpp"
#include "batchgcd/product_tree.hpp"
#include "batchgcd/task_journal.hpp"
#include "cluster/protocol.hpp"
#include "core/binary_io.hpp"
#include "obs/fleet.hpp"
#include "util/net.hpp"
#include "util/thread_pool.hpp"

namespace weakkeys::cluster {

#if defined(WEAKKEYS_HAVE_NET)

namespace {

using batchgcd::TaskClaim;
using bn::BigInt;
using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kNoWorker = static_cast<std::uint32_t>(-1);

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

enum class SlotState : std::uint8_t {
  kSpawning,      ///< process forked (or dial-in awaited), waiting for Hello
  kLive,          ///< handshake done, serving tasks
  kDisconnected,  ///< link lost but session held; awaiting ReconnectHello
  kLost,          ///< death observed, awaiting supervisor handling
  kRetired,       ///< given up (restart budget exhausted or shutting down)
};

enum class TaskState : std::uint8_t { kQueued, kAssigned, kDone };

struct Pending {
  std::size_t task = 0;
  std::size_t attempt = 0;  ///< 0-based attempt about to run
  Clock::time_point ready_at;
  std::uint32_t banned_worker = kNoWorker;
};

/// One in-progress chunked payload transfer to a worker (go-back-N sender
/// side; the head of Slot::transfers is the active one).
struct Transfer {
  std::uint32_t stream_id = 0;
  StreamKind kind = StreamKind::kSubset;
  std::uint32_t subset = 0;
  std::shared_ptr<const std::vector<std::uint8_t>> payload;
  std::uint32_t crc = 0;       ///< crc32 of the whole payload
  std::uint64_t acked = 0;     ///< receiver's contiguous prefix
  std::uint64_t sent_off = 0;  ///< next byte to send
  bool begin_sent = false;
  Clock::time_point last_progress;
};

struct Slot {
  std::uint32_t id = 0;
  bool is_remote = false;  ///< dial-in worker: never forked, killed or reaped
  SlotState state = SlotState::kRetired;
  pid_t pid = -1;
  /// Bumped per (re)spawn *and* per link attach/detach; the RX thread's
  /// exit signal. A reconnect within one worker incarnation still retires
  /// the old RX thread cleanly before the new link gets its own.
  std::uint64_t epoch = 0;
  util::net::UniqueFd fd;
  std::unique_ptr<FrameConn> conn;
  std::thread rx;
  Clock::time_point spawn_at;
  Clock::time_point last_pong;
  Clock::time_point last_ping;
  std::uint64_t ping_seq = 0;
  /// Negotiated protocol dialect for this incarnation, recorded from the
  /// Hello: every frame the coordinator sends this worker is encoded for
  /// this version (v2 workers get legacy bodies, no telemetry).
  std::uint32_t version = kProtocolVersion;
  bool busy = false;
  Pending current;  ///< valid when busy
  std::uint64_t assign_span = 0;  ///< open fleet assign span (valid when busy)
  Clock::time_point assigned_at;
  std::size_t strikes = 0;  ///< verification failures this incarnation
  // -- session state: survives disconnects, reset per incarnation ----------
  std::uint64_t session_id = 0;      ///< 0 = no session established yet
  std::uint64_t rx_result_seq = 0;   ///< dedup high-water for result replays
  std::uint64_t rx_telemetry_seq = 0;  ///< dedup high-water for telemetry
  Clock::time_point disconnected_at;
  std::deque<Transfer> transfers;
  std::vector<bool> delivered_subsets;   ///< fully acked by the worker
  std::vector<bool> delivered_products;
  std::uint64_t tx_seq_base = 0;    ///< injector counters carried across
  std::uint64_t conn_seq_base = 0;  ///< reconnects (see FrameConn ctor)
  std::uint64_t worker_frames_sent = 0;  ///< worker-reported, via Pong
  std::uint64_t worker_frames_dropped = 0;
  obs::Histogram* rtt_hist = nullptr;  ///< cluster.worker.<id>.rtt_us
};

class ProcessCoordinator {
 public:
  ProcessCoordinator(std::span<const BigInt> moduli,
                     const ClusterConfig& config)
      : config_(config),
        moduli_(moduli),
        fleet_(config.telemetry ? &config.telemetry->metrics() : nullptr,
               /*trace_enabled=*/!config.fleet_trace_path.empty()) {
    if (config_.telemetry) {
      auto& m = config_.telemetry->metrics();
      m_workers_alive_ = &m.gauge("cluster.workers_alive");
      m_respawns_ = &m.counter("cluster.respawns");
      m_workers_lost_ = &m.counter("cluster.workers_lost");
      m_tasks_executed_ = &m.counter("cluster.tasks_executed");
      m_tasks_resumed_ = &m.counter("cluster.tasks_resumed");
      m_tasks_reassigned_ = &m.counter("cluster.tasks_reassigned");
      m_task_timeouts_ = &m.counter("cluster.task_timeouts");
      m_quarantined_ = &m.counter("cluster.results_quarantined");
      m_attempts_ = &m.counter("cluster.attempts");
      m_retries_ = &m.counter("cluster.retries");
      m_frames_sent_ = &m.counter("cluster.frames_sent");
      m_frames_dropped_ = &m.counter("cluster.frames_dropped");
      m_frames_corrupt_ = &m.counter("cluster.frames_corrupt");
      m_reconnects_ = &m.counter("cluster.reconnects");
      m_sessions_expired_ = &m.counter("cluster.sessions_expired");
      m_duplicate_results_ = &m.counter("cluster.duplicate_results");
      m_stream_chunks_ = &m.counter("cluster.stream_chunks");
      m_stream_resumes_ = &m.counter("cluster.stream_resumes");
      m_rtt_us_ = &m.histogram("cluster.heartbeat_rtt_us");
    }
    k_ = std::clamp<std::size_t>(config.subsets, 1,
                                 std::max<std::size_t>(moduli.size(), 1));
    total_ = k_ * k_;
    remote_n_ = config.remote_workers;
    workers_n_ = remote_n_ > 0 ? config.workers
                               : std::max<std::size_t>(config.workers, 1);
    chunk_bytes_ = std::clamp<std::size_t>(config.stream_chunk_bytes, 1,
                                           kMaxFrameBytes / 2);
    window_chunks_ = std::max<std::size_t>(config.stream_window_chunks, 1);

    subsets_.resize(k_);
    const std::size_t base = moduli.size() / k_;
    const std::size_t extra = moduli.size() % k_;
    std::size_t offset = 0;
    for (std::size_t a = 0; a < k_; ++a) {
      const std::size_t len = base + (a < extra ? 1 : 0);
      subsets_[a].offset = offset;
      subsets_[a].moduli = moduli.subspan(offset, len);
      offset += len;
    }
    partial_.resize(k_);
    for (std::size_t a = 0; a < k_; ++a) {
      partial_[a].assign(subsets_[a].moduli.size(), BigInt(1));
    }
    enc_subset_.resize(k_);
    enc_subset_crc_.assign(k_, 0);
    enc_product_.resize(k_);
    enc_product_crc_.assign(k_, 0);
  }

  ~ProcessCoordinator() { cleanup(); }

  batchgcd::BatchGcdResult run(ClusterStats* stats) {
    batchgcd::BatchGcdResult result;
    result.divisors.assign(moduli_.size(), BigInt(1));
    if (moduli_.empty()) {
      if (stats) *stats = stats_;
      return result;
    }
    stats_.subsets = k_;
    stats_.tasks = total_;
    stats_.workers = workers_n_ + remote_n_;
    if (config_.telemetry) {
      auto& m = config_.telemetry->metrics();
      m.counter("cluster.tasks").set(total_);
      m.counter("cluster.subsets").set(k_);
      m.counter("cluster.workers").set(workers_n_ + remote_n_);
    }

    tstate_.assign(total_, TaskState::kQueued);
    fingerprint_ = batchgcd::corpus_fingerprint(moduli_, k_);
    if (!config_.checkpoint_path.empty()) open_journal();

    for (std::size_t t = 0; t < total_; ++t) {
      if (tstate_[t] != TaskState::kDone) {
        pending_.push_back({t, 0, Clock::now(), kNoWorker});
      }
    }
    if (committed_ > 0) {
      log("checkpoint: resumed " + std::to_string(committed_) + "/" +
          std::to_string(total_) + " tasks from " + config_.checkpoint_path);
    }

    if (config_.cancel && config_.cancel->cancelled()) cancelled_ = true;
    if (!pending_.empty() && !cancelled_) {
      compute_products();
      if (!cancelled_) supervise();
    }

    cleanup();
    if (stats) *stats = stats_;
    if (fatal_) std::rethrow_exception(fatal_);
    if (cancelled_) {
      journal_.close();
      throw util::Cancelled(config_.cancel ? config_.cancel->reason()
                                           : "cluster");
    }
    if (halted_) {
      journal_.close();
      throw batchgcd::CoordinatorInterrupted(
          "cluster halted after " + std::to_string(stats_.tasks_executed) +
          " tasks (checkpoint retained)");
    }

    for (std::size_t a = 0; a < k_; ++a) {
      for (std::size_t i = 0; i < subsets_[a].moduli.size(); ++i) {
        result.divisors[subsets_[a].offset + i] =
            bn::gcd(subsets_[a].moduli[i], partial_[a][i]);
      }
    }
    journal_.close();
    if (!config_.checkpoint_path.empty() &&
        config_.remove_checkpoint_on_success) {
      std::remove(config_.checkpoint_path.c_str());
    }
    if (stats) *stats = stats_;
    return result;
  }

 private:
  struct Subset {
    std::size_t offset = 0;
    std::span<const BigInt> moduli;
  };

  void log(const std::string& message) const {
    if (config_.log) config_.log(message);
  }

  [[nodiscard]] bool sessions_enabled() const {
    return config_.session_grace.count() > 0;
  }

  // -- setup ---------------------------------------------------------------

  void open_journal() {
    journal_.open(
        config_.checkpoint_path, fingerprint_,
        static_cast<std::uint32_t>(total_),
        [this](std::uint32_t task, std::vector<TaskClaim>&& claims) {
          if (task >= total_ || tstate_[task] == TaskState::kDone)
            return false;
          const std::size_t a = task % k_;
          if (!verify(a, claims)) return false;
          for (const auto& claim : claims) {
            partial_[a][claim.leaf] = partial_[a][claim.leaf] * claim.divisor;
          }
          tstate_[task] = TaskState::kDone;
          ++committed_;
          ++stats_.tasks_resumed;
          if (m_tasks_resumed_) m_tasks_resumed_->inc();
          return true;
        });
  }

  /// Builds each subset's product tree just for its root — workers grow
  /// their own leaf trees, the coordinator only ships products around.
  void compute_products() {
    products_.assign(k_, BigInt(1));
    try {
      const std::size_t nthreads = std::min<std::size_t>(
          std::max<std::size_t>(workers_n_ + remote_n_, 2), k_);
      if (nthreads <= 1) {
        for (std::size_t b = 0; b < k_; ++b) {
          if (config_.cancel) config_.cancel->throw_if_cancelled();
          products_[b] = batchgcd::ProductTree(subsets_[b].moduli).root();
        }
      } else {
        util::ThreadPool pool(nthreads, config_.telemetry);
        pool.parallel_for(
            k_,
            [this](std::size_t b) {
              products_[b] = batchgcd::ProductTree(subsets_[b].moduli).root();
            },
            config_.cancel);
      }
    } catch (const util::Cancelled&) {
      cancelled_ = true;
    }
  }

  // -- process management --------------------------------------------------

  void start_listener() {
    int bound = 0;
    listen_fd_.reset(util::net::listen_tcp(
        config_.bind_address, config_.port,
        static_cast<int>(std::max<std::size_t>(workers_n_ + remote_n_, 4)),
        &bound));
    if (!listen_fd_.valid()) {
      throw ClusterError("cluster: cannot listen on " + config_.bind_address +
                         ":" + std::to_string(config_.port) + ": " +
                         std::strerror(errno));
    }
    bound_port_ = static_cast<std::uint16_t>(bound);
  }

  /// Clears everything a fresh worker incarnation must not inherit. Caller
  /// holds mu_.
  void reset_session(Slot& slot) {
    slot.session_id = 0;
    slot.rx_result_seq = 0;
    slot.rx_telemetry_seq = 0;
    slot.transfers.clear();
    slot.delivered_subsets.assign(k_, false);
    slot.delivered_products.assign(k_, false);
    slot.tx_seq_base = 0;
    slot.conn_seq_base = 0;
    slot.worker_frames_sent = 0;
    slot.worker_frames_dropped = 0;
  }

  /// fork/execs one worker into `slot`. Caller holds mu_.
  void spawn(Slot& slot) {
    std::vector<std::string> args;
    args.push_back(config_.worker_binary);
    args.push_back("--port");
    args.push_back(std::to_string(bound_port_));
    args.push_back("--worker-id");
    args.push_back(std::to_string(slot.id));
    if (sessions_enabled()) {
      args.push_back("--session-reconnect");
      args.push_back("--reconnect-window-ms");
      args.push_back(std::to_string(config_.session_grace.count()));
    }
    if (config_.telemetry_interval.count() > 0) {
      args.push_back("--telemetry-interval-ms");
      args.push_back(std::to_string(config_.telemetry_interval.count()));
    } else {
      args.push_back("--no-telemetry");
    }
    if (config_.injector) {
      const util::FaultConfig& f = config_.injector->config();
      args.push_back("--seed");
      args.push_back(std::to_string(f.seed));
      if (config_.worker_frame_faults && f.any_frame_faults()) {
        args.push_back("--frame-drop");
        args.push_back(std::to_string(f.frame_drop_probability));
        args.push_back("--frame-garble");
        args.push_back(std::to_string(f.frame_garble_probability));
        args.push_back("--frame-delay");
        args.push_back(std::to_string(f.frame_delay_probability));
        args.push_back("--frame-delay-ms");
        args.push_back(std::to_string(f.frame_delay_ms));
      }
      if (config_.worker_frame_faults && f.any_conn_faults()) {
        args.push_back("--conn-disconnect");
        args.push_back(std::to_string(f.conn_disconnect_probability));
        args.push_back("--conn-partition");
        args.push_back(std::to_string(f.conn_partition_probability));
        args.push_back("--conn-half-open");
        args.push_back(std::to_string(f.conn_half_open_probability));
        args.push_back("--conn-drip");
        args.push_back(std::to_string(f.conn_slow_drip_probability));
        args.push_back("--conn-partition-ms");
        args.push_back(std::to_string(f.conn_partition_ms));
        args.push_back("--conn-drip-ms");
        args.push_back(std::to_string(f.conn_drip_delay_ms));
      }
      // Thread-tier faults run worker-side in the cluster: a kCrash is a
      // real _exit mid-task, a kCorruptResult a real bad divisor on the
      // wire, a kStraggle a real deadline miss (slept past task_timeout).
      if (f.crash_probability > 0) {
        args.push_back("--fault-crash");
        args.push_back(std::to_string(f.crash_probability));
      }
      if (f.straggle_probability > 0) {
        args.push_back("--fault-straggle");
        args.push_back(std::to_string(f.straggle_probability));
        args.push_back("--straggle-ms");
        args.push_back(std::to_string(config_.task_timeout.count() * 3 / 2));
      }
      if (f.corrupt_probability > 0) {
        args.push_back("--fault-corrupt");
        args.push_back(std::to_string(f.corrupt_probability));
      }
    }
    // Last so they can override anything the coordinator generated.
    for (const std::string& extra : config_.worker_extra_args) {
      args.push_back(extra);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
      throw ClusterError(std::string("cluster: fork failed: ") +
                         std::strerror(errno));
    }
    if (pid == 0) {
      ::execv(argv[0], argv.data());
      // exec failed: exit without running any parent-process atexit state.
      std::fprintf(stderr, "gcd_worker exec failed: %s: %s\n", argv[0],
                   std::strerror(errno));
      ::_exit(127);
    }
    slot.pid = pid;
    arm(slot);
  }

  /// Readies a dial-in slot for a (new) remote worker: same lifecycle as a
  /// fork, minus the fork. The worker must Hello within spawn_timeout.
  void arm_remote(Slot& slot) {
    slot.pid = -1;
    arm(slot);
  }

  void arm(Slot& slot) {
    slot.state = SlotState::kSpawning;
    ++slot.epoch;
    slot.spawn_at = Clock::now();
    slot.last_pong = slot.spawn_at;
    slot.last_ping = slot.spawn_at;
    slot.busy = false;
    slot.strikes = 0;
    reset_session(slot);
    ++stats_.workers_spawned;
  }

  /// Accepts any queued connections and completes their handshake. Runs
  /// without mu_ (locks only to attach); a worker that connects but stalls
  /// before Hello costs a bounded wait and is cleaned up by spawn_timeout.
  void accept_pending() {
    while (util::net::wait_readable(listen_fd_.get(),
                                    std::chrono::milliseconds(0))) {
      util::net::UniqueFd fd(util::net::accept_cloexec(listen_fd_.get()));
      if (!fd.valid()) return;
      const timeval send_timeout{5, 0};
      ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                   sizeof(send_timeout));
      handshake(std::move(fd));
    }
  }

  void handshake(util::net::UniqueFd fd) {
    FrameConn probe(fd.get(), 0, nullptr);
    Frame frame;
    const auto deadline = Clock::now() + std::chrono::milliseconds(250);
    for (;;) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) return;
      const RecvStatus status = probe.recv(&frame, left);
      if (status == RecvStatus::kCorrupt) continue;
      if (status != RecvStatus::kOk) return;
      break;
    }
    // Any dialect in [kMinProtocolVersion, kProtocolVersion] is served —
    // the coordinator speaks each worker's negotiated version per link.
    if (frame.type == MsgType::kHello) {
      const auto hello = HelloMsg::decode(frame.body);
      if (hello && hello->version >= kMinProtocolVersion &&
          hello->version <= kProtocolVersion) {
        attach_fresh(*hello, std::move(fd));
      }
      return;
    }
    if (frame.type == MsgType::kReconnectHello) {
      const auto msg = ReconnectHelloMsg::decode(frame.body);
      if (msg && msg->version >= kMinProtocolVersion &&
          msg->version <= kProtocolVersion) {
        reattach(*msg, std::move(fd), probe);
      }
      return;
    }
  }

  [[nodiscard]] const util::FaultInjector* link_injector() const {
    if (!config_.injector) return nullptr;
    const util::FaultConfig& f = config_.injector->config();
    return f.any_frame_faults() || f.any_conn_faults() ? config_.injector
                                                       : nullptr;
  }

  void attach_fresh(const HelloMsg& hello, util::net::UniqueFd fd) {
    std::lock_guard guard(mu_);
    if (hello.worker_id >= slots_.size()) return;
    Slot& slot = slots_[hello.worker_id];
    if (slot.state != SlotState::kSpawning) return;
    if (!slot.is_remote && slot.pid != static_cast<pid_t>(hello.pid)) {
      return;  // stale or impostor connection; UniqueFd closes it
    }
    if (slot.is_remote) slot.pid = static_cast<pid_t>(hello.pid);
    slot.version = hello.version;
    fleet_.on_worker_fresh(slot.id);
    slot.fd = std::move(fd);
    slot.conn = std::make_unique<FrameConn>(slot.fd.get(), 2ull * slot.id,
                                            link_injector());
    slot.session_id = next_session_id_++;
    HelloAckMsg ack;
    ack.fingerprint = fingerprint_;
    ack.heartbeat_interval_ms =
        static_cast<std::uint32_t>(config_.heartbeat_interval.count());
    ack.session_id = slot.session_id;
    if (!slot.conn->send(MsgType::kHelloAck, ack.encode())) {
      slot.conn.reset();
      slot.fd.reset();
      return;
    }
    slot.state = SlotState::kLive;
    slot.last_pong = Clock::now();
    refresh_alive_gauge();
    ++slot.epoch;
    slot.rx = std::thread([this, id = slot.id, epoch = slot.epoch] {
      rx_loop(id, epoch);
    });
    log("cluster: worker " + std::to_string(slot.id) + " up (pid " +
        std::to_string(slot.pid) + ", session " +
        std::to_string(slot.session_id) + ")");
  }

  /// A worker dialed back after link loss offering its session. Validate,
  /// retire whatever link is still attached, splice the new one in (injector
  /// counters carried over so the fault schedule continues instead of
  /// replaying), tell the worker our result high-water mark, and resume the
  /// in-flight transfer from its acked prefix.
  void reattach(const ReconnectHelloMsg& msg, util::net::UniqueFd fd,
                FrameConn& probe) {
    const auto reject = [&probe] {
      ReconnectAckMsg nack;
      nack.accepted = 0;
      probe.send(MsgType::kReconnectAck, nack.encode());
    };
    std::unique_lock lock(mu_);
    if (!sessions_enabled() || stop_ || msg.worker_id >= slots_.size()) {
      reject();
      return;
    }
    Slot& slot = slots_[msg.worker_id];
    if (slot.session_id == 0 || slot.session_id != msg.session_id ||
        (slot.state != SlotState::kLive &&
         slot.state != SlotState::kDisconnected) ||
        (!slot.is_remote && slot.pid != static_cast<pid_t>(msg.pid))) {
      reject();
      return;
    }
    // The old link may still be attached: not yet torn down by
    // tick_disconnected, or half-open (the worker noticed before we did).
    detach_link(slot, lock);
    if (slot.state != SlotState::kLive &&
        slot.state != SlotState::kDisconnected) {
      reject();  // demoted while we joined the old RX thread
      return;
    }
    slot.fd = std::move(fd);
    slot.conn = std::make_unique<FrameConn>(slot.fd.get(), 2ull * slot.id,
                                            link_injector(),
                                            slot.tx_seq_base,
                                            slot.conn_seq_base);
    ReconnectAckMsg ack;
    ack.accepted = 1;
    ack.ack_result_seq = slot.rx_result_seq;
    ack.heartbeat_interval_ms =
        static_cast<std::uint32_t>(config_.heartbeat_interval.count());
    if (!slot.conn->send(MsgType::kReconnectAck, ack.encode())) {
      slot.conn.reset();
      slot.fd.reset();
      slot.state = SlotState::kDisconnected;
      return;  // still within grace; maybe the next dial works
    }
    const auto now = Clock::now();
    slot.state = SlotState::kLive;
    slot.last_pong = now;
    slot.last_ping = now;
    if (!slot.transfers.empty()) {
      Transfer& t = slot.transfers.front();
      if (t.begin_sent && t.sent_off > t.acked) {
        ++stats_.stream_resumes;
        if (m_stream_resumes_) m_stream_resumes_->inc();
      }
      t.sent_off = t.acked;
      t.begin_sent = false;
      t.last_progress = now;
    }
    ++stats_.reconnects;
    if (m_reconnects_) m_reconnects_->inc();
    refresh_alive_gauge();
    ++slot.epoch;
    slot.rx = std::thread([this, id = slot.id, epoch = slot.epoch] {
      rx_loop(id, epoch);
    });
    log("cluster: worker " + std::to_string(slot.id) + " reconnected (session " +
        std::to_string(slot.session_id) + ", replaying past seq " +
        std::to_string(slot.rx_result_seq) + ")");
    pump_streams(slot);
    cv_.notify_all();
  }

  /// Declares the slot's link dead while holding mu_. With sessions enabled
  /// the slot parks in kDisconnected (session kept, grace clock started and
  /// the socket shut down so both the RX thread and a half-open peer see
  /// EOF); otherwise PR 6 semantics: the worker is lost.
  void link_lost(Slot& slot, const char* why) {
    if (slot.state != SlotState::kLive) return;
    if (sessions_enabled() && !stop_) {
      slot.state = SlotState::kDisconnected;
      slot.disconnected_at = Clock::now();
      if (slot.fd.valid()) ::shutdown(slot.fd.get(), SHUT_RDWR);
      log("cluster: worker " + std::to_string(slot.id) + " link lost (" +
          std::string(why) + "); holding session " +
          std::to_string(slot.session_id) + " for " +
          std::to_string(config_.session_grace.count()) + "ms");
    } else {
      slot.state = SlotState::kLost;
    }
    refresh_alive_gauge();
    cv_.notify_all();
  }

  /// Retires the slot's link without touching the session: bumps the epoch
  /// so the RX thread exits, joins it (dropping mu_ briefly), banks the
  /// injector counters for the next link, and folds transport stats. Safe
  /// across the unlock: only the supervisor thread detaches links, and the
  /// exiting RX thread touches the slot only under mu_ before the join
  /// completes.
  void detach_link(Slot& slot, std::unique_lock<std::mutex>& lock) {
    if (!slot.conn && !slot.rx.joinable()) return;
    ++slot.epoch;
    if (slot.fd.valid()) ::shutdown(slot.fd.get(), SHUT_RDWR);
    std::thread rx = std::move(slot.rx);
    lock.unlock();
    if (rx.joinable()) rx.join();
    lock.lock();
    if (slot.conn) {
      slot.tx_seq_base = slot.conn->tx_seq();
      slot.conn_seq_base = slot.conn->conn_seq();
      fold_link_stats(slot);
    }
    slot.conn.reset();
    slot.fd.reset();
  }

  // -- RX path (one thread per live connection) ----------------------------

  void rx_loop(std::uint32_t id, std::uint64_t epoch) {
    FrameConn* conn = nullptr;
    {
      std::lock_guard guard(mu_);
      Slot& slot = slots_[id];
      if (slot.epoch != epoch || !slot.conn) return;
      conn = slot.conn.get();
    }
    for (;;) {
      {
        std::lock_guard guard(mu_);
        Slot& slot = slots_[id];
        if (stop_ || slot.epoch != epoch || slot.state != SlotState::kLive) {
          return;
        }
      }
      Frame frame;
      switch (conn->recv(&frame, std::chrono::milliseconds(100))) {
        case RecvStatus::kTimeout:
          continue;
        case RecvStatus::kCorrupt: {
          std::lock_guard guard(mu_);
          ++stats_.frames_corrupt;
          if (m_frames_corrupt_) m_frames_corrupt_->inc();
          continue;
        }
        case RecvStatus::kClosed: {
          std::lock_guard guard(mu_);
          Slot& slot = slots_[id];
          if (slot.epoch == epoch) link_lost(slot, "connection closed");
          return;
        }
        case RecvStatus::kOk:
          break;
      }
      std::lock_guard guard(mu_);
      Slot& slot = slots_[id];
      if (slot.epoch != epoch || slot.state != SlotState::kLive) return;
      switch (frame.type) {
        case MsgType::kPong:
          if (const auto pong = PongMsg::decode(frame.body)) {
            on_pong(slot, *pong);
          }
          break;
        case MsgType::kTaskResult:
          if (auto result = TaskResultMsg::decode(frame.body)) {
            on_result(slot, std::move(*result));
          }
          break;
        case MsgType::kStreamAck:
          if (const auto ack = StreamAckMsg::decode(frame.body)) {
            on_stream_ack(slot, *ack);
          }
          break;
        case MsgType::kTelemetrySnapshot:
          if (auto snap = TelemetrySnapshotMsg::decode(frame.body)) {
            on_telemetry(slot, *snap);
          }
          break;
        default:
          break;
      }
    }
  }

  void on_pong(Slot& slot, const PongMsg& pong) {
    slot.last_pong = Clock::now();
    slot.worker_frames_sent = pong.frames_sent;
    slot.worker_frames_dropped = pong.frames_dropped;
    const std::int64_t recv_ns = now_ns();
    // v3 Pongs echo the worker's steady clock: one midpoint-method offset
    // observation per heartbeat (worker_now_ns stays 0 on v2 links and is
    // ignored). The Pong always precedes the worker's TelemetrySnapshot on
    // the same link, so span rebasing never runs without an estimate.
    fleet_.observe_clock(slot.id, pong.t_send_ns, recv_ns, pong.worker_now_ns);
    const std::int64_t rtt_ns = recv_ns - pong.t_send_ns;
    if (rtt_ns >= 0) {
      const auto rtt_us = static_cast<std::uint64_t>(rtt_ns / 1000);
      stats_.max_heartbeat_rtt_us =
          std::max(stats_.max_heartbeat_rtt_us, rtt_us);
      if (m_rtt_us_) m_rtt_us_->record(rtt_us);
      if (slot.rtt_hist) slot.rtt_hist->record(rtt_us);
    }
  }

  /// One worker telemetry export under mu_: dedup outbox replays by
  /// sequence, then hand the decoded snapshot to the fleet aggregator
  /// (clock-rebased span merge + fleet.* metric fan-out).
  void on_telemetry(Slot& slot, const TelemetrySnapshotMsg& msg) {
    if (msg.seq <= slot.rx_telemetry_seq) {
      ++stats_.telemetry_replays;
      return;  // replayed export; everything in it was ingested already
    }
    slot.rx_telemetry_seq = msg.seq;
    obs::FleetSnapshot snap;
    snap.worker_id = slot.id;
    snap.seq = msg.seq;
    snap.first_span_index = msg.first_span_index;
    snap.trace_epoch_ns = msg.trace_epoch_ns;
    snap.rss_kb = msg.rss_kb;
    snap.peak_rss_kb = msg.peak_rss_kb;
    snap.cpu_user_us = msg.cpu_user_us;
    snap.cpu_sys_us = msg.cpu_sys_us;
    snap.counters = msg.counters;
    snap.gauges = msg.gauges;
    snap.spans.reserve(msg.spans.size());
    for (const TelemetrySpan& s : msg.spans) {
      obs::TraceEvent ev;
      ev.name = s.name;
      ev.tid = 0;  // worker spans all live on the compute thread's lane
      ev.ts_us = s.ts_us;
      ev.dur_us = s.dur_us;
      ev.depth = s.depth;
      ev.args = s.args;
      snap.spans.push_back(std::move(ev));
    }
    ++stats_.telemetry_snapshots;
    stats_.telemetry_spans += fleet_.ingest(snap);
  }

  /// Handles one TaskResult under mu_: drop session replays we already
  /// processed, then re-verify and commit or quarantine. Late results for
  /// reassigned/finished tasks are welcome when valid and fresh (folding is
  /// commutative) and counted as duplicates when the task already committed
  /// — the journal therefore records every task exactly once.
  void on_result(Slot& slot, TaskResultMsg&& result) {
    if (result.result_seq != 0) {
      if (result.result_seq <= slot.rx_result_seq) {
        // Replay of a frame this session already delivered (the worker's
        // outbox is pruned by acks, but an ack can cross a replay in
        // flight). Everything it carried was handled the first time.
        ++stats_.results_replayed;
        return;
      }
      slot.rx_result_seq = result.result_seq;
    }
    const std::size_t task = result.task;
    const bool was_current = slot.busy && slot.current.task == task;
    std::size_t attempt = 0;
    std::uint64_t assign_span = 0;
    if (was_current) {
      attempt = slot.current.attempt;
      slot.busy = false;  // the slot is schedulable again either way
      assign_span = slot.assign_span;
      slot.assign_span = 0;
    }
    const auto close_span = [&](bool committed) {
      fleet_.end_assign(assign_span, now_ns(), committed);
    };
    if (task >= total_) {
      close_span(false);
      return;
    }
    if (tstate_[task] == TaskState::kDone) {
      close_span(true);  // this attempt's work is done, just redundantly
      ++stats_.duplicate_results;
      if (m_duplicate_results_) m_duplicate_results_->inc();
      cv_.notify_all();
      return;  // duplicate of an already committed task
    }

    const std::size_t a = task % k_;
    if (verify(a, result.claims)) {
      close_span(true);
      // Commit even when this slot was already timed out for the task —
      // the result is verified, and any later duplicate lands in the
      // kDone branch above.
      drop_from_pending(task);
      commit(task, result.claims);
    } else {
      close_span(false);
      // Quarantine: the claims never touch the accumulators or the
      // journal. The sender earns a strike; at the limit it is demoted.
      ++stats_.results_quarantined;
      if (m_quarantined_) m_quarantined_->inc();
      ++slot.strikes;
      log("cluster: worker " + std::to_string(slot.id) +
          " returned a corrupt result for task " + std::to_string(task) +
          " (strike " + std::to_string(slot.strikes) + ")");
      if (slot.strikes >= config_.quarantine_strikes &&
          slot.state == SlotState::kLive) {
        ++stats_.workers_demoted;
        slot.state = SlotState::kLost;  // supervisor kills + respawns
      }
      if (was_current) {
        requeue(task, attempt + 1, slot.id);
      }
    }
    cv_.notify_all();
  }

  // -- chunked payload streaming (mu_ held) --------------------------------

  [[nodiscard]] std::shared_ptr<const std::vector<std::uint8_t>>
  encoded_payload(StreamKind kind, std::size_t idx, std::uint32_t* crc) {
    auto& cache = kind == StreamKind::kSubset ? enc_subset_ : enc_product_;
    auto& crcs =
        kind == StreamKind::kSubset ? enc_subset_crc_ : enc_product_crc_;
    if (!cache[idx]) {
      std::vector<std::uint8_t> bytes;
      if (kind == StreamKind::kSubset) {
        SubsetDataMsg msg;
        msg.subset = static_cast<std::uint32_t>(idx);
        msg.moduli.assign(subsets_[idx].moduli.begin(),
                          subsets_[idx].moduli.end());
        bytes = msg.encode();
      } else {
        ProductDataMsg msg;
        msg.subset = static_cast<std::uint32_t>(idx);
        msg.product = products_[idx];
        bytes = msg.encode();
      }
      crcs[idx] = core::crc32(bytes);
      cache[idx] =
          std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
    }
    *crc = crcs[idx];
    return cache[idx];
  }

  /// Queues a transfer for (kind, idx) unless delivered or already queued.
  void ensure_transfer(Slot& slot, StreamKind kind, std::size_t idx) {
    const bool delivered = kind == StreamKind::kSubset
                               ? slot.delivered_subsets[idx]
                               : slot.delivered_products[idx];
    if (delivered) return;
    for (const Transfer& t : slot.transfers) {
      if (t.kind == kind && t.subset == idx) return;
    }
    Transfer t;
    t.stream_id = next_stream_id_++;
    t.kind = kind;
    t.subset = static_cast<std::uint32_t>(idx);
    t.payload = encoded_payload(kind, idx, &t.crc);
    t.last_progress = Clock::now();
    slot.transfers.push_back(std::move(t));
  }

  /// Drives the slot's head transfer: (re)announce with StreamBegin, then
  /// send chunks up to the backpressure window beyond the acked prefix.
  /// Chunks are injectable — a dropped chunk stalls the prefix and the
  /// retransmit timer rewinds to it (go-back-N).
  void pump_streams(Slot& slot) {
    if (slot.state != SlotState::kLive || !slot.conn ||
        slot.transfers.empty()) {
      return;
    }
    Transfer& t = slot.transfers.front();
    const std::uint64_t total = t.payload->size();
    if (!t.begin_sent) {
      StreamBeginMsg begin;
      begin.stream_id = t.stream_id;
      begin.kind = static_cast<std::uint8_t>(t.kind);
      begin.subset = t.subset;
      begin.total_bytes = total;
      begin.payload_crc = t.crc;
      if (!slot.conn->send(MsgType::kStreamBegin, begin.encode(),
                           /*injectable=*/true)) {
        link_lost(slot, "stream send failed");
        return;
      }
      t.begin_sent = true;
      t.last_progress = Clock::now();
    }
    const std::uint64_t window =
        static_cast<std::uint64_t>(chunk_bytes_) * window_chunks_;
    bool sent_any = false;
    while (t.sent_off < total && t.sent_off - t.acked < window) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(chunk_bytes_, total - t.sent_off));
      StreamChunkMsg chunk;
      chunk.stream_id = t.stream_id;
      chunk.offset = t.sent_off;
      const auto* base = t.payload->data() + t.sent_off;
      chunk.data.assign(base, base + n);
      if (!slot.conn->send(MsgType::kStreamChunk, chunk.encode(),
                           /*injectable=*/true)) {
        link_lost(slot, "stream send failed");
        return;
      }
      t.sent_off += n;
      ++stats_.stream_chunks_sent;
      if (m_stream_chunks_) m_stream_chunks_->inc();
      sent_any = true;
    }
    if (sent_any) t.last_progress = Clock::now();
  }

  void on_stream_ack(Slot& slot, const StreamAckMsg& ack) {
    if (slot.transfers.empty()) return;
    Transfer& t = slot.transfers.front();
    if (t.stream_id != ack.stream_id) return;
    const std::uint64_t total = t.payload->size();
    if (ack.received > total || ack.received <= t.acked) return;
    t.acked = ack.received;
    t.last_progress = Clock::now();
    if (t.acked == total) {
      if (t.kind == StreamKind::kSubset) {
        slot.delivered_subsets[t.subset] = true;
      } else {
        slot.delivered_products[t.subset] = true;
      }
      slot.transfers.pop_front();
      cv_.notify_all();  // a blocked assignment may now be satisfiable
    }
    pump_streams(slot);  // window slid, or the next transfer's Begin
  }

  /// Go-back-N retransmit: a head transfer with no ack progress for
  /// stream_retransmit rewinds to the acked prefix and resends — recovery
  /// for injected chunk/ack drops without any per-chunk bookkeeping.
  void tick_streams() {
    const auto now = Clock::now();
    for (Slot& slot : slots_) {
      if (slot.state != SlotState::kLive || slot.transfers.empty()) continue;
      Transfer& t = slot.transfers.front();
      if (now - t.last_progress > config_.stream_retransmit) {
        if (t.begin_sent && t.sent_off > t.acked) {
          ++stats_.stream_resumes;
          if (m_stream_resumes_) m_stream_resumes_->inc();
        }
        t.sent_off = t.acked;
        t.begin_sent = false;
        t.last_progress = now;
      }
      pump_streams(slot);
    }
  }

  // -- task bookkeeping (mu_ held) -----------------------------------------

  [[nodiscard]] bool verify(std::size_t a,
                            const std::vector<TaskClaim>& claims) const {
    const BigInt one(1);
    for (const auto& claim : claims) {
      if (claim.leaf >= subsets_[a].moduli.size()) return false;
      const BigInt& n = subsets_[a].moduli[claim.leaf];
      if (!(claim.divisor > one) || claim.divisor > n) return false;
      if (!(n % claim.divisor == BigInt(0))) return false;
    }
    return true;
  }

  void commit(std::size_t task, const std::vector<TaskClaim>& claims) {
    const std::size_t a = task % k_;
    for (const auto& claim : claims) {
      partial_[a][claim.leaf] = partial_[a][claim.leaf] * claim.divisor;
    }
    journal_.append(static_cast<std::uint32_t>(task), claims);
    tstate_[task] = TaskState::kDone;
    ++committed_;
    ++stats_.tasks_executed;
    if (m_tasks_executed_) m_tasks_executed_->inc();
    if (config_.halt_after_tasks != 0 &&
        stats_.tasks_executed >= config_.halt_after_tasks &&
        committed_ < total_) {
      halted_ = true;
    }
  }

  void drop_from_pending(std::size_t task) {
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->task == task) {
        pending_.erase(it);
        return;
      }
    }
  }

  [[nodiscard]] bool is_queued_or_assigned(std::size_t task) const {
    if (tstate_[task] == TaskState::kAssigned) {
      for (const Slot& slot : slots_) {
        if (slot.busy && slot.current.task == task) return true;
      }
    }
    for (const Pending& p : pending_) {
      if (p.task == task) return true;
    }
    return false;
  }

  /// Requeues `task` for its next attempt, or records the fatal retry
  /// exhaustion. No-op when the task is done or already queued/assigned
  /// elsewhere.
  void requeue(std::size_t task, std::size_t next_attempt,
               std::uint32_t banned_worker) {
    if (tstate_[task] == TaskState::kDone) return;
    tstate_[task] = TaskState::kQueued;
    if (is_queued_or_assigned(task)) return;
    if (config_.retry.exhausted(next_attempt)) {
      if (!fatal_) {
        fatal_ = std::make_exception_ptr(ClusterError(
            "cluster: task " + std::to_string(task) + " failed after " +
            std::to_string(next_attempt) + " attempts"));
      }
      cv_.notify_all();
      return;
    }
    pending_.push_back(
        {task, next_attempt,
         Clock::now() +
             config_.retry.jittered_delay(task, next_attempt - 1),
         slots_.size() > 1 ? banned_worker : kNoWorker});
  }

  // -- supervisor ----------------------------------------------------------

  void supervise() {
    start_listener();
    if (config_.on_listen) config_.on_listen(bound_port_);
    {
      std::lock_guard guard(mu_);
      slots_.resize(workers_n_ + remote_n_);
      for (std::size_t w = 0; w < slots_.size(); ++w) {
        Slot& slot = slots_[w];
        slot.id = static_cast<std::uint32_t>(w);
        if (config_.telemetry) {
          slot.rtt_hist = &config_.telemetry->metrics().histogram(
              "cluster.worker." + std::to_string(w) + ".rtt_us");
        }
        if (w < workers_n_) {
          spawn(slot);
        } else {
          slot.is_remote = true;
          arm_remote(slot);
        }
      }
    }

    for (;;) {
      accept_pending();
      std::unique_lock lock(mu_);
      if (config_.cancel && config_.cancel->cancelled()) cancelled_ = true;
      if (fatal_ || cancelled_ || halted_) return;
      if (committed_ == total_) return;

      tick_liveness();
      tick_disconnected(lock);  // may drop the lock to join an RX thread
      tick_lost(lock);          // may drop the lock to join an RX thread
      if (fatal_) return;
      tick_timeouts();
      tick_streams();
      tick_assign();
      tick_frame_metrics();

      if (!any_active_slots() && committed_ < total_) {
        fatal_ = std::make_exception_ptr(
            ClusterError("cluster: all workers lost (restart budget " +
                         std::to_string(config_.restart_budget) +
                         " exhausted) with " +
                         std::to_string(total_ - committed_) +
                         " tasks pending"));
        return;
      }
      cv_.wait_for(lock, std::chrono::milliseconds(5));
    }
  }

  [[nodiscard]] bool any_active_slots() const {
    for (const Slot& slot : slots_) {
      if (slot.state != SlotState::kRetired) return true;
    }
    return false;
  }

  /// Heartbeats: ping live workers on the configured cadence and declare
  /// dead any that have not ponged within the miss budget. SIGSTOPped
  /// workers are caught exactly here — their socket is open but silent. So
  /// are half-open links: the socket looks fine to write, nothing ever
  /// arrives. Pings carry the session's result high-water mark so the
  /// worker can prune its replay outbox.
  void tick_liveness() {
    const auto now = Clock::now();
    const auto dead_after = config_.heartbeat_interval *
                            static_cast<int>(config_.heartbeat_misses);
    for (Slot& slot : slots_) {
      if (slot.state == SlotState::kSpawning &&
          now - slot.spawn_at > config_.spawn_timeout) {
        log("cluster: worker " + std::to_string(slot.id) +
            " failed to connect within spawn timeout");
        slot.state = SlotState::kLost;
        continue;
      }
      if (slot.state != SlotState::kLive) continue;
      if (now - slot.last_pong > dead_after) {
        ++stats_.heartbeat_deaths;
        link_lost(slot, "missed heartbeats");
        continue;
      }
      if (now - slot.last_ping >= config_.heartbeat_interval) {
        slot.last_ping = now;
        PingMsg ping;
        ping.seq = slot.ping_seq++;
        ping.t_send_ns = now_ns();
        ping.ack_result_seq = slot.rx_result_seq;
        ping.ack_telemetry_seq = slot.rx_telemetry_seq;
        if (!slot.conn->send(MsgType::kPing, ping.encode(slot.version))) {
          link_lost(slot, "ping send failed");
        }
      }
    }
  }

  /// Tends parked sessions: tears down the dead link (the RX thread may
  /// still be draining) so a redial can splice in cleanly, and expires
  /// sessions whose grace window ran out — those become ordinary losses.
  void tick_disconnected(std::unique_lock<std::mutex>& lock) {
    for (std::size_t w = 0; w < slots_.size(); ++w) {
      Slot& slot = slots_[w];
      if (slot.state != SlotState::kDisconnected) continue;
      detach_link(slot, lock);
      if (slot.state != SlotState::kDisconnected) continue;
      if (Clock::now() - slot.disconnected_at > config_.session_grace) {
        log("cluster: worker " + std::to_string(slot.id) + " session " +
            std::to_string(slot.session_id) + " expired after " +
            std::to_string(config_.session_grace.count()) +
            "ms grace; declaring lost");
        ++stats_.sessions_expired;
        if (m_sessions_expired_) m_sessions_expired_->inc();
        slot.state = SlotState::kLost;
      }
    }
  }

  /// Buries lost workers: requeue their in-flight task, reap the process,
  /// and respawn within the restart budget (else retire the slot). Joining
  /// the RX thread requires dropping mu_ briefly.
  void tick_lost(std::unique_lock<std::mutex>& lock) {
    for (std::size_t w = 0; w < slots_.size(); ++w) {
      Slot& slot = slots_[w];
      if (slot.state != SlotState::kLost) continue;
      ++stats_.workers_lost;
      if (m_workers_lost_) m_workers_lost_->inc();
      refresh_alive_gauge();

      // Invalidate the epoch so the RX thread exits, then wake it.
      ++slot.epoch;
      if (slot.fd.valid()) ::shutdown(slot.fd.get(), SHUT_RDWR);
      std::thread rx = std::move(slot.rx);
      const pid_t pid = slot.is_remote ? -1 : slot.pid;

      if (slot.busy) {
        slot.busy = false;
        fleet_.end_assign(slot.assign_span, now_ns(), /*committed=*/false);
        slot.assign_span = 0;
        ++stats_.tasks_reassigned;
        if (m_tasks_reassigned_) m_tasks_reassigned_->inc();
        requeue(slot.current.task, slot.current.attempt + 1, slot.id);
      }

      lock.unlock();
      if (rx.joinable()) rx.join();
      if (pid > 0) {
        ::kill(pid, SIGKILL);  // no-op if already gone; un-sticks SIGSTOP
        int status = 0;
        ::waitpid(pid, &status, 0);
      }
      lock.lock();

      fold_conn_stats(slot);
      slot.conn.reset();
      slot.fd.reset();
      slot.pid = -1;

      if (respawns_used_ < config_.restart_budget) {
        ++respawns_used_;
        ++stats_.respawns;
        if (m_respawns_) m_respawns_->inc();
        log("cluster: respawning worker " + std::to_string(slot.id) + " (" +
            std::to_string(respawns_used_) + "/" +
            std::to_string(config_.restart_budget) + " restarts used)");
        if (slot.is_remote) {
          arm_remote(slot);  // re-open the slot for a fresh dial-in
        } else {
          try {
            spawn(slot);
          } catch (const ClusterError&) {
            slot.state = SlotState::kRetired;
            ++stats_.workers_retired;
          }
        }
      } else {
        log("cluster: restart budget exhausted; retiring worker " +
            std::to_string(slot.id) + " (degrading to fewer workers)");
        slot.state = SlotState::kRetired;
        ++stats_.workers_retired;
      }
    }
  }

  /// Per-assignment deadline: a task not answered in time is requeued on
  /// another worker. The slow worker stays alive — if it is actually dead
  /// the heartbeat says so. Disconnected slots keep their deadline running:
  /// a partition that outlasts task_timeout surrenders the task to another
  /// worker, and the healed session's late replay is deduplicated.
  void tick_timeouts() {
    const auto now = Clock::now();
    for (Slot& slot : slots_) {
      if ((slot.state != SlotState::kLive &&
           slot.state != SlotState::kDisconnected) ||
          !slot.busy) {
        continue;
      }
      if (now - slot.assigned_at <= config_.task_timeout) continue;
      ++stats_.task_timeouts;
      if (m_task_timeouts_) m_task_timeouts_->inc();
      ++stats_.tasks_reassigned;
      if (m_tasks_reassigned_) m_tasks_reassigned_->inc();
      log("cluster: task " + std::to_string(slot.current.task) +
          " timed out on worker " + std::to_string(slot.id) + "; requeueing");
      const Pending timed_out = slot.current;
      slot.busy = false;
      fleet_.end_assign(slot.assign_span, now_ns(), /*committed=*/false);
      slot.assign_span = 0;
      requeue(timed_out.task, timed_out.attempt + 1, slot.id);
    }
  }

  /// Hands ready tasks to idle live workers. A task is only assignable to a
  /// worker that holds its subset and product (fully acked streams); for
  /// the first candidate that is missing data, the transfers are queued and
  /// the scan keeps looking for one the worker can start right now.
  void tick_assign() {
    const auto now = Clock::now();
    for (Slot& slot : slots_) {
      if (slot.state != SlotState::kLive || slot.busy) continue;
      std::size_t pick = pending_.size();
      bool enqueued = false;
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        const Pending& p = pending_[i];
        if (p.banned_worker == slot.id && live_slots() > 1) continue;
        if (p.ready_at > now) continue;
        const std::size_t a = p.task % k_;
        const std::size_t b = p.task / k_;
        if (slot.delivered_subsets[a] && slot.delivered_products[b]) {
          pick = i;
          break;
        }
        if (!enqueued) {
          ensure_transfer(slot, StreamKind::kSubset, a);
          ensure_transfer(slot, StreamKind::kProduct, b);
          enqueued = true;
        }
      }
      if (enqueued) pump_streams(slot);
      if (slot.state != SlotState::kLive) continue;  // pump lost the link
      if (pick == pending_.size()) continue;
      Pending p = pending_[pick];
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(pick));
      assign(slot, p);
    }
  }

  [[nodiscard]] std::size_t live_slots() const {
    std::size_t n = 0;
    for (const Slot& slot : slots_) {
      if (slot.state == SlotState::kLive) ++n;
    }
    return n;
  }

  /// Ships one assignment (the worker already holds the payloads — see
  /// tick_assign), then applies any process-tier fault decided for this
  /// (task, attempt).
  void assign(Slot& slot, const Pending& p) {
    const std::size_t b = p.task / k_;
    const std::size_t a = p.task % k_;

    TaskAssignMsg msg;
    msg.task = static_cast<std::uint32_t>(p.task);
    msg.product_subset = static_cast<std::uint32_t>(b);
    msg.leaf_subset = static_cast<std::uint32_t>(a);
    msg.attempt = static_cast<std::uint32_t>(p.attempt);
    // Trace context (v3 only; the v2 body has no room for it): the worker
    // parents its task spans under this attempt's assign span. trace_id 0
    // means fleet tracing is off and the worker opens no spans.
    std::uint64_t assign_span = 0;
    if (slot.version >= 3) {
      const std::int64_t t = now_ns();
      assign_span = fleet_.begin_assign(msg.task, slot.id, msg.attempt, t);
      msg.trace_id = fleet_.trace_id();
      msg.parent_span = assign_span;
      msg.assign_ts_ns = t;
    }
    if (!slot.conn->send(MsgType::kTaskAssign, msg.encode(slot.version),
                         /*injectable=*/true)) {
      fleet_.end_assign(assign_span, now_ns(), /*committed=*/false);
      link_lost(slot, "assign send failed");
      pending_.push_back(p);
      return;
    }
    slot.busy = true;
    slot.current = p;
    slot.assign_span = assign_span;
    slot.assigned_at = Clock::now();
    tstate_[p.task] = TaskState::kAssigned;
    ++stats_.attempts;
    if (m_attempts_) m_attempts_->inc();
    if (p.attempt > 0) {
      ++stats_.retries;
      if (m_retries_) m_retries_->inc();
    }

    // Process-tier fault injection: the decision is keyed on (task,
    // attempt) like every other tier, so the schedule is independent of
    // which worker drew the assignment. Remote workers are out of signal
    // reach — their chaos comes from the connection tier.
    if (config_.injector && !slot.is_remote && slot.pid > 0) {
      switch (config_.injector->decide_process(p.task, p.attempt)) {
        case util::ProcessFaultKind::kSigkill:
          ++stats_.sigkills_injected;
          ::kill(slot.pid, SIGKILL);
          break;
        case util::ProcessFaultKind::kSigstop:
          ++stats_.sigstops_injected;
          ::kill(slot.pid, SIGSTOP);
          break;
        case util::ProcessFaultKind::kNone:
          break;
      }
    }
  }

  // -- metrics -------------------------------------------------------------

  void refresh_alive_gauge() {
    if (m_workers_alive_) {
      m_workers_alive_->set(static_cast<std::int64_t>(live_slots()));
    }
  }

  /// Folds a finished link's transport counters into the run totals (live
  /// connections are summed on top in tick_frame_metrics()).
  void fold_link_stats(Slot& slot) {
    if (!slot.conn) return;
    const FrameStats& s = slot.conn->stats();
    retired_frames_sent_ += s.sent;
    retired_frames_dropped_ += s.dropped + slot.worker_frames_dropped;
    retired_frames_corrupt_ += s.corrupt;
    retired_conn_faults_ +=
        s.conn_disconnects + s.conn_partitions + s.conn_half_opens +
        s.conn_drips;
  }

  /// fold_link_stats plus the per-slot death count — for links that ended
  /// with the worker, not just the connection.
  void fold_conn_stats(Slot& slot) {
    fold_link_stats(slot);
    if (config_.telemetry) {
      auto& m = config_.telemetry->metrics();
      const std::string prefix = "cluster.worker." + std::to_string(slot.id);
      m.counter(prefix + ".deaths").inc();
    }
  }

  void tick_frame_metrics() {
    std::uint64_t sent = retired_frames_sent_;
    std::uint64_t dropped = retired_frames_dropped_;
    std::uint64_t corrupt = retired_frames_corrupt_;
    std::uint64_t conn_faults = retired_conn_faults_;
    for (const Slot& slot : slots_) {
      if (!slot.conn) continue;
      const FrameStats& s = slot.conn->stats();
      sent += s.sent;
      dropped += s.dropped + slot.worker_frames_dropped;
      corrupt += s.corrupt;
      conn_faults += s.conn_disconnects + s.conn_partitions +
                     s.conn_half_opens + s.conn_drips;
    }
    stats_.frames_sent = sent;
    stats_.frames_dropped = dropped;
    stats_.frames_corrupt = corrupt;
    stats_.conn_faults_injected = conn_faults;
    if (m_frames_sent_) m_frames_sent_->set(sent);
    if (m_frames_dropped_) m_frames_dropped_->set(dropped);
    // frames_corrupt is inc()'d live by the RX threads.
  }

  // -- teardown ------------------------------------------------------------

  /// Stops everything, in an order that cannot deadlock or leak: shutdown
  /// frames (best effort), RX threads, sockets, then child processes (a
  /// grace period for clean exits, SIGKILL for the rest — a SIGSTOPped
  /// worker cannot process Shutdown). Remote workers get the Shutdown frame
  /// but are never signalled or reaped — they are not our children.
  /// Idempotent.
  void cleanup() {
    {
      std::lock_guard guard(mu_);
      if (cleaned_up_) return;
      cleaned_up_ = true;
      for (Slot& slot : slots_) {
        if (slot.state == SlotState::kLive && slot.conn) {
          slot.conn->send(MsgType::kShutdown, {});
        }
      }
    }
    // Drain before severing: a Shutdown-ed worker flushes its final
    // TelemetrySnapshot (the last tasks' spans and counter totals) and
    // exits, closing its socket — each RX thread keeps ingesting until that
    // EOF parks the slot. Bounded: a wedged (e.g. SIGSTOPped) worker cannot
    // flush and is severed at the deadline instead.
    {
      std::unique_lock lock(mu_);
      cv_.wait_until(lock, Clock::now() + std::chrono::milliseconds(500),
                     [this] {
                       for (const Slot& slot : slots_) {
                         if (slot.state == SlotState::kLive && slot.conn) {
                           return false;
                         }
                       }
                       return true;
                     });
    }
    std::vector<std::thread> rx_threads;
    std::vector<pid_t> pids;
    {
      std::lock_guard guard(mu_);
      stop_ = true;
      for (Slot& slot : slots_) {
        ++slot.epoch;
        if (slot.fd.valid()) ::shutdown(slot.fd.get(), SHUT_RDWR);
        if (slot.rx.joinable()) rx_threads.push_back(std::move(slot.rx));
        if (slot.pid > 0 && !slot.is_remote) pids.push_back(slot.pid);
      }
    }
    for (auto& t : rx_threads) t.join();
    {
      std::lock_guard guard(mu_);
      for (Slot& slot : slots_) {
        fold_conn_stats(slot);
        slot.conn.reset();
        slot.fd.reset();
        slot.pid = -1;
        if (slot.state != SlotState::kRetired) slot.state = SlotState::kRetired;
      }
      tick_frame_metrics();
      if (m_workers_alive_) m_workers_alive_->set(0);
    }
    listen_fd_.reset();

    // Grace period for clean exits, then SIGKILL stragglers and reap.
    const auto deadline = Clock::now() + std::chrono::milliseconds(500);
    std::vector<pid_t>& remaining = pids;
    while (!remaining.empty() && Clock::now() < deadline) {
      std::erase_if(remaining, [](pid_t pid) {
        int status = 0;
        return ::waitpid(pid, &status, WNOHANG) != 0;
      });
      if (!remaining.empty()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    for (const pid_t pid : remaining) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }

    // All RX threads are joined: the merged timeline is final. Write the
    // Chrome trace plus the fleet metrics JSON next to it.
    if (!config_.fleet_trace_path.empty()) {
      write_json_file(config_.fleet_trace_path, fleet_.chrome_trace_json());
      write_json_file(config_.fleet_trace_path + ".metrics.json",
                      fleet_.fleet_metrics_json());
    }
  }

  void write_json_file(const std::string& path, const std::string& json) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      log("cluster: cannot write " + path);
      return;
    }
    out << json << '\n';
    log("cluster: wrote " + path);
  }

  // -- state ---------------------------------------------------------------

  ClusterConfig config_;
  std::span<const BigInt> moduli_;
  std::size_t k_ = 1;
  std::size_t total_ = 0;
  std::size_t workers_n_ = 1;  ///< local (forked) slots
  std::size_t remote_n_ = 0;   ///< dial-in slots after the local ones
  std::size_t chunk_bytes_ = 64 * 1024;
  std::size_t window_chunks_ = 8;
  std::uint64_t fingerprint_ = 0;
  std::vector<Subset> subsets_;
  std::vector<BigInt> products_;  ///< per-subset product-tree roots

  util::net::UniqueFd listen_fd_;
  std::uint16_t bound_port_ = 0;
  /// Fleet observability: clock alignment, merged trace, fleet.* metric
  /// fan-out. Internally synchronized — called from RX threads and the
  /// supervisor without mu_ ordering concerns.
  obs::FleetAggregator fleet_;

  std::mutex mu_;  ///< guards everything below
  std::condition_variable cv_;
  std::vector<Slot> slots_;
  std::deque<Pending> pending_;
  std::vector<TaskState> tstate_;
  std::size_t committed_ = 0;  ///< resumed + executed
  std::size_t respawns_used_ = 0;
  std::uint64_t next_session_id_ = 1;
  std::uint32_t next_stream_id_ = 1;
  bool halted_ = false;
  bool cancelled_ = false;
  bool stop_ = false;
  bool cleaned_up_ = false;
  std::exception_ptr fatal_;
  std::vector<std::vector<BigInt>> partial_;  ///< per subset, per leaf
  // Encoded payload caches, shared across every slot's transfers (the
  // bytes for subset a are identical no matter which worker needs them).
  std::vector<std::shared_ptr<const std::vector<std::uint8_t>>> enc_subset_;
  std::vector<std::shared_ptr<const std::vector<std::uint8_t>>> enc_product_;
  std::vector<std::uint32_t> enc_subset_crc_;
  std::vector<std::uint32_t> enc_product_crc_;
  batchgcd::TaskJournal journal_;
  ClusterStats stats_;
  std::uint64_t retired_frames_sent_ = 0;
  std::uint64_t retired_frames_dropped_ = 0;
  std::uint64_t retired_frames_corrupt_ = 0;
  std::uint64_t retired_conn_faults_ = 0;

  obs::Gauge* m_workers_alive_ = nullptr;
  obs::Counter* m_respawns_ = nullptr;
  obs::Counter* m_workers_lost_ = nullptr;
  obs::Counter* m_tasks_executed_ = nullptr;
  obs::Counter* m_tasks_resumed_ = nullptr;
  obs::Counter* m_tasks_reassigned_ = nullptr;
  obs::Counter* m_task_timeouts_ = nullptr;
  obs::Counter* m_quarantined_ = nullptr;
  obs::Counter* m_attempts_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_frames_sent_ = nullptr;
  obs::Counter* m_frames_dropped_ = nullptr;
  obs::Counter* m_frames_corrupt_ = nullptr;
  obs::Counter* m_reconnects_ = nullptr;
  obs::Counter* m_sessions_expired_ = nullptr;
  obs::Counter* m_duplicate_results_ = nullptr;
  obs::Counter* m_stream_chunks_ = nullptr;
  obs::Counter* m_stream_resumes_ = nullptr;
  obs::Histogram* m_rtt_us_ = nullptr;
};

}  // namespace

batchgcd::BatchGcdResult batch_gcd_cluster(std::span<const BigInt> moduli,
                                           const ClusterConfig& config,
                                           ClusterStats* stats) {
  const bool spawns_workers =
      !(config.workers == 0 && config.remote_workers > 0);
  if (spawns_workers) {
    if (config.worker_binary.empty()) {
      throw ClusterError("cluster: worker_binary not configured");
    }
    if (::access(config.worker_binary.c_str(), X_OK) != 0) {
      throw ClusterError("cluster: worker binary not executable: " +
                         config.worker_binary);
    }
  }
  ProcessCoordinator coordinator(moduli, config);
  return coordinator.run(stats);
}

#else  // !WEAKKEYS_HAVE_NET

batchgcd::BatchGcdResult batch_gcd_cluster(std::span<const bn::BigInt>,
                                           const ClusterConfig&,
                                           ClusterStats*) {
  throw ClusterError("cluster: not supported on this platform");
}

#endif

}  // namespace weakkeys::cluster

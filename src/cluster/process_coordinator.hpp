// Multi-process batch-GCD cluster coordinator.
//
// Where batchgcd::batch_gcd_coordinated() *simulates* a cluster with
// threads and injected outcomes, this coordinator makes the failure domain
// real: it fork/execs N worker processes (tools/gcd_worker), distributes
// the k^2 (product x subset) remainder-tree tasks over the framed TCP
// protocol in cluster/protocol.hpp, and survives actual process death —
// a SIGKILLed worker is a closed socket, a SIGSTOPped worker is a process
// that silently stops answering heartbeats, a garbled frame is bytes that
// fail CRC on the wire.
//
// Failure matrix -> policy:
//
//   worker exits / SIGKILL        socket EOF -> requeue its in-flight task,
//                                 respawn within the restart budget
//   worker wedged / SIGSTOP       heartbeat Pongs stop -> after
//                                 heartbeat_misses intervals: SIGKILL,
//                                 requeue, respawn (budget permitting)
//   frame dropped or garbled      receiver CRC rejects / nothing arrives ->
//                                 per-task timeout requeues the assignment
//   corrupt result content        divisor re-verified on receipt; bad
//                                 results quarantined (never folded), the
//                                 sender accumulates strikes and is demoted
//                                 (killed + respawned) at the strike limit
//   task keeps failing            capped-exponential retry with jitter
//                                 (util::RetryPolicy — the same schedule as
//                                 the in-process coordinator), preferring a
//                                 different worker each time
//   link drops / partitions       with session_grace > 0 a disconnect is
//                                 not a death: the slot parks in
//                                 kDisconnected keeping its session (cached
//                                 payload delivery, transfer progress,
//                                 result sequence); the worker redials with
//                                 ReconnectHello and resumes — results it
//                                 computed inside the partition replay and
//                                 are deduplicated by sequence + journal,
//                                 so every task still commits exactly once
//   restart budget exhausted      the slot retires; the run degrades to the
//                                 remaining workers and fails only when no
//                                 worker is left with tasks still pending
//   coordinator killed            every committed task is in the CRC'd
//                                 resume journal (batchgcd::TaskJournal,
//                                 same file format as the in-process
//                                 coordinator) — rerun to resume
//
// Verified divisor claims are folded commutatively, so the output is
// element-for-element identical to batch_gcd() under any fault schedule —
// the chaos e2e test pins exactly that.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "batchgcd/batch_gcd.hpp"
#include "obs/telemetry.hpp"
#include "util/cancellation.hpp"
#include "util/fault_injector.hpp"
#include "util/retry.hpp"

namespace weakkeys::cluster {

struct ClusterConfig {
  /// Subset count k; k^2 tasks. Clamped to [1, moduli.size()].
  std::size_t subsets = 4;
  /// Worker processes to fork/exec. Clamped to >= 1 unless remote_workers
  /// covers the compute (then 0 local workers is legal).
  std::size_t workers = 2;
  /// Extra dial-in slots for remote workers the coordinator does not spawn
  /// itself (gcd_worker --connect host:port). Remote workers identify with
  /// ids in [workers, workers + remote_workers); their pids are recorded
  /// from Hello rather than validated, and a lost remote slot re-arms to
  /// await a fresh dial-in (within the shared restart budget) instead of
  /// being fork/exec'd.
  std::size_t remote_workers = 0;
  /// Path to the gcd_worker binary. Required when workers > 0.
  std::string worker_binary;
  /// Listen address for worker connections. Loopback by default; bind a
  /// routable address to accept remote workers.
  std::string bind_address = "127.0.0.1";
  /// Listen port; 0 = kernel-assigned ephemeral.
  std::uint16_t port = 0;
  /// Invoked with the actually bound listen port once the coordinator is
  /// accepting connections — how tests and tools launch dial-in workers
  /// against an ephemeral port.
  std::function<void(std::uint16_t)> on_listen;
  /// How long a disconnected worker's *session* (cached subset/product
  /// delivery state, in-flight transfer progress, result sequence) is kept
  /// alive awaiting a ReconnectHello before the slot is declared lost and
  /// respawned. 0 (default) = PR 6 behavior: disconnection is death.
  std::chrono::milliseconds session_grace{0};
  /// Chunk size for streaming subset/product payloads to workers.
  std::size_t stream_chunk_bytes = 64 * 1024;
  /// Backpressure: at most this many chunks may be in flight beyond the
  /// worker's acked prefix on one transfer.
  std::size_t stream_window_chunks = 8;
  /// A transfer with no ack progress for this long rewinds to the acked
  /// prefix and resends (go-back-N) — recovery for dropped chunks/acks.
  std::chrono::milliseconds stream_retransmit{250};
  /// Per-task retry schedule — the same policy type (and therefore delay
  /// curve) as the in-process coordinator.
  util::RetryPolicy retry;
  /// An assignment not answered within this deadline is requeued (the
  /// worker is left alive — slow is not dead; dead is the heartbeat's
  /// call).
  std::chrono::milliseconds task_timeout{10000};
  /// Ping cadence per worker.
  std::chrono::milliseconds heartbeat_interval{100};
  /// Pongs may lag this many intervals before the worker is declared dead.
  std::size_t heartbeat_misses = 10;
  /// Total worker respawns allowed across the whole run (not per slot).
  /// When exhausted, dead slots retire and the run degrades.
  std::size_t restart_budget = 8;
  /// Verification failures tolerated from one worker incarnation before it
  /// is demoted (killed and respawned, budget permitting).
  std::size_t quarantine_strikes = 3;
  /// A spawned worker must connect and complete the handshake within this
  /// deadline or it is killed and respawned (budget permitting).
  std::chrono::milliseconds spawn_timeout{10000};
  /// Resume journal path; empty disables journaling. Same file format as
  /// the in-process coordinator — runs resume across engines.
  std::string checkpoint_path;
  bool remove_checkpoint_on_success = true;
  /// Test hook: stop dispatching once this many tasks committed this run
  /// and throw batchgcd::CoordinatorInterrupted (journal retained).
  std::size_t halt_after_tasks = 0;
  /// Cooperative cancellation; polled every supervisor tick.
  const util::CancellationToken* cancel = nullptr;
  /// Fault source for the process tier (SIGKILL/SIGSTOP per assignment)
  /// and the coordinator's outbound frame tier. Worker-side outbound frame
  /// faults are configured separately via worker argv (see
  /// worker_frame_faults).
  const util::FaultInjector* injector = nullptr;
  /// When true, the injector's frame-fault probabilities are forwarded to
  /// workers on their command line, so result frames suffer the same lossy
  /// link as assignment frames.
  bool worker_frame_faults = true;
  std::function<void(const std::string&)> log;
  /// Telemetry: cluster.* counters/gauges mirroring ClusterStats, a
  /// cluster.heartbeat_rtt_us histogram, and per-worker
  /// cluster.worker.<w>.* instruments. Must outlive the call.
  obs::Telemetry* telemetry = nullptr;
  /// Telemetry export cadence forwarded to spawned workers (v3): each
  /// worker ships a TelemetrySnapshot (metrics + spans + RSS/CPU) at most
  /// this often, piggybacked on the heartbeat path. The coordinator fans
  /// the snapshots into fleet.worker.<id>.* / fleet.* metrics on its
  /// registry. 0 disables export (workers get --no-telemetry).
  std::chrono::milliseconds telemetry_interval{500};
  /// When non-empty, collect a fleet-merged Chrome trace — coordinator
  /// assign spans plus clock-rebased worker task spans — and write it here
  /// at the end of the run (plus fleet metrics JSON at
  /// `<path>.metrics.json`). Implies trace context on v3 TaskAssigns.
  std::string fleet_trace_path;
  /// Extra argv appended verbatim to every spawned worker (after the
  /// coordinator-generated flags, so they can override) — how tests pin
  /// e.g. --protocol-v2 on a worker without a dedicated config knob.
  std::vector<std::string> worker_extra_args;
};

struct ClusterStats {
  std::size_t subsets = 0;
  std::size_t tasks = 0;
  std::size_t workers = 0;          ///< configured slot count
  std::size_t workers_spawned = 0;  ///< all spawns, initial + respawns
  std::size_t respawns = 0;         ///< spawns beyond each slot's first
  std::size_t workers_lost = 0;     ///< deaths observed (EOF, heartbeat,
                                    ///< spawn timeout, demotion)
  std::size_t heartbeat_deaths = 0;  ///< of which: declared via heartbeat
  std::size_t workers_demoted = 0;   ///< of which: quarantine strike-outs
  std::size_t workers_retired = 0;   ///< slots given up (budget exhausted)
  std::size_t attempts = 0;          ///< assignments sent
  std::size_t retries = 0;           ///< assignments beyond a task's first
  std::size_t task_timeouts = 0;     ///< assignments requeued by deadline
  std::size_t tasks_reassigned = 0;  ///< in-flight work voided by a death
  std::size_t results_quarantined = 0;  ///< results failing verification
  std::size_t sigkills_injected = 0;
  std::size_t sigstops_injected = 0;
  std::size_t tasks_resumed = 0;   ///< from the journal, not re-run
  std::size_t tasks_executed = 0;  ///< committed by this run's workers
  std::size_t reconnects = 0;      ///< sessions resumed after link loss
  std::size_t sessions_expired = 0;   ///< grace windows that ran out
  std::size_t duplicate_results = 0;  ///< results for already-done tasks
  std::size_t results_replayed = 0;   ///< outbox replays already received
  std::uint64_t stream_chunks_sent = 0;  ///< chunked payload frames written
  std::uint64_t stream_resumes = 0;   ///< go-back-N rewinds (timeout/reconnect)
  std::uint64_t frames_sent = 0;     ///< coordinator-side frames written
  std::uint64_t frames_dropped = 0;  ///< injected drops, both directions
  std::uint64_t frames_corrupt = 0;  ///< frames rejected by CRC on receipt
  std::uint64_t conn_faults_injected = 0;  ///< coordinator-side link events
  std::uint64_t max_heartbeat_rtt_us = 0;
  std::uint64_t telemetry_snapshots = 0;  ///< fresh exports ingested
  std::uint64_t telemetry_replays = 0;    ///< duplicate seqs (outbox replay)
  std::uint64_t telemetry_spans = 0;      ///< worker spans merged
};

/// The cluster could not finish: no workers left, a task exhausted its
/// retry budget, or setup failed (bind, spawn, missing binary).
class ClusterError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Runs the k-subset batch GCD across real worker processes. Output is
/// element-for-element identical to batch_gcd() under any fault schedule.
/// Resumes from `config.checkpoint_path` (shared journal format with
/// batch_gcd_coordinated). Throws util::Cancelled on cancellation (journal
/// retained), batchgcd::CoordinatorInterrupted from the halt_after_tasks
/// hook, ClusterError when the run cannot complete.
batchgcd::BatchGcdResult batch_gcd_cluster(std::span<const bn::BigInt> moduli,
                                           const ClusterConfig& config,
                                           ClusterStats* stats = nullptr);

}  // namespace weakkeys::cluster

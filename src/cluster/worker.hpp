// The cluster worker: one OS process executing remainder-tree tasks on
// behalf of cluster::ProcessCoordinator. tools/gcd_worker.cpp is a thin
// argv shim over run_worker(); tests can also run a worker in-process
// (in a thread) to exercise the protocol without forking.
//
// Thread structure: the RX loop (the calling thread) answers Pings
// immediately and queues TaskAssigns; a separate compute thread pops tasks,
// builds/caches subset product trees, runs the remainder tree, and sends
// TaskResults. Liveness is therefore real: a SIGSTOPped worker stops
// answering pings because the whole process is frozen, not because a flag
// was set — the coordinator's heartbeat detector has to notice on its own.
//
// With session_reconnect enabled, the TCP connection is a replaceable
// transport under a durable session: on EOF (or a ping-deadline half-open
// detection) the RX loop returns to run(), which redials and offers
// ReconnectHello{session_id} while the compute thread keeps crunching.
// Completed results wait in a sequence-numbered outbox — pruned by the
// coordinator's acks piggybacked on Pings, replayed after each reconnect —
// so a result computed inside a partition is delivered exactly once after
// it heals.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "util/fault_injector.hpp"

namespace weakkeys::cluster {

struct WorkerConfig {
  std::string coordinator_address = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint32_t worker_id = 0;
  std::chrono::milliseconds connect_timeout{10000};
  /// When true, losing the TCP connection after a session is established is
  /// recoverable: the worker redials and offers ReconnectHello against its
  /// session id, keeping caches, in-flight compute, and unacknowledged
  /// results (replayed to the coordinator's high-water mark). When false
  /// (the default, and PR 6 behavior) any disconnect ends the process.
  bool session_reconnect = false;
  /// How long to keep redialing after a disconnect before giving up; the
  /// coordinator forwards its session grace window here so both sides stop
  /// caring at about the same time.
  std::chrono::milliseconds reconnect_window{10000};
  /// First redial backoff; doubles per failed attempt, capped at 1s.
  std::chrono::milliseconds reconnect_backoff{20};
  /// Half-open detection: if no frame at all (not even a Ping) arrives for
  /// this long, the link is declared dead and redialed. 0 = derive 10x the
  /// coordinator's advertised heartbeat interval; only armed when
  /// session_reconnect is on or a value is set explicitly.
  std::chrono::milliseconds ping_deadline{0};
  /// Arm TCP keepalive on the dialed socket — the transport-layer backstop
  /// for remote links whose peer vanished without a FIN.
  bool tcp_keepalive = false;
  /// Fault injection, worker side. Frame tier applies to the worker's
  /// *outbound* frames (the coordinator injects its own side; each end
  /// garbles only what it sends, like a real lossy link). The thread-tier
  /// probabilities make the simulated outcomes real: kCrash is an _exit()
  /// mid-task (socket EOF at the coordinator), kStraggle sleeps past the
  /// task deadline then sends the late result anyway, kCorruptResult ships
  /// a divisor that cannot divide its modulus (the coordinator's
  /// re-verification must quarantine it).
  util::FaultConfig faults;
  /// How long a straggling task sleeps; meaningful only with
  /// straggle_probability > 0. The coordinator forwards a value beyond its
  /// task_timeout so a straggle is always a timeout there.
  std::chrono::milliseconds straggle_sleep{300};
  /// Telemetry export cadence (protocol v3): a Ping arriving at least this
  /// long after the previous export triggers a TelemetrySnapshot frame
  /// (metrics + completed task spans + RSS/CPU) back to the coordinator.
  /// 0 disables export entirely; exports are also disabled when
  /// protocol_version < 3.
  std::chrono::milliseconds telemetry_interval{500};
  /// Protocol version to advertise in the Hello. 0 = newest
  /// (kProtocolVersion); 2 pins the legacy v2 dialect — no telemetry
  /// export, legacy Pong encoding — for compatibility testing against a
  /// v3 coordinator.
  std::uint32_t protocol_version = 0;
  /// Sampling-profiler cadence for this worker process (DESIGN.md §5k);
  /// 0 disables. When on, memory accounting is enabled too and
  /// mem_live_kb / mem_peak_kb gauges ride every TelemetrySnapshot so the
  /// fleet view shows per-worker peak bytes.
  double profile_hz = 0;
  /// Collapsed-stack output path for this worker's profile; empty keeps the
  /// profile in metrics only.
  std::string profile_out;
  /// Soft memory budget in MiB (0 = off). Crossing it raises the alarm
  /// counter in the telemetry stream; the worker never aborts.
  std::size_t mem_budget_mb = 0;
  /// Out-of-core spill directory for this worker's subset product trees
  /// (DESIGN.md §5l); empty disables spilling. Level files are named
  /// "worker<id>.s<subset>.*" so workers sharing one directory never
  /// collide. gcd_worker wires --spill-dir / WEAKKEYS_SPILL_DIR here.
  std::string spill_dir;
  /// Estimated per-tree bytes at which spilling kicks in, in MiB
  /// (0 = always spill when a dir is set).
  std::size_t spill_threshold_mb = 256;
  /// Progress/diagnostic sink; null discards (gcd_worker wires stderr).
  std::function<void(const std::string&)> log;
};

/// Exit codes mirror process conventions: 0 = clean Shutdown from the
/// coordinator, nonzero = connection lost or protocol violation (the
/// coordinator treats any worker exit it did not request as a crash).
inline constexpr int kWorkerExitOk = 0;
inline constexpr int kWorkerExitConnect = 2;   ///< could not reach coordinator
inline constexpr int kWorkerExitProtocol = 3;  ///< handshake/stream failure

/// Connects, handshakes, and serves tasks until Shutdown or disconnect.
/// Returns the process exit code.
int run_worker(const WorkerConfig& config);

}  // namespace weakkeys::cluster

// The ingest/quarantine stage: graceful degradation for dirty corpora.
//
// Between the raw scan data and everything downstream (chain
// reconstruction, batch GCD, fingerprinting) sits a validation pass that
// never aborts: records that fail to decode or carry degenerate keys are
// dropped into per-reason quarantine counters, and structurally
// non-well-formed moduli are rerouted to the divisor-class triage (the
// paper's smooth/bit-error bucket) instead of reaching the batch-GCD input,
// where an even modulus would smear a factor of 2 across the whole corpus.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "netsim/dataset.hpp"
#include "util/cancellation.hpp"

namespace weakkeys::core {

enum class QuarantineReason : std::uint8_t {
  // Decode failures (records arriving as raw bytes).
  kParseTruncatedHeader = 0,
  kParseLengthOverrun,
  kParseBadTag,
  kParseBadFieldWidth,
  kParseBadDn,
  kParseBadDate,
  kParseOther,  ///< end-of-input, trailing garbage, ...
  // Semantic failures (records that decode but are not plausible).
  kMissingCertificate,  ///< neither a decoded certificate nor raw bytes
  kZeroModulus,         ///< n <= 1
  kTinyModulus,         ///< n far below any real key size
  kEvenModulus,         ///< n even — never a product of two odd primes
  kBadExponent,         ///< e in {0, 1}
  kInvertedValidity,    ///< not_after < not_before
  kDuplicateSerial,     ///< serial already seen under a different subject
};

inline constexpr std::size_t kQuarantineReasonCount = 14;

const char* to_string(QuarantineReason r);

struct IngestStats {
  std::size_t records_seen = 0;
  std::size_t records_kept = 0;
  std::size_t records_quarantined = 0;
  /// Records that arrived as undecoded bytes (dirty-corpus wire damage).
  std::size_t raw_records = 0;
  /// Raw-byte records that decoded and validated — recovered, kept.
  std::size_t raw_recovered = 0;
  /// Distinct degenerate moduli rerouted to the divisor-class triage.
  std::size_t degenerate_moduli = 0;
  std::array<std::size_t, kQuarantineReasonCount> by_reason{};

  [[nodiscard]] std::size_t quarantined(QuarantineReason r) const {
    return by_reason[static_cast<std::size_t>(r)];
  }
  /// Sum of the parse-failure reasons only.
  [[nodiscard]] std::size_t parse_failures() const;
  /// One-line per-reason breakdown for the progress log.
  [[nodiscard]] std::string summary() const;
};

struct IngestResult {
  /// The validated dataset: every record carries a decoded, plausibly
  /// well-formed certificate.
  netsim::ScanDataset kept;
  IngestStats stats;
  /// Distinct quarantined moduli that were structurally degenerate (zero,
  /// tiny, even) — callers feed these to fingerprint::triage_degenerate_modulus
  /// so FactorStats still accounts for them.
  std::vector<bn::BigInt> degenerate_moduli;
};

/// Validates every record of `raw`. Total: never throws on any input
/// dataset, and a clean dataset passes through with kept == raw. The one
/// exception is cooperative cancellation: when `cancel` is non-null it is
/// polled once per snapshot and an armed trip throws util::Cancelled.
IngestResult ingest_dataset(const netsim::ScanDataset& raw,
                            const util::CancellationToken* cancel = nullptr);

}  // namespace weakkeys::core

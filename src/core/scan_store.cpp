#include "core/scan_store.hpp"

#include "core/binary_io.hpp"

#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

namespace weakkeys::core {

namespace {

constexpr std::uint32_t kMagic = 0x574b5331;  // "WKS1"

}  // namespace

void save_dataset(const netsim::ScanDataset& dataset, const StoreKey& key,
                  const std::string& path) {
  // Build the certificate table (records share certificate objects).
  std::map<const cert::Certificate*, std::uint32_t> cert_index;
  std::vector<const cert::Certificate*> certs;
  for (const auto& snap : dataset.snapshots) {
    for (const auto& rec : snap.records) {
      const auto* ptr = rec.certificate.get();
      if (cert_index.emplace(ptr, static_cast<std::uint32_t>(certs.size())).second) {
        certs.push_back(ptr);
      }
    }
  }

  BinaryWriter w(path);
  w.u32(kMagic);
  w.u64(key.seed);
  w.u64(key.scale_millionths);
  w.u32(key.mr_rounds);
  w.u32(key.catalog_version);

  w.u32(static_cast<std::uint32_t>(certs.size()));
  for (const auto* c : certs) w.bytes(c->encode());

  w.u32(static_cast<std::uint32_t>(dataset.snapshots.size()));
  for (const auto& snap : dataset.snapshots) {
    w.i64(snap.date.days_since_epoch());
    w.str(snap.source);
    w.u32(static_cast<std::uint32_t>(snap.protocol));
    w.u32(static_cast<std::uint32_t>(snap.records.size()));
    for (const auto& rec : snap.records) {
      w.i64(rec.date.days_since_epoch());
      w.u32(rec.ip.value());
      w.u32(cert_index.at(rec.certificate.get()));
      w.str(rec.banner);
    }
  }
}

std::optional<netsim::ScanDataset> load_dataset(const StoreKey& key,
                                                const std::string& path) {
  BinaryReader r(path);
  if (!r.ok()) return std::nullopt;
  try {
    if (r.u32() != kMagic) return std::nullopt;
    StoreKey found;
    found.seed = r.u64();
    found.scale_millionths = r.u64();
    found.mr_rounds = r.u32();
    found.catalog_version = r.u32();
    if (!(found == key)) return std::nullopt;

    const std::uint32_t cert_count = r.u32();
    std::vector<netsim::CertHandle> certs;
    certs.reserve(cert_count);
    for (std::uint32_t i = 0; i < cert_count; ++i) {
      certs.push_back(std::make_shared<cert::Certificate>(
          cert::Certificate::decode(r.bytes())));
    }

    netsim::ScanDataset dataset;
    const std::uint32_t snap_count = r.u32();
    dataset.snapshots.reserve(snap_count);
    for (std::uint32_t s = 0; s < snap_count; ++s) {
      netsim::ScanSnapshot snap;
      snap.date = util::Date::from_days_since_epoch(r.i64());
      snap.source = r.str();
      snap.protocol = static_cast<netsim::Protocol>(r.u32());
      const std::uint32_t rec_count = r.u32();
      snap.records.reserve(rec_count);
      for (std::uint32_t i = 0; i < rec_count; ++i) {
        netsim::HostRecord rec;
        rec.date = util::Date::from_days_since_epoch(r.i64());
        rec.source = snap.source;
        rec.ip = netsim::Ipv4(r.u32());
        rec.protocol = snap.protocol;
        rec.certificate = certs.at(r.u32());
        rec.banner = r.str();
        snap.records.push_back(std::move(rec));
      }
      dataset.snapshots.push_back(std::move(snap));
    }
    return dataset;
  } catch (const std::exception&) {
    return std::nullopt;  // truncated or corrupt cache: rebuild
  }
}

}  // namespace weakkeys::core

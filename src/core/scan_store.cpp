#include "core/scan_store.hpp"

#include "core/binary_io.hpp"
#include "util/atomic_file.hpp"

#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

namespace weakkeys::core {

namespace {

constexpr std::uint32_t kMagic = 0x574b5331;  // "WKS1"

}  // namespace

const char* to_string(DatasetLoadStatus s) {
  switch (s) {
    case DatasetLoadStatus::kLoaded:
      return "loaded";
    case DatasetLoadStatus::kMissing:
      return "missing";
    case DatasetLoadStatus::kBadChecksum:
      return "checksum mismatch";
    case DatasetLoadStatus::kBadMagic:
      return "bad magic";
    case DatasetLoadStatus::kKeyMismatch:
      return "key mismatch";
    case DatasetLoadStatus::kParseError:
      return "parse error";
  }
  return "unknown";
}

void save_dataset(const netsim::ScanDataset& dataset, const StoreKey& key,
                  const std::string& path) {
  // Build the certificate table (records share certificate objects). Records
  // without a decoded certificate — dirty-corpus raw bytes awaiting
  // quarantine — are not corpus data and are skipped.
  std::map<const cert::Certificate*, std::uint32_t> cert_index;
  std::vector<const cert::Certificate*> certs;
  for (const auto& snap : dataset.snapshots) {
    for (const auto& rec : snap.records) {
      if (!rec.has_cert()) continue;
      const auto* ptr = rec.certificate.get();
      if (cert_index.emplace(ptr, static_cast<std::uint32_t>(certs.size())).second) {
        certs.push_back(ptr);
      }
    }
  }

  // Stream to <path>.tmp and publish with an atomic rename: a crash (or
  // SIGKILL in the resume harness) mid-save must never leave a torn cache
  // at the canonical path.
  const std::string tmp = util::atomic_tmp_path(path);
  {
    BinaryWriter w(tmp);
    w.u32(kMagic);
    w.u64(key.seed);
    w.u64(key.scale_millionths);
    w.u32(key.mr_rounds);
    w.u32(key.catalog_version);

    w.u32(static_cast<std::uint32_t>(certs.size()));
    for (const auto* c : certs) w.bytes(c->encode());

    w.u32(static_cast<std::uint32_t>(dataset.snapshots.size()));
    for (const auto& snap : dataset.snapshots) {
      w.i64(snap.date.days_since_epoch());
      w.str(snap.source);
      w.u32(static_cast<std::uint32_t>(snap.protocol));
      std::uint32_t kept = 0;
      for (const auto& rec : snap.records) kept += rec.has_cert() ? 1 : 0;
      w.u32(kept);
      for (const auto& rec : snap.records) {
        if (!rec.has_cert()) continue;
        w.i64(rec.date.days_since_epoch());
        w.u32(rec.ip.value());
        w.u32(cert_index.at(rec.certificate.get()));
        w.str(rec.banner);
      }
    }
  }
  // Truncation/bit-rot guard; load_dataset refuses files without it.
  append_checksum_footer(tmp);
  util::atomic_publish_file(tmp, path);
}

std::optional<netsim::ScanDataset> load_dataset(const StoreKey& key,
                                                const std::string& path,
                                                DatasetLoadStatus* status) {
  DatasetLoadStatus local = DatasetLoadStatus::kParseError;
  DatasetLoadStatus& out = status ? *status : local;

  BinaryReader r(path);
  if (!r.ok()) {
    out = DatasetLoadStatus::kMissing;
    return std::nullopt;
  }
  if (!verify_checksum_footer(path)) {
    out = DatasetLoadStatus::kBadChecksum;
    return std::nullopt;
  }
  try {
    if (r.u32() != kMagic) {
      out = DatasetLoadStatus::kBadMagic;
      return std::nullopt;
    }
    StoreKey found;
    found.seed = r.u64();
    found.scale_millionths = r.u64();
    found.mr_rounds = r.u32();
    found.catalog_version = r.u32();
    if (!(found == key)) {
      out = DatasetLoadStatus::kKeyMismatch;
      return std::nullopt;
    }

    const std::uint32_t cert_count = r.u32();
    std::vector<netsim::CertHandle> certs;
    certs.reserve(cert_count);
    for (std::uint32_t i = 0; i < cert_count; ++i) {
      certs.push_back(std::make_shared<cert::Certificate>(
          cert::Certificate::decode(r.bytes())));
    }

    netsim::ScanDataset dataset;
    const std::uint32_t snap_count = r.u32();
    dataset.snapshots.reserve(snap_count);
    for (std::uint32_t s = 0; s < snap_count; ++s) {
      netsim::ScanSnapshot snap;
      snap.date = util::Date::from_days_since_epoch(r.i64());
      snap.source = r.str();
      const auto protocol = netsim::protocol_from_index(r.u32());
      if (!protocol) throw std::runtime_error("invalid protocol index");
      snap.protocol = *protocol;
      const std::uint32_t rec_count = r.u32();
      snap.records.reserve(rec_count);
      for (std::uint32_t i = 0; i < rec_count; ++i) {
        netsim::HostRecord rec;
        rec.date = util::Date::from_days_since_epoch(r.i64());
        rec.source = snap.source;
        rec.ip = netsim::Ipv4(r.u32());
        rec.protocol = snap.protocol;
        rec.certificate = certs.at(r.u32());
        rec.banner = r.str();
        snap.records.push_back(std::move(rec));
      }
      dataset.snapshots.push_back(std::move(snap));
    }
    out = DatasetLoadStatus::kLoaded;
    return dataset;
  } catch (const std::exception&) {
    out = DatasetLoadStatus::kParseError;
    return std::nullopt;  // truncated or corrupt cache: rebuild
  }
}

}  // namespace weakkeys::core

#include "core/scan_store.hpp"

#include "core/binary_io.hpp"
#include "util/atomic_file.hpp"

#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

namespace weakkeys::core {

namespace {

constexpr std::uint32_t kMagic = 0x574b5331;       // "WKS1"
constexpr std::uint32_t kShardMagic = 0x574b5332;  // "WKS2"

}  // namespace

const char* to_string(DatasetLoadStatus s) {
  switch (s) {
    case DatasetLoadStatus::kLoaded:
      return "loaded";
    case DatasetLoadStatus::kMissing:
      return "missing";
    case DatasetLoadStatus::kBadChecksum:
      return "checksum mismatch";
    case DatasetLoadStatus::kBadMagic:
      return "bad magic";
    case DatasetLoadStatus::kKeyMismatch:
      return "key mismatch";
    case DatasetLoadStatus::kParseError:
      return "parse error";
  }
  return "unknown";
}

void save_dataset(const netsim::ScanDataset& dataset, const StoreKey& key,
                  const std::string& path) {
  // Build the certificate table (records share certificate objects). Records
  // without a decoded certificate — dirty-corpus raw bytes awaiting
  // quarantine — are not corpus data and are skipped.
  std::map<const cert::Certificate*, std::uint32_t> cert_index;
  std::vector<const cert::Certificate*> certs;
  for (const auto& snap : dataset.snapshots) {
    for (const auto& rec : snap.records) {
      if (!rec.has_cert()) continue;
      const auto* ptr = rec.certificate.get();
      if (cert_index.emplace(ptr, static_cast<std::uint32_t>(certs.size())).second) {
        certs.push_back(ptr);
      }
    }
  }

  // Stream to <path>.tmp and publish with an atomic rename: a crash (or
  // SIGKILL in the resume harness) mid-save must never leave a torn cache
  // at the canonical path.
  const std::string tmp = util::atomic_tmp_path(path);
  {
    BinaryWriter w(tmp);
    w.u32(kMagic);
    w.u64(key.seed);
    w.u64(key.scale_millionths);
    w.u32(key.mr_rounds);
    w.u32(key.catalog_version);

    w.u32(static_cast<std::uint32_t>(certs.size()));
    for (const auto* c : certs) w.bytes(c->encode());

    w.u32(static_cast<std::uint32_t>(dataset.snapshots.size()));
    for (const auto& snap : dataset.snapshots) {
      w.i64(snap.date.days_since_epoch());
      w.str(snap.source);
      w.u32(static_cast<std::uint32_t>(snap.protocol));
      std::uint32_t kept = 0;
      for (const auto& rec : snap.records) kept += rec.has_cert() ? 1 : 0;
      w.u32(kept);
      for (const auto& rec : snap.records) {
        if (!rec.has_cert()) continue;
        w.i64(rec.date.days_since_epoch());
        w.u32(rec.ip.value());
        w.u32(cert_index.at(rec.certificate.get()));
        w.str(rec.banner);
      }
    }
  }
  // Truncation/bit-rot guard; load_dataset refuses files without it.
  append_checksum_footer(tmp);
  util::atomic_publish_file(tmp, path);
}

std::optional<netsim::ScanDataset> load_dataset(const StoreKey& key,
                                                const std::string& path,
                                                DatasetLoadStatus* status) {
  DatasetLoadStatus local = DatasetLoadStatus::kParseError;
  DatasetLoadStatus& out = status ? *status : local;

  BinaryReader r(path);
  if (!r.ok()) {
    out = DatasetLoadStatus::kMissing;
    return std::nullopt;
  }
  if (!verify_checksum_footer(path)) {
    out = DatasetLoadStatus::kBadChecksum;
    return std::nullopt;
  }
  try {
    if (r.u32() != kMagic) {
      out = DatasetLoadStatus::kBadMagic;
      return std::nullopt;
    }
    StoreKey found;
    found.seed = r.u64();
    found.scale_millionths = r.u64();
    found.mr_rounds = r.u32();
    found.catalog_version = r.u32();
    if (!(found == key)) {
      out = DatasetLoadStatus::kKeyMismatch;
      return std::nullopt;
    }

    const std::uint32_t cert_count = r.u32();
    std::vector<netsim::CertHandle> certs;
    certs.reserve(cert_count);
    for (std::uint32_t i = 0; i < cert_count; ++i) {
      certs.push_back(std::make_shared<cert::Certificate>(
          cert::Certificate::decode(r.bytes())));
    }

    netsim::ScanDataset dataset;
    const std::uint32_t snap_count = r.u32();
    dataset.snapshots.reserve(snap_count);
    for (std::uint32_t s = 0; s < snap_count; ++s) {
      netsim::ScanSnapshot snap;
      snap.date = util::Date::from_days_since_epoch(r.i64());
      snap.source = r.str();
      const auto protocol = netsim::protocol_from_index(r.u32());
      if (!protocol) throw std::runtime_error("invalid protocol index");
      snap.protocol = *protocol;
      const std::uint32_t rec_count = r.u32();
      snap.records.reserve(rec_count);
      for (std::uint32_t i = 0; i < rec_count; ++i) {
        netsim::HostRecord rec;
        rec.date = util::Date::from_days_since_epoch(r.i64());
        rec.source = snap.source;
        rec.ip = netsim::Ipv4(r.u32());
        rec.protocol = snap.protocol;
        rec.certificate = certs.at(r.u32());
        rec.banner = r.str();
        snap.records.push_back(std::move(rec));
      }
      dataset.snapshots.push_back(std::move(snap));
    }
    out = DatasetLoadStatus::kLoaded;
    return dataset;
  } catch (const std::exception&) {
    out = DatasetLoadStatus::kParseError;
    return std::nullopt;  // truncated or corrupt cache: rebuild
  }
}

// -- Sharded store ----------------------------------------------------------

std::string shard_path(const std::string& path, std::uint32_t index) {
  return path + ".shard" + std::to_string(index);
}

void save_dataset_sharded(const netsim::ScanDataset& dataset,
                          const StoreKey& key, const std::string& path,
                          std::uint32_t shards) {
  if (shards <= 1) {
    save_dataset(dataset, key, path);
    return;
  }
  for (std::uint32_t s = 0; s < shards; ++s) {
    // Shard s holds record j of every snapshot where j % shards == s
    // (j counts the snapshot's cert-bearing records in emission order).
    // Each shard dedups certificates independently: cross-shard sharing
    // would need a shared table file, i.e. a single point of corruption —
    // the thing sharding exists to avoid.
    std::map<const cert::Certificate*, std::uint32_t> cert_index;
    std::vector<const cert::Certificate*> certs;
    for (const auto& snap : dataset.snapshots) {
      std::uint32_t j = 0;
      for (const auto& rec : snap.records) {
        if (!rec.has_cert()) continue;
        const bool mine = (j++ % shards) == s;
        if (!mine) continue;
        const auto* ptr = rec.certificate.get();
        if (cert_index.emplace(ptr, static_cast<std::uint32_t>(certs.size()))
                .second) {
          certs.push_back(ptr);
        }
      }
    }

    const std::string out = shard_path(path, s);
    const std::string tmp = util::atomic_tmp_path(out);
    {
      BinaryWriter w(tmp);
      w.u32(kShardMagic);
      w.u64(key.seed);
      w.u64(key.scale_millionths);
      w.u32(key.mr_rounds);
      w.u32(key.catalog_version);
      w.u32(s);
      w.u32(shards);

      w.u32(static_cast<std::uint32_t>(certs.size()));
      for (const auto* c : certs) w.bytes(c->encode());

      w.u32(static_cast<std::uint32_t>(dataset.snapshots.size()));
      for (const auto& snap : dataset.snapshots) {
        w.i64(snap.date.days_since_epoch());
        w.str(snap.source);
        w.u32(static_cast<std::uint32_t>(snap.protocol));
        std::uint32_t mine = 0;
        std::uint32_t j = 0;
        for (const auto& rec : snap.records) {
          if (rec.has_cert() && (j++ % shards) == s) ++mine;
        }
        w.u32(mine);
        j = 0;
        for (const auto& rec : snap.records) {
          if (!rec.has_cert()) continue;
          if ((j++ % shards) != s) continue;
          w.i64(rec.date.days_since_epoch());
          w.u32(rec.ip.value());
          w.u32(cert_index.at(rec.certificate.get()));
          w.str(rec.banner);
        }
      }
    }
    append_checksum_footer(tmp);
    util::atomic_publish_file(tmp, out);
  }
}

struct ShardedDatasetWriter::Shard {
  std::string records_tmp;            ///< temp record-stream file
  std::unique_ptr<BinaryWriter> w;    ///< open on records_tmp until finish()
  std::map<const cert::Certificate*, std::uint32_t> cert_index;
  std::vector<netsim::CertHandle> certs;  ///< keeps dedup pointers alive
};

ShardedDatasetWriter::ShardedDatasetWriter(const StoreKey& key,
                                           const std::string& path,
                                           std::uint32_t shards)
    : key_(key), path_(path) {
  if (shards < 1) shards = 1;
  shards_.resize(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    shards_[s].records_tmp = shard_path(path, s) + ".records.tmp";
    shards_[s].w = std::make_unique<BinaryWriter>(shards_[s].records_tmp);
  }
}

ShardedDatasetWriter::~ShardedDatasetWriter() {
  if (finished_) return;
  for (auto& shard : shards_) {
    shard.w.reset();
    std::remove(shard.records_tmp.c_str());
  }
}

void ShardedDatasetWriter::add_snapshot(const netsim::ScanSnapshot& snap) {
  const std::uint32_t n = static_cast<std::uint32_t>(shards_.size());
  for (std::uint32_t s = 0; s < n; ++s) {
    Shard& shard = shards_[s];
    shard.w->i64(snap.date.days_since_epoch());
    shard.w->str(snap.source);
    shard.w->u32(static_cast<std::uint32_t>(snap.protocol));
    std::uint32_t mine = 0;
    std::uint32_t j = 0;
    for (const auto& rec : snap.records) {
      if (rec.has_cert() && (j++ % n) == s) ++mine;
    }
    shard.w->u32(mine);
    j = 0;
    for (const auto& rec : snap.records) {
      if (!rec.has_cert()) continue;
      if ((j++ % n) != s) continue;
      const auto* ptr = rec.certificate.get();
      const auto [it, fresh] = shard.cert_index.emplace(
          ptr, static_cast<std::uint32_t>(shard.certs.size()));
      if (fresh) shard.certs.push_back(rec.certificate);
      shard.w->i64(rec.date.days_since_epoch());
      shard.w->u32(rec.ip.value());
      shard.w->u32(it->second);
      shard.w->str(rec.banner);
    }
  }
  ++snap_count_;
}

void ShardedDatasetWriter::finish() {
  const std::uint32_t n = static_cast<std::uint32_t>(shards_.size());
  for (std::uint32_t s = 0; s < n; ++s) {
    Shard& shard = shards_[s];
    shard.w->flush();
    shard.w.reset();  // close the record stream

    const std::string out = shard_path(path_, s);
    const std::string tmp = util::atomic_tmp_path(out);
    {
      BinaryWriter w(tmp);
      w.u32(kShardMagic);
      w.u64(key_.seed);
      w.u64(key_.scale_millionths);
      w.u32(key_.mr_rounds);
      w.u32(key_.catalog_version);
      w.u32(s);
      w.u32(n);
      w.u32(static_cast<std::uint32_t>(shard.certs.size()));
      for (const auto& c : shard.certs) w.bytes(c->encode());
      w.u32(snap_count_);
    }
    // Splice the streamed record bytes after the header. Plain stdio: the
    // bytes are already framed, they just need to move.
    {
      std::FILE* src = std::fopen(shard.records_tmp.c_str(), "rb");
      std::FILE* dst = std::fopen(tmp.c_str(), "ab");
      if (!src || !dst) {
        if (src) std::fclose(src);
        if (dst) std::fclose(dst);
        throw std::runtime_error("sharded writer: cannot splice " +
                                 shard.records_tmp);
      }
      char buf[1 << 16];
      std::size_t got = 0;
      bool ok = true;
      while ((got = std::fread(buf, 1, sizeof buf, src)) > 0) {
        if (std::fwrite(buf, 1, got, dst) != got) {
          ok = false;
          break;
        }
      }
      ok = ok && std::ferror(src) == 0;
      std::fclose(src);
      if (std::fclose(dst) != 0) ok = false;
      if (!ok) {
        throw std::runtime_error("sharded writer: splice failed for " + out);
      }
    }
    std::remove(shard.records_tmp.c_str());
    append_checksum_footer(tmp);
    util::atomic_publish_file(tmp, out);
  }
  finished_ = true;
}

DatasetLoadStatus ingest_dataset_sharded(
    const StoreKey& key, const std::string& path,
    const std::function<void(const netsim::ScanSnapshot&)>& snapshot_cb,
    const std::function<void(netsim::HostRecord&&)>& record_cb) {
  struct Shard {
    std::unique_ptr<BinaryReader> r;
    std::vector<netsim::CertHandle> certs;
    std::uint32_t snap_count = 0;
  };

  // Shard 0 is the pilot: its header decides the shard count (and any
  // key mismatch) before the other readers open.
  std::uint32_t shard_count = 0;
  std::vector<Shard> shard_readers;
  try {
    for (std::uint32_t s = 0; shard_count == 0 || s < shard_count; ++s) {
      const std::string sp = shard_path(path, s);
      Shard shard;
      shard.r = std::make_unique<BinaryReader>(sp);
      if (!shard.r->ok()) return DatasetLoadStatus::kMissing;
      if (!verify_checksum_footer(sp)) return DatasetLoadStatus::kBadChecksum;
      if (shard.r->u32() != kShardMagic) return DatasetLoadStatus::kBadMagic;
      StoreKey found;
      found.seed = shard.r->u64();
      found.scale_millionths = shard.r->u64();
      found.mr_rounds = shard.r->u32();
      found.catalog_version = shard.r->u32();
      if (!(found == key)) return DatasetLoadStatus::kKeyMismatch;
      const std::uint32_t index = shard.r->u32();
      const std::uint32_t count = shard.r->u32();
      if (index != s || count == 0) return DatasetLoadStatus::kParseError;
      if (shard_count == 0) {
        shard_count = count;
      } else if (count != shard_count) {
        return DatasetLoadStatus::kParseError;  // mixed-generation shards
      }

      const std::uint32_t cert_count = shard.r->u32();
      shard.certs.reserve(cert_count);
      for (std::uint32_t i = 0; i < cert_count; ++i) {
        shard.certs.push_back(std::make_shared<cert::Certificate>(
            cert::Certificate::decode(shard.r->bytes())));
      }
      shard.snap_count = shard.r->u32();
      shard_readers.push_back(std::move(shard));
    }

    const std::uint32_t snap_count = shard_readers[0].snap_count;
    for (const auto& shard : shard_readers) {
      if (shard.snap_count != snap_count) {
        return DatasetLoadStatus::kParseError;
      }
    }

    for (std::uint32_t sn = 0; sn < snap_count; ++sn) {
      // Every shard repeats the snapshot header; they must agree.
      netsim::ScanSnapshot header;
      std::vector<std::uint64_t> remaining(shard_count, 0);
      std::uint64_t total = 0;
      for (std::uint32_t s = 0; s < shard_count; ++s) {
        auto& r = *shard_readers[s].r;
        const util::Date date = util::Date::from_days_since_epoch(r.i64());
        const std::string source = r.str();
        const auto protocol = netsim::protocol_from_index(r.u32());
        if (!protocol) return DatasetLoadStatus::kParseError;
        if (s == 0) {
          header.date = date;
          header.source = source;
          header.protocol = *protocol;
        } else if (date != header.date || source != header.source ||
                   *protocol != header.protocol) {
          return DatasetLoadStatus::kParseError;
        }
        remaining[s] = r.u32();
        total += remaining[s];
      }
      snapshot_cb(header);

      // Interleave the shards back: record j came from shard j % N, so a
      // round-robin pull reproduces the single-file record order exactly.
      for (std::uint64_t j = 0; j < total; ++j) {
        const std::uint32_t s = static_cast<std::uint32_t>(j % shard_count);
        if (remaining[s] == 0) return DatasetLoadStatus::kParseError;
        --remaining[s];
        auto& shard = shard_readers[s];
        netsim::HostRecord rec;
        rec.date = util::Date::from_days_since_epoch(shard.r->i64());
        rec.source = header.source;
        rec.ip = netsim::Ipv4(shard.r->u32());
        rec.protocol = header.protocol;
        rec.certificate = shard.certs.at(shard.r->u32());
        rec.banner = shard.r->str();
        record_cb(std::move(rec));
      }
      for (const std::uint64_t left : remaining) {
        if (left != 0) return DatasetLoadStatus::kParseError;
      }
    }
  } catch (const std::exception&) {
    return DatasetLoadStatus::kParseError;
  }
  return DatasetLoadStatus::kLoaded;
}

std::optional<netsim::ScanDataset> load_dataset_sharded(
    const StoreKey& key, const std::string& path, DatasetLoadStatus* status) {
  netsim::ScanDataset dataset;
  const DatasetLoadStatus out = ingest_dataset_sharded(
      key, path,
      [&dataset](const netsim::ScanSnapshot& header) {
        netsim::ScanSnapshot snap;
        snap.date = header.date;
        snap.source = header.source;
        snap.protocol = header.protocol;
        dataset.snapshots.push_back(std::move(snap));
      },
      [&dataset](netsim::HostRecord&& rec) {
        dataset.snapshots.back().records.push_back(std::move(rec));
      });
  if (status) *status = out;
  if (out != DatasetLoadStatus::kLoaded) return std::nullopt;
  return dataset;
}

}  // namespace weakkeys::core

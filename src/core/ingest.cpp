#include "core/ingest.hpp"

#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "cert/certificate.hpp"
#include "obs/mem.hpp"

namespace weakkeys::core {

namespace {

/// Any real device key is >= 256 bits even in this scaled-down simulation;
/// half that is a safe floor below which a modulus is scan garbage.
constexpr std::size_t kMinModulusBits = 128;

QuarantineReason reason_for(cert::ParseError e) {
  switch (e) {
    case cert::ParseError::kTruncatedHeader:
      return QuarantineReason::kParseTruncatedHeader;
    case cert::ParseError::kLengthOverrun:
      return QuarantineReason::kParseLengthOverrun;
    case cert::ParseError::kUnexpectedTag:
      return QuarantineReason::kParseBadTag;
    case cert::ParseError::kBadFieldWidth:
      return QuarantineReason::kParseBadFieldWidth;
    case cert::ParseError::kBadDn:
      return QuarantineReason::kParseBadDn;
    case cert::ParseError::kBadDate:
      return QuarantineReason::kParseBadDate;
    case cert::ParseError::kNone:
    case cert::ParseError::kEndOfInput:
    case cert::ParseError::kTrailingGarbage:
      break;
  }
  return QuarantineReason::kParseOther;
}

/// True for the reasons whose modulus goes to the divisor-class triage.
bool is_degenerate_modulus(QuarantineReason r) {
  return r == QuarantineReason::kZeroModulus ||
         r == QuarantineReason::kTinyModulus ||
         r == QuarantineReason::kEvenModulus;
}

class Validator {
 public:
  /// Semantic validation of a decoded certificate; nullopt means keep.
  /// `register_serial` controls whether a passing certificate claims its
  /// serial in the duplicate map — recovered wire damage must not (a
  /// bit-flipped serial could otherwise poison the map and quarantine a
  /// later legitimate certificate).
  std::optional<QuarantineReason> check(const cert::Certificate& c,
                                        bool register_serial = true) {
    const bn::BigInt& n = c.key.n;
    if (n <= bn::BigInt(1)) return QuarantineReason::kZeroModulus;
    if (n.bit_length() < kMinModulusBits) return QuarantineReason::kTinyModulus;
    if (n.is_even()) return QuarantineReason::kEvenModulus;
    if (c.key.e <= bn::BigInt(1)) return QuarantineReason::kBadExponent;
    if (c.validity.not_after < c.validity.not_before)
      return QuarantineReason::kInvertedValidity;
    // Serial reuse under a different subject marks junk echoing a real
    // certificate. Legitimate same-serial variants (per-observation bit
    // flips, MITM key substitution) keep the victim's subject and pass.
    const std::string subject = c.subject.to_string();
    const auto it = serial_subjects_.find(c.serial);
    if (it != serial_subjects_.end()) {
      if (it->second != subject) return QuarantineReason::kDuplicateSerial;
    } else if (register_serial) {
      serial_subjects_.emplace(c.serial, subject);
    }
    return std::nullopt;
  }

  /// check() memoized per certificate object — records overwhelmingly share
  /// certificate handles, and the verdict is a property of the object.
  std::optional<QuarantineReason> check_shared(const cert::Certificate* c) {
    const auto cached = verdicts_.find(c);
    if (cached != verdicts_.end()) return cached->second;
    const auto verdict = check(*c);
    verdicts_.emplace(c, verdict);
    return verdict;
  }

 private:
  std::unordered_map<std::uint64_t, std::string> serial_subjects_;
  std::unordered_map<const cert::Certificate*,
                     std::optional<QuarantineReason>>
      verdicts_;
};

}  // namespace

const char* to_string(QuarantineReason r) {
  switch (r) {
    case QuarantineReason::kParseTruncatedHeader:
      return "parse:truncated-header";
    case QuarantineReason::kParseLengthOverrun:
      return "parse:length-overrun";
    case QuarantineReason::kParseBadTag:
      return "parse:bad-tag";
    case QuarantineReason::kParseBadFieldWidth:
      return "parse:bad-field-width";
    case QuarantineReason::kParseBadDn:
      return "parse:bad-dn";
    case QuarantineReason::kParseBadDate:
      return "parse:bad-date";
    case QuarantineReason::kParseOther:
      return "parse:other";
    case QuarantineReason::kMissingCertificate:
      return "missing-certificate";
    case QuarantineReason::kZeroModulus:
      return "zero-modulus";
    case QuarantineReason::kTinyModulus:
      return "tiny-modulus";
    case QuarantineReason::kEvenModulus:
      return "even-modulus";
    case QuarantineReason::kBadExponent:
      return "bad-exponent";
    case QuarantineReason::kInvertedValidity:
      return "inverted-validity";
    case QuarantineReason::kDuplicateSerial:
      return "duplicate-serial";
  }
  return "unknown";
}

std::size_t IngestStats::parse_failures() const {
  std::size_t total = 0;
  for (std::size_t i = 0;
       i <= static_cast<std::size_t>(QuarantineReason::kParseOther); ++i) {
    total += by_reason[i];
  }
  return total;
}

std::string IngestStats::summary() const {
  std::string out = "kept " + std::to_string(records_kept) + "/" +
                    std::to_string(records_seen) + " records";
  if (raw_records > 0) {
    out += ", " + std::to_string(raw_recovered) + "/" +
           std::to_string(raw_records) + " raw recovered";
  }
  if (records_quarantined == 0) return out;
  out += ", quarantined " + std::to_string(records_quarantined) + " (";
  bool first = true;
  for (std::size_t i = 0; i < kQuarantineReasonCount; ++i) {
    if (by_reason[i] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += std::string(to_string(static_cast<QuarantineReason>(i))) + "=" +
           std::to_string(by_reason[i]);
  }
  return out + ")";
}

IngestResult ingest_dataset(const netsim::ScanDataset& raw,
                            const util::CancellationToken* cancel) {
  IngestResult result;
  Validator validator;
  std::unordered_set<std::string> degenerate_seen;

  result.kept.snapshots.reserve(raw.snapshots.size());
  for (const auto& snap : raw.snapshots) {
    if (cancel) cancel->throw_if_cancelled();
    netsim::ScanSnapshot kept;
    kept.date = snap.date;
    kept.source = snap.source;
    kept.protocol = snap.protocol;
    kept.records.reserve(snap.records.size());

    for (const auto& rec : snap.records) {
      ++result.stats.records_seen;

      const auto quarantine = [&](QuarantineReason reason,
                                  const cert::Certificate* c) {
        ++result.stats.records_quarantined;
        ++result.stats.by_reason[static_cast<std::size_t>(reason)];
        if (c && is_degenerate_modulus(reason) &&
            degenerate_seen.insert(c->key.n.to_hex()).second) {
          result.degenerate_moduli.push_back(c->key.n);
          ++result.stats.degenerate_moduli;
        }
      };

      if (rec.has_cert()) {
        if (const auto verdict = validator.check_shared(rec.certificate.get())) {
          quarantine(*verdict, rec.certificate.get());
          continue;
        }
        kept.records.push_back(rec);
        ++result.stats.records_kept;
        continue;
      }

      if (rec.raw_der.empty()) {
        quarantine(QuarantineReason::kMissingCertificate, nullptr);
        continue;
      }

      // Undecoded wire bytes: attempt a total decode, then the same
      // semantic validation as everything else. Decode allocations are
      // attributed to cert.parse for the memory census.
      ++result.stats.raw_records;
      static const int parse_label = obs::mem::register_label("cert.parse");
      obs::MemScope parse_scope(parse_label);
      auto decoded = cert::Certificate::try_decode(rec.raw_der);
      if (!decoded.ok()) {
        quarantine(reason_for(decoded.error), nullptr);
        continue;
      }
      auto handle =
          std::make_shared<const cert::Certificate>(*std::move(decoded.cert));
      // check(), not check_shared(): freshly decoded objects are unique, and
      // memoizing a short-lived pointer could alias a later allocation.
      if (const auto verdict =
              validator.check(*handle, /*register_serial=*/false)) {
        quarantine(*verdict, handle.get());
        continue;
      }
      netsim::HostRecord recovered = rec;
      recovered.certificate = std::move(handle);
      recovered.raw_der.clear();
      kept.records.push_back(std::move(recovered));
      ++result.stats.records_kept;
      ++result.stats.raw_recovered;
    }
    result.kept.snapshots.push_back(std::move(kept));
  }
  return result;
}

}  // namespace weakkeys::core

#include "core/study.hpp"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <thread>
#include <unordered_map>

#if !defined(_WIN32)
#include <csignal>
#include <unistd.h>
#define WEAKKEYS_HAVE_SIGNALS 1
#endif

#include "analysis/chains.hpp"
#include "batchgcd/coordinator.hpp"
#include "batchgcd/distributed.hpp"
#include "core/binary_io.hpp"
#include "core/ingest.hpp"
#include "core/scan_store.hpp"
#include "netsim/catalog.hpp"
#include "netsim/noise.hpp"
#include "obs/mem.hpp"
#include "util/atomic_file.hpp"
#include "util/thread_pool.hpp"

namespace weakkeys::core {

namespace {
/// Bump when the catalog or simulation semantics change, so stale corpus
/// caches are rebuilt.
constexpr std::uint32_t kCatalogVersion = 4;
constexpr std::uint32_t kFactorMagic = 0x574b4633;  // "WKF3" (adds noise key)

/// DatasetLoadStatus text as a metric-name segment (lowercase, dashes).
std::string metric_segment(std::string s) {
  for (char& c : s) {
    if (c == ' ') c = '-';
  }
  return s;
}

#if defined(WEAKKEYS_HAVE_SIGNALS)
// Signal-handler state. One watcher owns these at a time (handlers are
// process-global anyway); the handler itself is async-signal-safe — two
// atomic loads, two atomic stores inside request_async, one write(2).
std::atomic<util::CancellationToken*> g_signal_token{nullptr};
std::atomic<int> g_signal_pipe_wr{-1};

void lifecycle_signal_handler(int signum) {
  if (auto* token = g_signal_token.load(std::memory_order_acquire)) {
    token->request_async(signum);
  }
  const int fd = g_signal_pipe_wr.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const auto n = ::write(fd, &byte, 1);
  }
}
#endif  // WEAKKEYS_HAVE_SIGNALS
}  // namespace

const char* to_string(RunState s) {
  switch (s) {
    case RunState::kIdle:
      return "idle";
    case RunState::kRunning:
      return "running";
    case RunState::kCancelled:
      return "cancelled";
    case RunState::kFailed:
      return "failed";
    case RunState::kDone:
      return "done";
  }
  return "unknown";
}

/// Installs SIGINT/SIGTERM handlers that trip the run's token, plus a
/// self-pipe watcher thread that promote()s the async trip (running the
/// token's callbacks from a normal context) as soon as the signal lands —
/// without it, callbacks would wait for the next poll/monitor tick. The
/// destructor restores the previous handlers, so the Study's own teardown
/// (dtor flush) still runs under graceful-shutdown semantics.
class LifecycleSignalWatcher {
#if defined(WEAKKEYS_HAVE_SIGNALS)
 public:
  explicit LifecycleSignalWatcher(util::CancellationToken* token) {
    if (::pipe(fds_) != 0) {
      fds_[0] = fds_[1] = -1;
      return;
    }
    g_signal_token.store(token, std::memory_order_release);
    g_signal_pipe_wr.store(fds_[1], std::memory_order_release);
    struct sigaction sa{};
    sa.sa_handler = lifecycle_signal_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGINT, &sa, &old_int_);
    ::sigaction(SIGTERM, &sa, &old_term_);
    installed_ = true;
    watcher_ = std::thread([this, token] {
      char byte;
      while (::read(fds_[0], &byte, 1) > 0) token->promote();
    });
  }

  ~LifecycleSignalWatcher() {
    if (installed_) {
      ::sigaction(SIGINT, &old_int_, nullptr);
      ::sigaction(SIGTERM, &old_term_, nullptr);
    }
    g_signal_token.store(nullptr, std::memory_order_release);
    g_signal_pipe_wr.store(-1, std::memory_order_release);
    if (fds_[1] >= 0) ::close(fds_[1]);  // EOF stops the watcher thread
    if (watcher_.joinable()) watcher_.join();
    if (fds_[0] >= 0) ::close(fds_[0]);
  }

  LifecycleSignalWatcher(const LifecycleSignalWatcher&) = delete;
  LifecycleSignalWatcher& operator=(const LifecycleSignalWatcher&) = delete;

 private:
  int fds_[2] = {-1, -1};
  bool installed_ = false;
  struct sigaction old_int_ {};
  struct sigaction old_term_ {};
  std::thread watcher_;
#else
 public:
  explicit LifecycleSignalWatcher(util::CancellationToken*) {}
#endif  // WEAKKEYS_HAVE_SIGNALS
};

Study::Study(StudyConfig config)
    : config_(std::move(config)),
      subject_rules_(fingerprint::SubjectRules::standard()) {
  // The telemetry sink is the primary log: events are always counted and
  // ring-buffered, and the configured string log (if any) is just a text
  // mirror. A null config_.log no longer silently discards progress.
  if (config_.log) telemetry_.sink().set_text_sink(config_.log);
}

Study::~Study() {
  if (exit_flush_token_ != 0) obs::unregister_exit_flush(exit_flush_token_);
  // A run that never reached its normal end (exception, early teardown)
  // still closes the monitor time series and writes the trace artifacts.
  flush_telemetry();
}

void Study::log(const std::string& message) {
  telemetry_.sink().info(message);
}

util::CancellationToken* Study::resolve_token() {
  return config_.cancel ? config_.cancel : &own_token_;
}

void Study::cancel(const std::string& reason) {
  resolve_token()->cancel(reason);
}

obs::LifecycleStatus Study::lifecycle() const {
  obs::LifecycleStatus ls;
  auto* self = const_cast<Study*>(this);
  util::CancellationToken* token = self->resolve_token();
  const RunState st = state_.load();
  const bool tripped = token->cancelled();
  ls.phase = to_string(st);
  if (stalled_.load()) {
    ls.phase = "stalled";
  } else if (st == RunState::kRunning && tripped) {
    ls.phase = "cancelling";
  }
  ls.healthy = !stalled_.load() && !tripped && st != RunState::kCancelled &&
               st != RunState::kFailed;
  ls.cancel_reason = tripped ? token->reason() : "";
  ls.deadline_remaining_s = token->deadline_remaining_s();
  {
    std::lock_guard lock(lifecycle_mu_);
    ls.stage = stage_name_;
  }
  return ls;
}

void Study::begin_stage(const std::string& name,
                        std::chrono::milliseconds stage_deadline) {
  poll_mem_budget();
  {
    std::lock_guard lock(lifecycle_mu_);
    stage_name_ = name;
  }
  util::CancellationToken* token = resolve_token();
  if (stage_deadline.count() > 0) {
    auto at = std::chrono::steady_clock::now() + stage_deadline;
    if (run_deadline_at_ && *run_deadline_at_ < at) at = *run_deadline_at_;
    token->set_deadline(at, name);
  } else if (run_deadline_at_) {
    token->set_deadline(*run_deadline_at_, "run");
  }
  token->throw_if_cancelled();
}

std::string Study::checkpoint_path() const {
  return config_.cache_path.empty() ? "" : config_.cache_path + ".study";
}

StudyCheckpointKey Study::checkpoint_key() const {
  return StudyCheckpointKey{
      config_.sim.seed,
      static_cast<std::uint64_t>(config_.sim.scale * 1e6),
      static_cast<std::uint32_t>(config_.sim.miller_rabin_rounds),
      kCatalogVersion,
      config_.noise.fingerprint(),
      static_cast<std::uint32_t>(config_.batch_gcd_subsets),
      config_.fault_tolerant ? 1u : 0u,
  };
}

void Study::load_checkpoint_if_resuming() {
  bool resume = config_.resume;
  if (const char* env = std::getenv("WEAKKEYS_RESUME")) {
    resume = std::atoi(env) != 0;
  }
  const std::string path = checkpoint_path();
  if (!resume || path.empty()) return;
  if (auto cp = load_study_checkpoint(checkpoint_key(), path)) {
    checkpoint_generation_ = cp->generation;
    resumed_stage_ = cp->stage;
    auto& metrics = telemetry_.metrics();
    metrics.counter("checkpoint.resume.stage")
        .set(static_cast<std::uint64_t>(cp->stage));
    metrics.counter("checkpoint.generation").set(cp->generation);
    log("resuming from study checkpoint (generation " +
        std::to_string(cp->generation) + ", last completed stage: " +
        to_string(cp->stage) + ")");
  }
}

void Study::save_stage_checkpoint(StudyStage stage) {
  const std::string path = checkpoint_path();
  if (path.empty()) return;
  if (stage > resumed_stage_) resumed_stage_ = stage;  // highest completed
  StudyCheckpoint cp;
  cp.key = checkpoint_key();
  cp.generation = ++checkpoint_generation_;
  cp.stage = stage;
  try {
    save_study_checkpoint(cp, path);
  } catch (const std::exception& e) {
    telemetry_.sink().warn(std::string("study checkpoint write failed: ") +
                           e.what());
    return;
  }
  auto& metrics = telemetry_.metrics();
  metrics.counter("checkpoint.writes").inc();
  metrics.counter("checkpoint.generation").set(cp.generation);
}

void Study::run() {
  if (ran_) return;
  run_started_.store(true);
  flushed_.store(false);
  state_.store(RunState::kRunning);
  util::CancellationToken* token = resolve_token();

  std::chrono::milliseconds run_deadline = config_.run_deadline;
  if (run_deadline.count() == 0) {
    if (const char* env = std::getenv("WEAKKEYS_DEADLINE")) {
      const double seconds = std::atof(env);
      if (seconds > 0) {
        run_deadline = std::chrono::milliseconds(
            static_cast<std::int64_t>(seconds * 1000.0));
      }
    }
  }
  if (run_deadline.count() > 0) {
    run_deadline_at_ = std::chrono::steady_clock::now() + run_deadline;
    token->set_deadline(*run_deadline_at_, "run");
  }
  if (config_.handle_signals && !signal_watcher_) {
    signal_watcher_ = std::make_unique<LifecycleSignalWatcher>(token);
  }

  start_observability();
  load_checkpoint_if_resuming();

  try {
    obs::Span run_span = telemetry_.tracer().span("study.run");
    begin_stage("build_dataset", config_.stage_deadlines.build_dataset);
    build_dataset();
    save_stage_checkpoint(StudyStage::kIngested);
    begin_stage("factor", config_.stage_deadlines.factor);
    factor_moduli();
    save_stage_checkpoint(StudyStage::kFactored);
    begin_stage("fingerprint", config_.stage_deadlines.fingerprint);
    fingerprint_corpus();
  } catch (const util::Cancelled&) {
    state_.store(RunState::kCancelled);
    log("run cancelled: " + token->reason());
    // The per-stage caches already hold everything completed; bump the
    // generation so a resume is attributable to this interruption.
    save_stage_checkpoint(resumed_stage_);
    flush_telemetry();
    throw;
  } catch (...) {
    state_.store(RunState::kFailed);
    flush_telemetry();
    throw;
  }
  token->clear_deadline();
  {
    std::lock_guard lock(lifecycle_mu_);
    stage_name_.clear();
  }
  save_stage_checkpoint(StudyStage::kDone);
  state_.store(RunState::kDone);
  ran_ = true;
  flush_telemetry();
}

void Study::start_observability() {
  std::string monitor_path = config_.monitor_path;
  if (monitor_path.empty()) {
    if (const char* env = std::getenv("WEAKKEYS_MONITOR")) monitor_path = env;
  }
  if (!monitor_path.empty() && !monitor_) {
    obs::MonitorConfig mc;
    mc.jsonl_path = monitor_path;
    mc.interval = config_.monitor_interval;
    if (config_.watchdog_stall_ticks > 0 && !watchdog_) {
      obs::WatchdogConfig wc;
      wc.stall_ticks = config_.watchdog_stall_ticks;
      wc.on_stall = [this](const std::string& diagnostic) {
        stalled_.store(true);
        resolve_token()->cancel("watchdog stall: " + diagnostic);
      };
      watchdog_ = std::make_unique<obs::Watchdog>(telemetry_, wc);
    }
    // The monitor tick doubles as the lifecycle heartbeat: it promotes
    // signal/deadline trips (running the token's callbacks promptly even
    // when no poll site is being hit) and feeds the stall watchdog.
    mc.on_tick = [this](const obs::MetricsSnapshot& snapshot) {
      resolve_token()->promote();
      if (watchdog_) watchdog_->observe(snapshot);
    };
    monitor_ = std::make_unique<obs::Monitor>(telemetry_, mc);
    monitor_->start();
  }

  int port = config_.status_port;
  if (port < 0) {
    if (const char* env = std::getenv("WEAKKEYS_STATUS_PORT")) {
      port = std::atoi(env);
    }
  }
  if (port >= 0 && port <= 65535 && !status_server_) {
    obs::StatusServerConfig sc;
    sc.port = static_cast<std::uint16_t>(port);
    sc.lifecycle = [this] { return lifecycle(); };
    status_server_ = std::make_unique<obs::StatusServer>(telemetry_, sc);
    if (status_server_->start()) {
      log("status server listening on http://127.0.0.1:" +
          std::to_string(status_server_->port()) +
          " (/metrics, /status, /healthz)");
    }
  }

  // Resource-attribution plane (DESIGN.md §5k). Both knobs resolve through
  // the usual env fallbacks; enabling either turns on memory accounting so
  // mem.* gauges flow into the monitor/status exports.
  double profile_hz = config_.profile_hz;
  if (profile_hz < 0) profile_hz = obs::profile_hz_from_env();
  long long budget_mb = config_.mem_budget_mb;
  if (budget_mb < 0) {
    budget_mb = 0;
    if (const char* env = std::getenv("WEAKKEYS_MEM_BUDGET_MB")) {
      budget_mb = std::atoll(env);
    }
  }
  if ((profile_hz > 0 || budget_mb > 0) && obs::mem::supported()) {
    obs::mem::enable(&telemetry_.metrics());
    if (budget_mb > 0) {
      obs::mem::set_budget_bytes(static_cast<std::uint64_t>(budget_mb) *
                                 1024 * 1024);
      log("memory accounting on (soft budget " + std::to_string(budget_mb) +
          " MiB; alarm only, never aborts)");
    }
  }
  if (profile_hz > 0 && !profiler_) {
    std::string profile_out = config_.profile_out;
    if (profile_out.empty()) profile_out = obs::profile_out_from_env();
    obs::ProfilerConfig pc;
    pc.hz = profile_hz;
    pc.out_path = profile_out;
    pc.registry = &telemetry_.metrics();
    pc.writer = [](const std::string& path, const std::string& content) {
      try {
        util::atomic_write_file(path, content);
        return true;
      } catch (const std::exception&) {
        return false;
      }
    };
    profiler_ = std::make_unique<obs::Profiler>(std::move(pc));
    profiler_->start();
    log("profiler sampling at " + std::to_string(profile_hz) + " Hz" +
        (profile_out.empty() ? std::string(" (metrics only)")
                             : " -> " + profile_out));
  }

  // An abnormal process exit (std::exit, uncaught exception unwinding to
  // main) must not lose the run's telemetry. Destructor unregisters.
  if (exit_flush_token_ == 0) {
    exit_flush_token_ =
        obs::register_exit_flush([this] { flush_telemetry(); });
  }
}

void Study::poll_mem_budget() {
  if (!obs::mem::enabled()) return;
  if (obs::mem::consume_budget_alarm()) {
    telemetry_.metrics().counter("mem.budget.alarms").inc();
    telemetry_.sink().warn(
        "memory budget exceeded: live heap bytes crossed " +
        std::to_string(obs::mem::budget_bytes()) +
        " (soft alarm; the run continues)");
  }
}

void Study::flush_telemetry() {
  if (!run_started_.load()) return;  // nothing collected yet
  if (flushed_.exchange(true)) return;
  // Profiler first: its final rollups and the mem census must be in the
  // registry before the monitor writes the `"final":true` snapshot.
  if (profiler_) profiler_->stop();  // also writes the collapsed-stack file
  if (obs::mem::enabled()) obs::mem::publish(telemetry_.metrics());
  poll_mem_budget();
  if (monitor_) monitor_->stop();  // writes the `"final":true` snapshot
  write_trace_if_configured();
}

void Study::write_trace_if_configured() {
  std::string path = config_.trace_path;
  if (path.empty()) {
    if (const char* env = std::getenv("WEAKKEYS_TRACE")) path = env;
  }
  if (path.empty()) return;
  if (telemetry_.write_trace_files(path)) {
    log("telemetry: trace written to " + path + " (metrics snapshot at " +
        path + ".metrics.json)");
  }
}

void Study::build_dataset() {
  obs::Span stage = telemetry_.tracer().span("study.build_dataset");
  auto& metrics = telemetry_.metrics();
  const StoreKey key{
      config_.sim.seed,
      static_cast<std::uint64_t>(config_.sim.scale * 1e6),
      static_cast<std::uint32_t>(config_.sim.miller_rabin_rounds),
      kCatalogVersion,
  };
  std::uint32_t cache_shards = config_.cache_shards;
  if (cache_shards == 0) {
    if (const char* env = std::getenv("WEAKKEYS_CACHE_SHARDS"))
      cache_shards = static_cast<std::uint32_t>(std::strtoul(env, nullptr, 10));
  }
  bool have_corpus = false;
  if (!config_.cache_path.empty()) {
    obs::Span probe = telemetry_.tracer().span("study.load_corpus");
    if (auto cached =
            cache_shards > 1
                ? load_dataset_sharded(key, config_.cache_path,
                                       &dataset_cache_status_)
                : load_dataset(key, config_.cache_path,
                               &dataset_cache_status_)) {
      log("loaded corpus from " + config_.cache_path);
      metrics.counter("cache.corpus.hit").inc();
      raw_dataset_ = std::move(*cached);
      have_corpus = true;
    } else {
      metrics.counter("cache.corpus.miss").inc();
      // Attribute the rebuild reason as its own counter family: silent
      // rebuilds hide both corruption and stale-key bugs.
      metrics
          .counter("cache.corpus.rebuild." +
                   metric_segment(to_string(dataset_cache_status_)))
          .inc();
      if (dataset_cache_status_ != DatasetLoadStatus::kMissing) {
        log("corpus cache unusable (" +
            std::string(to_string(dataset_cache_status_)) + "), rebuilding " +
            config_.cache_path);
      }
    }
  }

  if (!have_corpus) {
    obs::Span simulate = telemetry_.tracer().span("study.simulate");
    log("simulating six years of scans (first run builds the corpus cache)...");
    netsim::SimConfig sim = config_.sim;
    sim.telemetry = &telemetry_;
    sim.cancel = resolve_token();
    sim.log = [this](const std::string& message) { log("sim: " + message); };
    internet_ = std::make_unique<netsim::Internet>(
        netsim::standard_models(config_.sim.scale), sim);
    raw_dataset_ = internet_->run(netsim::standard_campaigns());
    log("simulated " + std::to_string(raw_dataset_.total_host_records()) +
        " host records");
    if (!config_.cache_path.empty()) {
      if (cache_shards > 1) {
        save_dataset_sharded(raw_dataset_, key, config_.cache_path,
                             cache_shards);
        log("corpus cached to " + config_.cache_path + " (" +
            std::to_string(cache_shards) + " shards)");
      } else {
        save_dataset(raw_dataset_, key, config_.cache_path);
        log("corpus cached to " + config_.cache_path);
      }
    }
  }

  // The cache stores the clean corpus; scan noise is layered on afterwards
  // so one cached simulation serves any NoiseConfig.
  if (config_.noise.any()) {
    obs::Span noise = telemetry_.tracer().span("study.apply_noise");
    noise_summary_ = netsim::apply_noise(raw_dataset_, config_.noise);
    metrics.counter("noise.records_injected").inc(noise_summary_.total());
    log("noise: injected " + std::to_string(noise_summary_.total()) +
        " corrupted records into the scanned corpus");
  }

  // Ingest/quarantine: after this pass every record carries a decoded,
  // plausibly well-formed certificate; everything else is accounted for in
  // ingest_stats_ and (for degenerate moduli) rerouted to factor triage.
  {
    obs::Span ingest_span = telemetry_.tracer().span("study.ingest");
    IngestResult ingest = ingest_dataset(raw_dataset_, resolve_token());
    ingest_stats_ = std::move(ingest.stats);
    degenerate_moduli_ = std::move(ingest.degenerate_moduli);
    record_ingest_metrics();
    log("ingest: " + ingest_stats_.summary());
    obs::Span chains = telemetry_.tracer().span("study.exclude_intermediates");
    dataset_ = analysis::exclude_intermediates(ingest.kept);
  }
}

/// Mirrors IngestStats into the metrics registry. Counters agree exactly
/// with the stats struct (pinned by the telemetry e2e test): per-reason
/// drops are `ingest.drop.<reason>` using the QuarantineReason names.
void Study::record_ingest_metrics() {
  auto& metrics = telemetry_.metrics();
  metrics.counter("ingest.records_seen").inc(ingest_stats_.records_seen);
  metrics.counter("ingest.records_kept").inc(ingest_stats_.records_kept);
  metrics.counter("ingest.records_quarantined")
      .inc(ingest_stats_.records_quarantined);
  metrics.counter("ingest.raw_records").inc(ingest_stats_.raw_records);
  metrics.counter("ingest.raw_recovered").inc(ingest_stats_.raw_recovered);
  metrics.counter("ingest.degenerate_moduli")
      .inc(ingest_stats_.degenerate_moduli);
  for (std::size_t i = 0; i < kQuarantineReasonCount; ++i) {
    if (ingest_stats_.by_reason[i] == 0) continue;
    metrics
        .counter(std::string("ingest.drop.") +
                 to_string(static_cast<QuarantineReason>(i)))
        .inc(ingest_stats_.by_reason[i]);
  }
}

namespace {

bn::BigInt read_bigint(BinaryReader& r) {
  return bn::BigInt::from_bytes(r.bytes());
}

void write_bigint(BinaryWriter& w, const bn::BigInt& v) {
  w.bytes(v.to_bytes());
}

}  // namespace

bool Study::load_factor_cache(const std::string& path) {
  // Truncated or bit-flipped caches fail the length+CRC footer and fall
  // back to recomputation, mirroring the dataset cache's truncation safety.
  if (!verify_checksum_footer(path)) return false;
  BinaryReader r(path);
  if (!r.ok()) return false;
  try {
    if (r.u32() != kFactorMagic) return false;
    if (r.u64() != config_.sim.seed) return false;
    if (r.u64() != static_cast<std::uint64_t>(config_.sim.scale * 1e6))
      return false;
    if (r.u32() != kCatalogVersion) return false;
    // Noisy and pristine runs must never share factoring results: the
    // degenerate-modulus triage below folds quarantine output into stats_.
    if (r.u64() != config_.noise.fingerprint()) return false;
    stats_.distinct_moduli = r.u64();
    stats_.nontrivial_divisors = r.u64();
    stats_.shared_prime = r.u64();
    stats_.full_modulus = r.u64();
    stats_.bit_errors = r.u64();
    stats_.other = r.u64();
    stats_.second_pass_factored = r.u64();
    const std::uint32_t count = r.u32();
    factored_.clear();
    for (std::uint32_t i = 0; i < count; ++i) {
      FactorRecord f;
      f.n = read_bigint(r);
      f.p = read_bigint(r);
      f.q = read_bigint(r);
      f.divisor_class = static_cast<fingerprint::DivisorClass>(r.u32());
      vulnerable_.insert(f.n);
      factored_.push_back(std::move(f));
    }
    for (std::size_t i = 0; i < factored_.size(); ++i) {
      factored_index_[factored_[i].n.to_hex()] = i;
    }
    return true;
  } catch (const std::exception&) {
    factored_.clear();
    factored_index_.clear();
    vulnerable_ = analysis::VulnerableSet();
    stats_ = FactorStats{};
    return false;
  }
}

void Study::save_factor_cache(const std::string& path) const {
  // Stream to <path>.tmp and publish atomically: a SIGKILL between the
  // payload and the footer must never leave a torn factor cache behind.
  const std::string tmp = util::atomic_tmp_path(path);
  {
    BinaryWriter w(tmp);
    write_factor_cache_payload(w);
  }
  append_checksum_footer(tmp);
  util::atomic_publish_file(tmp, path);
}

void Study::write_factor_cache_payload(BinaryWriter& w) const {
  w.u32(kFactorMagic);
  w.u64(config_.sim.seed);
  w.u64(static_cast<std::uint64_t>(config_.sim.scale * 1e6));
  w.u32(kCatalogVersion);
  w.u64(config_.noise.fingerprint());
  w.u64(stats_.distinct_moduli);
  w.u64(stats_.nontrivial_divisors);
  w.u64(stats_.shared_prime);
  w.u64(stats_.full_modulus);
  w.u64(stats_.bit_errors);
  w.u64(stats_.other);
  w.u64(stats_.second_pass_factored);
  w.u32(static_cast<std::uint32_t>(factored_.size()));
  for (const auto& f : factored_) {
    write_bigint(w, f.n);
    write_bigint(w, f.p);
    write_bigint(w, f.q);
    w.u32(static_cast<std::uint32_t>(f.divisor_class));
  }
}

void Study::factor_moduli() {
  obs::Span stage = telemetry_.tracer().span("study.factor_moduli");
  auto& metrics = telemetry_.metrics();
  const std::string factor_cache =
      config_.cache_path.empty() ? "" : config_.cache_path + ".factors";
  if (!factor_cache.empty() && load_factor_cache(factor_cache)) {
    metrics.counter("cache.factors.hit").inc();
    record_factor_metrics();
    log("loaded " + std::to_string(factored_.size()) +
        " factored moduli from " + factor_cache);
    return;
  }
  if (!factor_cache.empty()) metrics.counter("cache.factors.miss").inc();

  const std::vector<bn::BigInt> moduli = dataset_.distinct_moduli();
  stats_.distinct_moduli = moduli.size();
  log("running batch GCD over " + std::to_string(moduli.size()) +
      " distinct moduli (k=" + std::to_string(config_.batch_gcd_subsets) + ")");

  // Cluster knobs fall back to the environment so deployments can scale a
  // study out to worker processes without a code change.
  std::size_t worker_processes = config_.worker_processes;
  if (worker_processes == 0) {
    if (const char* env = std::getenv("WEAKKEYS_WORKERS"))
      worker_processes = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  }
  std::string worker_binary = config_.worker_binary;
  if (worker_binary.empty()) {
    if (const char* env = std::getenv("WEAKKEYS_WORKER_BIN"))
      worker_binary = env;
  }
  int worker_port = config_.worker_port;
  if (worker_port < 0) {
    worker_port = 0;
    if (const char* env = std::getenv("WEAKKEYS_WORKER_PORT"))
      worker_port = static_cast<int>(std::strtol(env, nullptr, 10));
  }
  std::size_t remote_workers = config_.remote_workers;
  if (remote_workers == 0) {
    if (const char* env = std::getenv("WEAKKEYS_REMOTE_WORKERS"))
      remote_workers = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  }
  int session_grace_ms = config_.session_grace_ms;
  if (session_grace_ms < 0) {
    session_grace_ms = 0;
    if (const char* env = std::getenv("WEAKKEYS_WORKER_GRACE_MS"))
      session_grace_ms = static_cast<int>(std::strtol(env, nullptr, 10));
  }
  std::size_t chunk_bytes = config_.stream_chunk_bytes;
  if (chunk_bytes == 0) {
    if (const char* env = std::getenv("WEAKKEYS_CHUNK_BYTES"))
      chunk_bytes = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  }
  std::size_t stream_window = config_.stream_window_chunks;
  if (stream_window == 0) {
    if (const char* env = std::getenv("WEAKKEYS_STREAM_WINDOW"))
      stream_window = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  }
  int telemetry_interval_ms = config_.telemetry_interval_ms;
  if (telemetry_interval_ms < 0) {
    if (const char* env = std::getenv("WEAKKEYS_TELEMETRY_INTERVAL_MS"))
      telemetry_interval_ms =
          static_cast<int>(std::strtol(env, nullptr, 10));
  }
  std::string fleet_trace_path = config_.fleet_trace_path;
  if (fleet_trace_path.empty()) {
    if (const char* env = std::getenv("WEAKKEYS_FLEET_TRACE"))
      fleet_trace_path = env;
  }

  // Out-of-core spill policy (DESIGN.md §5l). One TreeStorage parameterizes
  // every subset tree this run builds; generation 0 means each tree stamps
  // its level files with its own subset fingerprint, which is stable across
  // runs of the same corpus — exactly what SIGKILL resume needs.
  std::string spill_dir = config_.spill_dir;
  if (spill_dir.empty()) {
    if (const char* env = std::getenv("WEAKKEYS_SPILL_DIR")) spill_dir = env;
  }
  long long spill_threshold_mb = config_.spill_threshold_mb;
  if (spill_threshold_mb < 0) {
    if (const char* env = std::getenv("WEAKKEYS_SPILL_THRESHOLD_MB"))
      spill_threshold_mb = std::strtoll(env, nullptr, 10);
  }
  if (spill_threshold_mb < 0) spill_threshold_mb = 256;
  long long spill_ram_fallback_mb = config_.spill_ram_fallback_mb;
  if (spill_ram_fallback_mb < 0) {
    if (const char* env = std::getenv("WEAKKEYS_SPILL_RAM_FALLBACK_MB"))
      spill_ram_fallback_mb = std::strtoll(env, nullptr, 10);
  }
  util::FaultInjector storage_injector(config_.faults);
  batchgcd::TreeStorage tree_storage;
  tree_storage.spill_dir = spill_dir;
  tree_storage.spill_threshold_bytes =
      static_cast<std::uint64_t>(spill_threshold_mb) * 1024 * 1024;
  tree_storage.base = "study";
  tree_storage.registry = &metrics;
  if (spill_ram_fallback_mb > 0) {
    tree_storage.ram_fallback_budget_bytes =
        static_cast<std::uint64_t>(spill_ram_fallback_mb) * 1024 * 1024;
  }
  if (config_.faults.any_storage_faults()) {
    tree_storage.injector = &storage_injector;
  }
  const batchgcd::TreeStorage* storage =
      tree_storage.enabled() ? &tree_storage : nullptr;
  if (storage != nullptr) {
    log("spill: dir=" + spill_dir + " threshold=" +
        std::to_string(spill_threshold_mb) + " MiB");
  }

  batchgcd::BatchGcdResult result;
  if (worker_processes > 0 || remote_workers > 0) {
    obs::Span gcd_span = telemetry_.tracer().span("gcd.cluster");
    // Multi-process path: fork/exec gcd_worker processes, supervise them
    // over TCP with heartbeats and per-task timeouts, survive crashes via
    // respawn and the same resume journal the in-process coordinator uses.
    cluster::ClusterConfig cc;
    cc.subsets = config_.batch_gcd_subsets;
    cc.workers = worker_processes;
    cc.remote_workers = remote_workers;
    cc.worker_binary = worker_binary;
    cc.port = static_cast<std::uint16_t>(worker_port);
    cc.session_grace = std::chrono::milliseconds(session_grace_ms);
    if (chunk_bytes > 0) cc.stream_chunk_bytes = chunk_bytes;
    if (stream_window > 0) cc.stream_window_chunks = stream_window;
    if (telemetry_interval_ms >= 0) {
      cc.telemetry_interval = std::chrono::milliseconds(telemetry_interval_ms);
    }
    cc.fleet_trace_path = fleet_trace_path;
    cc.checkpoint_path =
        config_.cache_path.empty() ? "" : config_.cache_path + ".gcdckpt";
    cc.log = [this](const std::string& message) { log(message); };
    cc.telemetry = &telemetry_;
    cc.cancel = resolve_token();
    util::FaultInjector injector(config_.faults);
    if (config_.faults.any_faults()) cc.injector = &injector;
    if (storage != nullptr) {
      // Worker processes inherit the environment, so exporting the spill
      // knobs here reaches every spawned gcd_worker without new spawn
      // plumbing (the same pattern the profiler knobs use).
      ::setenv("WEAKKEYS_SPILL_DIR", spill_dir.c_str(), 0);
      ::setenv("WEAKKEYS_SPILL_THRESHOLD_MB",
               std::to_string(spill_threshold_mb).c_str(), 0);
    }
    result = cluster::batch_gcd_cluster(moduli, cc, &cluster_stats_);
    gcd_span.end();
    log("cluster: " + std::to_string(cluster_stats_.tasks_executed) +
        " tasks on " + std::to_string(cluster_stats_.workers_spawned) +
        " worker processes (" + std::to_string(cluster_stats_.respawns) +
        " respawns, " + std::to_string(cluster_stats_.workers_lost) +
        " lost, " + std::to_string(cluster_stats_.reconnects) +
        " reconnects, " + std::to_string(cluster_stats_.results_quarantined) +
        " quarantined, " + std::to_string(cluster_stats_.tasks_resumed) +
        " resumed from checkpoint)");
  } else if (config_.fault_tolerant) {
    obs::Span gcd_span = telemetry_.tracer().span("gcd.coordinated");
    // Fault-tolerant path: verified results, retries, and a checkpoint
    // journal so a killed run resumes with only the unfinished tasks.
    batchgcd::CoordinatorConfig coord;
    coord.subsets = config_.batch_gcd_subsets;
    coord.workers = config_.threads;
    coord.checkpoint_path =
        config_.cache_path.empty() ? "" : config_.cache_path + ".gcdckpt";
    coord.log = [this](const std::string& message) { log(message); };
    coord.telemetry = &telemetry_;
    coord.cancel = resolve_token();
    util::FaultInjector injector(config_.faults);
    if (config_.faults.any_faults()) coord.injector = &injector;
    coord.storage = storage;
    result = batchgcd::batch_gcd_coordinated(moduli, coord, &coordinator_stats_);
    gcd_span.end();
    log("coordinator: " + std::to_string(coordinator_stats_.attempts) +
        " attempts for " + std::to_string(coordinator_stats_.tasks) +
        " tasks (" + std::to_string(coordinator_stats_.retries) + " retries, " +
        std::to_string(coordinator_stats_.corruptions_caught) +
        " corruptions caught, " +
        std::to_string(coordinator_stats_.stragglers_killed) +
        " stragglers killed, " +
        std::to_string(coordinator_stats_.tasks_resumed) +
        " resumed from checkpoint)");
  } else {
    // Fault-free fast path: every task assumed to succeed exactly once.
    obs::Span gcd_span = telemetry_.tracer().span("gcd.distributed");
    util::ThreadPool pool(config_.threads, &telemetry_);
    result = batchgcd::batch_gcd_distributed(
        moduli, config_.batch_gcd_subsets, &pool, nullptr, resolve_token(),
        &telemetry_.metrics(), storage);
  }

  obs::Span classify_span = telemetry_.tracer().span("study.classify_divisors");
  std::vector<std::size_t> full_modulus_indices;
  for (std::size_t i = 0; i < moduli.size(); ++i) {
    const bn::BigInt& d = result.divisors[i];
    if (d <= bn::BigInt(1)) continue;
    ++stats_.nontrivial_divisors;

    const auto verdict = fingerprint::classify_divisor(moduli[i], d);
    switch (verdict.cls) {
      case fingerprint::DivisorClass::kSharedPrime: {
        const auto split = batchgcd::recover_factors(moduli[i], d);
        factored_.push_back(
            {moduli[i], split->p, split->q, verdict.cls});
        vulnerable_.insert(moduli[i]);
        ++stats_.shared_prime;
        break;
      }
      case fingerprint::DivisorClass::kFullModulus:
        full_modulus_indices.push_back(i);
        ++stats_.full_modulus;
        break;
      case fingerprint::DivisorClass::kSmoothBitError:
        ++stats_.bit_errors;
        break;
      case fingerprint::DivisorClass::kOther:
        ++stats_.other;
        break;
    }
  }

  classify_span.end();

  // Second pass: moduli whose divisor equals the modulus share *both* primes
  // with the rest of the corpus (degenerate-generator cliques). Pairwise GCD
  // within this small set splits them.
  obs::Span second_pass_span = telemetry_.tracer().span("study.second_pass");
  for (const std::size_t i : full_modulus_indices) {
    for (const std::size_t j : full_modulus_indices) {
      if (i == j) continue;
      const bn::BigInt g = bn::gcd(moduli[i], moduli[j]);
      if (g > bn::BigInt(1) && g < moduli[i]) {
        factored_.push_back({moduli[i], g, moduli[i] / g,
                             fingerprint::DivisorClass::kFullModulus});
        vulnerable_.insert(moduli[i]);
        ++stats_.second_pass_factored;
        break;
      }
    }
  }

  second_pass_span.end();

  // Quarantined degenerate moduli (zero/tiny/even) never reach the GCD
  // input — an even modulus alone would smear a factor of 2 across the whole
  // corpus — but the paper still accounts for them as malformed keys, so
  // triage each into the bit-error/other buckets here.
  obs::Span triage_span = telemetry_.tracer().span("study.triage_degenerate");
  std::size_t triaged_bit_errors = 0;
  for (const auto& n : degenerate_moduli_) {
    if (fingerprint::triage_degenerate_modulus(n) ==
        fingerprint::DivisorClass::kSmoothBitError) {
      ++stats_.bit_errors;
      ++triaged_bit_errors;
    } else {
      ++stats_.other;
    }
  }
  if (!degenerate_moduli_.empty()) {
    log("triaged " + std::to_string(degenerate_moduli_.size()) +
        " quarantined degenerate moduli (" +
        std::to_string(triaged_bit_errors) + " as bit errors)");
  }

  triage_span.end();

  for (std::size_t i = 0; i < factored_.size(); ++i) {
    factored_index_[factored_[i].n.to_hex()] = i;
  }
  record_factor_metrics();
  log("factored " + std::to_string(factored_.size()) + " moduli (" +
      std::to_string(stats_.bit_errors) + " bit errors excluded)");
  if (!factor_cache.empty()) save_factor_cache(factor_cache);
}

/// Mirrors FactorStats into `factor.*` counters (set, not inc: the stats
/// struct is the authoritative total, whether computed or cache-loaded).
void Study::record_factor_metrics() {
  auto& metrics = telemetry_.metrics();
  metrics.counter("factor.distinct_moduli").set(stats_.distinct_moduli);
  metrics.counter("factor.nontrivial_divisors")
      .set(stats_.nontrivial_divisors);
  metrics.counter("factor.shared_prime").set(stats_.shared_prime);
  metrics.counter("factor.full_modulus").set(stats_.full_modulus);
  metrics.counter("factor.bit_errors").set(stats_.bit_errors);
  metrics.counter("factor.other").set(stats_.other);
  metrics.counter("factor.second_pass_factored")
      .set(stats_.second_pass_factored);
  metrics.counter("factor.factored_moduli").set(factored_.size());
}

const FactorRecord* Study::find_factor(const bn::BigInt& n) const {
  const auto it = factored_index_.find(n.to_hex());
  return it == factored_index_.end() ? nullptr : &factored_[it->second];
}

void Study::fingerprint_corpus() {
  obs::Span stage = telemetry_.tracer().span("study.fingerprint");
  // Degenerate-generator cliques.
  obs::Span clique_span = telemetry_.tracer().span("fingerprint.cliques");
  std::vector<fingerprint::FactoredModulus> triples;
  triples.reserve(factored_.size());
  for (const auto& f : factored_) triples.push_back({f.p, f.q, f.n});
  cliques_ = fingerprint::find_degenerate_cliques(triples);
  std::set<std::string> clique_prime_hex;
  for (const auto& clique : cliques_) {
    for (const auto& n : clique.moduli) clique_moduli_.insert(n);
    for (const auto& p : clique.primes) clique_prime_hex.insert(p.to_hex());
  }
  log("found " + std::to_string(cliques_.size()) +
      " degenerate-generator cliques");
  telemetry_.metrics().counter("fingerprint.cliques").set(cliques_.size());
  clique_span.end();
  resolve_token()->throw_if_cancelled();

  // Subject labels per unique certificate, and per-modulus subject vendors.
  obs::Span subject_span =
      telemetry_.tracer().span("fingerprint.subject_labels");
  std::unordered_map<std::string, std::set<std::string>> subject_vendors;
  for (const auto& snap : dataset_.snapshots) {
    for (const auto& rec : snap.records) {
      const auto* ptr = rec.certificate.get();
      auto [it, fresh] = subject_label_cache_.try_emplace(ptr);
      if (fresh) it->second = subject_rules_.classify(*ptr, rec.banner);
      if (it->second) {
        subject_vendors[ptr->key.n.to_hex()].insert(it->second->vendor);
      }
    }
  }

  subject_span.end();
  resolve_token()->throw_if_cancelled();

  // Vendor prime pools from subject-labeled factored moduli (clique primes
  // stay out: the clique label takes precedence, as in the paper).
  obs::Span pools_span = telemetry_.tracer().span("fingerprint.prime_pools");
  for (const auto& f : factored_) {
    if (clique_moduli_.contains(f.n)) continue;
    const auto it = subject_vendors.find(f.n.to_hex());
    if (it == subject_vendors.end() || it->second.size() != 1) continue;
    const std::string& vendor = *it->second.begin();
    pools_.add(vendor, f.p);
    pools_.add(vendor, f.q);
  }

  pools_span.end();

  // Shared-prime extrapolation for factored moduli with no subject label.
  obs::Span extrapolate_span =
      telemetry_.tracer().span("fingerprint.extrapolate");
  for (const auto& f : factored_) {
    if (clique_moduli_.contains(f.n)) continue;
    const std::string hex = f.n.to_hex();
    if (subject_vendors.contains(hex)) continue;
    const std::string vendor = pools_.extrapolate(f.p, f.q);
    if (!vendor.empty()) extrapolated_[hex] = vendor;
  }
  log("shared-prime extrapolation labeled " +
      std::to_string(extrapolated_.size()) + " moduli");
  telemetry_.metrics()
      .counter("fingerprint.extrapolated")
      .set(extrapolated_.size());
  extrapolate_span.end();

  // Fixed-key MITM candidates.
  obs::Span mitm_span = telemetry_.tracer().span("fingerprint.mitm");
  std::vector<std::string> factored_hex;
  factored_hex.reserve(factored_.size());
  for (const auto& f : factored_) factored_hex.push_back(f.n.to_hex());
  mitm_ = fingerprint::detect_fixed_key_mitm(dataset_, factored_hex,
                                             fingerprint::MitmOptions{});
  telemetry_.metrics().counter("fingerprint.mitm_candidates").set(mitm_.size());
}

analysis::RecordLabeler Study::labeler() const {
  return [this](const netsim::HostRecord& rec)
             -> std::optional<fingerprint::VendorLabel> {
    const auto& c = rec.cert();
    // 1. Degenerate-generator clique: every certificate carrying a clique
    //    modulus is the IBM implementation, whatever the subject says
    //    (this is how the paper labeled the Siemens-subject overlap).
    if (clique_moduli_.contains(c.key.n)) {
      return fingerprint::VendorLabel{"IBM", "RSA-II", "prime-clique"};
    }
    // 2. Subject / SAN / banner rules.
    const auto* ptr = rec.certificate.get();
    auto [it, fresh] = subject_label_cache_.try_emplace(ptr);
    if (fresh) it->second = subject_rules_.classify(c, rec.banner);
    if (it->second) return it->second;
    // 3. Shared-prime extrapolation.
    const auto ex = extrapolated_.find(c.key.n.to_hex());
    if (ex != extrapolated_.end()) {
      return fingerprint::VendorLabel{ex->second, "", "shared-prime"};
    }
    return std::nullopt;
  };
}

std::map<std::string, std::vector<bn::BigInt>>
Study::recovered_primes_by_vendor() const {
  // Rebuild per-modulus vendor attribution the way the labeler does, but at
  // modulus granularity.
  std::unordered_map<std::string, std::set<std::string>> subject_vendors;
  for (const auto& [ptr, label] : subject_label_cache_) {
    if (label) subject_vendors[ptr->key.n.to_hex()].insert(label->vendor);
  }

  std::map<std::string, std::vector<bn::BigInt>> out;
  for (const auto& f : factored_) {
    std::string vendor;
    if (clique_moduli_.contains(f.n)) {
      vendor = "IBM";
    } else {
      const std::string hex = f.n.to_hex();
      const auto it = subject_vendors.find(hex);
      if (it != subject_vendors.end() && it->second.size() == 1) {
        vendor = *it->second.begin();
      } else if (const auto ex = extrapolated_.find(hex);
                 ex != extrapolated_.end()) {
        vendor = ex->second;
      }
    }
    if (vendor.empty()) continue;
    out[vendor].push_back(f.p);
    out[vendor].push_back(f.q);
  }
  return out;
}

analysis::TimeSeriesBuilder Study::series_builder() const {
  return analysis::TimeSeriesBuilder(dataset_, vulnerable_, labeler());
}

const netsim::ScanDataset& Study::raw_dataset() const { return raw_dataset_; }
const netsim::ScanDataset& Study::dataset() const { return dataset_; }
const IngestStats& Study::ingest_stats() const { return ingest_stats_; }
const netsim::NoiseSummary& Study::noise_summary() const {
  return noise_summary_;
}
DatasetLoadStatus Study::dataset_cache_status() const {
  return dataset_cache_status_;
}
const FactorStats& Study::factor_stats() const { return stats_; }
const batchgcd::CoordinatorStats& Study::coordinator_stats() const {
  return coordinator_stats_;
}
const std::vector<FactorRecord>& Study::factored() const { return factored_; }
const analysis::VulnerableSet& Study::vulnerable() const { return vulnerable_; }
const std::vector<fingerprint::PrimeClique>& Study::cliques() const {
  return cliques_;
}
const fingerprint::PrimePools& Study::prime_pools() const { return pools_; }
const std::vector<fingerprint::MitmCandidate>& Study::mitm_candidates() const {
  return mitm_;
}
const netsim::Internet* Study::ground_truth() const { return internet_.get(); }

}  // namespace weakkeys::core

// The end-to-end study pipeline — the library's primary public API.
//
// Study reproduces the paper's methodology section for section:
//   1. obtain six years of scan data (simulate, or load the cached corpus);
//   2. reconstruct chains and drop Rapid7 intermediates (Section 3.1);
//   3. extract all distinct RSA moduli across protocols and run the
//      distributed batch GCD (Section 3.2);
//   4. classify divisors (shared prime / duplicate / bit error), splitting
//      both-primes-shared moduli with a pairwise second pass;
//   5. fingerprint implementations: subject rules, degenerate-generator
//      cliques, shared-prime-pool extrapolation, OpenSSL prime fingerprint,
//      fixed-key MITM detection (Section 3.3).
//
// Everything the table/figure binaries need hangs off the accessors.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "analysis/timeseries.hpp"
#include "batchgcd/batch_gcd.hpp"
#include "batchgcd/coordinator.hpp"
#include "cluster/process_coordinator.hpp"
#include "fingerprint/divisor_class.hpp"
#include "fingerprint/ibm_clique.hpp"
#include "fingerprint/mitm_detector.hpp"
#include "fingerprint/openssl_fingerprint.hpp"
#include "fingerprint/prime_pools.hpp"
#include "core/ingest.hpp"
#include "core/scan_store.hpp"
#include "core/study_checkpoint.hpp"
#include "fingerprint/subject_rules.hpp"
#include "netsim/internet.hpp"
#include "netsim/noise.hpp"
#include "obs/monitor.hpp"
#include "obs/profiler.hpp"
#include "obs/status_server.hpp"
#include "obs/telemetry.hpp"
#include "obs/watchdog.hpp"
#include "util/cancellation.hpp"

namespace weakkeys::core {

struct StudyConfig {
  netsim::SimConfig sim;
  /// Batch-GCD subset count (the paper used k=16 on 22 machines).
  std::size_t batch_gcd_subsets = 4;
  /// Worker threads for the distributed batch GCD (0 = hardware).
  std::size_t threads = 0;
  /// Dataset cache path; empty disables caching. A stale or mismatched
  /// cache is silently rebuilt.
  std::string cache_path = "weakkeys_corpus.cache";
  /// Corpus cache shard count: > 1 splits the record stream round-robin
  /// across "<cache_path>.shard<i>" files (each CRC-footed and atomically
  /// published) so 10^6-host corpora don't serialize through one multi-GB
  /// file, and ingest streams the shards back in original order — study
  /// results are byte-identical to the single-file cache. 0 falls back to
  /// WEAKKEYS_CACHE_SHARDS; still 0 (or 1) keeps the single file.
  std::uint32_t cache_shards = 0;
  /// Route the factoring stage through the fault-tolerant cluster
  /// coordinator (batch_gcd_coordinated) instead of the fault-free
  /// batch_gcd_distributed fast path. Enables checkpoint/resume: completed
  /// remainder-tree tasks journal to `cache_path + ".gcdckpt"`, so an
  /// interrupted factoring run re-executes only the unfinished tasks.
  bool fault_tolerant = false;
  /// Fault injection for the coordinator (all-zero = no injected faults).
  /// Only meaningful with fault_tolerant = true.
  util::FaultConfig faults;
  /// Route the factoring stage through the multi-process TCP cluster
  /// (batch_gcd_cluster): fork/exec this many gcd_worker processes and
  /// supervise them with heartbeats, per-task timeouts, and respawn.
  /// 0 falls back to the WEAKKEYS_WORKERS environment variable; still 0
  /// keeps factoring in-process (fault_tolerant / fast path as above).
  /// The cluster path implies fault tolerance: it shares the coordinator's
  /// journal format, so cluster and in-process runs resume each other.
  std::size_t worker_processes = 0;
  /// Path to the gcd_worker binary for the cluster path. Empty falls back
  /// to the WEAKKEYS_WORKER_BIN environment variable; required (and
  /// validated executable) when worker_processes resolves > 0.
  std::string worker_binary;
  /// Listener port for worker connections, 0 for kernel-assigned.
  /// Negative falls back to WEAKKEYS_WORKER_PORT; still negative means 0.
  int worker_port = -1;
  /// Extra dial-in slots for remote gcd_worker --connect processes the
  /// study does not spawn. 0 falls back to WEAKKEYS_REMOTE_WORKERS. The
  /// cluster path activates when local + remote workers resolve > 0.
  std::size_t remote_workers = 0;
  /// Session grace window (ms) for the cluster path: how long a
  /// disconnected worker's session is held for reconnection before the
  /// slot respawns. Negative falls back to WEAKKEYS_WORKER_GRACE_MS;
  /// still negative means 0 (disconnect = death).
  int session_grace_ms = -1;
  /// Chunk size (bytes) for streaming subset/product payloads to workers.
  /// 0 falls back to WEAKKEYS_CHUNK_BYTES, then the cluster default.
  std::size_t stream_chunk_bytes = 0;
  /// Backpressure window (chunks in flight beyond the acked prefix).
  /// 0 falls back to WEAKKEYS_STREAM_WINDOW, then the cluster default.
  std::size_t stream_window_chunks = 0;
  /// Telemetry export cadence (ms) for the cluster path: each v3 worker
  /// ships a TelemetrySnapshot (metrics + task spans + RSS/CPU) at most
  /// this often, fanned into fleet.worker.<id>.* / fleet.* metrics on the
  /// study registry (visible via /metrics, /status, and the monitor).
  /// Negative falls back to WEAKKEYS_TELEMETRY_INTERVAL_MS; still negative
  /// keeps the cluster default (500ms). 0 disables worker export.
  int telemetry_interval_ms = -1;
  /// Fleet-merged Chrome trace path for the cluster path: coordinator
  /// assign spans plus clock-rebased worker task spans on one timeline,
  /// written when the factoring stage ends (plus fleet metrics JSON at
  /// `<path>.metrics.json`). Empty falls back to WEAKKEYS_FLEET_TRACE;
  /// still empty disables the merged trace (metric fan-in is unaffected).
  std::string fleet_trace_path;
  /// Scan-noise injection: appends corrupted records to the scanned corpus
  /// after simulation or cache load (the cache always stores the clean
  /// corpus). All-zero = pristine. The ingest quarantine pass absorbs the
  /// damage; results on the clean subset are invariant under any setting.
  netsim::NoiseConfig noise;
  /// Progress sink (the simulation and factoring take a while at full
  /// scale). Null no longer discards events: everything is still counted
  /// and ring-buffered by the telemetry sink (Study::telemetry()); this
  /// callback only controls whether the text is *printed* somewhere.
  std::function<void(const std::string&)> log;
  /// Write a Chrome trace_event JSON of the run here after run() finishes
  /// (plus a metrics snapshot at `<trace_path>.metrics.json`). Empty falls
  /// back to the WEAKKEYS_TRACE environment variable; still empty disables
  /// the dump (spans and metrics are collected either way — see
  /// Study::telemetry()). Load the trace in about://tracing or perfetto.
  std::string trace_path;
  /// Live-monitor JSONL time-series path: run() starts a background
  /// obs::Monitor appending one snapshot object per line (schema in
  /// DESIGN.md §5f) plus human heartbeats through the sink. Empty falls
  /// back to the WEAKKEYS_MONITOR environment variable; still empty
  /// disables the monitor.
  std::string monitor_path;
  /// Monitor snapshot / heartbeat cadence.
  std::chrono::milliseconds monitor_interval{250};
  /// Embedded HTTP status server (GET /metrics Prometheus exposition,
  /// GET /status JSON, GET /healthz liveness): the loopback port to bind,
  /// 0 for a kernel-assigned ephemeral port (read the result from
  /// Study::status_port()). Negative falls back to WEAKKEYS_STATUS_PORT;
  /// still negative disables the server. It stays up until the Study is
  /// destroyed, so finished runs remain scrapeable.
  int status_port = -1;
  /// Sampling-profiler cadence in Hz (DESIGN.md §5k): run() starts an
  /// obs::Profiler snapshotting every thread's span/kernel stack and
  /// feeding `profiler.*` rollups into the registry (visible via /metrics,
  /// /status, the monitor, and the heartbeat line). Negative falls back to
  /// WEAKKEYS_PROFILE_HZ; <= 0 after fallback disables profiling. Enabling
  /// the profiler also enables memory accounting (mem.* gauges).
  double profile_hz = -1;
  /// Collapsed-stack (flamegraph) output path, written atomically when
  /// telemetry flushes. Empty falls back to WEAKKEYS_PROFILE_OUT; still
  /// empty keeps the profile in metrics only.
  std::string profile_out;
  /// Soft memory budget in MiB: enables memory accounting and latches a
  /// watchdog-visible alarm (`mem.budget.alarms` counter + sink warning)
  /// the first time live heap bytes cross the watermark. The run is never
  /// aborted — results stay identical to an unconstrained run. Negative
  /// falls back to WEAKKEYS_MEM_BUDGET_MB; <= 0 after fallback disables
  /// the budget.
  long long mem_budget_mb = -1;
  /// Out-of-core batch GCD: directory for product-tree level spills
  /// (DESIGN.md §5l). When the spill policy fires, each subset's product
  /// tree keeps at most two levels resident and streams the rest through
  /// CRC-framed level files here, bounding factoring memory at corpus
  /// scale. Empty falls back to WEAKKEYS_SPILL_DIR; still empty disables
  /// spilling. Level files are generation-stamped with the corpus
  /// fingerprint, so a killed run that left them behind resumes from them.
  std::string spill_dir;
  /// Estimated per-tree bytes at which spilling kicks in, in MiB. 0 spills
  /// every tree (chaos/CI mode); negative falls back to
  /// WEAKKEYS_SPILL_THRESHOLD_MB (still negative = 256 MiB). Only
  /// meaningful with a spill dir.
  long long spill_threshold_mb = -1;
  /// Last-rung budget for the spill degradation ladder, in MiB: when
  /// storage keeps failing, levels are pinned in RAM up to this budget
  /// before the run cancels with util::StorageError. Negative falls back
  /// to WEAKKEYS_SPILL_RAM_FALLBACK_MB; still negative = 0 = unlimited.
  long long spill_ram_fallback_mb = -1;

  // -- Run lifecycle (cancellation, deadlines, watchdog, resume) ---------

  /// External cancellation token. When set, run() polls (and arms
  /// deadlines on) this token instead of the Study's internal one, so one
  /// token can span several studies or be shared with a driver. Must
  /// outlive the Study.
  util::CancellationToken* cancel = nullptr;
  /// Whole-run wall-clock budget; the token's deadline trips once it is
  /// exhausted and the run unwinds with util::Cancelled ("deadline
  /// exceeded (run)"). Zero falls back to the WEAKKEYS_DEADLINE
  /// environment variable (seconds, fractional allowed); still zero means
  /// no deadline.
  std::chrono::milliseconds run_deadline{0};
  /// Optional per-stage budgets, each clamped to whatever remains of the
  /// run deadline. Zero = that stage inherits the run deadline only.
  struct StageDeadlines {
    std::chrono::milliseconds build_dataset{0};
    std::chrono::milliseconds factor{0};
    std::chrono::milliseconds fingerprint{0};
  } stage_deadlines;
  /// Declare the run stalled (and cancel it) after this many consecutive
  /// monitor ticks with zero movement across the progress counters. Rides
  /// the monitor thread, so it needs monitor_path/WEAKKEYS_MONITOR to be
  /// active. 0 disables the watchdog.
  std::size_t watchdog_stall_ticks = 0;
  /// Resume a previous run of the same configuration: load the WKC1 study
  /// checkpoint (`cache_path + ".study"`) and continue its generation
  /// count. The per-stage caches (corpus, gcdckpt journal, factors) do
  /// the actual work-skipping; this flag additionally surfaces
  /// `checkpoint.resume.stage` so callers can assert what was skipped.
  /// False falls back to the WEAKKEYS_RESUME environment variable.
  bool resume = false;
  /// Install SIGINT/SIGTERM handlers for the duration of the Study that
  /// trip the run's cancellation token (async-signal-safely) instead of
  /// killing the process: the run unwinds, flushes telemetry, and writes
  /// its checkpoint. Previous handlers are restored on destruction.
  bool handle_signals = false;
};

/// One factored modulus with everything later stages need.
struct FactorRecord {
  bn::BigInt n;
  bn::BigInt p;
  bn::BigInt q;
  fingerprint::DivisorClass divisor_class;
};

struct FactorStats {
  std::size_t distinct_moduli = 0;
  std::size_t nontrivial_divisors = 0;
  std::size_t shared_prime = 0;   ///< factored via a single shared prime
  std::size_t full_modulus = 0;   ///< both primes shared (clique members)
  std::size_t bit_errors = 0;     ///< smooth divisors: corrupted moduli
  std::size_t other = 0;
  std::size_t second_pass_factored = 0;  ///< full-modulus cases split pairwise
};

/// Coarse run state for the lifecycle probe (/healthz, /status).
enum class RunState : int {
  kIdle = 0,       ///< constructed, run() not yet called
  kRunning = 1,    ///< inside run()
  kCancelled = 2,  ///< run() unwound with util::Cancelled
  kFailed = 3,     ///< run() unwound with any other exception
  kDone = 4,       ///< run() completed
};

const char* to_string(RunState s);

class LifecycleSignalWatcher;  // SIGINT/SIGTERM -> token (study.cpp)

class Study {
 public:
  explicit Study(StudyConfig config = {});
  ~Study();

  /// Runs the full pipeline. Idempotent. Throws util::Cancelled when the
  /// run's token trips (signal, deadline, watchdog, or explicit cancel());
  /// telemetry is flushed and the study checkpoint written first, so a
  /// resume=true re-run continues from the last completed stage.
  void run();

  /// Trips the run's cancellation token from any thread. Poll sites at
  /// batch granularity (simulated month, scan snapshot, remainder-tree
  /// task) pick it up, so cancel latency is bounded by one batch.
  void cancel(const std::string& reason);

  /// The run's current lifecycle state, as served by /healthz and /status.
  /// Safe to call from any thread, including while run() executes.
  [[nodiscard]] obs::LifecycleStatus lifecycle() const;
  [[nodiscard]] RunState run_state() const { return state_.load(); }
  /// The token run() polls: config.cancel when set, else the internal one.
  [[nodiscard]] util::CancellationToken& cancellation_token() {
    return *resolve_token();
  }

  // -- Data ------------------------------------------------------------
  /// Records exactly as scanned (including Rapid7 intermediates).
  [[nodiscard]] const netsim::ScanDataset& raw_dataset() const;
  /// After chain reconstruction (this is what all analyses use).
  [[nodiscard]] const netsim::ScanDataset& dataset() const;
  /// Quarantine accounting from the ingest/validation pass (all records
  /// kept and zero quarantined on a pristine corpus).
  [[nodiscard]] const IngestStats& ingest_stats() const;
  /// What apply_noise injected this run (all-zero when noise is off).
  [[nodiscard]] const netsim::NoiseSummary& noise_summary() const;
  /// Outcome of the corpus-cache probe (kMissing when caching is disabled).
  [[nodiscard]] DatasetLoadStatus dataset_cache_status() const;

  // -- Factoring ---------------------------------------------------------
  [[nodiscard]] const FactorStats& factor_stats() const;
  /// Coordinator telemetry (attempts, retries, corruptions caught, ...).
  /// All zero when the fast path ran or the factor cache was hit.
  [[nodiscard]] const batchgcd::CoordinatorStats& coordinator_stats() const;
  /// Process-cluster telemetry (respawns, heartbeat deaths, quarantined
  /// results, frame loss, ...). All zero unless the factoring stage ran on
  /// the multi-process cluster (worker_processes / WEAKKEYS_WORKERS).
  [[nodiscard]] const cluster::ClusterStats& cluster_stats() const {
    return cluster_stats_;
  }
  [[nodiscard]] const std::vector<FactorRecord>& factored() const;
  /// Moduli counted as vulnerable: genuinely weak keys (shared-prime and
  /// clique factorizations; bit errors excluded, as in the paper).
  [[nodiscard]] const analysis::VulnerableSet& vulnerable() const;

  // -- Fingerprinting ------------------------------------------------------
  /// Degenerate-generator cliques found among the factored moduli.
  [[nodiscard]] const std::vector<fingerprint::PrimeClique>& cliques() const;
  /// Per-vendor recovered-prime pools (after subject labeling).
  [[nodiscard]] const fingerprint::PrimePools& prime_pools() const;
  /// Fixed-key MITM candidates (Internet Rimon).
  [[nodiscard]] const std::vector<fingerprint::MitmCandidate>& mitm_candidates() const;

  /// The full labeler: clique -> subject rules -> shared-prime
  /// extrapolation. Safe to copy into analysis builders.
  [[nodiscard]] analysis::RecordLabeler labeler() const;

  /// Vendor -> recovered primes (for Table 5 classification).
  [[nodiscard]] std::map<std::string, std::vector<bn::BigInt>>
  recovered_primes_by_vendor() const;

  /// Convenience: a TimeSeriesBuilder over dataset() with this study's
  /// vulnerable set and labeler. The Study must outlive the builder.
  [[nodiscard]] analysis::TimeSeriesBuilder series_builder() const;

  /// Ground-truth device list — only available when the corpus was simulated
  /// this run (not loaded from cache). For tests and validation only.
  [[nodiscard]] const netsim::Internet* ground_truth() const;

  /// The factor record for modulus `n`, if it was factored.
  [[nodiscard]] const FactorRecord* find_factor(const bn::BigInt& n) const;

  // -- Telemetry -----------------------------------------------------------
  /// The run's metrics registry, span tracer, and structured event sink.
  /// Live from construction; populated by run(). Metric names and the span
  /// model are documented in DESIGN.md §5e.
  [[nodiscard]] obs::Telemetry& telemetry() { return telemetry_; }
  [[nodiscard]] const obs::Telemetry& telemetry() const { return telemetry_; }

  /// The live monitor, if one was configured and started by run();
  /// null otherwise (and before run()).
  [[nodiscard]] obs::Monitor* monitor() { return monitor_.get(); }

  /// The bound status-server port, or -1 when the server is off. Safe to
  /// poll from another thread while run() executes.
  [[nodiscard]] int status_port() const {
    return status_server_ ? status_server_->port() : -1;
  }

  /// Closes the observability artifacts exactly once: stops the monitor
  /// (writing the `"final":true` snapshot) and writes the trace/metrics
  /// files if configured. Called automatically from run(), the destructor,
  /// and a process-exit hook, so an aborted run still leaves its telemetry
  /// on disk. The status server is untouched (it lives until destruction).
  void flush_telemetry();

 private:
  void build_dataset();
  void factor_moduli();
  void fingerprint_corpus();
  bool load_factor_cache(const std::string& path);
  void save_factor_cache(const std::string& path) const;
  void write_factor_cache_payload(class BinaryWriter& w) const;
  void log(const std::string& message);
  void record_ingest_metrics();
  void record_factor_metrics();
  void start_observability();
  /// Reports the soft-budget alarm (once per run) through the sink and the
  /// `mem.budget.alarms` counter. Called at stage boundaries and the final
  /// flush; the monitor tick polls too, whichever fires first reports.
  void poll_mem_budget();
  void write_trace_if_configured();
  [[nodiscard]] util::CancellationToken* resolve_token();
  [[nodiscard]] std::string checkpoint_path() const;
  [[nodiscard]] StudyCheckpointKey checkpoint_key() const;
  void load_checkpoint_if_resuming();
  void save_stage_checkpoint(StudyStage stage);
  /// Marks `name` as the running stage and arms its deadline (clamped to
  /// the run deadline); throws util::Cancelled if the token has tripped.
  void begin_stage(const std::string& name,
                   std::chrono::milliseconds stage_deadline);

  StudyConfig config_;
  obs::Telemetry telemetry_;
  // Declared after telemetry_ (they hold references into it) so they are
  // destroyed first.
  std::unique_ptr<obs::Monitor> monitor_;
  std::unique_ptr<obs::StatusServer> status_server_;
  std::unique_ptr<obs::Watchdog> watchdog_;
  std::unique_ptr<obs::Profiler> profiler_;
  std::unique_ptr<LifecycleSignalWatcher> signal_watcher_;
  std::uint64_t exit_flush_token_ = 0;
  std::atomic<bool> run_started_{false};
  std::atomic<bool> flushed_{false};
  bool ran_ = false;

  // -- lifecycle state ----------------------------------------------------
  util::CancellationToken own_token_;
  std::atomic<RunState> state_{RunState::kIdle};
  std::atomic<bool> stalled_{false};
  /// Armed run deadline (steady clock), if any; stage deadlines clamp to it.
  std::optional<std::chrono::steady_clock::time_point> run_deadline_at_;
  mutable std::mutex lifecycle_mu_;  ///< guards stage_name_
  std::string stage_name_;
  std::uint64_t checkpoint_generation_ = 0;
  StudyStage resumed_stage_ = StudyStage::kInit;
  netsim::ScanDataset raw_dataset_;
  netsim::ScanDataset dataset_;
  std::unique_ptr<netsim::Internet> internet_;
  IngestStats ingest_stats_;
  netsim::NoiseSummary noise_summary_;
  DatasetLoadStatus dataset_cache_status_ = DatasetLoadStatus::kMissing;
  /// Distinct quarantined degenerate moduli, triaged into FactorStats.
  std::vector<bn::BigInt> degenerate_moduli_;

  FactorStats stats_;
  batchgcd::CoordinatorStats coordinator_stats_;
  cluster::ClusterStats cluster_stats_;
  std::vector<FactorRecord> factored_;
  analysis::VulnerableSet vulnerable_;

  fingerprint::SubjectRules subject_rules_;
  std::vector<fingerprint::PrimeClique> cliques_;
  analysis::VulnerableSet clique_moduli_;
  fingerprint::PrimePools pools_;
  std::vector<fingerprint::MitmCandidate> mitm_;
  /// modulus hex -> extrapolated vendor (shared-prime pass).
  std::map<std::string, std::string> extrapolated_;
  /// modulus hex -> index into factored_.
  std::map<std::string, std::size_t> factored_index_;
  /// per-certificate subject-label cache (pointers owned by the dataset).
  mutable std::map<const cert::Certificate*,
                   std::optional<fingerprint::VendorLabel>>
      subject_label_cache_;
};

}  // namespace weakkeys::core

// Minimal binary file I/O used by the corpus and factor-result caches.
// Fixed-width little-endian integers (we only target little-endian hosts;
// the cache is a local artifact, not an interchange format).
#pragma once

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

namespace weakkeys::core {

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path)
      : file_(std::fopen(path.c_str(), "wb")) {
    if (!file_) throw std::runtime_error("cannot open for write: " + path);
  }
  ~BinaryWriter() {
    if (file_) std::fclose(file_);
  }
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void bytes(const std::vector<std::uint8_t>& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b.data(), b.size());
  }

 private:
  void raw(const void* data, std::size_t size) {
    if (size && std::fwrite(data, 1, size, file_) != size)
      throw std::runtime_error("short write");
  }
  std::FILE* file_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path)
      : file_(std::fopen(path.c_str(), "rb")) {}
  ~BinaryReader() {
    if (file_) std::fclose(file_);
  }
  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  [[nodiscard]] bool ok() const { return file_ != nullptr; }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::int64_t i64() {
    std::int64_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    std::string s(n, '\0');
    raw(s.data(), n);
    return s;
  }
  std::vector<std::uint8_t> bytes() {
    const std::uint32_t n = u32();
    std::vector<std::uint8_t> b(n);
    raw(b.data(), n);
    return b;
  }

 private:
  void raw(void* data, std::size_t size) {
    if (size && std::fread(data, 1, size, file_) != size)
      throw std::runtime_error("short read");
  }
  std::FILE* file_;
};

}  // namespace weakkeys::core

// Minimal binary file I/O used by the corpus and factor-result caches and
// the coordinator's task checkpoint journal.
// Fixed-width little-endian integers (we only target little-endian hosts;
// the cache is a local artifact, not an interchange format).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace weakkeys::core {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a buffer.
/// Bitwise implementation — all callers checksum kilobytes, not gigabytes.
inline std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    crc ^= data[i];
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xedb88320u : 0u);
    }
  }
  return ~crc;
}

inline std::uint32_t crc32(const std::vector<std::uint8_t>& data) {
  return crc32(data.data(), data.size());
}

class BinaryWriter {
 public:
  enum class Mode { kTruncate, kAppend };

  explicit BinaryWriter(const std::string& path, Mode mode = Mode::kTruncate)
      : file_(std::fopen(path.c_str(),
                         mode == Mode::kAppend ? "ab" : "wb")) {
    if (!file_) throw std::runtime_error("cannot open for write: " + path);
  }
  ~BinaryWriter() {
    if (file_) std::fclose(file_);
  }
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void bytes(const std::vector<std::uint8_t>& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b.data(), b.size());
  }

  /// Pushes buffered bytes to the OS — a journal record is durable against
  /// the *process* dying once flushed (the crash model the coordinator
  /// checkpoints against; machine-level durability would need fsync).
  void flush() { std::fflush(file_); }

 private:
  void raw(const void* data, std::size_t size) {
    if (size && std::fwrite(data, 1, size, file_) != size)
      throw std::runtime_error("short write");
  }
  std::FILE* file_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path)
      : file_(std::fopen(path.c_str(), "rb")) {}
  ~BinaryReader() {
    if (file_) std::fclose(file_);
  }
  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  [[nodiscard]] bool ok() const { return file_ != nullptr; }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::int64_t i64() {
    std::int64_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    std::string s(n, '\0');
    raw(s.data(), n);
    return s;
  }
  std::vector<std::uint8_t> bytes() {
    const std::uint32_t n = u32();
    std::vector<std::uint8_t> b(n);
    raw(b.data(), n);
    return b;
  }

 private:
  void raw(void* data, std::size_t size) {
    if (size && std::fread(data, 1, size, file_) != size)
      throw std::runtime_error("short read");
  }
  std::FILE* file_;
};

/// BinaryWriter's API over an in-memory buffer — used to serialize a record
/// before CRC-guarding it (the checksum needs the exact byte image).
class BufferWriter {
 public:
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void bytes(const std::vector<std::uint8_t>& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b.data(), b.size());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }

 private:
  void raw(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }
  std::vector<std::uint8_t> buf_;
};

/// BinaryReader's API over an in-memory buffer. Throws std::runtime_error
/// on reads past the end (truncated/garbage records fail cleanly).
class BufferReader {
 public:
  explicit BufferReader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::int64_t i64() {
    std::int64_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    std::string s(n, '\0');
    raw(s.data(), n);
    return s;
  }
  std::vector<std::uint8_t> bytes() {
    const std::uint32_t n = u32();
    std::vector<std::uint8_t> b(n);
    raw(b.data(), n);
    return b;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == buf_.size(); }

 private:
  void raw(void* data, std::size_t size) {
    if (size > buf_.size() - pos_) throw std::runtime_error("short read");
    std::memcpy(data, buf_.data() + pos_, size);
    pos_ += size;
  }
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

/// Reads a whole file; nullopt when it cannot be opened.
inline std::optional<std::vector<std::uint8_t>> read_file_bytes(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return std::nullopt;
  std::vector<std::uint8_t> out;
  std::uint8_t chunk[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(chunk, 1, sizeof chunk, f);
    out.insert(out.end(), chunk, chunk + n);
    if (n < sizeof chunk) break;
  }
  std::fclose(f);
  return out;
}

/// Footer guarding a finished cache file against truncation and bit flips:
/// the last 12 bytes are {u64 payload_size, u32 crc32(payload)}.
inline constexpr std::size_t kChecksumFooterSize = 12;

/// Appends the checksum footer over the file's current contents.
inline void append_checksum_footer(const std::string& path) {
  const auto payload = read_file_bytes(path);
  if (!payload) throw std::runtime_error("cannot read for footer: " + path);
  BinaryWriter w(path, BinaryWriter::Mode::kAppend);
  w.u64(payload->size());
  w.u32(crc32(*payload));
}

/// True iff `path` ends with a footer whose size and CRC match the payload
/// preceding it — i.e. the file is complete and uncorrupted.
inline bool verify_checksum_footer(const std::string& path) {
  const auto file = read_file_bytes(path);
  if (!file || file->size() < kChecksumFooterSize) return false;
  const std::size_t payload_size = file->size() - kChecksumFooterSize;
  const std::vector<std::uint8_t> footer(file->begin() + static_cast<std::ptrdiff_t>(payload_size),
                                         file->end());
  BufferReader r(footer);
  if (r.u64() != payload_size) return false;
  return r.u32() == crc32(file->data(), payload_size);
}

}  // namespace weakkeys::core

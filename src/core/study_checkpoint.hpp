// Generation-stamped end-to-end run checkpoint ("WKC1").
//
// The corpus cache, the coordinator's gcdckpt journal, and the factor cache
// each make *their* stage resumable; this small record ties them together
// into one crash-safe run ledger: which pipeline stage last completed, under
// exactly which configuration, and how many times the checkpoint has been
// advanced (the generation — a resumed run continues the count, so tests
// can assert "only unfinished stages re-executed" from the metrics alone).
//
// The file is tiny, CRC-guarded like every other cache artifact, and always
// published with an atomic tmp+rename write: a SIGKILL mid-save leaves
// either the previous generation or the new one, never a torn file.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace weakkeys::core {

/// Pipeline stages in completion order. A checkpoint's stage is the last
/// stage that fully completed (kInit = nothing has).
enum class StudyStage : std::uint32_t {
  kInit = 0,      ///< run started, nothing completed
  kIngested = 1,  ///< corpus built/loaded, noise applied, ingest done
  kFactored = 2,  ///< batch GCD + divisor classification done
  kDone = 3,      ///< fingerprinting done — the run finished
};

const char* to_string(StudyStage s);

/// The configuration identity a checkpoint binds to. Any mismatch on load
/// invalidates the checkpoint (resuming under a different seed, scale, or
/// noise schedule would silently mix corpora).
struct StudyCheckpointKey {
  std::uint64_t seed = 0;
  std::uint64_t scale_millionths = 0;
  std::uint32_t mr_rounds = 0;
  std::uint32_t catalog_version = 0;
  std::uint64_t noise_fingerprint = 0;
  std::uint32_t subsets = 0;
  std::uint32_t fault_tolerant = 0;

  friend bool operator==(const StudyCheckpointKey&,
                         const StudyCheckpointKey&) = default;
};

struct StudyCheckpoint {
  StudyCheckpointKey key;
  /// Monotonic save counter across the run *and* its resumes.
  std::uint64_t generation = 0;
  StudyStage stage = StudyStage::kInit;
};

/// Atomically writes `cp` (tmp + fsync + rename, CRC-footered). Throws
/// std::runtime_error on I/O failure.
void save_study_checkpoint(const StudyCheckpoint& cp, const std::string& path);

/// Loads and validates the checkpoint at `path`; nullopt when the file is
/// missing, torn, corrupt, from another format version, or bound to a
/// different configuration than `key`. Never throws.
std::optional<StudyCheckpoint> load_study_checkpoint(
    const StudyCheckpointKey& key, const std::string& path);

}  // namespace weakkeys::core

// Binary persistence for scan datasets.
//
// The paper kept 1.5B host records in MySQL behind a 6TB SSD cache; our
// equivalent is a compact single-file store so the expensive corpus
// simulation runs once and every table/figure binary reloads it. Certificates
// are stored once (TLV-encoded) and referenced by index from records.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "netsim/dataset.hpp"

namespace weakkeys::core {

/// Identifies the configuration a store was built from; a mismatch on load
/// forces a rebuild.
struct StoreKey {
  std::uint64_t seed = 0;
  std::uint64_t scale_millionths = 0;
  std::uint32_t mr_rounds = 0;
  std::uint32_t catalog_version = 0;

  friend bool operator==(const StoreKey&, const StoreKey&) = default;
};

/// Why a load_dataset() call did not (or did) produce a dataset. Surfaced
/// through the Study progress log so cache rebuilds are attributable
/// instead of silent.
enum class DatasetLoadStatus {
  kLoaded,       ///< cache hit
  kMissing,      ///< file absent or unreadable
  kBadChecksum,  ///< length+CRC footer absent or wrong (truncation/bit rot)
  kBadMagic,     ///< not a scan-store file
  kKeyMismatch,  ///< built from a different seed/scale/version
  kParseError,   ///< framing/content failed to parse
};

const char* to_string(DatasetLoadStatus s);

/// Writes `dataset` to `path`, guarded by a length+CRC-32 footer. Records
/// holding only raw (undecoded) bytes are quarantine input, not corpus, and
/// are not persisted. Throws std::runtime_error on I/O failure.
void save_dataset(const netsim::ScanDataset& dataset, const StoreKey& key,
                  const std::string& path);

/// Loads a dataset if `path` exists, passes the checksum, parses, and
/// matches `key`; nullopt otherwise — never throws for a stale, truncated,
/// or corrupt cache. When `status` is non-null it receives the outcome.
std::optional<netsim::ScanDataset> load_dataset(
    const StoreKey& key, const std::string& path,
    DatasetLoadStatus* status = nullptr);

}  // namespace weakkeys::core

// Binary persistence for scan datasets.
//
// The paper kept 1.5B host records in MySQL behind a 6TB SSD cache; our
// equivalent is a compact single-file store so the expensive corpus
// simulation runs once and every table/figure binary reloads it. Certificates
// are stored once (TLV-encoded) and referenced by index from records.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "netsim/dataset.hpp"

namespace weakkeys::core {

/// Identifies the configuration a store was built from; a mismatch on load
/// forces a rebuild.
struct StoreKey {
  std::uint64_t seed = 0;
  std::uint64_t scale_millionths = 0;
  std::uint32_t mr_rounds = 0;
  std::uint32_t catalog_version = 0;

  friend bool operator==(const StoreKey&, const StoreKey&) = default;
};

/// Why a load_dataset() call did not (or did) produce a dataset. Surfaced
/// through the Study progress log so cache rebuilds are attributable
/// instead of silent.
enum class DatasetLoadStatus {
  kLoaded,       ///< cache hit
  kMissing,      ///< file absent or unreadable
  kBadChecksum,  ///< length+CRC footer absent or wrong (truncation/bit rot)
  kBadMagic,     ///< not a scan-store file
  kKeyMismatch,  ///< built from a different seed/scale/version
  kParseError,   ///< framing/content failed to parse
};

const char* to_string(DatasetLoadStatus s);

/// Writes `dataset` to `path`, guarded by a length+CRC-32 footer. Records
/// holding only raw (undecoded) bytes are quarantine input, not corpus, and
/// are not persisted. Throws std::runtime_error on I/O failure.
void save_dataset(const netsim::ScanDataset& dataset, const StoreKey& key,
                  const std::string& path);

/// Loads a dataset if `path` exists, passes the checksum, parses, and
/// matches `key`; nullopt otherwise — never throws for a stale, truncated,
/// or corrupt cache. When `status` is non-null it receives the outcome.
std::optional<netsim::ScanDataset> load_dataset(
    const StoreKey& key, const std::string& path,
    DatasetLoadStatus* status = nullptr);

// -- Sharded store (10^6-host corpora) -------------------------------------
//
// One multi-GB cache file serializes the whole corpus through a single
// writer and a single reader. The sharded variant splits the *records* of
// every snapshot round-robin across N shard files ("<path>.shard<i>", each
// individually CRC-footed and atomically published), so emission and ingest
// parallelize per shard and a torn shard invalidates 1/N of the corpus
// bytes, not all of them. Record j (among a snapshot's cert-bearing
// records, in emission order) lands in shard j % N — ingest interleaves the
// shards back, so the reconstructed dataset holds its records in exactly
// the single-file order and every downstream study result is
// byte-identical to the single-file path.

/// Path of shard `index` of a sharded store rooted at `path`.
[[nodiscard]] std::string shard_path(const std::string& path,
                                     std::uint32_t index);

/// Writes `dataset` as `shards` round-robin shard files. `shards` <= 1
/// degrades to save_dataset() on the plain path. Throws std::runtime_error
/// on I/O failure.
void save_dataset_sharded(const netsim::ScanDataset& dataset,
                          const StoreKey& key, const std::string& path,
                          std::uint32_t shards);

/// Streaming *emission* into a sharded store: feed snapshots one at a time
/// (e.g. straight from netsim::SimConfig::snapshot_sink) and at most one
/// snapshot's records are in flight — a 10^6-host corpus is generated and
/// persisted without ever materializing a ScanDataset. Records stream to
/// per-shard temp files as they arrive; finish() prepends each shard's
/// header + certificate table and publishes atomically, so a crash
/// mid-emission leaves only temp files, never a torn shard. Snapshots are
/// stored in the order fed; feed them in the order you want ingest to
/// replay. Output is byte-identical to save_dataset_sharded() of the same
/// snapshots in the same order.
class ShardedDatasetWriter {
 public:
  /// Throws std::runtime_error if the temp record files cannot open.
  ShardedDatasetWriter(const StoreKey& key, const std::string& path,
                       std::uint32_t shards);
  /// Discards temp files if finish() was never reached.
  ~ShardedDatasetWriter();
  ShardedDatasetWriter(const ShardedDatasetWriter&) = delete;
  ShardedDatasetWriter& operator=(const ShardedDatasetWriter&) = delete;

  /// Appends one snapshot's cert-bearing records round-robin across the
  /// shards. Certificate handles are retained (for the dedup table);
  /// record storage is not.
  void add_snapshot(const netsim::ScanSnapshot& snap);

  /// Seals and atomically publishes every shard file. No further
  /// add_snapshot() calls afterwards. Throws std::runtime_error on I/O
  /// failure (temp files are cleaned up by the destructor).
  void finish();

 private:
  struct Shard;
  StoreKey key_;
  std::string path_;
  std::vector<Shard> shards_;
  std::uint32_t snap_count_ = 0;
  bool finished_ = false;
};

/// Streaming (iterator-style) ingest over a sharded store: snapshots and
/// records are visited in exactly the original dataset order without
/// materializing the whole corpus. `snapshot_cb` fires once per snapshot
/// (its `records` vector is empty — metadata only), then `record_cb` once
/// per record of that snapshot. Shard count is discovered from shard 0.
/// Any missing/corrupt/stale shard fails the whole ingest (no partial
/// corpora), reported through the returned status; callbacks already fired
/// are the caller's to discard.
DatasetLoadStatus ingest_dataset_sharded(
    const StoreKey& key, const std::string& path,
    const std::function<void(const netsim::ScanSnapshot&)>& snapshot_cb,
    const std::function<void(netsim::HostRecord&&)>& record_cb);

/// Materializing wrapper over ingest_dataset_sharded(): the sharded
/// counterpart of load_dataset(), same cache-miss semantics.
std::optional<netsim::ScanDataset> load_dataset_sharded(
    const StoreKey& key, const std::string& path,
    DatasetLoadStatus* status = nullptr);

}  // namespace weakkeys::core

// Binary persistence for scan datasets.
//
// The paper kept 1.5B host records in MySQL behind a 6TB SSD cache; our
// equivalent is a compact single-file store so the expensive corpus
// simulation runs once and every table/figure binary reloads it. Certificates
// are stored once (TLV-encoded) and referenced by index from records.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "netsim/dataset.hpp"

namespace weakkeys::core {

/// Identifies the configuration a store was built from; a mismatch on load
/// forces a rebuild.
struct StoreKey {
  std::uint64_t seed = 0;
  std::uint64_t scale_millionths = 0;
  std::uint32_t mr_rounds = 0;
  std::uint32_t catalog_version = 0;

  friend bool operator==(const StoreKey&, const StoreKey&) = default;
};

/// Writes `dataset` to `path`. Throws std::runtime_error on I/O failure.
void save_dataset(const netsim::ScanDataset& dataset, const StoreKey& key,
                  const std::string& path);

/// Loads a dataset if `path` exists, parses, and matches `key`; nullopt
/// otherwise (including on version/key mismatch — never throws for a stale
/// or missing cache).
std::optional<netsim::ScanDataset> load_dataset(const StoreKey& key,
                                                const std::string& path);

}  // namespace weakkeys::core

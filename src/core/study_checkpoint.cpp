#include "core/study_checkpoint.hpp"

#include "core/binary_io.hpp"
#include "util/atomic_file.hpp"

namespace weakkeys::core {

namespace {
constexpr std::uint32_t kStudyCheckpointMagic = 0x574b4331;  // "WKC1"
}  // namespace

const char* to_string(StudyStage s) {
  switch (s) {
    case StudyStage::kInit:
      return "init";
    case StudyStage::kIngested:
      return "ingested";
    case StudyStage::kFactored:
      return "factored";
    case StudyStage::kDone:
      return "done";
  }
  return "unknown";
}

void save_study_checkpoint(const StudyCheckpoint& cp, const std::string& path) {
  BufferWriter w;
  w.u32(kStudyCheckpointMagic);
  w.u64(cp.key.seed);
  w.u64(cp.key.scale_millionths);
  w.u32(cp.key.mr_rounds);
  w.u32(cp.key.catalog_version);
  w.u64(cp.key.noise_fingerprint);
  w.u32(cp.key.subsets);
  w.u32(cp.key.fault_tolerant);
  w.u64(cp.generation);
  w.u32(static_cast<std::uint32_t>(cp.stage));

  // Same {u64 size, u32 crc} footer every other cache artifact carries.
  std::vector<std::uint8_t> file = w.data();
  BufferWriter footer;
  footer.u64(file.size());
  footer.u32(crc32(file));
  file.insert(file.end(), footer.data().begin(), footer.data().end());
  util::atomic_write_file(path, file);
}

std::optional<StudyCheckpoint> load_study_checkpoint(
    const StudyCheckpointKey& key, const std::string& path) {
  const auto file = read_file_bytes(path);
  if (!file || file->size() < kChecksumFooterSize) return std::nullopt;
  const std::size_t payload_size = file->size() - kChecksumFooterSize;
  try {
    {
      const std::vector<std::uint8_t> tail(
          file->begin() + static_cast<std::ptrdiff_t>(payload_size),
          file->end());
      BufferReader f(tail);
      if (f.u64() != payload_size) return std::nullopt;
      if (f.u32() != crc32(file->data(), payload_size)) return std::nullopt;
    }
    const std::vector<std::uint8_t> payload(
        file->begin(),
        file->begin() + static_cast<std::ptrdiff_t>(payload_size));
    BufferReader r(payload);
    if (r.u32() != kStudyCheckpointMagic) return std::nullopt;
    StudyCheckpoint cp;
    cp.key.seed = r.u64();
    cp.key.scale_millionths = r.u64();
    cp.key.mr_rounds = r.u32();
    cp.key.catalog_version = r.u32();
    cp.key.noise_fingerprint = r.u64();
    cp.key.subsets = r.u32();
    cp.key.fault_tolerant = r.u32();
    cp.generation = r.u64();
    const std::uint32_t stage = r.u32();
    if (stage > static_cast<std::uint32_t>(StudyStage::kDone)) {
      return std::nullopt;
    }
    cp.stage = static_cast<StudyStage>(stage);
    if (!(cp.key == key)) return std::nullopt;
    return cp;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace weakkeys::core

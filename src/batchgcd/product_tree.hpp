// Product tree (Bernstein): computes the product of n inputs as a binary
// tree, keeping every level. The remainder tree walks the levels back down.
//
// The whole tree is held in RAM — the paper's key optimization over the
// original factorable.net code, which spilled levels to disk (Section 3.2).
// The per-level byte census recorded at build time (level_stats(),
// publish_level_stats()) is the measurement that will decide where the
// out-of-core split points go when corpus-scale trees stop fitting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bn/bigint.hpp"
#include "util/tracked_arena.hpp"

namespace weakkeys::obs {
class MetricsRegistry;
}

namespace weakkeys::batchgcd {

class ProductTree {
 public:
  /// Retained storage for one level: node count and exact payload bytes
  /// (limb_count * 8 summed over the level's nodes), recorded when the
  /// level is built.
  struct LevelStats {
    std::size_t nodes = 0;
    std::uint64_t bytes = 0;
  };

  /// Builds the tree over `inputs` (level 0 = the inputs themselves).
  /// An empty input set yields a tree whose root is 1. When `arena` is
  /// non-null each level's retained bytes are charged to it as the level
  /// completes and released on destruction, so the arena peak equals the
  /// sum of level_stats() bytes by construction.
  explicit ProductTree(std::span<const bn::BigInt> inputs,
                       util::TrackedArena* arena = nullptr);
  ~ProductTree();
  ProductTree(const ProductTree&) = delete;
  ProductTree& operator=(const ProductTree&) = delete;
  ProductTree(ProductTree&& other) noexcept;
  ProductTree& operator=(ProductTree&& other) noexcept;

  [[nodiscard]] std::size_t leaf_count() const {
    return levels_.empty() ? 0 : levels_.front().size();
  }

  /// The product of all inputs (1 for an empty tree).
  [[nodiscard]] const bn::BigInt& root() const;

  /// levels()[0] are the leaves; levels().back() is {root}.
  [[nodiscard]] const std::vector<std::vector<bn::BigInt>>& levels() const {
    return levels_;
  }

  /// Per-level byte/node census, index-aligned with levels().
  [[nodiscard]] const std::vector<LevelStats>& level_stats() const {
    return level_stats_;
  }

  /// Sum of level_stats() bytes — the tree's exact retained payload.
  [[nodiscard]] std::uint64_t retained_bytes() const;

  /// Mirrors the census into `registry`:
  /// `batchgcd.product_tree.level<k>.bytes` / `.nodes` gauges per level
  /// plus `batchgcd.product_tree.bytes_peak` (= retained_bytes(), the
  /// arena peak when the tree was built against a fresh arena).
  void publish_level_stats(obs::MetricsRegistry& registry) const;

  /// Total storage across all levels, in limbs (the paper reports 70-100 GB
  /// per cluster node at full scale; this is the equivalent metric here).
  [[nodiscard]] std::size_t total_limbs() const;

  /// Size of the largest node, in limbs — the central-bottleneck metric the
  /// distributed variant exists to shrink.
  [[nodiscard]] std::size_t max_node_limbs() const;

 private:
  std::vector<std::vector<bn::BigInt>> levels_;
  std::vector<LevelStats> level_stats_;
  util::TrackedArena* arena_ = nullptr;
  bn::BigInt one_{1};
};

}  // namespace weakkeys::batchgcd

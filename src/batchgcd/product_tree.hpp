// Product tree (Bernstein): computes the product of n inputs as a binary
// tree, keeping every level. The remainder tree walks the levels back down.
//
// The whole tree is held in RAM — the paper's key optimization over the
// original factorable.net code, which spilled levels to disk (Section 3.2).
#pragma once

#include <span>
#include <vector>

#include "bn/bigint.hpp"

namespace weakkeys::batchgcd {

class ProductTree {
 public:
  /// Builds the tree over `inputs` (level 0 = the inputs themselves).
  /// An empty input set yields a tree whose root is 1.
  explicit ProductTree(std::span<const bn::BigInt> inputs);

  [[nodiscard]] std::size_t leaf_count() const {
    return levels_.empty() ? 0 : levels_.front().size();
  }

  /// The product of all inputs (1 for an empty tree).
  [[nodiscard]] const bn::BigInt& root() const;

  /// levels()[0] are the leaves; levels().back() is {root}.
  [[nodiscard]] const std::vector<std::vector<bn::BigInt>>& levels() const {
    return levels_;
  }

  /// Total storage across all levels, in limbs (the paper reports 70-100 GB
  /// per cluster node at full scale; this is the equivalent metric here).
  [[nodiscard]] std::size_t total_limbs() const;

  /// Size of the largest node, in limbs — the central-bottleneck metric the
  /// distributed variant exists to shrink.
  [[nodiscard]] std::size_t max_node_limbs() const;

 private:
  std::vector<std::vector<bn::BigInt>> levels_;
  bn::BigInt one_{1};
};

}  // namespace weakkeys::batchgcd

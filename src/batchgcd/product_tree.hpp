// Product tree (Bernstein): computes the product of n inputs as a binary
// tree, keeping every level. The remainder tree walks the levels back down.
//
// Levels live behind the LevelStore abstraction (level_store.hpp). The
// default backend holds the whole tree in RAM — the paper's key
// optimization over the original factorable.net code, which spilled levels
// to disk (Section 3.2). At corpus scale (10^6+ moduli) the tree stops
// fitting and the TreeStorage-configured build spills each level to a
// CRC-framed, generation-stamped file instead, streaming with a bounded
// resident window — factorable.net's disk tier, rebuilt on this codebase's
// crash- and corruption-safety conventions (see spill_store.hpp). The
// per-level byte census (level_stats(), publish_level_stats()) is recorded
// identically by both backends.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "batchgcd/level_store.hpp"
#include "bn/bigint.hpp"
#include "util/tracked_arena.hpp"

namespace weakkeys::obs {
class MetricsRegistry;
}

namespace weakkeys::batchgcd {

class ProductTree {
 public:
  using LevelStats = batchgcd::LevelStats;

  /// Builds the tree over `inputs` (level 0 = the inputs themselves),
  /// entirely in RAM. An empty input set yields a tree whose root is 1.
  /// When `arena` is non-null each level's retained bytes are charged to
  /// it as the level completes and released on destruction, so the arena
  /// peak equals the sum of level_stats() bytes by construction.
  explicit ProductTree(std::span<const bn::BigInt> inputs,
                       util::TrackedArena* arena = nullptr);

  /// Builds through `storage`: when the policy says spill (spill_dir set
  /// and the estimated tree size reaches the threshold), levels go to disk
  /// and only storage.max_resident_levels stay in memory — and a build
  /// interrupted by SIGKILL resumes from the published levels on the next
  /// run. Otherwise identical to the in-RAM constructor. With an `arena`,
  /// the spilling backend charges only its resident window, which is the
  /// bounded-peak-memory proof. Throws util::StorageError when storage
  /// fails beyond the degradation ladder.
  ProductTree(std::span<const bn::BigInt> inputs, const TreeStorage& storage,
              util::TrackedArena* arena = nullptr);

  ~ProductTree() = default;
  ProductTree(const ProductTree&) = delete;
  ProductTree& operator=(const ProductTree&) = delete;
  ProductTree(ProductTree&&) noexcept = default;
  ProductTree& operator=(ProductTree&&) noexcept = default;

  [[nodiscard]] std::size_t leaf_count() const {
    const auto& stats = store_->level_stats();
    return stats.empty() ? 0 : stats.front().nodes;
  }

  /// The product of all inputs (1 for an empty tree). Cached at build
  /// time, so it is available without touching storage.
  [[nodiscard]] const bn::BigInt& root() const { return root_; }

  /// Number of levels (0 for an empty tree).
  [[nodiscard]] std::size_t level_count() const {
    return store_->level_stats().size();
  }

  /// The level storage. The remainder tree streams levels through this
  /// (load, walk, release) so it works identically over both backends.
  [[nodiscard]] LevelStore& store() const { return *store_; }

  /// True when this tree's levels live on disk.
  [[nodiscard]] bool spilled() const { return store_->spilled(); }

  /// levels()[0] are the leaves; levels().back() is {root}. Only valid for
  /// the in-RAM backend (throws std::logic_error on a spilled tree) — the
  /// streaming callers use store() instead.
  [[nodiscard]] const std::vector<Level>& levels() const;

  /// Per-level byte/node census, index-aligned with the levels.
  [[nodiscard]] const std::vector<LevelStats>& level_stats() const {
    return store_->level_stats();
  }

  /// Sum of level_stats() bytes — the tree's exact payload (on disk plus
  /// in RAM for a spilled tree).
  [[nodiscard]] std::uint64_t retained_bytes() const;

  /// Mirrors the census into `registry`:
  /// `batchgcd.product_tree.level<k>.bytes` / `.nodes` gauges per level
  /// plus `batchgcd.product_tree.bytes_peak` (= retained_bytes(), the
  /// arena peak when an in-RAM tree was built against a fresh arena).
  void publish_level_stats(obs::MetricsRegistry& registry) const;

  /// Total storage across all levels, in limbs (the paper reports 70-100 GB
  /// per cluster node at full scale; this is the equivalent metric here).
  [[nodiscard]] std::size_t total_limbs() const {
    return retained_bytes() / 8;
  }

  /// Size of the largest node, in limbs — the central-bottleneck metric the
  /// distributed variant exists to shrink. The root is always the largest
  /// node (it is the product of every other one).
  [[nodiscard]] std::size_t max_node_limbs() const {
    return root_.limb_count() * (level_count() > 0 ? 1 : 0);
  }

 private:
  void build(std::span<const bn::BigInt> inputs);

  std::unique_ptr<LevelStore> store_;
  bn::BigInt root_{1};
};

/// Estimated retained bytes of a product tree over `inputs`: input bytes
/// times the level count. The spill policy compares this against
/// TreeStorage::spill_threshold_bytes before the build starts.
[[nodiscard]] std::uint64_t estimate_tree_bytes(
    std::span<const bn::BigInt> inputs);

}  // namespace weakkeys::batchgcd

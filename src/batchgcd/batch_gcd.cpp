#include "batchgcd/batch_gcd.hpp"

#include "batchgcd/product_tree.hpp"
#include "batchgcd/remainder_tree.hpp"

namespace weakkeys::batchgcd {

using bn::BigInt;

std::vector<std::size_t> BatchGcdResult::vulnerable_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < divisors.size(); ++i) {
    if (divisors[i] > BigInt(1)) out.push_back(i);
  }
  return out;
}

BatchGcdResult batch_gcd(std::span<const BigInt> moduli,
                         const util::CancellationToken* cancel,
                         const TreeStorage* storage) {
  BatchGcdResult result;
  result.divisors.resize(moduli.size());
  if (moduli.empty()) return result;

  if (cancel) cancel->throw_if_cancelled();
  const ProductTree tree = storage != nullptr
                               ? ProductTree(moduli, *storage)
                               : ProductTree(moduli);
  if (cancel) cancel->throw_if_cancelled();
  const std::vector<BigInt> rem = remainder_tree_squares(tree, tree.root());
  for (std::size_t i = 0; i < moduli.size(); ++i) {
    if (cancel && (i % 64) == 0) cancel->throw_if_cancelled();
    // rem[i] = P mod N_i^2 = N_i * ((P/N_i) mod N_i), so the division is
    // exact and yields (P/N_i) mod N_i directly.
    result.divisors[i] = bn::gcd(moduli[i], rem[i] / moduli[i]);
  }
  return result;
}

BatchGcdResult naive_pairwise_gcd(std::span<const BigInt> moduli) {
  BatchGcdResult result;
  result.divisors.assign(moduli.size(), BigInt(1));
  const BigInt one(1);
  for (std::size_t i = 0; i < moduli.size(); ++i) {
    for (std::size_t j = i + 1; j < moduli.size(); ++j) {
      const BigInt g = bn::gcd(moduli[i], moduli[j]);
      if (g == one) continue;
      // Accumulate shared factors exactly as the tree formulation does:
      // d_i = gcd(N_i, prod of everything shared).
      result.divisors[i] = bn::gcd(moduli[i], result.divisors[i] * g);
      result.divisors[j] = bn::gcd(moduli[j], result.divisors[j] * g);
    }
  }
  return result;
}

std::optional<Factorization> recover_factors(const BigInt& n,
                                             const BigInt& divisor) {
  if (divisor <= BigInt(1) || divisor >= n) return std::nullopt;
  const auto [q, r] = bn::BigInt::divmod(n, divisor);
  if (!r.is_zero()) return std::nullopt;  // not actually a divisor
  return Factorization{divisor, q};
}

}  // namespace weakkeys::batchgcd

// The CRC-guarded resume journal for (product x subset) remainder-tree
// tasks, shared by the in-process coordinator and the multi-process cluster
// coordinator. One on-disk format means a factoring run started under one
// coordinator resumes cleanly under the other — the journal, not the
// execution engine, is the commit log.
//
// Layout (fixed-width little-endian, see core/binary_io.hpp):
//
//   u32 magic "WKCP" | u32 version | u64 corpus fingerprint | u32 total
//   repeated records: bytes payload | u32 crc32(payload)
//     payload: u32 task | u32 claim-count | {u32 leaf, bytes divisor}*
//
// Every append is flushed, so a record is durable against the process
// dying once append() returns. open() replays the valid committed prefix
// (stopping at the first CRC/framing failure — a torn tail from a crash
// mid-append) and then rewrites the file to exactly that prefix through a
// tmp+rename publish, so a crash during the rewrite itself cannot destroy
// the resume point either.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bn/bigint.hpp"

namespace weakkeys::core {
class BinaryWriter;
}

namespace weakkeys::batchgcd {

/// One nontrivial divisor claimed by a task: `leaf` indexes into the
/// task's subset.
struct TaskClaim {
  std::uint32_t leaf = 0;
  bn::BigInt divisor;
};

/// Identity of (moduli, k) a journal belongs to; FNV-1a over the input
/// bytes. A mismatch on open discards the journal and starts fresh.
std::uint64_t corpus_fingerprint(std::span<const bn::BigInt> moduli,
                                 std::size_t k);

class TaskJournal {
 public:
  TaskJournal();
  ~TaskJournal();
  TaskJournal(const TaskJournal&) = delete;
  TaskJournal& operator=(const TaskJournal&) = delete;

  /// Validates and folds in one replayed record; returns true when the
  /// record was fresh and correct (it is then preserved by the rewrite),
  /// false for duplicates, out-of-range tasks/leaves, or divisors that
  /// fail verification. Must not throw.
  using ApplyFn =
      std::function<bool(std::uint32_t task, std::vector<TaskClaim>&& claims)>;

  /// Opens `path` for a run identified by (fingerprint, total_tasks):
  /// replays the valid committed prefix through `apply`, rewrites the file
  /// to exactly the accepted records, and leaves it open for append().
  /// Returns the number of records accepted by `apply`. Throws
  /// std::runtime_error when the journal cannot be (re)written.
  std::size_t open(const std::string& path, std::uint64_t fingerprint,
                   std::uint32_t total_tasks, const ApplyFn& apply);

  /// Appends one committed task and flushes. No-op when not open.
  void append(std::uint32_t task, const std::vector<TaskClaim>& claims);

  /// Flushes and closes the file; the journal stays on disk as the resume
  /// point. Idempotent.
  void close();

  /// Closes and deletes the journal (the factor cache supersedes it).
  void remove();

  [[nodiscard]] bool is_open() const { return writer_ != nullptr; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::unique_ptr<core::BinaryWriter> writer_;
};

}  // namespace weakkeys::batchgcd

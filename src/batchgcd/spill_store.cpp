#include "batchgcd/spill_store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"

#if !defined(_WIN32)
#include <sys/stat.h>
#include <sys/types.h>
#endif

namespace weakkeys::batchgcd {

namespace {

using util::SpillFileStatus;
using util::StorageError;
using util::StorageErrorKind;

/// Best-effort mkdir -p: the spill dir is scratch space, and a failure
/// here surfaces as a StorageError from the first write, with a better
/// message than mkdir could give.
void make_dirs(const std::string& dir) {
#if !defined(_WIN32)
  std::string prefix;
  prefix.reserve(dir.size());
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i == dir.size() || dir[i] == '/') {
      if (!prefix.empty() && prefix != "/") {
        ::mkdir(prefix.c_str(), 0777);
      }
    }
    if (i < dir.size()) prefix.push_back(dir[i]);
  }
#else
  (void)dir;
#endif
}

void serialize_node(const bn::BigInt& node, std::vector<std::uint8_t>& out) {
  const auto limbs = node.limbs();
  out.resize(limbs.size() * sizeof(bn::Limb));
  if (!limbs.empty()) {
    std::memcpy(out.data(), limbs.data(), out.size());
  }
}

bool deserialize_node(const std::vector<std::uint8_t>& record,
                      bn::BigInt* out) {
  if (record.size() % sizeof(bn::Limb) != 0) return false;
  std::vector<bn::Limb> limbs(record.size() / sizeof(bn::Limb));
  if (!limbs.empty()) {
    std::memcpy(limbs.data(), record.data(), record.size());
  }
  *out = bn::BigInt::from_limbs(std::move(limbs));
  return true;
}

}  // namespace

SpillLevelStore::SpillLevelStore(const TreeStorage& storage,
                                 std::function<Level()> rebuild_leaves)
    : config_(storage),
      rebuild_leaves_(std::move(rebuild_leaves)),
      window_(storage.max_resident_levels > 0 ? storage.max_resident_levels
                                              : 1) {
  if (config_.spill_dir.empty()) {
    throw std::logic_error("SpillLevelStore requires a spill_dir");
  }
  if (config_.generation == 0) {
    throw std::logic_error("SpillLevelStore requires a nonzero generation");
  }
  make_dirs(config_.spill_dir);
  if (config_.registry != nullptr) {
    obs::MetricsRegistry& r = *config_.registry;
    metrics_.bytes_written = &r.counter("spill.bytes_written");
    metrics_.bytes_read = &r.counter("spill.bytes_read");
    metrics_.levels_spilled = &r.counter("spill.levels_spilled");
    metrics_.levels_resumed = &r.counter("spill.levels_resumed");
    metrics_.verify_failures = &r.counter("spill.verify_failures");
    metrics_.heals = &r.counter("spill.heals");
    metrics_.rebuilds = &r.counter("spill.rebuilds");
    metrics_.write_retries = &r.counter("spill.write_retries");
    metrics_.window_shrinks = &r.counter("spill.window_shrinks");
    metrics_.enospc = &r.counter("spill.enospc");
    metrics_.degraded_levels = &r.counter("spill.degraded_levels");
    metrics_.resident_levels = &r.gauge("spill.resident_levels");
    metrics_.resident_bytes_gauge = &r.gauge("spill.resident_bytes");
    metrics_.resident_bytes_peak = &r.gauge("spill.resident_bytes_peak");
  }
  std::lock_guard lock(mu_);
  probe_resume_locked();
}

SpillLevelStore::~SpillLevelStore() {
  std::lock_guard lock(mu_);
  if (config_.arena != nullptr && arena_charged_ > 0) {
    config_.arena->release(arena_charged_);
  }
  if (config_.remove_on_destroy) {
    for (std::size_t k = 0; k < stats_.size(); ++k) {
      const std::string path = level_path(k);
      std::remove(path.c_str());
      std::remove((path + ".tmp").c_str());
    }
  }
}

std::string SpillLevelStore::level_path(std::size_t k) const {
  return config_.spill_dir + "/" + config_.base + ".L" + std::to_string(k) +
         ".wkl";
}

util::SpillIoHooks SpillLevelStore::hooks() const {
  return {config_.injector, config_.fault_stream, &op_seq_};
}

bool SpillLevelStore::degraded() const {
  std::lock_guard lock(mu_);
  return degraded_;
}

std::size_t SpillLevelStore::level_count() const {
  std::lock_guard lock(mu_);
  return stats_.size();
}

const std::vector<LevelStats>& SpillLevelStore::level_stats() const {
  return stats_;
}

std::uint64_t SpillLevelStore::resident_bytes() const {
  std::lock_guard lock(mu_);
  return resident_bytes_;
}

void SpillLevelStore::probe_resume_locked() {
  // A SIGKILL mid-build leaves levels 0..m published (atomic rename keeps
  // half-written files invisible) and possibly one torn ".tmp" for level
  // m+1 — sweep the tmps, trust the published prefix whose headers and
  // generation check out, and let the builder continue from there. Payload
  // corruption hides from the header probe but is caught (and healed) by
  // the full CRC verification on first load.
  for (std::size_t k = 0;; ++k) {
    util::SpillFileHeader header;
    const SpillFileStatus status =
        util::probe_spill_file(level_path(k), config_.generation, &header);
    if (status != SpillFileStatus::kOk) break;
    stats_.push_back(
        {static_cast<std::size_t>(header.record_count),
         header.payload_bytes - 4 * header.record_count});
    ++resumed_;
    if (metrics_.levels_resumed != nullptr) metrics_.levels_resumed->inc();
    if (header.record_count <= 1) break;  // complete tree
  }
  for (std::size_t k = 0; k < stats_.size() + 4; ++k) {
    std::remove((level_path(k) + ".tmp").c_str());
  }
}

void SpillLevelStore::write_level_locked(std::size_t k, const Level& nodes) {
  // Degradation ladder, disk rungs: (1) plain write; (2) shrink the
  // resident window to one level — frees both address space and, on
  // overlayed tmpfs scratch, actual pages — evict it, and retry once.
  // Rung 3 (RAM fallback) and rung 4 (clean cancel) live in the caller.
  for (int attempt = 0;; ++attempt) {
    try {
      util::SpillFileWriter writer(level_path(k), config_.generation,
                                   static_cast<std::uint32_t>(k), hooks());
      std::vector<std::uint8_t> buffer;
      for (const bn::BigInt& node : nodes) {
        serialize_node(node, buffer);
        writer.add_record(buffer.data(), buffer.size());
      }
      const std::uint64_t total = writer.finish();
      if (metrics_.bytes_written != nullptr) {
        metrics_.bytes_written->inc(total);
      }
      if (attempt > 0 && metrics_.write_retries != nullptr) {
        metrics_.write_retries->inc();
      }
      return;
    } catch (const StorageError& e) {
      if (e.kind() == StorageErrorKind::kEnospc &&
          metrics_.enospc != nullptr) {
        metrics_.enospc->inc();
      }
      if (attempt > 0) throw;
      if (metrics_.window_shrinks != nullptr) metrics_.window_shrinks->inc();
      window_ = 1;
      evict_excess_locked(0);
    }
  }
}

void SpillLevelStore::append_level(Level&& nodes) {
  std::lock_guard lock(mu_);
  const std::size_t k = stats_.size();
  const LevelStats stats = census_level(nodes);
  auto handle = std::make_shared<const Level>(std::move(nodes));
  stats_.push_back(stats);

  if (!degraded_) {
    try {
      write_level_locked(k, *handle);
      if (metrics_.levels_spilled != nullptr) metrics_.levels_spilled->inc();
      insert_resident_locked(k, handle);
      return;
    } catch (const StorageError&) {
      // Disk rungs exhausted: fall back to RAM for this and every
      // subsequent level (the disk is not coming back mid-build).
      degraded_ = true;
    }
  }

  pinned_[k] = handle;
  pinned_bytes_ += stats.bytes;
  resident_bytes_ += stats.bytes;
  if (config_.arena != nullptr) {
    config_.arena->charge(stats.bytes);
    arena_charged_ += stats.bytes;
  }
  if (metrics_.degraded_levels != nullptr) metrics_.degraded_levels->inc();
  update_gauges_locked();
  if (config_.ram_fallback_budget_bytes > 0 &&
      pinned_bytes_ > config_.ram_fallback_budget_bytes) {
    throw StorageError(
        StorageErrorKind::kExhausted,
        "spill degraded to RAM but the corpus does not fit the fallback "
        "budget (" +
            std::to_string(pinned_bytes_) + " > " +
            std::to_string(config_.ram_fallback_budget_bytes) + " bytes)");
  }
}

LevelHandle SpillLevelStore::load_level(std::size_t k) {
  std::lock_guard lock(mu_);
  if (k >= stats_.size()) {
    throw std::out_of_range("spill level out of range: " + std::to_string(k));
  }
  return load_locked(k);
}

LevelHandle SpillLevelStore::load_locked(std::size_t k) {
  if (const auto pinned = pinned_.find(k); pinned != pinned_.end()) {
    return pinned->second;
  }
  if (const auto it = resident_.find(k); it != resident_.end()) {
    lru_.remove(k);
    lru_.push_back(k);
    return it->second;
  }
  auto handle = std::make_shared<const Level>(read_or_heal_locked(k));
  insert_resident_locked(k, handle);
  return handle;
}

Level SpillLevelStore::read_or_heal_locked(std::size_t k) {
  util::SpillFileHeader header;
  std::vector<std::vector<std::uint8_t>> records;
  const SpillFileStatus status = util::read_spill_file(
      level_path(k), config_.generation, &header, &records, hooks());
  if (status == SpillFileStatus::kOk) {
    Level nodes;
    nodes.reserve(records.size());
    bool decoded = true;
    for (const auto& record : records) {
      bn::BigInt node;
      if (!deserialize_node(record, &node)) {
        decoded = false;
        break;
      }
      nodes.push_back(std::move(node));
    }
    if (decoded) {
      if (metrics_.bytes_read != nullptr) {
        metrics_.bytes_read->inc(util::kSpillHeaderSize +
                                 header.payload_bytes +
                                 util::kSpillFooterSize);
      }
      return nodes;
    }
  }

  // The level on disk is corrupt (or gone). Heal: recompute it from its
  // children — recursively, so a corrupt child heals first — or from the
  // moduli for level 0, then rewrite the file so the next load is clean.
  if (metrics_.verify_failures != nullptr) metrics_.verify_failures->inc();
  Level rebuilt;
  if (k == 0) {
    if (!rebuild_leaves_) {
      throw StorageError(StorageErrorKind::kExhausted,
                         "spill level 0 unreadable (" +
                             std::string(util::to_string(status)) +
                             ") and no rebuild source: " + level_path(0));
    }
    rebuilt = rebuild_leaves_();
    if (metrics_.rebuilds != nullptr) metrics_.rebuilds->inc();
  } else {
    const LevelHandle children = load_locked(k - 1);
    rebuilt = pair_level(*children);
    if (metrics_.heals != nullptr) metrics_.heals->inc();
  }
  if (!degraded_) {
    try {
      write_level_locked(k, rebuilt);
    } catch (const StorageError&) {
      // The heal itself is in hand; a disk that cannot take the rewrite
      // just means the next load of this level heals again.
    }
  }
  return rebuilt;
}

void SpillLevelStore::insert_resident_locked(std::size_t k,
                                             LevelHandle handle) {
  if (resident_.find(k) != resident_.end()) return;
  resident_.emplace(k, std::move(handle));
  lru_.push_back(k);
  resident_bytes_ += stats_[k].bytes;
  if (config_.arena != nullptr) {
    config_.arena->charge(stats_[k].bytes);
    arena_charged_ += stats_[k].bytes;
  }
  evict_excess_locked(window_);
  update_gauges_locked();
}

void SpillLevelStore::evict_excess_locked(std::size_t keep) {
  while (resident_.size() > keep && !lru_.empty()) {
    const std::size_t victim = lru_.front();
    lru_.pop_front();
    const auto it = resident_.find(victim);
    if (it == resident_.end()) continue;
    resident_.erase(it);
    resident_bytes_ -= stats_[victim].bytes;
    if (config_.arena != nullptr) {
      const std::uint64_t bytes = stats_[victim].bytes;
      config_.arena->release(bytes);
      arena_charged_ -= bytes;
    }
  }
}

void SpillLevelStore::drop_resident_locked(std::size_t k) {
  const auto it = resident_.find(k);
  if (it == resident_.end()) return;
  resident_.erase(it);
  lru_.remove(k);
  resident_bytes_ -= stats_[k].bytes;
  if (config_.arena != nullptr) {
    config_.arena->release(stats_[k].bytes);
    arena_charged_ -= stats_[k].bytes;
  }
  update_gauges_locked();
}

void SpillLevelStore::release_level(std::size_t k) {
  std::lock_guard lock(mu_);
  if (k >= stats_.size()) return;
  drop_resident_locked(k);
}

void SpillLevelStore::update_gauges_locked() {
  resident_peak_ = std::max(resident_peak_, resident_bytes_);
  if (metrics_.resident_levels != nullptr) {
    metrics_.resident_levels->set(
        static_cast<std::int64_t>(resident_.size() + pinned_.size()));
  }
  if (metrics_.resident_bytes_gauge != nullptr) {
    metrics_.resident_bytes_gauge->set(
        static_cast<std::int64_t>(resident_bytes_));
  }
  if (metrics_.resident_bytes_peak != nullptr) {
    metrics_.resident_bytes_peak->set(
        static_cast<std::int64_t>(resident_peak_));
  }
}

}  // namespace weakkeys::batchgcd

// Fault-tolerant cluster coordinator for the distributed batch GCD.
//
// batch_gcd_distributed() models the paper's 22-machine cluster (Section
// 3.2) as a thread pool where every one of the k^2 (product, subset) tasks
// succeeds exactly once. At cluster scale that assumption is false: workers
// crash mid-task, straggle past deadlines, and occasionally return garbage.
// The coordinator treats the k^2 remainder-tree tasks as a work queue over
// simulated workers and survives all three failure modes:
//
//   - every claimed result is *verified* before acceptance (a nontrivial
//     divisor must actually divide its modulus); corrupted results are
//     rejected and the task re-executed;
//   - failed and timed-out attempts retry with capped exponential backoff,
//     reassigned to a different worker where possible;
//   - completed tasks are journaled to a CRC-guarded binary checkpoint, so
//     an interrupted run resumes re-executing only the unfinished tasks;
//   - a lost subset product tree is rebuilt on demand instead of aborting
//     the whole factoring run.
//
// The task decomposition is exactly batch_gcd_distributed()'s, and divisor
// accumulation is commutative, so under *any* fault schedule the output is
// element-for-element identical to batch_gcd().
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "batchgcd/batch_gcd.hpp"
#include "obs/telemetry.hpp"
#include "util/cancellation.hpp"
#include "util/fault_injector.hpp"
#include "util/retry.hpp"

namespace weakkeys::batchgcd {

struct CoordinatorConfig {
  /// Subset count k (the paper used k=16 on 22 machines). Clamped to
  /// [1, moduli.size()].
  std::size_t subsets = 4;
  /// Simulated workers (0 = hardware_concurrency).
  std::size_t workers = 0;
  /// Retry scheduling for failed attempts: capped exponential backoff with
  /// optional deterministic jitter, and the per-task attempt budget. The
  /// same policy type drives the multi-process cluster coordinator
  /// (cluster::ClusterConfig), so both tiers share one delay schedule.
  util::RetryPolicy retry;
  /// Deadline after which a straggling worker is killed and its (eventual)
  /// result discarded. In this in-process simulation the straggler sleeps
  /// to the deadline and then abandons the attempt.
  std::chrono::milliseconds straggler_deadline{2};
  /// Checkpoint journal path; empty disables journaling (and resume).
  std::string checkpoint_path;
  /// Delete the journal once every task has committed (the factor cache
  /// supersedes it). Keep it only for checkpoint-format debugging.
  bool remove_checkpoint_on_success = true;
  /// Test hook simulating the coordinator process being killed mid-run:
  /// stop dispatching once this many tasks have committed this run and
  /// throw CoordinatorInterrupted (0 = disabled). In-flight tasks still
  /// commit, so the journal may hold slightly more than this count.
  std::size_t halt_after_tasks = 0;
  /// Cooperative cancellation; nullptr = not cancellable. Workers poll the
  /// token between tasks (and once per attempt), so cancel latency is
  /// bounded by the slowest single task. On cancel the journal is flushed
  /// and *retained* — a cancelled run resumes exactly like a killed one —
  /// and batch_gcd_coordinated throws util::Cancelled.
  const util::CancellationToken* cancel = nullptr;
  /// Fault source; nullptr = fault-free run.
  const util::FaultInjector* injector = nullptr;
  /// Out-of-core spill policy for the subset product trees (nullptr or a
  /// disabled policy keeps every tree in RAM). Each subset tree gets its
  /// own file base ("<base>.s<subset>") and fault stream, exactly like
  /// batch_gcd_distributed; rebuilt-after-loss trees reuse the same
  /// identity. Must outlive the call.
  const TreeStorage* storage = nullptr;
  /// Progress sink; null discards.
  std::function<void(const std::string&)> log;
  /// Telemetry bundle; nullptr disables instrumentation. When set, the
  /// coordinator records one `gcd.task` span per task attempt (annotated
  /// with task/product/subset/attempt/worker), a `coordinator.task_us`
  /// per-attempt latency histogram, global `coordinator.*` counters mirroring
  /// CoordinatorStats, and per-worker `coordinator.worker.<w>.*` counters
  /// (attempts, retries, straggles). Must outlive the call.
  obs::Telemetry* telemetry = nullptr;
};

struct CoordinatorStats {
  std::size_t subsets = 0;
  std::size_t tasks = 0;               ///< k * k (product x subset) pairs
  std::size_t attempts = 0;            ///< task executions started
  std::size_t retries = 0;             ///< attempts beyond each task's first
  std::size_t crashes = 0;             ///< worker crashes observed
  std::size_t stragglers_killed = 0;   ///< deadline-exceeded attempts killed
  std::size_t corruptions_caught = 0;  ///< results rejected by verification
  std::size_t trees_rebuilt = 0;       ///< lost subset product trees rebuilt
  std::size_t tasks_resumed = 0;       ///< loaded from checkpoint, not re-run
  std::size_t tasks_executed = 0;      ///< committed by this run's workers
  std::uint64_t total_task_ns = 0;     ///< wall-clock summed over attempts
  std::uint64_t max_task_ns = 0;       ///< slowest single attempt
};

/// A task exhausted its retry budget, or the checkpoint could not be
/// written.
class CoordinatorError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by the halt_after_tasks test hook: the simulated kill. The
/// checkpoint journal (if any) holds everything committed so far.
class CoordinatorInterrupted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Runs the k-subset batch GCD through the fault-tolerant coordinator.
/// Output is element-for-element identical to batch_gcd() under any fault
/// schedule. Resumes from `config.checkpoint_path` when it holds a journal
/// for the same moduli and k. Throws util::Cancelled (journal retained)
/// when `config.cancel` trips mid-run.
BatchGcdResult batch_gcd_coordinated(std::span<const bn::BigInt> moduli,
                                     const CoordinatorConfig& config,
                                     CoordinatorStats* stats = nullptr);

}  // namespace weakkeys::batchgcd

// Batch GCD (Bernstein; as deployed by Heninger et al. and this paper).
//
// Given moduli N_1..N_n, computes for every i the divisor
//   d_i = gcd(N_i, (P / N_i) mod N_i),   P = prod_j N_j,
// in quasilinear total time via a product tree and a remainder tree. A
// d_i > 1 means N_i shares a factor with some other modulus — the key is
// factorable. The quadratic naive baseline exists for the crossover
// benchmark; it is infeasible at corpus scale, which is the point.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "batchgcd/level_store.hpp"
#include "bn/bigint.hpp"
#include "util/cancellation.hpp"

namespace weakkeys::batchgcd {

struct BatchGcdResult {
  /// divisors[i] = gcd(N_i, prod_{j != i} N_j); 1 when N_i is coprime to
  /// every other input. Equal to N_i itself when N_i appears twice or both
  /// of its prime factors are shared.
  std::vector<bn::BigInt> divisors;

  /// Indices with a nontrivial divisor (> 1).
  [[nodiscard]] std::vector<std::size_t> vulnerable_indices() const;
};

/// Single-tree batch GCD. Inputs should be deduplicated: duplicates are
/// reported with divisor == N_i, which factors nothing. A tripped `cancel`
/// token aborts with util::Cancelled at the next phase boundary or leaf
/// batch (the polls cost one relaxed atomic load each).
///
/// When `storage` is set and its policy fires, the product tree spills to
/// disk and the remainder tree streams it back with a bounded resident
/// window — output is byte-identical to the in-RAM path. Storage failures
/// beyond the degradation ladder surface as util::StorageError (a clean
/// cancel, like util::Cancelled).
BatchGcdResult batch_gcd(std::span<const bn::BigInt> moduli,
                         const util::CancellationToken* cancel = nullptr,
                         const TreeStorage* storage = nullptr);

/// Quadratic baseline: pairwise gcd of every pair. Identical output
/// semantics to batch_gcd(). Only viable for small n.
BatchGcdResult naive_pairwise_gcd(std::span<const bn::BigInt> moduli);

/// The factors recovered from a vulnerable modulus.
struct Factorization {
  bn::BigInt p;  ///< the shared divisor found by batch GCD
  bn::BigInt q;  ///< n / p
};

/// Splits `n` by `divisor` (a batch-GCD output). Returns nullopt when the
/// divisor is trivial (1) or total (n itself: a duplicated modulus cannot be
/// split by GCD alone).
std::optional<Factorization> recover_factors(const bn::BigInt& n,
                                             const bn::BigInt& divisor);

}  // namespace weakkeys::batchgcd

// Level storage behind the product / remainder trees.
//
// A product tree is a stack of levels (level 0 = the leaves, back = {root})
// that the remainder tree walks top-down. Everything the two trees need
// from storage is this narrow interface: append the next level, load one
// level for reading, release it when the walk moves on. Two backends
// implement it — RamLevelStore keeps every level resident (the paper's
// configuration, fastest at small corpora) and SpillLevelStore
// (spill_store.hpp) keeps levels on disk with a bounded resident window,
// which is what makes 10^6+-moduli trees fit in a fixed memory budget.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bn/bigint.hpp"
#include "util/fault_injector.hpp"
#include "util/tracked_arena.hpp"

namespace weakkeys::obs {
class MetricsRegistry;
}

namespace weakkeys::batchgcd {

/// One tree level: node i of level k is the product of nodes 2i and 2i+1
/// of level k-1 (an odd trailing node is carried up unchanged).
using Level = std::vector<bn::BigInt>;

/// A loaded level. Holding the handle keeps the level alive even after the
/// store evicts it from its resident window, so readers never see a level
/// disappear mid-walk.
using LevelHandle = std::shared_ptr<const Level>;

/// Retained storage for one level: node count and exact payload bytes
/// (limb_count * 8 summed over the level's nodes).
struct LevelStats {
  std::size_t nodes = 0;
  std::uint64_t bytes = 0;
};

[[nodiscard]] LevelStats census_level(const Level& level);

/// Level k+1 from level k: adjacent pairs multiplied, odd trailing node
/// carried up. The product-tree build loop and the spill store's heal path
/// share this so a healed level is byte-identical to a built one.
[[nodiscard]] Level pair_level(const Level& prev);

/// Order-sensitive 64-bit fingerprint of a modulus set — the generation
/// stamp that binds spill files to the corpus they were built from.
[[nodiscard]] std::uint64_t fingerprint_moduli(
    std::span<const bn::BigInt> moduli);

class LevelStore {
 public:
  virtual ~LevelStore() = default;

  /// Appends the next level (index == level_count()); the store takes
  /// ownership. A spilling backend may throw util::StorageError when its
  /// whole degradation ladder fails.
  virtual void append_level(Level&& nodes) = 0;

  [[nodiscard]] virtual std::size_t level_count() const = 0;

  /// Loads level k for reading. A spilling backend verifies the level's
  /// CRC and heals/rebuilds it when corrupt before returning.
  [[nodiscard]] virtual LevelHandle load_level(std::size_t k) = 0;

  /// Hints that the caller is done reading level k; a spilling backend
  /// drops it from the resident window (outstanding handles stay valid).
  virtual void release_level(std::size_t k) = 0;

  /// Per-level census, index-aligned with levels; for a spilled store the
  /// resumed levels' stats come from the level-file headers.
  [[nodiscard]] virtual const std::vector<LevelStats>& level_stats()
      const = 0;

  /// Bytes currently held in memory (every level for the RAM backend, the
  /// resident window for the spill backend).
  [[nodiscard]] virtual std::uint64_t resident_bytes() const = 0;

  [[nodiscard]] virtual bool spilled() const { return false; }
};

/// The in-RAM backend: every level stays resident, exactly the pre-spill
/// ProductTree behavior (including TrackedArena charging of each level as
/// it completes, released when the store dies).
class RamLevelStore final : public LevelStore {
 public:
  explicit RamLevelStore(util::TrackedArena* arena = nullptr)
      : arena_(arena) {}
  ~RamLevelStore() override;
  RamLevelStore(const RamLevelStore&) = delete;
  RamLevelStore& operator=(const RamLevelStore&) = delete;

  void append_level(Level&& nodes) override;
  [[nodiscard]] std::size_t level_count() const override {
    return levels_.size();
  }
  [[nodiscard]] LevelHandle load_level(std::size_t k) override;
  void release_level(std::size_t /*k*/) override {}
  [[nodiscard]] const std::vector<LevelStats>& level_stats() const override {
    return stats_;
  }
  [[nodiscard]] std::uint64_t resident_bytes() const override {
    return total_bytes_;
  }

  [[nodiscard]] const std::vector<Level>& levels() const { return levels_; }

 private:
  std::vector<Level> levels_;
  std::vector<LevelStats> stats_;
  util::TrackedArena* arena_ = nullptr;
  std::uint64_t total_bytes_ = 0;
};

/// Storage policy for a tree build: where (and whether) to spill. An empty
/// `spill_dir` disables spilling outright; otherwise a tree spills when
/// its estimated retained bytes reach `spill_threshold_bytes` (0 = always
/// spill). Carried by value — one policy can parameterize many subset
/// trees (each caller overrides `base`/`fault_stream` per tree).
struct TreeStorage {
  std::string spill_dir;
  std::uint64_t spill_threshold_bytes = 0;
  /// Level-file name prefix within spill_dir ("<base>.L<k>.wkl").
  std::string base = "tree";
  /// Corpus generation stamp; 0 = fingerprint the inputs at build time.
  std::uint64_t generation = 0;
  /// Resident-window size; 2 covers the build (prev + next) and the
  /// remainder walk (one product level + the handle the walker holds).
  std::size_t max_resident_levels = 2;
  /// Storage-tier fault injection (deterministic chaos runs).
  const util::FaultInjector* injector = nullptr;
  std::uint64_t fault_stream = 0;
  /// spill.* counters/gauges land here when set.
  obs::MetricsRegistry* registry = nullptr;
  /// When set, the store charges its *resident* bytes here (the RAM
  /// backend charges every level) — the arena peak is the bounded-memory
  /// proof the out-of-core bench asserts on.
  util::TrackedArena* arena = nullptr;
  /// Degradation ladder's last rung: when a spill write keeps failing the
  /// store falls back to holding levels in RAM, but only while the pinned
  /// bytes stay under this budget (0 = unlimited); past it the build
  /// cancels with util::StorageError(kExhausted).
  std::uint64_t ram_fallback_budget_bytes = 0;
  /// Remove the level files when the store is destroyed (graceful
  /// completion). A SIGKILL skips destructors, which is exactly what lets
  /// a resumed run find and reuse the published levels.
  bool remove_on_destroy = true;

  [[nodiscard]] bool enabled() const { return !spill_dir.empty(); }
  [[nodiscard]] bool should_spill(std::uint64_t estimated_bytes) const {
    return enabled() && estimated_bytes >= spill_threshold_bytes;
  }
};

}  // namespace weakkeys::batchgcd

#include "batchgcd/level_store.hpp"

namespace weakkeys::batchgcd {

LevelStats census_level(const Level& level) {
  LevelStats stats;
  stats.nodes = level.size();
  for (const bn::BigInt& node : level) {
    stats.bytes += static_cast<std::uint64_t>(node.limb_count()) * 8;
  }
  return stats;
}

Level pair_level(const Level& prev) {
  Level next;
  next.reserve((prev.size() + 1) / 2);
  for (std::size_t i = 0; i + 1 < prev.size(); i += 2) {
    next.push_back(prev[i] * prev[i + 1]);
  }
  if (prev.size() % 2 == 1) next.push_back(prev.back());
  return next;
}

std::uint64_t fingerprint_moduli(std::span<const bn::BigInt> moduli) {
  // SplitMix64-style fold over (index, limb) pairs: order-sensitive, so
  // the same set in a different order is a different generation (the spill
  // files' record order is the vulnerable set's index order).
  auto mix = [](std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  std::uint64_t h = 0x574b4c31u ^ (moduli.size() * 0x9e3779b97f4a7c15ULL);
  for (const bn::BigInt& n : moduli) {
    h = mix(h + 0x2545f4914f6cdd1dULL * (n.limb_count() + 1));
    for (const bn::Limb limb : n.limbs()) h = mix(h ^ limb);
  }
  return h == 0 ? 1 : h;  // 0 means "fingerprint at build time" to callers
}

RamLevelStore::~RamLevelStore() {
  if (arena_ != nullptr) arena_->release(total_bytes_);
}

void RamLevelStore::append_level(Level&& nodes) {
  stats_.push_back(census_level(nodes));
  total_bytes_ += stats_.back().bytes;
  if (arena_ != nullptr) arena_->charge(stats_.back().bytes);
  levels_.push_back(std::move(nodes));
}

LevelHandle RamLevelStore::load_level(std::size_t k) {
  // Aliasing handle into the owned vector: no copy, no ownership transfer
  // (the store outlives every walk by construction).
  return LevelHandle(LevelHandle{}, &levels_[k]);
}

}  // namespace weakkeys::batchgcd

// Incremental batch GCD.
//
// The study appends a new internet-wide scan every month; refactoring the
// entire 81M-modulus corpus each time would be wasteful. This maintains a
// corpus product so that a new batch of b moduli costs roughly one
// remainder tree over the batch plus a product update — instead of a full
// recomputation over n + b moduli. Results are exactly what a from-scratch
// batch GCD over the union would report for the *new* moduli, plus
// retroactive hits: old moduli that newly share a factor with the batch.
#pragma once

#include <span>
#include <vector>

#include "batchgcd/batch_gcd.hpp"
#include "bn/bigint.hpp"

namespace weakkeys::batchgcd {

class IncrementalBatchGcd {
 public:
  IncrementalBatchGcd() = default;

  struct BatchResult {
    /// divisor for each modulus of the batch against (old corpus + batch),
    /// same semantics as BatchGcdResult::divisors.
    std::vector<bn::BigInt> divisors;
    /// Indices (into the accumulated corpus, see corpus()) of *previously
    /// added* moduli that share a factor with this batch, with the factor.
    struct RetroHit {
      std::size_t corpus_index;
      bn::BigInt divisor;
    };
    std::vector<RetroHit> retroactive;
  };

  /// Adds a batch and reports its vulnerability against everything seen so
  /// far. Duplicate moduli (within the batch or vs the corpus) report the
  /// full modulus as divisor, like batch_gcd().
  BatchResult add_batch(std::span<const bn::BigInt> moduli);

  /// Every modulus added so far, in insertion order.
  [[nodiscard]] const std::vector<bn::BigInt>& corpus() const { return corpus_; }

  /// Product of the corpus (1 when empty).
  [[nodiscard]] const bn::BigInt& product() const { return product_; }

 private:
  std::vector<bn::BigInt> corpus_;
  bn::BigInt product_{1};
};

}  // namespace weakkeys::batchgcd

#include "batchgcd/distributed.hpp"

#include <algorithm>
#include <memory>

#include "batchgcd/product_tree.hpp"
#include "batchgcd/remainder_tree.hpp"

namespace weakkeys::batchgcd {

using bn::BigInt;

BatchGcdResult batch_gcd_distributed(std::span<const BigInt> moduli,
                                     std::size_t k, util::ThreadPool* pool,
                                     DistributedStats* stats,
                                     const util::CancellationToken* cancel,
                                     obs::MetricsRegistry* registry,
                                     const TreeStorage* storage) {
  BatchGcdResult result;
  result.divisors.assign(moduli.size(), BigInt(1));
  if (moduli.empty()) return result;
  k = std::clamp<std::size_t>(k, 1, moduli.size());

  // Partition into k contiguous subsets and build their product trees.
  struct Subset {
    std::size_t offset = 0;
    std::span<const BigInt> moduli;
    std::unique_ptr<ProductTree> tree;
  };
  std::vector<Subset> subsets(k);
  {
    const std::size_t base = moduli.size() / k;
    const std::size_t extra = moduli.size() % k;
    std::size_t offset = 0;
    for (std::size_t a = 0; a < k; ++a) {
      const std::size_t len = base + (a < extra ? 1 : 0);
      subsets[a].offset = offset;
      subsets[a].moduli = moduli.subspan(offset, len);
      offset += len;
    }
  }
  auto build_tree = [&subsets, cancel, storage](std::size_t a) {
    if (cancel) cancel->throw_if_cancelled();
    if (storage != nullptr && storage->enabled()) {
      // Per-subset spill identity: distinct file base and fault stream so
      // k trees in one dir never collide and chaos schedules stay pure.
      TreeStorage subset_storage = *storage;
      subset_storage.base = storage->base + ".s" + std::to_string(a);
      subset_storage.fault_stream = storage->fault_stream + a;
      subsets[a].tree =
          std::make_unique<ProductTree>(subsets[a].moduli, subset_storage);
    } else {
      subsets[a].tree = std::make_unique<ProductTree>(subsets[a].moduli);
    }
  };
  if (pool) {
    pool->parallel_for(k, build_tree, cancel);
  } else {
    for (std::size_t a = 0; a < k; ++a) build_tree(a);
  }
  if (registry) subsets[0].tree->publish_level_stats(*registry);

  // Every product P_b against every subset S_a: k^2 independent tasks.
  // Each task computes, for each N_i in S_a, a shared-factor candidate:
  //   b == a: gcd(N_i, (P_a mod N_i^2) / N_i)   (P_a divisible by N_i)
  //   b != a: gcd(N_i, P_b mod N_i)
  // Candidates multiply together before a final gcd, which reproduces the
  // single-tree divisor exactly.
  std::vector<std::vector<BigInt>> partial(k);  // per subset, per leaf
  for (std::size_t a = 0; a < k; ++a) {
    partial[a].assign(subsets[a].moduli.size(), BigInt(1));
  }
  std::vector<std::mutex> locks(k);

  auto run_task = [&](std::size_t task) {
    if (cancel) cancel->throw_if_cancelled();
    const std::size_t b = task / k;  // product index
    const std::size_t a = task % k;  // subset index
    const Subset& subset = subsets[a];
    const BigInt& product = subsets[b].tree->root();
    const std::vector<BigInt> rem =
        remainder_tree_squares(*subset.tree, product);
    std::vector<BigInt> local(subset.moduli.size());
    const BigInt one(1);
    for (std::size_t i = 0; i < subset.moduli.size(); ++i) {
      const BigInt& n = subset.moduli[i];
      BigInt g = (b == a) ? bn::gcd(n, rem[i] / n) : bn::gcd(n, rem[i] % n);
      local[i] = std::move(g);
    }
    std::lock_guard guard(locks[a]);
    for (std::size_t i = 0; i < local.size(); ++i) {
      if (local[i] > one) {
        partial[a][i] = partial[a][i] * local[i];
      }
    }
  };
  if (pool) {
    pool->parallel_for(k * k, run_task, cancel);
  } else {
    for (std::size_t t = 0; t < k * k; ++t) run_task(t);
  }

  // Final combination per modulus.
  for (std::size_t a = 0; a < k; ++a) {
    const Subset& subset = subsets[a];
    for (std::size_t i = 0; i < subset.moduli.size(); ++i) {
      result.divisors[subset.offset + i] =
          bn::gcd(subset.moduli[i], partial[a][i]);
    }
  }

  if (stats) {
    stats->subsets = k;
    stats->tasks = k * k;
    stats->max_node_limbs = 0;
    stats->total_tree_limbs = 0;
    for (const auto& s : subsets) {
      stats->max_node_limbs = std::max(stats->max_node_limbs,
                                       s.tree->max_node_limbs());
      stats->total_tree_limbs += s.tree->total_limbs();
    }
  }
  return result;
}

}  // namespace weakkeys::batchgcd

#include "batchgcd/product_tree.hpp"

#include <string>

#include "obs/mem.hpp"
#include "obs/metrics.hpp"
#include "obs/prof_stack.hpp"

namespace weakkeys::batchgcd {

namespace {

/// Heap-attribution label + interned profiler frame for level `k`. Both
/// tables are keyed by the level-index string, so every tree build in the
/// process shares one slot per level index (level counts are logarithmic
/// in corpus size — a 4096-leaf tree has 13).
struct LevelLabel {
  int mem_label;
  const char* frame;
};

LevelLabel level_label(std::size_t k) {
  const std::string name =
      "batchgcd.product_tree.level" + std::to_string(k);
  return {obs::mem::register_label(name), obs::prof::intern(name)};
}

std::uint64_t level_bytes(const std::vector<bn::BigInt>& level) {
  std::uint64_t bytes = 0;
  for (const bn::BigInt& node : level) {
    bytes += static_cast<std::uint64_t>(node.limb_count()) * 8;
  }
  return bytes;
}

}  // namespace

ProductTree::ProductTree(std::span<const bn::BigInt> inputs,
                         util::TrackedArena* arena)
    : arena_(arena) {
  if (inputs.empty()) return;
  obs::prof::Frame build_frame("batchgcd.product_tree.build");
  {
    const LevelLabel label = level_label(0);
    obs::MemScope mem_scope(label.mem_label);
    obs::prof::Frame frame(label.frame);
    levels_.emplace_back(inputs.begin(), inputs.end());
  }
  level_stats_.push_back(
      {levels_.back().size(), level_bytes(levels_.back())});
  if (arena_ != nullptr) arena_->charge(level_stats_.back().bytes);
  while (levels_.back().size() > 1) {
    const LevelLabel label = level_label(levels_.size());
    obs::MemScope mem_scope(label.mem_label);
    obs::prof::Frame frame(label.frame);
    const auto& prev = levels_.back();
    std::vector<bn::BigInt> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < prev.size(); i += 2) {
      next.push_back(prev[i] * prev[i + 1]);
    }
    if (prev.size() % 2 == 1) next.push_back(prev.back());
    levels_.push_back(std::move(next));
    level_stats_.push_back(
        {levels_.back().size(), level_bytes(levels_.back())});
    if (arena_ != nullptr) arena_->charge(level_stats_.back().bytes);
  }
}

ProductTree::~ProductTree() {
  if (arena_ != nullptr) arena_->release(retained_bytes());
}

ProductTree::ProductTree(ProductTree&& other) noexcept
    : levels_(std::move(other.levels_)),
      level_stats_(std::move(other.level_stats_)),
      arena_(other.arena_) {
  other.levels_.clear();
  other.level_stats_.clear();
  other.arena_ = nullptr;
}

ProductTree& ProductTree::operator=(ProductTree&& other) noexcept {
  if (this != &other) {
    if (arena_ != nullptr) arena_->release(retained_bytes());
    levels_ = std::move(other.levels_);
    level_stats_ = std::move(other.level_stats_);
    arena_ = other.arena_;
    other.levels_.clear();
    other.level_stats_.clear();
    other.arena_ = nullptr;
  }
  return *this;
}

const bn::BigInt& ProductTree::root() const {
  return levels_.empty() ? one_ : levels_.back().front();
}

std::uint64_t ProductTree::retained_bytes() const {
  std::uint64_t total = 0;
  for (const LevelStats& stats : level_stats_) total += stats.bytes;
  return total;
}

void ProductTree::publish_level_stats(obs::MetricsRegistry& registry) const {
  for (std::size_t k = 0; k < level_stats_.size(); ++k) {
    const std::string prefix =
        "batchgcd.product_tree.level" + std::to_string(k);
    registry.gauge(prefix + ".bytes")
        .set(static_cast<std::int64_t>(level_stats_[k].bytes));
    registry.gauge(prefix + ".nodes")
        .set(static_cast<std::int64_t>(level_stats_[k].nodes));
  }
  registry.gauge("batchgcd.product_tree.bytes_peak")
      .set(static_cast<std::int64_t>(retained_bytes()));
}

std::size_t ProductTree::total_limbs() const {
  std::size_t total = 0;
  for (const auto& level : levels_) {
    for (const auto& node : level) total += node.limb_count();
  }
  return total;
}

std::size_t ProductTree::max_node_limbs() const {
  std::size_t max = 0;
  for (const auto& level : levels_) {
    for (const auto& node : level) max = std::max(max, node.limb_count());
  }
  return max;
}

}  // namespace weakkeys::batchgcd

#include "batchgcd/product_tree.hpp"

#include <stdexcept>
#include <string>

#include "batchgcd/spill_store.hpp"
#include "obs/mem.hpp"
#include "obs/metrics.hpp"
#include "obs/prof_stack.hpp"

namespace weakkeys::batchgcd {

namespace {

/// Heap-attribution label + interned profiler frame for level `k`. Both
/// tables are keyed by the level-index string, so every tree build in the
/// process shares one slot per level index (level counts are logarithmic
/// in corpus size — a 4096-leaf tree has 13).
struct LevelLabel {
  int mem_label;
  const char* frame;
};

LevelLabel level_label(std::size_t k) {
  const std::string name =
      "batchgcd.product_tree.level" + std::to_string(k);
  return {obs::mem::register_label(name), obs::prof::intern(name)};
}

}  // namespace

std::uint64_t estimate_tree_bytes(std::span<const bn::BigInt> inputs) {
  std::uint64_t leaf_bytes = 0;
  for (const bn::BigInt& n : inputs) {
    leaf_bytes += static_cast<std::uint64_t>(n.limb_count()) * 8;
  }
  std::uint64_t levels = 1;
  for (std::size_t n = inputs.size(); n > 1; n = (n + 1) / 2) ++levels;
  // Every level's payload is roughly the leaf payload (products conserve
  // bit length up to carries), so the whole tree is ~leaf_bytes * depth.
  return leaf_bytes * levels;
}

ProductTree::ProductTree(std::span<const bn::BigInt> inputs,
                         util::TrackedArena* arena)
    : store_(std::make_unique<RamLevelStore>(arena)) {
  build(inputs);
}

ProductTree::ProductTree(std::span<const bn::BigInt> inputs,
                         const TreeStorage& storage,
                         util::TrackedArena* arena) {
  if (storage.should_spill(estimate_tree_bytes(inputs)) && !inputs.empty()) {
    TreeStorage resolved = storage;
    if (resolved.generation == 0) {
      resolved.generation = fingerprint_moduli(inputs);
    }
    if (resolved.arena == nullptr) resolved.arena = arena;
    // Heal source for level 0: a copy of the inputs. The copy is the price
    // of self-healing — without it a corrupt leaf file would be fatal.
    std::vector<bn::BigInt> leaves(inputs.begin(), inputs.end());
    store_ = std::make_unique<SpillLevelStore>(
        resolved, [leaves = std::move(leaves)]() {
          return Level(leaves.begin(), leaves.end());
        });
  } else {
    store_ = std::make_unique<RamLevelStore>(arena);
  }
  build(inputs);
}

void ProductTree::build(std::span<const bn::BigInt> inputs) {
  if (inputs.empty()) return;
  obs::prof::Frame build_frame("batchgcd.product_tree.build");
  std::size_t have = store_->level_stats().size();  // resumed levels
  if (have == 0) {
    const LevelLabel label = level_label(0);
    obs::MemScope mem_scope(label.mem_label);
    obs::prof::Frame frame(label.frame);
    store_->append_level(Level(inputs.begin(), inputs.end()));
    have = 1;
  }
  while (store_->level_stats().back().nodes > 1) {
    const LevelLabel label = level_label(have);
    obs::MemScope mem_scope(label.mem_label);
    obs::prof::Frame frame(label.frame);
    const LevelHandle prev = store_->load_level(have - 1);
    Level next = pair_level(*prev);
    store_->release_level(have - 1);
    store_->append_level(std::move(next));
    ++have;
  }
  const std::size_t top = store_->level_stats().size() - 1;
  const LevelHandle root_level = store_->load_level(top);
  root_ = root_level->front();
  store_->release_level(top);
}

const std::vector<Level>& ProductTree::levels() const {
  const auto* ram = dynamic_cast<const RamLevelStore*>(store_.get());
  if (ram == nullptr) {
    throw std::logic_error(
        "ProductTree::levels() is only available on the in-RAM backend; "
        "stream spilled trees through store()");
  }
  return ram->levels();
}

std::uint64_t ProductTree::retained_bytes() const {
  std::uint64_t total = 0;
  for (const LevelStats& stats : store_->level_stats()) total += stats.bytes;
  return total;
}

void ProductTree::publish_level_stats(obs::MetricsRegistry& registry) const {
  const auto& level_stats = store_->level_stats();
  for (std::size_t k = 0; k < level_stats.size(); ++k) {
    const std::string prefix =
        "batchgcd.product_tree.level" + std::to_string(k);
    registry.gauge(prefix + ".bytes")
        .set(static_cast<std::int64_t>(level_stats[k].bytes));
    registry.gauge(prefix + ".nodes")
        .set(static_cast<std::int64_t>(level_stats[k].nodes));
  }
  registry.gauge("batchgcd.product_tree.bytes_peak")
      .set(static_cast<std::int64_t>(retained_bytes()));
}

}  // namespace weakkeys::batchgcd

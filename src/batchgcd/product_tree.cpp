#include "batchgcd/product_tree.hpp"

namespace weakkeys::batchgcd {

ProductTree::ProductTree(std::span<const bn::BigInt> inputs) {
  if (inputs.empty()) return;
  levels_.emplace_back(inputs.begin(), inputs.end());
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<bn::BigInt> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < prev.size(); i += 2) {
      next.push_back(prev[i] * prev[i + 1]);
    }
    if (prev.size() % 2 == 1) next.push_back(prev.back());
    levels_.push_back(std::move(next));
  }
}

const bn::BigInt& ProductTree::root() const {
  return levels_.empty() ? one_ : levels_.back().front();
}

std::size_t ProductTree::total_limbs() const {
  std::size_t total = 0;
  for (const auto& level : levels_) {
    for (const auto& node : level) total += node.limb_count();
  }
  return total;
}

std::size_t ProductTree::max_node_limbs() const {
  std::size_t max = 0;
  for (const auto& level : levels_) {
    for (const auto& node : level) max = std::max(max, node.limb_count());
  }
  return max;
}

}  // namespace weakkeys::batchgcd

// The paper's cluster-parallel batch GCD (Section 3.2, Figure 2).
//
// The moduli are split into k subsets with products P_1..P_k; every product
// is pushed through a remainder tree over every subset. Total work grows
// (quadratically in k) but no node ever computes with the full
// corpus product — the central bottleneck of the single-tree algorithm — so
// the k^2 independent (product, subset) tasks parallelize across a cluster.
// Here the "cluster" is a thread pool; the per-task cost statistics the
// benchmark reports are the machine-independent story.
#pragma once

#include <cstddef>

#include "batchgcd/batch_gcd.hpp"
#include "util/thread_pool.hpp"

namespace weakkeys::obs {
class MetricsRegistry;
}  // namespace weakkeys::obs

namespace weakkeys::batchgcd {

struct DistributedStats {
  std::size_t subsets = 0;
  std::size_t tasks = 0;              ///< k * k (product x subset) pairs
  std::size_t max_node_limbs = 0;     ///< largest tree node anywhere
  std::size_t total_tree_limbs = 0;   ///< sum of subset product-tree storage
};

/// k-subset batch GCD. Output is element-for-element identical to
/// batch_gcd(). `k` is clamped to [1, moduli.size()]. With a pool, the k^2
/// remainder-tree tasks run concurrently; pass nullptr to run serially.
/// A tripped `cancel` token stops dispatching at task granularity (both the
/// tree builds and the k^2 remainder-tree tasks poll it) and the call
/// throws util::Cancelled after draining in-flight work.
/// With `registry`, the first subset's product tree publishes its per-level
/// byte/node census (`batchgcd.product_tree.level<k>.*` + `bytes_peak`) —
/// one representative tree, so the level gauges always sum to the peak.
/// With `storage`, each subset tree applies the spill policy independently
/// (file base "<base>.s<subset>", fault stream offset by subset index) so
/// corpus-scale runs bound per-process memory; note the k remainder walks
/// that share a subset's spilled tree re-read its levels, trading disk
/// reads for the bounded window.
BatchGcdResult batch_gcd_distributed(std::span<const bn::BigInt> moduli,
                                     std::size_t k,
                                     util::ThreadPool* pool = nullptr,
                                     DistributedStats* stats = nullptr,
                                     const util::CancellationToken* cancel =
                                         nullptr,
                                     obs::MetricsRegistry* registry = nullptr,
                                     const TreeStorage* storage = nullptr);

}  // namespace weakkeys::batchgcd

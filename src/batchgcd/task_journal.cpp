#include "batchgcd/task_journal.hpp"

#include <cstdio>

#include "core/binary_io.hpp"
#include "util/atomic_file.hpp"

namespace weakkeys::batchgcd {

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x574b4350;  // "WKCP"
constexpr std::uint32_t kCheckpointVersion = 1;

}  // namespace

std::uint64_t corpus_fingerprint(std::span<const bn::BigInt> moduli,
                                 std::size_t k) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto byte = [&h](std::uint8_t b) {
    h ^= b;
    h *= 0x100000001b3ULL;
  };
  const auto word = [&byte](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  word(k);
  word(moduli.size());
  for (const auto& n : moduli) {
    const auto bytes = n.to_bytes();
    word(bytes.size());
    for (const std::uint8_t b : bytes) byte(b);
  }
  return h;
}

TaskJournal::TaskJournal() = default;

TaskJournal::~TaskJournal() { close(); }

std::size_t TaskJournal::open(const std::string& path,
                              std::uint64_t fingerprint,
                              std::uint32_t total_tasks, const ApplyFn& apply) {
  close();
  path_ = path;

  std::size_t accepted = 0;
  std::vector<std::vector<std::uint8_t>> kept;
  if (const auto file = core::read_file_bytes(path)) {
    core::BufferReader r(*file);
    try {
      if (r.u32() == kCheckpointMagic && r.u32() == kCheckpointVersion &&
          r.u64() == fingerprint && r.u32() == total_tasks) {
        while (!r.exhausted()) {
          const auto payload = r.bytes();
          if (r.u32() != core::crc32(payload)) break;  // corrupted: drop tail
          // Parse the record; a malformed payload (short read) is skipped,
          // later records may still be intact.
          bool ok = false;
          try {
            core::BufferReader rec(payload);
            const std::uint32_t task = rec.u32();
            const std::uint32_t count = rec.u32();
            std::vector<TaskClaim> claims;
            claims.reserve(count);
            for (std::uint32_t c = 0; c < count; ++c) {
              TaskClaim claim;
              claim.leaf = rec.u32();
              claim.divisor = bn::BigInt::from_bytes(rec.bytes());
              claims.push_back(std::move(claim));
            }
            ok = apply(task, std::move(claims));
          } catch (const std::exception&) {
            ok = false;
          }
          if (ok) {
            kept.push_back(payload);
            ++accepted;
          }
        }
      }
    } catch (const std::exception&) {
      // Torn header or record framing: keep whatever applied cleanly.
    }
  }

  // Rewrite the validated prefix through a temporary and rename it over
  // the journal: an in-place truncate-rewrite would destroy the resume
  // point if the process died between the truncate and the last record.
  {
    const std::string tmp = util::atomic_tmp_path(path);
    core::BinaryWriter w(tmp);
    w.u32(kCheckpointMagic);
    w.u32(kCheckpointVersion);
    w.u64(fingerprint);
    w.u32(total_tasks);
    for (const auto& payload : kept) {
      w.bytes(payload);
      w.u32(core::crc32(payload));
    }
    w.flush();
  }
  util::atomic_publish_file(util::atomic_tmp_path(path), path);
  writer_ = std::make_unique<core::BinaryWriter>(
      path, core::BinaryWriter::Mode::kAppend);
  return accepted;
}

void TaskJournal::append(std::uint32_t task,
                         const std::vector<TaskClaim>& claims) {
  if (!writer_) return;
  core::BufferWriter w;
  w.u32(task);
  w.u32(static_cast<std::uint32_t>(claims.size()));
  for (const auto& claim : claims) {
    w.u32(claim.leaf);
    w.bytes(claim.divisor.to_bytes());
  }
  writer_->bytes(w.data());
  writer_->u32(core::crc32(w.data()));
  writer_->flush();
}

void TaskJournal::close() { writer_.reset(); }

void TaskJournal::remove() {
  close();
  if (!path_.empty()) std::remove(path_.c_str());
}

}  // namespace weakkeys::batchgcd

#include "batchgcd/coordinator.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "batchgcd/product_tree.hpp"
#include "batchgcd/remainder_tree.hpp"
#include "batchgcd/task_journal.hpp"
#include "util/thread_pool.hpp"

namespace weakkeys::batchgcd {

namespace {

using bn::BigInt;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);

/// One nontrivial divisor candidate claimed by a task: `leaf` indexes into
/// the task's subset (the journal's record unit).
using Claim = TaskClaim;

class Coordinator {
 public:
  Coordinator(std::span<const BigInt> moduli, const CoordinatorConfig& config)
      : config_(config), moduli_(moduli) {
    if (config_.telemetry) {
      auto& m = config_.telemetry->metrics();
      m_attempts_ = &m.counter("coordinator.attempts");
      m_retries_ = &m.counter("coordinator.retries");
      m_crashes_ = &m.counter("coordinator.crashes");
      m_stragglers_ = &m.counter("coordinator.stragglers_killed");
      m_corruptions_ = &m.counter("coordinator.corruptions_caught");
      m_trees_rebuilt_ = &m.counter("coordinator.trees_rebuilt");
      m_tasks_resumed_ = &m.counter("coordinator.tasks_resumed");
      m_tasks_executed_ = &m.counter("coordinator.tasks_executed");
      m_watchdog_reassigned_ = &m.counter("watchdog.tasks_reassigned");
      m_task_us_ = &m.histogram("coordinator.task_us");
    }
    k_ = std::clamp<std::size_t>(config.subsets, 1,
                                 std::max<std::size_t>(moduli.size(), 1));
    total_ = k_ * k_;
    workers_n_ = config.workers != 0
                     ? config.workers
                     : std::max(1u, std::thread::hardware_concurrency());

    // Partition into k contiguous subsets (identical to
    // batch_gcd_distributed, so outputs line up element for element).
    subsets_.resize(k_);
    const std::size_t base = moduli.size() / k_;
    const std::size_t extra = moduli.size() % k_;
    std::size_t offset = 0;
    for (std::size_t a = 0; a < k_; ++a) {
      const std::size_t len = base + (a < extra ? 1 : 0);
      subsets_[a].offset = offset;
      subsets_[a].moduli = moduli.subspan(offset, len);
      offset += len;
    }
    trees_.resize(k_);
    partial_.resize(k_);
    for (std::size_t a = 0; a < k_; ++a) {
      partial_[a].assign(subsets_[a].moduli.size(), BigInt(1));
    }
  }

  BatchGcdResult run(CoordinatorStats* stats) {
    BatchGcdResult result;
    result.divisors.assign(moduli_.size(), BigInt(1));
    if (moduli_.empty()) {
      if (stats) *stats = stats_;
      return result;
    }
    stats_.subsets = k_;
    stats_.tasks = total_;
    if (config_.telemetry) {
      // Totals for progress derivation (monitor heartbeats, /status): a
      // live reader computes done/total from tasks_executed+tasks_resumed
      // against this counter without waiting for CoordinatorStats.
      auto& m = config_.telemetry->metrics();
      m.counter("coordinator.tasks").set(total_);
      m.counter("coordinator.subsets").set(k_);
    }

    std::vector<bool> done(total_, false);
    if (!config_.checkpoint_path.empty()) open_journal(done);

    for (std::size_t t = 0; t < total_; ++t) {
      if (!done[t]) {
        pending_.push_back({t, 0, Clock::now(), kNoWorker});
      }
    }
    if (committed_ > 0) {
      log("checkpoint: resumed " + std::to_string(committed_) + "/" +
          std::to_string(total_) + " tasks from " + config_.checkpoint_path);
    }

    if (config_.cancel && config_.cancel->cancelled()) cancelled_ = true;
    if (!pending_.empty() && !cancelled_) {
      try {
        build_trees_parallel();
      } catch (const util::Cancelled&) {
        cancelled_ = true;  // cancelled during tree builds: flush and report
      }
      if (!cancelled_) {
        std::vector<std::thread> workers;
        workers.reserve(workers_n_);
        for (std::size_t w = 0; w < workers_n_; ++w) {
          workers.emplace_back([this, w] { worker_loop(w); });
        }
        for (auto& t : workers) t.join();
      }
    }

    if (stats) *stats = stats_;
    if (fatal_) std::rethrow_exception(fatal_);
    if (cancelled_) {
      // Flush and close: a cancelled run resumes exactly like a killed one.
      journal_.close();
      throw util::Cancelled(config_.cancel ? config_.cancel->reason()
                                           : "coordinator");
    }
    if (halted_) {
      journal_.close();  // flush and close: the journal is the resume point
      throw CoordinatorInterrupted(
          "coordinator halted after " + std::to_string(stats_.tasks_executed) +
          " tasks (checkpoint retained)");
    }

    for (std::size_t a = 0; a < k_; ++a) {
      for (std::size_t i = 0; i < subsets_[a].moduli.size(); ++i) {
        result.divisors[subsets_[a].offset + i] =
            bn::gcd(subsets_[a].moduli[i], partial_[a][i]);
      }
    }
    journal_.close();
    if (!config_.checkpoint_path.empty() &&
        config_.remove_checkpoint_on_success) {
      std::remove(config_.checkpoint_path.c_str());
    }
    if (stats) *stats = stats_;
    return result;
  }

 private:
  struct Subset {
    std::size_t offset = 0;
    std::span<const BigInt> moduli;
  };

  struct Pending {
    std::size_t task = 0;
    std::size_t attempt = 0;  ///< 0-based attempt about to run
    Clock::time_point ready_at;
    std::size_t banned_worker = kNoWorker;  ///< who failed it last
  };

  enum class OutcomeKind { kOk, kCrash, kStraggle, kCorrupt };

  struct Outcome {
    OutcomeKind kind = OutcomeKind::kOk;
    std::vector<Claim> claims;
    bool lost_tree = false;
    std::uint64_t ns = 0;
  };

  void log(const std::string& message) const {
    if (config_.log) config_.log(message);
  }

  // -- checkpoint journal --------------------------------------------------

  /// Opens the shared TaskJournal: replays the valid committed prefix into
  /// partial_ and `done` (verifying every claim against its modulus), then
  /// leaves the journal open for appending new commits.
  void open_journal(std::vector<bool>& done) {
    journal_.open(
        config_.checkpoint_path, corpus_fingerprint(moduli_, k_),
        static_cast<std::uint32_t>(total_),
        [this, &done](std::uint32_t task, std::vector<Claim>&& claims) {
          if (task >= total_ || done[task]) return false;
          const std::size_t a = task % k_;
          if (!verify(a, claims)) return false;
          for (const auto& claim : claims) {
            partial_[a][claim.leaf] = partial_[a][claim.leaf] * claim.divisor;
          }
          done[task] = true;
          ++committed_;
          ++stats_.tasks_resumed;
          if (m_tasks_resumed_) m_tasks_resumed_->inc();
          return true;
        });
  }

  // -- product trees -------------------------------------------------------

  void build_trees_parallel() {
    obs::Span span;
    if (config_.telemetry) {
      span = config_.telemetry->tracer().span("gcd.build_trees");
    }
    const auto build = [this](std::size_t a) {
      auto tree = make_tree(a);
      std::lock_guard guard(tree_mu_);
      trees_[a] = std::move(tree);
    };
    const std::size_t nthreads = std::min(workers_n_, k_);
    if (nthreads <= 1) {
      for (std::size_t a = 0; a < k_; ++a) {
        if (config_.cancel) config_.cancel->throw_if_cancelled();
        build(a);
      }
      publish_tree_census();
      return;
    }
    // Through the shared pool (not raw threads) so the builds show up in
    // the `threadpool.*` instruments alongside the fast path's.
    util::ThreadPool pool(nthreads, config_.telemetry);
    pool.parallel_for(k_, build, config_.cancel);
    publish_tree_census();
  }

  /// Per-level byte/node gauges from the first subset's tree — one
  /// representative tree, so the level gauges always sum to `bytes_peak`.
  void publish_tree_census() {
    if (!config_.telemetry) return;
    std::lock_guard guard(tree_mu_);
    if (trees_.empty() || !trees_[0]) return;
    trees_[0]->publish_level_stats(config_.telemetry->metrics());
  }

  /// Builds subset a's tree under the configured spill policy. A rebuilt
  /// tree reuses the same file base / fault stream, so a lost tree heals
  /// from (or overwrites) its own level files, never a sibling's.
  std::shared_ptr<ProductTree> make_tree(std::size_t a) const {
    if (config_.storage != nullptr && config_.storage->enabled()) {
      TreeStorage subset_storage = *config_.storage;
      subset_storage.base = config_.storage->base + ".s" + std::to_string(a);
      subset_storage.fault_stream = config_.storage->fault_stream + a;
      return std::make_shared<ProductTree>(subsets_[a].moduli, subset_storage);
    }
    return std::make_shared<ProductTree>(subsets_[a].moduli);
  }

  std::shared_ptr<const ProductTree> acquire_tree(std::size_t a) {
    std::lock_guard guard(tree_mu_);
    if (!trees_[a]) {
      trees_[a] = make_tree(a);
    }
    return trees_[a];
  }

  void drop_tree(std::size_t a) {
    std::lock_guard guard(tree_mu_);
    trees_[a].reset();
  }

  // -- task execution ------------------------------------------------------

  /// One attempt on the simulated worker, faults included. Runs unlocked.
  Outcome execute(const Pending& p, std::size_t worker) {
    const auto t0 = Clock::now();
    Outcome out;
    const util::FaultDecision decision =
        config_.injector ? config_.injector->decide(p.task, p.attempt)
                         : util::FaultDecision{};
    const std::size_t b = p.task / k_;  // product index
    const std::size_t a = p.task % k_;  // subset index

    obs::Span span;
    if (config_.telemetry) {
      span = config_.telemetry->tracer().span("gcd.task");
      span.arg("task", static_cast<std::int64_t>(p.task));
      span.arg("product", static_cast<std::int64_t>(b));
      span.arg("subset", static_cast<std::int64_t>(a));
      span.arg("attempt", static_cast<std::int64_t>(p.attempt));
      span.arg("worker", static_cast<std::int64_t>(worker));
    }

    if (decision.lose_tree) {
      // The subset's product tree evaporates (node reboot, evicted cache).
      // Not a task failure: the next acquire_tree() rebuilds it.
      drop_tree(a);
      out.lost_tree = true;
    }
    if (decision.kind == util::FaultKind::kCrash) {
      out.kind = OutcomeKind::kCrash;
      out.ns = elapsed_ns(t0);
      return out;
    }
    if (decision.kind == util::FaultKind::kStraggle) {
      // The worker limps along past the deadline; the coordinator kills it
      // and discards whatever it would eventually have produced.
      std::this_thread::sleep_for(config_.straggler_deadline);
      out.kind = OutcomeKind::kStraggle;
      out.ns = elapsed_ns(t0);
      return out;
    }

    const Subset& subset = subsets_[a];
    const auto tree_a = acquire_tree(a);
    const BigInt product = acquire_tree(b)->root();
    const std::vector<BigInt> rem = remainder_tree_squares(*tree_a, product);
    const BigInt one(1);
    for (std::size_t i = 0; i < subset.moduli.size(); ++i) {
      const BigInt& n = subset.moduli[i];
      BigInt g = (b == a) ? bn::gcd(n, rem[i] / n) : bn::gcd(n, rem[i] % n);
      if (g > one) {
        out.claims.push_back({static_cast<std::uint32_t>(i), std::move(g)});
      }
    }

    if (decision.kind == util::FaultKind::kCorruptResult &&
        !subset.moduli.empty()) {
      const std::size_t slot = decision.corrupt_slot % subset.moduli.size();
      const BigInt& n = subset.moduli[slot];
      if (n > BigInt(2)) {
        // n-1 never divides n for n > 2, so verification is guaranteed to
        // reject this claim — the corruption cannot leak into the output.
        const BigInt bogus = n - one;
        const auto it = std::find_if(
            out.claims.begin(), out.claims.end(),
            [slot](const Claim& c) { return c.leaf == slot; });
        if (it != out.claims.end()) {
          it->divisor = bogus;
        } else {
          out.claims.push_back({static_cast<std::uint32_t>(slot), bogus});
        }
      }
    }

    if (!verify(a, out.claims)) out.kind = OutcomeKind::kCorrupt;
    out.ns = elapsed_ns(t0);
    return out;
  }

  /// A claimed divisor is accepted only if it is nontrivial, bounded by its
  /// modulus, and actually divides it.
  [[nodiscard]] bool verify(std::size_t a,
                            const std::vector<Claim>& claims) const {
    const BigInt one(1);
    for (const auto& claim : claims) {
      if (claim.leaf >= subsets_[a].moduli.size()) return false;
      const BigInt& n = subsets_[a].moduli[claim.leaf];
      if (!(claim.divisor > one) || claim.divisor > n) return false;
      if (!(n % claim.divisor == BigInt(0))) return false;
    }
    return true;
  }

  static std::uint64_t elapsed_ns(Clock::time_point t0) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
            .count());
  }

  // -- scheduling ----------------------------------------------------------

  void worker_loop(std::size_t w) {
    obs::Counter* w_attempts = nullptr;
    obs::Counter* w_retries = nullptr;
    obs::Counter* w_straggles = nullptr;
    obs::Counter* w_committed = nullptr;
    if (config_.telemetry) {
      auto& m = config_.telemetry->metrics();
      const std::string prefix = "coordinator.worker." + std::to_string(w);
      w_attempts = &m.counter(prefix + ".attempts");
      w_retries = &m.counter(prefix + ".retries");
      w_straggles = &m.counter(prefix + ".straggles");
      w_committed = &m.counter(prefix + ".tasks_committed");
    }
    std::unique_lock lock(mu_);
    for (;;) {
      if (fatal_ || halted_) return;
      // Poll the token between tasks: the first worker to observe the trip
      // stops the whole queue, so cancel latency is one task, not a drain
      // of everything pending.
      if (config_.cancel && config_.cancel->cancelled()) {
        cancelled_ = true;
        cv_.notify_all();
        return;
      }
      if (cancelled_) return;
      if (committed_ == total_) return;

      const auto now = Clock::now();
      std::size_t pick = pending_.size();
      auto earliest = Clock::time_point::max();
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        const Pending& p = pending_[i];
        if (p.banned_worker == w) continue;
        if (p.ready_at <= now) {
          pick = i;
          break;
        }
        earliest = std::min(earliest, p.ready_at);
      }
      if (pick == pending_.size()) {
        if (pending_.empty() && inflight_ == 0) return;  // fully drained
        if (earliest == Clock::time_point::max()) {
          if (config_.cancel) {
            // Bounded wait: a deadline-tripped token has no thread to
            // notify us, so re-poll on a short cadence instead.
            cv_.wait_for(lock, std::chrono::milliseconds(50));
          } else {
            cv_.wait(lock);
          }
        } else {
          cv_.wait_until(lock, earliest);
        }
        continue;
      }

      Pending p = pending_[pick];
      pending_.erase(pending_.begin() +
                     static_cast<std::ptrdiff_t>(pick));
      ++inflight_;
      ++stats_.attempts;
      if (m_attempts_) m_attempts_->inc();
      if (w_attempts) w_attempts->inc();
      if (p.attempt > 0) {
        ++stats_.retries;
        if (m_retries_) m_retries_->inc();
        if (w_retries) w_retries->inc();
      }
      lock.unlock();

      Outcome out;
      try {
        out = execute(p, w);
      } catch (...) {
        lock.lock();
        --inflight_;
        if (!fatal_) fatal_ = std::current_exception();
        cv_.notify_all();
        return;
      }

      lock.lock();
      --inflight_;
      stats_.total_task_ns += out.ns;
      stats_.max_task_ns = std::max(stats_.max_task_ns, out.ns);
      if (m_task_us_) m_task_us_->record(out.ns / 1000);
      if (out.lost_tree) {
        ++stats_.trees_rebuilt;
        if (m_trees_rebuilt_) m_trees_rebuilt_->inc();
      }

      if (out.kind == OutcomeKind::kOk) {
        commit(p.task, out.claims);
        // Summed over workers this equals coordinator.tasks_executed
        // (resumed tasks belong to no worker), pinned by the e2e test.
        if (w_committed) w_committed->inc();
      } else {
        switch (out.kind) {
          case OutcomeKind::kCrash:
            ++stats_.crashes;
            if (m_crashes_) m_crashes_->inc();
            break;
          case OutcomeKind::kStraggle:
            // The per-task watchdog: the deadline-exceeded attempt is
            // killed here and the requeue below reassigns it away from
            // this worker.
            ++stats_.stragglers_killed;
            if (m_stragglers_) m_stragglers_->inc();
            if (w_straggles) w_straggles->inc();
            if (m_watchdog_reassigned_) m_watchdog_reassigned_->inc();
            break;
          case OutcomeKind::kCorrupt:
            ++stats_.corruptions_caught;
            if (m_corruptions_) m_corruptions_->inc();
            break;
          case OutcomeKind::kOk:
            break;
        }
        const std::size_t next_attempt = p.attempt + 1;
        if (config_.retry.exhausted(next_attempt)) {
          if (!fatal_) {
            fatal_ = std::make_exception_ptr(CoordinatorError(
                "task " + std::to_string(p.task) + " failed after " +
                std::to_string(next_attempt) + " attempts"));
          }
          cv_.notify_all();
          return;
        }
        // Retry on the shared RetryPolicy schedule (capped exponential,
        // deterministic jitter keyed on the task), preferring a different
        // worker (with a single worker there is no one else to blame).
        pending_.push_back(
            {p.task, next_attempt,
             Clock::now() + config_.retry.jittered_delay(p.task, p.attempt),
             workers_n_ > 1 ? w : kNoWorker});
      }
      cv_.notify_all();
    }
  }

  /// Accepts a verified result: folds claims into the divisor accumulators,
  /// journals the task, and checks the simulated-kill hook. Caller holds mu_.
  void commit(std::size_t task, const std::vector<Claim>& claims) {
    const std::size_t a = task % k_;
    for (const auto& claim : claims) {
      partial_[a][claim.leaf] = partial_[a][claim.leaf] * claim.divisor;
    }
    journal_.append(static_cast<std::uint32_t>(task), claims);
    ++committed_;
    ++stats_.tasks_executed;
    if (m_tasks_executed_) m_tasks_executed_->inc();
    if (config_.halt_after_tasks != 0 &&
        stats_.tasks_executed >= config_.halt_after_tasks &&
        committed_ < total_) {
      halted_ = true;
    }
  }

  CoordinatorConfig config_;
  std::span<const BigInt> moduli_;
  std::size_t k_ = 1;
  std::size_t total_ = 0;
  std::size_t workers_n_ = 1;
  std::vector<Subset> subsets_;

  std::mutex tree_mu_;
  std::vector<std::shared_ptr<const ProductTree>> trees_;

  std::mutex mu_;  ///< guards everything below
  std::condition_variable cv_;
  std::deque<Pending> pending_;
  std::size_t inflight_ = 0;
  std::size_t committed_ = 0;  ///< resumed + executed
  bool halted_ = false;
  bool cancelled_ = false;  ///< a worker observed config_.cancel tripped
  std::exception_ptr fatal_;
  std::vector<std::vector<BigInt>> partial_;  ///< per subset, per leaf
  TaskJournal journal_;
  CoordinatorStats stats_;

  // Telemetry instruments, resolved once at construction (null without a
  // telemetry bundle). Updated under mu_ alongside the stats_ fields they
  // mirror, except m_task_us_ (atomic, recorded where the timing is known).
  obs::Counter* m_attempts_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_crashes_ = nullptr;
  obs::Counter* m_stragglers_ = nullptr;
  obs::Counter* m_corruptions_ = nullptr;
  obs::Counter* m_trees_rebuilt_ = nullptr;
  obs::Counter* m_tasks_resumed_ = nullptr;
  obs::Counter* m_tasks_executed_ = nullptr;
  obs::Counter* m_watchdog_reassigned_ = nullptr;
  obs::Histogram* m_task_us_ = nullptr;
};

}  // namespace

BatchGcdResult batch_gcd_coordinated(std::span<const BigInt> moduli,
                                     const CoordinatorConfig& config,
                                     CoordinatorStats* stats) {
  Coordinator coordinator(moduli, config);
  return coordinator.run(stats);
}

}  // namespace weakkeys::batchgcd

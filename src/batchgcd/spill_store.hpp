// Disk-backed LevelStore: the out-of-core half of the product tree.
//
// Each appended level is serialized (one record per node, raw little-endian
// limbs) into a generation-stamped spill file (util/spill_file.hpp) and
// published atomically; a bounded LRU window of recently used levels stays
// resident, so a build holds at most two levels in RAM (prev + next) and
// the remainder walk holds one product level plus its remainder rows.
//
// Robustness contract, mirroring the network tier's:
//   * every load fully CRC-verifies the level; a corrupt level is healed
//     by recomputing it from its children (level 0 rebuilds from the
//     moduli via the `rebuild_leaves` callback) and rewritten in place —
//     `spill.verify_failures == spill.heals + spill.rebuilds` always;
//   * a failed write walks the degradation ladder: retry after shrinking
//     the resident window to one level, then fall back to pinning levels
//     in RAM while they fit `ram_fallback_budget_bytes`, then cancel
//     cleanly with util::StorageError(kExhausted);
//   * a SIGKILL at any boundary leaves only complete published levels
//     (atomic publish) — a new store over the same dir/generation resumes
//     from them (`spill.levels_resumed`) instead of rebuilding;
//   * every operation can be perturbed by the FaultInjector storage tier,
//     so all of the above is exercised deterministically in tests and the
//     disk-chaos CI job.
#pragma once

#include <cstddef>
#include <functional>
#include <list>
#include <map>
#include <mutex>

#include "batchgcd/level_store.hpp"
#include "util/spill_file.hpp"

namespace weakkeys::obs {
class Counter;
class Gauge;
}  // namespace weakkeys::obs

namespace weakkeys::batchgcd {

class SpillLevelStore final : public LevelStore {
 public:
  /// `storage` must have a non-empty spill_dir and a nonzero generation.
  /// `rebuild_leaves` recomputes level 0 for the heal path (typically a
  /// copy of the input moduli); without it a corrupt level 0 is
  /// unrecoverable and loads throw util::StorageError(kExhausted).
  SpillLevelStore(const TreeStorage& storage,
                  std::function<Level()> rebuild_leaves);
  ~SpillLevelStore() override;
  SpillLevelStore(const SpillLevelStore&) = delete;
  SpillLevelStore& operator=(const SpillLevelStore&) = delete;

  void append_level(Level&& nodes) override;
  [[nodiscard]] std::size_t level_count() const override;
  [[nodiscard]] LevelHandle load_level(std::size_t k) override;
  void release_level(std::size_t k) override;
  [[nodiscard]] const std::vector<LevelStats>& level_stats() const override;
  [[nodiscard]] std::uint64_t resident_bytes() const override;
  [[nodiscard]] bool spilled() const override { return true; }

  /// Levels found already published (valid header, matching generation)
  /// when the store was constructed — the SIGKILL-resume path.
  [[nodiscard]] std::size_t resumed_levels() const { return resumed_; }

  /// True once a write has fallen off the disk rungs of the ladder and
  /// levels are being pinned in RAM instead.
  [[nodiscard]] bool degraded() const;

  [[nodiscard]] std::string level_path(std::size_t k) const;

 private:
  struct Metrics {
    obs::Counter* bytes_written = nullptr;
    obs::Counter* bytes_read = nullptr;
    obs::Counter* levels_spilled = nullptr;
    obs::Counter* levels_resumed = nullptr;
    obs::Counter* verify_failures = nullptr;
    obs::Counter* heals = nullptr;
    obs::Counter* rebuilds = nullptr;
    obs::Counter* write_retries = nullptr;
    obs::Counter* window_shrinks = nullptr;
    obs::Counter* enospc = nullptr;
    obs::Counter* degraded_levels = nullptr;
    obs::Gauge* resident_levels = nullptr;
    obs::Gauge* resident_bytes_gauge = nullptr;
    obs::Gauge* resident_bytes_peak = nullptr;
  };

  [[nodiscard]] util::SpillIoHooks hooks() const;
  void probe_resume_locked();
  void write_level_locked(std::size_t k, const Level& nodes);
  [[nodiscard]] LevelHandle load_locked(std::size_t k);
  [[nodiscard]] Level read_or_heal_locked(std::size_t k);
  void insert_resident_locked(std::size_t k, LevelHandle handle);
  void evict_excess_locked(std::size_t keep);
  void drop_resident_locked(std::size_t k);
  void update_gauges_locked();

  TreeStorage config_;
  std::function<Level()> rebuild_leaves_;
  Metrics metrics_;

  mutable std::mutex mu_;
  std::vector<LevelStats> stats_;
  /// Disk-backed resident window, LRU-evicted beyond the window size.
  std::map<std::size_t, LevelHandle> resident_;
  std::list<std::size_t> lru_;  ///< front = least recently used
  /// Degradation-ladder RAM fallback: levels that could not be spilled,
  /// pinned for the store's lifetime (never evicted).
  std::map<std::size_t, LevelHandle> pinned_;
  std::uint64_t pinned_bytes_ = 0;
  std::uint64_t resident_bytes_ = 0;  ///< window + pinned
  std::uint64_t resident_peak_ = 0;
  std::uint64_t arena_charged_ = 0;
  std::size_t window_ = 2;
  std::size_t resumed_ = 0;
  bool degraded_ = false;
  mutable std::uint64_t op_seq_ = 0;  ///< storage-fault operation counter
};

}  // namespace weakkeys::batchgcd

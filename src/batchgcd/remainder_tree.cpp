#include "batchgcd/remainder_tree.hpp"

#include "obs/mem.hpp"
#include "obs/prof_stack.hpp"

namespace weakkeys::batchgcd {

using bn::BigInt;

namespace {

/// x mod node^2, skipping the squaring when x is provably below it
/// (x < 2^(2B-2) <= node^2 for a B-bit node). The root of a batch-GCD
/// remainder tree always hits the cheap path: P mod P^2 == P.
BigInt reduce_mod_square(const BigInt& x, const BigInt& node) {
  const std::size_t node_bits = node.bit_length();
  if (node_bits >= 1 && x.bit_length() <= 2 * node_bits - 2) return x;
  return x % node.squared();
}

}  // namespace

std::vector<BigInt> remainder_tree_squares(const ProductTree& tree,
                                           const BigInt& x) {
  static const int mem_label =
      obs::mem::register_label("batchgcd.remainder_tree");
  obs::MemScope mem_scope(mem_label);
  obs::prof::Frame frame("batchgcd.remainder_tree");
  LevelStore& store = tree.store();
  const std::size_t level_count = store.level_stats().size();
  if (level_count == 0) return {};

  // rem[i] holds X mod node_i^2 for the current level. A level's odd
  // trailing node is carried up unchanged by the product tree, so rem[i/2]
  // is its own remainder already and the reduction below is a cheap no-op.
  //
  // Levels stream through the store one at a time (load, walk, release):
  // over the in-RAM backend the load is a free aliasing handle, over the
  // spill backend it is a verified read with at most the configured window
  // resident — only the current and next remainder rows plus one product
  // level are ever in memory.
  std::vector<BigInt> rem = {reduce_mod_square(x, tree.root())};
  for (std::size_t li = level_count - 1; li-- > 0;) {
    const LevelHandle level = store.load_level(li);
    std::vector<BigInt> next(level->size());
    for (std::size_t i = 0; i < level->size(); ++i) {
      next[i] = reduce_mod_square(rem[i / 2], (*level)[i]);
    }
    store.release_level(li);
    rem = std::move(next);
  }
  return rem;
}

std::vector<BigInt> remainder_tree_squares_recompute(
    std::span<const bn::BigInt> moduli, const BigInt& x) {
  if (moduli.empty()) return {};
  if (moduli.size() == 1) {
    return {reduce_mod_square(x, moduli[0])};
  }
  // Split in half, recompute each half's product, and recurse with the
  // reduced remainder. Costs an extra product per node but holds only the
  // current path in memory.
  const std::size_t half = moduli.size() / 2;
  const auto left = moduli.subspan(0, half);
  const auto right = moduli.subspan(half);

  auto product = [](std::span<const bn::BigInt> range) {
    ProductTree t(range);
    return t.root();
  };
  const BigInt left_product = product(left);
  const BigInt right_product = product(right);

  std::vector<BigInt> out = remainder_tree_squares_recompute(
      left, reduce_mod_square(x, left_product));
  std::vector<BigInt> rhs = remainder_tree_squares_recompute(
      right, reduce_mod_square(x, right_product));
  out.insert(out.end(), std::make_move_iterator(rhs.begin()),
             std::make_move_iterator(rhs.end()));
  return out;
}

}  // namespace weakkeys::batchgcd

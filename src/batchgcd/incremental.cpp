#include "batchgcd/incremental.hpp"

#include "batchgcd/product_tree.hpp"
#include "batchgcd/remainder_tree.hpp"

namespace weakkeys::batchgcd {

using bn::BigInt;

IncrementalBatchGcd::BatchResult IncrementalBatchGcd::add_batch(
    std::span<const BigInt> moduli) {
  BatchResult result;
  result.divisors.assign(moduli.size(), BigInt(1));
  if (moduli.empty()) return result;

  const ProductTree batch_tree(moduli);
  const BigInt& batch_product = batch_tree.root();
  const BigInt one(1);

  // 1. Batch vs itself: standard batch GCD over the new moduli.
  {
    const auto rem = remainder_tree_squares(batch_tree, batch_product);
    for (std::size_t i = 0; i < moduli.size(); ++i) {
      result.divisors[i] = bn::gcd(moduli[i], rem[i] / moduli[i]);
    }
  }

  // 2. Batch vs the accumulated corpus product: one remainder tree.
  bool any_cross = false;
  if (!corpus_.empty()) {
    const auto rem = remainder_tree_squares(batch_tree, product_);
    for (std::size_t i = 0; i < moduli.size(); ++i) {
      const BigInt g = bn::gcd(moduli[i], rem[i] % moduli[i]);
      if (g > one) {
        any_cross = true;
        result.divisors[i] = bn::gcd(moduli[i], result.divisors[i] * g);
      }
    }
  }

  // 3. Retroactive hits: old moduli sharing a factor with the batch. One
  // remainder tree of the batch product over the (rebuilt) corpus tree —
  // only needed when step 2 found anything, since sharing is symmetric.
  if (any_cross) {
    const ProductTree corpus_tree(corpus_);
    const auto rem = remainder_tree_squares(corpus_tree, batch_product);
    for (std::size_t j = 0; j < corpus_.size(); ++j) {
      const BigInt g = bn::gcd(corpus_[j], rem[j] % corpus_[j]);
      if (g > one) result.retroactive.push_back({j, g});
    }
  }

  // 4. Fold the batch into the corpus.
  corpus_.insert(corpus_.end(), moduli.begin(), moduli.end());
  product_ = product_ * batch_product;
  return result;
}

}  // namespace weakkeys::batchgcd

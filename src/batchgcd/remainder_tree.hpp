// Remainder tree: given X and a product tree over {N_1..N_n}, computes
// z_i = X mod N_i^2 for every leaf by reducing X down the tree modulo the
// square of each node (Bernstein's batch-GCD formulation, which avoids a
// second product tree over the N_i^2).
#pragma once

#include <vector>

#include "batchgcd/product_tree.hpp"
#include "bn/bigint.hpp"

namespace weakkeys::batchgcd {

/// z_i = X mod N_i^2 for each leaf N_i of `tree`.
std::vector<bn::BigInt> remainder_tree_squares(const ProductTree& tree,
                                               const bn::BigInt& x);

/// Memory-lean variant that recomputes internal products instead of reading
/// tree levels; used by the RAM-vs-recompute ablation (the paper's original
/// hardware had to spill the trees to disk).
std::vector<bn::BigInt> remainder_tree_squares_recompute(
    std::span<const bn::BigInt> moduli, const bn::BigInt& x);

}  // namespace weakkeys::batchgcd

// Hierarchical stage tracing for the study pipeline.
//
// A Tracer hands out RAII Spans; each span records a named, timed interval
// on the calling thread, and spans opened while another span is live on the
// same thread nest under it. The collected timeline exports two ways:
//
//   * chrome_trace_json(): Chrome trace_event format ("X" complete events,
//     one tid per participating thread) — load the file in about://tracing
//     or https://ui.perfetto.dev to see the per-thread stage timeline;
//   * stage_tree(): a plain-text tree aggregating spans by (name path):
//     total time, call count, and self time per stage.
//
// Span begin/end costs two steady_clock reads plus one short mutex-guarded
// vector push on end; a disabled tracer's spans cost one branch. Timestamps
// are microseconds relative to Tracer construction, so events from one
// tracer share a single epoch and are monotonic per thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace weakkeys::obs {

/// One completed span. `args` carries small integer annotations (task ids,
/// worker ids, attempt numbers) into the Chrome trace "args" object.
struct TraceEvent {
  std::string name;
  std::uint32_t tid = 0;     ///< tracer-local thread id (dense, from 0)
  std::uint64_t ts_us = 0;   ///< start, relative to tracer construction
  std::uint64_t dur_us = 0;
  std::uint32_t depth = 0;   ///< nesting depth on its thread (0 = top level)
  std::vector<std::pair<std::string, std::int64_t>> args;
};

class Tracer;

/// RAII span handle. Move-only; records the event when destroyed (or when
/// end() is called explicitly). Spans from a disabled tracer are inert.
class Span {
 public:
  Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  ~Span() { end(); }

  /// Attaches an integer annotation (shows up under "args" in the trace).
  void arg(std::string key, std::int64_t value);

  /// Ends the span now; idempotent.
  void end();

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::string name);

  Tracer* tracer_ = nullptr;
  std::string name_;
  std::uint64_t start_us_ = 0;
  std::uint32_t tid_ = 0;
  std::uint32_t depth_ = 0;
  bool prof_pushed_ = false;  ///< frame pushed on the profiler stack
  std::vector<std::pair<std::string, std::int64_t>> args_;
};

class Tracer {
 public:
  explicit Tracer(bool enabled = true);

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Opens a span on the calling thread. Returned spans must end in LIFO
  /// order per thread (natural with RAII scoping).
  [[nodiscard]] Span span(std::string name);

  /// Completed events, sorted by (tid, start, -duration) so each thread's
  /// timeline reads in order with parents before their children.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}); empty trace is valid.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Plain-text aggregated stage tree (indentation = nesting).
  [[nodiscard]] std::string stage_tree() const;

  /// Microseconds since tracer construction (the trace epoch).
  [[nodiscard]] std::uint64_t now_us() const;

 private:
  friend class Span;
  void record(TraceEvent event);
  /// Per-thread (tid, depth) bookkeeping for the calling thread.
  struct ThreadState;
  ThreadState& thread_state();

  bool enabled_ = true;
  std::uint64_t generation_ = 0;  ///< disambiguates reused Tracer addresses
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::uint32_t next_tid_ = 0;
};

}  // namespace weakkeys::obs

#include "obs/mem.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>

#include "obs/metrics.hpp"

#if defined(__GLIBC__)
#include <malloc.h>
#define WEAKKEYS_MEM_HOOKS 1
#else
#define WEAKKEYS_MEM_HOOKS 0
#endif

namespace weakkeys::obs::mem {

namespace {

constexpr int kMaxLabels = 128;
constexpr std::uint32_t kMaxScopeDepth = 32;

// The allocation/free hooks run inside operator new/delete, including
// during static init, TLS init, and thread teardown. Everything they touch
// must be constant-initialized and allocation-free: plain atomics, POD
// thread_locals, and a pre-created histogram behind an atomic pointer.
std::atomic<bool> g_enabled{false};

std::atomic<std::int64_t> g_live{0};
std::atomic<std::uint64_t> g_peak{0};
std::atomic<std::uint64_t> g_cum{0};
std::atomic<std::uint64_t> g_allocs{0};

std::atomic<std::uint64_t> g_budget{0};
// 0 = disarmed, 1 = armed, 2 = latched (crossed, not yet reported),
// 3 = consumed (reported; stays quiet until re-armed).
std::atomic<int> g_budget_state{0};

std::atomic<Histogram*> g_alloc_hist{nullptr};

struct LabelSlot {
  std::atomic<std::int64_t> live{0};
  std::atomic<std::uint64_t> peak{0};
  std::atomic<std::uint64_t> cum{0};
  std::atomic<std::uint64_t> allocs{0};
};

LabelSlot g_slots[kMaxLabels];
std::atomic<int> g_label_count{0};

// Label names are only read from normal (non-hook) contexts; the mutex and
// the leaked name copies keep them valid for threads alive past static
// destruction.
std::mutex& label_mu() {
  static auto* mu = new std::mutex();
  return *mu;
}
const char* g_label_names[kMaxLabels] = {};

// Per-thread scope stack. POD thread_locals are constant-initialized, so
// reading them from inside the hooks can never recurse into TLS-init
// allocation.
thread_local int t_scope_stack[kMaxScopeDepth];
thread_local std::uint32_t t_scope_depth = 0;

inline int current_label() {
  return t_scope_depth > 0 ? t_scope_stack[t_scope_depth - 1] : -1;
}

inline void bump_peak(std::atomic<std::uint64_t>& peak, std::int64_t live) {
  if (live <= 0) return;
  const auto value = static_cast<std::uint64_t>(live);
  std::uint64_t seen = peak.load(std::memory_order_relaxed);
  while (value > seen &&
         !peak.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

#if WEAKKEYS_MEM_HOOKS
void on_alloc(void* ptr) noexcept {
  if (ptr == nullptr || !g_enabled.load(std::memory_order_relaxed)) return;
  const auto bytes =
      static_cast<std::int64_t>(::malloc_usable_size(ptr));
  const std::int64_t live =
      g_live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  bump_peak(g_peak, live);
  g_cum.fetch_add(static_cast<std::uint64_t>(bytes),
                  std::memory_order_relaxed);
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (Histogram* hist = g_alloc_hist.load(std::memory_order_relaxed)) {
    hist->record(static_cast<std::uint64_t>(bytes));
  }
  const int label = current_label();
  if (label >= 0) {
    LabelSlot& slot = g_slots[label];
    const std::int64_t slot_live =
        slot.live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    bump_peak(slot.peak, slot_live);
    slot.cum.fetch_add(static_cast<std::uint64_t>(bytes),
                       std::memory_order_relaxed);
    slot.allocs.fetch_add(1, std::memory_order_relaxed);
  }
  const std::uint64_t budget = g_budget.load(std::memory_order_relaxed);
  if (budget != 0 && live > 0 &&
      static_cast<std::uint64_t>(live) >= budget) {
    int armed = 1;
    g_budget_state.compare_exchange_strong(armed, 2,
                                           std::memory_order_relaxed);
  }
}

void on_free(void* ptr) noexcept {
  if (ptr == nullptr || !g_enabled.load(std::memory_order_relaxed)) return;
  const auto bytes =
      static_cast<std::int64_t>(::malloc_usable_size(ptr));
  g_live.fetch_sub(bytes, std::memory_order_relaxed);
  const int label = current_label();
  if (label >= 0) {
    g_slots[label].live.fetch_sub(bytes, std::memory_order_relaxed);
  }
}

void* checked_malloc(std::size_t size) {
  if (size == 0) size = 1;
  for (;;) {
    if (void* ptr = std::malloc(size)) return ptr;
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* checked_aligned(std::size_t size, std::size_t alignment) {
  if (size == 0) size = 1;
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  for (;;) {
    void* ptr = nullptr;
    if (::posix_memalign(&ptr, alignment, size) == 0) return ptr;
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}
#endif  // WEAKKEYS_MEM_HOOKS

}  // namespace

bool supported() { return WEAKKEYS_MEM_HOOKS != 0; }

void enable(MetricsRegistry* registry) {
  if (!supported()) return;
  if (registry != nullptr &&
      g_alloc_hist.load(std::memory_order_relaxed) == nullptr) {
    // Created before the flag flips so the hook never touches the registry
    // (registry lookups allocate; the hook must not).
    Histogram& hist = registry->histogram("mem.alloc_bytes",
                                          Histogram::default_bytes_bounds());
    g_alloc_hist.store(&hist, std::memory_order_relaxed);
  }
  g_enabled.store(true, std::memory_order_relaxed);
}

void disable() { g_enabled.store(false, std::memory_order_relaxed); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_budget_bytes(std::uint64_t bytes) {
  g_budget.store(bytes, std::memory_order_relaxed);
  g_budget_state.store(bytes == 0 ? 0 : 1, std::memory_order_relaxed);
}

std::uint64_t budget_bytes() {
  return g_budget.load(std::memory_order_relaxed);
}

bool consume_budget_alarm() {
  int latched = 2;
  return g_budget_state.compare_exchange_strong(latched, 3,
                                                std::memory_order_relaxed);
}

int register_label(const std::string& label) {
  std::lock_guard lock(label_mu());
  const int count = g_label_count.load(std::memory_order_relaxed);
  for (int i = 0; i < count; ++i) {
    if (label == g_label_names[i]) return i;
  }
  if (count >= kMaxLabels) return -1;
  char* copy = new char[label.size() + 1];
  std::memcpy(copy, label.c_str(), label.size() + 1);
  g_label_names[count] = copy;  // leaked: hook-adjacent, process lifetime
  g_label_count.store(count + 1, std::memory_order_release);
  return count;
}

Totals totals() {
  Totals t;
  t.live_bytes = g_live.load(std::memory_order_relaxed);
  t.peak_bytes = g_peak.load(std::memory_order_relaxed);
  t.cumulative_bytes = g_cum.load(std::memory_order_relaxed);
  t.allocations = g_allocs.load(std::memory_order_relaxed);
  t.budget_alarmed = g_budget_state.load(std::memory_order_relaxed) >= 2;
  return t;
}

std::vector<LabelStats> label_stats() {
  std::lock_guard lock(label_mu());
  const int count = g_label_count.load(std::memory_order_acquire);
  std::vector<LabelStats> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    LabelStats s;
    s.label = g_label_names[i];
    s.live_bytes = g_slots[i].live.load(std::memory_order_relaxed);
    s.peak_bytes = g_slots[i].peak.load(std::memory_order_relaxed);
    s.cumulative_bytes = g_slots[i].cum.load(std::memory_order_relaxed);
    s.allocations = g_slots[i].allocs.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

void publish(MetricsRegistry& registry) {
  const Totals t = totals();
  registry.gauge("mem.live_bytes").set(t.live_bytes);
  registry.gauge("mem.peak_bytes")
      .set(static_cast<std::int64_t>(t.peak_bytes));
  registry.counter("mem.cumulative_bytes").set(t.cumulative_bytes);
  registry.counter("mem.allocations").set(t.allocations);
  if (const std::uint64_t budget = budget_bytes()) {
    registry.gauge("mem.budget_bytes")
        .set(static_cast<std::int64_t>(budget));
  }
  for (const LabelStats& s : label_stats()) {
    const std::string prefix = "mem." + s.label;
    registry.gauge(prefix + ".live_bytes").set(s.live_bytes);
    registry.gauge(prefix + ".peak_bytes")
        .set(static_cast<std::int64_t>(s.peak_bytes));
    registry.counter(prefix + ".cumulative_bytes").set(s.cumulative_bytes);
  }
}

void reset_for_test() {
  g_live.store(0, std::memory_order_relaxed);
  g_peak.store(0, std::memory_order_relaxed);
  g_cum.store(0, std::memory_order_relaxed);
  g_allocs.store(0, std::memory_order_relaxed);
  g_budget.store(0, std::memory_order_relaxed);
  g_budget_state.store(0, std::memory_order_relaxed);
  g_alloc_hist.store(nullptr, std::memory_order_relaxed);
  const int count = g_label_count.load(std::memory_order_relaxed);
  for (int i = 0; i < count; ++i) {
    g_slots[i].live.store(0, std::memory_order_relaxed);
    g_slots[i].peak.store(0, std::memory_order_relaxed);
    g_slots[i].cum.store(0, std::memory_order_relaxed);
    g_slots[i].allocs.store(0, std::memory_order_relaxed);
  }
}

}  // namespace weakkeys::obs::mem

namespace weakkeys::obs {

MemScope::MemScope(int label_id, bool only_if_unattributed) {
  using namespace mem;
  if (label_id < 0 || label_id >= kMaxLabels) return;
  if (only_if_unattributed && t_scope_depth > 0) return;
  if (t_scope_depth >= kMaxScopeDepth) return;
  t_scope_stack[t_scope_depth++] = label_id;
  pushed_ = true;
}

MemScope::~MemScope() {
  if (pushed_ && mem::t_scope_depth > 0) --mem::t_scope_depth;
}

}  // namespace weakkeys::obs

#if WEAKKEYS_MEM_HOOKS
// Global replacements. They forward to malloc/free (which sanitizers
// intercept, so ASan/TSan still see consistent pairs) and notify the
// accounting layer on the way through. Linked whenever a binary references
// any weakkeys::obs::mem symbol, which every instrumented target does.
void* operator new(std::size_t size) {
  void* ptr = weakkeys::obs::mem::checked_malloc(size);
  weakkeys::obs::mem::on_alloc(ptr);
  return ptr;
}

void* operator new[](std::size_t size) {
  void* ptr = weakkeys::obs::mem::checked_malloc(size);
  weakkeys::obs::mem::on_alloc(ptr);
  return ptr;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* ptr = std::malloc(size == 0 ? 1 : size);
  weakkeys::obs::mem::on_alloc(ptr);
  return ptr;
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  void* ptr = std::malloc(size == 0 ? 1 : size);
  weakkeys::obs::mem::on_alloc(ptr);
  return ptr;
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* ptr = weakkeys::obs::mem::checked_aligned(
      size, static_cast<std::size_t>(alignment));
  weakkeys::obs::mem::on_alloc(ptr);
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  void* ptr = weakkeys::obs::mem::checked_aligned(
      size, static_cast<std::size_t>(alignment));
  weakkeys::obs::mem::on_alloc(ptr);
  return ptr;
}

void operator delete(void* ptr) noexcept {
  weakkeys::obs::mem::on_free(ptr);
  std::free(ptr);
}

void operator delete[](void* ptr) noexcept {
  weakkeys::obs::mem::on_free(ptr);
  std::free(ptr);
}

void operator delete(void* ptr, std::size_t) noexcept {
  weakkeys::obs::mem::on_free(ptr);
  std::free(ptr);
}

void operator delete[](void* ptr, std::size_t) noexcept {
  weakkeys::obs::mem::on_free(ptr);
  std::free(ptr);
}

void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  weakkeys::obs::mem::on_free(ptr);
  std::free(ptr);
}

void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  weakkeys::obs::mem::on_free(ptr);
  std::free(ptr);
}

void operator delete(void* ptr, std::align_val_t) noexcept {
  weakkeys::obs::mem::on_free(ptr);
  std::free(ptr);
}

void operator delete[](void* ptr, std::align_val_t) noexcept {
  weakkeys::obs::mem::on_free(ptr);
  std::free(ptr);
}

void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  weakkeys::obs::mem::on_free(ptr);
  std::free(ptr);
}

void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  weakkeys::obs::mem::on_free(ptr);
  std::free(ptr);
}
#endif  // WEAKKEYS_MEM_HOOKS

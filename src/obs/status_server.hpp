// Embedded HTTP status server: lets a running study or coordinator job be
// curl-polled or Prometheus-scraped while it works (see DESIGN.md §5f).
//
// Plain POSIX sockets, one background accept thread, loopback by default.
// Three endpoints:
//   GET /metrics  -> Prometheus text exposition (version 0.0.4) of the
//                    whole MetricsRegistry: counters, gauges, histograms
//                    (cumulative `_bucket{le=...}` + `_sum`/`_count`, plus
//                    `_p50`/`_p90`/`_p99` estimate gauges);
//   GET /status   -> JSON: pid, uptime, lifecycle state (when a probe is
//                    configured), and the full metrics snapshot;
//   GET /healthz  -> liveness: 200 "ok" while the lifecycle probe reports
//                    healthy (or none is configured), 503 with the phase
//                    in the body once the run is cancelled or stalled.
//
// Lifecycle is race-free under parallel ctest: construction only records
// config; start() binds (retrying port, port+1, ... on EADDRINUSE up to
// `bind_retries`; port 0 asks the kernel for an ephemeral port — read the
// result from port()), and stop()/the destructor joins the accept thread
// before closing the socket.
//
// Opt-in via StudyConfig::status_port / WEAKKEYS_STATUS_PORT.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace weakkeys::obs {

/// Prometheus metric-name mangling (DESIGN.md §5f): prefix `weakkeys_`,
/// then every character outside [a-zA-Z0-9_] becomes '_' (our dots and
/// dashes both map to underscores).
std::string prometheus_metric_name(const std::string& name);

/// The full registry snapshot in Prometheus text exposition format.
std::string prometheus_text(const MetricsSnapshot& snap);

/// What the run's lifecycle layer reports through /healthz and /status.
/// Plain data so obs stays below util in the layering: core::Study fills it
/// from its CancellationToken and run state; the server just serializes it.
struct LifecycleStatus {
  /// Machine-readable state: "idle", "running", "cancelling", "cancelled",
  /// "stalled", "failed", "done".
  std::string phase = "running";
  /// Health summary: /healthz answers 200 while true, 503 once false.
  bool healthy = true;
  /// Why the run was cancelled (empty while it wasn't).
  std::string cancel_reason;
  /// Seconds until the armed run/stage deadline; negative = no deadline.
  double deadline_remaining_s = -1.0;
  /// The pipeline stage currently executing ("ingest", "factor", ...).
  std::string stage;
};

struct StatusServerConfig {
  /// Port to bind; 0 = kernel-assigned ephemeral port.
  std::uint16_t port = 0;
  /// On EADDRINUSE, also try port+1 .. port+bind_retries before giving up
  /// (ignored for port 0 — the kernel never collides).
  int bind_retries = 16;
  /// Bind address; loopback by default (the status page is diagnostics,
  /// not a public service).
  std::string bind_address = "127.0.0.1";
  /// Lifecycle probe, polled per request from the accept thread (so it must
  /// be thread-safe and cheap). Null = no lifecycle reporting: /healthz
  /// answers 200 unconditionally and /status omits the lifecycle object.
  std::function<LifecycleStatus()> lifecycle;
};

class StatusServer {
 public:
  /// The telemetry bundle must outlive the server.
  StatusServer(Telemetry& telemetry, StatusServerConfig config = {});
  ~StatusServer();  ///< stop()

  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  /// Binds and starts the accept thread. False when no port in the retry
  /// window could be bound (a warning is emitted through the sink).
  bool start();

  /// Joins the accept thread and closes the socket. Idempotent.
  void stop();

  [[nodiscard]] bool running() const { return running_.load(); }
  /// The actually bound port (after ephemeral assignment / bind retries);
  /// -1 when not running.
  [[nodiscard]] int port() const { return port_.load(); }
  /// Requests served so far (any endpoint).
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.load();
  }

 private:
  void accept_loop();
  void handle_connection(int fd);
  [[nodiscard]] std::string respond(const std::string& path) const;

  Telemetry& telemetry_;
  const StatusServerConfig config_;
  std::chrono::steady_clock::time_point started_at_;
  int listen_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<int> port_{-1};
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace weakkeys::obs

// Process self-metrics: resident set size and CPU time for the running
// process, sampled on each monitor tick so a long batch-GCD run exposes its
// own memory/CPU trajectory (the paper's 81M-moduli job was memory-bound;
// watching RSS grow is how you catch a product tree that will not fit).
//
// Linux reads /proc/self/status (VmRSS/VmHWM); CPU time comes from
// getrusage(2). Both degrade gracefully: on platforms without the source
// the corresponding `*_available` flag stays false and nothing is recorded.
#pragma once

#include <cstdint>

namespace weakkeys::obs {

class MetricsRegistry;

struct ProcSelfStats {
  std::int64_t rss_kb = 0;       ///< current resident set (VmRSS), KiB
  std::int64_t peak_rss_kb = 0;  ///< peak resident set (VmHWM), KiB
  std::uint64_t cpu_user_us = 0;  ///< cumulative user CPU time
  std::uint64_t cpu_sys_us = 0;   ///< cumulative system CPU time
  bool rss_available = false;      ///< VmRSS parsed (Linux)
  bool peak_rss_available = false;  ///< VmHWM parsed (Linux)
  bool cpu_available = false;       ///< getrusage succeeded (POSIX)
};

/// Best-effort sample of the current process. Never throws; unavailable
/// sources leave their fields zero with the availability flag false.
ProcSelfStats sample_proc_self();

/// Mirrors a fresh sample into `registry`: gauges `process.rss_kb` /
/// `process.peak_rss_kb` and counters `process.cpu_user_us` /
/// `process.cpu_sys_us` (set, not inc — getrusage totals are cumulative).
/// No instruments are created for unavailable sources.
void record_proc_self(MetricsRegistry& registry);

}  // namespace weakkeys::obs

#include "obs/proc_stats.hpp"

#include <cstdio>
#include <cstring>

#include "obs/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define WEAKKEYS_HAVE_GETRUSAGE 1
#endif

namespace weakkeys::obs {

namespace {

#if defined(__linux__)
/// Parses "VmRSS:   12345 kB" style lines out of /proc/self/status. VmRSS
/// and VmHWM availability are tracked separately: a kernel that reports
/// only one must not make the other's stale zero look authoritative.
void read_proc_status_kb(std::int64_t* rss_kb, bool* saw_rss,
                         std::int64_t* peak_rss_kb, bool* saw_peak) {
  std::FILE* f = std::fopen("/proc/self/status", "re");
  if (f == nullptr) return;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    long long value = 0;
    if (std::sscanf(line, "VmRSS: %lld kB", &value) == 1) {
      *rss_kb = value;
      *saw_rss = true;
    } else if (std::sscanf(line, "VmHWM: %lld kB", &value) == 1) {
      *peak_rss_kb = value;
      *saw_peak = true;
    }
  }
  std::fclose(f);
}
#endif

#if defined(WEAKKEYS_HAVE_GETRUSAGE)
std::uint64_t timeval_us(const timeval& tv) {
  return static_cast<std::uint64_t>(tv.tv_sec) * 1000000ULL +
         static_cast<std::uint64_t>(tv.tv_usec);
}
#endif

}  // namespace

ProcSelfStats sample_proc_self() {
  ProcSelfStats stats;
#if defined(__linux__)
  read_proc_status_kb(&stats.rss_kb, &stats.rss_available,
                      &stats.peak_rss_kb, &stats.peak_rss_available);
#endif
#if defined(WEAKKEYS_HAVE_GETRUSAGE)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    stats.cpu_user_us = timeval_us(usage.ru_utime);
    stats.cpu_sys_us = timeval_us(usage.ru_stime);
    stats.cpu_available = true;
  }
#endif
  return stats;
}

void record_proc_self(MetricsRegistry& registry) {
  const ProcSelfStats stats = sample_proc_self();
  if (stats.rss_available) {
    registry.gauge("process.rss_kb").set(stats.rss_kb);
  }
  if (stats.peak_rss_available) {
    registry.gauge("process.peak_rss_kb").set(stats.peak_rss_kb);
  }
  if (stats.cpu_available) {
    registry.counter("process.cpu_user_us").set(stats.cpu_user_us);
    registry.counter("process.cpu_sys_us").set(stats.cpu_sys_us);
  }
}

}  // namespace weakkeys::obs

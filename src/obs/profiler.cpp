#include "obs/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/prof_stack.hpp"

namespace weakkeys::obs {

struct Profiler::Impl {
  ProfilerConfig config;

  std::mutex mu;
  std::condition_variable cv;
  bool stop_requested = false;
  bool thread_running = false;
  std::thread sampler;

  // Aggregates, guarded by mu. Keys are joined stacks ("a;b;c") and leaf
  // frame names respectively.
  std::map<std::string, std::uint64_t> stacks;
  std::map<const char*, std::uint64_t> self;
  std::uint64_t ticks = 0;
  std::uint64_t samples = 0;
};

namespace {

bool default_writer(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  out.flush();
  return out.good();
}

}  // namespace

Profiler::Profiler(ProfilerConfig config) : impl_(new Impl) {
  impl_->config = std::move(config);
  if (!impl_->config.writer) impl_->config.writer = default_writer;
}

Profiler::~Profiler() {
  stop();
  delete impl_;
}

void Profiler::start() {
  std::lock_guard lock(impl_->mu);
  if (impl_->thread_running || impl_->config.hz <= 0.0) return;
  impl_->stop_requested = false;
  prof::set_enabled(true);
  impl_->sampler = std::thread([this] { sampler_loop(); });
  impl_->thread_running = true;
}

void Profiler::stop() {
  {
    std::lock_guard lock(impl_->mu);
    if (!impl_->thread_running) return;
    impl_->stop_requested = true;
  }
  impl_->cv.notify_all();
  impl_->sampler.join();
  prof::set_enabled(false);

  std::string content;
  std::string out_path;
  {
    std::lock_guard lock(impl_->mu);
    impl_->thread_running = false;
    publish_rollups_locked();
    out_path = impl_->config.out_path;
    if (!out_path.empty()) {
      for (const auto& [stack, count] : impl_->stacks) {
        content += stack;
        content += ' ';
        content += std::to_string(count);
        content += '\n';
      }
    }
  }
  if (!out_path.empty()) impl_->config.writer(out_path, content);
}

bool Profiler::running() const {
  std::lock_guard lock(impl_->mu);
  return impl_->thread_running;
}

std::uint64_t Profiler::ticks() const {
  std::lock_guard lock(impl_->mu);
  return impl_->ticks;
}

std::uint64_t Profiler::samples() const {
  std::lock_guard lock(impl_->mu);
  return impl_->samples;
}

std::string Profiler::collapsed() const {
  std::lock_guard lock(impl_->mu);
  std::string out;
  for (const auto& [stack, count] : impl_->stacks) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>> Profiler::self_times(
    std::size_t top_n) const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  {
    std::lock_guard lock(impl_->mu);
    out.reserve(impl_->self.size());
    for (const auto& [frame, count] : impl_->self) {
      out.emplace_back(frame, count);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (out.size() > top_n) out.resize(top_n);
  return out;
}

void Profiler::publish_rollups_locked() {
  MetricsRegistry* registry = impl_->config.registry;
  if (registry == nullptr) return;
  registry->counter("profiler.ticks").set(impl_->ticks);
  registry->counter("profiler.samples").set(impl_->samples);
  for (const auto& [frame, count] : impl_->self) {
    registry->counter(std::string("profiler.self.") + frame).set(count);
  }
}

void Profiler::sampler_loop() {
  const auto period = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(1.0 / impl_->config.hz));
  std::unique_lock lock(impl_->mu);
  while (!impl_->stop_requested) {
    // Sampling under mu is fine: sample_all_stacks() takes only the
    // prof-stack registry lock, which is never held while taking mu.
    impl_->ticks++;
    for (const prof::StackSample& sample : prof::sample_all_stacks()) {
      std::string key;
      for (const char* frame : sample) {
        if (!key.empty()) key += ';';
        key += frame;
      }
      impl_->stacks[key]++;
      impl_->self[sample.back()]++;
      impl_->samples++;
    }
    publish_rollups_locked();
    impl_->cv.wait_for(lock, period, [this] { return impl_->stop_requested; });
  }
}

double profile_hz_from_env() {
  const char* raw = std::getenv("WEAKKEYS_PROFILE_HZ");
  if (raw == nullptr || *raw == '\0') return 0.0;
  char* end = nullptr;
  const double hz = std::strtod(raw, &end);
  if (end == raw || hz <= 0.0) return 0.0;
  return hz;
}

std::string profile_out_from_env() {
  const char* raw = std::getenv("WEAKKEYS_PROFILE_OUT");
  return raw == nullptr ? std::string() : std::string(raw);
}

}  // namespace weakkeys::obs

// Stall watchdog: declares a run stuck when its progress counters stop
// moving, and dumps a diagnostic snapshot so the operator (or the study's
// lifecycle layer) can see *what* wedged before deciding to cancel.
//
// The watchdog owns no thread — it rides the Monitor's tick (wire
// observe() into MonitorConfig::on_tick), so its time base is the monitor
// interval and "N stall ticks" means N monitor intervals of zero movement
// across every watched progress counter. On the tick that crosses the
// threshold it:
//   - emits a one-line diagnostic through the TelemetrySink (warn level):
//     quiet duration, per-worker attempt liveness, thread-pool queue
//     depth, and the most recent structured events;
//   - increments `watchdog.stalls` and invokes the configured on_stall
//     callback exactly once per stall episode (movement re-arms it).
//
// This sits in obs (below util in the layering), so the cancel decision is
// a callback: core::Study wires on_stall to its CancellationToken. The
// coordinator's own per-task watchdog (straggler deadline + reassignment,
// `watchdog.tasks_reassigned`) handles the single-stuck-task case without
// cancelling the whole run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace weakkeys::obs {

struct WatchdogConfig {
  /// Consecutive no-movement ticks before a stall is declared; 0 disables.
  std::size_t stall_ticks = 8;
  /// Counter-name prefixes whose movement counts as progress. Empty watches
  /// every counter in the registry (gauges are excluded: a constant queue
  /// depth is exactly what a stall looks like). `watchdog.*` and
  /// `process.*` counters are never watched regardless — the former would
  /// re-arm the alarm it just raised, the latter creep even when wedged.
  std::vector<std::string> watch_prefixes;
  /// Invoked once per stall episode with the diagnostic line. The study
  /// cancels its run token here; leave null to only log and count.
  std::function<void(const std::string& diagnostic)> on_stall;
};

class Watchdog {
 public:
  /// The telemetry bundle must outlive the watchdog.
  Watchdog(Telemetry& telemetry, WatchdogConfig config);

  /// One observation (call once per monitor tick, any thread, not
  /// concurrently with itself). Returns true when this tick declared a
  /// stall.
  bool observe(const MetricsSnapshot& snapshot);

  /// True while the current stall episode is open (no movement since it
  /// was declared).
  [[nodiscard]] bool stalled() const { return stalled_; }
  [[nodiscard]] std::uint64_t stalls_declared() const { return stalls_; }
  [[nodiscard]] std::size_t quiet_ticks() const { return quiet_ticks_; }

  /// The diagnostic state dump: quiet interval, per-worker attempt counts,
  /// queue depth, and the sink's most recent events.
  [[nodiscard]] std::string diagnostic(const MetricsSnapshot& snapshot) const;

 private:
  [[nodiscard]] bool watched(const std::string& counter_name) const;

  Telemetry& telemetry_;
  const WatchdogConfig config_;
  MetricsSnapshot prev_;
  bool have_prev_ = false;
  std::size_t quiet_ticks_ = 0;
  bool stalled_ = false;
  std::uint64_t stalls_ = 0;
};

}  // namespace weakkeys::obs

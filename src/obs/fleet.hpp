// Fleet-wide observability: merges per-worker telemetry exported over the
// cluster protocol into one coordinator-side view.
//
// Three jobs, all driven by the ProcessCoordinator:
//
//   1. Clock alignment. Every process runs on its own steady clock with an
//      arbitrary epoch, so worker span timestamps are meaningless to the
//      coordinator until rebased. Each Ping/Pong exchange yields one offset
//      observation by the midpoint method: the worker's clock sample is
//      assumed to land halfway through the round trip, so
//        offset = worker_now - (coord_send + coord_recv) / 2
//      with error bounded by RTT/2. The estimator keeps the observation
//      with the smallest RTT — the tightest bound — which on loopback is a
//      few microseconds.
//
//   2. Trace merge. The coordinator opens an assign span per task attempt;
//      workers ship their task.recv/compute/verify/send spans back in
//      TelemetrySnapshot frames (timestamps on the worker clock, relative
//      to a per-incarnation epoch). The aggregator rebases worker spans
//      onto the coordinator clock and emits one Chrome trace with a pid
//      lane per process, so a single timeline answers "where did task 37's
//      800 ms go".
//
//   3. Metric fan-in. Worker counters/gauges/proc-stats are republished
//      into the coordinator's MetricsRegistry under fleet.worker.<id>.* —
//      plus fleet.* rollups summed across workers — so /metrics, /status,
//      the monitor JSONL, and the heartbeat line see the whole fleet for
//      free. Worker counters reset when a worker is respawned; the
//      aggregator folds each dead incarnation's last-seen values into a
//      per-worker base so the published totals stay cumulative.
//
// Everything here is transport-agnostic plain data: the cluster layer
// converts wire messages into ingest() calls, keeping obs/ free of any
// cluster dependency.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace weakkeys::obs {

class MetricsRegistry;

/// Midpoint-method clock offset estimator for one remote process. Feed it
/// (local send, local receive, remote clock sample) triples; it keeps the
/// minimum-RTT observation. offset_ns() is remote minus local, so
/// `remote_ns - offset_ns()` lands a remote timestamp on the local clock.
class ClockOffsetEstimator {
 public:
  void observe(std::int64_t local_send_ns, std::int64_t local_recv_ns,
               std::int64_t remote_now_ns);

  [[nodiscard]] bool valid() const { return valid_; }
  [[nodiscard]] std::int64_t offset_ns() const { return offset_ns_; }
  /// RTT of the observation the current offset came from — the error bound
  /// on offset_ns() is half of this.
  [[nodiscard]] std::int64_t best_rtt_ns() const { return best_rtt_ns_; }
  /// Remote steady-clock ns -> local steady-clock ns (identity when no
  /// observation has arrived yet).
  [[nodiscard]] std::int64_t rebase(std::int64_t remote_ns) const {
    return remote_ns - offset_ns_;
  }

 private:
  bool valid_ = false;
  std::int64_t offset_ns_ = 0;
  std::int64_t best_rtt_ns_ = 0;
};

/// One worker telemetry export, already decoded from the wire. Span
/// timestamps are worker-clock microseconds relative to `trace_epoch_ns`
/// (worker-clock ns); proc-stat fields are -1 when unavailable. The spans
/// reuse TraceEvent; `tid` is the worker-local thread lane.
struct FleetSnapshot {
  std::uint32_t worker_id = 0;
  std::uint64_t seq = 0;
  std::uint64_t first_span_index = 0;  ///< global index of spans[0]
  std::int64_t trace_epoch_ns = 0;
  std::int64_t rss_kb = -1;
  std::int64_t peak_rss_kb = -1;
  std::int64_t cpu_user_us = -1;
  std::int64_t cpu_sys_us = -1;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<TraceEvent> spans;
};

/// One event in the merged fleet timeline: a TraceEvent plus the process
/// lane it belongs to. Timestamps are coordinator-clock microseconds since
/// the aggregator's construction (its trace epoch); worker events have been
/// rebased through the per-worker offset estimate.
struct FleetEvent {
  std::uint32_t pid = 0;  ///< kCoordinatorPid or kWorkerPidBase + worker id
  TraceEvent event;
};

class FleetAggregator {
 public:
  /// Chrome-trace pid lanes. The coordinator is pid 1 (matching the
  /// process-local Tracer's hardcoded pid); worker N renders as pid 2+N.
  static constexpr std::uint32_t kCoordinatorPid = 1;
  static constexpr std::uint32_t kWorkerPidBase = 2;

  /// `registry` receives the fleet.* metric fan-out on every ingest; pass
  /// nullptr to collect traces only. `trace_enabled` gates span collection
  /// (assign spans + ingested worker spans); metric fan-in is unaffected.
  explicit FleetAggregator(MetricsRegistry* registry = nullptr,
                           bool trace_enabled = true);

  /// Run-unique nonzero trace identity stamped into TaskAssign trace
  /// contexts (zero when tracing is disabled — workers open no spans).
  [[nodiscard]] std::uint64_t trace_id() const { return trace_id_; }
  [[nodiscard]] bool trace_enabled() const { return trace_enabled_; }

  /// Coordinator steady-clock ns of the aggregator's trace epoch (merged
  /// timestamps are microseconds since this instant).
  [[nodiscard]] std::int64_t epoch_ns() const { return epoch_ns_; }

  /// One Ping/Pong clock observation for `worker`'s current incarnation.
  void observe_clock(std::uint32_t worker, std::int64_t coord_send_ns,
                     std::int64_t coord_recv_ns, std::int64_t worker_now_ns);

  /// Current offset estimate for `worker` (identity estimator if none).
  [[nodiscard]] ClockOffsetEstimator clock_offset(std::uint32_t worker) const;

  /// Opens the coordinator-side assign span for one task attempt; returns
  /// the span id to stamp into the TaskAssign trace context (0 when
  /// tracing is disabled). `now_ns` is the coordinator steady clock.
  std::uint64_t begin_assign(std::uint32_t task, std::uint32_t worker,
                             std::uint32_t attempt, std::int64_t now_ns);

  /// Closes an assign span (idempotent; unknown ids are ignored).
  /// `committed` distinguishes a journal commit from an abandoned attempt
  /// (timeout reassignment, worker death) in the span args.
  void end_assign(std::uint64_t span_id, std::int64_t now_ns, bool committed);

  /// A fresh worker incarnation attached (spawn or respawn — not a session
  /// reconnect): folds the previous incarnation's counters into the
  /// per-worker base, resets its span dedup high-water and clock estimator.
  void on_worker_fresh(std::uint32_t worker);

  /// Ingests one telemetry export. Replayed spans (global index below the
  /// dedup high-water) are skipped; counter/gauge values are absolute so
  /// replays are naturally idempotent. Returns the number of new spans
  /// accepted. Thread-safe (called from per-link RX threads).
  std::size_t ingest(const FleetSnapshot& snap);

  /// Published fleet totals, also available as fleet.* registry metrics.
  struct Summary {
    std::uint64_t workers_reporting = 0;
    std::uint64_t snapshots = 0;
    std::uint64_t tasks_executed = 0;
    std::int64_t rss_kb = 0;        ///< sum of latest per-worker RSS
    std::uint64_t compute_us = 0;   ///< sum of worker compute time
  };
  [[nodiscard]] Summary summary() const;

  /// Merged timeline (coordinator assign spans + rebased worker spans),
  /// sorted by (pid, tid, ts). Open assign spans are included as-if ended
  /// at their start (dur 0) so a halted run still shows them.
  [[nodiscard]] std::vector<FleetEvent> events() const;

  /// Chrome trace_event JSON of the merged timeline, with process_name
  /// metadata records labelling each pid lane.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Per-worker + rollup metrics as standalone JSON (the CI artifact next
  /// to the merged trace): counters are incarnation-folded totals, proc
  /// stats are latest-seen, clock blocks carry offset/RTT estimates.
  [[nodiscard]] std::string fleet_metrics_json() const;

 private:
  struct WorkerState {
    ClockOffsetEstimator clock;
    std::uint64_t span_high_water = 0;  ///< next unseen global span index
    std::uint64_t snapshots = 0;
    std::map<std::string, std::uint64_t> counter_base;    ///< dead incarnations
    std::map<std::string, std::uint64_t> counter_latest;  ///< this incarnation
    std::map<std::string, std::int64_t> gauge_latest;
    std::int64_t rss_kb = -1;
    std::int64_t peak_rss_kb = -1;
    std::int64_t cpu_user_us = -1;
    std::int64_t cpu_sys_us = -1;
  };

  struct OpenAssign {
    std::uint32_t task = 0;
    std::uint32_t worker = 0;
    std::uint32_t attempt = 0;
    std::int64_t start_ns = 0;
  };

  void publish_locked();  // mirror fleet.* into the registry; mu_ held
  [[nodiscard]] std::uint64_t folded_counter_locked(const WorkerState& ws,
                                                    const std::string& name) const;

  MetricsRegistry* registry_;
  const bool trace_enabled_;
  const std::int64_t epoch_ns_;
  const std::uint64_t trace_id_;

  mutable std::mutex mu_;
  std::map<std::uint32_t, WorkerState> workers_;
  std::map<std::uint64_t, OpenAssign> open_assigns_;
  std::uint64_t next_span_id_ = 1;
  std::vector<FleetEvent> events_;
  std::uint64_t snapshots_total_ = 0;
};

}  // namespace weakkeys::obs

#include "obs/fleet.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"

namespace weakkeys::obs {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void ClockOffsetEstimator::observe(std::int64_t local_send_ns,
                                   std::int64_t local_recv_ns,
                                   std::int64_t remote_now_ns) {
  const std::int64_t rtt = local_recv_ns - local_send_ns;
  if (rtt < 0) return;  // clock ran backwards / garbled echo: not usable
  if (valid_ && rtt >= best_rtt_ns_) return;
  // Midpoint method: assume the remote sampled its clock halfway through
  // the round trip. The asymmetric-delay error is bounded by RTT/2, so the
  // minimum-RTT observation is the best available estimate.
  best_rtt_ns_ = rtt;
  offset_ns_ = remote_now_ns - (local_send_ns + rtt / 2);
  valid_ = true;
}

FleetAggregator::FleetAggregator(MetricsRegistry* registry, bool trace_enabled)
    : registry_(registry),
      trace_enabled_(trace_enabled),
      epoch_ns_(steady_now_ns()),
      // Run-unique and nonzero: a worker treats trace_id 0 as "tracing
      // off", and the epoch ns value cannot be 0 on any real steady clock.
      trace_id_(trace_enabled
                    ? static_cast<std::uint64_t>(epoch_ns_) | 1u
                    : 0) {}

void FleetAggregator::observe_clock(std::uint32_t worker,
                                    std::int64_t coord_send_ns,
                                    std::int64_t coord_recv_ns,
                                    std::int64_t worker_now_ns) {
  if (worker_now_ns == 0) return;  // v2 worker: no clock sample in the Pong
  std::lock_guard lock(mu_);
  workers_[worker].clock.observe(coord_send_ns, coord_recv_ns, worker_now_ns);
}

ClockOffsetEstimator FleetAggregator::clock_offset(std::uint32_t worker) const {
  std::lock_guard lock(mu_);
  const auto it = workers_.find(worker);
  return it != workers_.end() ? it->second.clock : ClockOffsetEstimator{};
}

std::uint64_t FleetAggregator::begin_assign(std::uint32_t task,
                                            std::uint32_t worker,
                                            std::uint32_t attempt,
                                            std::int64_t now_ns) {
  if (!trace_enabled_) return 0;
  std::lock_guard lock(mu_);
  const std::uint64_t id = next_span_id_++;
  open_assigns_[id] = OpenAssign{task, worker, attempt, now_ns};
  return id;
}

void FleetAggregator::end_assign(std::uint64_t span_id, std::int64_t now_ns,
                                 bool committed) {
  if (span_id == 0) return;
  std::lock_guard lock(mu_);
  const auto it = open_assigns_.find(span_id);
  if (it == open_assigns_.end()) return;
  const OpenAssign open = it->second;
  open_assigns_.erase(it);
  FleetEvent fe;
  fe.pid = kCoordinatorPid;
  fe.event.name = "task.assign";
  fe.event.tid = open.worker;  // one coordinator lane per worker slot
  fe.event.ts_us = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, (open.start_ns - epoch_ns_) / 1000));
  fe.event.dur_us = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, (now_ns - open.start_ns) / 1000));
  fe.event.depth = 0;
  fe.event.args = {{"task", open.task},
                   {"worker", open.worker},
                   {"attempt", open.attempt},
                   {"committed", committed ? 1 : 0}};
  events_.push_back(std::move(fe));
}

void FleetAggregator::on_worker_fresh(std::uint32_t worker) {
  std::lock_guard lock(mu_);
  WorkerState& ws = workers_[worker];
  // The new process starts its counters at zero and its span indices at
  // zero, on a brand-new clock. Fold what the dead incarnation reported so
  // published totals stay cumulative, and forget everything per-process.
  for (const auto& [name, value] : ws.counter_latest) {
    ws.counter_base[name] += value;
  }
  ws.counter_latest.clear();
  ws.span_high_water = 0;
  ws.clock = ClockOffsetEstimator{};
}

std::uint64_t FleetAggregator::folded_counter_locked(
    const WorkerState& ws, const std::string& name) const {
  std::uint64_t total = 0;
  const auto base = ws.counter_base.find(name);
  if (base != ws.counter_base.end()) total += base->second;
  const auto latest = ws.counter_latest.find(name);
  if (latest != ws.counter_latest.end()) total += latest->second;
  return total;
}

std::size_t FleetAggregator::ingest(const FleetSnapshot& snap) {
  std::lock_guard lock(mu_);
  WorkerState& ws = workers_[snap.worker_id];
  ++ws.snapshots;
  ++snapshots_total_;
  // Absolute values: replays and reordering are last-write-wins harmless.
  for (const auto& [name, value] : snap.counters) {
    ws.counter_latest[name] = value;
  }
  for (const auto& [name, value] : snap.gauges) {
    ws.gauge_latest[name] = value;
  }
  if (snap.rss_kb >= 0) ws.rss_kb = snap.rss_kb;
  if (snap.peak_rss_kb >= 0) ws.peak_rss_kb = snap.peak_rss_kb;
  if (snap.cpu_user_us >= 0) ws.cpu_user_us = snap.cpu_user_us;
  if (snap.cpu_sys_us >= 0) ws.cpu_sys_us = snap.cpu_sys_us;

  std::size_t accepted = 0;
  if (trace_enabled_) {
    for (std::size_t i = 0; i < snap.spans.size(); ++i) {
      const std::uint64_t global_index = snap.first_span_index + i;
      if (global_index < ws.span_high_water) continue;  // replayed span
      ws.span_high_water = global_index + 1;
      const TraceEvent& span = snap.spans[i];
      // Worker-relative us -> worker absolute ns -> coordinator ns ->
      // trace-epoch-relative us. The offset estimate comes from the same
      // incarnation's Pongs (reset on respawn), so the rebase is valid.
      const std::int64_t worker_ns =
          snap.trace_epoch_ns +
          static_cast<std::int64_t>(span.ts_us) * 1000;
      const std::int64_t coord_ns = ws.clock.rebase(worker_ns);
      FleetEvent fe;
      fe.pid = kWorkerPidBase + snap.worker_id;
      fe.event = span;
      fe.event.ts_us = static_cast<std::uint64_t>(
          std::max<std::int64_t>(0, (coord_ns - epoch_ns_) / 1000));
      events_.push_back(std::move(fe));
      ++accepted;
    }
  }
  publish_locked();
  return accepted;
}

void FleetAggregator::publish_locked() {
  if (!registry_) return;
  std::uint64_t fleet_tasks = 0;
  std::uint64_t fleet_compute_us = 0;
  std::uint64_t fleet_claims = 0;
  std::int64_t fleet_rss_kb = 0;
  std::uint64_t reporting = 0;
  for (const auto& [id, ws] : workers_) {
    if (ws.snapshots == 0) continue;  // clock-only entry: nothing to publish
    ++reporting;
    const std::string prefix = "fleet.worker." + std::to_string(id) + ".";
    // Union of base and latest names — a counter the new incarnation has
    // not touched yet must keep publishing its folded base.
    std::map<std::string, std::uint64_t> names;
    for (const auto& [name, value] : ws.counter_base) names[name] = 0;
    for (const auto& [name, value] : ws.counter_latest) names[name] = 0;
    for (auto& [name, value] : names) {
      value = folded_counter_locked(ws, name);
      registry_->counter(prefix + name).set(value);
    }
    for (const auto& [name, value] : ws.gauge_latest) {
      registry_->gauge(prefix + name).set(value);
    }
    if (ws.rss_kb >= 0) {
      registry_->gauge(prefix + "rss_kb").set(ws.rss_kb);
      fleet_rss_kb += ws.rss_kb;
    }
    if (ws.peak_rss_kb >= 0) {
      registry_->gauge(prefix + "peak_rss_kb").set(ws.peak_rss_kb);
    }
    if (ws.cpu_user_us >= 0) {
      registry_->gauge(prefix + "cpu_user_us").set(ws.cpu_user_us);
    }
    if (ws.cpu_sys_us >= 0) {
      registry_->gauge(prefix + "cpu_sys_us").set(ws.cpu_sys_us);
    }
    fleet_tasks += names.count("tasks_executed") ? names["tasks_executed"] : 0;
    fleet_compute_us += names.count("compute_us") ? names["compute_us"] : 0;
    fleet_claims += names.count("claims_found") ? names["claims_found"] : 0;
  }
  registry_->counter("fleet.tasks_executed").set(fleet_tasks);
  registry_->counter("fleet.compute_us").set(fleet_compute_us);
  registry_->counter("fleet.claims_found").set(fleet_claims);
  registry_->counter("fleet.telemetry_snapshots").set(snapshots_total_);
  registry_->gauge("fleet.rss_kb").set(fleet_rss_kb);
  registry_->gauge("fleet.workers_reporting")
      .set(static_cast<std::int64_t>(reporting));
}

FleetAggregator::Summary FleetAggregator::summary() const {
  std::lock_guard lock(mu_);
  Summary s;
  s.snapshots = snapshots_total_;
  for (const auto& [id, ws] : workers_) {
    if (ws.snapshots == 0) continue;
    ++s.workers_reporting;
    s.tasks_executed += folded_counter_locked(ws, "tasks_executed");
    s.compute_us += folded_counter_locked(ws, "compute_us");
    if (ws.rss_kb >= 0) s.rss_kb += ws.rss_kb;
  }
  return s;
}

std::vector<FleetEvent> FleetAggregator::events() const {
  std::vector<FleetEvent> out;
  {
    std::lock_guard lock(mu_);
    out = events_;
    for (const auto& [id, open] : open_assigns_) {
      FleetEvent fe;
      fe.pid = kCoordinatorPid;
      fe.event.name = "task.assign";
      fe.event.tid = open.worker;
      fe.event.ts_us = static_cast<std::uint64_t>(
          std::max<std::int64_t>(0, (open.start_ns - epoch_ns_) / 1000));
      fe.event.dur_us = 0;
      fe.event.args = {{"task", open.task},
                       {"worker", open.worker},
                       {"attempt", open.attempt},
                       {"committed", 0}};
      out.push_back(std::move(fe));
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FleetEvent& a, const FleetEvent& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     if (a.event.tid != b.event.tid)
                       return a.event.tid < b.event.tid;
                     if (a.event.ts_us != b.event.ts_us)
                       return a.event.ts_us < b.event.ts_us;
                     return a.event.dur_us > b.event.dur_us;
                   });
  return out;
}

std::string FleetAggregator::chrome_trace_json() const {
  const std::vector<FleetEvent> sorted = events();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Label each pid lane so the viewer shows "coordinator" / "worker N"
  // instead of bare numbers.
  std::vector<std::uint32_t> pids;
  {
    std::lock_guard lock(mu_);
    pids.push_back(kCoordinatorPid);
    for (const auto& [id, ws] : workers_) {
      pids.push_back(kWorkerPidBase + id);
    }
  }
  for (const std::uint32_t pid : pids) {
    const std::string label =
        pid == kCoordinatorPid
            ? "coordinator"
            : "worker " + std::to_string(pid - kWorkerPidBase);
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
           json_escape(label) + "\"}}";
  }
  for (const FleetEvent& fe : sorted) {
    const TraceEvent& e = fe.event;
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"" + json_escape(e.name) +
           "\",\"cat\":\"weakkeys\",\"ph\":\"X\",\"pid\":" +
           std::to_string(fe.pid) + ",\"tid\":" + std::to_string(e.tid) +
           ",\"ts\":" + std::to_string(e.ts_us) +
           ",\"dur\":" + std::to_string(e.dur_us);
    if (!e.args.empty()) {
      out += ",\"args\":{";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ",";
        out += "\"" + json_escape(e.args[i].first) +
               "\":" + std::to_string(e.args[i].second);
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string FleetAggregator::fleet_metrics_json() const {
  std::lock_guard lock(mu_);
  std::uint64_t fleet_tasks = 0;
  std::uint64_t fleet_compute_us = 0;
  std::int64_t fleet_rss_kb = 0;
  std::uint64_t reporting = 0;
  std::string workers = "[";
  bool first = true;
  for (const auto& [id, ws] : workers_) {
    if (ws.snapshots == 0) continue;
    ++reporting;
    if (!first) workers += ",";
    first = false;
    workers += "{\"id\":" + std::to_string(id);
    workers += ",\"snapshots\":" + std::to_string(ws.snapshots);
    std::map<std::string, std::uint64_t> names;
    for (const auto& [name, value] : ws.counter_base) names[name] = 0;
    for (const auto& [name, value] : ws.counter_latest) names[name] = 0;
    workers += ",\"counters\":{";
    bool first_counter = true;
    for (auto& [name, value] : names) {
      value = folded_counter_locked(ws, name);
      if (!first_counter) workers += ",";
      first_counter = false;
      workers += "\"" + json_escape(name) + "\":" + std::to_string(value);
    }
    workers += "}";
    fleet_tasks += names.count("tasks_executed") ? names["tasks_executed"] : 0;
    fleet_compute_us += names.count("compute_us") ? names["compute_us"] : 0;
    if (ws.rss_kb >= 0) {
      workers += ",\"rss_kb\":" + std::to_string(ws.rss_kb);
      fleet_rss_kb += ws.rss_kb;
    }
    if (ws.peak_rss_kb >= 0) {
      workers += ",\"peak_rss_kb\":" + std::to_string(ws.peak_rss_kb);
    }
    if (ws.cpu_user_us >= 0) {
      workers += ",\"cpu_user_us\":" + std::to_string(ws.cpu_user_us);
    }
    if (ws.cpu_sys_us >= 0) {
      workers += ",\"cpu_sys_us\":" + std::to_string(ws.cpu_sys_us);
    }
    if (ws.clock.valid()) {
      workers += ",\"clock\":{\"offset_ns\":" +
                 std::to_string(ws.clock.offset_ns()) +
                 ",\"rtt_ns\":" + std::to_string(ws.clock.best_rtt_ns()) + "}";
    }
    workers += "}";
  }
  workers += "]";
  std::string out = "{\"workers\":" + workers;
  out += ",\"fleet\":{\"workers_reporting\":" + std::to_string(reporting);
  out += ",\"telemetry_snapshots\":" + std::to_string(snapshots_total_);
  out += ",\"tasks_executed\":" + std::to_string(fleet_tasks);
  out += ",\"compute_us\":" + std::to_string(fleet_compute_us);
  out += ",\"rss_kb\":" + std::to_string(fleet_rss_kb);
  out += ",\"spans\":" + std::to_string(events_.size());
  out += "}}";
  return out;
}

}  // namespace weakkeys::obs

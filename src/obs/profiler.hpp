// Sampling wall-clock profiler (DESIGN.md §5k).
//
// A background thread wakes `hz` times per second and snapshots every
// registered thread's current frame stack (obs/prof_stack.hpp — Span names
// plus the bn kernel leaf frames). Samples aggregate into collapsed-stack
// form ("frame1;frame2 count", one line per unique stack — the format
// flamegraph.pl and speedscope ingest), written at stop() through a
// pluggable writer so higher layers can install util::atomic_write_file
// without obs growing an upward dependency.
//
// Sampling wall-clock rather than CPU time is deliberate: the coordinator
// blocks on sockets and the thread pool parks between tasks, and "where do
// threads spend wall time" is the question the out-of-core design needs
// answered. Rollups land in the MetricsRegistry (`profiler.ticks`,
// `profiler.samples`, `profiler.self.<frame>`) so /status, /metrics, the
// monitor JSONL, and the heartbeat line can carry top self-time frames.
//
// Off by default; when no Profiler is running, instrumentation costs one
// relaxed load per Span/Frame construction (see prof_stack.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace weakkeys::obs {

class MetricsRegistry;

struct ProfilerConfig {
  /// Sampling cadence. Values <= 0 make start() a no-op. 97 (prime) by
  /// convention, so the sampler cannot phase-lock with millisecond-period
  /// loops elsewhere in the process.
  double hz = 97.0;
  /// Collapsed-stack destination; empty disables file output.
  std::string out_path;
  /// Writes `content` to `path`, returning success. Higher layers install
  /// util::atomic_write_file here (obs sits below util and cannot call it
  /// directly); the default is a plain truncating write.
  std::function<bool(const std::string& path, const std::string& content)>
      writer;
  /// Receives tick/sample/self-time rollups when non-null.
  MetricsRegistry* registry = nullptr;
};

class Profiler {
 public:
  explicit Profiler(ProfilerConfig config);
  ~Profiler();  ///< stops and flushes if still running
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Enables frame collection globally and launches the sampler thread.
  /// Idempotent while running.
  void start();

  /// Stops sampling, disables frame collection, publishes final rollups,
  /// and writes the collapsed-stack file (if configured). Idempotent.
  void stop();

  [[nodiscard]] bool running() const;

  /// Sampler wake-ups so far.
  [[nodiscard]] std::uint64_t ticks() const;
  /// Thread-stack samples recorded so far (<= ticks * live threads; ticks
  /// where every stack is empty contribute nothing).
  [[nodiscard]] std::uint64_t samples() const;

  /// Current aggregate in collapsed-stack form, lines sorted by stack name
  /// for deterministic output.
  [[nodiscard]] std::string collapsed() const;

  /// Frames ranked by self time (sample count where the frame was the
  /// innermost), descending, at most `top_n` entries.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> self_times(
      std::size_t top_n) const;

 private:
  void sampler_loop();
  void publish_rollups_locked();

  struct Impl;
  Impl* impl_;
};

/// Reads `WEAKKEYS_PROFILE_HZ` (0 or unset/unparsable → disabled).
double profile_hz_from_env();
/// Reads `WEAKKEYS_PROFILE_OUT`; empty when unset.
std::string profile_out_from_env();

}  // namespace weakkeys::obs

#include "obs/prof_stack.hpp"

#include <map>
#include <mutex>

namespace weakkeys::obs::prof {

namespace {

std::atomic<bool> g_enabled{false};

/// One thread's frame stack. Owned by a thread_local handle; registered in
/// the global list for the sampler. The depth counter can exceed kMaxDepth
/// (deep recursion keeps push/pop balanced); only the first kMaxDepth
/// frames are recorded.
struct ThreadStack {
  std::atomic<const char*> frames[kMaxDepth];
  std::atomic<std::uint32_t> depth{0};
};

/// Guards the registry of live thread stacks. The sampler holds it while
/// reading, and a dying thread holds it while unregistering, so the sampler
/// can never read a freed stack. Both are leaked so threads outliving
/// static destruction can still unregister safely.
std::mutex& registry_mu() {
  static auto* mu = new std::mutex();
  return *mu;
}

std::vector<ThreadStack*>& registry() {
  static auto* stacks = new std::vector<ThreadStack*>();
  return *stacks;
}

/// Registers on first use, unregisters when the thread dies.
struct ThreadHandle {
  ThreadStack stack;
  ThreadHandle() {
    std::lock_guard lock(registry_mu());
    registry().push_back(&stack);
  }
  ~ThreadHandle() {
    std::lock_guard lock(registry_mu());
    auto& stacks = registry();
    for (auto it = stacks.begin(); it != stacks.end(); ++it) {
      if (*it == &stack) {
        stacks.erase(it);
        break;
      }
    }
  }
};

ThreadStack& local_stack() {
  thread_local ThreadHandle handle;
  return handle.stack;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

const char* intern(const std::string& name) {
  static std::mutex mu;
  // Leaked on purpose: interned labels must outlive every thread that might
  // still be sampled holding one, including detached threads at exit.
  static auto* table = new std::map<std::string, const char*>();
  std::lock_guard lock(mu);
  const auto it = table->find(name);
  if (it != table->end()) return it->second;
  char* copy = new char[name.size() + 1];
  name.copy(copy, name.size());
  copy[name.size()] = '\0';
  (*table)[name] = copy;
  return copy;
}

void push_frame(const char* label) {
  ThreadStack& st = local_stack();
  const std::uint32_t d = st.depth.load(std::memory_order_relaxed);
  if (d < kMaxDepth) st.frames[d].store(label, std::memory_order_relaxed);
  // Release so a sampler that observes the new depth also observes the
  // frame stored above.
  st.depth.store(d + 1, std::memory_order_release);
}

void pop_frame() {
  ThreadStack& st = local_stack();
  const std::uint32_t d = st.depth.load(std::memory_order_relaxed);
  if (d > 0) st.depth.store(d - 1, std::memory_order_release);
}

std::vector<StackSample> sample_all_stacks() {
  std::vector<StackSample> out;
  std::lock_guard lock(registry_mu());
  for (ThreadStack* st : registry()) {
    const std::uint32_t depth =
        std::min<std::uint32_t>(st->depth.load(std::memory_order_acquire),
                                static_cast<std::uint32_t>(kMaxDepth));
    if (depth == 0) continue;
    StackSample sample;
    sample.reserve(depth);
    for (std::uint32_t i = 0; i < depth; ++i) {
      const char* frame = st->frames[i].load(std::memory_order_relaxed);
      // A slot below the observed depth can transiently read null if the
      // owning thread is mid-push on a freshly registered stack; drop the
      // tail rather than fabricate a frame.
      if (frame == nullptr) break;
      sample.push_back(frame);
    }
    if (!sample.empty()) out.push_back(std::move(sample));
  }
  return out;
}

std::size_t registered_threads() {
  std::lock_guard lock(registry_mu());
  return registry().size();
}

}  // namespace weakkeys::obs::prof

// Thread-safe metrics for the study pipeline: named monotonic counters,
// signed gauges, and fixed-bucket latency histograms.
//
// Updates are lock-free atomics on the hot path; the registry mutex is only
// taken to create (or look up) an instrument by name, so call sites resolve
// their instruments once and hold the returned reference — instrument
// references are stable for the registry's lifetime.
//
// Naming convention (see DESIGN.md §5e): dot-separated lowercase paths,
// `<subsystem>.<noun>[.<qualifier>]`, e.g. `ingest.drop.even-modulus`,
// `coordinator.worker.3.attempts`, `threadpool.task_us`. Duration-valued
// histograms carry a `_us` suffix and record microseconds.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace weakkeys::obs {

/// Monotonic counter. Overflow wraps mod 2^64 (unsigned arithmetic; the
/// wrap is well-defined and tested, not UB).
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Sets an absolute value (for mirroring an externally computed total).
  void set(std::uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed value (queue depths, in-flight task counts).
class Gauge {
 public:
  void set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram. Bucket `i` counts samples with
/// `value <= bounds[i]` (and greater than `bounds[i-1]`); one implicit
/// overflow bucket catches everything above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void record(std::uint64_t value);

  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const {
    return bounds_;
  }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }

  /// Latency buckets in microseconds: 1us .. ~67s in powers of four.
  static std::vector<std::uint64_t> default_latency_bounds_us();

  /// Allocation-size buckets in bytes: 16B .. 1GiB in powers of two. The
  /// latency buckets are the wrong shape for sizes — allocators quantize
  /// by powers of two, so power-of-four bounds smear adjacent size classes
  /// into one bucket.
  static std::vector<std::uint64_t> default_bytes_bounds();

 private:
  std::vector<std::uint64_t> bounds_;  ///< ascending upper bounds
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Point-in-time copy of every instrument, for assertions and export.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  struct HistogramValue {
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> bucket_counts;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;

    /// Estimated q-quantile (q in [0,1]) by linear interpolation within the
    /// fixed buckets: the sample at rank q*count is located in its bucket
    /// and interpolated between the bucket's lower and upper bounds. The
    /// overflow bucket interpolates up to the observed max. Returns 0 when
    /// the histogram is empty; never exceeds max.
    [[nodiscard]] double quantile(double q) const;
    [[nodiscard]] double p50() const { return quantile(0.50); }
    [[nodiscard]] double p90() const { return quantile(0.90); }
    [[nodiscard]] double p99() const { return quantile(0.99); }
  };
  std::map<std::string, HistogramValue> histograms;

  /// Counter value by name; 0 when absent (never-touched counters and
  /// missing counters are indistinguishable, matching counter semantics).
  [[nodiscard]] std::uint64_t counter(const std::string& name) const;
};

class MetricsRegistry {
 public:
  /// Find-or-create by name. References remain valid for the registry's
  /// lifetime; re-registering a histogram name keeps the original bounds.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds =
                           Histogram::default_latency_bounds_us());

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Snapshot as a JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{"count","sum","max","buckets":[{"le","count"}]}}}.
  [[nodiscard]] std::string to_json() const;

 private:
  mutable std::mutex mu_;  ///< guards map shape only, never hot updates
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Escapes a string for embedding in a JSON literal (shared by the metrics
/// and trace exporters).
std::string json_escape(const std::string& s);

}  // namespace weakkeys::obs

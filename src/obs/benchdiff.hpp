// Performance-regression observatory: compares two BENCH_<suite>.json
// files (the machine-readable output of the perf_* google-benchmark
// suites, see bench/bench_json.hpp) and issues per-benchmark verdicts.
//
// Threshold model (DESIGN.md §5f): a benchmark REGRESSES when its
// candidate time exceeds baseline * (1 + threshold) AND the absolute
// slowdown exceeds the noise floor — sub-floor benchmarks jitter by
// scheduling luck, not by code, so a relative gate alone would flag pure
// noise. Improvements are the symmetric condition. Everything between is
// `ok`. Benchmarks present on only one side are reported (`new` /
// `missing`) but never fail the diff on their own.
//
// Consumed by the tools/benchdiff CLI and the CI perf-baseline job, which
// diffs fresh runs against the committed baselines in bench/baselines/.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace weakkeys::obs {

/// One benchmark run parsed from a BENCH_<suite>.json file, normalized to
/// nanoseconds. Repetitions of the same name are averaged at parse time.
struct BenchRun {
  std::string name;
  double real_time_ns = 0;
  double cpu_time_ns = 0;
  std::uint64_t iterations = 0;
};

struct BenchSuite {
  std::string suite;
  std::vector<BenchRun> runs;  ///< unique names, file order
  /// Optional whole-process peak RSS (VmHWM) recorded after the suite ran;
  /// absent in files written before the field existed.
  double peak_rss_bytes = 0;
  bool has_peak_rss = false;
};

/// Parses the JSON text of a BENCH_<suite>.json file. Throws
/// std::runtime_error with a message naming the defect on malformed input.
BenchSuite parse_bench_json(const std::string& text);

/// Converts a google-benchmark time value to ns ("ns", "us", "ms", "s").
double bench_time_to_ns(double value, const std::string& unit);

struct BenchDiffOptions {
  /// Relative gate: candidate/baseline - 1 beyond this is a regression.
  double threshold = 0.10;
  /// Absolute gate: deltas smaller than this (ns) are noise, never a
  /// verdict, regardless of the relative change.
  double noise_floor_ns = 5000.0;
  /// Relative gate for the suite-level peak-RSS comparison.
  double mem_threshold = 0.10;
  /// Absolute gate for peak RSS: allocator and page-cache jitter make small
  /// RSS deltas meaningless, so anything under this many bytes is noise.
  double mem_floor_bytes = 16.0 * 1024 * 1024;
};

enum class BenchVerdict { kOk, kImproved, kRegressed, kNew, kMissing };

const char* to_string(BenchVerdict verdict);

struct BenchDelta {
  std::string name;
  double baseline_ns = 0;   ///< 0 for kNew
  double candidate_ns = 0;  ///< 0 for kMissing
  double rel_delta = 0;     ///< candidate/baseline - 1 (0 when undefined)
  BenchVerdict verdict = BenchVerdict::kOk;
};

struct BenchDiffReport {
  std::string suite;
  BenchDiffOptions options;
  std::vector<BenchDelta> rows;  ///< baseline order, then new benchmarks
  std::size_t regressions = 0;
  std::size_t improvements = 0;
  std::size_t added = 0;
  std::size_t missing = 0;
  /// Suite-level peak-RSS comparison; meaningful only when both files
  /// carried the field. A memory regression counts into `regressions` and
  /// therefore fails ok().
  bool has_mem = false;
  double baseline_peak_rss_bytes = 0;
  double candidate_peak_rss_bytes = 0;
  double mem_rel_delta = 0;
  BenchVerdict mem_verdict = BenchVerdict::kOk;

  [[nodiscard]] bool ok() const { return regressions == 0; }
  /// Human-facing markdown report (table + totals).
  [[nodiscard]] std::string markdown() const;
  /// Machine-facing JSON report (schema in DESIGN.md §5f).
  [[nodiscard]] std::string to_json() const;
};

/// Diffs candidate against baseline under the threshold model above.
BenchDiffReport diff_benchmarks(const BenchSuite& baseline,
                                const BenchSuite& candidate,
                                const BenchDiffOptions& options = {});

}  // namespace weakkeys::obs

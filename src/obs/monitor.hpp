// Live run monitor: a background thread that periodically snapshots the
// MetricsRegistry and turns the pipeline from a black box into a watchable
// process (see DESIGN.md §5f).
//
// Each tick the monitor
//   - samples process self-metrics (RSS, CPU) into the registry,
//   - takes a MetricsSnapshot, computes per-counter deltas against the
//     previous tick and derives per-second rates from the *monotonic*
//     clock (wrap-safe: unsigned subtraction yields the true delta even
//     across a 2^64 counter wrap, so rates are never negative),
//   - appends one JSON object line to the configured JSONL file
//     (`StudyConfig::monitor_path` / WEAKKEYS_MONITOR), and
//   - emits a human heartbeat through the TelemetrySink: ingest rate, GCD
//     tasks done/total with ETA, per-worker liveness derived from the
//     `coordinator.worker.<w>.attempts` counters, thread-pool queue depth.
//
// stop() (and the destructor) writes one final snapshot marked
// `"final":true` whose cumulative counters equal the registry's end state
// exactly — the time series always closes on the authoritative totals.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace weakkeys::obs {

// -- rate / ETA derivation (pure helpers, unit-tested) ----------------------

/// Delta between two readings of a monotonic counter. Unsigned subtraction
/// is exact modulo 2^64, so a counter that wrapped past 2^64 still yields
/// the true (small, positive) delta — never a huge bogus jump and never
/// anything negative.
constexpr std::uint64_t counter_delta(std::uint64_t prev,
                                      std::uint64_t cur) {
  return cur - prev;
}

/// Events per second given a delta and a monotonic-clock interval. Zero
/// when the interval is empty (never negative, never a division by zero).
double rate_per_sec(std::uint64_t delta, std::uint64_t interval_us);

/// Estimated seconds until `total` given `done` so far and the current
/// completion rate; negative when unknowable (rate 0 or already done).
double eta_seconds(std::uint64_t done, std::uint64_t total,
                   double rate_per_sec);

/// Serializes one monitor tick as a single-line JSON object (the JSONL
/// snapshot schema in DESIGN.md §5f). `prev` may be null (first tick: no
/// deltas or rates). Exposed for tests.
std::string monitor_snapshot_json(const MetricsSnapshot& cur,
                                  const MetricsSnapshot* prev,
                                  std::uint64_t seq, std::uint64_t elapsed_us,
                                  std::uint64_t interval_us,
                                  std::int64_t wall_unix_ms, bool final);

// -- the monitor thread -----------------------------------------------------

struct MonitorConfig {
  /// JSONL time-series path; empty writes no file (heartbeats only).
  std::string jsonl_path;
  /// Snapshot / heartbeat cadence.
  std::chrono::milliseconds interval{250};
  /// Emit human heartbeat lines through the telemetry sink each tick.
  bool heartbeat = true;
  /// Sample process RSS/CPU into `process.*` instruments each tick.
  bool sample_process_stats = true;
  /// Invoked with each non-final tick's snapshot, on the monitor thread —
  /// the hook the lifecycle layer hangs its Watchdog (and deadline
  /// promotion) on. Must not call back into the monitor.
  std::function<void(const MetricsSnapshot&)> on_tick;
};

class Monitor {
 public:
  /// The telemetry bundle must outlive the monitor.
  Monitor(Telemetry& telemetry, MonitorConfig config);
  ~Monitor();  ///< stops (writing the final snapshot) if still running

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Starts the background thread. Returns false (and warns through the
  /// sink) when the JSONL file cannot be opened; heartbeats still run.
  bool start();

  /// Stops the thread and writes the final snapshot. Idempotent and safe
  /// to call concurrently with the ticking thread.
  void stop();

  [[nodiscard]] bool running() const { return running_.load(); }
  /// JSONL lines written so far (including the final one after stop()).
  [[nodiscard]] std::uint64_t snapshots_written() const {
    return snapshots_.load();
  }

 private:
  void loop();
  void tick(bool final);
  std::string heartbeat_line(const MetricsSnapshot& cur,
                             const MetricsSnapshot& prev,
                             std::uint64_t interval_us) const;

  Telemetry& telemetry_;
  const MonitorConfig config_;

  std::mutex mu_;  ///< guards tick state (file, prev snapshot, seq)
  std::ofstream out_;
  MetricsSnapshot prev_;
  bool have_prev_ = false;
  std::uint64_t seq_ = 0;
  std::chrono::steady_clock::time_point epoch_;
  std::chrono::steady_clock::time_point prev_tick_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_requested_ = false;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> snapshots_{0};
};

}  // namespace weakkeys::obs

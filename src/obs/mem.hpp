// Per-subsystem memory accounting (DESIGN.md §5k).
//
// A single translation unit (mem.cpp) replaces the global operator
// new/delete pair with thin wrappers that, while accounting is enabled,
// attribute every heap allocation to the subsystem label currently on the
// calling thread's MemScope stack ("bn.limbs",
// "batchgcd.product_tree.level<k>", "cluster.outbox", ...). Accounting is
// symmetric — both the allocation and the free are measured with
// malloc_usable_size — so the *global* live-byte figure is exact no matter
// when accounting was switched on. Per-label live bytes are approximate:
// a free is charged to the label active where the free happens, which for
// scope-local temporaries (the overwhelming majority of bignum traffic)
// is the same label that allocated them.
//
// A soft budget (`WEAKKEYS_MEM_BUDGET_MB`) latches an alarm the first time
// global live bytes cross the watermark. Nothing ever aborts: pollers
// (monitor tick, Study stage boundaries) call consume_budget_alarm() and
// emit exactly one watchdog-visible event.
//
// Cost when disabled (the default): one relaxed atomic load and a branch
// per allocation and per free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace weakkeys::obs {

class MetricsRegistry;

namespace mem {

/// True when the platform supports usable-size queries (glibc); accounting
/// is a silent no-op elsewhere.
bool supported();

/// Enables attribution. Idempotent. When `registry` is non-null, an
/// allocation-size histogram `mem.alloc_bytes` (power-of-two byte buckets)
/// is created up front and fed from the hook.
void enable(MetricsRegistry* registry = nullptr);
void disable();
bool enabled();

/// Arms (or clears, with 0) the soft budget in bytes. Crossing it latches
/// the alarm once per arm; the run is never interrupted.
void set_budget_bytes(std::uint64_t bytes);
std::uint64_t budget_bytes();

/// True exactly once after live bytes first cross the armed budget.
bool consume_budget_alarm();

/// Registers `label`, returning a small id for MemScope. Idempotent; the
/// label string is copied with process lifetime. Returns -1 when the slot
/// table is full (such scopes attribute to the untracked bucket).
int register_label(const std::string& label);

struct LabelStats {
  std::string label;
  std::int64_t live_bytes = 0;  ///< approximate (see header comment)
  std::uint64_t peak_bytes = 0;
  std::uint64_t cumulative_bytes = 0;
  std::uint64_t allocations = 0;
};

struct Totals {
  std::int64_t live_bytes = 0;  ///< exact while enabled
  std::uint64_t peak_bytes = 0;
  std::uint64_t cumulative_bytes = 0;
  std::uint64_t allocations = 0;
  bool budget_alarmed = false;  ///< latched view (does not consume)
};

Totals totals();
std::vector<LabelStats> label_stats();

/// Mirrors totals and per-label stats into `registry` as gauges
/// `mem.live_bytes` / `mem.peak_bytes`, counter `mem.cumulative_bytes`,
/// and `mem.<label>.live_bytes` / `.peak_bytes` / `.cumulative_bytes`.
void publish(MetricsRegistry& registry);

/// Test hook: zeroes every counter, the budget, and the alarm latch.
/// Label registrations survive (call sites cache their ids in statics).
/// Only meaningful while accounting is disabled.
void reset_for_test();

}  // namespace mem

/// RAII subsystem attribution scope. Construct with an id from
/// mem::register_label(); nested scopes shadow outer ones. When
/// `only_if_unattributed` is set the scope engages only when no label is
/// active — how bn tags its own traffic without stealing allocations from
/// a batchgcd/cluster scope further up the stack.
class MemScope {
 public:
  explicit MemScope(int label_id, bool only_if_unattributed = false);
  ~MemScope();
  MemScope(const MemScope&) = delete;
  MemScope& operator=(const MemScope&) = delete;

 private:
  bool pushed_ = false;
};

}  // namespace weakkeys::obs

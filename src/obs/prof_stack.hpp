// Per-thread current-stack snapshots for the sampling profiler.
//
// Every thread that executes instrumented code keeps a small fixed-depth
// stack of frame labels (stable `const char*`s: string literals or interned
// names). obs::Span pushes its name here while profiling is enabled, and
// hot kernels (bn multiply/divide) push leaf frames directly — so a
// background sampler can reconstruct "what is this thread doing right now"
// without stopping it.
//
// Concurrency model: the owning thread writes its stack with relaxed
// atomic stores; the sampler reads depth with acquire and the frame slots
// with relaxed loads. A sample taken mid-push/pop may attribute to the
// frame that was live a few nanoseconds earlier or later — harmless for a
// statistical profiler, and every pointer it can read is a label with
// process lifetime, so there is no use-after-free window.
//
// Cost when profiling is off: one relaxed atomic load and a branch per
// Frame construction — the zero-overhead contract the perf suites gate.
//
// This header deliberately depends on nothing but the standard library so
// the bn layer can include it without widening its dependency surface.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

namespace weakkeys::obs::prof {

/// Maximum frames captured per thread; deeper nesting keeps counting depth
/// but the frames beyond the cap are not recorded.
inline constexpr std::size_t kMaxDepth = 64;

/// Global profiling switch (off by default). Flipped by obs::Profiler.
bool enabled();
void set_enabled(bool on);

/// Interns `name`, returning a pointer with process lifetime. Idempotent
/// and thread-safe; intended for low-cardinality span names. String
/// literals do not need interning — pass them to Frame directly.
const char* intern(const std::string& name);

/// Pushes `label` (a stable pointer) on the calling thread's frame stack.
/// Callers must pop exactly what they pushed (LIFO); use Frame for RAII.
void push_frame(const char* label);
void pop_frame();

/// One sampled thread stack, outermost frame first.
using StackSample = std::vector<const char*>;

/// Snapshots every registered thread's current stack. Threads with empty
/// stacks are skipped. Safe to call concurrently with push/pop.
std::vector<StackSample> sample_all_stacks();

/// Number of threads that have ever pushed a frame and are still alive.
std::size_t registered_threads();

/// RAII frame. A null label, or profiling being disabled at construction,
/// makes it inert; a frame pushed while enabled is popped even if
/// profiling was disabled in between (push/pop stay balanced).
class Frame {
 public:
  explicit Frame(const char* label) {
    if (label != nullptr && enabled()) {
      push_frame(label);
      pushed_ = true;
    }
  }
  ~Frame() {
    if (pushed_) pop_frame();
  }
  Frame(const Frame&) = delete;
  Frame& operator=(const Frame&) = delete;

 private:
  bool pushed_ = false;
};

}  // namespace weakkeys::obs::prof

#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/prof_stack.hpp"

namespace weakkeys::obs {

namespace {

/// Tracer identity for thread-local bookkeeping. Keyed by a process-unique
/// generation (not the Tracer address) so a Tracer allocated where a dead
/// one used to live cannot inherit stale thread state.
std::atomic<std::uint64_t> g_tracer_generation{1};

}  // namespace

struct Tracer::ThreadState {
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;
};

Tracer::ThreadState& Tracer::thread_state() {
  thread_local std::unordered_map<std::uint64_t, ThreadState> states;
  auto [it, fresh] = states.try_emplace(generation_);
  if (fresh) {
    std::lock_guard lock(mu_);
    it->second.tid = next_tid_++;
  }
  return it->second;
}

Tracer::Tracer(bool enabled)
    : enabled_(enabled),
      generation_(g_tracer_generation.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t Tracer::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Span Tracer::span(std::string name) {
  if (!enabled_) return Span();
  return Span(this, std::move(name));
}

Span::Span(Tracer* tracer, std::string name)
    : tracer_(tracer), name_(std::move(name)) {
  Tracer::ThreadState& st = tracer_->thread_state();
  tid_ = st.tid;
  depth_ = st.depth++;
  start_us_ = tracer_->now_us();
  // Mirror the span onto the profiler's per-thread frame stack while a
  // sampler is live. Interning makes the pointer stable for samples taken
  // after this span (and even this tracer) is gone.
  if (prof::enabled()) {
    prof::push_frame(prof::intern(name_));
    prof_pushed_ = true;
  }
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    name_ = std::move(other.name_);
    start_us_ = other.start_us_;
    tid_ = other.tid_;
    depth_ = other.depth_;
    prof_pushed_ = other.prof_pushed_;
    args_ = std::move(other.args_);
    other.tracer_ = nullptr;
    other.prof_pushed_ = false;
  }
  return *this;
}

void Span::arg(std::string key, std::int64_t value) {
  if (!tracer_) return;
  args_.emplace_back(std::move(key), value);
}

void Span::end() {
  if (!tracer_) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  // Pop exactly what the constructor pushed, even if profiling was turned
  // off mid-span — the per-thread stack must stay balanced.
  if (prof_pushed_) {
    prof::pop_frame();
    prof_pushed_ = false;
  }
  const std::uint64_t end_us = tracer->now_us();
  --tracer->thread_state().depth;
  TraceEvent event;
  event.name = std::move(name_);
  event.tid = tid_;
  event.ts_us = start_us_;
  event.dur_us = end_us >= start_us_ ? end_us - start_us_ : 0;
  event.depth = depth_;
  event.args = std::move(args_);
  tracer->record(std::move(event));
}

void Tracer::record(TraceEvent event) {
  std::lock_guard lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard lock(mu_);
    out = events_;
  }
  // Per-thread timeline order, parents before children: spans end (and
  // record) innermost-first, so raw order is children-first; sorting by
  // start time with the longer span first at ties restores parent-first.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
                     return a.depth < b.depth;
                   });
  return out;
}

std::string Tracer::chrome_trace_json() const {
  const std::vector<TraceEvent> sorted = events();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : sorted) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"" + json_escape(e.name) +
           "\",\"cat\":\"weakkeys\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
           std::to_string(e.tid) + ",\"ts\":" + std::to_string(e.ts_us) +
           ",\"dur\":" + std::to_string(e.dur_us);
    if (!e.args.empty()) {
      out += ",\"args\":{";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ",";
        out += "\"" + json_escape(e.args[i].first) +
               "\":" + std::to_string(e.args[i].second);
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

namespace {

struct StageNode {
  std::uint64_t total_us = 0;
  std::uint64_t child_us = 0;
  std::size_t count = 0;
  std::map<std::string, StageNode> children;
};

void render_stage(const std::string& name, const StageNode& node,
                  std::size_t indent, std::string& out) {
  const std::uint64_t self =
      node.total_us >= node.child_us ? node.total_us - node.child_us : 0;
  char line[256];
  std::snprintf(line, sizeof(line), "%*s%-*s total %10.3fms  self %10.3fms  x%zu\n",
                static_cast<int>(indent * 2), "",
                static_cast<int>(indent * 2 < 40 ? 40 - indent * 2 : 1),
                name.c_str(), static_cast<double>(node.total_us) / 1000.0,
                static_cast<double>(self) / 1000.0, node.count);
  out += line;
  for (const auto& [child_name, child] : node.children) {
    render_stage(child_name, child, indent + 1, out);
  }
}

}  // namespace

std::string Tracer::stage_tree() const {
  const std::vector<TraceEvent> sorted = events();
  // Rebuild each thread's span stack from (depth, order) and merge the
  // resulting paths into one aggregate tree across threads.
  StageNode root;
  std::vector<StageNode*> stack;  // stack[d] = aggregate node at depth d
  std::uint32_t tid = 0;
  bool have_tid = false;
  for (const TraceEvent& e : sorted) {
    if (!have_tid || e.tid != tid) {
      stack.clear();
      tid = e.tid;
      have_tid = true;
    }
    // A span whose parent is still open when the snapshot is taken shows up
    // with no recorded ancestor; clamp it to the deepest known level rather
    // than indexing past the rebuilt stack.
    const std::size_t depth =
        std::min<std::size_t>(e.depth, stack.size());
    stack.resize(depth);
    StageNode& parent = depth == 0 ? root : *stack[depth - 1];
    StageNode& node = parent.children[e.name];
    node.total_us += e.dur_us;
    node.count += 1;
    if (depth > 0) stack[depth - 1]->child_us += e.dur_us;
    stack.push_back(&node);
  }
  std::string out;
  for (const auto& [name, node] : root.children) {
    render_stage(name, node, 0, out);
  }
  return out;
}

}  // namespace weakkeys::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace weakkeys::obs {

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  if (bounds_.empty()) bounds_.push_back(1);
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::record(std::uint64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<std::uint64_t> Histogram::default_latency_bounds_us() {
  // 1us .. ~67s in powers of four: 14 buckets plus overflow covers
  // everything from one bignum multiply to a full remainder-tree pass.
  std::vector<std::uint64_t> bounds;
  for (std::uint64_t b = 1; b <= (1ULL << 26); b *= 4) bounds.push_back(b);
  return bounds;
}

std::vector<std::uint64_t> Histogram::default_bytes_bounds() {
  // 16B .. 1GiB in powers of two: 27 buckets plus overflow spans a single
  // limb vector header up to a whole product-tree level.
  std::vector<std::uint64_t> bounds;
  for (std::uint64_t b = 16; b <= (1ULL << 30); b *= 2) bounds.push_back(b);
  return bounds;
}

double MetricsSnapshot::HistogramValue::quantile(double q) const {
  if (count == 0 || bucket_counts.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (1-based, fractional): q of the way through
  // the sorted population.
  const double rank = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    const double in_bucket = static_cast<double>(bucket_counts[i]);
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= rank) {
      const double lo =
          i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      // The overflow bucket has no upper bound; the observed max is the
      // tightest honest edge (it is the largest sample ever recorded).
      const double hi = i < bounds.size()
                            ? static_cast<double>(bounds[i])
                            : std::max(static_cast<double>(max), lo);
      const double fraction = (rank - cumulative) / in_bucket;
      return std::min(lo + fraction * (hi - lo), static_cast<double>(max));
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(max);
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::uint64_t> bounds) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramValue v;
    v.bounds = h->bounds();
    v.bucket_counts = h->bucket_counts();
    v.count = h->count();
    v.sum = h->sum();
    v.max = h->max();
    snap.histograms[name] = std::move(v);
  }
  return snap;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  const MetricsSnapshot snap = snapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":" + std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":{\"count\":" +
           std::to_string(h.count) + ",\"sum\":" + std::to_string(h.sum) +
           ",\"max\":" + std::to_string(h.max) + ",\"buckets\":[";
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) out += ",";
      const std::string le = i < h.bounds.size()
                                 ? std::to_string(h.bounds[i])
                                 : std::string("\"inf\"");
      out += "{\"le\":" + le +
             ",\"count\":" + std::to_string(h.bucket_counts[i]) + "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace weakkeys::obs

#include "obs/status_server.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "obs/mem.hpp"
#include "obs/proc_stats.hpp"
#include "util/net.hpp"

#if defined(WEAKKEYS_HAVE_NET)
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#define WEAKKEYS_HAVE_POSIX_SOCKETS 1
#endif

namespace weakkeys::obs {

namespace {

std::string fmt_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// /status worker-liveness block for the multi-process cluster: configured vs
// alive workers, session reconnects, and per-worker link health (heartbeat
// RTT percentiles plus death count). Empty when no cluster ran, so the JSON
// stays unchanged for in-process studies.
std::string cluster_workers_json(const MetricsSnapshot& snap) {
  const std::uint64_t configured = snap.counter("cluster.workers");
  if (configured == 0) return "";
  std::string out =
      ",\"workers\":{\"configured\":" + std::to_string(configured);
  const auto alive = snap.gauges.find("cluster.workers_alive");
  out += ",\"alive\":" +
         std::to_string(alive != snap.gauges.end() ? alive->second : 0);
  out += ",\"reconnects\":" +
         std::to_string(snap.counter("cluster.reconnects"));
  out += ",\"per_worker\":[";
  constexpr const char* kPrefix = "cluster.worker.";
  const std::string kSuffix = ".rtt_us";
  bool first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (name.rfind(kPrefix, 0) != 0) continue;
    if (name.size() <= kSuffix.size() ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
            0) {
      continue;
    }
    const std::string id = name.substr(
        std::strlen(kPrefix),
        name.size() - std::strlen(kPrefix) - kSuffix.size());
    if (!first) out += ",";
    first = false;
    out += "{\"id\":\"" + json_escape(id) + "\"";
    out += ",\"rtt_count\":" + std::to_string(h.count);
    if (h.count > 0) {
      out += ",\"rtt_p50_us\":" + fmt_double(h.p50());
      out += ",\"rtt_p99_us\":" + fmt_double(h.p99());
      out += ",\"rtt_max_us\":" + std::to_string(h.max);
    }
    out += ",\"deaths\":" +
           std::to_string(
               snap.counter(std::string(kPrefix) + id + ".deaths"));
    out += "}";
  }
  out += "]}";
  return out;
}

// /status fleet block: rollups plus per-worker process stats merged from v3
// telemetry exports (the fleet.worker.<id>.* / fleet.* registry metrics
// published by obs::FleetAggregator). Empty until a worker has reported, so
// the JSON stays unchanged for in-process studies and v2 fleets.
std::string fleet_status_json(const MetricsSnapshot& snap) {
  const auto reporting = snap.gauges.find("fleet.workers_reporting");
  if (reporting == snap.gauges.end() || reporting->second <= 0) return "";
  std::string out = ",\"fleet\":{\"workers_reporting\":" +
                    std::to_string(reporting->second);
  out += ",\"telemetry_snapshots\":" +
         std::to_string(snap.counter("fleet.telemetry_snapshots"));
  out += ",\"tasks_executed\":" +
         std::to_string(snap.counter("fleet.tasks_executed"));
  out += ",\"compute_us\":" + std::to_string(snap.counter("fleet.compute_us"));
  const auto rss = snap.gauges.find("fleet.rss_kb");
  if (rss != snap.gauges.end()) {
    out += ",\"rss_kb\":" + std::to_string(rss->second);
  }
  out += ",\"per_worker\":[";
  constexpr const char* kPrefix = "fleet.worker.";
  // Worker ids come from the gauge namespace — every reporting worker
  // publishes at least one fleet.worker.<id>.* gauge — and arrive grouped
  // because the snapshot maps are ordered.
  std::string last_id;
  bool first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (name.rfind(kPrefix, 0) != 0) continue;
    const std::size_t id_end = name.find('.', std::strlen(kPrefix));
    if (id_end == std::string::npos) continue;
    const std::string id =
        name.substr(std::strlen(kPrefix), id_end - std::strlen(kPrefix));
    if (id == last_id) continue;
    last_id = id;
    const std::string p = std::string(kPrefix) + id + ".";
    if (!first) out += ",";
    first = false;
    out += "{\"id\":\"" + json_escape(id) + "\"";
    for (const char* g : {"rss_kb", "peak_rss_kb", "cpu_user_us",
                          "cpu_sys_us", "queue_depth", "mem_live_kb",
                          "mem_peak_kb"}) {
      const auto it = snap.gauges.find(p + g);
      if (it != snap.gauges.end()) {
        out += ",\"" + std::string(g) + "\":" + std::to_string(it->second);
      }
    }
    for (const char* c : {"tasks_executed", "compute_us", "claims_found"}) {
      out += ",\"" + std::string(c) +
             "\":" + std::to_string(snap.counter(p + c));
    }
    out += "}";
  }
  out += "]}";
  return out;
}

// /status sampling-profiler block: tick/sample totals plus the top self-time
// frames from the profiler.self.<frame> rollup counters the sampler publishes
// every tick. Empty until the profiler has taken a sample, so the JSON stays
// unchanged for unprofiled runs.
std::string profile_status_json(const MetricsSnapshot& snap) {
  const std::uint64_t samples = snap.counter("profiler.samples");
  if (samples == 0) return "";
  std::string out = ",\"profile\":{\"ticks\":" +
                    std::to_string(snap.counter("profiler.ticks"));
  out += ",\"samples\":" + std::to_string(samples);
  constexpr const char* kPrefix = "profiler.self.";
  std::vector<std::pair<std::uint64_t, std::string>> frames;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind(kPrefix, 0) != 0) continue;
    frames.emplace_back(value, name.substr(std::strlen(kPrefix)));
  }
  std::sort(frames.begin(), frames.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  constexpr std::size_t kTopN = 10;
  if (frames.size() > kTopN) frames.resize(kTopN);
  out += ",\"top_self\":[";
  bool first = true;
  for (const auto& [count, frame] : frames) {
    if (!first) out += ",";
    first = false;
    out += "{\"frame\":\"" + json_escape(frame) +
           "\",\"samples\":" + std::to_string(count) + "}";
  }
  out += "]}";
  return out;
}

// /status memory block: live process RSS/peak sampled on request (fresher
// than the last monitor tick) plus per-subsystem attribution from the heap
// hooks when accounting is on. Empty when accounting never ran and /proc has
// nothing, so the JSON stays unchanged on unsupported platforms.
std::string memory_status_json() {
  const ProcSelfStats proc = sample_proc_self();
  const bool accounting = mem::enabled() || mem::totals().cumulative_bytes > 0;
  if (!proc.rss_available && !accounting) return "";
  std::string out = ",\"memory\":{";
  bool first = true;
  const auto field = [&](const std::string& key, std::int64_t value) {
    if (!first) out += ",";
    first = false;
    out += "\"" + key + "\":" + std::to_string(value);
  };
  if (proc.rss_available) field("rss_kb", proc.rss_kb);
  if (proc.peak_rss_available) field("peak_rss_kb", proc.peak_rss_kb);
  if (accounting) {
    const mem::Totals totals = mem::totals();
    field("tracked_live_bytes",
          static_cast<std::int64_t>(totals.live_bytes));
    field("tracked_peak_bytes",
          static_cast<std::int64_t>(totals.peak_bytes));
    field("tracked_cumulative_bytes",
          static_cast<std::int64_t>(totals.cumulative_bytes));
    field("allocations", static_cast<std::int64_t>(totals.allocations));
    if (mem::budget_bytes() > 0) {
      field("budget_bytes", static_cast<std::int64_t>(mem::budget_bytes()));
      out += ",\"budget_alarmed\":";
      out += totals.budget_alarmed ? "true" : "false";
    }
    out += ",\"by_label\":[";
    bool first_label = true;
    for (const auto& ls : mem::label_stats()) {
      if (ls.cumulative_bytes == 0) continue;
      if (!first_label) out += ",";
      first_label = false;
      out += "{\"label\":\"" + json_escape(ls.label) +
             "\",\"live_bytes\":" + std::to_string(ls.live_bytes) +
             ",\"peak_bytes\":" + std::to_string(ls.peak_bytes) +
             ",\"cumulative_bytes\":" + std::to_string(ls.cumulative_bytes) +
             ",\"allocations\":" + std::to_string(ls.allocations) + "}";
    }
    out += "]";
  }
  out += "}";
  return out;
}

}  // namespace

std::string prometheus_metric_name(const std::string& name) {
  std::string out = "weakkeys_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheus_text(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string prom = prometheus_metric_name(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string prom = prometheus_metric_name(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string prom = prometheus_metric_name(name);
    out += "# TYPE " + prom + " histogram\n";
    // Prometheus buckets are cumulative; ours are per-bucket.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      cumulative += h.bucket_counts[i];
      const std::string le =
          i < h.bounds.size() ? std::to_string(h.bounds[i]) : "+Inf";
      out += prom + "_bucket{le=\"" + le +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += prom + "_sum " + std::to_string(h.sum) + "\n";
    out += prom + "_count " + std::to_string(h.count) + "\n";
    // Pre-computed quantile estimates as plain gauges (the fixed-bucket
    // interpolation of MetricsSnapshot::HistogramValue::quantile); `_p50`
    // does not collide with the histogram's reserved suffixes.
    for (const auto& [suffix, q] :
         {std::pair<const char*, double>{"_p50", 0.50},
          {"_p90", 0.90},
          {"_p99", 0.99}}) {
      out += "# TYPE " + prom + suffix + " gauge\n";
      out += prom + suffix + " " + fmt_double(h.quantile(q)) + "\n";
    }
  }
  return out;
}

StatusServer::StatusServer(Telemetry& telemetry, StatusServerConfig config)
    : telemetry_(telemetry), config_(std::move(config)) {}

StatusServer::~StatusServer() { stop(); }

#if defined(WEAKKEYS_HAVE_POSIX_SOCKETS)

bool StatusServer::start() {
  if (running_.exchange(true)) return false;
  started_at_ = std::chrono::steady_clock::now();

  const int retries = config_.port == 0 ? 0 : std::max(config_.bind_retries, 0);
  int bound_port = -1;
  for (int offset = 0; offset <= retries; ++offset) {
    // The listener is CLOEXEC (util::net) so it never leaks into cluster
    // worker processes forked while the server is up.
    const int fd = util::net::listen_tcp(
        config_.bind_address,
        static_cast<std::uint16_t>(config_.port + offset), 16, &bound_port);
    if (fd >= 0) {
      listen_fd_ = fd;
      break;
    }
    if (errno == EINVAL) break;      // bad bind address: retrying won't help
    // EADDRINUSE (or anything else): try the next port.
  }

  if (listen_fd_ < 0 || bound_port < 0) {
    telemetry_.sink().warn(
        "status server: could not bind " + config_.bind_address + ":" +
        std::to_string(config_.port) + " (+" + std::to_string(retries) +
        " retries)");
    running_.store(false);
    return false;
  }
  port_.store(bound_port);
  stop_requested_.store(false);
  thread_ = std::thread(&StatusServer::accept_loop, this);
  return true;
}

void StatusServer::stop() {
  if (!running_.load()) return;
  stop_requested_.store(true);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_.store(-1);
  running_.store(false);
}

void StatusServer::accept_loop() {
  for (;;) {
    // Short poll timeout so stop() is honored promptly without needing a
    // self-pipe; the cost is one syscall per 50ms while idle.
    const bool ready =
        util::net::wait_readable(listen_fd_, std::chrono::milliseconds(50));
    if (stop_requested_.load()) return;
    if (!ready) continue;
    const int fd = util::net::accept_cloexec(listen_fd_);
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

void StatusServer::handle_connection(int fd) {
  // Requests are one short GET line; bound the read and give slow clients
  // a second before dropping them.
  timeval timeout{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  std::string request;
  char buf[1024];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find('\n') == std::string::npos) {
    // A cancelled run must not wait out a slow client's recv timeout.
    if (stop_requested_.load()) return;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t method_end = request.find(' ');
  if (method_end == std::string::npos) return;
  const std::size_t path_end = request.find(' ', method_end + 1);
  if (path_end == std::string::npos) return;
  const std::string method = request.substr(0, method_end);
  const std::string path =
      request.substr(method_end + 1, path_end - method_end - 1);
  std::string response;
  if (method == "GET") {
    response = respond(path);
  } else if (method == "HEAD") {
    // Headers only, per RFC: same status line and Content-Length as the
    // GET would carry, body stripped — `curl -I /healthz` and HEAD-probing
    // load balancers get liveness without paying for a /metrics body.
    response = respond(path);
    const std::size_t header_end = response.find("\r\n\r\n");
    if (header_end != std::string::npos) response.resize(header_end + 4);
  } else {
    response =
        "HTTP/1.0 405 Method Not Allowed\r\n"
        "Content-Length: 0\r\nConnection: close\r\n\r\n";
  }
  requests_.fetch_add(1);
  // write_full resumes partial writes and restarts EINTR — a large /metrics
  // body (thousands of cluster/worker series) previously risked truncation
  // when a signal landed mid-send.
  util::net::write_full(fd, response.data(), response.size());
}

#else  // !WEAKKEYS_HAVE_POSIX_SOCKETS

bool StatusServer::start() {
  telemetry_.sink().warn("status server: unsupported on this platform");
  return false;
}
void StatusServer::stop() {}
void StatusServer::accept_loop() {}
void StatusServer::handle_connection(int) {}

#endif

std::string StatusServer::respond(const std::string& path) const {
  std::string body;
  std::string content_type;
  if (path == "/metrics") {
    body = prometheus_text(telemetry_.metrics().snapshot());
    content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else if (path == "/healthz") {
    // Liveness for schedulers and the kill/resume harness: cheap, no
    // metrics serialization, flips to 503 the moment the run stops being
    // able to make progress.
    if (!config_.lifecycle) {
      return "HTTP/1.0 200 OK\r\nContent-Type: text/plain\r\n"
             "Content-Length: 2\r\nConnection: close\r\n\r\nok";
    }
    const LifecycleStatus ls = config_.lifecycle();
    const std::string text = ls.healthy ? "ok" : ls.phase;
    const std::string status_line =
        ls.healthy ? "HTTP/1.0 200 OK" : "HTTP/1.0 503 Service Unavailable";
    return status_line + "\r\nContent-Type: text/plain\r\nContent-Length: " +
           std::to_string(text.size()) + "\r\nConnection: close\r\n\r\n" +
           text;
  } else if (path == "/status") {
    body = "{\"pid\":" +
           std::to_string(
#if defined(WEAKKEYS_HAVE_POSIX_SOCKETS)
               ::getpid()
#else
               0
#endif
                   ) +
           ",\"uptime_us\":" +
           std::to_string(elapsed_us(started_at_,
                                     std::chrono::steady_clock::now())) +
           ",\"requests_served\":" + std::to_string(requests_.load());
    if (config_.lifecycle) {
      const LifecycleStatus ls = config_.lifecycle();
      body += ",\"lifecycle\":{\"phase\":\"" + json_escape(ls.phase) +
              "\",\"healthy\":" + (ls.healthy ? "true" : "false") +
              ",\"stage\":\"" + json_escape(ls.stage) +
              "\",\"cancel_reason\":\"" + json_escape(ls.cancel_reason) +
              "\",\"deadline_remaining_s\":" +
              fmt_double(ls.deadline_remaining_s) + "}";
    }
    const MetricsSnapshot snap = telemetry_.metrics().snapshot();
    body += cluster_workers_json(snap);
    body += fleet_status_json(snap);
    body += profile_status_json(snap);
    body += memory_status_json();
    body += ",\"metrics\":" + telemetry_.metrics().to_json() + "}";
    content_type = "application/json";
  } else {
    return "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n"
           "Connection: close\r\n\r\n";
  }
  return "HTTP/1.0 200 OK\r\nContent-Type: " + content_type +
         "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nConnection: close\r\n\r\n" + body;
}

}  // namespace weakkeys::obs

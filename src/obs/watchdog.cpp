#include "obs/watchdog.hpp"

#include <cstdio>

namespace weakkeys::obs {

namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::string suf(suffix);
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

}  // namespace

Watchdog::Watchdog(Telemetry& telemetry, WatchdogConfig config)
    : telemetry_(telemetry), config_(std::move(config)) {}

bool Watchdog::watched(const std::string& counter_name) const {
  // Never progress signals: the watchdog's own counters (a declared stall
  // would "move" them and re-arm the alarm forever) and process
  // self-metrics (CPU time creeps while the run is wedged).
  if (starts_with(counter_name, "watchdog.") ||
      starts_with(counter_name, "process.")) {
    return false;
  }
  if (config_.watch_prefixes.empty()) return true;
  for (const auto& prefix : config_.watch_prefixes) {
    if (starts_with(counter_name, prefix)) return true;
  }
  return false;
}

bool Watchdog::observe(const MetricsSnapshot& snapshot) {
  if (config_.stall_ticks == 0) return false;
  bool moved = !have_prev_;  // the first tick can never diagnose a stall
  if (have_prev_) {
    for (const auto& [name, value] : snapshot.counters) {
      if (!watched(name)) continue;
      if (value != prev_.counter(name)) {
        moved = true;
        break;
      }
    }
  }
  prev_ = snapshot;
  have_prev_ = true;

  if (moved) {
    quiet_ticks_ = 0;
    stalled_ = false;  // movement closes the episode and re-arms the alarm
    telemetry_.metrics().gauge("watchdog.quiet_ticks").set(0);
    return false;
  }

  ++quiet_ticks_;
  telemetry_.metrics()
      .gauge("watchdog.quiet_ticks")
      .set(static_cast<std::int64_t>(quiet_ticks_));
  if (stalled_ || quiet_ticks_ < config_.stall_ticks) return false;

  stalled_ = true;
  ++stalls_;
  telemetry_.metrics().counter("watchdog.stalls").inc();
  const std::string diag = diagnostic(snapshot);
  telemetry_.sink().warn(diag);
  if (config_.on_stall) config_.on_stall(diag);
  return true;
}

std::string Watchdog::diagnostic(const MetricsSnapshot& snapshot) const {
  std::string out = "watchdog: stall declared after " +
                    std::to_string(quiet_ticks_) +
                    " quiet ticks (no watched counter moved)";

  // Per-worker liveness: the attempt counters the coordinator maintains.
  std::string workers;
  for (const auto& [name, value] : snapshot.counters) {
    if (!starts_with(name, "coordinator.worker.") ||
        !ends_with(name, ".attempts")) {
      continue;
    }
    if (!workers.empty()) workers += " ";
    // "coordinator.worker.<w>.attempts" -> "<w>:<attempts>"
    const std::size_t start = std::string("coordinator.worker.").size();
    const std::size_t end = name.size() - std::string(".attempts").size();
    workers += name.substr(start, end - start) + ":" + std::to_string(value);
  }
  if (!workers.empty()) out += " | worker attempts " + workers;

  const auto queue = snapshot.gauges.find("threadpool.queue_depth");
  if (queue != snapshot.gauges.end()) {
    out += " | queue " + std::to_string(queue->second);
  }

  const std::uint64_t total = snapshot.counter("coordinator.tasks");
  if (total > 0) {
    const std::uint64_t done = snapshot.counter("coordinator.tasks_executed") +
                               snapshot.counter("coordinator.tasks_resumed");
    out += " | gcd " + std::to_string(done) + "/" + std::to_string(total);
  }

  // The trailing events are usually the smoking gun ("task 17 attempt 42").
  const auto recent = telemetry_.sink().recent();
  const std::size_t show = recent.size() < 3 ? recent.size() : 3;
  for (std::size_t i = recent.size() - show; i < recent.size(); ++i) {
    out += " | last[" + std::to_string(recent[i].seq) +
           "]=" + recent[i].message;
  }
  return out;
}

}  // namespace weakkeys::obs

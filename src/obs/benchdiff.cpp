#include "obs/benchdiff.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/json_lite.hpp"

namespace weakkeys::obs {

namespace {

/// Adaptive time formatting for the markdown table.
std::string fmt_time_ns(double ns) {
  char buf[48];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3g s", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3g ms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3g us", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3g ns", ns);
  }
  return buf;
}

std::string fmt_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Adaptive byte formatting for the peak-RSS row.
std::string fmt_bytes(double bytes) {
  char buf[48];
  if (bytes >= 1024.0 * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.3g GiB", bytes / (1024.0 * 1024 * 1024));
  } else if (bytes >= 1024.0 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.3g MiB", bytes / (1024.0 * 1024));
  } else if (bytes >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.3g KiB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3g B", bytes);
  }
  return buf;
}

}  // namespace

double bench_time_to_ns(double value, const std::string& unit) {
  if (unit == "ns") return value;
  if (unit == "us") return value * 1e3;
  if (unit == "ms") return value * 1e6;
  if (unit == "s") return value * 1e9;
  throw std::runtime_error("benchdiff: unknown time unit \"" + unit + "\"");
}

BenchSuite parse_bench_json(const std::string& text) {
  const jsonlite::Value doc = jsonlite::parse(text);
  if (!doc.is_object() || !doc.has("suite") || !doc.has("runs")) {
    throw std::runtime_error(
        "benchdiff: not a BENCH_<suite>.json document (missing \"suite\" or "
        "\"runs\")");
  }
  BenchSuite suite;
  suite.suite = doc.at("suite").str();
  if (doc.has("peak_rss_bytes")) {
    suite.peak_rss_bytes = doc.at("peak_rss_bytes").number();
    suite.has_peak_rss = true;
  }
  // Average repeated names (benchmark repetitions emit one run each);
  // preserve first-seen order.
  std::map<std::string, std::size_t> index;
  std::map<std::string, std::size_t> repeats;
  for (const auto& run : doc.at("runs").array()) {
    BenchRun parsed;
    parsed.name = run.at("name").str();
    const std::string unit =
        run.has("time_unit") ? run.at("time_unit").str() : std::string("ns");
    parsed.real_time_ns = bench_time_to_ns(run.at("real_time").number(), unit);
    parsed.cpu_time_ns = bench_time_to_ns(run.at("cpu_time").number(), unit);
    parsed.iterations =
        static_cast<std::uint64_t>(run.at("iterations").number());
    const auto it = index.find(parsed.name);
    if (it == index.end()) {
      index[parsed.name] = suite.runs.size();
      repeats[parsed.name] = 1;
      suite.runs.push_back(std::move(parsed));
    } else {
      BenchRun& agg = suite.runs[it->second];
      const double n = static_cast<double>(++repeats[parsed.name]);
      agg.real_time_ns += (parsed.real_time_ns - agg.real_time_ns) / n;
      agg.cpu_time_ns += (parsed.cpu_time_ns - agg.cpu_time_ns) / n;
      agg.iterations += parsed.iterations;
    }
  }
  return suite;
}

const char* to_string(BenchVerdict verdict) {
  switch (verdict) {
    case BenchVerdict::kOk:
      return "ok";
    case BenchVerdict::kImproved:
      return "improved";
    case BenchVerdict::kRegressed:
      return "regressed";
    case BenchVerdict::kNew:
      return "new";
    case BenchVerdict::kMissing:
      return "missing";
  }
  return "unknown";
}

BenchDiffReport diff_benchmarks(const BenchSuite& baseline,
                                const BenchSuite& candidate,
                                const BenchDiffOptions& options) {
  BenchDiffReport report;
  report.suite = candidate.suite.empty() ? baseline.suite : candidate.suite;
  report.options = options;

  std::map<std::string, const BenchRun*> candidates;
  for (const auto& run : candidate.runs) candidates[run.name] = &run;

  for (const auto& base : baseline.runs) {
    BenchDelta row;
    row.name = base.name;
    row.baseline_ns = base.real_time_ns;
    const auto it = candidates.find(base.name);
    if (it == candidates.end()) {
      row.verdict = BenchVerdict::kMissing;
      ++report.missing;
      report.rows.push_back(std::move(row));
      continue;
    }
    row.candidate_ns = it->second->real_time_ns;
    candidates.erase(it);
    row.rel_delta = row.baseline_ns > 0
                        ? row.candidate_ns / row.baseline_ns - 1.0
                        : 0.0;
    const double abs_delta = std::abs(row.candidate_ns - row.baseline_ns);
    if (abs_delta > options.noise_floor_ns) {
      if (row.rel_delta > options.threshold) {
        row.verdict = BenchVerdict::kRegressed;
        ++report.regressions;
      } else if (row.rel_delta < -options.threshold) {
        row.verdict = BenchVerdict::kImproved;
        ++report.improvements;
      }
    }
    report.rows.push_back(std::move(row));
  }

  for (const auto& run : candidate.runs) {
    if (candidates.find(run.name) == candidates.end()) continue;  // matched
    BenchDelta row;
    row.name = run.name;
    row.candidate_ns = run.real_time_ns;
    row.verdict = BenchVerdict::kNew;
    ++report.added;
    report.rows.push_back(std::move(row));
  }

  // Suite-level peak RSS rides the same threshold model as a timing row:
  // relative gate AND absolute floor, compared only when both files carry
  // the field so old baselines never fail on its absence.
  if (baseline.has_peak_rss && candidate.has_peak_rss) {
    report.has_mem = true;
    report.baseline_peak_rss_bytes = baseline.peak_rss_bytes;
    report.candidate_peak_rss_bytes = candidate.peak_rss_bytes;
    report.mem_rel_delta =
        baseline.peak_rss_bytes > 0
            ? candidate.peak_rss_bytes / baseline.peak_rss_bytes - 1.0
            : 0.0;
    const double abs_delta =
        std::abs(candidate.peak_rss_bytes - baseline.peak_rss_bytes);
    if (abs_delta > options.mem_floor_bytes) {
      if (report.mem_rel_delta > options.mem_threshold) {
        report.mem_verdict = BenchVerdict::kRegressed;
        ++report.regressions;
      } else if (report.mem_rel_delta < -options.mem_threshold) {
        report.mem_verdict = BenchVerdict::kImproved;
        ++report.improvements;
      }
    }
  }
  return report;
}

std::string BenchDiffReport::markdown() const {
  char buf[96];
  std::string out = "# benchdiff: " + suite + "\n\n";
  std::snprintf(buf, sizeof(buf),
                "threshold: ±%.1f%% relative, noise floor %s\n\n",
                options.threshold * 100.0,
                fmt_time_ns(options.noise_floor_ns).c_str());
  out += buf;
  out += "| benchmark | baseline | candidate | delta | verdict |\n";
  out += "|---|---:|---:|---:|---|\n";
  for (const auto& row : rows) {
    std::string delta = "—";
    if (row.verdict != BenchVerdict::kNew &&
        row.verdict != BenchVerdict::kMissing) {
      std::snprintf(buf, sizeof(buf), "%+.1f%%", row.rel_delta * 100.0);
      delta = buf;
    }
    out += "| " + row.name + " | " +
           (row.verdict == BenchVerdict::kNew ? std::string("—")
                                              : fmt_time_ns(row.baseline_ns)) +
           " | " +
           (row.verdict == BenchVerdict::kMissing
                ? std::string("—")
                : fmt_time_ns(row.candidate_ns)) +
           " | " + delta + " | " + to_string(row.verdict) + " |\n";
  }
  if (has_mem) {
    std::snprintf(buf, sizeof(buf), "%+.1f%%", mem_rel_delta * 100.0);
    out += "| peak RSS | " + fmt_bytes(baseline_peak_rss_bytes) + " | " +
           fmt_bytes(candidate_peak_rss_bytes) + " | " + buf + " | " +
           to_string(mem_verdict) + " |\n";
  }
  std::snprintf(buf, sizeof(buf),
                "\n%zu regressed, %zu improved, %zu new, %zu missing (of %zu "
                "benchmarks)\n",
                regressions, improvements, added, missing, rows.size());
  out += buf;
  return out;
}

std::string BenchDiffReport::to_json() const {
  std::string out = "{\"suite\":\"" + json_escape(suite) + "\"";
  out += ",\"threshold\":" + fmt_double(options.threshold);
  out += ",\"noise_floor_ns\":" + fmt_double(options.noise_floor_ns);
  out += ",\"regressions\":" + std::to_string(regressions);
  out += ",\"improvements\":" + std::to_string(improvements);
  out += ",\"new\":" + std::to_string(added);
  out += ",\"missing\":" + std::to_string(missing);
  out += ",\"rows\":[";
  bool first = true;
  for (const auto& row : rows) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + json_escape(row.name) + "\"";
    out += ",\"baseline_ns\":" + fmt_double(row.baseline_ns);
    out += ",\"candidate_ns\":" + fmt_double(row.candidate_ns);
    out += ",\"rel_delta\":" + fmt_double(row.rel_delta);
    out += ",\"verdict\":\"" + std::string(to_string(row.verdict)) + "\"}";
  }
  out += "]";
  if (has_mem) {
    out += ",\"memory\":{\"baseline_peak_rss_bytes\":" +
           fmt_double(baseline_peak_rss_bytes);
    out += ",\"candidate_peak_rss_bytes\":" +
           fmt_double(candidate_peak_rss_bytes);
    out += ",\"rel_delta\":" + fmt_double(mem_rel_delta);
    out += ",\"verdict\":\"" + std::string(to_string(mem_verdict)) + "\"}";
  }
  out += "}";
  return out;
}

}  // namespace weakkeys::obs

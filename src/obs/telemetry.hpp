// Structured, leveled event sink plus the Telemetry bundle that the study
// pipeline threads through its layers.
//
// TelemetrySink replaces the bare `std::function<void(const std::string&)>`
// progress log: every event is *always* counted and retained in a bounded
// ring buffer (post-mortem assertions work even when nothing is printed),
// and an optional text sink keeps the legacy string-log call sites working
// unchanged.
//
// Telemetry owns one MetricsRegistry + Tracer + TelemetrySink and knows how
// to dump them: a Chrome trace JSON (load in about://tracing) and a metrics
// snapshot JSON next to it. `WEAKKEYS_TRACE=<path>` (or
// StudyConfig::trace_path) is the user-facing knob; see DESIGN.md §5e.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace weakkeys::obs {

enum class Level : std::uint8_t { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

inline constexpr std::size_t kLevelCount = 4;

const char* to_string(Level level);

/// One structured log event. `seq` is a per-sink monotonic sequence number;
/// `ts_us` is microseconds since sink construction.
struct LogEvent {
  Level level = Level::kInfo;
  std::uint64_t seq = 0;
  std::uint64_t ts_us = 0;
  std::string message;
};

class TelemetrySink {
 public:
  explicit TelemetrySink(std::size_t ring_capacity = 256);

  /// Records the event: counts it, appends it to the ring buffer, and
  /// forwards the message to the text sink (if any). Thread-safe.
  void emit(Level level, std::string message);
  void info(std::string message) { emit(Level::kInfo, std::move(message)); }
  void warn(std::string message) { emit(Level::kWarn, std::move(message)); }

  /// Compatibility shim for string-log consumers (StudyConfig::log et al).
  /// Null clears; events keep being counted and ring-buffered regardless.
  void set_text_sink(std::function<void(const std::string&)> sink);

  /// The last <= ring_capacity events, oldest first.
  [[nodiscard]] std::vector<LogEvent> recent() const;
  [[nodiscard]] std::uint64_t events_emitted(Level level) const;
  [[nodiscard]] std::uint64_t total_events() const;
  [[nodiscard]] std::size_t ring_capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::function<void(const std::string&)> text_;
  std::deque<LogEvent> ring_;
  std::uint64_t seq_ = 0;
  std::uint64_t by_level_[kLevelCount] = {};
};

/// The bundle a pipeline run carries: metrics + tracer + event sink.
class Telemetry {
 public:
  /// `tracing_enabled` = false makes span() calls near-free (metrics and
  /// events are always live; they are cheap).
  explicit Telemetry(bool tracing_enabled = true,
                     std::size_t ring_capacity = 256);

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] Tracer& tracer() { return tracer_; }
  [[nodiscard]] const Tracer& tracer() const { return tracer_; }
  [[nodiscard]] TelemetrySink& sink() { return sink_; }
  [[nodiscard]] const TelemetrySink& sink() const { return sink_; }

  /// Writes tracer().chrome_trace_json() to `trace_path` and the metrics
  /// snapshot JSON to `trace_path + ".metrics.json"`. Returns false (and
  /// emits a warning event) if either file cannot be written.
  bool write_trace_files(const std::string& trace_path);

 private:
  MetricsRegistry metrics_;
  Tracer tracer_;
  TelemetrySink sink_;
};

// -- exit-time flushing -----------------------------------------------------
//
// Telemetry must survive abnormal exits: a thrown exception after run()
// starts, or an exit() deep in a worker, used to silently drop the trace
// and final metrics snapshot. Owners of dumpable telemetry register an
// idempotent flush callback here; the first registration installs a
// std::atexit hook that runs every callback still registered at process
// exit. Owners unregister (Study does so in its destructor, after flushing
// itself) before the captured state dies.

/// Registers an idempotent flush callback; returns a token for
/// unregister_exit_flush(). Thread-safe.
std::uint64_t register_exit_flush(std::function<void()> flush);
void unregister_exit_flush(std::uint64_t token);
/// Runs every currently registered callback (what the atexit hook does);
/// exposed so tests can simulate process exit. Callbacks stay registered.
void run_exit_flushes();

/// Duration helper for metrics call sites: microseconds between two
/// steady_clock points.
inline std::uint64_t elapsed_us(std::chrono::steady_clock::time_point t0,
                                std::chrono::steady_clock::time_point t1) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count());
}

}  // namespace weakkeys::obs

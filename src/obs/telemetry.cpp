#include "obs/telemetry.hpp"

#include <fstream>

namespace weakkeys::obs {

const char* to_string(Level level) {
  switch (level) {
    case Level::kDebug:
      return "debug";
    case Level::kInfo:
      return "info";
    case Level::kWarn:
      return "warn";
    case Level::kError:
      return "error";
  }
  return "unknown";
}

TelemetrySink::TelemetrySink(std::size_t ring_capacity)
    : capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      epoch_(std::chrono::steady_clock::now()) {}

void TelemetrySink::emit(Level level, std::string message) {
  std::function<void(const std::string&)> text;
  LogEvent event;
  {
    std::lock_guard lock(mu_);
    event.level = level;
    event.seq = seq_++;
    event.ts_us = elapsed_us(epoch_, std::chrono::steady_clock::now());
    event.message = std::move(message);
    ++by_level_[static_cast<std::size_t>(level)];
    ring_.push_back(event);
    if (ring_.size() > capacity_) ring_.pop_front();
    text = text_;
  }
  // Forward outside the lock: the text sink is arbitrary user code and may
  // itself log or block.
  if (text) text(event.message);
}

void TelemetrySink::set_text_sink(
    std::function<void(const std::string&)> sink) {
  std::lock_guard lock(mu_);
  text_ = std::move(sink);
}

std::vector<LogEvent> TelemetrySink::recent() const {
  std::lock_guard lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t TelemetrySink::events_emitted(Level level) const {
  std::lock_guard lock(mu_);
  return by_level_[static_cast<std::size_t>(level)];
}

std::uint64_t TelemetrySink::total_events() const {
  std::lock_guard lock(mu_);
  return seq_;
}

Telemetry::Telemetry(bool tracing_enabled, std::size_t ring_capacity)
    : tracer_(tracing_enabled), sink_(ring_capacity) {}

bool Telemetry::write_trace_files(const std::string& trace_path) {
  const auto write = [this](const std::string& path,
                            const std::string& body) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << body;
    out.flush();
    if (!out) {
      sink_.emit(Level::kWarn, "telemetry: failed to write " + path);
      return false;
    }
    return true;
  };
  const bool trace_ok = write(trace_path, tracer_.chrome_trace_json());
  const bool metrics_ok =
      write(trace_path + ".metrics.json", metrics_.to_json());
  return trace_ok && metrics_ok;
}

}  // namespace weakkeys::obs

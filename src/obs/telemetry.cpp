#include "obs/telemetry.hpp"

#include <cstdlib>
#include <fstream>
#include <map>

namespace weakkeys::obs {

namespace {

struct ExitFlushRegistry {
  std::mutex mu;
  std::map<std::uint64_t, std::function<void()>> flushes;
  std::uint64_t next_token = 1;
  bool atexit_installed = false;
};

// Leaked on purpose: the atexit hook may fire after static destructors
// would have torn a plain static down.
ExitFlushRegistry& exit_registry() {
  static ExitFlushRegistry* registry = new ExitFlushRegistry();
  return *registry;
}

}  // namespace

std::uint64_t register_exit_flush(std::function<void()> flush) {
  auto& registry = exit_registry();
  std::lock_guard lock(registry.mu);
  if (!registry.atexit_installed) {
    registry.atexit_installed = true;
    std::atexit([] { run_exit_flushes(); });
  }
  const std::uint64_t token = registry.next_token++;
  registry.flushes[token] = std::move(flush);
  return token;
}

void unregister_exit_flush(std::uint64_t token) {
  auto& registry = exit_registry();
  std::lock_guard lock(registry.mu);
  registry.flushes.erase(token);
}

void run_exit_flushes() {
  auto& registry = exit_registry();
  // Copy under the lock, run outside it: a flush may (un)register.
  std::vector<std::function<void()>> to_run;
  {
    std::lock_guard lock(registry.mu);
    to_run.reserve(registry.flushes.size());
    for (const auto& [token, flush] : registry.flushes) to_run.push_back(flush);
  }
  for (const auto& flush : to_run) {
    if (flush) flush();
  }
}

const char* to_string(Level level) {
  switch (level) {
    case Level::kDebug:
      return "debug";
    case Level::kInfo:
      return "info";
    case Level::kWarn:
      return "warn";
    case Level::kError:
      return "error";
  }
  return "unknown";
}

TelemetrySink::TelemetrySink(std::size_t ring_capacity)
    : capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      epoch_(std::chrono::steady_clock::now()) {}

void TelemetrySink::emit(Level level, std::string message) {
  std::function<void(const std::string&)> text;
  LogEvent event;
  {
    std::lock_guard lock(mu_);
    event.level = level;
    event.seq = seq_++;
    event.ts_us = elapsed_us(epoch_, std::chrono::steady_clock::now());
    event.message = std::move(message);
    ++by_level_[static_cast<std::size_t>(level)];
    ring_.push_back(event);
    if (ring_.size() > capacity_) ring_.pop_front();
    text = text_;
  }
  // Forward outside the lock: the text sink is arbitrary user code and may
  // itself log or block.
  if (text) text(event.message);
}

void TelemetrySink::set_text_sink(
    std::function<void(const std::string&)> sink) {
  std::lock_guard lock(mu_);
  text_ = std::move(sink);
}

std::vector<LogEvent> TelemetrySink::recent() const {
  std::lock_guard lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t TelemetrySink::events_emitted(Level level) const {
  std::lock_guard lock(mu_);
  return by_level_[static_cast<std::size_t>(level)];
}

std::uint64_t TelemetrySink::total_events() const {
  std::lock_guard lock(mu_);
  return seq_;
}

Telemetry::Telemetry(bool tracing_enabled, std::size_t ring_capacity)
    : tracer_(tracing_enabled), sink_(ring_capacity) {}

bool Telemetry::write_trace_files(const std::string& trace_path) {
  const auto write = [this](const std::string& path,
                            const std::string& body) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << body;
    out.flush();
    if (!out) {
      sink_.emit(Level::kWarn, "telemetry: failed to write " + path);
      return false;
    }
    return true;
  };
  const bool trace_ok = write(trace_path, tracer_.chrome_trace_json());
  const bool metrics_ok =
      write(trace_path + ".metrics.json", metrics_.to_json());
  return trace_ok && metrics_ok;
}

}  // namespace weakkeys::obs

#include "obs/monitor.hpp"

#include <cstdio>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#define WK_MONITOR_HAVE_FSYNC 1
#endif

#include "obs/mem.hpp"
#include "obs/proc_stats.hpp"

namespace weakkeys::obs {

namespace {

// Best-effort durability for the closed time series (obs sits below util in
// the layering, so it cannot use util::fsync_path).
void fsync_file(const std::string& path) {
#if defined(WK_MONITOR_HAVE_FSYNC)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
#else
  (void)path;
#endif
}

std::string fmt_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

double rate_per_sec(std::uint64_t delta, std::uint64_t interval_us) {
  if (interval_us == 0) return 0.0;
  return static_cast<double>(delta) * 1e6 /
         static_cast<double>(interval_us);
}

double eta_seconds(std::uint64_t done, std::uint64_t total,
                   double rate_per_sec) {
  if (done >= total) return 0.0;
  if (rate_per_sec <= 0.0) return -1.0;
  return static_cast<double>(total - done) / rate_per_sec;
}

std::string monitor_snapshot_json(const MetricsSnapshot& cur,
                                  const MetricsSnapshot* prev,
                                  std::uint64_t seq, std::uint64_t elapsed_us,
                                  std::uint64_t interval_us,
                                  std::int64_t wall_unix_ms, bool final) {
  std::string out = "{\"seq\":" + std::to_string(seq);
  out += ",\"final\":";
  out += final ? "true" : "false";
  out += ",\"wall_unix_ms\":" + std::to_string(wall_unix_ms);
  out += ",\"elapsed_us\":" + std::to_string(elapsed_us);
  out += ",\"interval_us\":" + std::to_string(interval_us);

  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : cur.counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":" + std::to_string(value);
  }

  // Deltas and rates only for counters that moved this interval: the
  // cumulative block above is authoritative, these are the derivative view.
  out += "},\"deltas\":{";
  first = true;
  if (prev != nullptr) {
    for (const auto& [name, value] : cur.counters) {
      const std::uint64_t delta = counter_delta(prev->counter(name), value);
      if (delta == 0) continue;
      if (!first) out += ",";
      first = false;
      out += "\"" + json_escape(name) + "\":" + std::to_string(delta);
    }
  }
  out += "},\"rates_per_s\":{";
  first = true;
  if (prev != nullptr && interval_us > 0) {
    for (const auto& [name, value] : cur.counters) {
      const std::uint64_t delta = counter_delta(prev->counter(name), value);
      if (delta == 0) continue;
      if (!first) out += ",";
      first = false;
      out += "\"" + json_escape(name) +
             "\":" + fmt_double(rate_per_sec(delta, interval_us));
    }
  }

  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : cur.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":" + std::to_string(value);
  }

  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : cur.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":{\"count\":" +
           std::to_string(h.count) + ",\"sum\":" + std::to_string(h.sum) +
           ",\"max\":" + std::to_string(h.max) +
           ",\"p50\":" + fmt_double(h.p50()) +
           ",\"p90\":" + fmt_double(h.p90()) +
           ",\"p99\":" + fmt_double(h.p99()) + "}";
  }
  out += "}}";
  return out;
}

Monitor::Monitor(Telemetry& telemetry, MonitorConfig config)
    : telemetry_(telemetry), config_(std::move(config)) {}

Monitor::~Monitor() { stop(); }

bool Monitor::start() {
  if (running_.exchange(true)) return false;
  epoch_ = std::chrono::steady_clock::now();
  prev_tick_ = epoch_;
  bool ok = true;
  if (!config_.jsonl_path.empty()) {
    std::lock_guard lock(mu_);
    out_.open(config_.jsonl_path, std::ios::binary | std::ios::trunc);
    if (!out_) {
      telemetry_.sink().warn("monitor: cannot write " + config_.jsonl_path);
      ok = false;
    }
  }
  thread_ = std::thread(&Monitor::loop, this);
  return ok;
}

void Monitor::stop() {
  if (!running_.load()) return;
  // One winner runs the shutdown; later (or concurrent) callers are no-ops.
  if (stopped_.exchange(true)) return;
  {
    std::lock_guard lock(wake_mu_);
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // The ticking thread is gone: this final snapshot is the last line of the
  // series and carries the registry's authoritative end-of-run totals.
  tick(/*final=*/true);
  {
    std::lock_guard lock(mu_);
    if (out_.is_open()) {
      out_.close();
      fsync_file(config_.jsonl_path);
    }
  }
  running_.store(false);
}

void Monitor::loop() {
  std::unique_lock lock(wake_mu_);
  while (!stop_requested_) {
    if (wake_cv_.wait_for(lock, config_.interval,
                          [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    tick(/*final=*/false);
    lock.lock();
  }
}

void Monitor::tick(bool final) {
  if (config_.sample_process_stats) record_proc_self(telemetry_.metrics());
  // Resource-attribution plane: mirror the heap census into the registry
  // every tick, and surface the soft-budget alarm (latched once) as a
  // watchdog-visible counter + warning the moment a tick observes it.
  if (mem::enabled()) {
    mem::publish(telemetry_.metrics());
    if (mem::consume_budget_alarm()) {
      telemetry_.metrics().counter("mem.budget.alarms").inc();
      telemetry_.sink().warn(
          "memory budget exceeded: live heap bytes crossed " +
          std::to_string(mem::budget_bytes()) +
          " (soft alarm; the run continues)");
    }
  }
  std::lock_guard lock(mu_);
  const auto now = std::chrono::steady_clock::now();
  const MetricsSnapshot cur = telemetry_.metrics().snapshot();
  const std::uint64_t elapsed = elapsed_us(epoch_, now);
  const std::uint64_t interval = have_prev_ ? elapsed_us(prev_tick_, now) : 0;
  const std::int64_t wall_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  if (out_.is_open()) {
    out_ << monitor_snapshot_json(cur, have_prev_ ? &prev_ : nullptr, seq_,
                                  elapsed, interval, wall_ms, final)
         << '\n';
    out_.flush();
  }
  snapshots_.fetch_add(1);
  if (config_.heartbeat) {
    telemetry_.sink().info(heartbeat_line(cur, prev_, interval));
  }
  prev_ = std::move(cur);
  have_prev_ = true;
  prev_tick_ = now;
  ++seq_;
  // prev_ now holds this tick's snapshot. Final ticks run on the stopping
  // thread after lifecycle teardown has begun, so the hook only sees live
  // ones.
  if (!final && config_.on_tick) config_.on_tick(prev_);
}

std::string Monitor::heartbeat_line(const MetricsSnapshot& cur,
                                    const MetricsSnapshot& prev,
                                    std::uint64_t interval_us) const {
  char buf[96];
  const double up_s =
      static_cast<double>(
          elapsed_us(epoch_, std::chrono::steady_clock::now())) /
      1e6;
  std::snprintf(buf, sizeof(buf), "monitor: up %.1fs", up_s);
  std::string line = buf;

  const std::uint64_t seen = cur.counter("ingest.records_seen");
  if (seen > 0) {
    const double rate = rate_per_sec(
        counter_delta(prev.counter("ingest.records_seen"), seen),
        interval_us);
    std::snprintf(buf, sizeof(buf), " | ingest %llu rec",
                  static_cast<unsigned long long>(seen));
    line += buf;
    if (rate > 0) {
      std::snprintf(buf, sizeof(buf), " (+%.0f/s)", rate);
      line += buf;
    }
  }

  // The in-process coordinator and the multi-process cluster publish the
  // same task-accounting shape under different prefixes; whichever one is
  // running owns the gcd heartbeat.
  const char* gcd = cur.counter("coordinator.tasks") > 0 ? "coordinator."
                    : cur.counter("cluster.tasks") > 0   ? "cluster."
                                                         : nullptr;
  const std::uint64_t total = gcd ? cur.counter(std::string(gcd) + "tasks") : 0;
  if (total > 0) {
    const std::string executed = std::string(gcd) + "tasks_executed";
    const std::string resumed = std::string(gcd) + "tasks_resumed";
    const std::uint64_t done =
        cur.counter(executed) + cur.counter(resumed);
    const std::uint64_t prev_done =
        prev.counter(executed) + prev.counter(resumed);
    const double rate =
        rate_per_sec(counter_delta(prev_done, done), interval_us);
    const double eta = eta_seconds(done, total, rate);
    std::snprintf(buf, sizeof(buf), " | gcd %llu/%llu tasks",
                  static_cast<unsigned long long>(done),
                  static_cast<unsigned long long>(total));
    line += buf;
    if (done < total) {
      if (eta >= 0) {
        std::snprintf(buf, sizeof(buf), " (ETA %.1fs)", eta);
      } else {
        std::snprintf(buf, sizeof(buf), " (ETA ?)");
      }
      line += buf;
    }
  }

  // Per-worker liveness: a worker is active this interval if its attempt
  // counter moved. Counters appear as workers start, so the denominator is
  // the workers observed so far.
  std::size_t workers = 0;
  std::size_t active = 0;
  for (const auto& [name, value] : cur.counters) {
    if (!starts_with(name, "coordinator.worker.") ||
        !ends_with(name, ".attempts")) {
      continue;
    }
    ++workers;
    if (counter_delta(prev.counter(name), value) > 0) ++active;
  }
  if (workers > 0) {
    std::snprintf(buf, sizeof(buf), " | workers %zu/%zu active", active,
                  workers);
    line += buf;
  } else if (cur.counter("cluster.workers") > 0) {
    // Multi-process cluster: liveness comes from the coordinator's
    // heartbeat-tracked gauge rather than per-thread attempt counters.
    const auto alive = cur.gauges.find("cluster.workers_alive");
    std::snprintf(
        buf, sizeof(buf), " | workers %lld/%llu alive",
        alive != cur.gauges.end() ? static_cast<long long>(alive->second) : 0ll,
        static_cast<unsigned long long>(cur.counter("cluster.workers")));
    line += buf;
    const std::uint64_t reconnects = cur.counter("cluster.reconnects");
    if (reconnects > 0) {
      std::snprintf(buf, sizeof(buf), " (%llu reconnects)",
                    static_cast<unsigned long long>(reconnects));
      line += buf;
    }
    // Link health at a glance: heartbeat round-trip percentiles across all
    // workers this run.
    const auto rtt = cur.histograms.find("cluster.heartbeat_rtt_us");
    if (rtt != cur.histograms.end() && rtt->second.count > 0) {
      std::snprintf(buf, sizeof(buf), " | rtt p50 %.0fus max %lluus",
                    rtt->second.p50(),
                    static_cast<unsigned long long>(rtt->second.max));
      line += buf;
    }
    // Fleet telemetry (v3 workers): what the workers reported about
    // themselves — aggregate compute time and resident memory.
    const auto fleet = cur.gauges.find("fleet.workers_reporting");
    if (fleet != cur.gauges.end() && fleet->second > 0) {
      std::snprintf(buf, sizeof(buf), " | fleet %lld reporting %.1fs compute",
                    static_cast<long long>(fleet->second),
                    static_cast<double>(cur.counter("fleet.compute_us")) /
                        1e6);
      line += buf;
      const auto fleet_rss = cur.gauges.find("fleet.rss_kb");
      if (fleet_rss != cur.gauges.end() && fleet_rss->second > 0) {
        std::snprintf(buf, sizeof(buf), " %.1f MB rss",
                      static_cast<double>(fleet_rss->second) / 1024.0);
        line += buf;
      }
    }
  }

  const auto queue = cur.gauges.find("threadpool.queue_depth");
  if (queue != cur.gauges.end()) {
    std::snprintf(buf, sizeof(buf), " | queue %lld",
                  static_cast<long long>(queue->second));
    line += buf;
  }

  const auto rss = cur.gauges.find("process.rss_kb");
  if (rss != cur.gauges.end()) {
    std::snprintf(buf, sizeof(buf), " | rss %.1f MB",
                  static_cast<double>(rss->second) / 1024.0);
    line += buf;
    // VmHWM alongside VmRSS: a tree that ballooned and shrank is invisible
    // in the current figure but decides whether the run ever fit.
    const auto peak = cur.gauges.find("process.peak_rss_kb");
    if (peak != cur.gauges.end() && peak->second > rss->second) {
      std::snprintf(buf, sizeof(buf), " (peak %.1f MB)",
                    static_cast<double>(peak->second) / 1024.0);
      line += buf;
    }
  }

  // Out-of-core factoring at a glance: cumulative spill traffic, the
  // bounded resident window, and any corruption the store had to repair.
  const std::uint64_t spilled = cur.counter("spill.bytes_written");
  if (spilled > 0) {
    const auto resident = cur.gauges.find("spill.resident_bytes");
    std::snprintf(buf, sizeof(buf), " | spill %.1f MB out, %.1f MB resident",
                  static_cast<double>(spilled) / (1024.0 * 1024.0),
                  resident != cur.gauges.end()
                      ? static_cast<double>(resident->second) /
                            (1024.0 * 1024.0)
                      : 0.0);
    line += buf;
    const std::uint64_t repairs =
        cur.counter("spill.heals") + cur.counter("spill.rebuilds");
    if (repairs > 0) {
      std::snprintf(buf, sizeof(buf), " (%llu repairs)",
                    static_cast<unsigned long long>(repairs));
      line += buf;
    }
  }

  const std::uint64_t samples = cur.counter("profiler.samples");
  if (samples > 0) {
    std::snprintf(buf, sizeof(buf), " | prof %llu samples",
                  static_cast<unsigned long long>(samples));
    line += buf;
  }

  const std::uint64_t alarms = cur.counter("mem.budget.alarms");
  if (alarms > 0) line += " | MEM BUDGET EXCEEDED";
  return line;
}

}  // namespace weakkeys::obs

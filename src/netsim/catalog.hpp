// The standard study population: device-family profiles, notification
// outcomes, scan campaigns, and key dates, all transcribed from the paper.
//
// Counts are roughly 1:1000 of the real populations so the full six-year
// corpus factors on a single machine; `scale` multiplies them further.
#pragma once

#include <vector>

#include "netsim/dataset.hpp"
#include "netsim/device_model.hpp"
#include "util/date.hpp"

namespace weakkeys::netsim {

/// First scan month (EFF, July 2010).
util::Date study_start();

/// Last scan month (Censys, May 2016).
util::Date study_end();

/// Heartbleed public disclosure (April 2014).
util::Date heartbleed_date();

/// Every device family in the study, populations multiplied by `scale`.
std::vector<DeviceModel> standard_models(double scale = 1.0);

/// Table 2: the 37 vendors notified in Feb/Mar 2012 and their responses,
/// plus the vendors newly notified in May 2016 (Section 4.4).
std::vector<VendorNotification> standard_notifications();

/// The five historical scan campaigns plus the Censys SSH/mail scans.
std::vector<ScanCampaign> standard_campaigns();

/// Cisco end-of-life announcements used in Figure 7.
struct CiscoEol {
  std::string model;
  util::Date announced;
  util::Date end_of_sale;
};
std::vector<CiscoEol> cisco_eol_dates();

}  // namespace weakkeys::netsim

// A single simulated network device: its RNG, keys, and certificate.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "cert/certificate.hpp"
#include "netsim/dataset.hpp"
#include "netsim/device_model.hpp"
#include "netsim/ip_allocator.hpp"
#include "netsim/ipv4.hpp"
#include "rsa/ibm_nine_primes.hpp"
#include "rsa/key.hpp"
#include "util/prng.hpp"

namespace weakkeys::netsim {

struct Device {
  const DeviceModel* model = nullptr;
  util::Date manufactured;
  util::Date deployed;
  bool flawed = false;  ///< firmware carried the RNG flaw at manufacture
  bool alive = true;
  bool behind_rimon = false;
  Ipv4 ip;

  rsa::RsaPrivateKey https_key;  ///< simulation ground truth (never shown to
                                 ///< the analysis pipeline pre-factoring)
  CertHandle https_cert;
  std::optional<rsa::RsaPrivateKey> ssh_key;
  /// Pseudo-certificate wrapping the SSH host key, so SSH scan records share
  /// the HostRecord schema (unsigned; subject names the host only).
  CertHandle ssh_cert;

  /// Rimon-substituted variant of https_cert, lazily built per device.
  CertHandle rimon_cert;
  /// Intermediate CA certificate that issued https_cert (CA-issued devices
  /// only); Rapid7-style scans surface it as an extra record.
  CertHandle issuer_cert;
};

/// Builds devices: owns the simulation PRNG stream for entropy draws, the
/// serial-number counter, and the IBM nine-prime pool.
class DeviceFactory {
 public:
  DeviceFactory(std::uint64_t seed, int miller_rabin_rounds);

  /// Creates a device of `model` manufactured on `manufactured` and deployed
  /// on `deployed`, generating its key material and certificate.
  Device create(const DeviceModel& model, const util::Date& manufactured,
                const util::Date& deployed);

  /// Regenerates a device's key and certificate (factory reset / firmware
  /// reinstall). Firmware flaw status is unchanged; the new boot draws fresh
  /// entropy, so a flawed device may move in or out of a collision.
  void regenerate(Device& device, const util::Date& when);

  /// The Rimon middlebox certificate variant for this device (cached).
  CertHandle rimon_variant(Device& device);

  /// Moves the device to a different address (DHCP churn); the old address
  /// returns to the pool for reuse by later allocations.
  void reassign_ip(Device& device);

  /// Releases the device's address (retirement / crash).
  void release_ip(Device& device);

  [[nodiscard]] const rsa::IbmNinePrimeGenerator& ibm_pool(std::size_t bits);

  /// The fixed public key the Rimon ISP substitutes (never factorable).
  [[nodiscard]] const rsa::RsaPublicKey& rimon_key(std::size_t bits);

  [[nodiscard]] util::Xoshiro256& sim_rng() { return rng_; }

  /// The intermediate-CA pool used to issue browser-trusted leaves.
  struct CaEntry {
    CertHandle certificate;
    rsa::RsaPrivateKey key;
  };
  [[nodiscard]] const std::vector<CaEntry>& ca_pool();

 private:
  void generate_keys(Device& device, const util::Date& when);
  cert::DistinguishedName build_subject(const Device& device,
                                        std::uint64_t device_id) const;

  util::Xoshiro256 rng_;
  IpAllocator ips_;
  int mr_rounds_;
  std::uint64_t next_serial_ = 1;
  std::uint64_t next_device_id_ = 1;
  std::map<std::size_t, rsa::IbmNinePrimeGenerator> ibm_pools_;
  std::map<std::size_t, rsa::RsaPrivateKey> rimon_keys_;
  std::vector<CaEntry> cas_;
};

}  // namespace weakkeys::netsim

// IPv4 address value type.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace weakkeys::netsim {

class Ipv4 {
 public:
  constexpr Ipv4() = default;
  explicit constexpr Ipv4(std::uint32_t value) : value_(value) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_(std::uint32_t{a} << 24 | std::uint32_t{b} << 16 |
               std::uint32_t{c} << 8 | std::uint32_t{d}) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  [[nodiscard]] std::string to_string() const {
    return std::to_string(value_ >> 24) + '.' +
           std::to_string((value_ >> 16) & 0xff) + '.' +
           std::to_string((value_ >> 8) & 0xff) + '.' +
           std::to_string(value_ & 0xff);
  }

  friend constexpr auto operator<=>(const Ipv4&, const Ipv4&) = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace weakkeys::netsim

template <>
struct std::hash<weakkeys::netsim::Ipv4> {
  std::size_t operator()(const weakkeys::netsim::Ipv4& ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.value());
  }
};

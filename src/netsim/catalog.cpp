#include "netsim/catalog.hpp"

#include <cmath>
#include <tuple>

namespace weakkeys::netsim {

using util::Date;

Date study_start() { return Date(2010, 6, 1); }
Date study_end() { return Date(2016, 5, 31); }
Date heartbleed_date() { return Date(2014, 4, 8); }

std::vector<CiscoEol> cisco_eol_dates() {
  // Announcement precedes end-of-sale by several months (Section 4.2).
  return {
      {"RV082", Date(2013, 1, 15), Date(2013, 7, 15)},
      {"RV120W", Date(2014, 3, 10), Date(2014, 9, 10)},
      {"RV220W", Date(2014, 10, 6), Date(2015, 4, 6)},
      {"RV180", Date(2015, 6, 1), Date(2015, 12, 1)},
      {"SA520", Date(2015, 12, 7), Date(2016, 4, 30)},
  };
}

namespace {

/// Convenience: RngFlawModel with the usual divergence space.
rng::RngFlawModel flaw(int boot_bits, int divergence_bits = 44) {
  return rng::RngFlawModel{.boot_entropy_bits = boot_bits,
                           .divergence_entropy_bits = divergence_bits};
}

void scale_counts(DeviceModel& m, double scale) {
  m.initial_count *= scale;
  m.deploy_per_month *= scale;
  // Shrinking the population shrinks the expected number of boot-state
  // collisions; narrowing the boot-entropy space by log2(scale) keeps the
  // collision *fraction* — the vulnerable share of each family — invariant
  // under scaling.
  if (m.flawed_from) {
    const int delta = static_cast<int>(std::lround(std::log2(scale)));
    m.flawed_rng.boot_entropy_bits =
        std::max(1, m.flawed_rng.boot_entropy_bits + delta);
  }
}

}  // namespace

std::vector<DeviceModel> standard_models(double scale) {
  std::vector<DeviceModel> models;
  const Date always(1995, 1, 1);  // "flawed since before the study window"

  // ---- Background populations (healthy keys; they size Table 1 / Fig 1) ---
  {
    DeviceModel m;
    m.vendor = "_Web";
    m.model = "Server";
    m.subject_style = SubjectStyle::kCustomerOrg;
    m.initial_count = 5200;
    m.deploy_per_month = 190;
    m.retire_rate = 0.004;
    m.churn_rate = 0.03;
    m.bit_error_rate = 2.0e-4;
    m.ca_issued = true;  // browser-trusted sites; Rapid7 intermediates quirk
    models.push_back(m);
  }
  {
    DeviceModel m;  // larger-key servers, for corpus heterogeneity
    m.vendor = "_Web";
    m.model = "Server512";
    m.subject_style = SubjectStyle::kCustomerOrg;
    m.key_bits = 512;
    m.prime_style = rsa::PrimeStyle::kPlain;
    m.initial_count = 350;
    m.deploy_per_month = 12;
    models.push_back(m);
  }
  {
    DeviceModel m;
    m.vendor = "_SSH";
    m.model = "Host";
    m.protocol = Protocol::kSsh;
    m.subject_style = SubjectStyle::kCustomerOrg;
    m.initial_count = 900;
    m.deploy_per_month = 22;
    models.push_back(m);
  }
  for (auto [proto, name, count] :
       {std::tuple{Protocol::kImaps, "IMAPS", 550.0},
        std::tuple{Protocol::kPop3s, "POP3S", 520.0},
        std::tuple{Protocol::kSmtps, "SMTPS", 420.0}}) {
    DeviceModel m;
    m.vendor = "_Mail";
    m.model = name;
    m.protocol = proto;
    m.subject_style = SubjectStyle::kCustomerOrg;
    m.initial_count = count;
    m.deploy_per_month = count / 45;
    models.push_back(m);
  }

  // ---- Vendors with public advisories (Section 4.1) -----------------------
  {
    DeviceModel m;  // Juniper SRX branch devices
    m.vendor = "Juniper";
    m.subject_style = SubjectStyle::kSystemGenerated;
    m.prime_style = rsa::PrimeStyle::kPlain;  // Table 5: does not satisfy
    m.flawed_rng = flaw(14);
    m.flawed_from = always;
    m.flawed_until = Date(2014, 2, 1);  // vulnerable units shipped for years
    m.initial_count = 900;
    m.deploy_per_month = 55;
    m.churn_rate = 0.02;
    m.regen_rate = 0.004;  // source of the paper's 1,100/1,200/250 transitions
    m.heartbleed_crash = true;  // NetScreen crash anecdotes [38]
    m.heartbleed_offline_frac = 0.22;
    m.ssh_frac = 0.12;  // vulnerable SSH host keys (Table 4)
    models.push_back(m);
  }
  {
    DeviceModel m;  // Innominate mGuard
    m.vendor = "Innominate";
    m.model = "mGuard";
    m.flawed_rng = flaw(8);
    m.flawed_from = always;
    m.flawed_until = Date(2012, 7, 1);  // fixed after the June 2012 advisory
    m.initial_count = 140;
    m.deploy_per_month = 7;
    m.retire_rate = 0.002;  // industrial gear stays deployed
    m.regen_rate = 0.0008;
    models.push_back(m);
  }
  {
    DeviceModel m;  // IBM RSA II / BladeCenter MM: the 9-prime clique
    m.vendor = "IBM";
    m.model = "RSA-II";
    m.subject_style = SubjectStyle::kCustomerOrg;
    m.uses_ibm_nine_primes = true;
    m.flawed_from = always;
    m.initial_count = 1300;
    m.deploy_per_month = 8;
    m.eol_announced = Date(2011, 6, 1);  // population already declining by 2012
    m.post_eol_retire_rate = 0.014;
    m.heartbleed_crash = true;
    m.heartbleed_offline_frac = 0.28;
    m.churn_rate = 0.035;  // the paper traced apparent IBM fixes to IP churn
    models.push_back(m);
  }

  // ---- Vendors that responded privately (Section 4.2) --------------------
  struct CiscoSpec {
    const char* model;
    double initial;
    double deploy;
    int eol_index;  // into cisco_eol_dates(), -1 = none
  };
  // Populations are back-loaded (small initial fleet, strong deployment
  // until EOL) so the vulnerable count keeps growing through 2014, as in
  // Figure 6: collisions accumulate quadratically with the flawed fleet.
  const auto eols = cisco_eol_dates();
  for (const CiscoSpec spec : {CiscoSpec{"RV082", 360, 45, 0},
                               CiscoSpec{"RV120W", 180, 32, 1},
                               CiscoSpec{"RV220W", 130, 26, 2},
                               CiscoSpec{"RV180", 70, 24, 3},
                               CiscoSpec{"SA520", 100, 16, 4},
                               CiscoSpec{"SG300", 700, 28, -1}}) {
    DeviceModel m;
    m.vendor = "Cisco";
    m.model = spec.model;
    m.flawed_rng = flaw(13);
    if (std::string(spec.model) != "SG300") {
      m.flawed_from = always;  // never publicly patched
    }
    m.initial_count = spec.initial;
    m.deploy_per_month = spec.deploy;
    m.retire_rate = 0.003;
    if (spec.eol_index >= 0) {
      m.eol_announced = eols[static_cast<std::size_t>(spec.eol_index)].announced;
      m.post_eol_retire_rate = 0.02;
    }
    models.push_back(m);
  }
  {
    DeviceModel m;  // HP Integrated Lights-Out
    m.vendor = "Hewlett-Packard";
    m.model = "iLO";
    m.flawed_rng = flaw(17);
    m.flawed_from = always;
    m.flawed_until = Date(2012, 5, 1);  // vulnerable peak in 2012
    m.initial_count = 2200;
    m.deploy_per_month = 45;
    m.retire_rate = 0.007;
    m.heartbleed_crash = true;  // iLO crash reports [38]
    m.heartbleed_offline_frac = 0.13;
    models.push_back(m);
  }

  // ---- Siemens / IBM overlap (Section 3.3.2) ------------------------------
  {
    DeviceModel m;  // bulk of Siemens certs: healthy
    m.vendor = "Siemens";
    m.model = "Desigo";
    m.initial_count = 380;
    m.deploy_per_month = 6;
    models.push_back(m);
  }
  {
    DeviceModel m;  // building-automation interface serving one IBM modulus
    m.vendor = "Siemens";
    m.model = "BACnet";
    m.uses_ibm_nine_primes = true;
    m.fixed_ibm_key = true;
    m.flawed_from = always;
    m.initial_count = 0;
    m.deploy_per_month = 4;  // first appears February 2013
    m.deploy_ramp_start = Date(2013, 2, 1);
    m.deploy_ramp_end = Date(2013, 3, 1);
    models.push_back(m);
  }
  {
    DeviceModel m;  // the handful of Siemens certs with their own weak keys
    m.vendor = "Siemens";
    m.model = "SCALANCE";
    m.prime_style = rsa::PrimeStyle::kPlain;  // Table 5: does not satisfy
    m.flawed_rng = flaw(4);
    m.flawed_from = always;
    m.initial_count = 8;
    m.deploy_per_month = 0.2;
    models.push_back(m);
  }

  // ---- Vendors that never responded (Figure 9) ----------------------------
  {
    DeviceModel m;
    m.vendor = "Thomson";
    m.model = "TG";
    m.flawed_rng = flaw(17);
    m.flawed_from = always;
    m.flawed_until = Date(2011, 6, 1);
    m.initial_count = 4800;
    m.deploy_per_month = 18;
    m.retire_rate = 0.012;  // consumer modems age out; decline tracks total
    m.rimon_mitm_frac = 0.008;  // some customers behind the Rimon middlebox
    models.push_back(m);
  }
  {
    DeviceModel m;  // Fritz!Box units with myfritz.net / fritz.box names
    m.vendor = "Fritz!Box";
    m.model = "7390";
    m.subject_style = SubjectStyle::kFritzDomains;
    m.shared_pool_tag = "avm/fritzos";
    m.flawed_rng = flaw(16);
    m.flawed_from = always;
    m.flawed_until = Date(2014, 3, 1);  // fixed for new devices during 2014
    m.initial_count = 2300;
    m.deploy_per_month = 85;
    m.retire_rate = 0.008;  // visible post-2014 decline of the vulnerable band
    models.push_back(m);
  }
  {
    DeviceModel m;  // Fritz!Box units whose subject is just the IP
    m.vendor = "Fritz!Box";
    m.model = "7170";
    m.subject_style = SubjectStyle::kIpOctets;
    m.shared_pool_tag = "avm/fritzos";  // same firmware: shared prime pool
    m.flawed_rng = flaw(16);
    m.flawed_from = always;
    m.flawed_until = Date(2014, 3, 1);
    m.initial_count = 1400;
    m.deploy_per_month = 45;
    m.rimon_mitm_frac = 0.004;
    models.push_back(m);
  }
  {
    DeviceModel m;
    m.vendor = "Linksys";
    m.model = "WRT";
    m.flawed_rng = flaw(16);
    m.flawed_from = always;
    m.flawed_until = Date(2011, 1, 1);
    m.initial_count = 2900;
    m.deploy_per_month = 14;
    m.retire_rate = 0.011;
    models.push_back(m);
  }
  {
    DeviceModel m;
    m.vendor = "Fortinet";
    m.model = "FortiGate";
    m.prime_style = rsa::PrimeStyle::kPlain;  // Table 5: does not satisfy
    m.flawed_rng = flaw(5);
    // Only a narrow manufacture window shipped the flaw: the paper shows a
    // tiny, flat vulnerable population against a large, growing total.
    m.flawed_from = Date(2010, 2, 1);
    m.flawed_until = Date(2010, 7, 1);
    m.initial_count = 1400;
    m.deploy_per_month = 34;
    models.push_back(m);
  }
  {
    DeviceModel m;
    m.vendor = "ZyXEL";
    m.model = "ZyWALL";
    m.prime_style = rsa::PrimeStyle::kPlain;
    m.flawed_rng = flaw(15);
    m.flawed_from = always;
    m.flawed_until = Date(2012, 1, 1);
    m.initial_count = 1700;
    m.deploy_per_month = 10;
    m.retire_rate = 0.009;
    models.push_back(m);
  }
  {
    DeviceModel m;  // Dell printers built on Fuji Xerox imaging hardware
    m.vendor = "Dell";
    m.model = "Laser";
    m.subject_style = SubjectStyle::kDellImaging;
    m.shared_pool_tag = "fuji-xerox/imaging";
    m.flawed_rng = flaw(10);
    m.flawed_from = always;
    m.flawed_until = Date(2013, 1, 1);
    m.initial_count = 330;
    m.deploy_per_month = 6;
    models.push_back(m);
  }
  {
    DeviceModel m;  // Xerox units sharing the imaging firmware
    m.vendor = "Xerox";
    m.model = "WorkCentre";
    m.shared_pool_tag = "fuji-xerox/imaging";
    m.flawed_rng = flaw(10);
    m.flawed_from = always;
    m.flawed_until = Date(2013, 1, 1);
    m.initial_count = 260;
    m.deploy_per_month = 4;
    models.push_back(m);
  }
  {
    DeviceModel m;  // Xerox's own (larger) flawed family
    m.vendor = "Xerox";
    m.model = "Phaser";
    m.prime_style = rsa::PrimeStyle::kPlain;  // dominates: Xerox "not OpenSSL"
    m.flawed_rng = flaw(12);
    m.flawed_from = always;
    m.flawed_until = Date(2012, 6, 1);
    m.initial_count = 650;
    m.deploy_per_month = 5;
    models.push_back(m);
  }
  {
    DeviceModel m;
    m.vendor = "Kronos";
    m.model = "InTouch";
    m.prime_style = rsa::PrimeStyle::kPlain;
    m.flawed_rng = flaw(13);
    m.flawed_from = always;
    m.flawed_until = Date(2013, 1, 1);
    m.initial_count = 650;
    m.deploy_per_month = 5;
    models.push_back(m);
  }
  {
    DeviceModel m;  // McAfee SnapGear: identified by banner, not subject
    m.vendor = "McAfee";
    m.model = "SnapGear";
    m.subject_style = SubjectStyle::kDefaultNames;
    m.banner = "SnapGear Management Console";
    m.flawed_rng = flaw(13);
    m.flawed_from = always;
    m.flawed_until = Date(2011, 9, 1);
    m.initial_count = 560;
    m.deploy_per_month = 3;
    m.retire_rate = 0.009;
    models.push_back(m);
  }
  {
    DeviceModel m;  // TP-Link: nearly the whole population vulnerable
    m.vendor = "TP-LINK";
    m.model = "TL-WR";
    m.flawed_rng = flaw(3);
    m.flawed_from = always;
    m.flawed_until = Date(2014, 6, 1);
    m.initial_count = 450;
    m.deploy_per_month = 24;
    m.retire_rate = 0.008;
    models.push_back(m);
  }

  // ---- Newly vulnerable since 2012 (Section 4.4, Figure 10) --------------
  {
    DeviceModel m;  // Huawei: first vulnerable hosts April 2015, sharp rise
    m.vendor = "Huawei";
    m.model = "HG";
    m.prime_style = rsa::PrimeStyle::kPlain;  // Table 5: does not satisfy
    m.flawed_rng = flaw(10);
    m.flawed_from = Date(2015, 4, 1);
    m.initial_count = 700;
    m.deploy_per_month = 70;
    m.deploy_ramp_start = Date(2014, 10, 1);
    m.deploy_ramp_end = Date(2015, 8, 1);
    models.push_back(m);
  }
  {
    DeviceModel m;  // D-Link: small in 2012, dramatic rise afterwards
    m.vendor = "D-Link";
    m.model = "DIR";
    m.flawed_rng = flaw(12);
    m.flawed_from = Date(2012, 1, 1);
    m.initial_count = 2400;
    m.deploy_per_month = 65;
    m.deploy_ramp_start = Date(2013, 6, 1);
    m.deploy_ramp_end = Date(2014, 6, 1);
    m.rimon_mitm_frac = 0.003;
    models.push_back(m);
  }
  {
    DeviceModel m;  // ADTRAN: large total population, flaw introduced 2015
    m.vendor = "ADTRAN";
    m.model = "NetVanta";
    m.flawed_rng = flaw(9);
    m.flawed_from = Date(2015, 1, 1);
    m.initial_count = 620;
    m.deploy_per_month = 12;
    models.push_back(m);
  }
  {
    DeviceModel m;
    m.vendor = "Sangfor";
    m.model = "NGAF";
    m.flawed_rng = flaw(10);
    m.flawed_from = Date(2014, 6, 1);
    m.initial_count = 140;
    m.deploy_per_month = 9;
    models.push_back(m);
  }
  {
    DeviceModel m;  // Schmid Telecom: Indian subsidiary certificates
    m.vendor = "Schmid Telecom";
    m.model = "Watson";
    m.flawed_rng = flaw(7);
    m.flawed_from = Date(2013, 1, 1);
    m.initial_count = 110;
    m.deploy_per_month = 3;
    models.push_back(m);
  }

  for (auto& m : models) scale_counts(m, scale);
  return models;
}

std::vector<VendorNotification> standard_notifications() {
  using R = ResponseClass;
  std::vector<VendorNotification> out;
  auto add = [&out](const char* vendor, R response, bool tls_rsa = true,
                    const char* notes = "") {
    out.push_back({vendor, response, true, tls_rsa, notes});
  };
  // Table 2, column by column.
  add("IBM", R::kPublicAdvisory, true, "CVE-2012-2187, September 2012");
  add("Emerson", R::kPublicAdvisory);
  add("Fortinet", R::kPublicAdvisory);
  add("Innominate", R::kPublicAdvisory, true, "mGuard advisory, June 2012");
  add("Juniper", R::kPublicAdvisory, true,
      "Security Bulletin April 2012; Out-of-Cycle Notice July 2012");
  add("Cisco", R::kPrivateResponse);
  add("McAfee", R::kPrivateResponse);
  add("Sentry", R::kPrivateResponse);
  add("Dell", R::kPrivateResponse);
  add("Hillstone Networks", R::kPrivateResponse);
  add("2-Wire", R::kPrivateResponse);
  add("D-Link", R::kPrivateResponse);
  add("Motorola", R::kPrivateResponse);
  add("SkyStream", R::kPrivateResponse);
  add("Tropos", R::kPrivateResponse, false, "SSH host keys on port 22");
  add("Kyocera", R::kPrivateResponse);
  add("Simton", R::kPrivateResponse);
  add("AVM", R::kPrivateResponse, true, "Fritz!Box");
  add("JDSU", R::kPrivateResponse);
  add("Pogoplug", R::kAutoResponse);
  add("HP", R::kAutoResponse);
  add("Intel", R::kAutoResponse, false, "SSH host keys; public disclosure");
  add("Haivision", R::kAutoResponse);
  add("AudioCodes", R::kAutoResponse);
  add("Pronto", R::kAutoResponse);
  add("Kronos", R::kAutoResponse);
  add("Linksys", R::kAutoResponse);
  add("MRV", R::kAutoResponse);
  add("Brocade", R::kNoResponse);
  add("NTI", R::kNoResponse);
  add("Technicolor", R::kNoResponse, true, "Thomson");
  add("Sinetica", R::kNoResponse);
  add("Xerox", R::kNoResponse);
  add("Ruckus", R::kNoResponse);
  add("BelAir", R::kNoResponse);
  add("ZyXEL", R::kNoResponse);
  add("TP-Link", R::kNoResponse);
  // Section 4.4: vendors notified in May 2016 about new products.
  out.push_back({"Huawei", R::kNewSince2012, false, true,
                 "responded; advisory + update August 2016 (CVE-2016-6670)"});
  out.push_back({"ADTRAN", R::kNewSince2012, false, true,
                 "responded substantively; no advisory yet"});
  out.push_back({"Sangfor", R::kNewSince2012, false, true,
                 "support request closed without response"});
  out.push_back({"Schmid Telecom", R::kNewSince2012, false, true,
                 "no security contact; information-request form only"});
  return out;
}

std::vector<ScanCampaign> standard_campaigns() {
  return {
      // EFF SSL Observatory: two Nmap-based passes, lower coverage.
      {"EFF", Date(2010, 7, 15), Date(2010, 12, 15), 5, 0.82, Protocol::kHttps},
      // Heninger et al. single October 2011 scan.
      {"PQ", Date(2011, 10, 15), Date(2011, 10, 15), 1, 0.90, Protocol::kHttps},
      // Durumeric et al. HTTPS Ecosystem scans (ZMap), June 2012 - Jan 2014.
      {"Ecosystem", Date(2012, 6, 15), Date(2014, 1, 15), 1, 0.96,
       Protocol::kHttps},
      // Rapid7 Project Sonar, Oct 2013 - May 2015 (includes intermediates).
      {"Rapid7", Date(2013, 10, 15), Date(2015, 5, 15), 1, 0.94,
       Protocol::kHttps},
      // Censys daily scans, one representative per month.
      {"Censys", Date(2015, 7, 15), Date(2016, 4, 11), 1, 0.985,
       Protocol::kHttps},
      // Censys cross-protocol scans used for Table 4.
      {"Censys", Date(2015, 10, 29), Date(2015, 10, 29), 1, 0.98,
       Protocol::kSsh},
      {"Censys", Date(2016, 4, 25), Date(2016, 4, 25), 1, 0.98,
       Protocol::kImaps},
      {"Censys", Date(2016, 4, 25), Date(2016, 4, 25), 1, 0.98,
       Protocol::kPop3s},
      {"Censys", Date(2016, 4, 25), Date(2016, 4, 25), 1, 0.98,
       Protocol::kSmtps},
  };
}

std::string to_string(ResponseClass c) {
  switch (c) {
    case ResponseClass::kPublicAdvisory:
      return "Public Advisory";
    case ResponseClass::kPrivateResponse:
      return "Private Response";
    case ResponseClass::kAutoResponse:
      return "Auto-Response";
    case ResponseClass::kNoResponse:
      return "No Response";
    case ResponseClass::kNewSince2012:
      return "Newly Vulnerable Since 2012";
  }
  return "?";
}

}  // namespace weakkeys::netsim

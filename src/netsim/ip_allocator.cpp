#include "netsim/ip_allocator.hpp"

namespace weakkeys::netsim {

Ipv4 IpAllocator::fresh() {
  // Avoid reserved-looking prefixes so addresses render plausibly.
  for (;;) {
    const auto v = static_cast<std::uint32_t>(rng_());
    const std::uint32_t top = v >> 24;
    if (top == 0 || top == 10 || top == 127 || top >= 224) continue;
    const Ipv4 ip(v);
    if (!in_use_.contains(ip)) return ip;
  }
}

Ipv4 IpAllocator::allocate() {
  if (!free_.empty() && rng_.chance(reuse_probability_)) {
    // Pop a uniformly random released address.
    const std::size_t index = rng_.below(free_.size());
    const Ipv4 ip = free_[index];
    free_[index] = free_.back();
    free_.pop_back();
    in_use_.insert(ip);
    return ip;
  }
  const Ipv4 ip = fresh();
  in_use_.insert(ip);
  return ip;
}

void IpAllocator::release(Ipv4 ip) {
  in_use_.erase(ip);
  free_.push_back(ip);
}

}  // namespace weakkeys::netsim

// Device-family profiles: the knobs that reproduce each vendor's behaviour
// in the paper's Section 4 figures.
//
// A DeviceModel describes one product family: how its certificates name it,
// how its firmware generates keys (prime style, RNG flaw, the manufacture
// window during which the flaw shipped), its population dynamics (deploy /
// retire / churn, end-of-life), and its behaviour around the Heartbleed
// disclosure. The catalog in catalog.cpp instantiates one profile per vendor
// or model discussed in the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netsim/protocol.hpp"
#include "rng/urandom.hpp"
#include "rsa/keygen.hpp"
#include "util/date.hpp"

namespace weakkeys::netsim {

/// Table 2 categories plus the post-2012 newcomers of Section 4.4.
enum class ResponseClass {
  kPublicAdvisory,   ///< released a public security advisory
  kPrivateResponse,  ///< responded substantively, no public advisory
  kAutoResponse,     ///< automated acknowledgement only
  kNoResponse,       ///< never responded
  kNewSince2012,     ///< newly vulnerable product after the 2012 disclosure
};

std::string to_string(ResponseClass c);

/// How a family's default certificates identify (or fail to identify) it.
enum class SubjectStyle {
  kOrgAndModel,      ///< O=<vendor>, OU=<model>, CN=<model>-<serial>
  kSystemGenerated,  ///< CN=system generated (Juniper; no vendor string)
  kDefaultNames,     ///< CN=Default Common Name, O=Default Organization...
  kIpOctets,         ///< CN=<dotted IP> only (identified via shared primes)
  kFritzDomains,     ///< CN=<id>.myfritz.net, SANs fritz.box etc.
  kCustomerOrg,      ///< org-specific subject, no vendor info (IBM RSA II)
  kDellImaging,      ///< OU=Dell Imaging Group (hardware shared with Xerox)
};

struct DeviceModel {
  std::string vendor;  ///< display vendor name ("Cisco")
  std::string model;   ///< product/model ("RV082"); may be empty

  /// Primary service this family exposes (mail-server families exist so the
  /// Table 4 protocol scans have realistic populations).
  Protocol protocol = Protocol::kHttps;

  SubjectStyle subject_style = SubjectStyle::kOrgAndModel;
  /// HTTPS landing-page banner (how McAfee SnapGear was identified).
  std::string banner;

  // --- Key generation -----------------------------------------------------
  rsa::PrimeStyle prime_style = rsa::PrimeStyle::kOpenSsl;
  std::size_t key_bits = 256;
  /// RNG behaviour of flawed firmware builds.
  rng::RngFlawModel flawed_rng;
  /// Firmware manufactured in [flawed_from, flawed_until) has the flaw;
  /// outside the window devices get a healthy RNG. An unset flawed_until
  /// means the flaw was never fixed.
  std::optional<util::Date> flawed_from;
  std::optional<util::Date> flawed_until;
  /// Devices whose boot-state space is shared with another family draw from
  /// the pool named here (Dell imaging hardware shares Xerox's primes).
  /// Empty = the family's own "<vendor>/<model>" tag.
  std::string shared_pool_tag;
  /// IBM RSA II / BladeCenter degenerate generator (9 primes, 36 moduli).
  bool uses_ibm_nine_primes = false;
  /// All flawed devices of this family serve one fixed key drawn from the
  /// IBM pool (the Siemens Building Automation overlap).
  bool fixed_ibm_key = false;

  // --- Population dynamics (monthly rates) --------------------------------
  double initial_count = 0;      ///< alive devices at simulation start
  double deploy_per_month = 0;   ///< new deployments per month
  /// Linear ramp of deployments: deploy rate is multiplied by
  /// clamp((t - ramp_start)/(ramp_end - ramp_start), 0, 1) when set.
  std::optional<util::Date> deploy_ramp_start;
  std::optional<util::Date> deploy_ramp_end;
  double retire_rate = 0.004;    ///< fraction of devices retired per month
  double churn_rate = 0.02;      ///< fraction re-IP'd per month
  double regen_rate = 0.0015;    ///< fraction regenerating keys per month
  std::optional<util::Date> eol_announced;  ///< deployments stop, decline begins
  double post_eol_retire_rate = 0.02;

  // --- Heartbleed (April 2014) ---------------------------------------------
  /// Device crashes / is taken offline when scanned during the Heartbleed
  /// scanning wave (Juniper NetScreen, HP iLO anecdotes).
  bool heartbleed_crash = false;
  double heartbleed_offline_frac = 0.0;

  // --- Misc ----------------------------------------------------------------
  /// Fraction of this family's devices behind the Internet Rimon ISP, whose
  /// middlebox substitutes a fixed public key into served certificates.
  double rimon_mitm_frac = 0.0;
  /// Fraction of devices also exposing an SSH host key generated from the
  /// same (possibly flawed) pool.
  double ssh_frac = 0.0;
  /// Probability per scan record of a single-bit transmission error in the
  /// modulus (the paper's 107 non-well-formed moduli).
  double bit_error_rate = 0.0;
  /// Certificate is issued by one of the simulation's intermediate CAs
  /// rather than self-signed (browser-trusted web servers). Enables the
  /// Rapid7 intermediate-certificate quirk.
  bool ca_issued = false;

  [[nodiscard]] std::string pool_tag() const {
    return shared_pool_tag.empty() ? vendor + "/" + model : shared_pool_tag;
  }

  /// True when firmware manufactured on `d` carries the flawed RNG.
  [[nodiscard]] bool flawed_at(const util::Date& d) const {
    if (!flawed_from) return false;
    if (d < *flawed_from) return false;
    return !flawed_until || d < *flawed_until;
  }
};

/// One row of Table 2 (notification outcomes), plus study notes.
struct VendorNotification {
  std::string vendor;
  ResponseClass response;
  bool notified_2012 = true;
  bool has_tls_rsa_vulnerability = true;
  std::string notes;
};

}  // namespace weakkeys::netsim

#include "netsim/device.hpp"

#include <cinttypes>
#include <cstdio>

#include "rng/prng_source.hpp"
#include "rng/urandom.hpp"

namespace weakkeys::netsim {

namespace {

constexpr int kCertValidityYears = 10;

std::string hex_id(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%08" PRIx64, id);
  return buf;
}

}  // namespace

DeviceFactory::DeviceFactory(std::uint64_t seed, int miller_rabin_rounds)
    : rng_(seed), ips_(seed ^ 0x1b1b1b1bULL), mr_rounds_(miller_rabin_rounds) {}

void DeviceFactory::reassign_ip(Device& device) {
  ips_.release(device.ip);
  device.ip = ips_.allocate();
}

void DeviceFactory::release_ip(Device& device) { ips_.release(device.ip); }

const rsa::IbmNinePrimeGenerator& DeviceFactory::ibm_pool(std::size_t bits) {
  auto it = ibm_pools_.find(bits);
  if (it == ibm_pools_.end()) {
    // Fixed tag: the pool is a property of the buggy firmware, not of the
    // simulation seed.
    it = ibm_pools_.emplace(bits, rsa::IbmNinePrimeGenerator(bits, 0x52534132ULL))
             .first;
  }
  return it->second;
}

const std::vector<DeviceFactory::CaEntry>& DeviceFactory::ca_pool() {
  if (cas_.empty()) {
    constexpr int kCaCount = 6;
    rng::PrngRandomSource healthy(0x4341504f4f4cULL);  // "CAPOOL"
    rsa::KeygenOptions opts;
    opts.modulus_bits = 256;
    opts.miller_rabin_rounds = 16;
    for (int i = 0; i < kCaCount; ++i) {
      rsa::RsaPrivateKey key = rsa::generate_key(healthy, opts);
      cert::DistinguishedName dn;
      dn.add("CN", "Intermediate CA " + std::to_string(i + 1));
      dn.add("O", "Example Trust Services");
      const cert::Validity validity{util::Date(2005, 1, 1),
                                    util::Date(2030, 1, 1)};
      auto certificate = std::make_shared<cert::Certificate>(
          cert::make_self_signed(dn, {}, validity, key, next_serial_++));
      cas_.push_back(CaEntry{std::move(certificate), std::move(key)});
    }
  }
  return cas_;
}

const rsa::RsaPublicKey& DeviceFactory::rimon_key(std::size_t bits) {
  auto it = rimon_keys_.find(bits);
  if (it == rimon_keys_.end()) {
    rng::PrngRandomSource healthy(0x52494d4f4eULL ^ bits);  // "RIMON"
    rsa::KeygenOptions opts;
    opts.modulus_bits = bits;
    opts.style = rsa::PrimeStyle::kOpenSsl;
    opts.miller_rabin_rounds = 16;
    it = rimon_keys_.emplace(bits, rsa::generate_key(healthy, opts)).first;
  }
  return it->second.pub;
}

cert::DistinguishedName DeviceFactory::build_subject(
    const Device& device, std::uint64_t device_id) const {
  const DeviceModel& m = *device.model;
  cert::DistinguishedName dn;
  switch (m.subject_style) {
    case SubjectStyle::kOrgAndModel:
      dn.add("CN", m.model.empty() ? m.vendor : m.model);
      if (!m.model.empty()) dn.add("OU", m.model);
      dn.add("O", m.vendor);
      break;
    case SubjectStyle::kSystemGenerated:
      dn.add("CN", "system generated");
      break;
    case SubjectStyle::kDefaultNames:
      dn.add("CN", "Default Common Name");
      dn.add("OU", "Default Unit");
      dn.add("O", "Default Organization");
      break;
    case SubjectStyle::kIpOctets:
      dn.add("CN", device.ip.to_string());
      break;
    case SubjectStyle::kFritzDomains:
      dn.add("CN", hex_id(device_id) + ".myfritz.net");
      break;
    case SubjectStyle::kCustomerOrg:
      // Organization-specific subject carrying no vendor information.
      dn.add("CN", "mgmt-" + hex_id(device_id));
      dn.add("O", "Customer Organization " + std::to_string(device_id % 97));
      break;
    case SubjectStyle::kDellImaging:
      dn.add("CN", "printer-" + hex_id(device_id));
      dn.add("OU", "Dell Imaging Group");
      dn.add("O", "Dell Inc.");
      break;
  }
  return dn;
}

void DeviceFactory::generate_keys(Device& device, const util::Date& when) {
  const DeviceModel& m = *device.model;
  const std::uint64_t device_id = next_device_id_++;

  rsa::KeygenOptions opts;
  opts.modulus_bits = m.key_bits;
  opts.style = m.prime_style;
  opts.miller_rabin_rounds = mr_rounds_;

  // Choose the RNG this boot actually has.
  std::unique_ptr<bn::RandomSource> source;
  rng::SimulatedUrandom* flawed_urandom = nullptr;
  if (m.uses_ibm_nine_primes) {
    // Handled below without a RandomSource-driven keygen.
  } else if (device.flawed) {
    auto ur = std::make_unique<rng::SimulatedUrandom>(
        m.pool_tag(), m.flawed_rng, rng_(), rng_());
    flawed_urandom = ur.get();
    source = std::move(ur);
  } else {
    source = std::make_unique<rng::PrngRandomSource>(rng_());
  }

  rsa::KeygenEvents events;
  events.before_prime = [flawed_urandom](int prime_index) {
    if (flawed_urandom && prime_index == 1)
      flawed_urandom->stir_divergence_event();
  };

  // SSH host key first (sshd generates at first boot, before the web UI).
  device.ssh_key.reset();
  device.ssh_cert.reset();
  const bool wants_ssh = m.protocol == Protocol::kSsh ||
                         (m.ssh_frac > 0 && rng_.chance(m.ssh_frac));
  if (wants_ssh && !m.uses_ibm_nine_primes) {
    device.ssh_key = rsa::generate_key(*source, opts, &events);
    auto ssh_cert = std::make_shared<cert::Certificate>();
    ssh_cert->serial = next_serial_++;
    ssh_cert->subject.add("CN", "ssh-" + hex_id(device_id));
    ssh_cert->issuer = ssh_cert->subject;
    ssh_cert->validity = {when, when.add_months(12 * kCertValidityYears)};
    ssh_cert->key = device.ssh_key->pub;
    ssh_cert->signature_algorithm = "ssh-rsa";
    device.ssh_cert = std::move(ssh_cert);
  }

  if (m.protocol == Protocol::kSsh) {
    // Dedicated SSH hosts expose no TLS service.
    device.https_cert.reset();
    device.rimon_cert.reset();
    return;
  }

  if (m.uses_ibm_nine_primes) {
    const auto& pool = ibm_pool(m.key_bits);
    if (m.fixed_ibm_key) {
      // Every device of this family embeds the same key from the IBM pool
      // (the Siemens Building Automation overlap).
      device.https_key =
          rsa::assemble_private_key(pool.primes()[0], pool.primes()[1],
                                    bn::BigInt(65537));
    } else {
      rng::PrngRandomSource pick(rng_());
      device.https_key = pool.generate(pick);
    }
  } else {
    device.https_key = rsa::generate_key(*source, opts, &events);
  }

  // Default certificate: self-signed for devices, CA-issued for
  // browser-trusted web servers.
  std::vector<std::string> sans;
  if (m.subject_style == SubjectStyle::kFritzDomains) {
    sans = {"fritz.box", "www.fritz.box", "myfritz.box", "www.myfritz.box",
            "fritz.fonwlan.box"};
  }
  const cert::Validity validity{when, when.add_months(12 * kCertValidityYears)};
  const cert::DistinguishedName subject = build_subject(device, device_id);
  device.issuer_cert.reset();
  if (m.ca_issued) {
    const auto& pool = ca_pool();
    const auto& ca = pool[rng_.below(pool.size())];
    device.https_cert = std::make_shared<cert::Certificate>(cert::make_issued(
        subject, sans, validity, device.https_key.pub, ca.certificate->subject,
        ca.key, next_serial_++));
    device.issuer_cert = ca.certificate;
  } else {
    device.https_cert = std::make_shared<cert::Certificate>(
        cert::make_self_signed(subject, sans, validity, device.https_key,
                               next_serial_++));
  }
  device.rimon_cert.reset();
}

Device DeviceFactory::create(const DeviceModel& model,
                             const util::Date& manufactured,
                             const util::Date& deployed) {
  Device device;
  device.model = &model;
  device.manufactured = manufactured;
  device.deployed = deployed;
  device.flawed = model.flawed_at(manufactured);
  device.ip = ips_.allocate();
  device.behind_rimon = model.rimon_mitm_frac > 0 && rng_.chance(model.rimon_mitm_frac);
  generate_keys(device, deployed);
  return device;
}

void DeviceFactory::regenerate(Device& device, const util::Date& when) {
  generate_keys(device, when);
}

CertHandle DeviceFactory::rimon_variant(Device& device) {
  if (!device.rimon_cert) {
    // The middlebox swaps only the public key; everything else — including
    // the now-invalid signature — is passed through unchanged.
    auto variant = std::make_shared<cert::Certificate>(*device.https_cert);
    variant->key = rimon_key(device.model->key_bits);
    device.rimon_cert = std::move(variant);
  }
  return device.rimon_cert;
}

}  // namespace weakkeys::netsim

// Scanned protocols (Table 4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace weakkeys::netsim {

enum class Protocol { kHttps, kSsh, kImaps, kPop3s, kSmtps };

/// Number of enumerators; keep in sync with Protocol (protocol_from_index
/// and the to_string switch are the compile-time checked users).
inline constexpr std::uint32_t kProtocolCount = 5;

/// Total: any value — including out-of-range ones cast from corrupted cache
/// bytes — maps to a string; never throws. A new enumerator without a switch
/// case is a compile-time -Wswitch diagnostic, not a runtime abort.
std::string to_string(Protocol p);

/// Total inverse of `static_cast<u32>(Protocol)` for untrusted serialized
/// values: nullopt (quarantine/rebuild, caller's choice) instead of yielding
/// an invalid enumerator.
std::optional<Protocol> protocol_from_index(std::uint32_t value);

}  // namespace weakkeys::netsim

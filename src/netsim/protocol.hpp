// Scanned protocols (Table 4).
#pragma once

#include <string>

namespace weakkeys::netsim {

enum class Protocol { kHttps, kSsh, kImaps, kPop3s, kSmtps };

std::string to_string(Protocol p);

}  // namespace weakkeys::netsim

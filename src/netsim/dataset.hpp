// Scan records and datasets: the schema the analysis pipeline consumes.
//
// A HostRecord is exactly what one TLS handshake (or SSH key exchange) with
// one IP on one date yields — the paper's "host record" unit (Table 1).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cert/certificate.hpp"
#include "netsim/ipv4.hpp"
#include "netsim/protocol.hpp"
#include "util/date.hpp"

namespace weakkeys::netsim {

/// Certificates are shared between the many host records that present them;
/// a record therefore holds a shared handle, not a copy.
using CertHandle = std::shared_ptr<const cert::Certificate>;

struct HostRecord {
  util::Date date;
  std::string source;  ///< "EFF", "PQ", "Ecosystem", "Rapid7", "Censys"
  Ipv4 ip;
  Protocol protocol = Protocol::kHttps;
  CertHandle certificate;
  std::string banner;  ///< HTTPS landing-page hint (may be empty)
  /// Undecoded wire bytes for records whose certificate did not (or may
  /// not) decode — the dirty-corpus representation of truncated/mangled
  /// handshakes. When non-empty and `certificate` is null, the ingest
  /// quarantine pass owns the decode attempt; such records never reach the
  /// analysis pipeline directly.
  std::vector<std::uint8_t> raw_der;

  [[nodiscard]] const cert::Certificate& cert() const { return *certificate; }
  /// True when the record carries a decoded certificate (the only records
  /// the analysis layers consume).
  [[nodiscard]] bool has_cert() const { return certificate != nullptr; }
};

/// One scan: every host record collected in a single campaign pass.
struct ScanSnapshot {
  util::Date date;
  std::string source;
  Protocol protocol = Protocol::kHttps;
  std::vector<HostRecord> records;
};

/// A scan campaign: one historical data source with its cadence and quirks.
struct ScanCampaign {
  std::string name;
  util::Date first;
  util::Date last;
  int months_between_scans = 1;
  double coverage = 0.97;  ///< fraction of alive hosts a pass observes
  Protocol protocol = Protocol::kHttps;
};

/// The aggregated corpus: all snapshots from all campaigns, ordered by date.
class ScanDataset {
 public:
  std::vector<ScanSnapshot> snapshots;

  [[nodiscard]] std::size_t total_host_records() const;

  /// Distinct certificate fingerprints across all snapshots.
  [[nodiscard]] std::size_t distinct_certificates() const;

  /// Distinct RSA moduli across all snapshots (hex-keyed).
  [[nodiscard]] std::vector<bn::BigInt> distinct_moduli() const;

  /// Distinct moduli restricted to one protocol.
  [[nodiscard]] std::vector<bn::BigInt> distinct_moduli(Protocol p) const;

  /// Snapshots restricted to one protocol, date-ordered.
  [[nodiscard]] std::vector<const ScanSnapshot*> snapshots_for(Protocol p) const;
};

}  // namespace weakkeys::netsim

#include "netsim/internet.hpp"

#include <algorithm>
#include <cmath>

namespace weakkeys::netsim {

using util::Date;

Internet::Internet(std::vector<DeviceModel> models, const SimConfig& config)
    : models_(std::move(models)),
      config_(config),
      factory_(config.seed, config.miller_rabin_rounds),
      events_rng_(config.seed ^ 0x5ca1ab1eULL),
      deploy_accumulator_(models_.size(), 0.0) {}

double Internet::deploy_rate(const DeviceModel& m, const Date& month) const {
  if (m.eol_announced && month >= *m.eol_announced) return 0.0;
  double rate = m.deploy_per_month;
  if (m.deploy_ramp_start && m.deploy_ramp_end) {
    const int span = util::months_between(*m.deploy_ramp_start, *m.deploy_ramp_end);
    const int at = util::months_between(*m.deploy_ramp_start, month);
    const double f =
        span <= 0 ? (at >= 0 ? 1.0 : 0.0)
                  : std::clamp(static_cast<double>(at) / span, 0.0, 1.0);
    rate *= f;
  }
  return rate;
}

void Internet::seed_initial_population() {
  constexpr int kBackfillMonths = 48;
  const Date start = study_start();
  for (const DeviceModel& model : models_) {
    const auto count =
        static_cast<std::size_t>(std::llround(model.initial_count));
    for (std::size_t i = 0; i < count; ++i) {
      // Seeding is keygen-bound and runs before the month loop, so it needs
      // its own poll to keep cancel latency at one key, not one fleet.
      if (config_.cancel) config_.cancel->throw_if_cancelled();
      // Manufacture dates spread over the years before the study window so
      // flawed_from / flawed_until windows partition the initial fleet.
      const auto back =
          static_cast<int>(events_rng_.below(kBackfillMonths));
      const Date manufactured =
          start.add_months(-back).add_days(static_cast<std::int64_t>(events_rng_.below(28)));
      devices_.push_back(factory_.create(model, manufactured, manufactured));
    }
  }
}

void Internet::advance_month(const Date& month_start) {
  obs::Counter* deployed = nullptr;
  obs::Counter* retired = nullptr;
  obs::Counter* regenerated = nullptr;
  if (config_.telemetry) {
    auto& m = config_.telemetry->metrics();
    deployed = &m.counter("sim.devices_deployed");
    retired = &m.counter("sim.devices_retired");
    regenerated = &m.counter("sim.keys_regenerated");
  }

  // New deployments, with fractional carry so low rates still deploy.
  for (std::size_t mi = 0; mi < models_.size(); ++mi) {
    const DeviceModel& model = models_[mi];
    deploy_accumulator_[mi] += deploy_rate(model, month_start);
    const auto n = static_cast<std::size_t>(deploy_accumulator_[mi]);
    deploy_accumulator_[mi] -= static_cast<double>(n);
    if (deployed) deployed->inc(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Deployment is keygen-bound too; poll per key like the seeding loop.
      if (config_.cancel) config_.cancel->throw_if_cancelled();
      const Date when =
          month_start.add_days(static_cast<std::int64_t>(events_rng_.below(28)));
      devices_.push_back(factory_.create(model, when, when));
    }
  }

  // Per-device monthly events.
  const bool heartbleed_month =
      month_start.month_index() == heartbleed_date().month_index();
  for (Device& device : devices_) {
    if (!device.alive) continue;
    const DeviceModel& model = *device.model;

    if (heartbleed_month && model.heartbleed_crash &&
        events_rng_.chance(model.heartbleed_offline_frac)) {
      // Crashed when scanned for Heartbleed, or pulled offline by the
      // publicity wave; the paper observed these never came back.
      device.alive = false;
      factory_.release_ip(device);
      if (retired) retired->inc();
      continue;
    }

    const double retire = (model.eol_announced && month_start >= *model.eol_announced)
                              ? model.post_eol_retire_rate
                              : model.retire_rate;
    if (events_rng_.chance(retire)) {
      device.alive = false;
      factory_.release_ip(device);
      if (retired) retired->inc();
      continue;
    }
    if (events_rng_.chance(model.churn_rate)) {
      factory_.reassign_ip(device);
    }
    if (events_rng_.chance(model.regen_rate)) {
      const Date when =
          month_start.add_days(static_cast<std::int64_t>(events_rng_.below(28)));
      factory_.regenerate(device, when);
      if (regenerated) regenerated->inc();
    }
  }
}

ScanSnapshot Internet::scan(const ScanCampaign& campaign, const Date& when) {
  ScanSnapshot snap;
  snap.date = when;
  snap.source = campaign.name;
  snap.protocol = campaign.protocol;

  for (Device& device : devices_) {
    if (!device.alive) continue;
    const DeviceModel& model = *device.model;

    CertHandle presented;
    if (campaign.protocol == Protocol::kSsh) {
      if (!device.ssh_cert) continue;
      presented = device.ssh_cert;
    } else {
      if (model.protocol != campaign.protocol || !device.https_cert) continue;
      presented = device.behind_rimon ? factory_.rimon_variant(device)
                                      : device.https_cert;
    }
    if (!events_rng_.chance(campaign.coverage)) continue;

    if (model.bit_error_rate > 0 && events_rng_.chance(model.bit_error_rate)) {
      // One bit flipped on the wire or in storage; a fresh certificate
      // object because the corruption is per-observation.
      const std::size_t bits = presented->key.n.bit_length();
      presented = std::make_shared<cert::Certificate>(
          presented->with_modulus_bit_flipped(events_rng_.below(bits)));
    }

    snap.records.push_back(HostRecord{when, campaign.name, device.ip,
                                      campaign.protocol, presented,
                                      model.banner, {}});

    // Rapid7 surfaced unchained intermediates alongside some leaves.
    if (campaign.name == "Rapid7" && device.issuer_cert &&
        events_rng_.chance(config_.rapid7_intermediate_rate)) {
      snap.records.push_back(HostRecord{when, campaign.name, device.ip,
                                        campaign.protocol, device.issuer_cert,
                                        "", {}});
    }
  }
  return snap;
}

ScanDataset Internet::run(const std::vector<ScanCampaign>& campaigns) {
  seed_initial_population();

  // Schedule: month index -> campaign scan dates.
  struct Scheduled {
    const ScanCampaign* campaign;
    Date when;
  };
  std::vector<Scheduled> schedule;
  for (const auto& campaign : campaigns) {
    for (Date d = campaign.first; d <= campaign.last;
         d = d.add_months(campaign.months_between_scans)) {
      schedule.push_back({&campaign, d});
    }
  }

  ScanDataset dataset;
  std::size_t snapshots_collected = 0;
  const Date start = study_start().month_start();
  const int months = util::months_between(start, study_end()) + 1;
  obs::Counter* scanned = config_.telemetry
                              ? &config_.telemetry->metrics().counter(
                                    "sim.records_scanned")
                              : nullptr;
  for (int mi = 0; mi < months; ++mi) {
    if (config_.cancel) config_.cancel->throw_if_cancelled();
    const Date month = start.add_months(mi);
    advance_month(month);
    for (const auto& s : schedule) {
      if (s.when.month_index() != month.month_index()) continue;
      if (config_.cancel) config_.cancel->throw_if_cancelled();
      obs::Span span;
      if (config_.telemetry) {
        span = config_.telemetry->tracer().span("sim.scan");
        span.arg("month", month.month_index());
      }
      ScanSnapshot snap = scan(*s.campaign, s.when);
      if (scanned) scanned->inc(snap.records.size());
      ++snapshots_collected;
      if (config_.snapshot_sink) {
        config_.snapshot_sink(std::move(snap));
      } else {
        dataset.snapshots.push_back(std::move(snap));
      }
    }
    // One progress line per simulated year: the corpus build is the longest
    // silent stretch of a cold-cache run.
    if (config_.log && (mi + 1) % 12 == 0) {
      std::size_t alive = 0;
      for (const Device& d : devices_) alive += d.alive ? 1 : 0;
      config_.log("year " + std::to_string(month.year()) + ": " +
                  std::to_string(alive) + " devices alive, " +
                  std::to_string(snapshots_collected) +
                  " snapshots collected");
    }
  }

  std::sort(dataset.snapshots.begin(), dataset.snapshots.end(),
            [](const ScanSnapshot& a, const ScanSnapshot& b) {
              if (a.date != b.date) return a.date < b.date;
              return a.source < b.source;
            });
  return dataset;
}

}  // namespace weakkeys::netsim

// Dirty-corpus simulation: deterministic scan-garbage injection.
//
// Six years of raw internet-wide scanning is not a pristine dataset. The
// paper's pipeline had to digest truncated handshakes, bit-flipped
// certificate encodings, and keys that were never well-formed RSA at all
// (even moduli, e = 1, nonsense validity windows). This module reproduces
// that reality on top of the clean simulation: apply_noise() walks a
// ScanDataset and *appends* corrupted junk records derived from real ones —
// the clean records are never touched, so the measurement results on the
// clean subset are invariant under any NoiseConfig. The core::Study ingest
// pass is the component under test: it must quarantine every one of these
// by reason without aborting the run.
#pragma once

#include <cstdint>

#include "netsim/dataset.hpp"

namespace weakkeys::netsim {

/// Per-record injection probabilities. All-zero (the default) means a
/// pristine corpus; each rate is evaluated once per scanned host record.
struct NoiseConfig {
  std::uint64_t seed = 0xd1a7c0a905ULL;  // "dirt corpus"

  // Wire/encoding damage: records arriving as undecoded bytes.
  double truncated_rate = 0.0;  ///< encoding cut short mid-structure
  double bitflip_rate = 0.0;    ///< 1-4 random bytes of the encoding XORed

  // Degenerate keys: records that decode but are not plausible RSA.
  double zero_modulus_rate = 0.0;       ///< n = 0
  double even_modulus_rate = 0.0;       ///< n even (corrupted low limb)
  double tiny_modulus_rate = 0.0;       ///< n far below any real key size
  double bad_exponent_rate = 0.0;       ///< e in {0, 1}
  double inverted_validity_rate = 0.0;  ///< not_after < not_before
  double duplicate_serial_rate = 0.0;   ///< junk host echoing a seen serial

  [[nodiscard]] bool any() const;
  /// Stable hash over seed and rates, used to key result caches so a run
  /// with different noise never reuses another run's factoring output.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// What apply_noise injected, by kind (ground truth for ingest accounting).
struct NoiseSummary {
  std::size_t truncated = 0;
  std::size_t bitflipped = 0;
  std::size_t zero_modulus = 0;
  std::size_t even_modulus = 0;
  std::size_t tiny_modulus = 0;
  std::size_t bad_exponent = 0;
  std::size_t inverted_validity = 0;
  std::size_t duplicate_serial = 0;

  [[nodiscard]] std::size_t total() const {
    return truncated + bitflipped + zero_modulus + even_modulus +
           tiny_modulus + bad_exponent + inverted_validity + duplicate_serial;
  }
  /// Injected records that arrive as raw bytes rather than decoded objects.
  [[nodiscard]] std::size_t raw_records() const {
    return truncated + bitflipped;
  }
};

/// Appends corrupted records to `dataset`, deterministically from
/// `config.seed`. Junk derived from a record lands at the end of the same
/// snapshot, so a corruption's victim always precedes it in scan order.
/// Existing records are never modified or removed.
NoiseSummary apply_noise(ScanDataset& dataset, const NoiseConfig& config);

}  // namespace weakkeys::netsim

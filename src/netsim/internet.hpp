// The internet simulator: runs device populations through the 2010-2016
// timeline and executes the historical scan campaigns against them.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "netsim/catalog.hpp"
#include "netsim/dataset.hpp"
#include "netsim/device.hpp"
#include "netsim/device_model.hpp"
#include "obs/telemetry.hpp"
#include "util/cancellation.hpp"
#include "util/prng.hpp"

namespace weakkeys::netsim {

struct SimConfig {
  std::uint64_t seed = 20160414;
  /// Population scale. Applied by the *catalog* (standard_models(scale)),
  /// which also widens/narrows boot-entropy spaces by log2(scale) so that
  /// prime-collision fractions are scale-invariant. Internet itself uses
  /// the model counts as given.
  double scale = 1.0;
  /// Miller-Rabin rounds for simulated key generation (the corpus builder's
  /// throughput knob; primality errors are vanishingly unlikely either way).
  int miller_rabin_rounds = 6;
  /// Probability that a Rapid7 record of a CA-issued host also surfaces the
  /// unchained intermediate certificate (the Section 3.1 quirk).
  double rapid7_intermediate_rate = 0.10;
  /// Simulation progress events (one line per simulated year); null
  /// discards. core::Study routes this through its telemetry sink so the
  /// multi-minute corpus build is never a silent gap.
  std::function<void(const std::string&)> log;
  /// Optional telemetry: one `sim.scan` span per executed scan snapshot and
  /// `sim.*` population counters (deployed/retired/regenerated/records).
  /// Must outlive the Internet. Does not affect the StoreKey cache identity.
  obs::Telemetry* telemetry = nullptr;
  /// Cooperative cancellation: run() polls per simulated month, per scan
  /// snapshot, and per generated key in the keygen-bound seeding/deployment
  /// loops, then throws util::Cancelled — cancel latency is one key or one
  /// snapshot, whichever is in flight.
  /// Does not affect the StoreKey cache identity.
  const util::CancellationToken* cancel = nullptr;
  /// Streaming emission for corpora too large to hold: when set, run()
  /// hands each completed snapshot here instead of accumulating it and
  /// returns an empty dataset, so at most one snapshot's records are ever
  /// resident (pair with core::ShardedDatasetWriter). Snapshots arrive in
  /// *generation* order (month by month, schedule order within a month) —
  /// not the date-sorted order of a returned dataset; sort after ingest if
  /// order matters. Does not affect the StoreKey cache identity.
  std::function<void(ScanSnapshot&&)> snapshot_sink;
};

class Internet {
 public:
  /// `models` describe the population; the Internet takes ownership (device
  /// records point into the stored copy).
  Internet(std::vector<DeviceModel> models, const SimConfig& config);

  /// Simulates month-by-month from study_start() to study_end(), executing
  /// every scheduled scan of every campaign. Snapshots come back
  /// date-ordered.
  ScanDataset run(const std::vector<ScanCampaign>& campaigns);

  /// Ground truth (for tests and validation; the measurement pipeline uses
  /// only the ScanDataset).
  [[nodiscard]] const std::vector<Device>& devices() const { return devices_; }
  [[nodiscard]] const std::vector<DeviceModel>& models() const { return models_; }
  [[nodiscard]] DeviceFactory& factory() { return factory_; }

 private:
  void seed_initial_population();
  void advance_month(const util::Date& month_start);
  ScanSnapshot scan(const ScanCampaign& campaign, const util::Date& when);
  [[nodiscard]] double deploy_rate(const DeviceModel& m,
                                   const util::Date& month) const;

  std::vector<DeviceModel> models_;
  SimConfig config_;
  DeviceFactory factory_;
  util::Xoshiro256 events_rng_;
  std::vector<Device> devices_;
  std::vector<double> deploy_accumulator_;
};

}  // namespace weakkeys::netsim

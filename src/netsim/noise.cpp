#include "netsim/noise.hpp"

#include <bit>
#include <memory>
#include <string>
#include <utility>

#include "util/prng.hpp"

namespace weakkeys::netsim {

namespace {

/// One corruption kind per injected record, drawn in a fixed order so the
/// record stream is reproducible from the seed alone.
enum class Corruption {
  kTruncated,
  kBitflip,
  kZeroModulus,
  kEvenModulus,
  kTinyModulus,
  kBadExponent,
  kInvertedValidity,
  kDuplicateSerial,
};

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  util::SplitMix64 sm(h ^ v);
  return sm.next();
}

/// Copy of the victim's certificate with one degenerate-key mutation. The
/// signature is deliberately left untouched (and thus invalid), like the
/// corrupted keys the paper observed.
cert::Certificate degrade(const cert::Certificate& victim, Corruption kind,
                          util::Xoshiro256& rng, std::size_t junk_id) {
  cert::Certificate c = victim;
  switch (kind) {
    case Corruption::kZeroModulus:
      c.key.n = bn::BigInt(0);
      break;
    case Corruption::kEvenModulus:
      // One cleared low bit: same magnitude, even — the classic corrupted
      // low-limb shape.
      c.key.n = victim.key.n - bn::BigInt(1);
      break;
    case Corruption::kTinyModulus:
      // Orders of magnitude below any real key; odd so only the size check
      // can catch it.
      c.key.n = bn::BigInt(3 + 2 * rng.below(1u << 20));
      break;
    case Corruption::kBadExponent:
      c.key.e = bn::BigInt(rng.below(2));  // 0 or 1
      break;
    case Corruption::kInvertedValidity:
      c.validity.not_after =
          c.validity.not_before.add_days(-1 - static_cast<std::int64_t>(rng.below(300)));
      break;
    case Corruption::kDuplicateSerial: {
      // A junk host presenting the victim's serial and modulus verbatim
      // under an unrelated subject ("moduli shared verbatim with junk").
      cert::DistinguishedName dn;
      dn.add("CN", "scan-junk-" + std::to_string(junk_id));
      c.subject = dn;
      c.issuer = std::move(dn);
      break;
    }
    case Corruption::kTruncated:
    case Corruption::kBitflip:
      break;  // handled at the byte level by the caller
  }
  return c;
}

}  // namespace

bool NoiseConfig::any() const {
  return truncated_rate > 0 || bitflip_rate > 0 || zero_modulus_rate > 0 ||
         even_modulus_rate > 0 || tiny_modulus_rate > 0 ||
         bad_exponent_rate > 0 || inverted_validity_rate > 0 ||
         duplicate_serial_rate > 0;
}

std::uint64_t NoiseConfig::fingerprint() const {
  if (!any()) return 0;  // a pristine corpus keys caches identically to no config
  std::uint64_t h = mix(0x6e6f697365ULL, seed);  // "noise"
  for (const double rate :
       {truncated_rate, bitflip_rate, zero_modulus_rate, even_modulus_rate,
        tiny_modulus_rate, bad_exponent_rate, inverted_validity_rate,
        duplicate_serial_rate}) {
    h = mix(h, std::bit_cast<std::uint64_t>(rate));
  }
  return h == 0 ? 1 : h;
}

NoiseSummary apply_noise(ScanDataset& dataset, const NoiseConfig& config) {
  NoiseSummary summary;
  if (!config.any()) return summary;
  util::Xoshiro256 rng(config.seed);
  std::size_t junk_id = 0;

  for (auto& snap : dataset.snapshots) {
    std::vector<HostRecord> junk;
    // Iterate only the records present before injection; appended junk is
    // never itself a victim.
    const std::size_t original = snap.records.size();
    for (std::size_t i = 0; i < original; ++i) {
      const HostRecord& victim = snap.records[i];
      if (!victim.has_cert()) continue;

      const auto inject = [&](Corruption kind) {
        HostRecord rec;
        rec.date = victim.date;
        rec.source = victim.source;
        rec.ip = Ipv4(static_cast<std::uint32_t>(rng()));
        rec.protocol = victim.protocol;
        if (kind == Corruption::kTruncated || kind == Corruption::kBitflip) {
          auto bytes = victim.cert().encode();
          if (kind == Corruption::kTruncated) {
            bytes.resize(1 + rng.below(bytes.size() - 1));
          } else {
            const int flips = 1 + static_cast<int>(rng.below(4));
            for (int f = 0; f < flips; ++f) {
              bytes[rng.below(bytes.size())] ^=
                  static_cast<std::uint8_t>(1 + rng.below(255));
            }
          }
          rec.raw_der = std::move(bytes);
        } else {
          rec.certificate = std::make_shared<cert::Certificate>(
              degrade(victim.cert(), kind, rng, junk_id++));
        }
        junk.push_back(std::move(rec));
      };

      if (rng.chance(config.truncated_rate)) {
        inject(Corruption::kTruncated);
        ++summary.truncated;
      }
      if (rng.chance(config.bitflip_rate)) {
        inject(Corruption::kBitflip);
        ++summary.bitflipped;
      }
      if (rng.chance(config.zero_modulus_rate)) {
        inject(Corruption::kZeroModulus);
        ++summary.zero_modulus;
      }
      if (rng.chance(config.even_modulus_rate)) {
        inject(Corruption::kEvenModulus);
        ++summary.even_modulus;
      }
      if (rng.chance(config.tiny_modulus_rate)) {
        inject(Corruption::kTinyModulus);
        ++summary.tiny_modulus;
      }
      if (rng.chance(config.bad_exponent_rate)) {
        inject(Corruption::kBadExponent);
        ++summary.bad_exponent;
      }
      if (rng.chance(config.inverted_validity_rate)) {
        inject(Corruption::kInvertedValidity);
        ++summary.inverted_validity;
      }
      if (rng.chance(config.duplicate_serial_rate)) {
        inject(Corruption::kDuplicateSerial);
        ++summary.duplicate_serial;
      }
    }
    for (auto& rec : junk) snap.records.push_back(std::move(rec));
  }
  return summary;
}

}  // namespace weakkeys::netsim

// IPv4 address allocation with churn-driven reuse.
//
// Consumer and SMB devices sit behind DHCP pools: when a device's lease
// rolls or the device goes away, its address is handed to someone else. The
// paper leans on this (Section 4.1): 350 of the 1,728 ever-vulnerable IBM
// IPs later served a non-vulnerable certificate — with unrelated subjects,
// i.e. a *different device* behind a recycled address, not a patched one.
// This allocator reproduces that artifact: released addresses return to a
// free pool and are preferentially reused.
#pragma once

#include <unordered_set>
#include <vector>

#include "netsim/ipv4.hpp"
#include "util/prng.hpp"

namespace weakkeys::netsim {

class IpAllocator {
 public:
  /// `reuse_probability` is the chance that an allocation is served from the
  /// released pool (when it is non-empty) instead of fresh address space.
  explicit IpAllocator(std::uint64_t seed, double reuse_probability = 0.35)
      : rng_(seed), reuse_probability_(reuse_probability) {}

  /// A currently-unused address (never collides with another live lease).
  Ipv4 allocate();

  /// Returns an address to the pool. Releasing an address that was never
  /// allocated is tolerated (and makes it available).
  void release(Ipv4 ip);

  [[nodiscard]] std::size_t live_count() const { return in_use_.size(); }
  [[nodiscard]] std::size_t free_pool_size() const { return free_.size(); }

 private:
  Ipv4 fresh();

  util::Xoshiro256 rng_;
  double reuse_probability_;
  std::vector<Ipv4> free_;
  std::unordered_set<Ipv4> in_use_;
};

}  // namespace weakkeys::netsim

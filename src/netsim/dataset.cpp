#include "netsim/dataset.hpp"

#include <unordered_set>

namespace weakkeys::netsim {

std::string to_string(Protocol p) {
  // Exhaustive switch with no default: adding a Protocol enumerator without
  // a case here is a compile-time -Wswitch diagnostic. Out-of-enum values
  // (cast from corrupted serialized bytes) fall through to the total
  // fallback instead of aborting mid-study.
  switch (p) {
    case Protocol::kHttps:
      return "HTTPS";
    case Protocol::kSsh:
      return "SSH";
    case Protocol::kImaps:
      return "IMAPS";
    case Protocol::kPop3s:
      return "POP3S";
    case Protocol::kSmtps:
      return "SMTPS";
  }
  return "unknown-protocol(" + std::to_string(static_cast<std::uint32_t>(p)) +
         ")";
}

std::optional<Protocol> protocol_from_index(std::uint32_t value) {
  if (value >= kProtocolCount) return std::nullopt;
  return static_cast<Protocol>(value);
}

namespace {

/// Identity key for certificate deduplication. Serial numbers are unique per
/// issued certificate in the simulation, but derived variants (Rimon
/// substitution, bit errors) reuse the original serial with a different
/// modulus, so the key includes both.
std::string cert_key(const cert::Certificate& c) {
  return std::to_string(c.serial) + '/' + c.key.n.to_hex();
}

}  // namespace

std::size_t ScanDataset::total_host_records() const {
  std::size_t total = 0;
  for (const auto& snap : snapshots) total += snap.records.size();
  return total;
}

std::size_t ScanDataset::distinct_certificates() const {
  // Records overwhelmingly share certificate objects; dedup by pointer
  // before hashing content.
  std::unordered_set<const cert::Certificate*> seen_ptr;
  std::unordered_set<std::string> seen;
  for (const auto& snap : snapshots) {
    for (const auto& rec : snap.records) {
      if (!rec.has_cert()) continue;  // undecoded dirty-corpus bytes
      if (!seen_ptr.insert(rec.certificate.get()).second) continue;
      seen.insert(cert_key(rec.cert()));
    }
  }
  return seen.size();
}

namespace {

std::vector<bn::BigInt> collect_moduli(const ScanDataset& ds,
                                       const Protocol* filter) {
  std::unordered_set<const cert::Certificate*> seen_ptr;
  std::unordered_set<std::string> seen;
  std::vector<bn::BigInt> out;
  for (const auto& snap : ds.snapshots) {
    if (filter && snap.protocol != *filter) continue;
    for (const auto& rec : snap.records) {
      if (!rec.has_cert()) continue;  // undecoded dirty-corpus bytes
      if (!seen_ptr.insert(rec.certificate.get()).second) continue;
      if (seen.insert(rec.cert().key.n.to_hex()).second) {
        out.push_back(rec.cert().key.n);
      }
    }
  }
  return out;
}

}  // namespace

std::vector<bn::BigInt> ScanDataset::distinct_moduli() const {
  return collect_moduli(*this, nullptr);
}

std::vector<bn::BigInt> ScanDataset::distinct_moduli(Protocol p) const {
  return collect_moduli(*this, &p);
}

std::vector<const ScanSnapshot*> ScanDataset::snapshots_for(Protocol p) const {
  std::vector<const ScanSnapshot*> out;
  for (const auto& snap : snapshots) {
    if (snap.protocol == p) out.push_back(&snap);
  }
  return out;
}

}  // namespace weakkeys::netsim

#include "util/spill_file.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/atomic_file.hpp"

#if !defined(_WIN32)
#include <unistd.h>
#define WEAKKEYS_HAVE_FSYNC 1
#endif

namespace weakkeys::util {

namespace {

/// Table-driven CRC-32 (same reflected polynomial as the cache footers) —
/// spill levels are tens of megabytes, where the bitwise loop in
/// binary_io.hpp would dominate the I/O itself. Incremental: seed with
/// crc_init(), fold buffers with crc_update(), close with crc_final().
const std::uint32_t* crc_table() {
  static const auto table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c >> 1) ^ ((c & 1u) ? 0xedb88320u : 0u);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

constexpr std::uint32_t crc_init() { return 0xffffffffu; }

std::uint32_t crc_update(std::uint32_t state, const std::uint8_t* data,
                         std::size_t size) {
  const std::uint32_t* table = crc_table();
  for (std::size_t i = 0; i < size; ++i) {
    state = (state >> 8) ^ table[(state ^ data[i]) & 0xffu];
  }
  return state;
}

constexpr std::uint32_t crc_final(std::uint32_t state) { return ~state; }

bool fsync_file([[maybe_unused]] std::FILE* f) {
#if defined(WEAKKEYS_HAVE_FSYNC)
  return ::fsync(::fileno(f)) == 0;
#else
  return true;
#endif
}

/// Draws this operation's storage fault and advances the store's op
/// counter. No injector (or no counter) means no faults.
StorageFault next_fault(const SpillIoHooks& hooks) {
  if (hooks.injector == nullptr || hooks.op_seq == nullptr) return {};
  return hooks.injector->decide_storage(hooks.stream, (*hooks.op_seq)++);
}

void apply_slow_io(const StorageFault& fault) {
  if (fault.kind == StorageFaultKind::kSlowIo && fault.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
  }
}

struct HeaderImage {
  std::uint8_t bytes[kSpillHeaderSize];
  std::size_t at = 0;

  void u32(std::uint32_t v) {
    std::memcpy(bytes + at, &v, sizeof v);
    at += sizeof v;
  }
  void u64(std::uint64_t v) {
    std::memcpy(bytes + at, &v, sizeof v);
    at += sizeof v;
  }
};

void encode_header(const SpillFileHeader& header, HeaderImage& image) {
  image.u32(kSpillMagic);
  image.u32(kSpillVersion);
  image.u64(header.generation);
  image.u32(header.level_index);
  image.u32(0);  // reserved
  image.u64(header.record_count);
  image.u64(header.payload_bytes);
  image.u32(crc_final(crc_update(crc_init(), image.bytes, image.at)));
}

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

const char* to_string(StorageErrorKind kind) {
  switch (kind) {
    case StorageErrorKind::kIo: return "io";
    case StorageErrorKind::kShortWrite: return "short-write";
    case StorageErrorKind::kFsync: return "fsync";
    case StorageErrorKind::kEnospc: return "enospc";
    case StorageErrorKind::kExhausted: return "exhausted";
  }
  return "unknown";
}

const char* to_string(SpillFileStatus status) {
  switch (status) {
    case SpillFileStatus::kOk: return "ok";
    case SpillFileStatus::kMissing: return "missing";
    case SpillFileStatus::kEmpty: return "empty";
    case SpillFileStatus::kTruncatedHeader: return "truncated-header";
    case SpillFileStatus::kBadMagic: return "bad-magic";
    case SpillFileStatus::kBadVersion: return "bad-version";
    case SpillFileStatus::kBadHeaderCrc: return "bad-header-crc";
    case SpillFileStatus::kStaleGeneration: return "stale-generation";
    case SpillFileStatus::kTruncatedPayload: return "truncated-payload";
    case SpillFileStatus::kBadRecord: return "bad-record";
    case SpillFileStatus::kBadPayloadCrc: return "bad-payload-crc";
  }
  return "unknown";
}

SpillFileWriter::SpillFileWriter(std::string path, std::uint64_t generation,
                                 std::uint32_t level_index,
                                 const SpillIoHooks& hooks)
    : path_(std::move(path)),
      tmp_(atomic_tmp_path(path_)),
      payload_crc_(crc_init()),
      fault_(next_fault(hooks)) {
  header_.generation = generation;
  header_.level_index = level_index;
  file_ = std::fopen(tmp_.c_str(), "wb");
  if (file_ == nullptr) {
    throw StorageError(
        errno == ENOSPC ? StorageErrorKind::kEnospc : StorageErrorKind::kIo,
        "cannot open spill tmp: " + tmp_);
  }
  // Reserve the header slot; finish() backpatches the real one.
  const std::uint8_t zeros[kSpillHeaderSize] = {};
  if (std::fwrite(zeros, 1, kSpillHeaderSize, file_) != kSpillHeaderSize) {
    fail(errno == ENOSPC ? StorageErrorKind::kEnospc
                         : StorageErrorKind::kShortWrite,
         "cannot reserve spill header: " + tmp_);
  }
}

SpillFileWriter::~SpillFileWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    std::remove(tmp_.c_str());
  }
}

void SpillFileWriter::fail(StorageErrorKind kind, const std::string& what) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::remove(tmp_.c_str());
  throw StorageError(kind, what);
}

void SpillFileWriter::add_record(const std::uint8_t* data, std::size_t size) {
  const std::uint32_t len = static_cast<std::uint32_t>(size);
  std::uint8_t prefix[4];
  std::memcpy(prefix, &len, sizeof prefix);
  if (std::fwrite(prefix, 1, sizeof prefix, file_) != sizeof prefix ||
      (size > 0 && std::fwrite(data, 1, size, file_) != size)) {
    fail(errno == ENOSPC ? StorageErrorKind::kEnospc
                         : StorageErrorKind::kShortWrite,
         "short spill write: " + tmp_);
  }
  payload_crc_ = crc_update(payload_crc_, prefix, sizeof prefix);
  payload_crc_ = crc_update(payload_crc_, data, size);
  header_.record_count += 1;
  header_.payload_bytes += sizeof prefix + size;
}

std::uint64_t SpillFileWriter::finish() {
  apply_slow_io(fault_);
  // Injected write failures land here — after the payload streamed, before
  // anything is published — so the tmp is torn exactly where a full disk
  // or a dying kernel would tear it, and nothing visible changes.
  if (fault_.kind == StorageFaultKind::kEnospc) {
    fail(StorageErrorKind::kEnospc, "injected ENOSPC: " + tmp_);
  }
  if (fault_.kind == StorageFaultKind::kShortWrite) {
    fail(StorageErrorKind::kShortWrite, "injected short write: " + tmp_);
  }

  std::uint8_t footer[kSpillFooterSize];
  const std::uint32_t crc = crc_final(payload_crc_);
  std::memcpy(footer, &crc, sizeof footer);
  if (std::fwrite(footer, 1, sizeof footer, file_) != sizeof footer) {
    fail(errno == ENOSPC ? StorageErrorKind::kEnospc
                         : StorageErrorKind::kShortWrite,
         "short spill footer write: " + tmp_);
  }

  HeaderImage image;
  encode_header(header_, image);
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fwrite(image.bytes, 1, kSpillHeaderSize, file_) !=
          kSpillHeaderSize) {
    fail(StorageErrorKind::kIo, "cannot backpatch spill header: " + tmp_);
  }

  const bool flushed = std::fflush(file_) == 0;
  const bool synced =
      flushed && fault_.kind != StorageFaultKind::kFsyncFail &&
      fsync_file(file_);
  if (!synced) {
    fail(StorageErrorKind::kFsync, "cannot sync spill file: " + tmp_);
  }
  std::fclose(file_);
  file_ = nullptr;

  try {
    atomic_publish_file(tmp_, path_);
  } catch (const std::exception& e) {
    throw StorageError(StorageErrorKind::kIo, e.what());
  }
  finished_ = true;
  const std::uint64_t total =
      kSpillHeaderSize + header_.payload_bytes + kSpillFooterSize;

  if (fault_.kind == StorageFaultKind::kBitFlip) {
    // Bit rot after a clean publish: silently flip one bit of the
    // published file. Only the next read's CRC verification notices.
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    if (f != nullptr) {
      const std::uint64_t offset = fault_.flip_seed % total;
      std::uint8_t byte = 0;
      if (std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0 &&
          std::fread(&byte, 1, 1, f) == 1) {
        byte ^= static_cast<std::uint8_t>(
            1u << ((fault_.flip_seed >> 32) % 8));
        std::fseek(f, static_cast<long>(offset), SEEK_SET);
        std::fwrite(&byte, 1, 1, f);
      }
      std::fclose(f);
    }
  }
  return total;
}

namespace {

/// Shared header validation for read and probe. Returns kOk with the
/// parsed header and total file size when the header section is sound.
SpillFileStatus check_header(std::FILE* f, std::uint64_t expected_generation,
                             SpillFileHeader* header, std::uint64_t* size) {
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  if (end < 0) return SpillFileStatus::kMissing;
  *size = static_cast<std::uint64_t>(end);
  if (*size == 0) return SpillFileStatus::kEmpty;
  if (*size < kSpillHeaderSize) return SpillFileStatus::kTruncatedHeader;
  std::fseek(f, 0, SEEK_SET);
  std::uint8_t bytes[kSpillHeaderSize];
  if (std::fread(bytes, 1, kSpillHeaderSize, f) != kSpillHeaderSize) {
    return SpillFileStatus::kTruncatedHeader;
  }
  if (read_u32(bytes) != kSpillMagic) return SpillFileStatus::kBadMagic;
  if (read_u32(bytes + 4) != kSpillVersion) {
    return SpillFileStatus::kBadVersion;
  }
  const std::uint32_t stored_crc = read_u32(bytes + kSpillHeaderSize - 4);
  const std::uint32_t computed_crc =
      crc_final(crc_update(crc_init(), bytes, kSpillHeaderSize - 4));
  if (stored_crc != computed_crc) return SpillFileStatus::kBadHeaderCrc;
  header->generation = read_u64(bytes + 8);
  header->level_index = read_u32(bytes + 16);
  header->record_count = read_u64(bytes + 24);
  header->payload_bytes = read_u64(bytes + 32);
  if (header->generation != expected_generation) {
    return SpillFileStatus::kStaleGeneration;
  }
  if (*size != kSpillHeaderSize + header->payload_bytes + kSpillFooterSize) {
    return SpillFileStatus::kTruncatedPayload;
  }
  return SpillFileStatus::kOk;
}

}  // namespace

SpillFileStatus read_spill_file(const std::string& path,
                                std::uint64_t expected_generation,
                                SpillFileHeader* header,
                                std::vector<std::vector<std::uint8_t>>* records,
                                const SpillIoHooks& hooks) {
  apply_slow_io(next_fault(hooks));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return SpillFileStatus::kMissing;
  std::uint64_t size = 0;
  SpillFileStatus status = check_header(f, expected_generation, header, &size);
  if (status != SpillFileStatus::kOk) {
    std::fclose(f);
    return status;
  }

  records->clear();
  records->reserve(header->record_count);
  std::uint32_t crc = crc_init();
  std::uint64_t remaining = header->payload_bytes;
  for (std::uint64_t i = 0; i < header->record_count; ++i) {
    std::uint8_t prefix[4];
    if (remaining < sizeof prefix ||
        std::fread(prefix, 1, sizeof prefix, f) != sizeof prefix) {
      std::fclose(f);
      return SpillFileStatus::kBadRecord;
    }
    remaining -= sizeof prefix;
    const std::uint32_t len = read_u32(prefix);
    if (len > remaining) {
      std::fclose(f);
      return SpillFileStatus::kBadRecord;
    }
    std::vector<std::uint8_t> record(len);
    if (len > 0 && std::fread(record.data(), 1, len, f) != len) {
      std::fclose(f);
      return SpillFileStatus::kBadRecord;
    }
    remaining -= len;
    crc = crc_update(crc, prefix, sizeof prefix);
    crc = crc_update(crc, record.data(), record.size());
    records->push_back(std::move(record));
  }
  if (remaining != 0) {
    std::fclose(f);
    return SpillFileStatus::kBadRecord;
  }
  std::uint8_t footer[kSpillFooterSize];
  const bool footer_ok =
      std::fread(footer, 1, sizeof footer, f) == sizeof footer;
  std::fclose(f);
  if (!footer_ok || read_u32(footer) != crc_final(crc)) {
    return SpillFileStatus::kBadPayloadCrc;
  }
  return SpillFileStatus::kOk;
}

SpillFileStatus probe_spill_file(const std::string& path,
                                 std::uint64_t expected_generation,
                                 SpillFileHeader* header) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return SpillFileStatus::kMissing;
  std::uint64_t size = 0;
  const SpillFileStatus status =
      check_header(f, expected_generation, header, &size);
  std::fclose(f);
  return status;
}

}  // namespace weakkeys::util

// On-disk tree-level files for the out-of-core batch GCD ("spill files").
//
// A spill file is one product-tree level written as a sequential,
// stream-readable artifact:
//
//   header (44 bytes) | records | payload CRC (4 bytes)
//
//   header:  u32 magic "WKL1" | u32 version | u64 generation |
//            u32 level_index | u32 reserved | u64 record_count |
//            u64 payload_bytes | u32 header_crc(first 36 bytes)
//   records: per node, u32 byte_length | bytes  (concatenated; the
//            payload CRC covers this byte stream exactly)
//
// The generation stamp binds a level file to the corpus it was built from
// (a fingerprint of the input moduli), so a resumed run can trust levels
// found on disk and a stale file from an earlier corpus is a detected
// error, not silent reuse. Files are published via the atomic tmp + fsync
// + rename + parent-fsync protocol, so a SIGKILL at any point leaves
// either no file or a complete one; the CRCs catch everything the rename
// protocol cannot (bit rot, torn writes on non-POSIX filesystems).
//
// Every operation can be perturbed by the FaultInjector's storage tier
// (short write, fsync failure, post-publish bit flip, ENOSPC, slow I/O)
// through SpillIoHooks — the schedule is pure in (seed, stream, op seq),
// like every other injector tier.
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/fault_injector.hpp"

namespace weakkeys::util {

/// Why a storage operation failed. The spill store's degradation ladder
/// reacts to the kind (ENOSPC starts the spill -> shrink -> in-RAM walk;
/// kExhausted means the ladder itself ran out of rungs).
enum class StorageErrorKind : std::uint8_t {
  kIo,          ///< open/read/write failed for an unclassified reason
  kShortWrite,  ///< fewer bytes reached the file than were written
  kFsync,       ///< the pre-publish fsync failed; durability unknown
  kEnospc,      ///< the filesystem is full
  kExhausted    ///< every degradation rung failed; the run must cancel
};

[[nodiscard]] const char* to_string(StorageErrorKind kind);

/// The storage tier's clean-cancel exception: thrown when a spill write
/// cannot be completed (after retries) or when a corrupt level cannot be
/// healed. Flows through the same lifecycle path as util::Cancelled — the
/// study flushes telemetry and reports kFailed instead of corrupting the
/// vulnerable set.
class StorageError : public std::runtime_error {
 public:
  StorageError(StorageErrorKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  [[nodiscard]] StorageErrorKind kind() const { return kind_; }

 private:
  StorageErrorKind kind_;
};

/// Verification outcome of reading or probing a spill file. Every way a
/// file can be wrong maps to a distinct status (the corruption-table sweep
/// asserts the mapping), and none of them throws — corruption is an
/// expected event the caller heals around.
enum class SpillFileStatus : std::uint8_t {
  kOk = 0,
  kMissing,          ///< the file does not exist / cannot be opened
  kEmpty,            ///< zero-length file (crash before any byte landed)
  kTruncatedHeader,  ///< shorter than the fixed header
  kBadMagic,         ///< not a spill file
  kBadVersion,       ///< format version from a different build
  kBadHeaderCrc,     ///< header bytes corrupted
  kStaleGeneration,  ///< valid file from a different corpus generation
  kTruncatedPayload, ///< size disagrees with the header's payload_bytes
  kBadRecord,        ///< a record length points outside the payload
  kBadPayloadCrc     ///< payload bytes corrupted (bit rot / torn write)
};

[[nodiscard]] const char* to_string(SpillFileStatus status);

inline constexpr std::uint32_t kSpillMagic = 0x574b4c31;  // "WKL1"
inline constexpr std::uint32_t kSpillVersion = 1;
inline constexpr std::size_t kSpillHeaderSize = 44;
inline constexpr std::size_t kSpillFooterSize = 4;

struct SpillFileHeader {
  std::uint64_t generation = 0;
  std::uint32_t level_index = 0;
  std::uint64_t record_count = 0;
  std::uint64_t payload_bytes = 0;
};

/// Storage-tier fault wiring for one spill store. `op_seq` is the store's
/// monotonically increasing operation counter (one draw per file write or
/// read), owned by the store so the schedule is pure in (seed, stream,
/// operation index) regardless of which levels get which operations.
struct SpillIoHooks {
  const FaultInjector* injector = nullptr;
  std::uint64_t stream = 0;
  std::uint64_t* op_seq = nullptr;
};

/// Streams one level's records into "<path>.tmp" and publishes it
/// atomically on finish(). The header is backpatched with the final record
/// count, payload size, and CRCs, so add_record() never buffers more than
/// stdio's block. Any failure — real I/O error or injected storage fault —
/// surfaces as StorageError from finish() (or add_record) with the tmp
/// removed; a writer destroyed before finish() also removes the tmp.
class SpillFileWriter {
 public:
  SpillFileWriter(std::string path, std::uint64_t generation,
                  std::uint32_t level_index, const SpillIoHooks& hooks = {});
  ~SpillFileWriter();
  SpillFileWriter(const SpillFileWriter&) = delete;
  SpillFileWriter& operator=(const SpillFileWriter&) = delete;

  void add_record(const std::uint8_t* data, std::size_t size);
  void add_record(std::span<const std::uint8_t> bytes) {
    add_record(bytes.data(), bytes.size());
  }

  /// Seals and publishes the file. Returns the published file's total
  /// size in bytes. Throws StorageError on any failure (tmp removed).
  std::uint64_t finish();

 private:
  void fail(StorageErrorKind kind, const std::string& what);

  std::string path_;
  std::string tmp_;
  std::FILE* file_ = nullptr;
  SpillFileHeader header_;
  std::uint32_t payload_crc_ = 0;  ///< running CRC state
  StorageFault fault_;             ///< this operation's injected fault
  bool finished_ = false;
};

/// Reads and fully verifies a spill file, streaming records straight into
/// `records` (small constant buffering beyond the records themselves).
/// Returns kOk with `header`/`records` filled, or the distinct status for
/// whatever is wrong — never throws on corruption. Injected slow-I/O
/// faults stall the read; other storage-fault kinds do not apply to reads.
SpillFileStatus read_spill_file(const std::string& path,
                                std::uint64_t expected_generation,
                                SpillFileHeader* header,
                                std::vector<std::vector<std::uint8_t>>* records,
                                const SpillIoHooks& hooks = {});

/// Header-only validation (magic, version, header CRC, generation, total
/// size vs header) for cheap resume probing; does not touch the payload
/// CRC, so a probe can pass where a full read later heals.
SpillFileStatus probe_spill_file(const std::string& path,
                                 std::uint64_t expected_generation,
                                 SpillFileHeader* header);

}  // namespace weakkeys::util

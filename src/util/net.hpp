// Shared POSIX socket helpers for everything in the tree that speaks TCP:
// the obs::StatusServer HTTP endpoints and the cluster worker protocol.
//
// The recurring bugs these helpers exist to kill, once:
//   - partial reads/writes: send()/recv() on a TCP socket may move fewer
//     bytes than asked (large /metrics responses tripped this in the status
//     server); read_full()/write_full() loop until done or a hard error;
//   - EINTR: every loop restarts interrupted syscalls instead of treating a
//     signal as a connection failure (the cluster coordinator SIGCHLDs and
//     SIGKILLs freely while sockets are in flight);
//   - SIGPIPE: write_full() sends with MSG_NOSIGNAL, so a peer that died
//     mid-write surfaces as EPIPE, not a process-killing signal;
//   - fd leakage into forked children: the coordinator fork/execs workers,
//     so every listening and accepted socket must be FD_CLOEXEC or each
//     worker would inherit (and hold open) its siblings' connections.
//
// Header-only so both wk_obs and wk_util (which links wk_obs) can use it
// without a library cycle. All functions operate on plain fds; ownership
// stays with the caller (wrap in util::net::UniqueFd for scope-bound close).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#define WEAKKEYS_HAVE_NET 1
#endif

namespace weakkeys::util::net {

/// RAII fd: closes on destruction, movable, non-copyable.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset(int fd = -1) {
#if defined(WEAKKEYS_HAVE_NET)
    // POSIX leaves the fd state unspecified after EINTR from close();
    // retrying double-closes on Linux, so close once and move on.
    if (fd_ >= 0) ::close(fd_);
#endif
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

#if defined(WEAKKEYS_HAVE_NET)

namespace detail {

using NetClock = std::chrono::steady_clock;

/// Remaining milliseconds until `deadline`, clamped to >= 0.
inline int remaining_ms(NetClock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - NetClock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

inline bool parse_addr(const std::string& address, std::uint16_t port,
                       sockaddr_in* out) {
  *out = sockaddr_in{};
  out->sin_family = AF_INET;
  out->sin_port = htons(port);
  return ::inet_pton(AF_INET, address.c_str(), &out->sin_addr) == 1;
}

}  // namespace detail

/// Sets FD_CLOEXEC so the fd does not leak across fork/exec. Returns false
/// (errno set) on failure; callers treat the fd as unusable then.
inline bool set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC) == 0;
}

/// Flips O_NONBLOCK on or off. Returns false (errno set) on failure.
inline bool set_nonblocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags < 0) return false;
  const int next = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, next) == 0;
}

/// Reads exactly `size` bytes, restarting on EINTR. Returns false on EOF
/// or any hard error (the caller cannot distinguish — for a framed
/// protocol both mean "this connection is over").
inline bool read_full(int fd, void* data, std::size_t size) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::recv(fd, p, size, 0);
    if (n > 0) {
      p += n;
      size -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF (n == 0) or hard error
  }
  return true;
}

/// Writes exactly `size` bytes, restarting on EINTR and resuming partial
/// writes; sends with MSG_NOSIGNAL so a dead peer yields EPIPE, not
/// SIGPIPE. Returns false on any hard error.
inline bool write_full(int fd, const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n > 0) {
      p += n;
      size -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Blocks until the fd is readable or `timeout` elapses (negative = wait
/// forever). Returns true when readable (or the peer hung up — the next
/// read reports it), false on timeout or error; restarts on EINTR with
/// the remaining time.
inline bool wait_readable(int fd, std::chrono::milliseconds timeout) {
  const bool bounded = timeout.count() >= 0;
  const auto deadline = detail::NetClock::now() + timeout;
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int wait = bounded ? detail::remaining_ms(deadline) : -1;
    const int ready = ::poll(&pfd, 1, wait);
    if (ready > 0) return (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    if (ready == 0) return false;  // timeout
    if (errno != EINTR) return false;
  }
}

/// The port a bound socket actually listens on (-1 on error). Useful after
/// binding port 0.
inline int local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return -1;
  return ntohs(addr.sin_port);
}

/// Creates a CLOEXEC TCP listener bound to `address:port` (port 0 = kernel
/// ephemeral). Returns the fd, or -1 with errno set. On success
/// `*bound_port` (if non-null) receives the actually bound port.
inline int listen_tcp(const std::string& address, std::uint16_t port,
                      int backlog = 16, int* bound_port = nullptr) {
  sockaddr_in addr{};
  if (!detail::parse_addr(address, port, &addr)) {
    errno = EINVAL;
    return -1;
  }
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return -1;
  set_cloexec(fd.get());
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    return -1;
  if (::listen(fd.get(), backlog) != 0) return -1;
  if (bound_port != nullptr) *bound_port = local_port(fd.get());
  return fd.release();
}

/// Ignores SIGPIPE process-wide (idempotent). write_full() already sends
/// with MSG_NOSIGNAL, but third-party code and raw writes on cluster
/// sockets can still raise it; both cluster endpoints call this once at
/// startup so a peer vanishing mid-write is always an EPIPE error return,
/// never process death. Deliberately does not clobber a handler the
/// application installed itself.
inline void ignore_sigpipe() {
  struct sigaction current {};
  if (::sigaction(SIGPIPE, nullptr, &current) == 0 &&
      current.sa_handler != SIG_DFL) {
    return;  // the application installed something; leave it alone
  }
  struct sigaction ignore {};
  ignore.sa_handler = SIG_IGN;
  ::sigemptyset(&ignore.sa_mask);
  ::sigaction(SIGPIPE, &ignore, nullptr);
}

/// Arms TCP keepalive probing on a connected socket so a remote peer that
/// vanishes without a FIN (cable pull, NAT expiry) is eventually detected
/// at the transport layer too — the protocol's ping deadline fires first,
/// keepalive is the backstop for idle links. Returns false on any
/// setsockopt failure (the socket still works without it).
inline bool enable_keepalive(int fd, int idle_s = 30, int interval_s = 10,
                             int count = 3) {
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one)) != 0)
    return false;
  bool ok = true;
#if defined(TCP_KEEPIDLE)
  ok &= ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPIDLE, &idle_s, sizeof(idle_s)) ==
        0;
#endif
#if defined(TCP_KEEPINTVL)
  ok &= ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPINTVL, &interval_s,
                     sizeof(interval_s)) == 0;
#endif
#if defined(TCP_KEEPCNT)
  ok &= ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPCNT, &count, sizeof(count)) == 0;
#endif
  return ok;
}

/// Accepts one connection from a listener, marking it CLOEXEC. Returns -1
/// on error; restarts on EINTR.
inline int accept_cloexec(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      set_cloexec(fd);
      return fd;
    }
    if (errno != EINTR) return -1;
  }
}

/// Nonblocking connect to `address:port` bounded by `timeout` (negative =
/// wait forever): the socket is created CLOEXEC, connected with O_NONBLOCK
/// + poll, then returned in blocking mode. Returns the fd, or -1 with
/// errno set (ETIMEDOUT when the deadline passed first).
inline int connect_tcp(const std::string& address, std::uint16_t port,
                       std::chrono::milliseconds timeout) {
  sockaddr_in addr{};
  if (!detail::parse_addr(address, port, &addr)) {
    errno = EINVAL;
    return -1;
  }
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return -1;
  set_cloexec(fd.get());
  if (!set_nonblocking(fd.get(), true)) return -1;

  const int rc =
      ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) return -1;
    const bool bounded = timeout.count() >= 0;
    const auto deadline = detail::NetClock::now() + timeout;
    for (;;) {
      pollfd pfd{fd.get(), POLLOUT, 0};
      const int wait = bounded ? detail::remaining_ms(deadline) : -1;
      const int ready = ::poll(&pfd, 1, wait);
      if (ready > 0) break;
      if (ready == 0) {
        errno = ETIMEDOUT;
        return -1;
      }
      if (errno != EINTR) return -1;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0)
      return -1;
    if (err != 0) {
      errno = err;
      return -1;
    }
  }
  if (!set_nonblocking(fd.get(), false)) return -1;
  return fd.release();
}

#endif  // WEAKKEYS_HAVE_NET

}  // namespace weakkeys::util::net

// Cooperative cancellation for long-running pipeline stages.
//
// The paper's headline computation is a 500-minute batch GCD; jobs that
// long get SIGTERMed by schedulers, exceed deadlines, or stall on a sick
// worker. A CancellationToken is the one object all of those paths share:
//
//   - cancel(reason) trips the token from any normal thread context,
//     records the reason, and runs registered callbacks exactly once;
//   - request_async(signum) trips it from a signal handler — it performs
//     atomic stores only (async-signal-safe; no mutex, no callbacks) and a
//     later promote() from a normal context runs the callbacks and
//     synthesizes a "signal: ..." reason;
//   - set_deadline(...) trips it implicitly once the steady clock passes
//     the deadline: cancelled() folds the deadline check in, so every poll
//     site doubles as a deadline check with no extra bookkeeping.
//
// Pipeline code polls at batch granularity (per simulated month, per scan
// snapshot, per remainder-tree task) via throw_if_cancelled(), which throws
// util::Cancelled; the study's run() catches it, flushes telemetry, writes
// a checkpoint, and unwinds cleanly. Cancel latency is therefore bounded by
// the longest single batch, which the lifecycle tests pin.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace weakkeys::util {

/// Thrown by poll sites when their token has tripped. Derives from
/// runtime_error so legacy catch sites still flush, but is distinguishable:
/// a cancelled run is an *ordered* stop, not a failure.
class Cancelled : public std::runtime_error {
 public:
  explicit Cancelled(const std::string& reason)
      : std::runtime_error(reason.empty() ? std::string("cancelled")
                                          : "cancelled: " + reason) {}
};

class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Trips the token from a normal thread context. The first caller wins
  /// the reason; callbacks run exactly once across all cancel()/promote()
  /// calls. Safe to call concurrently and repeatedly.
  void cancel(const std::string& reason);

  /// Async-signal-safe trip: atomic stores only. Callbacks do NOT run here
  /// (a signal handler may interrupt a thread holding the callback mutex);
  /// call promote() from a normal context — the lifecycle tick does — to
  /// run them and materialize the reason.
  void request_async(int signum) noexcept {
    signal_.store(signum, std::memory_order_relaxed);
    tripped_.store(true, std::memory_order_release);
  }

  /// Arms (or re-arms) a deadline on the steady clock; the token reads as
  /// cancelled once the clock passes it. `label` names the scope for the
  /// synthesized reason ("deadline exceeded (factor)").
  void set_deadline(std::chrono::steady_clock::time_point deadline,
                    const std::string& label = "");
  void clear_deadline();

  /// True once tripped by cancel(), request_async(), or an expired
  /// deadline. Lock-free on the untripped fast path (one relaxed load plus
  /// one clock read only while a deadline is armed).
  [[nodiscard]] bool cancelled() const;

  /// The cancel reason; synthesized for signal/deadline trips ("signal 15",
  /// "deadline exceeded (run)"). Empty while untripped.
  [[nodiscard]] std::string reason() const;

  /// Throws util::Cancelled with reason() if the token has tripped.
  void throw_if_cancelled() const {
    if (cancelled()) throw Cancelled(reason());
  }

  /// Runs pending callbacks if the token tripped through an async or
  /// deadline path that could not run them itself. Returns true when this
  /// call performed the promotion. No-op on an untripped token.
  bool promote();

  /// Registers a callback to run (once, from a normal context) when the
  /// token trips; runs immediately if it already has. Returns a token for
  /// remove_callback(). Callbacks must not re-enter this object.
  std::uint64_t add_callback(std::function<void()> fn);
  void remove_callback(std::uint64_t token);

  /// Seconds until the armed deadline (negative when none is armed).
  [[nodiscard]] double deadline_remaining_s() const;

  /// The signal number delivered via request_async (0 when none).
  [[nodiscard]] int signal() const {
    return signal_.load(std::memory_order_relaxed);
  }

 private:
  void run_callbacks_locked(std::unique_lock<std::mutex>& lock);
  [[nodiscard]] bool deadline_passed() const;
  [[nodiscard]] std::string synthesized_reason() const;

  /// Mutable: cancelled() latches an expired deadline from const context.
  mutable std::atomic<bool> tripped_{false};
  std::atomic<int> signal_{0};
  /// Deadline as steady_clock nanoseconds-since-epoch; min() = unarmed.
  std::atomic<std::int64_t> deadline_ns_{
      std::numeric_limits<std::int64_t>::min()};

  mutable std::mutex mu_;  ///< guards reason_, labels, callbacks
  std::string reason_;
  std::string deadline_label_;
  bool callbacks_run_ = false;
  std::uint64_t next_callback_token_ = 1;
  std::vector<std::pair<std::uint64_t, std::function<void()>>> callbacks_;
};

}  // namespace weakkeys::util

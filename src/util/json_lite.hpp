// Minimal recursive-descent JSON parser for the library's own artifacts.
//
// The pipeline emits JSON (Chrome traces, metrics snapshots, monitor
// time-series, bench results) and a few consumers read it back: the
// benchdiff regression tool parses `BENCH_<suite>.json` files, and the
// tests prove every exported document is well-formed and carries the right
// values. Supports the full JSON value grammar; numbers are held as double
// (every value the exporters emit fits exactly or is only compared
// loosely). Throws std::runtime_error on malformed input.
#pragma once

#include <cctype>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace weakkeys::jsonlite {

struct Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

struct Value {
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v;

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(v);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(v);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(v);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(v);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(v);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v);
  }

  [[nodiscard]] const Object& object() const { return std::get<Object>(v); }
  [[nodiscard]] const Array& array() const { return std::get<Array>(v); }
  [[nodiscard]] double number() const { return std::get<double>(v); }
  [[nodiscard]] bool boolean() const { return std::get<bool>(v); }
  [[nodiscard]] std::int64_t integer() const {
    return static_cast<std::int64_t>(std::get<double>(v));
  }
  [[nodiscard]] const std::string& str() const {
    return std::get<std::string>(v);
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return is_object() && object().count(key) > 0;
  }
  /// Member access; throws if this is not an object or the key is absent.
  [[nodiscard]] const Value& at(const std::string& key) const {
    const auto& obj = object();
    const auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
};

namespace detail {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json_lite: " + what + " at offset " +
                             std::to_string(pos_));
  }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < s_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void literal(const char* word) {
    for (const char* p = word; *p; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  Value parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value{parse_string()};
      case 't': literal("true"); return Value{true};
      case 'f': literal("false"); return Value{false};
      case 'n': literal("null"); return Value{nullptr};
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    if (!consume('}')) {
      do {
        if (peek() != '"') fail("expected object key");
        std::string key = parse_string();
        expect(':');
        obj.emplace(std::move(key), parse_value());
      } while (consume(','));
      expect('}');
    }
    return Value{std::move(obj)};
  }

  Value parse_array() {
    expect('[');
    Array arr;
    if (!consume(']')) {
      do {
        arr.push_back(parse_value());
      } while (consume(','));
      expect(']');
    }
    return Value{std::move(arr)};
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("truncated escape");
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                fail("bad \\u digit");
            }
            // The exporters only \u-escape control characters, so a raw
            // byte append is enough for the tests' purposes.
            out += static_cast<char>(code & 0xff);
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  Value parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    try {
      return Value{std::stod(s_.substr(start, pos_ - start))};
    } catch (const std::exception&) {
      fail("bad number");
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parses `text` as a complete JSON document; throws std::runtime_error on
/// any syntax error.
inline Value parse(const std::string& text) {
  return detail::Parser(text).parse();
}

}  // namespace weakkeys::jsonlite

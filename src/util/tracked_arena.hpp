// Explicit byte accounting for long-lived structures (DESIGN.md §5k).
//
// The heap hooks in obs/mem.hpp measure what the allocator hands out —
// including capacity slop and rounding — and attribute frees to whichever
// scope is active when they happen. That is the right truth for "where did
// the process's RSS go", but the wrong one for acceptance math like
// "Σ per-level product-tree bytes == tree peak": those need exact charges
// for exactly the bytes a structure retains. TrackedArena is that second
// truth: owners charge() the payload bytes they retain and release() them
// on teardown, so live/peak/cumulative are exact by construction and the
// per-level census sums to the arena peak with zero slop.
//
// Header-only and allocation-free; safe to update from pool threads.
#pragma once

#include <atomic>
#include <cstdint>

namespace weakkeys::util {

class TrackedArena {
 public:
  void charge(std::uint64_t bytes) {
    const std::int64_t live =
        live_.fetch_add(static_cast<std::int64_t>(bytes),
                        std::memory_order_relaxed) +
        static_cast<std::int64_t>(bytes);
    cumulative_.fetch_add(bytes, std::memory_order_relaxed);
    if (live > 0) {
      const auto value = static_cast<std::uint64_t>(live);
      std::uint64_t seen = peak_.load(std::memory_order_relaxed);
      while (value > seen && !peak_.compare_exchange_weak(
                                 seen, value, std::memory_order_relaxed)) {
      }
    }
  }

  void release(std::uint64_t bytes) {
    live_.fetch_sub(static_cast<std::int64_t>(bytes),
                    std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t live_bytes() const {
    return live_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t cumulative_bytes() const {
    return cumulative_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> live_{0};
  std::atomic<std::uint64_t> peak_{0};
  std::atomic<std::uint64_t> cumulative_{0};
};

}  // namespace weakkeys::util

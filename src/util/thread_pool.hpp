// Fixed-size thread pool used to parallelize the distributed batch-GCD
// computation (the in-process stand-in for the paper's 22-machine cluster).
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "obs/telemetry.hpp"
#include "util/cancellation.hpp"

namespace weakkeys::util {

class ThreadPool {
 public:
  /// Starts `workers` threads (at least 1; 0 means hardware_concurrency).
  /// With a telemetry bundle attached the pool reports `threadpool.*`
  /// instruments: queue depth (gauge), per-task execution latency
  /// (`threadpool.task_us` histogram), and tasks completed (counter). The
  /// telemetry object must outlive the pool.
  explicit ThreadPool(std::size_t workers = 0,
                      obs::Telemetry* telemetry = nullptr);

  /// Drain guarantee: destruction runs every task already submitted to
  /// completion before joining — pending work is never discarded, so a
  /// future obtained from submit() always becomes ready (with a value or
  /// an exception), even when the pool is destroyed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return threads_.size(); }

  /// Schedules `fn` and returns a future for its result. Exceptions thrown
  /// by `fn` propagate through the future (and never touch the worker
  /// thread, so one throwing task cannot wedge the pool).
  ///
  /// Contract: submitting to a pool whose destructor has begun throws
  /// std::runtime_error. Reaching that state requires racing submit()
  /// against destruction, which is a caller lifetime bug; the throw makes
  /// it loud instead of deadlocking on a task that will never run.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("submit on stopped ThreadPool");
      queue_.emplace([task] { (*task)(); });
    }
    if (queue_depth_) queue_depth_->add(1);
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Waits for *all* n tasks even when some throw — `fn` is only borrowed
  /// for the duration of the call — then rethrows the first exception.
  ///
  /// With a cancellation token: submission stops at the first index whose
  /// poll sees the token tripped, every already-submitted task is still
  /// drained (the drain guarantee is unconditional), and the call throws
  /// exactly one util::Cancelled — task-thrown Cancelled exceptions are
  /// collapsed into it rather than racing it. A non-cancellation exception
  /// from a task takes precedence over the cancellation report.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    const CancellationToken* cancel = nullptr);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  // Instruments resolved once at construction (null when no telemetry):
  // immutable afterwards, so workers read them without the queue lock.
  obs::Gauge* queue_depth_ = nullptr;
  obs::Histogram* task_us_ = nullptr;
  obs::Counter* tasks_completed_ = nullptr;
};

}  // namespace weakkeys::util

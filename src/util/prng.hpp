// Deterministic, seedable PRNGs used throughout the simulation.
//
// These are *simulation* random sources (population dynamics, scan jitter,
// synthetic entropy), not cryptographic generators; the simulated device RNG
// built on top of them lives in src/rng. Determinism matters: every
// experiment in EXPERIMENTS.md is reproducible from a single seed.
#pragma once

#include <array>
#include <cstdint>

namespace weakkeys::util {

/// SplitMix64: tiny, full-period seed expander (Steele, Lea, Flood 2014).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman, Vigna): fast, high-quality simulation PRNG.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  constexpr std::uint64_t below(std::uint64_t bound) {
    // Debiased via rejection on the top of the range.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  constexpr bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace weakkeys::util

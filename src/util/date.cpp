#include "util/date.hpp"

#include <charconv>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace weakkeys::util {

namespace {

// Howard Hinnant's days_from_civil / civil_from_days algorithms.
std::int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const auto yoe = static_cast<unsigned>(y - era * 400);            // [0,399]
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;       // [0,146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

struct Civil {
  int year;
  int month;
  int day;
};

Civil civil_from_days(std::int64_t z) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const auto doe = static_cast<unsigned>(z - era * 146097);          // [0,146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);      // [0,365]
  const unsigned mp = (5 * doy + 2) / 153;                           // [0,11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                   // [1,31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                        // [1,12]
  return Civil{static_cast<int>(y + (m <= 2)), static_cast<int>(m),
               static_cast<int>(d)};
}

}  // namespace

bool Date::is_leap_year(int year) {
  return year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
}

int Date::days_in_month(int year, int month) {
  static constexpr int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) throw std::invalid_argument("bad month");
  if (month == 2 && is_leap_year(year)) return 29;
  return kDays[month - 1];
}

Date::Date(int year, int month, int day)
    : year_(static_cast<std::int16_t>(year)),
      month_(static_cast<std::int8_t>(month)),
      day_(static_cast<std::int8_t>(day)) {
  if (year < -9999 || year > 9999) throw std::invalid_argument("year out of range");
  if (month < 1 || month > 12) throw std::invalid_argument("bad month");
  if (day < 1 || day > days_in_month(year, month))
    throw std::invalid_argument("bad day of month");
}

std::int64_t Date::days_since_epoch() const {
  return days_from_civil(year_, month_, day_);
}

Date Date::from_days_since_epoch(std::int64_t days) {
  const Civil c = civil_from_days(days);
  return Date(c.year, c.month, c.day);
}

Date Date::month_start() const { return Date(year_, month_, 1); }

Date Date::add_months(int n) const {
  const int idx = month_index() + n;
  const int y = idx >= 0 ? idx / 12 : (idx - 11) / 12;
  const int m = idx - y * 12 + 1;
  const int d = std::min(static_cast<int>(day_), days_in_month(y, m));
  return Date(y, m, d);
}

Date Date::add_days(std::int64_t n) const {
  return from_days_since_epoch(days_since_epoch() + n);
}

Date Date::parse(const std::string& text) {
  int y = 0, m = 0, d = 0;
  if (text.size() != 10 || text[4] != '-' || text[7] != '-')
    throw std::invalid_argument("expected YYYY-MM-DD: " + text);
  auto parse_int = [&](std::size_t pos, std::size_t len, int& out) {
    auto [p, ec] = std::from_chars(text.data() + pos, text.data() + pos + len, out);
    if (ec != std::errc() || p != text.data() + pos + len)
      throw std::invalid_argument("expected YYYY-MM-DD: " + text);
  };
  parse_int(0, 4, y);
  parse_int(5, 2, m);
  parse_int(8, 2, d);
  return Date(y, m, d);
}

std::string Date::to_string() const {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d", static_cast<int>(year_),
                static_cast<int>(month_), static_cast<int>(day_));
  return buf;
}

std::ostream& operator<<(std::ostream& os, const Date& d) {
  return os << d.to_string();
}

int months_between(const Date& from, const Date& to) {
  return to.month_index() - from.month_index();
}

}  // namespace weakkeys::util

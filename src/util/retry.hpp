// One retry/backoff policy for every layer that re-attempts failed work:
// the in-process coordinator's task retries and the cluster coordinator's
// task reassignment both schedule through a RetryPolicy instead of growing
// their own capped-doubling loops.
//
// The schedule is the classic capped exponential: the delay before retrying
// after failed attempt a (0-based) is min(base * 2^a, cap). Optional
// *deterministic* jitter spreads retries so a burst of simultaneous
// failures (a dead worker dropping ten tasks at once) does not thunder back
// in lockstep: the jittered delay is uniform in [d*(1-j), d*(1+j)], keyed
// on (seed, key, attempt) so every experiment replays identically.
#pragma once

#include <chrono>
#include <cstdint>

namespace weakkeys::util {

struct RetryPolicy {
  /// First retry delay; doubles each failed attempt.
  std::chrono::milliseconds base{1};
  /// Upper bound on any single delay (applied before and after jitter).
  std::chrono::milliseconds cap{64};
  /// Jitter fraction in [0, 1]: 0 = deterministic schedule, 0.5 = each
  /// delay drawn uniformly from [0.5d, 1.5d].
  double jitter = 0.0;
  /// Attempts allowed per task before the caller declares it failed.
  std::size_t max_attempts = 64;
  /// Seed for the jitter stream (ignored while jitter == 0).
  std::uint64_t seed = 0;

  /// True when `next_attempt` (0-based) may not run anymore.
  [[nodiscard]] bool exhausted(std::size_t next_attempt) const {
    return next_attempt >= max_attempts;
  }

  /// The un-jittered delay after failed attempt `failed_attempt` (0-based):
  /// min(base * 2^failed_attempt, cap), overflow-safe.
  [[nodiscard]] std::chrono::milliseconds delay(
      std::size_t failed_attempt) const;

  /// delay() with deterministic jitter applied, keyed on (seed, key,
  /// failed_attempt). `key` identifies the retrying entity (task id,
  /// worker id) so concurrent retries de-synchronize. Clamped to
  /// [0, cap]; identical inputs always yield identical delays.
  [[nodiscard]] std::chrono::milliseconds jittered_delay(
      std::uint64_t key, std::size_t failed_attempt) const;
};

}  // namespace weakkeys::util

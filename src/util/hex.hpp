// Hex encoding/decoding for byte buffers (certificate fingerprints, key dumps).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace weakkeys::util {

/// Lowercase hex encoding of `bytes`.
std::string to_hex(std::span<const std::uint8_t> bytes);

/// Decodes a hex string (case-insensitive, even length). Throws
/// std::invalid_argument on malformed input.
std::vector<std::uint8_t> from_hex(const std::string& hex);

}  // namespace weakkeys::util

#include "util/cancellation.hpp"

namespace weakkeys::util {

void CancellationToken::cancel(const std::string& reason) {
  std::unique_lock lock(mu_);
  if (reason_.empty()) reason_ = reason;
  tripped_.store(true, std::memory_order_release);
  run_callbacks_locked(lock);
}

void CancellationToken::set_deadline(
    std::chrono::steady_clock::time_point deadline, const std::string& label) {
  {
    std::lock_guard lock(mu_);
    deadline_label_ = label;
  }
  deadline_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         deadline.time_since_epoch())
                         .count(),
                     std::memory_order_release);
}

void CancellationToken::clear_deadline() {
  deadline_ns_.store(std::numeric_limits<std::int64_t>::min(),
                     std::memory_order_release);
}

double CancellationToken::deadline_remaining_s() const {
  const std::int64_t armed = deadline_ns_.load(std::memory_order_acquire);
  if (armed == std::numeric_limits<std::int64_t>::min()) return -1.0;
  const std::int64_t now =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  const double remaining = static_cast<double>(armed - now) / 1e9;
  return remaining > 0.0 ? remaining : 0.0;
}

bool CancellationToken::deadline_passed() const {
  const std::int64_t armed = deadline_ns_.load(std::memory_order_acquire);
  if (armed == std::numeric_limits<std::int64_t>::min()) return false;
  return std::chrono::steady_clock::now().time_since_epoch() >=
         std::chrono::nanoseconds(armed);
}

bool CancellationToken::cancelled() const {
  if (tripped_.load(std::memory_order_acquire)) return true;
  if (deadline_passed()) {
    // Latch: a deadline that passed once stays tripped even if the caller
    // later re-arms a longer deadline.
    tripped_.store(true, std::memory_order_release);
    return true;
  }
  return false;
}

std::string CancellationToken::synthesized_reason() const {
  // Caller holds mu_; reason_ is known to be empty.
  const int signum = signal_.load(std::memory_order_relaxed);
  if (signum != 0) return "signal " + std::to_string(signum);
  const std::string scope = deadline_label_.empty() ? "run" : deadline_label_;
  return "deadline exceeded (" + scope + ")";
}

std::string CancellationToken::reason() const {
  if (!cancelled()) return "";
  std::lock_guard lock(mu_);
  return reason_.empty() ? synthesized_reason() : reason_;
}

bool CancellationToken::promote() {
  if (!cancelled()) return false;
  std::unique_lock lock(mu_);
  if (callbacks_run_) return false;
  if (reason_.empty()) reason_ = synthesized_reason();
  run_callbacks_locked(lock);
  return true;
}

std::uint64_t CancellationToken::add_callback(std::function<void()> fn) {
  std::unique_lock lock(mu_);
  if (callbacks_run_) {
    // Already tripped and drained: honor the "runs once" contract now.
    lock.unlock();
    fn();
    return 0;
  }
  const std::uint64_t token = next_callback_token_++;
  callbacks_.emplace_back(token, std::move(fn));
  return token;
}

void CancellationToken::remove_callback(std::uint64_t token) {
  if (token == 0) return;
  std::lock_guard lock(mu_);
  std::erase_if(callbacks_,
                [token](const auto& entry) { return entry.first == token; });
}

void CancellationToken::run_callbacks_locked(
    std::unique_lock<std::mutex>& lock) {
  if (callbacks_run_) return;
  callbacks_run_ = true;
  // Run outside the lock so callbacks may (indirectly) query the token.
  auto callbacks = std::move(callbacks_);
  callbacks_.clear();
  lock.unlock();
  for (auto& [token, fn] : callbacks) {
    if (fn) fn();
  }
  lock.lock();
}

}  // namespace weakkeys::util

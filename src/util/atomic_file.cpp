#include "util/atomic_file.hpp"

#include <cstdio>
#include <stdexcept>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#define WEAKKEYS_HAVE_FSYNC 1
#endif

namespace weakkeys::util {

namespace {

/// fsync by descriptor; no-op (true) on platforms without it. Data-only
/// durability is all the crash model needs — the caller's rename supplies
/// the atomicity.
bool fsync_fd([[maybe_unused]] int fd) {
#if defined(WEAKKEYS_HAVE_FSYNC)
  return ::fsync(fd) == 0;
#else
  return true;
#endif
}

}  // namespace

std::string atomic_tmp_path(const std::string& path) { return path + ".tmp"; }

bool fsync_parent_dir(const std::string& path) {
#if defined(WEAKKEYS_HAVE_FSYNC)
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : (slash == 0 ? "/" : path.substr(0, slash));
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = fsync_fd(fd);
  ::close(fd);
  return ok;
#else
  (void)path;
  return true;
#endif
}

bool fsync_path(const std::string& path) {
#if defined(WEAKKEYS_HAVE_FSYNC)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = fsync_fd(fd);
  ::close(fd);
  return ok;
#else
  (void)path;
  return true;
#endif
}

void atomic_write_file(const std::string& path, const void* data,
                       std::size_t size) {
  const std::string tmp = atomic_tmp_path(path);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) throw std::runtime_error("cannot open for write: " + tmp);
  const bool wrote = size == 0 || std::fwrite(data, 1, size, f) == size;
  bool synced = wrote && std::fflush(f) == 0;
#if defined(WEAKKEYS_HAVE_FSYNC)
  synced = synced && fsync_fd(::fileno(f));
#endif
  std::fclose(f);
  if (!wrote || !synced) {
    std::remove(tmp.c_str());
    throw std::runtime_error("short write: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot publish " + tmp + " -> " + path);
  }
  fsync_parent_dir(path);
}

void atomic_write_file(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  atomic_write_file(path, bytes.data(), bytes.size());
}

void atomic_write_file(const std::string& path, const std::string& text) {
  atomic_write_file(path, text.data(), text.size());
}

void atomic_publish_file(const std::string& tmp_path,
                         const std::string& path) {
  if (!fsync_path(tmp_path)) {
    std::remove(tmp_path.c_str());
    throw std::runtime_error("cannot sync " + tmp_path);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    throw std::runtime_error("cannot publish " + tmp_path + " -> " + path);
  }
  fsync_parent_dir(path);
}

}  // namespace weakkeys::util

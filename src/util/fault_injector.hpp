// Deterministic fault injection for the distributed batch-GCD coordinator.
//
// The paper's 86-minute, 22-machine cluster run (Section 3.2) lives in a
// world where workers crash, straggle, and return garbage. The injector
// models those failure modes as a pure function of (seed, task, attempt):
// the schedule of injected faults does not depend on thread timing, worker
// count, or execution order, so every experiment — including the recovery
// benchmarks — is reproducible from a single seed.
#pragma once

#include <cstdint>

namespace weakkeys::util {

struct FaultConfig {
  std::uint64_t seed = 0;
  /// Per-attempt probability that the worker crashes mid-task (no result).
  double crash_probability = 0.0;
  /// Per-attempt probability that the worker straggles past the
  /// coordinator's deadline and is killed (its late result is discarded).
  double straggle_probability = 0.0;
  /// Per-attempt probability that the worker returns a corrupted divisor
  /// (one that does not divide its modulus — result verification must
  /// catch it).
  double corrupt_probability = 0.0;
  /// Per-attempt probability that the subset's cached product tree is lost
  /// before the task runs; the coordinator must rebuild it rather than
  /// abort. Orthogonal to the three failure outcomes above.
  double tree_loss_probability = 0.0;

  [[nodiscard]] bool any_faults() const {
    return crash_probability > 0 || straggle_probability > 0 ||
           corrupt_probability > 0 || tree_loss_probability > 0;
  }
};

enum class FaultKind : std::uint8_t {
  kNone = 0,      ///< attempt runs to completion with a correct result
  kCrash,         ///< worker dies mid-task; nothing is returned
  kStraggle,      ///< worker misses the deadline; coordinator kills it
  kCorruptResult  ///< worker returns a divisor that fails verification
};

struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  /// Evict the subset's product tree at task start (graceful-degradation
  /// path); independent of `kind`.
  bool lose_tree = false;
  /// Which result slot to corrupt when kind == kCorruptResult (taken
  /// modulo the subset size by the worker).
  std::uint64_t corrupt_slot = 0;
};

/// Seeded source of per-(task, attempt) fault decisions. Stateless after
/// construction; safe to share across worker threads.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config) : config_(config) {}

  /// The fault outcome for attempt number `attempt` (0-based) of `task`.
  /// Pure: the same (seed, task, attempt) always yields the same decision.
  [[nodiscard]] FaultDecision decide(std::uint64_t task,
                                     std::uint64_t attempt) const;

  [[nodiscard]] const FaultConfig& config() const { return config_; }

 private:
  FaultConfig config_;
};

}  // namespace weakkeys::util

// Deterministic fault injection for the distributed batch-GCD coordinator.
//
// The paper's 86-minute, 22-machine cluster run (Section 3.2) lives in a
// world where workers crash, straggle, and return garbage. The injector
// models those failure modes as a pure function of (seed, task, attempt):
// the schedule of injected faults does not depend on thread timing, worker
// count, or execution order, so every experiment — including the recovery
// benchmarks — is reproducible from a single seed.
#pragma once

#include <cstdint>

namespace weakkeys::util {

struct FaultConfig {
  std::uint64_t seed = 0;
  /// Per-attempt probability that the worker crashes mid-task (no result).
  double crash_probability = 0.0;
  /// Per-attempt probability that the worker straggles past the
  /// coordinator's deadline and is killed (its late result is discarded).
  double straggle_probability = 0.0;
  /// Per-attempt probability that the worker returns a corrupted divisor
  /// (one that does not divide its modulus — result verification must
  /// catch it).
  double corrupt_probability = 0.0;
  /// Per-attempt probability that the subset's cached product tree is lost
  /// before the task runs; the coordinator must rebuild it rather than
  /// abort. Orthogonal to the three failure outcomes above.
  double tree_loss_probability = 0.0;

  // -- Process tier (multi-process cluster only) --------------------------
  // Where the thread coordinator *simulates* crashes and stragglers, the
  // cluster coordinator makes them real: a kSigkill decision SIGKILLs the
  // assigned worker process mid-task, a kSigstop SIGSTOPs it so its socket
  // stalls and heartbeats stop (the liveness detector must notice, not a
  // flag). Decided per task assignment, like the thread-tier faults.

  /// Per-assignment probability the assigned worker process is SIGKILLed.
  double sigkill_probability = 0.0;
  /// Per-assignment probability the assigned worker process is SIGSTOPped
  /// (a real stalled socket; recovery requires heartbeat-based detection).
  double sigstop_probability = 0.0;

  // -- Socket frame tier (cluster transport) ------------------------------
  // Applied per frame at the sending side of a cluster connection.

  /// Probability a frame is silently dropped (never written to the socket).
  double frame_drop_probability = 0.0;
  /// Probability a frame's payload is garbled after the CRC is computed —
  /// the receiver's CRC check must reject it.
  double frame_garble_probability = 0.0;
  /// Probability a frame is delayed by `frame_delay_ms` before sending.
  double frame_delay_probability = 0.0;
  /// How long a delayed frame waits, in milliseconds.
  std::uint32_t frame_delay_ms = 5;

  // -- Connection tier (cluster transport links) --------------------------
  // Where the frame tier perturbs individual frames, this tier perturbs the
  // *link*: a decision changes the connection's state for a window of time
  // (or severs it outright), affecting every frame — control frames
  // included — until the window closes. Decided per data frame at the
  // sending endpoint, from a stream disjoint from the frame tier's.

  /// Probability the link is abruptly severed (both directions; each end
  /// sees EOF). Recovery is the session layer's reconnect handshake.
  double conn_disconnect_probability = 0.0;
  /// Probability of a timed bidirectional partition: this endpoint stops
  /// transmitting *and* discards everything it receives for
  /// `conn_partition_ms`. The peer experiences total silence.
  double conn_partition_probability = 0.0;
  /// Probability of a timed half-open window: this endpoint keeps
  /// receiving but its own transmissions vanish for `conn_partition_ms` —
  /// the classic "peer thinks we're alive, we think they're dead" split.
  double conn_half_open_probability = 0.0;
  /// Probability of a slow-drip window: every frame sent during the next
  /// `conn_partition_ms` is throttled by `conn_drip_delay_ms`.
  double conn_slow_drip_probability = 0.0;
  /// Duration of partition / half-open / slow-drip windows, milliseconds.
  std::uint32_t conn_partition_ms = 50;
  /// Per-frame throttle during a slow-drip window, milliseconds.
  std::uint32_t conn_drip_delay_ms = 2;

  // -- Storage tier (spill store / disk I/O) ------------------------------
  // Applied per spill-file operation (one write-and-publish or one read).
  // Where the frame tier garbles what the network carries, this tier
  // perturbs what the disk keeps: a short write or failed fsync surfaces as
  // a StorageError the spill store must retry or degrade around; a
  // post-publish bit flip silently corrupts the *published* file so the
  // next read's CRC verification (and the heal path behind it) is what
  // gets exercised; ENOSPC drives the degradation ladder; slow I/O models
  // a saturated disk.

  /// Probability a spill write tears mid-payload (detected: StorageError).
  double storage_short_write_probability = 0.0;
  /// Probability the pre-publish fsync fails (detected: StorageError).
  double storage_fsync_fail_probability = 0.0;
  /// Probability one bit of the *published* file is flipped after a
  /// successful publish (silent: only CRC verification on load catches it).
  double storage_bit_flip_probability = 0.0;
  /// Probability a spill write fails with ENOSPC semantics.
  double storage_enospc_probability = 0.0;
  /// Probability an operation is delayed by `storage_slow_ms`.
  double storage_slow_probability = 0.0;
  /// How long a slow storage operation stalls, in milliseconds.
  std::uint32_t storage_slow_ms = 2;

  [[nodiscard]] bool any_faults() const {
    return crash_probability > 0 || straggle_probability > 0 ||
           corrupt_probability > 0 || tree_loss_probability > 0 ||
           any_process_faults() || any_frame_faults() || any_conn_faults() ||
           any_storage_faults();
  }
  [[nodiscard]] bool any_process_faults() const {
    return sigkill_probability > 0 || sigstop_probability > 0;
  }
  [[nodiscard]] bool any_frame_faults() const {
    return frame_drop_probability > 0 || frame_garble_probability > 0 ||
           frame_delay_probability > 0;
  }
  [[nodiscard]] bool any_conn_faults() const {
    return conn_disconnect_probability > 0 || conn_partition_probability > 0 ||
           conn_half_open_probability > 0 || conn_slow_drip_probability > 0;
  }
  [[nodiscard]] bool any_storage_faults() const {
    return storage_short_write_probability > 0 ||
           storage_fsync_fail_probability > 0 ||
           storage_bit_flip_probability > 0 ||
           storage_enospc_probability > 0 || storage_slow_probability > 0;
  }
};

enum class FaultKind : std::uint8_t {
  kNone = 0,      ///< attempt runs to completion with a correct result
  kCrash,         ///< worker dies mid-task; nothing is returned
  kStraggle,      ///< worker misses the deadline; coordinator kills it
  kCorruptResult  ///< worker returns a divisor that fails verification
};

struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  /// Evict the subset's product tree at task start (graceful-degradation
  /// path); independent of `kind`.
  bool lose_tree = false;
  /// Which result slot to corrupt when kind == kCorruptResult (taken
  /// modulo the subset size by the worker).
  std::uint64_t corrupt_slot = 0;
};

/// A process-tier fault decision: what (if anything) to do to the worker
/// process a task was just assigned to.
enum class ProcessFaultKind : std::uint8_t {
  kNone = 0,
  kSigkill,  ///< SIGKILL the worker: instant death, socket EOF
  kSigstop   ///< SIGSTOP the worker: frozen process, stalled socket
};

/// A frame-tier fault decision for one outbound protocol frame.
struct FrameFault {
  bool drop = false;           ///< never write the frame
  bool garble = false;         ///< flip payload bits after the CRC
  std::uint32_t delay_ms = 0;  ///< sleep before writing (0 = no delay)

  [[nodiscard]] bool any() const { return drop || garble || delay_ms > 0; }
};

/// A connection-tier fault decision: what (if anything) happens to the
/// link itself at this point in the send stream.
enum class ConnFaultKind : std::uint8_t {
  kNone = 0,
  kDisconnect,  ///< sever the link; both ends see EOF
  kPartition,   ///< timed bidirectional silence (TX muted, RX discarded)
  kHalfOpen,    ///< timed one-directional silence (TX muted, RX intact)
  kSlowDrip     ///< timed per-frame throttle
};

struct ConnFault {
  ConnFaultKind kind = ConnFaultKind::kNone;
  std::uint32_t duration_ms = 0;    ///< window length for timed kinds
  std::uint32_t drip_delay_ms = 0;  ///< per-frame sleep for kSlowDrip

  [[nodiscard]] bool any() const { return kind != ConnFaultKind::kNone; }
};

/// A storage-tier fault decision: what (if anything) happens to the `seq`-th
/// spill-file operation on a store's stream.
enum class StorageFaultKind : std::uint8_t {
  kNone = 0,
  kShortWrite,  ///< tear the write mid-payload; writer reports StorageError
  kFsyncFail,   ///< the pre-publish fsync fails; writer reports StorageError
  kBitFlip,     ///< flip one bit of the published file (silent until read)
  kEnospc,      ///< the write fails with ENOSPC semantics
  kSlowIo       ///< stall the operation by `delay_ms`
};

struct StorageFault {
  StorageFaultKind kind = StorageFaultKind::kNone;
  std::uint32_t delay_ms = 0;  ///< stall length for kSlowIo
  /// Seed for picking the flipped bit's offset when kind == kBitFlip (taken
  /// modulo the file size by the writer).
  std::uint64_t flip_seed = 0;

  [[nodiscard]] bool any() const { return kind != StorageFaultKind::kNone; }
};

/// Seeded source of per-(task, attempt) fault decisions. Stateless after
/// construction; safe to share across worker threads.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config) : config_(config) {}

  /// The fault outcome for attempt number `attempt` (0-based) of `task`.
  /// Pure: the same (seed, task, attempt) always yields the same decision.
  [[nodiscard]] FaultDecision decide(std::uint64_t task,
                                     std::uint64_t attempt) const;

  /// The process-tier outcome for assignment `attempt` of `task` (keyed on
  /// the task, not the worker, so the schedule is independent of worker
  /// count — same property as decide()). Drawn from a stream disjoint from
  /// decide()'s, so enabling one tier never reshuffles the other.
  [[nodiscard]] ProcessFaultKind decide_process(std::uint64_t task,
                                                std::uint64_t attempt) const;

  /// The frame-tier outcome for the `seq`-th frame on stream `stream`
  /// (streams are per connection-direction). Pure in (seed, stream, seq).
  [[nodiscard]] FrameFault decide_frame(std::uint64_t stream,
                                        std::uint64_t seq) const;

  /// The connection-tier outcome for the `seq`-th data frame on `stream`.
  /// Pure in (seed, stream, seq) and drawn from a stream disjoint from
  /// decide_frame()'s; callers carry `seq` across reconnects so a healed
  /// link never replays the fault that severed it.
  [[nodiscard]] ConnFault decide_conn(std::uint64_t stream,
                                      std::uint64_t seq) const;

  /// The storage-tier outcome for the `seq`-th spill-file operation on
  /// `stream` (streams are per spill store). Pure in (seed, stream, seq)
  /// and drawn from a stream disjoint from every other tier's, so a storage
  /// schedule replays identically whatever else is enabled.
  [[nodiscard]] StorageFault decide_storage(std::uint64_t stream,
                                            std::uint64_t seq) const;

  [[nodiscard]] const FaultConfig& config() const { return config_; }

 private:
  FaultConfig config_;
};

}  // namespace weakkeys::util

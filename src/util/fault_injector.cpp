#include "util/fault_injector.hpp"

#include "util/prng.hpp"

namespace weakkeys::util {

namespace {

/// SplitMix64 finalizer — mixes one word into an avalanche-quality hash.
constexpr std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

FaultDecision FaultInjector::decide(std::uint64_t task,
                                    std::uint64_t attempt) const {
  // Key the stream on (seed, task, attempt) only — never on wall-clock or
  // scheduling state — so schedules replay identically across worker counts.
  const std::uint64_t key =
      mix(mix(config_.seed + 0x9e3779b97f4a7c15ULL * (task + 1)) +
          0xd1b54a32d192ed03ULL * (attempt + 1));
  Xoshiro256 rng(key);

  FaultDecision decision;
  decision.lose_tree = rng.chance(config_.tree_loss_probability);
  const double roll = rng.uniform();
  if (roll < config_.crash_probability) {
    decision.kind = FaultKind::kCrash;
  } else if (roll < config_.crash_probability + config_.straggle_probability) {
    decision.kind = FaultKind::kStraggle;
  } else if (roll < config_.crash_probability + config_.straggle_probability +
                        config_.corrupt_probability) {
    decision.kind = FaultKind::kCorruptResult;
    decision.corrupt_slot = rng();
  }
  return decision;
}

}  // namespace weakkeys::util

#include "util/fault_injector.hpp"

#include "util/prng.hpp"

namespace weakkeys::util {

namespace {

/// SplitMix64 finalizer — mixes one word into an avalanche-quality hash.
constexpr std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

FaultDecision FaultInjector::decide(std::uint64_t task,
                                    std::uint64_t attempt) const {
  // Key the stream on (seed, task, attempt) only — never on wall-clock or
  // scheduling state — so schedules replay identically across worker counts.
  const std::uint64_t key =
      mix(mix(config_.seed + 0x9e3779b97f4a7c15ULL * (task + 1)) +
          0xd1b54a32d192ed03ULL * (attempt + 1));
  Xoshiro256 rng(key);

  FaultDecision decision;
  decision.lose_tree = rng.chance(config_.tree_loss_probability);
  const double roll = rng.uniform();
  if (roll < config_.crash_probability) {
    decision.kind = FaultKind::kCrash;
  } else if (roll < config_.crash_probability + config_.straggle_probability) {
    decision.kind = FaultKind::kStraggle;
  } else if (roll < config_.crash_probability + config_.straggle_probability +
                        config_.corrupt_probability) {
    decision.kind = FaultKind::kCorruptResult;
    decision.corrupt_slot = rng();
  }
  return decision;
}

ProcessFaultKind FaultInjector::decide_process(std::uint64_t task,
                                               std::uint64_t attempt) const {
  if (!config_.any_process_faults()) return ProcessFaultKind::kNone;
  // A distinct stream constant keeps this tier's rolls independent of
  // decide()'s for the same (task, attempt).
  const std::uint64_t key =
      mix(mix(config_.seed + 0xa0761d6478bd642fULL * (task + 1)) +
          0xe7037ed1a0b428dbULL * (attempt + 1));
  Xoshiro256 rng(key);
  const double roll = rng.uniform();
  if (roll < config_.sigkill_probability) return ProcessFaultKind::kSigkill;
  if (roll < config_.sigkill_probability + config_.sigstop_probability) {
    return ProcessFaultKind::kSigstop;
  }
  return ProcessFaultKind::kNone;
}

FrameFault FaultInjector::decide_frame(std::uint64_t stream,
                                       std::uint64_t seq) const {
  FrameFault fault;
  if (!config_.any_frame_faults()) return fault;
  const std::uint64_t key =
      mix(mix(config_.seed + 0x8ebc6af09c88c6e3ULL * (stream + 1)) +
          0x589965cc75374cc3ULL * (seq + 1));
  Xoshiro256 rng(key);
  // drop > garble > delay: at most one fault per frame, like decide().
  const double roll = rng.uniform();
  if (roll < config_.frame_drop_probability) {
    fault.drop = true;
  } else if (roll <
             config_.frame_drop_probability + config_.frame_garble_probability) {
    fault.garble = true;
  } else if (roll < config_.frame_drop_probability +
                        config_.frame_garble_probability +
                        config_.frame_delay_probability) {
    fault.delay_ms = config_.frame_delay_ms;
  }
  return fault;
}

ConnFault FaultInjector::decide_conn(std::uint64_t stream,
                                     std::uint64_t seq) const {
  ConnFault fault;
  if (!config_.any_conn_faults()) return fault;
  const std::uint64_t key =
      mix(mix(config_.seed + 0x2545f4914f6cdd1dULL * (stream + 1)) +
          0x9fb21c651e98df25ULL * (seq + 1));
  Xoshiro256 rng(key);
  // disconnect > partition > half-open > slow-drip: at most one event per
  // draw, mirroring the other tiers' priority encoding.
  const double roll = rng.uniform();
  const double p_disc = config_.conn_disconnect_probability;
  const double p_part = p_disc + config_.conn_partition_probability;
  const double p_half = p_part + config_.conn_half_open_probability;
  const double p_drip = p_half + config_.conn_slow_drip_probability;
  if (roll < p_disc) {
    fault.kind = ConnFaultKind::kDisconnect;
  } else if (roll < p_part) {
    fault.kind = ConnFaultKind::kPartition;
    fault.duration_ms = config_.conn_partition_ms;
  } else if (roll < p_half) {
    fault.kind = ConnFaultKind::kHalfOpen;
    fault.duration_ms = config_.conn_partition_ms;
  } else if (roll < p_drip) {
    fault.kind = ConnFaultKind::kSlowDrip;
    fault.duration_ms = config_.conn_partition_ms;
    fault.drip_delay_ms = config_.conn_drip_delay_ms;
  }
  return fault;
}

StorageFault FaultInjector::decide_storage(std::uint64_t stream,
                                           std::uint64_t seq) const {
  StorageFault fault;
  if (!config_.any_storage_faults()) return fault;
  const std::uint64_t key =
      mix(mix(config_.seed + 0x6a09e667f3bcc909ULL * (stream + 1)) +
          0xbb67ae8584caa73bULL * (seq + 1));
  Xoshiro256 rng(key);
  // short write > fsync > bit flip > enospc > slow: at most one fault per
  // operation, mirroring the other tiers' priority encoding.
  const double roll = rng.uniform();
  const double p_short = config_.storage_short_write_probability;
  const double p_fsync = p_short + config_.storage_fsync_fail_probability;
  const double p_flip = p_fsync + config_.storage_bit_flip_probability;
  const double p_nospc = p_flip + config_.storage_enospc_probability;
  const double p_slow = p_nospc + config_.storage_slow_probability;
  if (roll < p_short) {
    fault.kind = StorageFaultKind::kShortWrite;
  } else if (roll < p_fsync) {
    fault.kind = StorageFaultKind::kFsyncFail;
  } else if (roll < p_flip) {
    fault.kind = StorageFaultKind::kBitFlip;
    fault.flip_seed = rng();
  } else if (roll < p_nospc) {
    fault.kind = StorageFaultKind::kEnospc;
  } else if (roll < p_slow) {
    fault.kind = StorageFaultKind::kSlowIo;
    fault.delay_ms = config_.storage_slow_ms;
  }
  return fault;
}

}  // namespace weakkeys::util

// Crash-safe file publication: tmp + fsync + rename + parent fsync.
//
// A process killed mid-write must never leave a half-written cache,
// checkpoint, or report where a complete one is expected. Writers either
// build the bytes in memory and call atomic_write_file(), or stream into
// "<path>.tmp" themselves and call atomic_publish_file() — both fsync the
// temporary and rename() it over the destination, so the final path only
// ever holds a complete file (rename within a filesystem is atomic on
// POSIX). After the rename both publishers fsync the destination's parent
// directory: rename() alone only updates the directory in memory, so a
// power loss immediately after publication could lose the *entry* while
// keeping the (synced) data — the classic rename-durability gap. The CRC
// footers on the cache formats remain the second line of defense against
// torn writes on filesystems without those guarantees.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace weakkeys::util {

/// The temporary sibling a path is staged through ("<path>.tmp"). The
/// kill/resume tests assert no orphans with this suffix survive a resumed
/// run, so every atomic writer must stage through exactly this name.
std::string atomic_tmp_path(const std::string& path);

/// Writes `size` bytes to `path` atomically (tmp + fsync + rename).
/// Throws std::runtime_error on I/O failure; the temporary is removed on
/// any failure path.
void atomic_write_file(const std::string& path, const void* data,
                       std::size_t size);
void atomic_write_file(const std::string& path,
                       const std::vector<std::uint8_t>& bytes);
void atomic_write_file(const std::string& path, const std::string& text);

/// Publishes an already-written temporary over its destination: fsyncs
/// `tmp_path`, rename()s it to `path`, then fsyncs the parent directory so
/// the new entry itself is durable. For writers that stream large payloads
/// straight to disk (the corpus cache) instead of buffering.
void atomic_publish_file(const std::string& tmp_path, const std::string& path);

/// Flushes a file's data to stable storage by path (open + fsync + close).
/// Returns false when the file cannot be opened or synced; best-effort
/// durability points (the monitor's final JSONL line) tolerate that.
bool fsync_path(const std::string& path);

/// Fsyncs the directory containing `path` (open(O_RDONLY) on the parent +
/// fsync + close), making a just-renamed entry durable. Returns false when
/// the parent cannot be opened or synced; publishers treat that as
/// best-effort (the rename already happened — atomicity is intact, only
/// the durability of the entry is weakened) because some filesystems
/// refuse fsync on directories.
bool fsync_parent_dir(const std::string& path);

}  // namespace weakkeys::util

// Civil-calendar date type used to timestamp scan records and series.
//
// The study spans July 2010 - May 2016 with monthly resolution, so the type
// offers both day-level arithmetic (days_from_civil, the proleptic Gregorian
// algorithm) and month-index arithmetic for building time series.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace weakkeys::util {

/// A calendar date (proleptic Gregorian). Regular value type.
class Date {
 public:
  /// Constructs 1970-01-01.
  constexpr Date() = default;

  /// Constructs the given civil date. Throws std::invalid_argument if the
  /// combination is not a real calendar date (e.g. 2015-02-30).
  Date(int year, int month, int day);

  [[nodiscard]] constexpr int year() const { return year_; }
  [[nodiscard]] constexpr int month() const { return month_; }
  [[nodiscard]] constexpr int day() const { return day_; }

  /// Days since the civil epoch 1970-01-01 (negative before it).
  [[nodiscard]] std::int64_t days_since_epoch() const;

  /// Months since January of year 0; useful as a dense series index.
  [[nodiscard]] constexpr int month_index() const {
    return year_ * 12 + (month_ - 1);
  }

  /// First day of this date's month.
  [[nodiscard]] Date month_start() const;

  /// This date shifted by n months (day clamped to the target month length).
  [[nodiscard]] Date add_months(int n) const;

  /// This date shifted by n days.
  [[nodiscard]] Date add_days(std::int64_t n) const;

  /// Parses "YYYY-MM-DD". Throws std::invalid_argument on malformed input.
  static Date parse(const std::string& text);

  /// Builds a date from a days_since_epoch() value.
  static Date from_days_since_epoch(std::int64_t days);

  /// Number of days in the given month of the given year.
  static int days_in_month(int year, int month);

  static bool is_leap_year(int year);

  /// "YYYY-MM-DD".
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Date&, const Date&) = default;

 private:
  std::int16_t year_ = 1970;
  std::int8_t month_ = 1;
  std::int8_t day_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Date& d);

/// Whole months from `from` to `to` by calendar month (ignores day-of-month).
int months_between(const Date& from, const Date& to);

}  // namespace weakkeys::util

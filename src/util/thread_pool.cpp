#include "util/thread_pool.hpp"

namespace weakkeys::util {

ThreadPool::ThreadPool(std::size_t workers, obs::Telemetry* telemetry) {
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  if (telemetry) {
    queue_depth_ = &telemetry->metrics().gauge("threadpool.queue_depth");
    task_us_ = &telemetry->metrics().histogram("threadpool.task_us");
    tasks_completed_ = &telemetry->metrics().counter("threadpool.tasks_completed");
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop();
    }
    if (queue_depth_) queue_depth_->add(-1);
    if (task_us_) {
      const auto t0 = std::chrono::steady_clock::now();
      job();
      task_us_->record(
          obs::elapsed_us(t0, std::chrono::steady_clock::now()));
      tasks_completed_->inc();
    } else {
      job();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              const CancellationToken* cancel) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  bool stopped_enqueuing = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (cancel && cancel->cancelled()) {
      stopped_enqueuing = true;
      break;
    }
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  // Drain every future before rethrowing: queued tasks reference `fn`, so
  // returning (or throwing) while any are outstanding would dangle.
  std::exception_ptr first;
  bool task_cancelled = false;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (const Cancelled&) {
      // Collapse per-task cancellations into the single report below.
      task_cancelled = true;
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
  if (stopped_enqueuing || task_cancelled) {
    throw Cancelled(cancel && cancel->cancelled() ? cancel->reason()
                                                  : "parallel_for task");
  }
}

}  // namespace weakkeys::util

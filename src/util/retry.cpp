#include "util/retry.hpp"

#include <algorithm>

#include "util/prng.hpp"

namespace weakkeys::util {

std::chrono::milliseconds RetryPolicy::delay(std::size_t failed_attempt) const {
  if (base.count() <= 0) return std::min(std::chrono::milliseconds(0), cap);
  auto d = base;
  // Stop doubling at the cap: for large attempt counts this also avoids
  // shifting past 64 bits.
  for (std::size_t i = 0; i < failed_attempt && d < cap; ++i) d *= 2;
  return std::min(d, cap);
}

std::chrono::milliseconds RetryPolicy::jittered_delay(
    std::uint64_t key, std::size_t failed_attempt) const {
  const auto d = delay(failed_attempt);
  if (jitter <= 0.0 || d.count() <= 0) return d;
  const double j = std::min(jitter, 1.0);
  // Keyed, not stateful: the same (seed, key, attempt) triple replays the
  // same delay regardless of scheduling order or worker count.
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (key + 1)) ^
                (0xd1b54a32d192ed03ULL * (failed_attempt + 1)));
  const double unit =
      static_cast<double>(sm.next() >> 11) * 0x1.0p-53;  // [0, 1)
  const double scale = 1.0 - j + 2.0 * j * unit;         // [1-j, 1+j)
  const auto scaled = std::chrono::milliseconds(static_cast<std::int64_t>(
      static_cast<double>(d.count()) * scale));
  return std::clamp(scaled, std::chrono::milliseconds(0), cap);
}

}  // namespace weakkeys::util

// CSV export for series and tables, so results can be plotted externally
// (gnuplot/matplotlib) instead of read off the ASCII renderings.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/timeseries.hpp"

namespace weakkeys::analysis {

/// RFC-4180-style escaping: quotes a field when it contains a comma, quote,
/// or newline; embedded quotes are doubled.
std::string csv_escape(const std::string& field);

/// One row per point: date,source,total_hosts,vulnerable_hosts.
void write_series_csv(std::ostream& os, const VendorSeries& series);

/// Several series joined on (date, source):
/// date,source,<vendor1>_total,<vendor1>_vuln,<vendor2>_total,...
/// Missing points are left empty.
void write_multi_series_csv(std::ostream& os,
                            const std::vector<VendorSeries>& series);

}  // namespace weakkeys::analysis

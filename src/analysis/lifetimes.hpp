// Certificate lifetime and replacement analysis (paper Section 4.1).
//
// The paper distinguished "patched" from "offlined" by looking at how long
// certificates lived on each host and what replaced them: a patched device
// renews its certificate in place (same IP, new key, similar subject); a
// recycled IP serves an unrelated certificate. These helpers compute both
// views from a scan dataset.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "netsim/dataset.hpp"
#include "util/date.hpp"

namespace weakkeys::analysis {

struct CertificateLifetime {
  std::string fingerprint_hex;
  util::Date first_seen;
  util::Date last_seen;
  std::size_t distinct_ips = 0;
  std::size_t sightings = 0;

  [[nodiscard]] int observed_months() const {
    return util::months_between(first_seen, last_seen);
  }
};

/// Lifetime record per distinct certificate across HTTPS snapshots.
std::vector<CertificateLifetime> certificate_lifetimes(
    const netsim::ScanDataset& dataset);

enum class ReplacementKind {
  kRenewal,    ///< same subject, different key: certificate regenerated
  kTakeover,   ///< different subject: another device behind the address
};

struct Replacement {
  std::uint32_t ip = 0;
  util::Date when;
  ReplacementKind kind = ReplacementKind::kTakeover;
  std::string old_subject;
  std::string new_subject;
};

/// Certificate changes observed at a stable IP across consecutive HTTPS
/// sightings. Renewals (same subject, new key) indicate in-place key
/// regeneration; takeovers indicate IP churn.
std::vector<Replacement> certificate_replacements(
    const netsim::ScanDataset& dataset);

struct ReplacementSummary {
  std::size_t renewals = 0;
  std::size_t takeovers = 0;
};

ReplacementSummary summarize_replacements(
    const std::vector<Replacement>& replacements);

}  // namespace weakkeys::analysis

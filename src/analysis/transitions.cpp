#include "analysis/transitions.hpp"

#include <map>
#include <vector>

namespace weakkeys::analysis {

TransitionCounts count_transitions(const netsim::ScanDataset& dataset,
                                   const std::string& vendor,
                                   const VulnerableSet& vulnerable,
                                   const RecordLabeler& labeler) {
  // Status history per IP, in snapshot order (snapshots are date-sorted).
  std::map<std::uint32_t, std::vector<bool>> history;
  for (const auto& snap : dataset.snapshots) {
    if (snap.protocol != netsim::Protocol::kHttps) continue;
    for (const auto& rec : snap.records) {
      const auto label = labeler(rec);
      if (!label || label->vendor != vendor) continue;
      history[rec.ip.value()].push_back(vulnerable.contains(rec.cert().key.n));
    }
  }

  TransitionCounts counts;
  counts.ips_ever = history.size();
  for (const auto& [ip, states] : history) {
    bool ever_vulnerable = false;
    std::size_t switches = 0;
    bool first_direction_v_to_c = false;
    for (std::size_t i = 0; i < states.size(); ++i) {
      ever_vulnerable |= states[i];
      if (i > 0 && states[i] != states[i - 1]) {
        if (switches == 0) first_direction_v_to_c = states[i - 1];
        ++switches;
      }
    }
    if (ever_vulnerable) ++counts.ips_ever_vulnerable;
    if (switches == 1) {
      if (first_direction_v_to_c) {
        ++counts.vulnerable_to_clean;
      } else {
        ++counts.clean_to_vulnerable;
      }
    } else if (switches > 1) {
      ++counts.multiple_switches;
    }
  }
  return counts;
}

}  // namespace weakkeys::analysis

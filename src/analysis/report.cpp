#include "analysis/report.hpp"

#include <algorithm>
#include <sstream>

namespace weakkeys::analysis {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TextTable::add_rule() { rows_.emplace_back(); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      os << "| " << cell << std::string(widths[c] - cell.size() + 1, ' ');
    }
    os << "|\n";
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule();
    } else {
      emit_row(row);
    }
  }
  emit_rule();
  return os.str();
}

std::string with_commas(std::size_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i > 0 && (digits.size() - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string render_series(const VendorSeries& series, int width) {
  std::size_t max_total = 1, max_vulnerable = 1;
  for (const auto& p : series.points) {
    max_total = std::max(max_total, p.total_hosts);
    max_vulnerable = std::max(max_vulnerable, p.vulnerable_hosts);
  }

  std::ostringstream os;
  os << "# " << series.vendor;
  if (!series.model.empty()) os << " " << series.model;
  os << "  (max total " << with_commas(max_total) << ", max vulnerable "
     << with_commas(max_vulnerable) << ")\n";
  os << "#  date       source      total      vuln   total-bar / vuln-bar\n";
  for (const auto& p : series.points) {
    const int tb = static_cast<int>(
        static_cast<double>(p.total_hosts) / static_cast<double>(max_total) * width);
    const int vb = static_cast<int>(static_cast<double>(p.vulnerable_hosts) /
                                    static_cast<double>(max_vulnerable) * width);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s %-10s %9zu %9zu  ",
                  p.date.to_string().c_str(), p.source.c_str(), p.total_hosts,
                  p.vulnerable_hosts);
    os << buf << '|' << std::string(static_cast<std::size_t>(tb), '#')
       << std::string(static_cast<std::size_t>(width - tb), ' ') << '|'
       << std::string(static_cast<std::size_t>(vb), '*') << "\n";
  }
  return os.str();
}

}  // namespace weakkeys::analysis

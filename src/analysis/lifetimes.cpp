#include "analysis/lifetimes.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace weakkeys::analysis {

std::vector<CertificateLifetime> certificate_lifetimes(
    const netsim::ScanDataset& dataset) {
  struct Accumulator {
    CertificateLifetime lifetime;
    std::set<std::uint32_t> ips;
  };
  // Certificates are shared objects; accumulate by pointer, then emit keyed
  // by fingerprint.
  std::unordered_map<const cert::Certificate*, Accumulator> acc;
  for (const auto& snap : dataset.snapshots) {
    if (snap.protocol != netsim::Protocol::kHttps) continue;
    for (const auto& rec : snap.records) {
      auto [it, fresh] = acc.try_emplace(rec.certificate.get());
      auto& a = it->second;
      if (fresh) {
        a.lifetime.first_seen = snap.date;
        a.lifetime.last_seen = snap.date;
      }
      a.lifetime.first_seen = std::min(a.lifetime.first_seen, snap.date);
      a.lifetime.last_seen = std::max(a.lifetime.last_seen, snap.date);
      a.ips.insert(rec.ip.value());
      ++a.lifetime.sightings;
    }
  }

  std::vector<CertificateLifetime> out;
  out.reserve(acc.size());
  for (auto& [ptr, a] : acc) {
    a.lifetime.fingerprint_hex = ptr->fingerprint_hex();
    a.lifetime.distinct_ips = a.ips.size();
    out.push_back(std::move(a.lifetime));
  }
  std::sort(out.begin(), out.end(),
            [](const CertificateLifetime& a, const CertificateLifetime& b) {
              if (a.first_seen != b.first_seen) return a.first_seen < b.first_seen;
              return a.fingerprint_hex < b.fingerprint_hex;
            });
  return out;
}

std::vector<Replacement> certificate_replacements(
    const netsim::ScanDataset& dataset) {
  struct LastSeen {
    const cert::Certificate* certificate = nullptr;
    util::Date when;
  };
  std::unordered_map<std::uint32_t, LastSeen> latest;
  std::vector<Replacement> out;

  for (const auto& snap : dataset.snapshots) {
    if (snap.protocol != netsim::Protocol::kHttps) continue;
    for (const auto& rec : snap.records) {
      auto [it, fresh] = latest.try_emplace(rec.ip.value());
      LastSeen& prev = it->second;
      const auto* current = rec.certificate.get();
      if (!fresh && prev.certificate != current &&
          prev.certificate->key.n != current->key.n) {
        Replacement rep;
        rep.ip = rec.ip.value();
        rep.when = snap.date;
        rep.old_subject = prev.certificate->subject.to_string();
        rep.new_subject = current->subject.to_string();
        rep.kind = rep.old_subject == rep.new_subject
                       ? ReplacementKind::kRenewal
                       : ReplacementKind::kTakeover;
        out.push_back(std::move(rep));
      }
      prev.certificate = current;
      prev.when = snap.date;
    }
  }
  return out;
}

ReplacementSummary summarize_replacements(
    const std::vector<Replacement>& replacements) {
  ReplacementSummary summary;
  for (const auto& r : replacements) {
    if (r.kind == ReplacementKind::kRenewal) {
      ++summary.renewals;
    } else {
      ++summary.takeovers;
    }
  }
  return summary;
}

}  // namespace weakkeys::analysis

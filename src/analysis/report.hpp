// Text rendering for the table/figure reproduction binaries: aligned ASCII
// tables and a two-band series plot (total above, vulnerable below — the
// layout every population figure in the paper uses).
#pragma once

#include <string>
#include <vector>

#include "analysis/timeseries.hpp"

namespace weakkeys::analysis {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Adds a horizontal rule before the next row.
  void add_rule();

  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector = rule
};

/// Formats n with thousands separators ("1,441,437").
std::string with_commas(std::size_t n);

/// Renders a VendorSeries as a table of (date, source, total, vulnerable)
/// plus crude bar charts mirroring the paper's stacked-band figures.
std::string render_series(const VendorSeries& series, int width = 46);

}  // namespace weakkeys::analysis

// Vendor response scorecards (paper Section 5.2).
//
// The paper's discussion point: neither company size nor response class
// (public advisory / private response / silence) correlates with end-user
// vulnerability outcomes. The scorecard quantifies each vendor's outcome as
// the ratio of end-of-study vulnerable hosts to the peak, grouped by
// response class, so the (non-)correlation is measurable.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/timeseries.hpp"
#include "netsim/device_model.hpp"

namespace weakkeys::analysis {

struct VendorScore {
  std::string vendor;
  netsim::ResponseClass response = netsim::ResponseClass::kNoResponse;
  std::size_t peak_vulnerable = 0;
  std::size_t final_vulnerable = 0;

  /// final/peak: 1.0 = no improvement at all, 0.0 = fully cleaned up.
  [[nodiscard]] double remediation_ratio() const {
    return peak_vulnerable == 0
               ? 0.0
               : static_cast<double>(final_vulnerable) /
                     static_cast<double>(peak_vulnerable);
  }
};

struct ScorecardSummary {
  std::vector<VendorScore> scores;
  /// Mean remediation ratio per response class.
  std::map<netsim::ResponseClass, double> mean_ratio_by_class;
  /// Spread of the class means: a small value (relative to the overall
  /// mean) is the paper's "no correlation" finding.
  double class_mean_spread = 0.0;
  double overall_mean = 0.0;
};

/// Builds scorecards for every vendor that (a) has a notification record and
/// (b) ever had vulnerable hosts. `vendor_to_response` maps the fingerprint
/// vendor names onto Table 2's notification entries.
ScorecardSummary build_scorecard(
    const TimeSeriesBuilder& builder,
    const std::vector<netsim::VendorNotification>& notifications,
    const std::map<std::string, std::string>& vendor_aliases = {});

}  // namespace weakkeys::analysis

// Per-IP vulnerability transition analysis (paper Section 4.1: the 1,100 /
// 1,200 / 250 Juniper transitions; the Innominate 2 / 3 / 1; the IBM IP-churn
// finding).
#pragma once

#include <string>

#include "analysis/timeseries.hpp"
#include "netsim/dataset.hpp"

namespace weakkeys::analysis {

struct TransitionCounts {
  std::size_t ips_ever = 0;             ///< IPs that ever served this vendor
  std::size_t ips_ever_vulnerable = 0;  ///< ... a vulnerable key
  std::size_t vulnerable_to_clean = 0;  ///< exactly one v->c switch
  std::size_t clean_to_vulnerable = 0;  ///< exactly one c->v switch
  std::size_t multiple_switches = 0;    ///< flapped more than once
};

/// Tracks each IP's vulnerability status across HTTPS scans for records
/// labeled with `vendor` and counts status changes.
TransitionCounts count_transitions(const netsim::ScanDataset& dataset,
                                   const std::string& vendor,
                                   const VulnerableSet& vulnerable,
                                   const RecordLabeler& labeler);

}  // namespace weakkeys::analysis

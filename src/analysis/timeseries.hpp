// Per-vendor longitudinal series: total fingerprinted hosts and vulnerable
// hosts per scan — the quantity plotted in Figures 1, 3-6 and 8-10.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "fingerprint/subject_rules.hpp"
#include "netsim/dataset.hpp"

namespace weakkeys::analysis {

/// The set of factored (vulnerable) moduli, keyed by hex.
class VulnerableSet {
 public:
  VulnerableSet() = default;
  explicit VulnerableSet(std::unordered_set<std::string> hex)
      : hex_(std::move(hex)) {}

  void insert(const bn::BigInt& n) { hex_.insert(n.to_hex()); }
  [[nodiscard]] bool contains(const bn::BigInt& n) const {
    return hex_.contains(n.to_hex());
  }
  [[nodiscard]] std::size_t size() const { return hex_.size(); }
  [[nodiscard]] const std::unordered_set<std::string>& hex() const {
    return hex_;
  }

 private:
  std::unordered_set<std::string> hex_;
};

/// Maps a record to its vendor/model label ("" = unidentified). Includes
/// both the subject rules and whatever extrapolation the caller layered on.
using RecordLabeler =
    std::function<std::optional<fingerprint::VendorLabel>(const netsim::HostRecord&)>;

struct SeriesPoint {
  util::Date date;
  std::string source;
  std::size_t total_hosts = 0;
  std::size_t vulnerable_hosts = 0;
};

struct VendorSeries {
  std::string vendor;
  std::string model;  ///< empty = all models
  std::vector<SeriesPoint> points;

  [[nodiscard]] const SeriesPoint* at_or_before(const util::Date& d) const;
  [[nodiscard]] std::size_t peak_vulnerable() const;
  [[nodiscard]] std::size_t peak_total() const;
};

class TimeSeriesBuilder {
 public:
  /// `dataset` must outlive the builder; the vulnerable set and labeler are
  /// captured by value (so temporaries are safe to pass).
  TimeSeriesBuilder(const netsim::ScanDataset& dataset,
                    VulnerableSet vulnerable, RecordLabeler labeler);

  /// Series over one vendor's fingerprinted hosts (HTTPS snapshots only).
  /// `model` filters to one product when non-empty.
  [[nodiscard]] VendorSeries vendor_series(const std::string& vendor,
                                           const std::string& model = "") const;

  /// Series over every HTTPS host regardless of label (Figure 1).
  [[nodiscard]] VendorSeries overall_series() const;

  /// All vendors seen by the labeler, most-vulnerable first.
  [[nodiscard]] std::vector<std::string> vendors() const;

 private:
  const netsim::ScanDataset& dataset_;
  VulnerableSet vulnerable_;
  RecordLabeler labeler_;
};

}  // namespace weakkeys::analysis

#include "analysis/csv.hpp"

#include <map>
#include <ostream>

namespace weakkeys::analysis {

std::string csv_escape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

void write_series_csv(std::ostream& os, const VendorSeries& series) {
  os << "date,source,total_hosts,vulnerable_hosts\n";
  for (const auto& p : series.points) {
    os << p.date.to_string() << ',' << csv_escape(p.source) << ','
       << p.total_hosts << ',' << p.vulnerable_hosts << '\n';
  }
}

void write_multi_series_csv(std::ostream& os,
                            const std::vector<VendorSeries>& series) {
  os << "date,source";
  for (const auto& s : series) {
    const std::string name = s.model.empty() ? s.vendor : s.vendor + " " + s.model;
    os << ',' << csv_escape(name + " total") << ','
       << csv_escape(name + " vulnerable");
  }
  os << '\n';

  // Join on (date, source); map keeps rows date-ordered.
  using Key = std::pair<std::string, std::string>;
  std::map<Key, std::vector<const SeriesPoint*>> rows;
  for (std::size_t i = 0; i < series.size(); ++i) {
    for (const auto& p : series[i].points) {
      auto& row = rows[{p.date.to_string(), p.source}];
      row.resize(series.size(), nullptr);
      row[i] = &p;
    }
  }
  for (const auto& [key, row] : rows) {
    os << key.first << ',' << csv_escape(key.second);
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (i < row.size() && row[i]) {
        os << ',' << row[i]->total_hosts << ',' << row[i]->vulnerable_hosts;
      } else {
        os << ",,";
      }
    }
    os << '\n';
  }
}

}  // namespace weakkeys::analysis

// Event-window analysis: the Heartbleed drop (Section 4.1 / Figures 3, 5,
// 8) and the Cisco end-of-life onset correlation (Section 4.2 / Figure 7).
#pragma once

#include <optional>
#include <string>

#include "analysis/timeseries.hpp"
#include "util/date.hpp"

namespace weakkeys::analysis {

struct EventWindowDelta {
  std::size_t total_before = 0;
  std::size_t total_after = 0;
  std::size_t vulnerable_before = 0;
  std::size_t vulnerable_after = 0;

  [[nodiscard]] double total_drop_fraction() const {
    return total_before == 0
               ? 0.0
               : 1.0 - static_cast<double>(total_after) / total_before;
  }
  [[nodiscard]] double vulnerable_drop_fraction() const {
    return vulnerable_before == 0
               ? 0.0
               : 1.0 - static_cast<double>(vulnerable_after) / vulnerable_before;
  }
};

/// Compares the last scan at/before `event` with the first scan at least
/// `settle_months` after it. Returns nullopt when the series lacks points
/// on either side.
std::optional<EventWindowDelta> event_window_delta(const VendorSeries& series,
                                                   const util::Date& event,
                                                   int settle_months = 2);

struct EolOnset {
  std::string model;
  util::Date eol_announced;
  util::Date peak_date;       ///< date of the maximum total population
  int peak_to_eol_months = 0; ///< peak month minus EOL month (<= 0 means the
                              ///< decline starts at/after the announcement)
  std::size_t peak_total = 0;
  std::size_t final_total = 0;
};

/// Locates the population peak relative to the end-of-life announcement.
EolOnset eol_onset(const VendorSeries& series, const std::string& model,
                   const util::Date& eol_announced);

}  // namespace weakkeys::analysis

#include "analysis/timeseries.hpp"

#include <algorithm>
#include <map>

namespace weakkeys::analysis {

const SeriesPoint* VendorSeries::at_or_before(const util::Date& d) const {
  const SeriesPoint* best = nullptr;
  for (const auto& p : points) {
    if (p.date <= d && (!best || p.date > best->date)) best = &p;
  }
  return best;
}

std::size_t VendorSeries::peak_vulnerable() const {
  std::size_t peak = 0;
  for (const auto& p : points) peak = std::max(peak, p.vulnerable_hosts);
  return peak;
}

std::size_t VendorSeries::peak_total() const {
  std::size_t peak = 0;
  for (const auto& p : points) peak = std::max(peak, p.total_hosts);
  return peak;
}

TimeSeriesBuilder::TimeSeriesBuilder(const netsim::ScanDataset& dataset,
                                     VulnerableSet vulnerable,
                                     RecordLabeler labeler)
    : dataset_(dataset),
      vulnerable_(std::move(vulnerable)),
      labeler_(std::move(labeler)) {}

VendorSeries TimeSeriesBuilder::vendor_series(const std::string& vendor,
                                              const std::string& model) const {
  VendorSeries series;
  series.vendor = vendor;
  series.model = model;
  for (const auto& snap : dataset_.snapshots) {
    if (snap.protocol != netsim::Protocol::kHttps) continue;
    SeriesPoint point{snap.date, snap.source, 0, 0};
    for (const auto& rec : snap.records) {
      const auto label = labeler_(rec);
      if (!label || label->vendor != vendor) continue;
      if (!model.empty() && label->model != model) continue;
      ++point.total_hosts;
      if (vulnerable_.contains(rec.cert().key.n)) ++point.vulnerable_hosts;
    }
    series.points.push_back(point);
  }
  return series;
}

VendorSeries TimeSeriesBuilder::overall_series() const {
  VendorSeries series;
  series.vendor = "(all)";
  for (const auto& snap : dataset_.snapshots) {
    if (snap.protocol != netsim::Protocol::kHttps) continue;
    SeriesPoint point{snap.date, snap.source, snap.records.size(), 0};
    for (const auto& rec : snap.records) {
      if (vulnerable_.contains(rec.cert().key.n)) ++point.vulnerable_hosts;
    }
    series.points.push_back(point);
  }
  return series;
}

std::vector<std::string> TimeSeriesBuilder::vendors() const {
  std::map<std::string, std::size_t> vulnerable_count;
  for (const auto& snap : dataset_.snapshots) {
    if (snap.protocol != netsim::Protocol::kHttps) continue;
    for (const auto& rec : snap.records) {
      const auto label = labeler_(rec);
      if (!label) continue;
      auto& count = vulnerable_count[label->vendor];
      if (vulnerable_.contains(rec.cert().key.n)) ++count;
    }
  }
  std::vector<std::pair<std::string, std::size_t>> items(
      vulnerable_count.begin(), vulnerable_count.end());
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<std::string> out;
  out.reserve(items.size());
  for (auto& [vendor, count] : items) out.push_back(vendor);
  return out;
}

}  // namespace weakkeys::analysis

#include "analysis/events.hpp"

namespace weakkeys::analysis {

std::optional<EventWindowDelta> event_window_delta(const VendorSeries& series,
                                                   const util::Date& event,
                                                   int settle_months) {
  const SeriesPoint* before = nullptr;
  const SeriesPoint* after = nullptr;
  const util::Date settle = event.add_months(settle_months);
  for (const auto& p : series.points) {
    if (p.date <= event && (!before || p.date > before->date)) before = &p;
    if (p.date >= settle && (!after || p.date < after->date)) after = &p;
  }
  if (!before || !after) return std::nullopt;
  return EventWindowDelta{before->total_hosts, after->total_hosts,
                          before->vulnerable_hosts, after->vulnerable_hosts};
}

EolOnset eol_onset(const VendorSeries& series, const std::string& model,
                   const util::Date& eol_announced) {
  EolOnset onset;
  onset.model = model;
  onset.eol_announced = eol_announced;
  const SeriesPoint* peak = nullptr;
  for (const auto& p : series.points) {
    if (!peak || p.total_hosts > peak->total_hosts) peak = &p;
  }
  if (peak) {
    onset.peak_date = peak->date;
    onset.peak_total = peak->total_hosts;
    onset.peak_to_eol_months = util::months_between(eol_announced, peak->date);
  }
  if (!series.points.empty()) {
    onset.final_total = series.points.back().total_hosts;
  }
  return onset;
}

}  // namespace weakkeys::analysis

#include "analysis/scorecard.hpp"

#include <algorithm>

namespace weakkeys::analysis {

ScorecardSummary build_scorecard(
    const TimeSeriesBuilder& builder,
    const std::vector<netsim::VendorNotification>& notifications,
    const std::map<std::string, std::string>& vendor_aliases) {
  ScorecardSummary summary;

  std::map<std::string, netsim::ResponseClass> response_of;
  for (const auto& n : notifications) response_of[n.vendor] = n.response;

  for (const std::string& vendor : builder.vendors()) {
    // Resolve fingerprint names to Table 2 names (e.g. Thomson ->
    // Technicolor, Fritz!Box -> AVM, Hewlett-Packard -> HP).
    std::string table_name = vendor;
    if (const auto alias = vendor_aliases.find(vendor);
        alias != vendor_aliases.end()) {
      table_name = alias->second;
    }
    const auto response = response_of.find(table_name);
    if (response == response_of.end()) continue;

    const VendorSeries series = builder.vendor_series(vendor);
    VendorScore score;
    score.vendor = vendor;
    score.response = response->second;
    score.peak_vulnerable = series.peak_vulnerable();
    score.final_vulnerable =
        series.points.empty() ? 0 : series.points.back().vulnerable_hosts;
    if (score.peak_vulnerable == 0) continue;  // never vulnerable: no signal
    summary.scores.push_back(score);
  }

  std::map<netsim::ResponseClass, std::pair<double, int>> accumulator;
  double total = 0.0;
  for (const auto& score : summary.scores) {
    auto& [sum, count] = accumulator[score.response];
    sum += score.remediation_ratio();
    ++count;
    total += score.remediation_ratio();
  }
  if (!summary.scores.empty()) {
    summary.overall_mean = total / static_cast<double>(summary.scores.size());
  }
  double lo = 1e9, hi = -1e9;
  for (const auto& [cls, pair] : accumulator) {
    const double mean = pair.first / pair.second;
    summary.mean_ratio_by_class[cls] = mean;
    lo = std::min(lo, mean);
    hi = std::max(hi, mean);
  }
  if (hi >= lo) summary.class_mean_spread = hi - lo;
  return summary;
}

}  // namespace weakkeys::analysis

// Chain reconstruction (paper Section 3.1).
//
// Rapid7's Sonar data surfaced intermediate certificates without explicit
// chaining; the paper reconstructed chains per IP and kept only the lowest
// certificate. We do the same: within one snapshot, a record is dropped if
// its certificate's subject is the *issuer* of another certificate observed
// at the same IP (i.e. it sits above a leaf we also saw).
#pragma once

#include "netsim/dataset.hpp"

namespace weakkeys::analysis {

/// Copy of `snap` with intermediate (issuer) records removed.
netsim::ScanSnapshot exclude_intermediates(const netsim::ScanSnapshot& snap);

/// Applies exclude_intermediates to every snapshot.
netsim::ScanDataset exclude_intermediates(const netsim::ScanDataset& dataset);

}  // namespace weakkeys::analysis

#include "analysis/chains.hpp"

#include <map>
#include <set>

namespace weakkeys::analysis {

netsim::ScanSnapshot exclude_intermediates(const netsim::ScanSnapshot& snap) {
  // issuer DNs of non-self-signed certificates, per IP.
  std::map<std::uint32_t, std::set<std::string>> issuers_at_ip;
  for (const auto& rec : snap.records) {
    if (!rec.has_cert()) continue;  // undecoded raw capture: no chain info
    const auto& c = rec.cert();
    if (!c.is_self_signed()) {
      issuers_at_ip[rec.ip.value()].insert(c.issuer.to_string());
    }
  }

  netsim::ScanSnapshot out;
  out.date = snap.date;
  out.source = snap.source;
  out.protocol = snap.protocol;
  out.records.reserve(snap.records.size());
  for (const auto& rec : snap.records) {
    if (!rec.has_cert()) continue;  // quarantine input, never analysis input
    const auto it = issuers_at_ip.find(rec.ip.value());
    if (it != issuers_at_ip.end() &&
        it->second.contains(rec.cert().subject.to_string())) {
      continue;  // this certificate issued another cert seen at the same IP
    }
    out.records.push_back(rec);
  }
  return out;
}

netsim::ScanDataset exclude_intermediates(const netsim::ScanDataset& dataset) {
  netsim::ScanDataset out;
  out.snapshots.reserve(dataset.snapshots.size());
  for (const auto& snap : dataset.snapshots) {
    out.snapshots.push_back(exclude_intermediates(snap));
  }
  return out;
}

}  // namespace weakkeys::analysis

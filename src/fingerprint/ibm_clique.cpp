#include "fingerprint/ibm_clique.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace weakkeys::fingerprint {

std::vector<PrimeClique> find_degenerate_cliques(
    const std::vector<FactoredModulus>& factored, std::size_t min_primes,
    std::size_t max_primes, double min_density) {
  // Union-find over primes, keyed by hex.
  std::map<std::string, std::string> parent;
  std::function<std::string(const std::string&)> find =
      [&](const std::string& x) -> std::string {
    auto it = parent.find(x);
    if (it == parent.end() || it->second == x) return x;
    const std::string root = find(it->second);
    parent[x] = root;
    return root;
  };
  auto unite = [&](const std::string& a, const std::string& b) {
    const std::string ra = find(a), rb = find(b);
    if (ra != rb) parent[ra] = rb;
  };

  std::map<std::string, bn::BigInt> prime_by_key;
  // Deduplicate moduli: the same clique modulus shows up many times.
  std::set<std::string> seen_moduli;
  std::vector<const FactoredModulus*> unique_factored;
  for (const auto& f : factored) {
    const std::string pk = f.p.to_hex(), qk = f.q.to_hex();
    prime_by_key.emplace(pk, f.p);
    prime_by_key.emplace(qk, f.q);
    parent.emplace(pk, pk);
    parent.emplace(qk, qk);
    unite(pk, qk);
    if (seen_moduli.insert(f.n.to_hex()).second) {
      unique_factored.push_back(&f);
    }
  }

  // Group primes and moduli by component root.
  std::map<std::string, PrimeClique> components;
  for (const auto& [key, prime] : prime_by_key) {
    components[find(key)].primes.push_back(prime);
  }
  for (const auto* f : unique_factored) {
    components[find(f->p.to_hex())].moduli.push_back(f->n);
  }

  std::vector<PrimeClique> out;
  for (auto& [root, clique] : components) {
    const std::size_t k = clique.primes.size();
    if (k < min_primes || k > max_primes) continue;
    const double possible = static_cast<double>(k) * (k - 1) / 2.0;
    clique.density = possible > 0 ? clique.moduli.size() / possible : 0.0;
    if (clique.density < min_density) continue;
    std::sort(clique.primes.begin(), clique.primes.end());
    std::sort(clique.moduli.begin(), clique.moduli.end());
    out.push_back(std::move(clique));
  }
  std::sort(out.begin(), out.end(),
            [](const PrimeClique& a, const PrimeClique& b) {
              return a.moduli.size() > b.moduli.size();
            });
  return out;
}

}  // namespace weakkeys::fingerprint

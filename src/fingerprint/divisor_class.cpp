#include "fingerprint/divisor_class.hpp"

#include <cmath>

#include "rng/prng_source.hpp"

namespace weakkeys::fingerprint {

using bn::BigInt;

std::string to_string(DivisorClass c) {
  switch (c) {
    case DivisorClass::kSharedPrime:
      return "shared prime";
    case DivisorClass::kFullModulus:
      return "full modulus (duplicate)";
    case DivisorClass::kSmoothBitError:
      return "smooth divisor (bit error)";
    case DivisorClass::kOther:
      return "other";
  }
  return "?";
}

namespace {

std::size_t prime_count_below(std::uint32_t bound) {
  // Crude upper count for small_primes(); bound/ln(bound) * 1.3.
  const double b = bound;
  return static_cast<std::size_t>(1.3 * b / std::log(b)) + 16;
}

}  // namespace

SmoothSplit smooth_split(const BigInt& x, std::uint32_t bound) {
  SmoothSplit out{BigInt(1), x.abs()};
  if (out.cofactor.is_zero()) return out;
  for (const std::uint32_t p : bn::small_primes(prime_count_below(bound))) {
    if (p > bound) break;
    while (bn::mod_small(out.cofactor, p) == 0) {
      out.cofactor /= BigInt(std::uint64_t{p});
      out.smooth *= BigInt(std::uint64_t{p});
      if (out.cofactor.is_one()) return out;
    }
  }
  return out;
}

bool plausibly_well_formed(const BigInt& n, std::uint32_t bound) {
  if (n <= BigInt(4) || n.is_even()) return false;
  for (const std::uint32_t p : bn::small_primes(prime_count_below(bound))) {
    if (p > bound) break;
    if (BigInt(std::uint64_t{p}) >= n) break;
    if (bn::mod_small(n, p) == 0) return false;
  }
  return true;
}

DivisorClass triage_degenerate_modulus(const BigInt& n,
                                       std::uint32_t smooth_bound) {
  if (n <= BigInt(1)) return DivisorClass::kSmoothBitError;  // 0/1/negative: corruption
  const SmoothSplit split = smooth_split(n, smooth_bound);
  return split.smooth.is_one() ? DivisorClass::kOther
                               : DivisorClass::kSmoothBitError;
}

DivisorVerdict classify_divisor(const BigInt& n, const BigInt& d,
                                std::uint32_t smooth_bound) {
  DivisorVerdict verdict;
  if (d <= BigInt(1)) {
    verdict.cls = DivisorClass::kOther;
    return verdict;
  }
  if (d == n) {
    verdict.cls = DivisorClass::kFullModulus;
    return verdict;
  }

  const SmoothSplit split = smooth_split(d, smooth_bound);
  verdict.smooth_part = split.smooth;
  if (!split.smooth.is_one()) {
    // Any small prime factor in the divisor marks a corrupted (or otherwise
    // non-well-formed) modulus: real device primes are hundreds of bits.
    verdict.cls = DivisorClass::kSmoothBitError;
    return verdict;
  }

  // Primality spot check with a fixed-seed source keeps the pipeline
  // deterministic.
  rng::PrngRandomSource check_rng(0xd1f150f5ULL);
  const bool prime = bn::is_probable_prime(d, check_rng, 12);
  const std::size_t nb = n.bit_length();
  const std::size_t db = d.bit_length();
  const bool plausible_size = db + 8 >= nb / 2 && db <= nb / 2 + 8;
  verdict.cls = (prime && plausible_size) ? DivisorClass::kSharedPrime
                                          : DivisorClass::kOther;
  return verdict;
}

}  // namespace weakkeys::fingerprint

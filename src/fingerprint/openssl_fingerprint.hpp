// The Mironov OpenSSL prime fingerprint (paper Section 3.3.4, Table 5).
//
// OpenSSL's prime generator rejects candidates p for which p-1 is divisible
// by any of the first 2048 primes, so every prime factor recovered from an
// OpenSSL-generated key satisfies p % q_i != 1. A randomly chosen prime
// satisfies this only ~7.5% of the time, so a handful of recovered factors
// suffices to classify an implementation.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "bn/bigint.hpp"

namespace weakkeys::fingerprint {

/// True when `prime` % q != 1 for the first `sieve_primes` primes q — the
/// property every OpenSSL-generated prime has.
bool satisfies_openssl_fingerprint(const bn::BigInt& prime,
                                   std::size_t sieve_primes = 2048);

enum class ImplementationClass {
  kLikelyOpenSsl,     ///< every recovered factor satisfies the property
  kNotOpenSsl,        ///< at least one factor violates it (definite)
  kInsufficientData,  ///< no recovered factors
};

std::string to_string(ImplementationClass c);

struct OpensslVerdict {
  ImplementationClass cls = ImplementationClass::kInsufficientData;
  std::size_t factors_tested = 0;
  std::size_t factors_satisfying = 0;
};

/// Classifies one implementation from the prime factors recovered from its
/// keys (the fingerprint needs private material, so it only covers factored
/// keys — exactly as in the paper).
OpensslVerdict classify_openssl(std::span<const bn::BigInt> recovered_primes,
                                std::size_t sieve_primes = 2048);

}  // namespace weakkeys::fingerprint

// Fixed-key man-in-the-middle detection (paper Section 3.3.3).
//
// The Internet Rimon middlebox substituted one fixed RSA public key into the
// self-signed certificates served by its customers' devices, leaving the
// rest of each certificate untouched. The externally visible signature: one
// modulus appearing at many IPs under many *different* certificate subjects,
// with signatures that no longer verify — and never factored (the ISP's key
// is sound).
#pragma once

#include <string>
#include <vector>

#include "netsim/dataset.hpp"

namespace weakkeys::fingerprint {

struct MitmCandidate {
  bn::BigInt modulus;
  std::size_t distinct_ips = 0;
  std::size_t distinct_subjects = 0;
  std::size_t records = 0;
  bool ever_factored = false;
};

struct MitmOptions {
  std::size_t min_ips = 8;
  std::size_t min_subjects = 4;
};

/// Scans all HTTPS records for fixed-key substitution candidates. Moduli in
/// `factored_hex` (batch-GCD hits, e.g. the IBM clique) are reported with
/// ever_factored=true so callers can separate degenerate generators from
/// middleboxes.
std::vector<MitmCandidate> detect_fixed_key_mitm(
    const netsim::ScanDataset& dataset,
    const std::vector<std::string>& factored_hex, const MitmOptions& options);

}  // namespace weakkeys::fingerprint

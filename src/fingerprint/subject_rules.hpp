// Certificate-subject fingerprinting (paper Section 3.3.1).
//
// Maps a certificate (plus the HTTPS banner, when one was captured) to a
// vendor/model label using only externally observable data — never the
// simulation's ground truth. The standard rule set transcribes the heuristics
// the paper describes: "O=vendor" distinguished names, Cisco's model-bearing
// OU, Juniper's constant "CN=system generated", McAfee's default subject plus
// SnapGear banner, and the Fritz!Box domain patterns.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cert/certificate.hpp"

namespace weakkeys::fingerprint {

struct VendorLabel {
  std::string vendor;
  std::string model;   ///< may be empty when only the vendor is identifiable
  std::string method;  ///< which heuristic fired ("subject", "banner", ...)

  friend bool operator==(const VendorLabel&, const VendorLabel&) = default;
};

class SubjectRules {
 public:
  /// A rule: subject/SAN/banner predicate -> label.
  struct Rule {
    std::string name;
    std::function<std::optional<VendorLabel>(const cert::Certificate&,
                                             const std::string& banner)>
        match;
  };

  void add_rule(Rule rule) { rules_.push_back(std::move(rule)); }

  /// First matching rule wins (rules are ordered most-specific first).
  [[nodiscard]] std::optional<VendorLabel> classify(
      const cert::Certificate& cert, const std::string& banner = "") const;

  /// The paper's heuristics, expressed against this reproduction's
  /// certificate corpus.
  static SubjectRules standard();

 private:
  std::vector<Rule> rules_;
};

/// True when the subject is nothing but a dotted IPv4 CN (tens of thousands
/// of Fritz!Box certificates look like this; they get attributed via shared
/// prime factors instead).
bool subject_is_bare_ip(const cert::Certificate& cert);

}  // namespace weakkeys::fingerprint

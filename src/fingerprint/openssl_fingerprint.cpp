#include "fingerprint/openssl_fingerprint.hpp"

namespace weakkeys::fingerprint {

bool satisfies_openssl_fingerprint(const bn::BigInt& prime,
                                   std::size_t sieve_primes) {
  for (const std::uint32_t q : bn::small_primes(sieve_primes)) {
    if (q == 2) continue;  // p - 1 is even for every odd prime; 2 carries no signal
    if (prime <= bn::BigInt(std::uint64_t{q})) break;
    if (bn::mod_small(prime, q) == 1) return false;
  }
  return true;
}

std::string to_string(ImplementationClass c) {
  switch (c) {
    case ImplementationClass::kLikelyOpenSsl:
      return "satisfies OpenSSL fingerprint";
    case ImplementationClass::kNotOpenSsl:
      return "does not satisfy";
    case ImplementationClass::kInsufficientData:
      return "insufficient data";
  }
  return "?";
}

OpensslVerdict classify_openssl(std::span<const bn::BigInt> recovered_primes,
                                std::size_t sieve_primes) {
  OpensslVerdict verdict;
  verdict.factors_tested = recovered_primes.size();
  for (const auto& p : recovered_primes) {
    if (satisfies_openssl_fingerprint(p, sieve_primes)) {
      ++verdict.factors_satisfying;
    }
  }
  if (verdict.factors_tested == 0) {
    verdict.cls = ImplementationClass::kInsufficientData;
  } else if (verdict.factors_satisfying == verdict.factors_tested) {
    verdict.cls = ImplementationClass::kLikelyOpenSsl;
  } else {
    verdict.cls = ImplementationClass::kNotOpenSsl;
  }
  return verdict;
}

}  // namespace weakkeys::fingerprint

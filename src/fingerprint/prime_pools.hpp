// Shared-prime-pool extrapolation (paper Section 3.3.2).
//
// For every vendor with subject-identifiable certificates, pool the prime
// factors recovered from that vendor's keys. Any otherwise-unlabeled
// factored modulus built from a pooled prime inherits the vendor label
// (this is how the paper attributed the tens of thousands of bare-IP
// Fritz!Box certificates). Primes landing in two different vendors' pools
// expose cross-vendor hardware sharing (Dell / Fuji Xerox).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "bn/bigint.hpp"

namespace weakkeys::fingerprint {

class PrimePools {
 public:
  /// Adds a recovered prime for a subject-labeled vendor.
  void add(const std::string& vendor, const bn::BigInt& prime);

  /// Vendors whose pools contain `prime` (usually zero or one; two or more
  /// signals shared hardware/firmware across vendors).
  [[nodiscard]] std::vector<std::string> owners(const bn::BigInt& prime) const;

  /// Extrapolated label for an unlabeled factored modulus: the unique vendor
  /// owning either recovered factor, or "" when none/ambiguous.
  [[nodiscard]] std::string extrapolate(const bn::BigInt& p,
                                        const bn::BigInt& q) const;

  struct Overlap {
    std::string vendor_a;
    std::string vendor_b;
    std::size_t shared_primes = 0;
  };
  /// Every unordered vendor pair sharing at least one pooled prime.
  [[nodiscard]] std::vector<Overlap> overlaps() const;

  [[nodiscard]] std::size_t pool_size(const std::string& vendor) const;

 private:
  std::map<std::string, std::set<std::string>> primes_of_vendor_;
  std::map<std::string, std::set<std::string>> vendors_of_prime_;  // hex key
};

}  // namespace weakkeys::fingerprint

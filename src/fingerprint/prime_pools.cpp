#include "fingerprint/prime_pools.hpp"

namespace weakkeys::fingerprint {

void PrimePools::add(const std::string& vendor, const bn::BigInt& prime) {
  const std::string key = prime.to_hex();
  primes_of_vendor_[vendor].insert(key);
  vendors_of_prime_[key].insert(vendor);
}

std::vector<std::string> PrimePools::owners(const bn::BigInt& prime) const {
  const auto it = vendors_of_prime_.find(prime.to_hex());
  if (it == vendors_of_prime_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::string PrimePools::extrapolate(const bn::BigInt& p,
                                    const bn::BigInt& q) const {
  std::set<std::string> candidates;
  for (const auto& owner : owners(p)) candidates.insert(owner);
  for (const auto& owner : owners(q)) candidates.insert(owner);
  if (candidates.size() == 1) return *candidates.begin();
  return "";  // unknown or ambiguous
}

std::vector<PrimePools::Overlap> PrimePools::overlaps() const {
  std::map<std::pair<std::string, std::string>, std::size_t> counts;
  for (const auto& [prime, vendors] : vendors_of_prime_) {
    if (vendors.size() < 2) continue;
    for (auto a = vendors.begin(); a != vendors.end(); ++a) {
      for (auto b = std::next(a); b != vendors.end(); ++b) {
        ++counts[{*a, *b}];
      }
    }
  }
  std::vector<Overlap> out;
  out.reserve(counts.size());
  for (const auto& [pair, count] : counts) {
    out.push_back({pair.first, pair.second, count});
  }
  return out;
}

std::size_t PrimePools::pool_size(const std::string& vendor) const {
  const auto it = primes_of_vendor_.find(vendor);
  return it == primes_of_vendor_.end() ? 0 : it->second.size();
}

}  // namespace weakkeys::fingerprint

// Degenerate-generator clique detection (paper Sections 3.3.2 / 4.1).
//
// The IBM RSA II / BladeCenter bug produced only nine primes, so the 36
// possible moduli form a dense clique in the graph whose nodes are primes
// and whose edges are factored moduli. Detection works from recovered
// factors alone: find small connected prime sets whose observed modulus
// count is an outsized fraction of C(k, 2).
#pragma once

#include <string>
#include <vector>

#include "bn/bigint.hpp"

namespace weakkeys::fingerprint {

struct PrimeClique {
  std::vector<bn::BigInt> primes;
  std::vector<bn::BigInt> moduli;  ///< distinct factored moduli in the clique
  /// moduli.size() / C(primes.size(), 2): near 1.0 for a degenerate
  /// generator, near 0 for ordinary shared-prime clusters.
  double density = 0.0;
};

/// Finds prime cliques among factored moduli. `factored` holds (p, q, n)
/// triples. Cliques are connected components with at least `min_primes`
/// primes and density >= `min_density`.
struct FactoredModulus {
  bn::BigInt p;
  bn::BigInt q;
  bn::BigInt n;
};

/// Density separates generator bugs from ordinary shared-prime clusters: a
/// "star" of m moduli sharing one prime has m+1 primes and density
/// 2/(m+1) -> 0 (0.4 already at five primes), while a k-prime degenerate
/// generator approaches 1.0 once enough of its moduli have been observed.
std::vector<PrimeClique> find_degenerate_cliques(
    const std::vector<FactoredModulus>& factored, std::size_t min_primes = 5,
    std::size_t max_primes = 24, double min_density = 0.5);

}  // namespace weakkeys::fingerprint

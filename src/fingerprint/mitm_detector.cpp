#include "fingerprint/mitm_detector.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

namespace weakkeys::fingerprint {

std::vector<MitmCandidate> detect_fixed_key_mitm(
    const netsim::ScanDataset& dataset,
    const std::vector<std::string>& factored_hex, const MitmOptions& options) {
  struct Stats {
    bn::BigInt modulus;
    std::set<std::uint32_t> ips;
    std::set<std::string> subjects;
    std::size_t records = 0;
  };
  std::map<std::string, Stats> by_modulus;
  for (const auto& snap : dataset.snapshots) {
    if (snap.protocol != netsim::Protocol::kHttps) continue;
    for (const auto& rec : snap.records) {
      const auto& c = rec.cert();
      auto& stats = by_modulus[c.key.n.to_hex()];
      if (stats.records == 0) stats.modulus = c.key.n;
      stats.ips.insert(rec.ip.value());
      stats.subjects.insert(c.subject.to_string());
      ++stats.records;
    }
  }

  const std::unordered_set<std::string> factored(factored_hex.begin(),
                                                 factored_hex.end());
  std::vector<MitmCandidate> out;
  for (const auto& [hex, stats] : by_modulus) {
    if (stats.ips.size() < options.min_ips) continue;
    if (stats.subjects.size() < options.min_subjects) continue;
    out.push_back(MitmCandidate{stats.modulus, stats.ips.size(),
                                stats.subjects.size(), stats.records,
                                factored.contains(hex)});
  }
  std::sort(out.begin(), out.end(),
            [](const MitmCandidate& a, const MitmCandidate& b) {
              return a.distinct_ips > b.distinct_ips;
            });
  return out;
}

}  // namespace weakkeys::fingerprint

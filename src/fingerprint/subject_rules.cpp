#include "fingerprint/subject_rules.hpp"

#include <algorithm>

namespace weakkeys::fingerprint {

std::optional<VendorLabel> SubjectRules::classify(
    const cert::Certificate& cert, const std::string& banner) const {
  for (const auto& rule : rules_) {
    if (auto label = rule.match(cert, banner)) return label;
  }
  return std::nullopt;
}

namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool looks_like_ip(const std::string& s) {
  int dots = 0;
  for (char c : s) {
    if (c == '.') {
      ++dots;
    } else if (c < '0' || c > '9') {
      return false;
    }
  }
  return dots == 3 && !s.empty();
}

}  // namespace

SubjectRules SubjectRules::standard() {
  SubjectRules rules;

  // Juniper: every certificate carries the constant CN (Section 3.3.1); the
  // model is never identifiable from certificate data.
  rules.add_rule({"juniper-system-generated",
                  [](const cert::Certificate& c, const std::string&)
                      -> std::optional<VendorLabel> {
                    if (c.subject.get("CN") == "system generated")
                      return VendorLabel{"Juniper", "", "subject"};
                    return std::nullopt;
                  }});

  // McAfee SnapGear: all-default subject; identified via the management
  // console page served over HTTPS.
  rules.add_rule({"mcafee-snapgear-banner",
                  [](const cert::Certificate& c, const std::string& banner)
                      -> std::optional<VendorLabel> {
                    if (c.subject.get("CN") == "Default Common Name" &&
                        contains(banner, "SnapGear"))
                      return VendorLabel{"McAfee", "SnapGear", "banner"};
                    return std::nullopt;
                  }});

  // Fritz!Box: myfritz.net common names or the fritz.box SAN set.
  rules.add_rule(
      {"fritzbox-domains",
       [](const cert::Certificate& c,
          const std::string&) -> std::optional<VendorLabel> {
         if (ends_with(c.subject.get("CN"), ".myfritz.net"))
           return VendorLabel{"Fritz!Box", "", "subject"};
         for (const auto& san : c.san_dns) {
           if (san == "fritz.box" || ends_with(san, ".fritz.box") ||
               san == "myfritz.box" || san == "fritz.fonwlan.box")
             return VendorLabel{"Fritz!Box", "", "san"};
         }
         return std::nullopt;
       }});

  // Dell Imaging Group OU (the Fuji Xerox hardware line).
  rules.add_rule({"dell-imaging",
                  [](const cert::Certificate& c, const std::string&)
                      -> std::optional<VendorLabel> {
                    if (c.subject.get("OU") == "Dell Imaging Group")
                      return VendorLabel{"Dell", "Imaging", "subject"};
                    return std::nullopt;
                  }});

  // Generic O=vendor names (the bulk of labeled certificates). Cisco-style
  // subjects also put the model in OU.
  rules.add_rule(
      {"organization",
       [](const cert::Certificate& c,
          const std::string&) -> std::optional<VendorLabel> {
         const std::string org = c.subject.get("O");
         if (org.empty()) return std::nullopt;
         // Skip placeholder and unattributable organizations.
         if (org.rfind("Default", 0) == 0) return std::nullopt;
         if (org.rfind("Customer Organization", 0) == 0) return std::nullopt;
         if (org.rfind("Example ", 0) == 0) return std::nullopt;
         if (org.rfind('_', 0) == 0) return std::nullopt;
         return VendorLabel{org, c.subject.get("OU"), "subject"};
       }});

  // Subjects that are just an IP address deliberately fall through: they
  // cannot be attributed here, and the shared-prime extrapolation pass
  // (prime_pools.hpp) picks them up.
  return rules;
}

bool subject_is_bare_ip(const cert::Certificate& cert) {
  return cert.subject.attributes().size() == 1 &&
         looks_like_ip(cert.subject.get("CN"));
}

}  // namespace weakkeys::fingerprint

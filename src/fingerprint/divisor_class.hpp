// Classifying batch-GCD divisors (paper Section 3.3.5).
//
// A genuine RNG-flaw hit yields a divisor that is one prime of roughly half
// the modulus size. Bit errors (memory, wire, storage) turn a modulus into a
// random integer whose common divisors with the rest of the corpus are
// products of small primes; the paper found 107 such non-well-formed moduli
// and excluded them from the vulnerable counts.
#pragma once

#include <string>

#include "bn/bigint.hpp"

namespace weakkeys::fingerprint {

enum class DivisorClass {
  kSharedPrime,    ///< prime divisor of plausible size: a real weak key
  kFullModulus,    ///< divisor == N (duplicate modulus; not factorable)
  kSmoothBitError, ///< product of small primes: corrupted modulus
  kOther,          ///< anything else (composite, implausible size)
};

std::string to_string(DivisorClass c);

struct DivisorVerdict {
  DivisorClass cls = DivisorClass::kOther;
  /// The part of the divisor composed of primes <= smooth_bound.
  bn::BigInt smooth_part;
};

/// Classifies divisor `d` of modulus `n` (both from a batch-GCD result).
/// `smooth_bound` is the trial-division limit for the smoothness test.
DivisorVerdict classify_divisor(const bn::BigInt& n, const bn::BigInt& d,
                                std::uint32_t smooth_bound = 100000);

/// Removes all prime factors <= bound from x, returning {smooth part,
/// remaining cofactor}.
struct SmoothSplit {
  bn::BigInt smooth;
  bn::BigInt cofactor;
};
SmoothSplit smooth_split(const bn::BigInt& x, std::uint32_t bound);

/// A modulus is well-formed if it is odd, composite-sized, and has no small
/// prime factors — cheap necessary conditions for being a product of two
/// large primes.
bool plausibly_well_formed(const bn::BigInt& n, std::uint32_t bound = 100000);

/// Triage for moduli the ingest quarantine rejected before batch GCD (zero,
/// even, or tiny): routes them into the same buckets the paper used for
/// non-well-formed moduli. Anything degenerate (n <= 1) or carrying a
/// small-prime factor lands in the smooth/bit-error bucket; the remainder
/// (e.g. a tiny odd prime) in kOther. Total — never throws, any input.
DivisorClass triage_degenerate_modulus(const bn::BigInt& n,
                                       std::uint32_t smooth_bound = 100000);

}  // namespace weakkeys::fingerprint

#include "rng/entropy_pool.hpp"

#include <algorithm>
#include <cstring>

namespace weakkeys::rng {

void EntropyPool::mix(std::span<const std::uint8_t> data, double entropy_bits) {
  crypto::Sha256 h;
  h.update(std::span<const std::uint8_t>(state_.data(), state_.size()));
  h.update(data);
  state_ = h.finish();
  entropy_estimate_ = std::min(256.0, entropy_estimate_ + entropy_bits);
}

void EntropyPool::mix(const std::string& data, double entropy_bits) {
  mix(std::span(reinterpret_cast<const std::uint8_t*>(data.data()), data.size()),
      entropy_bits);
}

void EntropyPool::mix_u64(std::uint64_t value, double entropy_bits) {
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(value >> (8 * i));
  mix(std::span<const std::uint8_t>(buf, 8), entropy_bits);
}

void EntropyPool::extract(std::span<std::uint8_t> out) {
  std::size_t produced = 0;
  while (produced < out.size()) {
    crypto::Sha256 h;
    h.update(std::span<const std::uint8_t>(state_.data(), state_.size()));
    std::uint8_t ctr[8];
    for (int i = 0; i < 8; ++i)
      ctr[i] = static_cast<std::uint8_t>(extract_counter_ >> (8 * i));
    h.update(std::span<const std::uint8_t>(ctr, 8));
    const auto block = h.finish();
    ++extract_counter_;

    const std::size_t take = std::min(block.size(), out.size() - produced);
    std::memcpy(out.data() + produced, block.data(), take);
    produced += take;

    // Feed the output block back so state advances (anti-backtracking).
    crypto::Sha256 fb;
    fb.update(std::span<const std::uint8_t>(state_.data(), state_.size()));
    fb.update(block);
    state_ = fb.finish();
  }
}

}  // namespace weakkeys::rng

#include "rng/urandom.hpp"

namespace weakkeys::rng {

std::uint64_t clamp_to_bits(std::uint64_t raw, int bits) {
  if (bits <= 0) return 0;
  if (bits >= 64) return raw;
  return raw & ((std::uint64_t{1} << bits) - 1);
}

SimulatedUrandom::SimulatedUrandom(const std::string& model_tag,
                                   const RngFlawModel& flaw,
                                   std::uint64_t boot_state,
                                   std::uint64_t divergence_seed)
    : flaw_(flaw), divergence_stream_(divergence_seed) {
  // Boot: the pool sees only the firmware identity plus whatever the
  // boot-time entropy hole lets through.
  pool_.mix("firmware:" + model_tag, 0.0);
  pool_.mix_u64(clamp_to_bits(boot_state, flaw.boot_entropy_bits),
                static_cast<double>(flaw.boot_entropy_bits));
}

void SimulatedUrandom::fill(std::span<std::uint8_t> out) {
  pool_.extract(out);
}

void SimulatedUrandom::stir_divergence_event() {
  if (!flaw_.stirs_between_primes()) return;
  pool_.mix_u64(clamp_to_bits(divergence_stream_.next(),
                              flaw_.divergence_entropy_bits),
                static_cast<double>(flaw_.divergence_entropy_bits));
}

}  // namespace weakkeys::rng

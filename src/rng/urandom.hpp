// Simulated /dev/urandom for a (possibly flawed) embedded device.
//
// RngFlawModel captures the paper's mechanism (Section 2.4): on boot the pool
// is seeded only from a small device-state space (the boot-time entropy
// hole); if the key-generation process stirs in additional low-entropy events
// (time, packet arrivals) *between* the two prime generations, devices that
// booted into the same state produce RSA moduli that share exactly one prime
// factor — the batch-GCD-vulnerable pattern.
#pragma once

#include <cstdint>
#include <string>

#include "bn/bigint.hpp"
#include "rng/entropy_pool.hpp"
#include "util/prng.hpp"

namespace weakkeys::rng {

/// Parameters describing the quality of a device family's boot-time RNG.
struct RngFlawModel {
  /// log2 of the space of possible pool states right after boot. Healthy
  /// devices have >= 64 (collisions never happen); the flawed families in
  /// the study behave like 8-20 bits. 0 means fully deterministic per model.
  int boot_entropy_bits = 64;

  /// log2 of the space of the event stirred into the pool between the two
  /// prime generations (e.g. a 1-second-resolution clock). < 0 disables the
  /// mid-keygen stir entirely: colliding devices then produce *identical*
  /// keys (default-certificate behaviour) rather than shared-prime keys.
  int divergence_entropy_bits = 48;

  [[nodiscard]] bool stirs_between_primes() const {
    return divergence_entropy_bits >= 0;
  }
};

/// A deterministic RandomSource that behaves like /dev/urandom on one
/// simulated device boot.
class SimulatedUrandom final : public bn::RandomSource {
 public:
  /// `model_tag` identifies the firmware build (same for every device of a
  /// model); `boot_state` is the device's draw from the boot-state space;
  /// `divergence_seed` seeds the stream of mid-keygen entropy events (each
  /// event's value is clamped to the divergence space, so events can still
  /// collide across devices when that space is small). The caller — the
  /// population simulator — supplies the raw draws so collision statistics
  /// are explicit.
  SimulatedUrandom(const std::string& model_tag, const RngFlawModel& flaw,
                   std::uint64_t boot_state, std::uint64_t divergence_seed);

  void fill(std::span<std::uint8_t> out) override;

  /// A mid-keygen entropy event: called by the key generator between the
  /// first and second prime (mirrors OpenSSL stirring in the current time).
  /// May be called once per generated key. No-op when the model does not
  /// stir.
  void stir_divergence_event();

  [[nodiscard]] const EntropyPool& pool() const { return pool_; }

 private:
  EntropyPool pool_;
  RngFlawModel flaw_;
  util::SplitMix64 divergence_stream_;
};

/// Masks `raw` down to a space of 2^bits values (bits in [0, 64]).
std::uint64_t clamp_to_bits(std::uint64_t raw, int bits);

}  // namespace weakkeys::rng

#include "rng/getrandom.hpp"

#include <stdexcept>

namespace weakkeys::rng {

GetrandomSource::GetrandomSource(EntropyPool pool, EntropyGatherer gather,
                                 double seed_threshold_bits)
    : pool_(std::move(pool)),
      gather_(std::move(gather)),
      threshold_(seed_threshold_bits) {
  if (!gather_) throw std::invalid_argument("entropy gatherer required");
}

void GetrandomSource::fill(std::span<std::uint8_t> out) {
  while (!pool_.seeded(threshold_)) {
    // getrandom(2) semantics: the caller sleeps while the kernel keeps
    // crediting interrupt entropy; no output until the pool is seeded.
    ever_blocked_ = true;
    const double before = pool_.entropy_estimate_bits();
    gather_(pool_);
    if (pool_.entropy_estimate_bits() <= before) {
      throw std::runtime_error(
          "entropy gatherer made no progress; pool can never seed");
    }
  }
  pool_.extract(out);
}

}  // namespace weakkeys::rng

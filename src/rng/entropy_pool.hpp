// A simulated Linux-style entropy pool.
//
// The 2012 studies traced widespread weak keys to a boot-time "entropy hole":
// on headless and embedded devices, /dev/urandom could return deterministic
// output early in boot because the pool had not yet been seeded with any
// device-unique entropy. This class models the relevant mechanics — mixing
// events into a pool and extracting pseudorandom output with SHA-256 — so the
// simulated devices in src/netsim exhibit exactly that failure mode.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "crypto/sha256.hpp"

namespace weakkeys::rng {

class EntropyPool {
 public:
  /// An empty pool with zero entropy estimate. Deterministic: two pools that
  /// receive identical mix() sequences produce identical extract() streams.
  EntropyPool() = default;

  /// Stirs `data` into the pool, crediting `entropy_bits` of estimated
  /// entropy (the caller's estimate, exactly like the kernel's accounting).
  void mix(std::span<const std::uint8_t> data, double entropy_bits);
  void mix(const std::string& data, double entropy_bits);
  void mix_u64(std::uint64_t value, double entropy_bits);

  /// Extracts `out.size()` pseudorandom bytes (SHA-256 in counter mode over
  /// the pool state, with state feedback after each block).
  void extract(std::span<std::uint8_t> out);

  /// The kernel-style entropy estimate, saturating at 256 bits.
  [[nodiscard]] double entropy_estimate_bits() const { return entropy_estimate_; }

  /// True once the pool has been credited at least `threshold` bits.
  /// getrandom(2) semantics: properly seeded pools block until this holds.
  [[nodiscard]] bool seeded(double threshold = 128.0) const {
    return entropy_estimate_ >= threshold;
  }

 private:
  crypto::Sha256::Digest state_{};
  std::uint64_t extract_counter_ = 0;
  double entropy_estimate_ = 0.0;
};

}  // namespace weakkeys::rng

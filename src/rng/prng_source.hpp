// A healthy, deterministic RandomSource backed by xoshiro256**.
// Used by tests, examples, and any simulated device without the RNG flaw.
#pragma once

#include "bn/bigint.hpp"
#include "util/prng.hpp"

namespace weakkeys::rng {

class PrngRandomSource final : public bn::RandomSource {
 public:
  explicit PrngRandomSource(std::uint64_t seed) : gen_(seed) {}

  void fill(std::span<std::uint8_t> out) override {
    std::size_t i = 0;
    while (i < out.size()) {
      std::uint64_t word = gen_();
      const std::size_t take = std::min<std::size_t>(8, out.size() - i);
      for (std::size_t j = 0; j < take; ++j) {
        out[i + j] = static_cast<std::uint8_t>(word);
        word >>= 8;
      }
      i += take;
    }
  }

 private:
  util::Xoshiro256 gen_;
};

}  // namespace weakkeys::rng

// The post-2012 kernel mitigation, as a RandomSource.
//
// After the disclosure, the Linux maintainers shipped /dev/random fixups
// (July 2012) and later the getrandom(2) system call (2014), which returns
// data only once the pool is properly seeded (paper Section 2.5). The paper
// hypothesizes the eventual per-vendor declines trace to new products
// inheriting these mitigations. GetrandomSource models the semantics: a
// fill() against an unseeded pool *blocks* — in simulation, it invokes an
// entropy-gathering callback (interrupt timing, device-unique state) and
// records that it had to wait — so key generation can never consume
// deterministic boot state, whatever the firmware does.
#pragma once

#include <functional>

#include "bn/bigint.hpp"
#include "rng/entropy_pool.hpp"

namespace weakkeys::rng {

class GetrandomSource final : public bn::RandomSource {
 public:
  using EntropyGatherer = std::function<void(EntropyPool&)>;

  /// `pool` is the device's pool in whatever state boot left it;
  /// `gather` supplies the entropy the kernel would accumulate while a
  /// getrandom() caller blocks (must credit >= the seed threshold).
  /// Throws std::invalid_argument if `gather` is empty.
  GetrandomSource(EntropyPool pool, EntropyGatherer gather,
                  double seed_threshold_bits = 128.0);

  void fill(std::span<std::uint8_t> out) override;

  /// True if any fill() had to wait for seeding (i.e. the old urandom
  /// behaviour would have produced deterministic output here).
  [[nodiscard]] bool ever_blocked() const { return ever_blocked_; }

  [[nodiscard]] const EntropyPool& pool() const { return pool_; }

 private:
  EntropyPool pool_;
  EntropyGatherer gather_;
  double threshold_;
  bool ever_blocked_ = false;
};

}  // namespace weakkeys::rng

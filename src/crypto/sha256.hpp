// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for (a) entropy extraction in the simulated Linux-style entropy pool
// and (b) certificate fingerprints. Streaming interface plus one-shot helper.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace weakkeys::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  /// Absorbs `data`. May be called repeatedly.
  void update(std::span<const std::uint8_t> data);
  void update(const std::string& text);

  /// Finalizes and returns the digest. The object is then reset and can be
  /// reused for a new message.
  Digest finish();

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data);
  static Digest hash(const std::string& text);

 private:
  void process_block(const std::uint8_t* block);
  void reset();

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// Lowercase hex of a digest.
std::string digest_hex(const Sha256::Digest& digest);

}  // namespace weakkeys::crypto

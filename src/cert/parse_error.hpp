// The parse-failure taxonomy for the TLV / certificate decoders.
//
// Real scan corpora are full of mangled encodings (the paper's raw data had
// truncated handshakes, bit-flipped certificates, and outright junk), so the
// decoders expose a *total* non-throwing API: every malformed input maps to
// one of these reasons instead of undefined behaviour or an abort. The
// throwing decode entry points are thin wrappers that convert a ParseError
// into a TlvError.
#pragma once

namespace weakkeys::cert {

enum class ParseError {
  kNone = 0,
  kEndOfInput,       ///< read attempted with no bytes left
  kTruncatedHeader,  ///< fewer than the 5 tag+length bytes remain
  kLengthOverrun,    ///< declared length exceeds the remaining bytes
  kUnexpectedTag,    ///< element present but with a different tag
  kBadFieldWidth,    ///< fixed-width field (u64) with the wrong payload size
  kBadDn,            ///< distinguished-name payload is not a valid attribute list
  kBadDate,          ///< validity field that does not parse as YYYY-MM-DD
  kTrailingGarbage,  ///< bytes left over after a complete structure
};

/// Stable human-readable name; never returns null.
const char* to_string(ParseError e);

}  // namespace weakkeys::cert

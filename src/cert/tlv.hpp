// A compact tag-length-value encoding, our stand-in for DER.
//
// Certificates in the simulated scans are serialized with this format; the
// fingerprinting pipeline decodes them back. Tags are one byte; lengths are
// 32-bit little-endian. Nested structures are encoded as TLV values whose
// payload is itself a TLV sequence.
//
// The reader has two faces: a total, non-throwing `try_*` API returning a
// ParseError (used by the ingest/quarantine pipeline, which must survive
// arbitrary scan garbage), and the original throwing API, now a thin wrapper
// over the total one.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "cert/parse_error.hpp"

namespace weakkeys::cert {

class TlvError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class TlvWriter {
 public:
  void put_bytes(std::uint8_t tag, std::span<const std::uint8_t> value);
  void put_string(std::uint8_t tag, const std::string& value);
  void put_u64(std::uint8_t tag, std::uint64_t value);
  /// Nested structure: the payload of `tag` is `inner`'s serialized buffer.
  void put_nested(std::uint8_t tag, const TlvWriter& inner);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

class TlvReader {
 public:
  /// A reader over no bytes; at_end() immediately.
  TlvReader() = default;
  explicit TlvReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }

  /// Bytes not yet consumed. All bounds checks compare lengths against this
  /// count — never `pos_ + len` sums, which can wrap on 32-bit size_t for
  /// hostile 0xFFFFFFFF length headers.
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  // -- Total (non-throwing) API ------------------------------------------
  // Each call either fills the out-parameter and returns kNone, or leaves
  // the reader position untouched and returns the failure reason.

  [[nodiscard]] ParseError try_peek_tag(std::uint8_t& tag) const;
  [[nodiscard]] ParseError try_read_bytes(std::uint8_t tag,
                                          std::span<const std::uint8_t>& out);
  [[nodiscard]] ParseError try_read_string(std::uint8_t tag, std::string& out);
  [[nodiscard]] ParseError try_read_u64(std::uint8_t tag, std::uint64_t& out);
  [[nodiscard]] ParseError try_read_nested(std::uint8_t tag, TlvReader& out);

  // -- Throwing wrappers --------------------------------------------------

  /// Tag of the next element. Throws TlvError at end of input.
  [[nodiscard]] std::uint8_t peek_tag() const;

  /// Reads the next element; throws TlvError if its tag differs or the
  /// length overruns the buffer.
  std::span<const std::uint8_t> read_bytes(std::uint8_t tag);
  std::string read_string(std::uint8_t tag);
  std::uint64_t read_u64(std::uint8_t tag);
  TlvReader read_nested(std::uint8_t tag);

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace weakkeys::cert

// A compact tag-length-value encoding, our stand-in for DER.
//
// Certificates in the simulated scans are serialized with this format; the
// fingerprinting pipeline decodes them back. Tags are one byte; lengths are
// 32-bit little-endian. Nested structures are encoded as TLV values whose
// payload is itself a TLV sequence.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace weakkeys::cert {

class TlvError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class TlvWriter {
 public:
  void put_bytes(std::uint8_t tag, std::span<const std::uint8_t> value);
  void put_string(std::uint8_t tag, const std::string& value);
  void put_u64(std::uint8_t tag, std::uint64_t value);
  /// Nested structure: the payload of `tag` is `inner`'s serialized buffer.
  void put_nested(std::uint8_t tag, const TlvWriter& inner);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

class TlvReader {
 public:
  explicit TlvReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }

  /// Tag of the next element. Throws TlvError at end of input.
  [[nodiscard]] std::uint8_t peek_tag() const;

  /// Reads the next element; throws TlvError if its tag differs or the
  /// length overruns the buffer.
  std::span<const std::uint8_t> read_bytes(std::uint8_t tag);
  std::string read_string(std::uint8_t tag);
  std::uint64_t read_u64(std::uint8_t tag);
  TlvReader read_nested(std::uint8_t tag);

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace weakkeys::cert

#include "cert/tlv.hpp"

namespace weakkeys::cert {

namespace {

constexpr std::size_t kHeaderSize = 5;  // 1 tag byte + 4 length bytes

}  // namespace

const char* to_string(ParseError e) {
  switch (e) {
    case ParseError::kNone:
      return "ok";
    case ParseError::kEndOfInput:
      return "end of input";
    case ParseError::kTruncatedHeader:
      return "truncated TLV header";
    case ParseError::kLengthOverrun:
      return "TLV length overruns buffer";
    case ParseError::kUnexpectedTag:
      return "unexpected TLV tag";
    case ParseError::kBadFieldWidth:
      return "fixed-width field with wrong length";
    case ParseError::kBadDn:
      return "malformed distinguished name";
    case ParseError::kBadDate:
      return "malformed date";
    case ParseError::kTrailingGarbage:
      return "trailing bytes after structure";
  }
  return "unknown parse error";
}

void TlvWriter::put_bytes(std::uint8_t tag, std::span<const std::uint8_t> value) {
  buf_.push_back(tag);
  const auto len = static_cast<std::uint32_t>(value.size());
  for (int i = 0; i < 4; ++i)
    buf_.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  buf_.insert(buf_.end(), value.begin(), value.end());
}

void TlvWriter::put_string(std::uint8_t tag, const std::string& value) {
  put_bytes(tag, std::span(reinterpret_cast<const std::uint8_t*>(value.data()),
                           value.size()));
}

void TlvWriter::put_u64(std::uint8_t tag, std::uint64_t value) {
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(value >> (8 * i));
  put_bytes(tag, std::span<const std::uint8_t>(buf, 8));
}

void TlvWriter::put_nested(std::uint8_t tag, const TlvWriter& inner) {
  put_bytes(tag, inner.buf_);
}

ParseError TlvReader::try_peek_tag(std::uint8_t& tag) const {
  if (at_end()) return ParseError::kEndOfInput;
  tag = data_[pos_];
  return ParseError::kNone;
}

ParseError TlvReader::try_read_bytes(std::uint8_t tag,
                                     std::span<const std::uint8_t>& out) {
  const std::size_t left = remaining();
  if (left == 0) return ParseError::kEndOfInput;
  if (left < kHeaderSize) return ParseError::kTruncatedHeader;
  if (data_[pos_] != tag) return ParseError::kUnexpectedTag;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(data_[pos_ + 1 + i]) << (8 * i);
  // Compare against the bytes that remain *after* the header; `pos_ + 5 +
  // len` arithmetic would wrap for len near SIZE_MAX on 32-bit targets.
  if (len > left - kHeaderSize) return ParseError::kLengthOverrun;
  out = data_.subspan(pos_ + kHeaderSize, len);
  pos_ += kHeaderSize + len;
  return ParseError::kNone;
}

ParseError TlvReader::try_read_string(std::uint8_t tag, std::string& out) {
  std::span<const std::uint8_t> bytes;
  if (const ParseError e = try_read_bytes(tag, bytes); e != ParseError::kNone)
    return e;
  out.assign(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return ParseError::kNone;
}

ParseError TlvReader::try_read_u64(std::uint8_t tag, std::uint64_t& out) {
  const std::size_t saved = pos_;
  std::span<const std::uint8_t> bytes;
  if (const ParseError e = try_read_bytes(tag, bytes); e != ParseError::kNone)
    return e;
  if (bytes.size() != 8) {
    pos_ = saved;  // leave the reader where it was, like other failures
    return ParseError::kBadFieldWidth;
  }
  out = 0;
  for (int i = 0; i < 8; ++i)
    out |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  return ParseError::kNone;
}

ParseError TlvReader::try_read_nested(std::uint8_t tag, TlvReader& out) {
  std::span<const std::uint8_t> bytes;
  if (const ParseError e = try_read_bytes(tag, bytes); e != ParseError::kNone)
    return e;
  out = TlvReader(bytes);
  return ParseError::kNone;
}

namespace {

[[noreturn]] void throw_tlv(ParseError e, std::uint8_t tag) {
  throw TlvError(std::string(to_string(e)) + " (tag " + std::to_string(tag) +
                 ")");
}

}  // namespace

std::uint8_t TlvReader::peek_tag() const {
  std::uint8_t tag = 0;
  if (const ParseError e = try_peek_tag(tag); e != ParseError::kNone)
    throw TlvError("read past end of TLV buffer");
  return tag;
}

std::span<const std::uint8_t> TlvReader::read_bytes(std::uint8_t tag) {
  std::span<const std::uint8_t> out;
  if (const ParseError e = try_read_bytes(tag, out); e != ParseError::kNone)
    throw_tlv(e, tag);
  return out;
}

std::string TlvReader::read_string(std::uint8_t tag) {
  std::string out;
  if (const ParseError e = try_read_string(tag, out); e != ParseError::kNone)
    throw_tlv(e, tag);
  return out;
}

std::uint64_t TlvReader::read_u64(std::uint8_t tag) {
  std::uint64_t out = 0;
  if (const ParseError e = try_read_u64(tag, out); e != ParseError::kNone)
    throw_tlv(e, tag);
  return out;
}

TlvReader TlvReader::read_nested(std::uint8_t tag) {
  TlvReader out;
  if (const ParseError e = try_read_nested(tag, out); e != ParseError::kNone)
    throw_tlv(e, tag);
  return out;
}

}  // namespace weakkeys::cert

#include "cert/tlv.hpp"

namespace weakkeys::cert {

void TlvWriter::put_bytes(std::uint8_t tag, std::span<const std::uint8_t> value) {
  buf_.push_back(tag);
  const auto len = static_cast<std::uint32_t>(value.size());
  for (int i = 0; i < 4; ++i)
    buf_.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  buf_.insert(buf_.end(), value.begin(), value.end());
}

void TlvWriter::put_string(std::uint8_t tag, const std::string& value) {
  put_bytes(tag, std::span(reinterpret_cast<const std::uint8_t*>(value.data()),
                           value.size()));
}

void TlvWriter::put_u64(std::uint8_t tag, std::uint64_t value) {
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(value >> (8 * i));
  put_bytes(tag, std::span<const std::uint8_t>(buf, 8));
}

void TlvWriter::put_nested(std::uint8_t tag, const TlvWriter& inner) {
  put_bytes(tag, inner.buf_);
}

std::uint8_t TlvReader::peek_tag() const {
  if (pos_ >= data_.size()) throw TlvError("read past end of TLV buffer");
  return data_[pos_];
}

std::span<const std::uint8_t> TlvReader::read_bytes(std::uint8_t tag) {
  if (pos_ + 5 > data_.size()) throw TlvError("truncated TLV header");
  if (data_[pos_] != tag)
    throw TlvError("unexpected TLV tag " + std::to_string(data_[pos_]) +
                   ", wanted " + std::to_string(tag));
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(data_[pos_ + 1 + i]) << (8 * i);
  if (pos_ + 5 + len > data_.size()) throw TlvError("TLV length overruns buffer");
  auto out = data_.subspan(pos_ + 5, len);
  pos_ += 5 + len;
  return out;
}

std::string TlvReader::read_string(std::uint8_t tag) {
  const auto bytes = read_bytes(tag);
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

std::uint64_t TlvReader::read_u64(std::uint8_t tag) {
  const auto bytes = read_bytes(tag);
  if (bytes.size() != 8) throw TlvError("u64 field with wrong length");
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i)
    out |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  return out;
}

TlvReader TlvReader::read_nested(std::uint8_t tag) {
  return TlvReader(read_bytes(tag));
}

}  // namespace weakkeys::cert

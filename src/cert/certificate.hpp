// A simplified X.509-style certificate.
//
// Carries exactly the fields the study's pipeline uses: subject and issuer
// DNs, subject alternative names, validity window, serial, the RSA public
// key, and a signature over the TBS ("to be signed") body. Serialization is
// the compact TLV format in tlv.hpp; fingerprints are SHA-256 over the full
// encoding, like real certificate SHA-256 fingerprints.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cert/distinguished_name.hpp"
#include "cert/tlv.hpp"
#include "crypto/sha256.hpp"
#include "rsa/key.hpp"
#include "util/date.hpp"

namespace weakkeys::cert {

struct Validity {
  util::Date not_before;
  util::Date not_after;

  [[nodiscard]] bool contains(const util::Date& d) const {
    return not_before <= d && d <= not_after;
  }
  friend bool operator==(const Validity&, const Validity&) = default;
};

class Certificate;

/// Outcome of the total (non-throwing) decoder: either a certificate, or
/// the parse-failure reason plus the field it surfaced in. Defined after
/// Certificate (std::optional needs the complete type); declared here so
/// Certificate::try_decode can name it.
struct DecodeResult;

class Certificate {
 public:
  Certificate() = default;

  std::uint64_t serial = 0;
  DistinguishedName subject;
  DistinguishedName issuer;
  std::vector<std::string> san_dns;  ///< dNSName subject alternative names
  Validity validity;
  rsa::RsaPublicKey key;
  std::string signature_algorithm = "sha256WithRSAEncryption";
  std::vector<std::uint8_t> signature;

  [[nodiscard]] bool is_self_signed() const { return subject == issuer; }

  /// Encodes the TBS body (everything except the signature).
  [[nodiscard]] std::vector<std::uint8_t> encode_tbs() const;

  /// Encodes the full certificate.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Decodes an encode() buffer without throwing: arbitrary garbage maps to
  /// a ParseError, never UB or an exception. The ingest/quarantine pipeline
  /// is built on this entry point.
  static DecodeResult try_decode(std::span<const std::uint8_t> data);

  /// Decodes an encode() buffer. Throws TlvError on malformed input (a thin
  /// wrapper over try_decode).
  static Certificate decode(std::span<const std::uint8_t> data);

  /// SHA-256 over the full encoding.
  [[nodiscard]] crypto::Sha256::Digest fingerprint() const;
  [[nodiscard]] std::string fingerprint_hex() const;

  /// Verifies the signature against `signer` (use the certificate's own key
  /// for self-signed certificates).
  [[nodiscard]] bool verify_signature(const rsa::RsaPublicKey& signer) const;

  /// Copy of this certificate with bit `bit_index` of the modulus flipped —
  /// models the wire/memory corruption behind the paper's 107 non-well-formed
  /// moduli (Section 3.3.5). The signature is left untouched (and thus no
  /// longer verifies, as the paper observed).
  [[nodiscard]] Certificate with_modulus_bit_flipped(std::size_t bit_index) const;

  friend bool operator==(const Certificate&, const Certificate&) = default;
};

struct DecodeResult {
  std::optional<Certificate> cert;
  ParseError error = ParseError::kNone;
  std::string field;  ///< e.g. "serial", "subject" ("" on success)

  [[nodiscard]] bool ok() const { return cert.has_value(); }
  explicit operator bool() const { return ok(); }
};

/// Creates and signs a self-signed certificate for `key`.
Certificate make_self_signed(const DistinguishedName& subject,
                             const std::vector<std::string>& san_dns,
                             const Validity& validity,
                             const rsa::RsaPrivateKey& key,
                             std::uint64_t serial);

/// Creates a certificate for `subject_key` signed by `issuer_key` under
/// `issuer` (a CA-issued leaf or an intermediate).
Certificate make_issued(const DistinguishedName& subject,
                        const std::vector<std::string>& san_dns,
                        const Validity& validity,
                        const rsa::RsaPublicKey& subject_key,
                        const DistinguishedName& issuer,
                        const rsa::RsaPrivateKey& issuer_key,
                        std::uint64_t serial);

}  // namespace weakkeys::cert

// X.500-style distinguished names as used in certificate subjects/issuers.
//
// Vendor fingerprinting (paper Section 3.3.1) keys almost entirely off
// these: "O=vendor" organizations, Cisco model names in OU fields, Juniper's
// constant "CN=system generated", McAfee's "CN=Default Common Name", etc.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace weakkeys::cert {

class DistinguishedName {
 public:
  using Attribute = std::pair<std::string, std::string>;  // e.g. {"CN", "..."}

  DistinguishedName() = default;
  explicit DistinguishedName(std::vector<Attribute> attributes)
      : attributes_(std::move(attributes)) {}

  void add(std::string type, std::string value) {
    attributes_.emplace_back(std::move(type), std::move(value));
  }

  /// First value for `type` ("" if absent). Types compare case-sensitively
  /// and are conventionally upper-case (CN, O, OU, C, L, ST).
  [[nodiscard]] std::string get(const std::string& type) const;

  [[nodiscard]] bool has(const std::string& type) const;

  [[nodiscard]] const std::vector<Attribute>& attributes() const {
    return attributes_;
  }

  [[nodiscard]] bool empty() const { return attributes_.empty(); }

  /// "CN=foo, O=bar" form.
  [[nodiscard]] std::string to_string() const;

  /// Parses the to_string() form. Values may not contain ',' or '='.
  static DistinguishedName parse(const std::string& text);

  friend bool operator==(const DistinguishedName&,
                         const DistinguishedName&) = default;

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace weakkeys::cert

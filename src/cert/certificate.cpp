#include "cert/certificate.hpp"

#include "rsa/pkcs1.hpp"
#include "util/hex.hpp"

namespace weakkeys::cert {

namespace {

// TLV tags for certificate fields.
enum Tag : std::uint8_t {
  kTagCertificate = 0x01,
  kTagTbs = 0x02,
  kTagSerial = 0x03,
  kTagSubject = 0x04,
  kTagIssuer = 0x05,
  kTagSan = 0x06,
  kTagSanEntry = 0x07,
  kTagNotBefore = 0x08,
  kTagNotAfter = 0x09,
  kTagModulus = 0x0a,
  kTagExponent = 0x0b,
  kTagSigAlg = 0x0c,
  kTagSignature = 0x0d,
  kTagDn = 0x0e,
  kTagDnType = 0x0f,
  kTagDnValue = 0x10,
};

void put_dn(TlvWriter& w, std::uint8_t tag, const DistinguishedName& dn) {
  TlvWriter inner;
  for (const auto& [t, v] : dn.attributes()) {
    inner.put_string(kTagDnType, t);
    inner.put_string(kTagDnValue, v);
  }
  w.put_nested(tag, inner);
}

DistinguishedName read_dn(TlvReader& r, std::uint8_t tag) {
  TlvReader inner = r.read_nested(tag);
  DistinguishedName dn;
  while (!inner.at_end()) {
    std::string t = inner.read_string(kTagDnType);
    std::string v = inner.read_string(kTagDnValue);
    dn.add(std::move(t), std::move(v));
  }
  return dn;
}

}  // namespace

std::vector<std::uint8_t> Certificate::encode_tbs() const {
  TlvWriter tbs;
  tbs.put_u64(kTagSerial, serial);
  put_dn(tbs, kTagSubject, subject);
  put_dn(tbs, kTagIssuer, issuer);
  TlvWriter san;
  for (const auto& name : san_dns) san.put_string(kTagSanEntry, name);
  tbs.put_nested(kTagSan, san);
  tbs.put_string(kTagNotBefore, validity.not_before.to_string());
  tbs.put_string(kTagNotAfter, validity.not_after.to_string());
  tbs.put_bytes(kTagModulus, key.n.to_bytes());
  tbs.put_bytes(kTagExponent, key.e.to_bytes());
  tbs.put_string(kTagSigAlg, signature_algorithm);
  return tbs.bytes();
}

std::vector<std::uint8_t> Certificate::encode() const {
  TlvWriter w;
  w.put_bytes(kTagTbs, encode_tbs());
  w.put_bytes(kTagSignature, signature);
  TlvWriter outer;
  outer.put_nested(kTagCertificate, w);
  return outer.bytes();
}

Certificate Certificate::decode(std::span<const std::uint8_t> data) {
  TlvReader outer(data);
  TlvReader r = outer.read_nested(kTagCertificate);
  const auto tbs_bytes = r.read_bytes(kTagTbs);
  Certificate cert;
  {
    TlvReader tbs(tbs_bytes);
    cert.serial = tbs.read_u64(kTagSerial);
    cert.subject = read_dn(tbs, kTagSubject);
    cert.issuer = read_dn(tbs, kTagIssuer);
    TlvReader san = tbs.read_nested(kTagSan);
    while (!san.at_end()) cert.san_dns.push_back(san.read_string(kTagSanEntry));
    cert.validity.not_before = util::Date::parse(tbs.read_string(kTagNotBefore));
    cert.validity.not_after = util::Date::parse(tbs.read_string(kTagNotAfter));
    cert.key.n = bn::BigInt::from_bytes(tbs.read_bytes(kTagModulus));
    cert.key.e = bn::BigInt::from_bytes(tbs.read_bytes(kTagExponent));
    cert.signature_algorithm = tbs.read_string(kTagSigAlg);
  }
  const auto sig = r.read_bytes(kTagSignature);
  cert.signature.assign(sig.begin(), sig.end());
  return cert;
}

crypto::Sha256::Digest Certificate::fingerprint() const {
  return crypto::Sha256::hash(encode());
}

std::string Certificate::fingerprint_hex() const {
  return crypto::digest_hex(fingerprint());
}

bool Certificate::verify_signature(const rsa::RsaPublicKey& signer) const {
  return rsa::verify(signer, encode_tbs(), signature);
}

Certificate Certificate::with_modulus_bit_flipped(std::size_t bit_index) const {
  Certificate out = *this;
  const bn::BigInt mask = bn::BigInt(1) << bit_index;
  out.key.n = out.key.n.bit(bit_index) ? out.key.n - mask : out.key.n + mask;
  return out;
}

Certificate make_issued(const DistinguishedName& subject,
                        const std::vector<std::string>& san_dns,
                        const Validity& validity,
                        const rsa::RsaPublicKey& subject_key,
                        const DistinguishedName& issuer,
                        const rsa::RsaPrivateKey& issuer_key,
                        std::uint64_t serial) {
  Certificate cert;
  cert.serial = serial;
  cert.subject = subject;
  cert.issuer = issuer;
  cert.san_dns = san_dns;
  cert.validity = validity;
  cert.key = subject_key;
  cert.signature = rsa::sign(issuer_key, cert.encode_tbs());
  return cert;
}

Certificate make_self_signed(const DistinguishedName& subject,
                             const std::vector<std::string>& san_dns,
                             const Validity& validity,
                             const rsa::RsaPrivateKey& key,
                             std::uint64_t serial) {
  Certificate cert;
  cert.serial = serial;
  cert.subject = subject;
  cert.issuer = subject;
  cert.san_dns = san_dns;
  cert.validity = validity;
  cert.key = key.pub;
  cert.signature = rsa::sign(key, cert.encode_tbs());
  return cert;
}

}  // namespace weakkeys::cert

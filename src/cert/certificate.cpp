#include "cert/certificate.hpp"

#include "rsa/pkcs1.hpp"
#include "util/hex.hpp"

namespace weakkeys::cert {

namespace {

// TLV tags for certificate fields.
enum Tag : std::uint8_t {
  kTagCertificate = 0x01,
  kTagTbs = 0x02,
  kTagSerial = 0x03,
  kTagSubject = 0x04,
  kTagIssuer = 0x05,
  kTagSan = 0x06,
  kTagSanEntry = 0x07,
  kTagNotBefore = 0x08,
  kTagNotAfter = 0x09,
  kTagModulus = 0x0a,
  kTagExponent = 0x0b,
  kTagSigAlg = 0x0c,
  kTagSignature = 0x0d,
  kTagDn = 0x0e,
  kTagDnType = 0x0f,
  kTagDnValue = 0x10,
};

void put_dn(TlvWriter& w, std::uint8_t tag, const DistinguishedName& dn) {
  TlvWriter inner;
  for (const auto& [t, v] : dn.attributes()) {
    inner.put_string(kTagDnType, t);
    inner.put_string(kTagDnValue, v);
  }
  w.put_nested(tag, inner);
}

/// Total DN decoder: a nested payload whose inner TLV sequence is malformed
/// in any way (framing, tags, truncation) reads as kBadDn — the taxonomy
/// groups every broken-attribute-list shape under one reason.
ParseError try_read_dn(TlvReader& r, std::uint8_t tag, DistinguishedName& out) {
  TlvReader inner;
  if (const ParseError e = r.try_read_nested(tag, inner); e != ParseError::kNone)
    return e;
  DistinguishedName dn;
  while (!inner.at_end()) {
    std::string t;
    std::string v;
    if (inner.try_read_string(kTagDnType, t) != ParseError::kNone ||
        inner.try_read_string(kTagDnValue, v) != ParseError::kNone) {
      return ParseError::kBadDn;
    }
    dn.add(std::move(t), std::move(v));
  }
  out = std::move(dn);
  return ParseError::kNone;
}

/// Total date decoder: a string field that is not a real YYYY-MM-DD calendar
/// date reads as kBadDate.
ParseError try_read_date(TlvReader& r, std::uint8_t tag, util::Date& out) {
  std::string text;
  if (const ParseError e = r.try_read_string(tag, text); e != ParseError::kNone)
    return e;
  try {
    out = util::Date::parse(text);
  } catch (const std::exception&) {
    return ParseError::kBadDate;
  }
  return ParseError::kNone;
}

}  // namespace

std::vector<std::uint8_t> Certificate::encode_tbs() const {
  TlvWriter tbs;
  tbs.put_u64(kTagSerial, serial);
  put_dn(tbs, kTagSubject, subject);
  put_dn(tbs, kTagIssuer, issuer);
  TlvWriter san;
  for (const auto& name : san_dns) san.put_string(kTagSanEntry, name);
  tbs.put_nested(kTagSan, san);
  tbs.put_string(kTagNotBefore, validity.not_before.to_string());
  tbs.put_string(kTagNotAfter, validity.not_after.to_string());
  tbs.put_bytes(kTagModulus, key.n.to_bytes());
  tbs.put_bytes(kTagExponent, key.e.to_bytes());
  tbs.put_string(kTagSigAlg, signature_algorithm);
  return tbs.bytes();
}

std::vector<std::uint8_t> Certificate::encode() const {
  TlvWriter w;
  w.put_bytes(kTagTbs, encode_tbs());
  w.put_bytes(kTagSignature, signature);
  TlvWriter outer;
  outer.put_nested(kTagCertificate, w);
  return outer.bytes();
}

DecodeResult Certificate::try_decode(
    std::span<const std::uint8_t> data) {
  DecodeResult result;
  // On failure: record the reason and the field it surfaced in, leave
  // result.cert empty.
  const auto fail = [&result](ParseError e, const char* field) {
    result.error = e;
    result.field = field;
    return result;
  };

  TlvReader outer(data);
  TlvReader r;
  if (const ParseError e = outer.try_read_nested(kTagCertificate, r);
      e != ParseError::kNone) {
    return fail(e, "certificate");
  }
  if (!outer.at_end()) return fail(ParseError::kTrailingGarbage, "certificate");
  std::span<const std::uint8_t> tbs_bytes;
  if (const ParseError e = r.try_read_bytes(kTagTbs, tbs_bytes);
      e != ParseError::kNone) {
    return fail(e, "tbs");
  }

  Certificate cert;
  {
    TlvReader tbs(tbs_bytes);
    if (const ParseError e = tbs.try_read_u64(kTagSerial, cert.serial);
        e != ParseError::kNone) {
      return fail(e, "serial");
    }
    if (const ParseError e = try_read_dn(tbs, kTagSubject, cert.subject);
        e != ParseError::kNone) {
      return fail(e, "subject");
    }
    if (const ParseError e = try_read_dn(tbs, kTagIssuer, cert.issuer);
        e != ParseError::kNone) {
      return fail(e, "issuer");
    }
    TlvReader san;
    if (const ParseError e = tbs.try_read_nested(kTagSan, san);
        e != ParseError::kNone) {
      return fail(e, "san");
    }
    while (!san.at_end()) {
      std::string name;
      if (const ParseError e = san.try_read_string(kTagSanEntry, name);
          e != ParseError::kNone) {
        return fail(e, "san entry");
      }
      cert.san_dns.push_back(std::move(name));
    }
    if (const ParseError e =
            try_read_date(tbs, kTagNotBefore, cert.validity.not_before);
        e != ParseError::kNone) {
      return fail(e, "not-before");
    }
    if (const ParseError e =
            try_read_date(tbs, kTagNotAfter, cert.validity.not_after);
        e != ParseError::kNone) {
      return fail(e, "not-after");
    }
    std::span<const std::uint8_t> field;
    if (const ParseError e = tbs.try_read_bytes(kTagModulus, field);
        e != ParseError::kNone) {
      return fail(e, "modulus");
    }
    cert.key.n = bn::BigInt::from_bytes(field);
    if (const ParseError e = tbs.try_read_bytes(kTagExponent, field);
        e != ParseError::kNone) {
      return fail(e, "exponent");
    }
    cert.key.e = bn::BigInt::from_bytes(field);
    if (const ParseError e =
            tbs.try_read_string(kTagSigAlg, cert.signature_algorithm);
        e != ParseError::kNone) {
      return fail(e, "signature-algorithm");
    }
    if (!tbs.at_end()) return fail(ParseError::kTrailingGarbage, "tbs");
  }
  std::span<const std::uint8_t> sig;
  if (const ParseError e = r.try_read_bytes(kTagSignature, sig);
      e != ParseError::kNone) {
    return fail(e, "signature");
  }
  cert.signature.assign(sig.begin(), sig.end());
  if (!r.at_end()) return fail(ParseError::kTrailingGarbage, "certificate");
  result.cert = std::move(cert);
  return result;
}

Certificate Certificate::decode(std::span<const std::uint8_t> data) {
  DecodeResult result = try_decode(data);
  if (!result.ok()) {
    throw TlvError(std::string(to_string(result.error)) + " in " +
                   result.field);
  }
  return *std::move(result.cert);
}

crypto::Sha256::Digest Certificate::fingerprint() const {
  return crypto::Sha256::hash(encode());
}

std::string Certificate::fingerprint_hex() const {
  return crypto::digest_hex(fingerprint());
}

bool Certificate::verify_signature(const rsa::RsaPublicKey& signer) const {
  return rsa::verify(signer, encode_tbs(), signature);
}

Certificate Certificate::with_modulus_bit_flipped(std::size_t bit_index) const {
  Certificate out = *this;
  const bn::BigInt mask = bn::BigInt(1) << bit_index;
  out.key.n = out.key.n.bit(bit_index) ? out.key.n - mask : out.key.n + mask;
  return out;
}

Certificate make_issued(const DistinguishedName& subject,
                        const std::vector<std::string>& san_dns,
                        const Validity& validity,
                        const rsa::RsaPublicKey& subject_key,
                        const DistinguishedName& issuer,
                        const rsa::RsaPrivateKey& issuer_key,
                        std::uint64_t serial) {
  Certificate cert;
  cert.serial = serial;
  cert.subject = subject;
  cert.issuer = issuer;
  cert.san_dns = san_dns;
  cert.validity = validity;
  cert.key = subject_key;
  cert.signature = rsa::sign(issuer_key, cert.encode_tbs());
  return cert;
}

Certificate make_self_signed(const DistinguishedName& subject,
                             const std::vector<std::string>& san_dns,
                             const Validity& validity,
                             const rsa::RsaPrivateKey& key,
                             std::uint64_t serial) {
  Certificate cert;
  cert.serial = serial;
  cert.subject = subject;
  cert.issuer = subject;
  cert.san_dns = san_dns;
  cert.validity = validity;
  cert.key = key.pub;
  cert.signature = rsa::sign(key, cert.encode_tbs());
  return cert;
}

}  // namespace weakkeys::cert

#include "cert/distinguished_name.hpp"

#include <stdexcept>

namespace weakkeys::cert {

std::string DistinguishedName::get(const std::string& type) const {
  for (const auto& [t, v] : attributes_) {
    if (t == type) return v;
  }
  return "";
}

bool DistinguishedName::has(const std::string& type) const {
  for (const auto& [t, v] : attributes_) {
    if (t == type) return true;
  }
  return false;
}

std::string DistinguishedName::to_string() const {
  std::string out;
  for (const auto& [t, v] : attributes_) {
    if (!out.empty()) out += ", ";
    out += t;
    out += '=';
    out += v;
  }
  return out;
}

DistinguishedName DistinguishedName::parse(const std::string& text) {
  DistinguishedName dn;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(", ", pos);
    if (end == std::string::npos) end = text.size();
    const std::string part = text.substr(pos, end - pos);
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("bad DN component: " + part);
    dn.add(part.substr(0, eq), part.substr(eq + 1));
    pos = end == text.size() ? end : end + 2;
  }
  return dn;
}

}  // namespace weakkeys::cert

// Arbitrary-precision signed integers, implemented from scratch.
//
// This is the substrate the whole reproduction stands on: the batch GCD
// computation over the full key corpus is feasibility-bound by the
// asymptotics of multiplication and division, exactly as in the paper
// (Section 3.2). Consequently the library provides:
//
//   * schoolbook + Karatsuba multiplication (subquadratic above a threshold),
//   * Knuth Algorithm D division plus Newton-reciprocal (Barrett-style)
//     division that costs O(M(n)) for the huge product/remainder tree nodes,
//   * binary GCD, extended GCD / modular inverse,
//   * Montgomery modular exponentiation (used by Miller-Rabin),
//   * deterministic random generation from an abstract byte source so the
//     simulated device RNGs in src/rng drive key generation directly.
//
// Representation: sign (-1, 0, +1) and little-endian vector of 64-bit limbs
// with no trailing zero limbs (canonical form). Value semantics throughout.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace weakkeys::bn {

using Limb = std::uint64_t;

/// Quotient and remainder pair returned by BigInt::divmod (truncated
/// toward zero). Defined after BigInt below.
struct DivMod;

class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// Conversions from native integers.
  BigInt(std::uint64_t v);  // NOLINT(google-explicit-constructor)
  BigInt(std::int64_t v);   // NOLINT(google-explicit-constructor)
  BigInt(int v) : BigInt(static_cast<std::int64_t>(v)) {}  // NOLINT

  // -- Inspectors ----------------------------------------------------------

  [[nodiscard]] bool is_zero() const { return sign_ == 0; }
  [[nodiscard]] bool is_one() const { return sign_ == 1 && limbs_.size() == 1 && limbs_[0] == 1; }
  [[nodiscard]] bool is_negative() const { return sign_ < 0; }
  [[nodiscard]] bool is_odd() const { return sign_ != 0 && (limbs_[0] & 1); }
  [[nodiscard]] bool is_even() const { return !is_odd(); }
  [[nodiscard]] int sign() const { return sign_; }

  /// Number of significant bits of |x| (0 for zero).
  [[nodiscard]] std::size_t bit_length() const;

  /// Number of limbs in the magnitude (0 for zero).
  [[nodiscard]] std::size_t limb_count() const { return limbs_.size(); }

  /// Bit i (0 = least significant) of the magnitude.
  [[nodiscard]] bool bit(std::size_t i) const;

  /// Value as uint64_t. Throws std::overflow_error if it does not fit or is
  /// negative.
  [[nodiscard]] std::uint64_t to_uint64() const;

  /// Read-only view of the magnitude limbs (little endian).
  [[nodiscard]] std::span<const Limb> limbs() const { return limbs_; }

  // -- Arithmetic ----------------------------------------------------------

  BigInt operator-() const;
  [[nodiscard]] BigInt abs() const;

  friend BigInt operator+(const BigInt& a, const BigInt& b);
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);
  /// Truncated division (rounds toward zero), like C++ integer division.
  /// Throws std::domain_error on division by zero.
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  /// Remainder with sign of the dividend (C++ semantics).
  friend BigInt operator%(const BigInt& a, const BigInt& b);

  BigInt& operator+=(const BigInt& b) { return *this = *this + b; }
  BigInt& operator-=(const BigInt& b) { return *this = *this - b; }
  BigInt& operator*=(const BigInt& b) { return *this = *this * b; }
  BigInt& operator/=(const BigInt& b) { return *this = *this / b; }
  BigInt& operator%=(const BigInt& b) { return *this = *this % b; }

  /// Quotient and remainder in one pass (truncated toward zero).
  [[nodiscard]] static DivMod divmod(const BigInt& a, const BigInt& b);

  /// Left/right shifts of the magnitude (sign preserved; -1 >> 1 == 0).
  friend BigInt operator<<(const BigInt& a, std::size_t bits);
  friend BigInt operator>>(const BigInt& a, std::size_t bits);
  BigInt& operator<<=(std::size_t bits) { return *this = *this << bits; }
  BigInt& operator>>=(std::size_t bits) { return *this = *this >> bits; }

  /// The square of this value (slightly cheaper than x * x at scale).
  [[nodiscard]] BigInt squared() const;

  // -- Comparison ----------------------------------------------------------

  friend bool operator==(const BigInt& a, const BigInt& b) = default;
  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b);

  // -- Construction from strings / bytes ------------------------------------

  /// Parses decimal (optionally signed) text. Throws std::invalid_argument.
  static BigInt from_decimal(const std::string& text);

  /// Parses lowercase/uppercase hex (no 0x prefix, optionally signed).
  static BigInt from_hex(const std::string& text);

  /// Interprets big-endian bytes as an unsigned integer.
  static BigInt from_bytes(std::span<const std::uint8_t> bytes);

  [[nodiscard]] std::string to_decimal() const;
  [[nodiscard]] std::string to_hex() const;

  /// Magnitude as big-endian bytes, no leading zeros ("{}" for zero -> {0}).
  [[nodiscard]] std::vector<std::uint8_t> to_bytes() const;

  // -- Internal-but-shared helpers used by the algorithm files --------------

  /// Builds a value from a limb vector (takes ownership; normalizes).
  static BigInt from_limbs(std::vector<Limb> limbs, int sign = 1);

  /// Low `count` limbs of the magnitude as a non-negative value.
  [[nodiscard]] BigInt low_limbs(std::size_t count) const;

  /// Magnitude shifted right by `count` whole limbs, as a non-negative value.
  [[nodiscard]] BigInt high_limbs_from(std::size_t count) const;

 private:
  friend struct BigIntOps;

  void normalize();

  int sign_ = 0;
  std::vector<Limb> limbs_;
};

struct DivMod {
  BigInt quotient;
  BigInt remainder;
};

std::ostream& operator<<(std::ostream& os, const BigInt& v);

// -- Number theory ----------------------------------------------------------

/// Greatest common divisor of |a| and |b| (binary GCD); gcd(0,0) == 0.
BigInt gcd(const BigInt& a, const BigInt& b);

/// Extended GCD: returns g = gcd(a, b) and x, y with a*x + b*y == g.
struct ExtendedGcd {
  BigInt g;
  BigInt x;
  BigInt y;
};
ExtendedGcd extended_gcd(const BigInt& a, const BigInt& b);

/// Modular inverse of a mod m (m > 1). Throws std::domain_error when
/// gcd(a, m) != 1.
BigInt mod_inverse(const BigInt& a, const BigInt& m);

/// a^e mod m for e >= 0, m > 0. Uses Montgomery arithmetic when m is odd.
BigInt mod_pow(const BigInt& a, const BigInt& e, const BigInt& m);

/// Abstract source of random bytes driving key generation. Implementations
/// include the simulated flawed device RNGs in src/rng.
class RandomSource {
 public:
  virtual ~RandomSource() = default;
  /// Fills `out` with bytes.
  virtual void fill(std::span<std::uint8_t> out) = 0;
};

/// Uniform integer in [0, 2^bits) drawn from `src`.
BigInt random_bits(RandomSource& src, std::size_t bits);

/// Uniform integer in [low, high] (inclusive); requires low <= high.
BigInt random_range(RandomSource& src, const BigInt& low, const BigInt& high);

/// Miller-Rabin primality test with `rounds` random bases from `src`.
/// Deterministic small-prime handling; composite numbers are detected with
/// probability >= 1 - 4^-rounds.
bool is_probable_prime(const BigInt& n, RandomSource& src, int rounds = 16);

/// The first `count` primes (2, 3, 5, ...), computed by sieve.
const std::vector<std::uint32_t>& small_primes(std::size_t count);

/// n mod p for a single small prime (fast limb scan, no allocation).
std::uint64_t mod_small(const BigInt& n, std::uint64_t p);

// Tuning knobs shared with the benchmark suite (see bench/perf_bn.cpp).
struct Tuning {
  /// Operand size (limbs) above which Karatsuba replaces schoolbook.
  static std::size_t& karatsuba_threshold();
  /// Operand size (limbs) above which Toom-3 replaces Karatsuba.
  static std::size_t& toom3_threshold();
  /// Divisor size (limbs) above which Newton-reciprocal division replaces
  /// Knuth Algorithm D.
  static std::size_t& newton_div_threshold();
};

}  // namespace weakkeys::bn

// Internal magnitude-level primitives shared by the BigInt algorithm files.
// Magnitudes are little-endian limb vectors with no trailing zero limbs.
// Not part of the public API.
#pragma once

#include <cstdint>
#include <vector>

#include "bn/bigint.hpp"

namespace weakkeys::bn {

/// Grants the algorithm translation units access to BigInt internals without
/// exposing them publicly.
struct BigIntOps {
  static std::vector<Limb>& limbs(BigInt& x) { return x.limbs_; }
  static const std::vector<Limb>& limbs(const BigInt& x) { return x.limbs_; }
  static int sign(const BigInt& x) { return x.sign_; }
  static BigInt make(std::vector<Limb> limbs, int sign) {
    return BigInt::from_limbs(std::move(limbs), sign);
  }
};

namespace detail {

using LimbVec = std::vector<Limb>;

/// Removes trailing zero limbs.
void trim(LimbVec& v);

/// Three-way magnitude comparison: -1, 0, +1.
int cmp(const LimbVec& a, const LimbVec& b);

/// a + b.
LimbVec add(const LimbVec& a, const LimbVec& b);

/// a - b; requires a >= b.
LimbVec sub(const LimbVec& a, const LimbVec& b);

/// a << bits / a >> bits.
LimbVec shl(const LimbVec& a, std::size_t bits);
LimbVec shr(const LimbVec& a, std::size_t bits);

/// a * b; dispatches schoolbook vs Karatsuba on operand size.
LimbVec mul(const LimbVec& a, const LimbVec& b);

/// Schoolbook product, exposed for threshold benchmarking.
LimbVec mul_schoolbook(const LimbVec& a, const LimbVec& b);

/// Karatsuba product (recursive; falls back to schoolbook below threshold).
LimbVec mul_karatsuba(const LimbVec& a, const LimbVec& b);

/// Toom-3 product (five-point evaluation/interpolation; recursive through
/// the mul() dispatcher, falling back to Karatsuba below threshold).
LimbVec mul_toom3(const LimbVec& a, const LimbVec& b);

/// Floor division of magnitudes: a = q*b + r, 0 <= r < b. b must be nonzero.
/// Dispatches Knuth Algorithm D vs Newton-reciprocal division on size.
void divmod(const LimbVec& a, const LimbVec& b, LimbVec& q, LimbVec& r);

/// Knuth Algorithm D (quadratic), exposed for threshold benchmarking.
void divmod_knuth(const LimbVec& a, const LimbVec& b, LimbVec& q, LimbVec& r);

/// Newton-reciprocal division (O(M(n))), exposed for benchmarking. Requires
/// b larger than a handful of limbs.
void divmod_newton(const LimbVec& a, const LimbVec& b, LimbVec& q, LimbVec& r);

/// Significant bits of the magnitude (0 for empty).
std::size_t bit_length(const LimbVec& v);

}  // namespace detail
}  // namespace weakkeys::bn

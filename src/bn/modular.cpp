// Modular exponentiation.
//
// Odd moduli (the common case: Miller-Rabin on prime candidates, RSA ops)
// use Montgomery multiplication (CIOS); even moduli fall back to
// multiply-then-divide. Exponentiation is left-to-right binary.
#include <stdexcept>

#include "bn/detail.hpp"

namespace weakkeys::bn {

namespace {

using detail::LimbVec;

/// -m0^{-1} mod 2^64 for odd m0 (Newton iteration doubles correct bits).
Limb mont_n0_prime(Limb m0) {
  Limb x = m0;  // correct to 3 bits
  for (int i = 0; i < 5; ++i) x *= 2 - m0 * x;
  return ~x + 1;  // == -x mod 2^64, with x = m0^{-1}
}

/// Montgomery arithmetic context for an odd modulus.
class MontgomeryCtx {
 public:
  explicit MontgomeryCtx(const BigInt& m)
      : m_(BigIntOps::limbs(m)), n_(m_.size()), n0_(mont_n0_prime(m_[0])) {
    // rr = beta^(2n) mod m, used to enter Montgomery form.
    LimbVec beta2n(2 * n_ + 1, 0);
    beta2n[2 * n_] = 1;
    LimbVec q;
    detail::divmod(beta2n, m_, q, rr_);
    rr_.resize(n_, 0);
  }

  /// CIOS Montgomery product: a*b*beta^{-n} mod m. Inputs/outputs are
  /// n-limb little-endian arrays (values < m).
  void mul(const LimbVec& a, const LimbVec& b, LimbVec& out) const {
    LimbVec t(n_ + 2, 0);
    for (std::size_t i = 0; i < n_; ++i) {
      // t += a[i] * b
      unsigned __int128 carry = 0;
      const Limb ai = a[i];
      for (std::size_t j = 0; j < n_; ++j) {
        carry += static_cast<unsigned __int128>(ai) * b[j] + t[j];
        t[j] = static_cast<Limb>(carry);
        carry >>= 64;
      }
      carry += t[n_];
      t[n_] = static_cast<Limb>(carry);
      t[n_ + 1] = static_cast<Limb>(carry >> 64);

      // t += (t[0] * n0') * m, then t >>= 64
      const Limb mi = t[0] * n0_;
      carry = static_cast<unsigned __int128>(mi) * m_[0] + t[0];
      carry >>= 64;
      for (std::size_t j = 1; j < n_; ++j) {
        carry += static_cast<unsigned __int128>(mi) * m_[j] + t[j];
        t[j - 1] = static_cast<Limb>(carry);
        carry >>= 64;
      }
      carry += t[n_];
      t[n_ - 1] = static_cast<Limb>(carry);
      t[n_] = t[n_ + 1] + static_cast<Limb>(carry >> 64);
      t[n_ + 1] = 0;
    }
    // Conditional final subtraction: t may be in [0, 2m).
    t.resize(n_ + 1);
    LimbVec tv = t;
    detail::trim(tv);
    if (detail::cmp(tv, m_) >= 0) tv = detail::sub(tv, m_);
    tv.resize(n_, 0);
    out = std::move(tv);
  }

  [[nodiscard]] LimbVec to_mont(const BigInt& x) const {
    LimbVec xv(BigIntOps::limbs(x));
    xv.resize(n_, 0);
    LimbVec out;
    mul(xv, rr_, out);
    return out;
  }

  [[nodiscard]] BigInt from_mont(const LimbVec& x) const {
    LimbVec one(n_, 0);
    one[0] = 1;
    LimbVec out;
    mul(x, one, out);
    detail::trim(out);
    return BigIntOps::make(std::move(out), 1);
  }

  [[nodiscard]] LimbVec one_mont() const {
    // beta^n mod m == to_mont(1)
    return to_mont(BigInt(1));
  }

 private:
  LimbVec m_;
  std::size_t n_;
  Limb n0_;
  LimbVec rr_;
};

BigInt mod_pow_generic(const BigInt& a, const BigInt& e, const BigInt& m) {
  BigInt base = a % m;
  if (base.is_negative()) base += m;
  BigInt result = 1 % m;
  const std::size_t bits = e.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    result = result.squared() % m;
    if (e.bit(i)) result = (result * base) % m;
  }
  return result;
}

}  // namespace

BigInt mod_pow(const BigInt& a, const BigInt& e, const BigInt& m) {
  if (m.sign() <= 0) throw std::domain_error("modulus must be positive");
  if (e.is_negative()) throw std::domain_error("negative exponent");
  if (m.is_one()) return BigInt{};
  if (m.is_even()) return mod_pow_generic(a, e, m);

  BigInt base = a % m;
  if (base.is_negative()) base += m;

  const MontgomeryCtx ctx(m);
  const LimbVec base_m = ctx.to_mont(base);
  LimbVec acc = ctx.one_mont();
  const std::size_t bits = e.bit_length();
  LimbVec tmp;
  for (std::size_t i = bits; i-- > 0;) {
    ctx.mul(acc, acc, tmp);
    acc.swap(tmp);
    if (e.bit(i)) {
      ctx.mul(acc, base_m, tmp);
      acc.swap(tmp);
    }
  }
  return ctx.from_mont(acc);
}

}  // namespace weakkeys::bn

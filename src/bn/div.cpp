// Division.
//
// Two algorithms, dispatched on operand shape:
//  * Knuth Algorithm D (TAOCP vol. 2, 4.3.1; the divmnu64 formulation) —
//    quadratic, excellent for modulus-sized operands.
//  * Newton-reciprocal division — computes I = floor(beta^(2n)/B) by
//    recursive Newton iteration (precision doubling), then reduces the
//    dividend in Barrett steps of 2n limbs. Costs O(M(n)) per step and keeps
//    the remainder tree of the batch GCD computation quasilinear, which is
//    what makes the paper's 81M-key computation (and our corpus-scale one)
//    feasible at all.
//
// Every approximate step ends in an exact correction loop, so correctness
// never depends on the error analysis; the analysis only guarantees the
// loops run O(1) iterations.
#include <bit>
#include <stdexcept>

#include "bn/detail.hpp"
#include "obs/mem.hpp"
#include "obs/prof_stack.hpp"

namespace weakkeys::bn {

std::size_t& Tuning::newton_div_threshold() {
  // Measured crossover vs Knuth-D is ~7-8k divisor limbs (1.7x at 16k,
  // 2.2x at 32k, and widening as O(n^2) pulls away). Only the top few
  // levels of a corpus-scale remainder tree clear this bar — but those
  // levels are where nearly all the division time goes.
  static std::size_t threshold = 6000;  // limbs; tuned by bench/perf_bn
  return threshold;
}

namespace detail {

namespace {

constexpr unsigned __int128 kBase = static_cast<unsigned __int128>(1) << 64;

void divmod_single_limb(const LimbVec& a, Limb d, LimbVec& q, LimbVec& r) {
  q.assign(a.size(), 0);
  unsigned __int128 rem = 0;
  for (std::size_t i = a.size(); i-- > 0;) {
    const unsigned __int128 cur = (rem << 64) | a[i];
    q[i] = static_cast<Limb>(cur / d);
    rem = cur % d;
  }
  trim(q);
  r.clear();
  if (rem != 0) r.push_back(static_cast<Limb>(rem));
}

}  // namespace

void divmod_knuth(const LimbVec& a, const LimbVec& b, LimbVec& q, LimbVec& r) {
  if (b.empty()) throw std::domain_error("division by zero");
  if (cmp(a, b) < 0) {
    q.clear();
    r = a;
    trim(r);
    return;
  }
  if (b.size() == 1) {
    divmod_single_limb(a, b[0], q, r);
    return;
  }

  // Normalize so the divisor's top bit is set.
  const unsigned s = static_cast<unsigned>(std::countl_zero(b.back()));
  LimbVec v = shl(b, s);
  LimbVec u = shl(a, s);
  const std::size_t n = v.size();
  u.push_back(0);  // extra high limb for the first iteration
  const std::size_t m = u.size() - n - 1;  // quotient has m+1 digits

  q.assign(m + 1, 0);
  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate q[j] from the top two dividend limbs and top divisor limb.
    const unsigned __int128 num =
        (static_cast<unsigned __int128>(u[j + n]) << 64) | u[j + n - 1];
    unsigned __int128 qhat = num / v[n - 1];
    unsigned __int128 rhat = num % v[n - 1];
    while (qhat >= kBase ||
           qhat * v[n - 2] > ((rhat << 64) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= kBase) break;
    }

    // Multiply-subtract qhat * v from u[j .. j+n].
    Limb qh = static_cast<Limb>(qhat);
    unsigned __int128 borrow = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const unsigned __int128 p = static_cast<unsigned __int128>(qh) * v[i];
      const __int128 t = static_cast<__int128>(static_cast<unsigned __int128>(u[i + j])) -
                         static_cast<__int128>(borrow) -
                         static_cast<__int128>(static_cast<Limb>(p));
      u[i + j] = static_cast<Limb>(t);
      borrow = static_cast<unsigned __int128>(p >> 64) -
               static_cast<unsigned __int128>(t >> 64);
    }
    const __int128 t = static_cast<__int128>(static_cast<unsigned __int128>(u[j + n])) -
                       static_cast<__int128>(borrow);
    u[j + n] = static_cast<Limb>(t);

    if (t < 0) {  // estimate was one too large: add divisor back
      --qh;
      unsigned __int128 carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        carry += static_cast<unsigned __int128>(u[i + j]) + v[i];
        u[i + j] = static_cast<Limb>(carry);
        carry >>= 64;
      }
      u[j + n] += static_cast<Limb>(carry);
    }
    q[j] = qh;
  }

  trim(q);
  u.resize(n);
  r = shr(u, s);
}

namespace {

using Ops = BigIntOps;

BigInt make_pos(LimbVec v) { return Ops::make(std::move(v), 1); }

/// One limb-vector beta power: 2^(64*limbs).
BigInt beta_pow(std::size_t limbs) {
  LimbVec v(limbs + 1, 0);
  v[limbs] = 1;
  return make_pos(std::move(v));
}

/// Exact reciprocal I = floor(beta^(2n) / B) for a normalized n-limb B
/// (top bit set). Recursive Newton iteration with exact final correction.
BigInt invert(const BigInt& b) {
  const std::size_t n = Ops::limbs(b).size();
  constexpr std::size_t kBaseCase = 16;
  if (n <= kBaseCase) {
    LimbVec num(2 * n + 1, 0);
    num[2 * n] = 1;
    LimbVec q, r;
    divmod_knuth(num, Ops::limbs(b), q, r);
    return make_pos(std::move(q));
  }

  // Reciprocal of the top h limbs, then one Newton refinement to n limbs.
  const std::size_t h = (n + 1) / 2;
  const BigInt bh = b.high_limbs_from(n - h);
  const BigInt ih = invert(bh);

  const BigInt x0 = ih << (64 * (n - h));
  const BigInt beta2n = beta_pow(2 * n);
  const BigInt e = beta2n - x0 * b;                 // signed residual
  BigInt x1 = x0 + ((x0 * e) >> (64 * 2 * n));      // Newton step

  // Exact correction: make beta^(2n) - x1*b land in [0, b).
  BigInt d = beta2n - x1 * b;
  while (d.is_negative()) {
    x1 -= 1;
    d += b;
  }
  while (d >= b) {
    x1 += 1;
    d -= b;
  }
  return x1;
}

/// Barrett step: divides A (< beta^(2n)) by normalized n-limb B using the
/// precomputed exact reciprocal I = floor(beta^(2n)/B).
void barrett_step(const BigInt& a, const BigInt& b, const BigInt& i,
                  std::size_t n, BigInt& q, BigInt& r) {
  const BigInt a1 = a.high_limbs_from(n);
  q = (a1 * i) >> (64 * n);
  r = a - q * b;
  while (r.is_negative()) {
    q -= 1;
    r += b;
  }
  while (r >= b) {
    q += 1;
    r -= b;
  }
}

}  // namespace

void divmod_newton(const LimbVec& a, const LimbVec& b, LimbVec& q, LimbVec& r) {
  if (b.empty()) throw std::domain_error("division by zero");
  if (cmp(a, b) < 0) {
    q.clear();
    r = a;
    trim(r);
    return;
  }

  const unsigned s = static_cast<unsigned>(std::countl_zero(b.back()));
  const BigInt bb = make_pos(shl(b, s));
  BigInt rem = make_pos(shl(a, s));
  const std::size_t n = Ops::limbs(bb).size();
  const BigInt inv = invert(bb);

  BigInt quot;  // accumulated quotient
  while (rem >= bb) {
    const std::size_t k = rem.limb_count();
    if (k <= 2 * n) {
      BigInt qs, rs;
      barrett_step(rem, bb, inv, n, qs, rs);
      quot += qs;
      rem = std::move(rs);
    } else {
      // Peel off the top 2n limbs, divide them, and fold the remainder back.
      const std::size_t j = k - 2 * n;
      const BigInt hi = rem.high_limbs_from(j);
      const BigInt lo = rem.low_limbs(j);
      BigInt qs, rs;
      barrett_step(hi, bb, inv, n, qs, rs);
      quot += qs << (64 * j);
      rem = (rs << (64 * j)) + lo;
    }
  }

  q = Ops::limbs(quot);
  trim(q);
  r = shr(Ops::limbs(rem), s);
}

void divmod(const LimbVec& a, const LimbVec& b, LimbVec& q, LimbVec& r) {
  static const int limbs_label = obs::mem::register_label("bn.limbs");
  obs::MemScope mem_scope(limbs_label, /*only_if_unattributed=*/true);
  const std::size_t threshold = Tuning::newton_div_threshold();
  const bool big_divisor = b.size() >= threshold;
  const bool big_quotient = a.size() >= b.size() + threshold / 2;
  if (big_divisor && big_quotient) {
    obs::prof::Frame frame("bn.div.newton");
    divmod_newton(a, b, q, r);
  } else {
    obs::prof::Frame frame("bn.div.knuth");
    divmod_knuth(a, b, q, r);
  }
}

}  // namespace detail
}  // namespace weakkeys::bn

#include "bn/bigint.hpp"

#include <bit>
#include <ostream>
#include <stdexcept>

#include "bn/detail.hpp"

namespace weakkeys::bn {

namespace detail {

void trim(LimbVec& v) {
  while (!v.empty() && v.back() == 0) v.pop_back();
}

int cmp(const LimbVec& a, const LimbVec& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

LimbVec add(const LimbVec& a, const LimbVec& b) {
  const LimbVec& hi = a.size() >= b.size() ? a : b;
  const LimbVec& lo = a.size() >= b.size() ? b : a;
  LimbVec out;
  out.reserve(hi.size() + 1);
  unsigned __int128 carry = 0;
  for (std::size_t i = 0; i < hi.size(); ++i) {
    carry += hi[i];
    if (i < lo.size()) carry += lo[i];
    out.push_back(static_cast<Limb>(carry));
    carry >>= 64;
  }
  if (carry) out.push_back(static_cast<Limb>(carry));
  return out;
}

LimbVec sub(const LimbVec& a, const LimbVec& b) {
  LimbVec out;
  out.reserve(a.size());
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Limb bi = i < b.size() ? b[i] : 0;
    const Limb ai = a[i];
    const Limb d1 = ai - bi;
    const std::uint64_t borrow1 = ai < bi;
    const Limb d2 = d1 - borrow;
    const std::uint64_t borrow2 = d1 < borrow;
    out.push_back(d2);
    borrow = borrow1 | borrow2;
  }
  trim(out);
  return out;
}

LimbVec shl(const LimbVec& a, std::size_t bits) {
  if (a.empty()) return {};
  const std::size_t limb_shift = bits / 64;
  const unsigned bit_shift = bits % 64;
  LimbVec out(limb_shift, 0);
  out.reserve(a.size() + limb_shift + 1);
  if (bit_shift == 0) {
    out.insert(out.end(), a.begin(), a.end());
  } else {
    Limb carry = 0;
    for (Limb limb : a) {
      out.push_back((limb << bit_shift) | carry);
      carry = limb >> (64 - bit_shift);
    }
    if (carry) out.push_back(carry);
  }
  trim(out);
  return out;
}

LimbVec shr(const LimbVec& a, std::size_t bits) {
  const std::size_t limb_shift = bits / 64;
  if (limb_shift >= a.size()) return {};
  const unsigned bit_shift = bits % 64;
  LimbVec out;
  out.reserve(a.size() - limb_shift);
  if (bit_shift == 0) {
    out.assign(a.begin() + static_cast<std::ptrdiff_t>(limb_shift), a.end());
  } else {
    for (std::size_t i = limb_shift; i < a.size(); ++i) {
      Limb limb = a[i] >> bit_shift;
      if (i + 1 < a.size()) limb |= a[i + 1] << (64 - bit_shift);
      out.push_back(limb);
    }
  }
  trim(out);
  return out;
}

std::size_t bit_length(const LimbVec& v) {
  if (v.empty()) return 0;
  return v.size() * 64 - static_cast<std::size_t>(std::countl_zero(v.back()));
}

}  // namespace detail

using detail::LimbVec;

void BigInt::normalize() {
  detail::trim(limbs_);
  if (limbs_.empty()) sign_ = 0;
}

BigInt::BigInt(std::uint64_t v) {
  if (v != 0) {
    sign_ = 1;
    limbs_.push_back(v);
  }
}

BigInt::BigInt(std::int64_t v) {
  if (v != 0) {
    sign_ = v > 0 ? 1 : -1;
    // Careful with INT64_MIN: negate in unsigned space.
    limbs_.push_back(v > 0 ? static_cast<Limb>(v)
                           : ~static_cast<Limb>(v) + 1);
  }
}

BigInt BigInt::from_limbs(std::vector<Limb> limbs, int sign) {
  BigInt out;
  out.limbs_ = std::move(limbs);
  out.sign_ = sign >= 0 ? 1 : -1;
  out.normalize();
  return out;
}

std::size_t BigInt::bit_length() const { return detail::bit_length(limbs_); }

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

std::uint64_t BigInt::to_uint64() const {
  if (sign_ < 0) throw std::overflow_error("negative value in to_uint64");
  if (limbs_.size() > 1) throw std::overflow_error("value exceeds uint64_t");
  return limbs_.empty() ? 0 : limbs_[0];
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  out.sign_ = -out.sign_;
  return out;
}

BigInt BigInt::abs() const {
  BigInt out = *this;
  if (out.sign_ < 0) out.sign_ = 1;
  return out;
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  if (a.sign_ == 0) return b;
  if (b.sign_ == 0) return a;
  if (a.sign_ == b.sign_)
    return BigInt::from_limbs(detail::add(a.limbs_, b.limbs_), a.sign_);
  const int c = detail::cmp(a.limbs_, b.limbs_);
  if (c == 0) return BigInt{};
  if (c > 0) return BigInt::from_limbs(detail::sub(a.limbs_, b.limbs_), a.sign_);
  return BigInt::from_limbs(detail::sub(b.limbs_, a.limbs_), b.sign_);
}

BigInt operator-(const BigInt& a, const BigInt& b) { return a + (-b); }

BigInt operator*(const BigInt& a, const BigInt& b) {
  if (a.sign_ == 0 || b.sign_ == 0) return BigInt{};
  return BigInt::from_limbs(detail::mul(a.limbs_, b.limbs_), a.sign_ * b.sign_);
}

BigInt BigInt::squared() const {
  if (sign_ == 0) return BigInt{};
  return from_limbs(detail::mul(limbs_, limbs_), 1);
}

DivMod BigInt::divmod(const BigInt& a, const BigInt& b) {
  if (b.sign_ == 0) throw std::domain_error("division by zero");
  if (a.sign_ == 0) return {};
  if (detail::cmp(a.limbs_, b.limbs_) < 0) return {BigInt{}, a};
  LimbVec q, r;
  detail::divmod(a.limbs_, b.limbs_, q, r);
  DivMod out;
  out.quotient = from_limbs(std::move(q), a.sign_ * b.sign_);
  out.remainder = from_limbs(std::move(r), a.sign_);
  return out;
}

BigInt operator/(const BigInt& a, const BigInt& b) {
  return BigInt::divmod(a, b).quotient;
}

BigInt operator%(const BigInt& a, const BigInt& b) {
  return BigInt::divmod(a, b).remainder;
}

BigInt operator<<(const BigInt& a, std::size_t bits) {
  if (a.sign_ == 0) return a;
  return BigInt::from_limbs(detail::shl(a.limbs_, bits), a.sign_);
}

BigInt operator>>(const BigInt& a, std::size_t bits) {
  if (a.sign_ == 0) return a;
  return BigInt::from_limbs(detail::shr(a.limbs_, bits), a.sign_);
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) {
  if (a.sign_ != b.sign_) return a.sign_ <=> b.sign_;
  const int c = detail::cmp(a.limbs_, b.limbs_);
  const int signed_c = a.sign_ >= 0 ? c : -c;
  return signed_c <=> 0;
}

BigInt BigInt::low_limbs(std::size_t count) const {
  if (count >= limbs_.size()) return abs();
  return from_limbs(LimbVec(limbs_.begin(),
                            limbs_.begin() + static_cast<std::ptrdiff_t>(count)),
                    1);
}

BigInt BigInt::high_limbs_from(std::size_t count) const {
  if (count >= limbs_.size()) return BigInt{};
  return from_limbs(LimbVec(limbs_.begin() + static_cast<std::ptrdiff_t>(count),
                            limbs_.end()),
                    1);
}

std::ostream& operator<<(std::ostream& os, const BigInt& v) {
  return os << v.to_decimal();
}

}  // namespace weakkeys::bn

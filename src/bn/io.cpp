// String and byte conversions for BigInt.
#include <algorithm>
#include <stdexcept>

#include "bn/detail.hpp"

namespace weakkeys::bn {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument(std::string("bad hex digit: ") + c);
}

/// Strips an optional sign, returning (text-after-sign, negative?).
std::pair<std::string_view, bool> strip_sign(const std::string& text) {
  std::string_view sv = text;
  bool negative = false;
  if (!sv.empty() && (sv.front() == '+' || sv.front() == '-')) {
    negative = sv.front() == '-';
    sv.remove_prefix(1);
  }
  if (sv.empty()) throw std::invalid_argument("empty number literal");
  return {sv, negative};
}

}  // namespace

BigInt BigInt::from_decimal(const std::string& text) {
  const auto [digits, negative] = strip_sign(text);
  BigInt out;
  // Consume 19 digits at a time (19 digits fit a 64-bit limb).
  constexpr std::uint64_t kPow10[] = {
      1ULL,
      10ULL,
      100ULL,
      1000ULL,
      10000ULL,
      100000ULL,
      1000000ULL,
      10000000ULL,
      100000000ULL,
      1000000000ULL,
      10000000000ULL,
      100000000000ULL,
      1000000000000ULL,
      10000000000000ULL,
      100000000000000ULL,
      1000000000000000ULL,
      10000000000000000ULL,
      100000000000000000ULL,
      1000000000000000000ULL,
      10000000000000000000ULL};
  std::size_t pos = 0;
  while (pos < digits.size()) {
    const std::size_t take = std::min<std::size_t>(19, digits.size() - pos);
    std::uint64_t chunk = 0;
    for (std::size_t i = 0; i < take; ++i) {
      const char c = digits[pos + i];
      if (c < '0' || c > '9')
        throw std::invalid_argument(std::string("bad decimal digit: ") + c);
      chunk = chunk * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out = out * BigInt(kPow10[take]) + BigInt(chunk);
    pos += take;
  }
  return negative ? -out : out;
}

BigInt BigInt::from_hex(const std::string& text) {
  const auto [digits, negative] = strip_sign(text);
  BigInt out;
  // Build limbs directly, 16 hex digits per limb, from the low end.
  std::vector<Limb> limbs;
  std::size_t end = digits.size();
  while (end > 0) {
    const std::size_t begin = end >= 16 ? end - 16 : 0;
    Limb limb = 0;
    for (std::size_t i = begin; i < end; ++i) {
      limb = limb << 4 | static_cast<Limb>(hex_digit(digits[i]));
    }
    limbs.push_back(limb);
    end = begin;
  }
  out = from_limbs(std::move(limbs), negative ? -1 : 1);
  return out;
}

BigInt BigInt::from_bytes(std::span<const std::uint8_t> bytes) {
  std::vector<Limb> limbs((bytes.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    // bytes are big-endian; byte i contributes to bit offset 8*(size-1-i).
    const std::size_t bit = 8 * (bytes.size() - 1 - i);
    limbs[bit / 64] |= static_cast<Limb>(bytes[i]) << (bit % 64);
  }
  return from_limbs(std::move(limbs), 1);
}

std::string BigInt::to_decimal() const {
  if (is_zero()) return "0";
  std::string out;
  BigInt value = abs();
  const BigInt chunk_div(std::uint64_t{10000000000000000000ULL});  // 10^19
  std::vector<std::uint64_t> chunks;
  while (!value.is_zero()) {
    auto [q, r] = divmod(value, chunk_div);
    chunks.push_back(r.is_zero() ? 0 : r.to_uint64());
    value = std::move(q);
  }
  // Highest chunk without padding, the rest zero-padded to 19 digits.
  out = std::to_string(chunks.back());
  for (std::size_t i = chunks.size() - 1; i-- > 0;) {
    std::string part = std::to_string(chunks[i]);
    out.append(19 - part.size(), '0');
    out += part;
  }
  if (is_negative()) out.insert(out.begin(), '-');
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      out.push_back(kDigits[(limbs_[i] >> shift) & 0xf]);
    }
  }
  const std::size_t first = out.find_first_not_of('0');
  out.erase(0, first);
  if (is_negative()) out.insert(out.begin(), '-');
  return out;
}

std::vector<std::uint8_t> BigInt::to_bytes() const {
  if (is_zero()) return {0};
  const std::size_t bytes = (bit_length() + 7) / 8;
  std::vector<std::uint8_t> out(bytes, 0);
  for (std::size_t i = 0; i < bytes; ++i) {
    const std::size_t bit = 8 * (bytes - 1 - i);
    out[i] = static_cast<std::uint8_t>(limbs_[bit / 64] >> (bit % 64));
  }
  return out;
}

}  // namespace weakkeys::bn

// Primality testing and random generation.
//
// Miller-Rabin with random bases drawn from the caller's RandomSource keeps
// the whole key-generation path deterministic under a simulated device RNG —
// which is precisely how the flawed devices in the study end up sharing
// primes.
#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>

#include "bn/detail.hpp"

namespace weakkeys::bn {

const std::vector<std::uint32_t>& small_primes(std::size_t count) {
  static std::mutex mutex;
  static std::vector<std::uint32_t> primes;
  // One stable vector per requested count, so returned references stay valid.
  static std::map<std::size_t, std::vector<std::uint32_t>> views;

  std::lock_guard lock(mutex);
  if (primes.size() < count) {
    // Sieve with a generous bound; the nth prime is below
    // n*(ln n + ln ln n) for n >= 6.
    const double n = static_cast<double>(std::max<std::size_t>(count, 6));
    const double bound_d = n * (std::log(n) + std::log(std::log(n))) + 16;
    const auto bound = static_cast<std::size_t>(bound_d);
    std::vector<bool> composite(bound + 1, false);
    primes.clear();
    for (std::size_t i = 2; i <= bound; ++i) {
      if (composite[i]) continue;
      primes.push_back(static_cast<std::uint32_t>(i));
      for (std::size_t j = i * i; j <= bound; j += i) composite[j] = true;
    }
  }
  auto& view = views[count];
  if (view.size() != count) {
    view.assign(primes.begin(),
                primes.begin() + static_cast<std::ptrdiff_t>(count));
  }
  return view;
}

std::uint64_t mod_small(const BigInt& n, std::uint64_t p) {
  if (p == 0) throw std::domain_error("mod by zero");
  unsigned __int128 rem = 0;
  const auto limbs = n.limbs();
  for (std::size_t i = limbs.size(); i-- > 0;) {
    rem = ((rem << 64) | limbs[i]) % p;
  }
  return static_cast<std::uint64_t>(rem);
}

BigInt random_bits(RandomSource& src, std::size_t bits) {
  if (bits == 0) return BigInt{};
  const std::size_t bytes = (bits + 7) / 8;
  std::vector<std::uint8_t> buf(bytes);
  src.fill(buf);
  const unsigned excess = static_cast<unsigned>(bytes * 8 - bits);
  buf[0] &= static_cast<std::uint8_t>(0xffu >> excess);
  return BigInt::from_bytes(buf);
}

BigInt random_range(RandomSource& src, const BigInt& low, const BigInt& high) {
  if (low > high) throw std::invalid_argument("random_range: low > high");
  const BigInt span = high - low + BigInt(1);
  const std::size_t bits = span.bit_length();
  // Rejection sampling: expected < 2 draws.
  for (;;) {
    const BigInt candidate = random_bits(src, bits);
    if (candidate < span) return low + candidate;
  }
}

bool is_probable_prime(const BigInt& n, RandomSource& src, int rounds) {
  if (n < BigInt(2)) return false;
  // Deterministic handling of small values and small factors.
  const auto& primes = small_primes(64);
  for (const std::uint32_t p : primes) {
    if (n == BigInt(std::uint64_t{p})) return true;
    if (mod_small(n, p) == 0) return false;
  }

  // n - 1 = d * 2^r with d odd.
  const BigInt n_minus_1 = n - BigInt(1);
  std::size_t r = 0;
  BigInt d = n_minus_1;
  while (d.is_even()) {
    d >>= 1;
    ++r;
  }

  const BigInt two(2);
  for (int round = 0; round < rounds; ++round) {
    const BigInt a = random_range(src, two, n - two);
    BigInt x = mod_pow(a, d, n);
    if (x.is_one() || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 1; i < r; ++i) {
      x = x.squared() % n;
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

}  // namespace weakkeys::bn

// Multiplication: schoolbook below the Karatsuba threshold, Karatsuba above.
//
// The product tree over the full key corpus multiplies numbers of hundreds of
// thousands of limbs; a quadratic multiply would make the batch GCD
// computation infeasible (Section 3.2 of the paper), so the subquadratic path
// is load-bearing, not an optimization nicety.
#include "bn/detail.hpp"
#include "obs/mem.hpp"
#include "obs/prof_stack.hpp"

namespace weakkeys::bn {

std::size_t& Tuning::karatsuba_threshold() {
  static std::size_t threshold = 24;  // limbs; tuned by bench/perf_bn
  return threshold;
}

std::size_t& Tuning::toom3_threshold() {
  // Measured crossover vs Karatsuba on this implementation is ~16k limbs
  // (1.2x at 64k, 1.6x at 256k — the product-tree root scale). Below that
  // the extra evaluation/interpolation passes cost more than the saved
  // multiplication.
  static std::size_t threshold = 12000;  // limbs; tuned by bench/perf_bn
  return threshold;
}

namespace detail {

LimbVec mul_schoolbook(const LimbVec& a, const LimbVec& b) {
  if (a.empty() || b.empty()) return {};
  LimbVec out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    unsigned __int128 carry = 0;
    const Limb ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      carry += static_cast<unsigned __int128>(ai) * b[j] + out[i + j];
      out[i + j] = static_cast<Limb>(carry);
      carry >>= 64;
    }
    out[i + b.size()] = static_cast<Limb>(carry);
  }
  trim(out);
  return out;
}

namespace {

LimbVec take_low(const LimbVec& v, std::size_t count) {
  LimbVec out(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(
                                         std::min(count, v.size())));
  trim(out);
  return out;
}

LimbVec take_high(const LimbVec& v, std::size_t from) {
  if (from >= v.size()) return {};
  LimbVec out(v.begin() + static_cast<std::ptrdiff_t>(from), v.end());
  trim(out);
  return out;
}

/// out += v << (shift limbs). out must already be large enough.
void add_shifted_into(LimbVec& out, const LimbVec& v, std::size_t shift) {
  unsigned __int128 carry = 0;
  std::size_t i = 0;
  for (; i < v.size(); ++i) {
    carry += out[shift + i];
    carry += v[i];
    out[shift + i] = static_cast<Limb>(carry);
    carry >>= 64;
  }
  while (carry) {
    carry += out[shift + i];
    out[shift + i] = static_cast<Limb>(carry);
    carry >>= 64;
    ++i;
  }
}

/// out -= v << (shift limbs); requires out >= v << shift.
void sub_shifted_into(LimbVec& out, const LimbVec& v, std::size_t shift) {
  std::uint64_t borrow = 0;
  std::size_t i = 0;
  for (; i < v.size(); ++i) {
    const Limb oi = out[shift + i];
    const Limb d1 = oi - v[i];
    const std::uint64_t b1 = oi < v[i];
    const Limb d2 = d1 - borrow;
    const std::uint64_t b2 = d1 < borrow;
    out[shift + i] = d2;
    borrow = b1 | b2;
  }
  while (borrow) {
    const Limb oi = out[shift + i];
    out[shift + i] = oi - borrow;
    borrow = oi < borrow;
    ++i;
  }
}

}  // namespace

LimbVec mul_karatsuba(const LimbVec& a, const LimbVec& b) {
  const std::size_t threshold = Tuning::karatsuba_threshold();
  if (std::min(a.size(), b.size()) < threshold) return mul_schoolbook(a, b);

  // Split at half of the larger operand: x = x1*B^m + x0.
  const std::size_t m = std::max(a.size(), b.size()) / 2;
  const LimbVec a0 = take_low(a, m), a1 = take_high(a, m);
  const LimbVec b0 = take_low(b, m), b1 = take_high(b, m);

  const LimbVec z0 = mul_karatsuba(a0, b0);
  const LimbVec z2 = mul_karatsuba(a1, b1);
  const LimbVec z1 = mul_karatsuba(add(a0, a1), add(b0, b1));

  // result = z2*B^2m + (z1 - z2 - z0)*B^m + z0.
  LimbVec out(a.size() + b.size() + 1, 0);
  add_shifted_into(out, z0, 0);
  add_shifted_into(out, z1, m);
  sub_shifted_into(out, z0, m);
  sub_shifted_into(out, z2, m);
  add_shifted_into(out, z2, 2 * m);
  trim(out);
  return out;
}

// Toom-3: split x = x2*B^2m + x1*B^m + x0 and evaluate the product
// polynomial c(t) = c0 + c1 t + ... + c4 t^4 at t in {0, 1, -1, 2, inf}.
// Implemented over signed BigInts (v(-1) can be negative); the exact
// divisions in the interpolation all act on provably nonnegative values.
LimbVec mul_toom3(const LimbVec& a, const LimbVec& b) {
  if (std::min(a.size(), b.size()) < Tuning::toom3_threshold())
    return mul_karatsuba(a, b);

  using Ops = BigIntOps;
  const std::size_t m = (std::max(a.size(), b.size()) + 2) / 3;
  auto piece = [m](const LimbVec& v, std::size_t index) {
    const std::size_t begin = std::min(index * m, v.size());
    const std::size_t end = std::min(begin + m, v.size());
    LimbVec out(v.begin() + static_cast<std::ptrdiff_t>(begin),
                v.begin() + static_cast<std::ptrdiff_t>(end));
    trim(out);
    return Ops::make(std::move(out), 1);
  };
  const BigInt a0 = piece(a, 0), a1 = piece(a, 1), a2 = piece(a, 2);
  const BigInt b0 = piece(b, 0), b1 = piece(b, 1), b2 = piece(b, 2);

  // Five point evaluations (each multiplication recurses through mul()).
  const BigInt v0 = a0 * b0;
  const BigInt a02 = a0 + a2, b02 = b0 + b2;
  const BigInt v1 = (a02 + a1) * (b02 + b1);
  const BigInt vm1 = (a02 - a1) * (b02 - b1);
  const BigInt v2 =
      (a0 + (a1 << 1) + (a2 << 2)) * (b0 + (b1 << 1) + (b2 << 2));
  const BigInt vinf = a2 * b2;

  // Interpolation. All shifts divide nonnegative even values exactly.
  const BigInt c0 = v0;
  const BigInt c4 = vinf;
  const BigInt c2 = ((v1 + vm1) >> 1) - c0 - c4;           // (v1+vm1)/2 - c0 - c4
  const BigInt s = (v1 - vm1) >> 1;                        // c1 + c3
  const BigInt t = (v2 - vm1) / BigInt(3);                 // c1 + c2 + 3c3 + 5c4
  const BigInt u = t - c2 - (c4 * BigInt(5));              // c1 + 3c3
  const BigInt c3 = (u - s) >> 1;
  const BigInt c1 = s - c3;

  const BigInt result = c0 + (c1 << (64 * m)) + (c2 << (128 * m)) +
                        (c3 << (192 * m)) + (c4 << (256 * m));
  return Ops::limbs(result);
}

LimbVec mul(const LimbVec& a, const LimbVec& b) {
  // Attribute limb storage to "bn.limbs" only when no higher-level scope
  // (a product-tree level, the remainder tree) already claims it, and tag
  // the chosen kernel so the sampling profiler can split Toom-3 vs
  // Karatsuba vs schoolbook time. Both cost one relaxed load when the
  // corresponding plane is off.
  static const int limbs_label = obs::mem::register_label("bn.limbs");
  obs::MemScope mem_scope(limbs_label, /*only_if_unattributed=*/true);
  const std::size_t smaller = std::min(a.size(), b.size());
  if (smaller >= Tuning::toom3_threshold()) {
    obs::prof::Frame frame("bn.mul.toom3");
    return mul_toom3(a, b);
  }
  if (smaller >= Tuning::karatsuba_threshold()) {
    obs::prof::Frame frame("bn.mul.karatsuba");
    return mul_karatsuba(a, b);
  }
  obs::prof::Frame frame("bn.mul.schoolbook");
  return mul_schoolbook(a, b);
}

}  // namespace detail
}  // namespace weakkeys::bn

// GCD and extended GCD.
//
// Pairwise gcd is the last step of the batch GCD pipeline (recovering
// p = gcd(N_i, z_i / N_i)); operand sizes there are modulus-sized, so the
// O(bits^2 / 64) binary GCD is the right tool. Extended GCD (classic
// Euclid on quotients) backs modular inversion for RSA private exponents.
#include <bit>
#include <stdexcept>
#include <utility>

#include "bn/detail.hpp"

namespace weakkeys::bn {

namespace {

std::size_t trailing_zero_bits(const BigInt& v) {
  const auto limbs = v.limbs();
  std::size_t bits = 0;
  for (std::size_t i = 0; i < limbs.size(); ++i) {
    if (limbs[i] == 0) {
      bits += 64;
      continue;
    }
    return bits + static_cast<std::size_t>(std::countr_zero(limbs[i]));
  }
  return bits;
}

}  // namespace

BigInt gcd(const BigInt& a_in, const BigInt& b_in) {
  BigInt a = a_in.abs();
  BigInt b = b_in.abs();
  if (a.is_zero()) return b;
  if (b.is_zero()) return a;

  const std::size_t za = trailing_zero_bits(a);
  const std::size_t zb = trailing_zero_bits(b);
  const std::size_t shared = std::min(za, zb);
  a >>= za;
  b >>= zb;
  // Binary GCD: both odd from here on.
  while (a != b) {
    if (a < b) std::swap(a, b);
    a -= b;  // even, nonzero
    a >>= trailing_zero_bits(a);
  }
  return a << shared;
}

ExtendedGcd extended_gcd(const BigInt& a, const BigInt& b) {
  // Invariant: r0 = a*x0 + b*y0, r1 = a*x1 + b*y1.
  BigInt r0 = a, r1 = b;
  BigInt x0 = 1, x1 = 0;
  BigInt y0 = 0, y1 = 1;
  while (!r1.is_zero()) {
    const auto [q, r] = BigInt::divmod(r0, r1);
    r0 = std::move(r1);
    r1 = r;
    BigInt x2 = x0 - q * x1;
    x0 = std::move(x1);
    x1 = std::move(x2);
    BigInt y2 = y0 - q * y1;
    y0 = std::move(y1);
    y1 = std::move(y2);
  }
  if (r0.is_negative()) {
    r0 = -r0;
    x0 = -x0;
    y0 = -y0;
  }
  return {std::move(r0), std::move(x0), std::move(y0)};
}

BigInt mod_inverse(const BigInt& a, const BigInt& m) {
  if (m <= BigInt(1)) throw std::domain_error("modulus must exceed 1");
  const ExtendedGcd eg = extended_gcd(a % m, m);
  if (!eg.g.is_one()) throw std::domain_error("value is not invertible");
  BigInt x = eg.x % m;
  if (x.is_negative()) x += m;
  return x;
}

}  // namespace weakkeys::bn

// Nonce-reuse key recovery against DSA.
//
// Two signatures under the same key with the same nonce k (visible as a
// repeated r) leak the private key:
//     k = (h1 - h2) / (s1 - s2)  (mod q)
//     x = (s1 * k - h1) / r      (mod q)
// A device with the boot-time entropy hole reuses nonces exactly the way it
// reuses RSA primes, so an observer of its signatures recovers x — the DSA
// half of the 2012 disclosures (Section 2.5 / Moxa / Intel / Tropos).
#pragma once

#include <optional>
#include <vector>

#include "dsa/dsa.hpp"

namespace weakkeys::dsa {

struct ObservedSignature {
  std::vector<std::uint8_t> message;
  DsaSignature signature;
};

/// Recovers the private key from two signatures with identical r over
/// different message digests. Returns nullopt when r differs, the digests
/// coincide, or the arithmetic degenerates.
std::optional<bn::BigInt> recover_private_key(const DsaParams& params,
                                              const ObservedSignature& a,
                                              const ObservedSignature& b);

struct NonceReuseHit {
  std::size_t first_index = 0;
  std::size_t second_index = 0;
  bn::BigInt private_key;
};

/// Scans a signature transcript for repeated r values and attempts recovery
/// on each colliding pair. `verify_against` (optional) filters candidates to
/// those reproducing the public key.
std::vector<NonceReuseHit> scan_for_nonce_reuse(
    const DsaParams& params, const std::vector<ObservedSignature>& observed,
    const DsaPublicKey* verify_against = nullptr);

}  // namespace weakkeys::dsa

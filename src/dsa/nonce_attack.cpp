#include "dsa/nonce_attack.hpp"

#include <map>
#include <stdexcept>

namespace weakkeys::dsa {

using bn::BigInt;

namespace {

BigInt mod_q(const BigInt& v, const BigInt& q) {
  BigInt out = v % q;
  if (out.is_negative()) out += q;
  return out;
}

}  // namespace

std::optional<BigInt> recover_private_key(const DsaParams& params,
                                          const ObservedSignature& a,
                                          const ObservedSignature& b) {
  if (a.signature.r != b.signature.r) return std::nullopt;
  const BigInt& q = params.q;
  const BigInt h1 = message_digest(a.message, q);
  const BigInt h2 = message_digest(b.message, q);
  const BigInt ds = mod_q(a.signature.s - b.signature.s, q);
  if (ds.is_zero() || h1 == h2) return std::nullopt;
  // k = (h1 - h2) / (s1 - s2) mod q
  BigInt k;
  try {
    k = mod_q((h1 - h2) * bn::mod_inverse(ds, q), q);
  } catch (const std::domain_error&) {
    return std::nullopt;  // s1 - s2 not invertible
  }
  // x = (s1 * k - h1) / r mod q
  try {
    const BigInt numerator = mod_q(a.signature.s * k - h1, q);
    return mod_q(numerator * bn::mod_inverse(a.signature.r, q), q);
  } catch (const std::domain_error&) {
    return std::nullopt;
  }
}

std::vector<NonceReuseHit> scan_for_nonce_reuse(
    const DsaParams& params, const std::vector<ObservedSignature>& observed,
    const DsaPublicKey* verify_against) {
  std::map<std::string, std::vector<std::size_t>> by_r;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    by_r[observed[i].signature.r.to_hex()].push_back(i);
  }

  std::vector<NonceReuseHit> hits;
  for (const auto& [r_hex, indices] : by_r) {
    if (indices.size() < 2) continue;
    for (std::size_t a = 0; a < indices.size(); ++a) {
      for (std::size_t b = a + 1; b < indices.size(); ++b) {
        const auto x = recover_private_key(params, observed[indices[a]],
                                           observed[indices[b]]);
        if (!x) continue;
        if (verify_against &&
            bn::mod_pow(params.g, *x, params.p) != verify_against->y) {
          continue;
        }
        hits.push_back({indices[a], indices[b], *x});
      }
    }
  }
  return hits;
}

}  // namespace weakkeys::dsa

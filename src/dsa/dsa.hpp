// DSA (FIPS 186-style), from scratch.
//
// Of the 61 vendors notified in 2012, the non-RSA remainder produced
// *vulnerable DSA signatures* (paper Section 2.5): the same entropy failures
// that make RSA moduli share primes make DSA devices reuse per-signature
// nonces, which leaks the private key from two signatures. This module plus
// nonce_attack.hpp implements that side of the disclosure.
#pragma once

#include <cstdint>
#include <span>

#include "bn/bigint.hpp"

namespace weakkeys::dsa {

struct DsaParams {
  bn::BigInt p;  ///< prime modulus
  bn::BigInt q;  ///< prime divisor of p-1 (the subgroup order)
  bn::BigInt g;  ///< generator of the order-q subgroup

  /// Structural validity: p and q prime sizes, q | p-1, g^q == 1 (mod p).
  [[nodiscard]] bool is_valid(bn::RandomSource& rng) const;
};

struct DsaPublicKey {
  DsaParams params;
  bn::BigInt y;  ///< g^x mod p
};

struct DsaPrivateKey {
  DsaPublicKey pub;
  bn::BigInt x;  ///< private exponent, 0 < x < q
};

struct DsaSignature {
  bn::BigInt r;
  bn::BigInt s;

  friend bool operator==(const DsaSignature&, const DsaSignature&) = default;
};

/// Generates domain parameters with |p| = p_bits, |q| = q_bits.
/// (Simulation sizes: 512/160 runs in tens of milliseconds.)
DsaParams generate_params(bn::RandomSource& rng, std::size_t p_bits = 512,
                          std::size_t q_bits = 160);

/// Generates a key pair under `params`.
DsaPrivateKey generate_key(const DsaParams& params, bn::RandomSource& rng);

/// Signs SHA-256(message) truncated to |q| bits. The per-signature nonce k
/// comes from `nonce_rng` — pass a flawed source to reproduce the
/// vulnerability, a healthy one for sound signatures.
DsaSignature sign(const DsaPrivateKey& key, std::span<const std::uint8_t> message,
                  bn::RandomSource& nonce_rng);

bool verify(const DsaPublicKey& key, std::span<const std::uint8_t> message,
            const DsaSignature& signature);

/// The truncated message hash used by sign/verify (exposed for the attack).
bn::BigInt message_digest(std::span<const std::uint8_t> message,
                          const bn::BigInt& q);

}  // namespace weakkeys::dsa

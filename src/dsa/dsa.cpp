#include "dsa/dsa.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"

namespace weakkeys::dsa {

using bn::BigInt;

bn::BigInt message_digest(std::span<const std::uint8_t> message,
                          const BigInt& q) {
  const auto digest = crypto::Sha256::hash(message);
  BigInt h = BigInt::from_bytes(digest);
  const std::size_t q_bits = q.bit_length();
  const std::size_t h_bits = h.bit_length();
  if (h_bits > q_bits) h >>= (h_bits - q_bits);  // FIPS leftmost-bits rule
  return h;
}

DsaParams generate_params(bn::RandomSource& rng, std::size_t p_bits,
                          std::size_t q_bits) {
  if (q_bits + 32 > p_bits) throw std::invalid_argument("q too large for p");

  DsaParams params;
  // q: a random prime of exactly q_bits.
  for (;;) {
    BigInt q = bn::random_bits(rng, q_bits);
    if (!q.bit(q_bits - 1)) q += BigInt(1) << (q_bits - 1);
    if (q.is_even()) q += BigInt(1);
    if (bn::is_probable_prime(q, rng, 16)) {
      params.q = std::move(q);
      break;
    }
  }

  // p: a prime of exactly p_bits with q | p-1.
  const BigInt two_q = params.q << 1;
  for (;;) {
    BigInt x = bn::random_bits(rng, p_bits);
    if (!x.bit(p_bits - 1)) x += BigInt(1) << (p_bits - 1);
    // p = x - (x mod 2q) + 1  =>  p ≡ 1 (mod 2q)
    BigInt p = x - (x % two_q) + BigInt(1);
    if (p.bit_length() != p_bits) continue;
    // Cheap trial division before Miller-Rabin.
    bool has_small_factor = false;
    for (const std::uint32_t sp : bn::small_primes(128)) {
      if (bn::mod_small(p, sp) == 0) {
        has_small_factor = true;
        break;
      }
    }
    if (has_small_factor) continue;
    if (bn::is_probable_prime(p, rng, 12)) {
      params.p = std::move(p);
      break;
    }
  }

  // g = h^((p-1)/q) mod p for the first h giving g > 1.
  const BigInt exponent = (params.p - BigInt(1)) / params.q;
  for (std::uint64_t h = 2;; ++h) {
    BigInt g = bn::mod_pow(BigInt(h), exponent, params.p);
    if (g > BigInt(1)) {
      params.g = std::move(g);
      break;
    }
  }
  return params;
}

bool DsaParams::is_valid(bn::RandomSource& rng) const {
  if (!bn::is_probable_prime(q, rng, 12)) return false;
  if (!bn::is_probable_prime(p, rng, 12)) return false;
  if ((p - bn::BigInt(1)) % q != bn::BigInt(0)) return false;
  if (g <= bn::BigInt(1) || g >= p) return false;
  return bn::mod_pow(g, q, p).is_one();
}

DsaPrivateKey generate_key(const DsaParams& params, bn::RandomSource& rng) {
  DsaPrivateKey key;
  key.pub.params = params;
  key.x = bn::random_range(rng, bn::BigInt(1), params.q - bn::BigInt(1));
  key.pub.y = bn::mod_pow(params.g, key.x, params.p);
  return key;
}

DsaSignature sign(const DsaPrivateKey& key,
                  std::span<const std::uint8_t> message,
                  bn::RandomSource& nonce_rng) {
  const DsaParams& d = key.pub.params;
  const BigInt h = message_digest(message, d.q);
  for (;;) {
    const BigInt k = bn::random_range(nonce_rng, BigInt(1), d.q - BigInt(1));
    const BigInt r = bn::mod_pow(d.g, k, d.p) % d.q;
    if (r.is_zero()) continue;
    const BigInt k_inv = bn::mod_inverse(k, d.q);
    const BigInt s = (k_inv * (h + key.x * r)) % d.q;
    if (s.is_zero()) continue;
    return DsaSignature{r, s};
  }
}

bool verify(const DsaPublicKey& key, std::span<const std::uint8_t> message,
            const DsaSignature& sig) {
  const DsaParams& d = key.params;
  const BigInt zero;
  if (sig.r <= zero || sig.r >= d.q) return false;
  if (sig.s <= zero || sig.s >= d.q) return false;
  const BigInt w = bn::mod_inverse(sig.s, d.q);
  const BigInt h = message_digest(message, d.q);
  const BigInt u1 = (h * w) % d.q;
  const BigInt u2 = (sig.r * w) % d.q;
  const BigInt v =
      ((bn::mod_pow(d.g, u1, d.p) * bn::mod_pow(key.y, u2, d.p)) % d.p) % d.q;
  return v == sig.r;
}

}  // namespace weakkeys::dsa

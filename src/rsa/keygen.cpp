#include "rsa/keygen.hpp"

#include <stdexcept>
#include <vector>

namespace weakkeys::rsa {

namespace {

using bn::BigInt;

/// Number of odd candidates sieved per random base before redrawing.
constexpr std::size_t kWindow = 2048;

/// Window sieve: marks composite offsets for candidates base + 2t,
/// t in [0, kWindow), and (in OpenSSL style) offsets where
/// (base + 2t) - 1 is divisible by a small prime.
std::vector<bool> sieve_window(const BigInt& base, PrimeStyle style,
                               std::size_t sieve_primes) {
  std::vector<bool> alive(kWindow, true);
  const auto& primes = bn::small_primes(sieve_primes);
  for (const std::uint32_t prime : primes) {
    if (prime == 2) continue;  // candidates are odd by construction
    const std::uint64_t q = prime;
    const std::uint64_t r = bn::mod_small(base, q);
    const std::uint64_t inv2 = (q + 1) / 2;  // 2^-1 mod q for odd q
    // base + 2t ≡ 0 (mod q)  =>  t ≡ -r * inv2 (mod q)
    const std::uint64_t t0 = ((q - r) % q) * inv2 % q;
    for (std::uint64_t t = t0; t < kWindow; t += q) alive[t] = false;
    if (style == PrimeStyle::kOpenSsl) {
      // base + 2t ≡ 1 (mod q)  =>  t ≡ (1 - r) * inv2 (mod q)
      const std::uint64_t t1 = ((q + 1 - r) % q) * inv2 % q;
      for (std::uint64_t t = t1; t < kWindow; t += q) alive[t] = false;
    }
  }
  return alive;
}

}  // namespace

BigInt generate_prime(bn::RandomSource& rng, std::size_t bits,
                      const KeygenOptions& opts) {
  if (bits < 32) throw std::invalid_argument("prime size below 32 bits");
  const std::uint64_t e = opts.public_exponent;

  for (;;) {
    // Random odd base with the top two bits set (guarantees full-size n).
    BigInt base = bn::random_bits(rng, bits);
    if (base.is_even()) base += BigInt(1);
    if (!base.bit(bits - 1)) base += BigInt(1) << (bits - 1);
    if (!base.bit(bits - 2)) base += BigInt(1) << (bits - 2);

    const std::vector<bool> alive =
        sieve_window(base, opts.style, opts.sieve_primes);
    for (std::size_t t = 0; t < kWindow; ++t) {
      if (!alive[t]) continue;
      const BigInt candidate = base + BigInt(std::uint64_t{2 * t});
      if (candidate.bit_length() != bits) break;  // window ran off the top
      // Require gcd(e, p-1) == 1; for prime e this is p % e != 1.
      if (e > 1 && bn::mod_small(candidate, e) == 1) continue;
      if (bn::is_probable_prime(candidate, rng, opts.miller_rabin_rounds)) {
        return candidate;
      }
    }
    // Window exhausted without a prime: redraw (mirrors OpenSSL's retry).
  }
}

RsaPrivateKey generate_key(bn::RandomSource& rng, const KeygenOptions& opts,
                           const KeygenEvents* events) {
  if (opts.modulus_bits < 64)
    throw std::invalid_argument("modulus below 64 bits");
  if (opts.public_exponent % 2 == 0 || opts.public_exponent < 3)
    throw std::invalid_argument("public exponent must be odd and >= 3");

  const std::size_t prime_bits = opts.modulus_bits / 2;
  const BigInt e(opts.public_exponent);

  for (;;) {
    if (events && events->before_prime) events->before_prime(0);
    const BigInt p = generate_prime(rng, prime_bits, opts);
    if (events && events->before_prime) events->before_prime(1);
    BigInt q = generate_prime(rng, opts.modulus_bits - prime_bits, opts);
    if (p == q) continue;  // astronomically unlikely, but cheap to guard

    RsaPrivateKey key = assemble_private_key(p, q, e);
    if (key.pub.n.bit_length() != opts.modulus_bits) continue;
    return key;
  }
}

}  // namespace weakkeys::rsa

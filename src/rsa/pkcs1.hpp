// RSA primitives and PKCS#1 v1.5-style padding.
//
// The study's threat model (Section 2.1) is that a factored certificate key
// lets an attacker passively decrypt RSA key exchange or impersonate the
// server; these primitives exist so the examples can demonstrate that attack
// end-to-end on a recovered private key.
#pragma once

#include <cstdint>
#include <vector>

#include "bn/bigint.hpp"
#include "rsa/key.hpp"

namespace weakkeys::rsa {

/// m^e mod n. Requires 0 <= m < n.
bn::BigInt public_op(const RsaPublicKey& key, const bn::BigInt& m);

/// c^d mod n via CRT (uses p, q, dp, dq, qinv). Requires 0 <= c < n.
bn::BigInt private_op(const RsaPrivateKey& key, const bn::BigInt& c);

/// PKCS#1 v1.5 type-2 encryption of `message` (must leave >= 11 bytes of
/// padding room). Nonzero pad bytes come from `rng`.
std::vector<std::uint8_t> encrypt(const RsaPublicKey& key,
                                  std::span<const std::uint8_t> message,
                                  bn::RandomSource& rng);

/// Inverse of encrypt(). Throws std::runtime_error on bad padding.
std::vector<std::uint8_t> decrypt(const RsaPrivateKey& key,
                                  std::span<const std::uint8_t> ciphertext);

/// PKCS#1 v1.5 type-1 signature over SHA-256(message).
std::vector<std::uint8_t> sign(const RsaPrivateKey& key,
                               std::span<const std::uint8_t> message);

/// Verifies a sign() signature.
bool verify(const RsaPublicKey& key, std::span<const std::uint8_t> message,
            std::span<const std::uint8_t> signature);

}  // namespace weakkeys::rsa

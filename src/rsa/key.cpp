#include "rsa/key.hpp"

#include <stdexcept>

namespace weakkeys::rsa {

RsaPrivateKey assemble_private_key(const bn::BigInt& p, const bn::BigInt& q,
                                   const bn::BigInt& e) {
  using bn::BigInt;
  const BigInt one(1);
  const BigInt p1 = p - one;
  const BigInt q1 = q - one;
  const BigInt lambda = (p1 * q1) / bn::gcd(p1, q1);

  RsaPrivateKey key;
  key.pub.n = p * q;
  key.pub.e = e;
  key.p = p;
  key.q = q;
  key.d = bn::mod_inverse(e, lambda);
  key.dp = key.d % p1;
  key.dq = key.d % q1;
  key.qinv = bn::mod_inverse(q, p);
  return key;
}

bool RsaPrivateKey::is_consistent() const {
  using bn::BigInt;
  const BigInt one(1);
  if (pub.n != p * q) return false;
  const BigInt p1 = p - one;
  const BigInt q1 = q - one;
  const BigInt lambda = (p1 * q1) / bn::gcd(p1, q1);
  if ((pub.e * d) % lambda != one) return false;
  if (dp != d % p1 || dq != d % q1) return false;
  if ((q * qinv) % p != one) return false;
  return true;
}

}  // namespace weakkeys::rsa

// The degenerate IBM prime generator (paper Sections 3.3.2 and 4.1).
//
// A bug in the prime-generation code of certain IBM Remote Supervisor
// Adapter II cards and BladeCenter Management Modules meant only nine
// distinct primes could ever be produced; every key from these devices is a
// product of two of them, giving C(9,2) = 36 possible public moduli. We
// reproduce the generator so the fingerprinting pipeline can detect the
// clique the way the paper did.
#pragma once

#include <cstdint>
#include <vector>

#include "bn/bigint.hpp"
#include "rsa/key.hpp"

namespace weakkeys::rsa {

class IbmNinePrimeGenerator {
 public:
  static constexpr int kPrimeCount = 9;
  /// Distinct unordered prime pairs == distinct possible moduli.
  static constexpr int kPossibleModuli = kPrimeCount * (kPrimeCount - 1) / 2;

  /// Deterministically derives the nine primes from `tag` (same tag =>
  /// same prime pool, like a firmware build).
  IbmNinePrimeGenerator(std::size_t modulus_bits, std::uint64_t tag);

  /// Generates a key from two distinct pool primes chosen by `rng`.
  [[nodiscard]] RsaPrivateKey generate(bn::RandomSource& rng) const;

  [[nodiscard]] const std::vector<bn::BigInt>& primes() const { return primes_; }

  /// All 36 possible moduli, ascending.
  [[nodiscard]] std::vector<bn::BigInt> possible_moduli() const;

 private:
  std::vector<bn::BigInt> primes_;
};

}  // namespace weakkeys::rsa

// RSA key generation, from scratch.
//
// Two prime-generation styles matter for the study:
//  * kOpenSsl — mirrors OpenSSL's distinctive sieve (Mironov): a candidate p
//    is rejected if p - 1 is divisible by any of the first `sieve_primes`
//    small primes. Every prime OpenSSL emits therefore satisfies
//    p % q_i != 1 for those primes — the Table 5 fingerprint.
//  * kPlain — plain trial-division sieve, as non-OpenSSL stacks behave.
//
// The generator draws all randomness (candidates and Miller-Rabin bases)
// from the caller's RandomSource, so two simulated devices whose entropy
// pools collide generate byte-identical primes — the mechanism behind the
// factorable-key corpus.
#pragma once

#include <cstdint>
#include <functional>

#include "bn/bigint.hpp"
#include "rsa/key.hpp"

namespace weakkeys::rsa {

enum class PrimeStyle {
  kOpenSsl,  ///< reject p when p-1 has a small prime factor (fingerprintable)
  kPlain,    ///< plain sieve + Miller-Rabin
};

struct KeygenOptions {
  std::size_t modulus_bits = 1024;
  PrimeStyle style = PrimeStyle::kOpenSsl;
  std::uint64_t public_exponent = 65537;
  /// Trial-division depth (the paper's OpenSSL fingerprint uses 2048).
  std::size_t sieve_primes = 2048;
  int miller_rabin_rounds = 12;
};

/// Hooks into the generation sequence. before_prime(i) fires immediately
/// before prime i (0 or 1) is generated; the device simulation uses it to
/// stir the mid-keygen entropy event that makes colliding devices diverge
/// after the first prime.
struct KeygenEvents {
  std::function<void(int prime_index)> before_prime;
};

/// Generates a random prime of exactly `bits` bits (top two bits set, so a
/// product of two such primes has exactly 2*bits bits), compatible with
/// `opts.public_exponent`.
bn::BigInt generate_prime(bn::RandomSource& rng, std::size_t bits,
                          const KeygenOptions& opts);

/// Generates a full RSA key pair. Throws std::invalid_argument for
/// unsupported option combinations (modulus under 64 bits, even exponent).
RsaPrivateKey generate_key(bn::RandomSource& rng, const KeygenOptions& opts,
                           const KeygenEvents* events = nullptr);

}  // namespace weakkeys::rsa

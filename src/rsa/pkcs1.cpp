#include "rsa/pkcs1.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"

namespace weakkeys::rsa {

using bn::BigInt;

namespace {

/// Left-pads big-endian bytes of `v` to exactly `size` bytes.
std::vector<std::uint8_t> to_fixed_bytes(const BigInt& v, std::size_t size) {
  std::vector<std::uint8_t> raw = v.to_bytes();
  if (raw.size() == 1 && raw[0] == 0) raw.clear();
  if (raw.size() > size) throw std::runtime_error("value too large for field");
  std::vector<std::uint8_t> out(size - raw.size(), 0);
  out.insert(out.end(), raw.begin(), raw.end());
  return out;
}

std::size_t modulus_bytes(const RsaPublicKey& key) {
  return (key.modulus_bits() + 7) / 8;
}

}  // namespace

BigInt public_op(const RsaPublicKey& key, const BigInt& m) {
  if (m.is_negative() || m >= key.n) throw std::domain_error("message out of range");
  return bn::mod_pow(m, key.e, key.n);
}

BigInt private_op(const RsaPrivateKey& key, const BigInt& c) {
  if (c.is_negative() || c >= key.pub.n)
    throw std::domain_error("ciphertext out of range");
  // Garner's CRT recombination.
  const BigInt m1 = bn::mod_pow(c % key.p, key.dp, key.p);
  const BigInt m2 = bn::mod_pow(c % key.q, key.dq, key.q);
  BigInt h = ((m1 - m2) * key.qinv) % key.p;
  if (h.is_negative()) h += key.p;
  return m2 + h * key.q;
}

std::vector<std::uint8_t> encrypt(const RsaPublicKey& key,
                                  std::span<const std::uint8_t> message,
                                  bn::RandomSource& rng) {
  const std::size_t k = modulus_bytes(key);
  if (message.size() + 11 > k) throw std::invalid_argument("message too long");

  // EM = 0x00 || 0x02 || PS (nonzero random) || 0x00 || M
  std::vector<std::uint8_t> em;
  em.reserve(k);
  em.push_back(0x00);
  em.push_back(0x02);
  const std::size_t pad_len = k - message.size() - 3;
  for (std::size_t i = 0; i < pad_len; ++i) {
    std::uint8_t b = 0;
    do {
      rng.fill(std::span(&b, 1));
    } while (b == 0);
    em.push_back(b);
  }
  em.push_back(0x00);
  em.insert(em.end(), message.begin(), message.end());

  const BigInt c = public_op(key, BigInt::from_bytes(em));
  return to_fixed_bytes(c, k);
}

std::vector<std::uint8_t> decrypt(const RsaPrivateKey& key,
                                  std::span<const std::uint8_t> ciphertext) {
  const std::size_t k = modulus_bytes(key.pub);
  const BigInt m = private_op(key, BigInt::from_bytes(ciphertext));
  const std::vector<std::uint8_t> em = to_fixed_bytes(m, k);
  if (em.size() < 11 || em[0] != 0x00 || em[1] != 0x02)
    throw std::runtime_error("bad PKCS#1 padding");
  std::size_t sep = 2;
  while (sep < em.size() && em[sep] != 0x00) ++sep;
  if (sep == em.size() || sep < 10) throw std::runtime_error("bad PKCS#1 padding");
  return {em.begin() + static_cast<std::ptrdiff_t>(sep) + 1, em.end()};
}

namespace {

/// Digest length that fits a k-byte PKCS#1 type-1 block. Small simulation
/// keys (256-bit) cannot carry a full SHA-256 digest, so the digest is
/// truncated to the block capacity — the signature stays collision-bound by
/// the truncated hash, which is all the simulated certificates need.
std::size_t fitted_digest_len(std::size_t k) {
  constexpr std::size_t kOverhead = 11;
  if (k <= kOverhead + 4) throw std::invalid_argument("modulus too small");
  return std::min<std::size_t>(crypto::Sha256::kDigestSize, k - kOverhead);
}

}  // namespace

std::vector<std::uint8_t> sign(const RsaPrivateKey& key,
                               std::span<const std::uint8_t> message) {
  const std::size_t k = modulus_bytes(key.pub);
  const auto digest = crypto::Sha256::hash(message);
  const std::size_t hlen = fitted_digest_len(k);

  // EM = 0x00 || 0x01 || 0xFF... || 0x00 || H (possibly truncated)
  std::vector<std::uint8_t> em;
  em.reserve(k);
  em.push_back(0x00);
  em.push_back(0x01);
  em.insert(em.end(), k - hlen - 3, 0xff);
  em.push_back(0x00);
  em.insert(em.end(), digest.begin(),
            digest.begin() + static_cast<std::ptrdiff_t>(hlen));

  const BigInt s = private_op(key, BigInt::from_bytes(em));
  return to_fixed_bytes(s, k);
}

bool verify(const RsaPublicKey& key, std::span<const std::uint8_t> message,
            std::span<const std::uint8_t> signature) {
  const std::size_t k = modulus_bytes(key);
  if (signature.size() != k) return false;
  BigInt s = BigInt::from_bytes(signature);
  if (s >= key.n) return false;
  const std::vector<std::uint8_t> em = to_fixed_bytes(public_op(key, s), k);

  const auto digest = crypto::Sha256::hash(message);
  const std::size_t hlen = fitted_digest_len(k);
  if (em.size() < hlen + 11) return false;
  if (em[0] != 0x00 || em[1] != 0x01) return false;
  const std::size_t pad_end = em.size() - hlen - 1;
  for (std::size_t i = 2; i < pad_end; ++i) {
    if (em[i] != 0xff) return false;
  }
  if (em[pad_end] != 0x00) return false;
  return std::equal(digest.begin(),
                    digest.begin() + static_cast<std::ptrdiff_t>(hlen),
                    em.begin() + static_cast<std::ptrdiff_t>(pad_end) + 1);
}

}  // namespace weakkeys::rsa

#include "rsa/ibm_nine_primes.hpp"

#include <algorithm>

#include "rng/prng_source.hpp"
#include "rsa/keygen.hpp"

namespace weakkeys::rsa {

IbmNinePrimeGenerator::IbmNinePrimeGenerator(std::size_t modulus_bits,
                                             std::uint64_t tag) {
  rng::PrngRandomSource pool_rng(tag ^ 0x49424d0000000000ULL);  // "IBM"
  KeygenOptions opts;
  opts.modulus_bits = modulus_bits;
  // The real firmware generated its primes with OpenSSL, so the pool
  // satisfies the Mironov fingerprint (Table 5 lists IBM under "satisfy").
  opts.style = PrimeStyle::kOpenSsl;
  primes_.reserve(kPrimeCount);
  while (primes_.size() < kPrimeCount) {
    bn::BigInt p = generate_prime(pool_rng, modulus_bits / 2, opts);
    if (std::find(primes_.begin(), primes_.end(), p) == primes_.end()) {
      primes_.push_back(std::move(p));
    }
  }
  std::sort(primes_.begin(), primes_.end());
}

RsaPrivateKey IbmNinePrimeGenerator::generate(bn::RandomSource& rng) const {
  // Draw two distinct indices from the 9-prime pool.
  std::uint8_t raw[2];
  std::size_t i = 0, j = 0;
  do {
    rng.fill(raw);
    i = raw[0] % kPrimeCount;
    j = raw[1] % kPrimeCount;
  } while (i == j);
  return assemble_private_key(primes_[i], primes_[j], bn::BigInt(65537));
}

std::vector<bn::BigInt> IbmNinePrimeGenerator::possible_moduli() const {
  std::vector<bn::BigInt> out;
  out.reserve(kPossibleModuli);
  for (int i = 0; i < kPrimeCount; ++i) {
    for (int j = i + 1; j < kPrimeCount; ++j) {
      out.push_back(primes_[i] * primes_[j]);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace weakkeys::rsa

// RSA key types.
#pragma once

#include <cstdint>

#include "bn/bigint.hpp"

namespace weakkeys::rsa {

struct RsaPublicKey {
  bn::BigInt n;  ///< modulus
  bn::BigInt e;  ///< public exponent

  [[nodiscard]] std::size_t modulus_bits() const { return n.bit_length(); }

  friend bool operator==(const RsaPublicKey&, const RsaPublicKey&) = default;
};

struct RsaPrivateKey {
  RsaPublicKey pub;
  bn::BigInt p;     ///< first prime factor (generated first)
  bn::BigInt q;     ///< second prime factor
  bn::BigInt d;     ///< private exponent, e^-1 mod lcm(p-1, q-1)
  bn::BigInt dp;    ///< d mod (p-1)
  bn::BigInt dq;    ///< d mod (q-1)
  bn::BigInt qinv;  ///< q^-1 mod p

  /// Checks the multiplicative structure: n == p*q, e*d == 1 (mod lcm),
  /// CRT parameters consistent. Cheap (no primality testing).
  [[nodiscard]] bool is_consistent() const;
};

/// Recomputes d and the CRT parameters for given (p, q, e).
/// Throws std::domain_error if e is not invertible mod lcm(p-1, q-1).
RsaPrivateKey assemble_private_key(const bn::BigInt& p, const bn::BigInt& q,
                                   const bn::BigInt& e);

}  // namespace weakkeys::rsa

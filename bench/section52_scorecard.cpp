// Section 5.2: "Our data does not appear to show any correlation between
// company size or customer population and response to vulnerability
// notification, nor between vendor response and end-user vulnerability
// rates." This binary quantifies that claim on the reproduced corpus:
// remediation outcomes (final/peak vulnerable hosts) grouped by Table 2
// response class.
#include <cstdio>

#include "analysis/scorecard.hpp"
#include "analysis/report.hpp"
#include "common.hpp"

int main() {
  using namespace weakkeys;
  auto& study = bench::shared_study();
  const auto builder = study.series_builder();

  // Fingerprint vendor names -> Table 2 notification names.
  const std::map<std::string, std::string> aliases = {
      {"Thomson", "Technicolor"},
      {"Fritz!Box", "AVM"},
      {"Hewlett-Packard", "HP"},
      {"TP-LINK", "TP-Link"},
  };
  const auto summary = analysis::build_scorecard(
      builder, netsim::standard_notifications(), aliases);

  std::printf("== Section 5.2: response class vs remediation outcome ==\n");
  analysis::TextTable table({"vendor", "response class", "peak vulnerable",
                             "final vulnerable", "final/peak"});
  for (const auto& score : summary.scores) {
    char ratio[16];
    std::snprintf(ratio, sizeof ratio, "%.2f", score.remediation_ratio());
    table.add_row({score.vendor, to_string(score.response),
                   std::to_string(score.peak_vulnerable),
                   std::to_string(score.final_vulnerable), ratio});
  }
  std::printf("%s", table.render().c_str());

  std::printf("\nmean final/peak ratio by response class:\n");
  for (const auto& [cls, mean] : summary.mean_ratio_by_class) {
    std::printf("  %-28s %.2f\n", to_string(cls).c_str(), mean);
  }
  std::printf(
      "overall mean %.2f, spread between class means %.2f\n"
      "shape check (paper): all classes hover near the same ratio — public "
      "advisories bought\nno better end-user outcomes than silence "
      "(newly-vulnerable vendors excepted, whose\npopulations are still "
      "growing by construction).\n",
      summary.overall_mean, summary.class_mean_spread);
  return 0;
}

// Table 5: classifying vendors by the OpenSSL prime fingerprint over the
// factors recovered from their weak keys (the test needs private material,
// so it covers exactly the factored population — as in the paper).
#include <cstdio>

#include "analysis/report.hpp"
#include "common.hpp"
#include "fingerprint/openssl_fingerprint.hpp"

int main() {
  using namespace weakkeys;
  auto& study = bench::shared_study();

  std::printf("== Table 5: OpenSSL prime-generation fingerprint ==\n");
  analysis::TextTable table({"vendor", "classification", "factors tested",
                             "factors satisfying"});

  std::vector<std::string> satisfy, dont;
  for (const auto& [vendor, primes] : study.recovered_primes_by_vendor()) {
    if (vendor.rfind('_', 0) == 0) continue;  // background populations
    const auto verdict = fingerprint::classify_openssl(primes);
    table.add_row({vendor, to_string(verdict.cls),
                   std::to_string(verdict.factors_tested),
                   std::to_string(verdict.factors_satisfying)});
    if (verdict.cls == fingerprint::ImplementationClass::kLikelyOpenSsl) {
      satisfy.push_back(vendor);
    } else if (verdict.cls == fingerprint::ImplementationClass::kNotOpenSsl) {
      dont.push_back(vendor);
    }
  }
  std::printf("%s", table.render().c_str());

  auto join = [](const std::vector<std::string>& v) {
    std::string out;
    for (const auto& s : v) {
      if (!out.empty()) out += ", ";
      out += s;
    }
    return out;
  };
  std::printf("satisfy:        %s\n", join(satisfy).c_str());
  std::printf("do not satisfy: %s\n", join(dont).c_str());
  std::printf(
      "shape check (paper): Cisco/Dell/Fritz!Box/HP/TP-LINK/IBM/Innominate/"
      "Linksys/McAfee/D-Link/Sangfor/Schmid/Thomson satisfy;\n"
      "Fortinet/Huawei/Juniper/Kronos/Siemens/Xerox/ZyXEL do not.\n");
  return 0;
}

// Figure 5 + Sections 3.3.2 / 4.1: IBM Remote Supervisor Adapter II /
// BladeCenter Management Module.
//
// Paper narrative: only 9 primes => 36 possible moduli; 99.5% of identified
// devices carry a clique modulus; the population was already declining by
// 2012 and drops sharply at Heartbleed; apparent "fixes" trace to IP churn,
// not patching (350 of 1,728 ever-vulnerable IPs later served a clean cert —
// with varying subjects, i.e. different devices behind recycled addresses).
#include <cstdio>
#include <map>
#include <set>

#include "analysis/transitions.hpp"
#include "common.hpp"

int main() {
  using namespace weakkeys;
  auto& study = bench::shared_study();

  std::printf("== Figure 5: IBM RSA-II / BladeCenter MM ==\n");
  if (study.cliques().empty()) {
    std::printf("no degenerate clique found (unexpected)\n");
    return 1;
  }
  const auto& clique = study.cliques().front();
  std::printf(
      "degenerate generator detected from recovered factors alone: %zu primes, "
      "%zu distinct moduli (max possible %d), density %.2f\n",
      clique.primes.size(), clique.moduli.size(),
      rsa::IbmNinePrimeGenerator::kPossibleModuli, clique.density);

  bench::print_vendor_figure(study, "IBM");

  // IP churn evidence: IPs that ever served a clique key and *later* served
  // any non-vulnerable certificate — from any vendor, because recycled DHCP
  // addresses end up in front of unrelated devices (the varying subjects the
  // paper used to rule out patching).
  std::set<std::string> clique_moduli_hex;
  for (const auto& n : clique.moduli) clique_moduli_hex.insert(n.to_hex());
  std::map<std::uint32_t, util::Date> first_clique_sighting;
  std::set<std::uint32_t> churned;
  for (const auto& snap : study.dataset().snapshots) {
    if (snap.protocol != netsim::Protocol::kHttps) continue;
    for (const auto& rec : snap.records) {
      const std::uint32_t ip = rec.ip.value();
      if (clique_moduli_hex.contains(rec.cert().key.n.to_hex())) {
        first_clique_sighting.try_emplace(ip, snap.date);
      } else if (const auto it = first_clique_sighting.find(ip);
                 it != first_clique_sighting.end() && snap.date > it->second) {
        churned.insert(ip);
      }
    }
  }
  std::printf(
      "\nIPs ever serving a clique key: %zu; later served a different, "
      "non-vulnerable certificate: %zu\n(paper: 350 of 1,728 — explained by "
      "IP churn, and the population decline is devices\ngoing offline, not "
      "being patched)\n",
      first_clique_sighting.size(), churned.size());

  // The Siemens overlap: subject-labeled Siemens certificates carrying an
  // IBM clique modulus (the paper found 2,441 such certificates).
  std::size_t siemens_overlap = 0;
  const auto rules = fingerprint::SubjectRules::standard();
  std::set<std::string> clique_hex;
  for (const auto& n : clique.moduli) clique_hex.insert(n.to_hex());
  std::set<const cert::Certificate*> seen;
  for (const auto& snap : study.dataset().snapshots) {
    for (const auto& rec : snap.records) {
      if (!seen.insert(rec.certificate.get()).second) continue;
      if (!clique_hex.contains(rec.cert().key.n.to_hex())) continue;
      const auto label = rules.classify(rec.cert(), rec.banner);
      if (label && label->vendor == "Siemens") ++siemens_overlap;
    }
  }
  std::printf(
      "Siemens-subject certificates using an IBM clique modulus: %zu "
      "(labeled IBM, as in the paper)\n",
      siemens_overlap);
  return 0;
}

// Table 2: the 37 vendors notified in February/March 2012 about weak TLS or
// SSH RSA key generation, by response class — plus the Section 4.4 vendors
// notified in May 2016 about newly introduced flaws.
#include <cstdio>
#include <map>
#include <vector>

#include "analysis/report.hpp"
#include "common.hpp"
#include "netsim/catalog.hpp"

int main() {
  using namespace weakkeys;
  using netsim::ResponseClass;

  const auto notifications = netsim::standard_notifications();
  std::map<ResponseClass, std::vector<const netsim::VendorNotification*>> by_class;
  for (const auto& n : notifications) by_class[n.response].push_back(&n);

  std::printf("== Table 2: vendor notification outcomes ==\n");
  analysis::TextTable table({"response class", "vendors", "count"});
  for (const auto cls :
       {ResponseClass::kPublicAdvisory, ResponseClass::kPrivateResponse,
        ResponseClass::kAutoResponse, ResponseClass::kNoResponse,
        ResponseClass::kNewSince2012}) {
    std::string vendors;
    for (const auto* n : by_class[cls]) {
      if (!vendors.empty()) vendors += ", ";
      vendors += n->vendor;
    }
    table.add_row({to_string(cls), vendors,
                   std::to_string(by_class[cls].size())});
  }
  std::printf("%s", table.render().c_str());

  int notified_2012 = 0, advisories = 0;
  for (const auto& n : notifications) {
    if (n.notified_2012) ++notified_2012;
    if (n.response == ResponseClass::kPublicAdvisory) ++advisories;
  }
  std::printf(
      "%d vendors notified in 2012 (paper: 37); %d released a public "
      "security advisory (paper: 5).\n\nNotes:\n",
      notified_2012, advisories);
  for (const auto& n : notifications) {
    if (!n.notes.empty()) {
      std::printf("  %-16s %s\n", n.vendor.c_str(), n.notes.c_str());
    }
  }
  return 0;
}

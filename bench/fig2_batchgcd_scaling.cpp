// Figure 2 + Section 3.2: the distributed batch-GCD computation.
//
// Reproduces the three quantitative claims:
//   1. batch GCD is quasilinear while naive pairwise GCD is quadratic — the
//      crossover makes corpus-scale factoring feasible at all;
//   2. splitting into k subsets raises total work but shrinks the largest
//      tree node ~k-fold (the central bottleneck the paper's cluster
//      parallelization removes);
//   3. the k-subset result is bit-identical to the single-tree result.
#include <chrono>
#include <cstdio>
#include <vector>

#include "analysis/report.hpp"
#include "batchgcd/batch_gcd.hpp"
#include "batchgcd/distributed.hpp"
#include "rng/prng_source.hpp"
#include "rsa/keygen.hpp"
#include "util/thread_pool.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<weakkeys::bn::BigInt> make_corpus(std::size_t count,
                                              std::uint64_t seed) {
  using namespace weakkeys;
  rng::PrngRandomSource rng(seed);
  rsa::KeygenOptions opts;
  opts.modulus_bits = 256;
  opts.style = rsa::PrimeStyle::kPlain;
  opts.sieve_primes = 256;  // cheap synthetic corpus
  opts.miller_rabin_rounds = 4;
  std::vector<bn::BigInt> moduli;
  moduli.reserve(count);
  // 1% planted shared primes so the outputs are nontrivial.
  bn::BigInt shared = rsa::generate_prime(rng, 128, opts);
  for (std::size_t i = 0; i < count; ++i) {
    if (i % 100 == 99) {
      moduli.push_back(shared * rsa::generate_prime(rng, 128, opts));
    } else {
      moduli.push_back(rsa::generate_key(rng, opts).pub.n);
    }
  }
  return moduli;
}

}  // namespace

int main() {
  using namespace weakkeys;

  // --- Part 1: naive-vs-batch crossover -------------------------------
  std::printf("== Figure 2 / Section 3.2: batch GCD computation ==\n");
  std::printf("\n-- naive O(n^2) pairwise GCD vs quasilinear batch GCD --\n");
  analysis::TextTable crossover({"moduli", "naive (s)", "batch (s)", "speedup"});
  for (const std::size_t n : {128u, 256u, 512u, 1024u, 2048u}) {
    const auto corpus = make_corpus(n, 7000 + n);
    auto start = Clock::now();
    const auto naive = batchgcd::naive_pairwise_gcd(corpus);
    const double naive_s = seconds_since(start);
    start = Clock::now();
    const auto batch = batchgcd::batch_gcd(corpus);
    const double batch_s = seconds_since(start);
    if (naive.divisors != batch.divisors) {
      std::printf("MISMATCH at n=%zu\n", n);
      return 1;
    }
    char naive_buf[32], batch_buf[32], speed_buf[32];
    std::snprintf(naive_buf, sizeof naive_buf, "%.3f", naive_s);
    std::snprintf(batch_buf, sizeof batch_buf, "%.3f", batch_s);
    std::snprintf(speed_buf, sizeof speed_buf, "%.1fx", naive_s / batch_s);
    crossover.add_row({std::to_string(n), naive_buf, batch_buf, speed_buf});
  }
  std::printf("%s", crossover.render().c_str());

  // --- Part 2: k-subset sweep -------------------------------------------
  std::printf("\n-- k-subset distributed variant (fixed corpus of 4096) --\n");
  const auto corpus = make_corpus(4096, 99);
  const auto reference = batchgcd::batch_gcd(corpus);
  util::ThreadPool pool(0);
  analysis::TextTable sweep({"k", "tasks", "max node (limbs)",
                             "total tree (limbs)", "wall (s)", "identical"});
  for (const std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
    batchgcd::DistributedStats stats;
    const auto start = Clock::now();
    const auto result = batchgcd::batch_gcd_distributed(corpus, k, &pool, &stats);
    const double wall = seconds_since(start);
    char wall_buf[32];
    std::snprintf(wall_buf, sizeof wall_buf, "%.3f", wall);
    sweep.add_row({std::to_string(k), std::to_string(stats.tasks),
                   std::to_string(stats.max_node_limbs),
                   std::to_string(stats.total_tree_limbs), wall_buf,
                   result.divisors == reference.divisors ? "yes" : "NO"});
  }
  std::printf("%s", sweep.render().c_str());
  std::printf(
      "shape check (paper): total work rises with k while the largest node "
      "shrinks ~k-fold,\nwhich is what let the full 81M-key run finish in 86 "
      "min on a cluster (vs 500 min single-node).\n");
  return 0;
}

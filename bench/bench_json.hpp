// Machine-readable output for the perf_* google-benchmark suites.
//
// run_benchmarks_with_json() replaces BENCHMARK_MAIN(): it keeps the usual
// console table but also captures every run through a collecting reporter
// and writes `BENCH_<suite>.json` next to the binary (or under the
// directory named by WEAKKEYS_BENCH_OUT). The file carries per-run adjusted
// real/cpu time, iteration counts, and user counters, plus — when the suite
// hands over a Telemetry — the metrics snapshot accumulated across all
// benchmark iterations. CI uploads these files as artifacts and diffs them
// across runs; keep the schema append-only.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/mem.hpp"
#include "obs/metrics.hpp"
#include "obs/proc_stats.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "util/atomic_file.hpp"

namespace weakkeys::bench {

/// Display reporter that also keeps a copy of every finished run.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  bool ReportContext(const Context& context) override {
    return benchmark::ConsoleReporter::ReportContext(context);
  }
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    runs_.insert(runs_.end(), reports.begin(), reports.end());
  }
  [[nodiscard]] const std::vector<Run>& runs() const { return runs_; }

 private:
  std::vector<Run> runs_;
};

/// BENCH_<suite>.json, honoring the WEAKKEYS_BENCH_OUT directory override.
inline std::string bench_json_path(const std::string& suite) {
  std::string path = "BENCH_" + suite + ".json";
  if (const char* dir = std::getenv("WEAKKEYS_BENCH_OUT")) {
    std::string prefix(dir);
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    path = prefix + path;
  }
  return path;
}

inline void write_bench_json(const std::string& suite,
                             const std::vector<CollectingReporter::Run>& runs,
                             const obs::Telemetry* telemetry) {
  const std::string path = bench_json_path(suite);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  char buf[64];
  out << "{\n  \"suite\": \"" << obs::json_escape(suite) << "\",\n"
      << "  \"runs\": [";
  bool first = true;
  for (const auto& run : runs) {
    if (run.error_occurred) continue;
    out << (first ? "" : ",") << "\n    {\"name\": \""
        << obs::json_escape(run.benchmark_name()) << "\"";
    out << ", \"iterations\": " << run.iterations;
    std::snprintf(buf, sizeof(buf), "%.6g", run.GetAdjustedRealTime());
    out << ", \"real_time\": " << buf;
    std::snprintf(buf, sizeof(buf), "%.6g", run.GetAdjustedCPUTime());
    out << ", \"cpu_time\": " << buf;
    out << ", \"time_unit\": \"" << benchmark::GetTimeUnitString(run.time_unit)
        << "\"";
    if (!run.counters.empty()) {
      out << ", \"counters\": {";
      bool first_counter = true;
      for (const auto& [name, counter] : run.counters) {
        std::snprintf(buf, sizeof(buf), "%.6g", counter.value);
        out << (first_counter ? "" : ", ") << "\"" << obs::json_escape(name)
            << "\": " << buf;
        first_counter = false;
      }
      out << "}";
    }
    out << "}";
    first = false;
  }
  out << "\n  ]";
  // Whole-process peak RSS (VmHWM), so benchdiff can gate memory
  // regressions alongside timing ones. Optional in the schema: absent on
  // platforms without /proc.
  const obs::ProcSelfStats proc = obs::sample_proc_self();
  if (proc.peak_rss_available) {
    out << ",\n  \"peak_rss_bytes\": " << proc.peak_rss_kb * 1024;
  }
  if (telemetry != nullptr) {
    out << ",\n  \"metrics\": " << telemetry->metrics().to_json();
  }
  out << "\n}\n";
  std::fprintf(stderr, "bench: wrote %s\n", path.c_str());
}

/// Drop-in replacement for BENCHMARK_MAIN()'s body. `telemetry`, when
/// non-null, must be the instance the suite's benchmarks record into; its
/// metrics snapshot is embedded in the JSON.
inline int run_benchmarks_with_json(const std::string& suite, int argc,
                                    char** argv,
                                    obs::Telemetry* telemetry = nullptr) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // Opt-in resource attribution for ad-hoc profiling runs: with
  // WEAKKEYS_PROFILE_HZ set, the whole suite runs under the sampling
  // profiler (collapsed stacks land next to the JSON as
  // PROFILE_<suite>.folded unless WEAKKEYS_PROFILE_OUT says otherwise) and
  // heap attribution is switched on so per-label gauges reach the embedded
  // metrics snapshot.
  const double profile_hz = obs::profile_hz_from_env();
  std::unique_ptr<obs::Profiler> profiler;
  if (profile_hz > 0) {
    if (obs::mem::supported()) obs::mem::enable();
    obs::ProfilerConfig prof_config;
    prof_config.hz = profile_hz;
    if (telemetry != nullptr) prof_config.registry = &telemetry->metrics();
    prof_config.out_path = obs::profile_out_from_env();
    if (prof_config.out_path.empty()) {
      std::string path = "PROFILE_" + suite + ".folded";
      if (const char* dir = std::getenv("WEAKKEYS_BENCH_OUT")) {
        std::string prefix(dir);
        if (!prefix.empty() && prefix.back() != '/') prefix += '/';
        path = prefix + path;
      }
      prof_config.out_path = path;
    }
    prof_config.writer = [](const std::string& path,
                            const std::string& body) {
      try {
        util::atomic_write_file(path, body);
        return true;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "bench: %s\n", e.what());
        return false;
      }
    };
    profiler = std::make_unique<obs::Profiler>(std::move(prof_config));
    profiler->start();
  }
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (profiler) {
    profiler->stop();
    std::fprintf(stderr, "bench: profiler captured %llu samples\n",
                 static_cast<unsigned long long>(profiler->samples()));
  }
  write_bench_json(suite, reporter.runs(), telemetry);
  benchmark::Shutdown();
  return 0;
}

}  // namespace weakkeys::bench

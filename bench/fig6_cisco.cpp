// Figure 6 + Section 4.2: Cisco small-business devices.
//
// Paper narrative: Cisco responded privately, never released an advisory;
// the vulnerable population rose steadily through 2014 and only began to
// decrease in the study's final year (EOL-driven retirement, not patching).
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace weakkeys;
  auto& study = bench::shared_study();

  std::printf("== Figure 6: Cisco ==\n");
  bench::print_vendor_figure(study, "Cisco");

  const auto series = study.series_builder().vendor_series("Cisco");
  const auto* v2012 = series.at_or_before(util::Date(2012, 6, 30));
  const auto* v2014 = series.at_or_before(util::Date(2014, 12, 31));
  const auto* end = series.points.empty() ? nullptr : &series.points.back();
  if (v2012 && v2014 && end) {
    std::printf(
        "\nvulnerable: %zu (mid-2012, disclosure) -> %zu (end 2014) -> %zu "
        "(study end)\nshape check (paper): rises through 2014, decreases in "
        "the final year.\n",
        v2012->vulnerable_hosts, v2014->vulnerable_hosts,
        end->vulnerable_hosts);
  }
  return 0;
}

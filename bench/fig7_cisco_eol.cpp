// Figure 7 + Section 4.2: Cisco end-of-life announcements vs population.
//
// Paper narrative: model names in Cisco certificate OUs allow per-model
// series; each end-of-life announcement marks the onset of a slow decline in
// that model's population, with the announcement preceding end-of-sale by
// several months.
#include <cstdio>

#include "analysis/events.hpp"
#include "analysis/report.hpp"
#include "common.hpp"

int main() {
  using namespace weakkeys;
  auto& study = bench::shared_study();
  const auto builder = study.series_builder();

  std::printf("== Figure 7: Cisco end-of-life vs population decline ==\n");
  analysis::TextTable table({"model", "EOL announced", "end of sale",
                             "population peak", "peak total", "final total",
                             "declined"});
  for (const auto& eol : netsim::cisco_eol_dates()) {
    const auto series = builder.vendor_series("Cisco", eol.model);
    const auto onset = analysis::eol_onset(series, eol.model, eol.announced);
    table.add_row(
        {eol.model, eol.announced.to_string(), eol.end_of_sale.to_string(),
         onset.peak_date.to_string(), std::to_string(onset.peak_total),
         std::to_string(onset.final_total),
         onset.final_total < onset.peak_total ? "yes" : "no"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "shape check (paper): every model's population peaks near its EOL "
      "announcement and\ndeclines afterwards; announcements precede "
      "end-of-sale by several months.\n\n");
  for (const auto& eol : netsim::cisco_eol_dates()) {
    std::printf("-- %s --\n%s\n", eol.model.c_str(),
                analysis::render_series(
                    builder.vendor_series("Cisco", eol.model), 36)
                    .c_str());
  }
  return 0;
}
